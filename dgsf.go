// Package dgsf is a Go reproduction of DGSF — "DGSF: Disaggregated GPUs for
// Serverless Functions" (Fingler et al., IPDPS 2022) — on a deterministic
// simulated substrate.
//
// DGSF lets serverless functions use GPUs transparently: a guest library
// interposes the application's CUDA/cuDNN/cuBLAS calls and remotes them to
// an API server on a disaggregated GPU server, with serverless-specific
// optimizations (pre-initialized runtimes, pooled handles, guest-side
// descriptor emulation, call batching) and live API-server migration
// between GPUs that preserves the application's virtual address space.
//
// This package is the public facade: it boots a simulated deployment (a
// GPU server plus a serverless backend) and runs workloads against it.
// The building blocks live under internal/ — see DESIGN.md for the map —
// and internal/experiments regenerates every table and figure of the
// paper's evaluation.
//
// Quickstart:
//
//	cluster := dgsf.NewCluster(dgsf.Config{GPUs: 4})
//	cluster.Simulate(func(s *dgsf.Session) {
//	    res, err := s.Invoke("faceidentification")
//	    if err != nil { ... }
//	    fmt.Println(res.E2E)
//	})
package dgsf

import (
	"fmt"
	"time"

	"dgsf/internal/faas"
	"dgsf/internal/gpuserver"
	"dgsf/internal/sim"
	"dgsf/internal/workloads"
)

// Placement selects the GPU-placement policy of the GPU server's monitor.
type Placement string

// Placement policies.
const (
	BestFit  Placement = "best-fit"
	WorstFit Placement = "worst-fit"
	FirstFit Placement = "first-fit"
	// Locality prefers API servers whose model cache already holds the
	// function's model; it implies ModelCache and falls back to best-fit.
	Locality Placement = "locality"
)

// Environment selects the execution-environment profile functions run in.
type Environment string

// Environments.
const (
	OpenFaaS Environment = "openfaas" // the paper's primary deployment
	Lambda   Environment = "lambda"   // AWS Lambda: slower, jittery downloads
)

// Config parameterizes a simulated DGSF deployment.
type Config struct {
	Seed             int64       // RNG seed; equal seeds replay identically
	GPUs             int         // physical GPUs on the GPU server (default 4)
	APIServersPerGPU int         // >1 enables GPU sharing (default 1)
	Placement        Placement   // default BestFit
	Migration        bool        // let the monitor migrate API servers
	Environment      Environment // default OpenFaaS
	NoPrewarm        bool        // disable runtime/handle pre-initialization
	// ModelCache enables the per-GPU-server model cache: repeat invocations
	// skip the model download (host-staged tier) and, when the working set
	// is still GPU-resident, the model load phase. Implied by Locality.
	ModelCache bool
}

// Cluster is a simulated DGSF deployment: one GPU server and a serverless
// backend, on a private virtual clock.
type Cluster struct {
	cfg Config
}

// NewCluster returns a deployment with the given configuration.
func NewCluster(cfg Config) *Cluster {
	if cfg.GPUs <= 0 {
		cfg.GPUs = 4
	}
	if cfg.APIServersPerGPU <= 0 {
		cfg.APIServersPerGPU = 1
	}
	if cfg.Placement == "" {
		cfg.Placement = BestFit
	}
	if cfg.Environment == "" {
		cfg.Environment = OpenFaaS
	}
	return &Cluster{cfg: cfg}
}

// Simulate boots the deployment and runs body inside the simulation. It
// returns when body and every function it submitted have finished. Virtual
// time is unrelated to wall time: hours of simulated execution complete in
// milliseconds.
func (c *Cluster) Simulate(body func(s *Session)) {
	e := sim.NewEngine(c.cfg.Seed)
	e.Run("dgsf", func(p *sim.Proc) {
		gcfg := gpuserver.DefaultConfig()
		gcfg.GPUs = c.cfg.GPUs
		gcfg.ServersPerGPU = c.cfg.APIServersPerGPU
		gcfg.EnableMigration = c.cfg.Migration
		gcfg.PoolHandles = !c.cfg.NoPrewarm
		switch c.cfg.Placement {
		case WorstFit:
			gcfg.Policy = gpuserver.WorstFit
		case FirstFit:
			gcfg.Policy = gpuserver.FirstFit
		case Locality:
			gcfg.Policy = gpuserver.PolicyLocality
		default:
			gcfg.Policy = gpuserver.BestFit
		}
		if c.cfg.ModelCache || c.cfg.Placement == Locality {
			gcfg.Cache.Enable = true
		}
		gs := gpuserver.New(e, gcfg)
		gs.Start(p)
		env := faas.OpenFaaSEnv()
		if c.cfg.Environment == Lambda {
			env = faas.LambdaEnv()
		}
		backend := faas.NewBackend(e, gs, env)
		s := &Session{p: p, gs: gs, backend: backend}
		body(s)
		backend.Drain(p)
	})
}

// Session is the handle body code uses to drive a running deployment.
type Session struct {
	p       *sim.Proc
	gs      *gpuserver.GPUServer
	backend *faas.Backend
}

// Workloads lists the deployable workload names (the paper's six
// benchmarks, §VII).
func Workloads() []string {
	var out []string
	for _, s := range workloads.All() {
		out = append(out, s.Name)
	}
	return out
}

// Result summarizes one finished invocation.
type Result struct {
	Workload string
	E2E      time.Duration // submission to completion
	Download time.Duration
	Queue    time.Duration // waiting for an API server
	Exec     time.Duration // GPU-session time
}

// Pending is an in-flight invocation submitted with Submit.
type Pending struct {
	inv *faas.Invocation
	s   *Session
}

// Invoke runs one workload to completion and returns its timing summary.
func (s *Session) Invoke(workload string) (Result, error) {
	pd, err := s.Submit(workload)
	if err != nil {
		return Result{}, err
	}
	return pd.Wait()
}

// Submit launches a workload asynchronously.
func (s *Session) Submit(workload string) (*Pending, error) {
	spec, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	inv := s.backend.Submit(s.p, spec.Function())
	return &Pending{inv: inv, s: s}, nil
}

// Wait blocks until the invocation completes and returns its summary.
func (pd *Pending) Wait() (Result, error) {
	// The backend tracks completion via Done timestamps; poll on the
	// virtual clock (cheap: the clock only advances through real events).
	for pd.inv.Done == 0 && pd.inv.Err == nil {
		pd.s.p.Sleep(10 * time.Millisecond)
	}
	inv := pd.inv
	if inv.Err != nil {
		return Result{}, fmt.Errorf("dgsf: %s failed: %w", inv.Fn.Name, inv.Err)
	}
	return Result{
		Workload: inv.Fn.Name,
		E2E:      inv.E2E(),
		Download: inv.DownloadDone - inv.SubmittedAt,
		Queue:    inv.QueueDelay,
		Exec:     inv.Done - inv.Granted,
	}, nil
}

// Sleep advances virtual time, e.g. to space out submissions.
func (s *Session) Sleep(d time.Duration) { s.p.Sleep(d) }

// Now returns the current virtual time.
func (s *Session) Now() time.Duration { return s.p.Now() }

// Utilization returns each GPU's mean utilization (percent) so far.
func (s *Session) Utilization() []float64 {
	var out []float64
	for _, smp := range s.gs.Samplers() {
		out = append(out, smp.MeanUtil(0, 0))
	}
	return out
}

// Migrations returns how many API-server migrations the monitor performed.
func (s *Session) Migrations() int { return s.gs.Migrations() }

// CacheStats summarizes the model cache's activity so far. Zero-valued
// when the deployment runs without a cache.
type CacheStats struct {
	GPUHits    int // sessions that adopted a GPU-resident working set
	HostHits   int // sessions that restaged the working set from host memory
	Misses     int // sessions that loaded their model from scratch
	Evictions  int // GPU-resident working sets demoted to the host tier
	HitRate    float64
	GPUHitRate float64
}

// CacheStats reports the model cache's counters, all zero without a cache.
func (s *Session) CacheStats() CacheStats {
	c := s.gs.Cache()
	if c == nil {
		return CacheStats{}
	}
	st := c.Stats()
	return CacheStats{
		GPUHits:    st.DeviceHits,
		HostHits:   st.HostHits,
		Misses:     st.Misses,
		Evictions:  st.DeviceEvictions,
		HitRate:    st.HitRate(),
		GPUHitRate: st.DeviceHitRate(),
	}
}

// Summary aggregates all finished invocations by workload name.
func (s *Session) Summary() map[string]Aggregate {
	out := map[string]Aggregate{}
	for name, fs := range s.backend.PerFunction() {
		out[name] = Aggregate{
			Count:     fs.Count,
			MeanE2E:   fs.MeanE2E(),
			MeanQueue: fs.MeanQueue(),
			MeanExec:  fs.MeanExec(),
		}
	}
	return out
}

// Aggregate summarizes repeated invocations of one workload.
type Aggregate struct {
	Count     int
	MeanE2E   time.Duration
	MeanQueue time.Duration
	MeanExec  time.Duration
}
