// Package lint is a small static-analysis framework for dgsfvet, the
// project's invariant checker. It deliberately mirrors the API shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Reportf) so analyzers read
// like standard vet passes, but it is built only on the standard library:
// packages are loaded with `go list -export` and type-checked against the
// compiler's export data, so no third-party dependency is needed.
//
// Suppression: a comment of the form
//
//	//lint:allow analyzer1,analyzer2 reason...
//
// silences the named analyzers on the same line and on the line directly
// below (so it can sit above the offending statement). The reason is
// mandatory by convention and surfaced in DESIGN.md's invariant table.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant it enforces.
	Doc string
	// Run applies the analyzer to a single package.
	Run func(*Pass) error
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Info.ObjectOf(id)
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// PkgPathHasSuffix reports whether a package import path is, or ends with,
// the given slash-separated suffix (e.g. "internal/sim" matches both
// "dgsf/internal/sim" and a testdata package "x/internal/sim").
func PkgPathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// allowKey identifies one (file, line) granted to one analyzer.
type allowKey struct {
	file string
	line int
}

// An allowDirective is one (analyzer name, //lint:allow comment) pair; a
// directive naming several analyzers expands to several entries.
type allowDirective struct {
	name string
	pos  token.Position // the directive's own position
}

// collectAllowDirectives scans the files for //lint:allow directives.
func collectAllowDirectives(fset *token.FileSet, files []*ast.File) []allowDirective {
	var dirs []allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:allow"))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					dirs = append(dirs, allowDirective{name: name, pos: pos})
				}
			}
		}
	}
	return dirs
}

// StaleAllowName is the analyzer name stale //lint:allow reports carry.
const StaleAllowName = "staleallow"

// Options configures RunAnalyzersOpts.
type Options struct {
	// ReportStale reports //lint:allow directives that suppressed nothing,
	// under the StaleAllowName analyzer. Only directives naming an analyzer
	// in the run set are judged: a partial run cannot tell a stale
	// directive from one whose analyzer simply did not run.
	ReportStale bool
}

// RunAnalyzers applies each analyzer to the package and returns the
// diagnostics that survive //lint:allow filtering, sorted by position.
// A panicking analyzer does not crash the process: the panic becomes a
// diagnostic on the package (analysis by that analyzer is incomplete).
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAnalyzersOpts(fset, files, pkg, info, analyzers, Options{})
}

// RunAnalyzersOpts is RunAnalyzers with explicit options.
func RunAnalyzersOpts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, opts Options) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			diags:    &diags,
		}
		if err := runProtected(a, pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}

	dirs := collectAllowDirectives(fset, files)
	// grant maps analyzer -> covered line -> indices of granting directives:
	// a directive covers its own line (trailing comment) and the line below
	// (comment above the statement).
	grant := map[string]map[allowKey][]int{}
	for i, d := range dirs {
		if grant[d.name] == nil {
			grant[d.name] = map[allowKey][]int{}
		}
		for _, line := range []int{d.pos.Line, d.pos.Line + 1} {
			k := allowKey{d.pos.Filename, line}
			grant[d.name][k] = append(grant[d.name][k], i)
		}
	}
	used := make([]bool, len(dirs))
	kept := diags[:0]
	for _, d := range diags {
		if idxs := grant[d.Analyzer][allowKey{d.Pos.Filename, d.Pos.Line}]; len(idxs) > 0 {
			for _, i := range idxs {
				used[i] = true
			}
			continue
		}
		kept = append(kept, d)
	}
	if opts.ReportStale {
		ran := map[string]bool{}
		for _, a := range analyzers {
			ran[a.Name] = true
		}
		for i, d := range dirs {
			if used[i] || !ran[d.name] {
				continue
			}
			kept = append(kept, Diagnostic{
				Pos:      d.pos,
				Analyzer: StaleAllowName,
				Message:  fmt.Sprintf("//lint:allow %s suppresses no diagnostic; remove the stale directive", d.name),
			})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Pos.Filename != kept[j].Pos.Filename {
			return kept[i].Pos.Filename < kept[j].Pos.Filename
		}
		if kept[i].Pos.Line != kept[j].Pos.Line {
			return kept[i].Pos.Line < kept[j].Pos.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// runProtected applies one analyzer, converting a panic into a diagnostic
// on the package instead of crashing the whole run: one broken analyzer
// should fail its package visibly, not take down the other checks.
func runProtected(a *Analyzer, pass *Pass) (err error) {
	defer func() {
		if r := recover(); r != nil {
			pos := token.NoPos
			if len(pass.Files) > 0 {
				pos = pass.Files[0].Package
			}
			pass.Reportf(pos, "analyzer %s panicked: %v (analysis of this package is incomplete)", a.Name, r)
		}
	}()
	return a.Run(pass)
}

// NewInfo returns a types.Info with every map allocated, ready for
// types.Config.Check.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
