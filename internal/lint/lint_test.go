package lint

import (
	"go/ast"
	"strings"
	"testing"
)

// TestLoadTypechecks exercises the go-list loader end to end on a real
// module package, including the test-variant preference.
func TestLoadTypechecks(t *testing.T) {
	pkgs, err := Load("", "dgsf/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	var found bool
	for _, p := range pkgs {
		if !strings.HasPrefix(p.ImportPath, "dgsf/internal/sim") {
			t.Errorf("unexpected package %s", p.ImportPath)
		}
		if len(p.TypeErrors) > 0 {
			t.Fatalf("%s: type errors: %v", p.ImportPath, p.TypeErrors)
		}
		if p.Pkg == nil || len(p.Files) == 0 {
			t.Fatalf("%s: missing type info or files", p.ImportPath)
		}
		// The test variant (merged _test.go files) should be selected when
		// the package has internal tests.
		if strings.Contains(p.ImportPath, " [") {
			found = true
			hasTestFile := false
			for _, f := range p.Files {
				if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
					hasTestFile = true
				}
			}
			if !hasTestFile {
				t.Errorf("%s: test variant has no _test.go files", p.ImportPath)
			}
		}
		if len(p.Info.Uses) == 0 {
			t.Errorf("%s: no use information recorded", p.ImportPath)
		}
	}
	if !found {
		t.Error("expected a test-variant package for dgsf/internal/sim")
	}
}

// TestAllowSuppression checks the //lint:allow escape hatch filters
// diagnostics on its own line and the line below, and nothing else.
func TestAllowSuppression(t *testing.T) {
	a := &Analyzer{
		Name: "demo",
		Doc:  "flags every function declaration",
		Run: func(p *Pass) error {
			for _, f := range p.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						p.Reportf(fd.Pos(), "func %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
	pkgs, err := Load("", "dgsf/internal/lint/internal/allowtest")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	diags, err := RunAnalyzers(p.Fset, p.Files, p.Pkg, p.Info, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, d := range diags {
		names = append(names, d.Message)
	}
	got := strings.Join(names, ",")
	if got != "func flagged,func wrongname" {
		t.Fatalf("diagnostics = %q, want flagged and wrongname only (suppressed filtered, wrong-name directive ignored)", got)
	}
}
