// Package allowtest is a fixture for the //lint:allow suppression test.
package allowtest

//lint:allow demo suppressed by the directive above the declaration
func suppressed() {}

func flagged() {}

//lint:allow otheranalyzer a directive for a different analyzer does not apply
func wrongname() {}
