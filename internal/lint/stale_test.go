package lint

import (
	"go/ast"
	"strings"
	"testing"
)

// flagFuncs reports every function declaration; name is configurable so
// tests can match or miss the fixture's //lint:allow directives.
func flagFuncs(name string) *Analyzer {
	return &Analyzer{
		Name: name,
		Doc:  "flags every function declaration",
		Run: func(p *Pass) error {
			for _, f := range p.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						p.Reportf(fd.Pos(), "func %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
}

func silent(name string) *Analyzer {
	return &Analyzer{Name: name, Doc: "reports nothing", Run: func(*Pass) error { return nil }}
}

// TestStaleAllowReported checks that a //lint:allow which suppresses
// nothing is itself reported when ReportStale is on, and that directives
// naming analyzers outside the run set are left alone.
func TestStaleAllowReported(t *testing.T) {
	pkgs, err := Load("", "dgsf/internal/lint/internal/allowtest")
	if err != nil {
		t.Fatal(err)
	}
	p := pkgs[0]

	// "demo" runs but reports nothing: its directive is stale. The
	// "otheranalyzer" directive names an analyzer not in the run set, so it
	// cannot be judged and is not reported.
	diags, err := RunAnalyzersOpts(p.Fset, p.Files, p.Pkg, p.Info, []*Analyzer{silent("demo")}, Options{ReportStale: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 stale report: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != StaleAllowName || !strings.Contains(d.Message, "suppresses no diagnostic") {
		t.Fatalf("unexpected stale diagnostic: %v", d)
	}
	if !strings.Contains(d.Message, "demo") {
		t.Fatalf("stale report does not name the analyzer: %v", d)
	}
}

// TestStaleAllowQuietWhenUsed checks that a directive which did suppress a
// diagnostic is not reported as stale, and that the suppression itself
// still works with ReportStale on.
func TestStaleAllowQuietWhenUsed(t *testing.T) {
	pkgs, err := Load("", "dgsf/internal/lint/internal/allowtest")
	if err != nil {
		t.Fatal(err)
	}
	p := pkgs[0]
	diags, err := RunAnalyzersOpts(p.Fset, p.Files, p.Pkg, p.Info, []*Analyzer{flagFuncs("demo")}, Options{ReportStale: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Analyzer == StaleAllowName {
			t.Fatalf("used directive reported as stale: %v", d)
		}
	}
	var names []string
	for _, d := range diags {
		names = append(names, d.Message)
	}
	if got := strings.Join(names, ","); got != "func flagged,func wrongname" {
		t.Fatalf("diagnostics = %q, want the unsuppressed functions only", got)
	}
}

// TestAnalyzerPanicBecomesDiagnostic checks that a panicking analyzer
// fails its package with a diagnostic instead of crashing the run, and
// that later analyzers still execute.
func TestAnalyzerPanicBecomesDiagnostic(t *testing.T) {
	pkgs, err := Load("", "dgsf/internal/lint/internal/allowtest")
	if err != nil {
		t.Fatal(err)
	}
	p := pkgs[0]
	panicky := &Analyzer{
		Name: "panicky",
		Doc:  "always panics",
		Run: func(*Pass) error {
			var m map[string]int
			m["boom"] = 1 // nil map write: a realistic analyzer bug
			return nil
		},
	}
	diags, err := RunAnalyzers(p.Fset, p.Files, p.Pkg, p.Info, []*Analyzer{panicky, flagFuncs("after")})
	if err != nil {
		t.Fatal(err)
	}
	var sawPanic, sawAfter bool
	for _, d := range diags {
		if d.Analyzer == "panicky" && strings.Contains(d.Message, "panicked") {
			sawPanic = true
			if d.Pos.Filename == "" {
				t.Errorf("panic diagnostic has no position: %v", d)
			}
		}
		if d.Analyzer == "after" {
			sawAfter = true
		}
	}
	if !sawPanic {
		t.Fatalf("no panic diagnostic in %v", diags)
	}
	if !sawAfter {
		t.Fatalf("analyzers after the panicking one did not run: %v", diags)
	}
}
