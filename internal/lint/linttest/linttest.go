// Package linttest is a golden-file test harness for dgsfvet analyzers,
// modeled on x/tools' analysistest: testdata packages annotate expected
// diagnostics with `// want "substring"` comments, and the harness fails
// the test on any missed or unexpected diagnostic.
//
// Layout: testdata/src/<importpath>/*.go. Imports between testdata packages
// resolve within testdata/src; imports of real module or standard-library
// packages resolve through `go list -deps -export` run once per process.
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"dgsf/internal/lint"
)

var wantRe = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// Run loads testdata/src/<pkgpath>, applies the analyzer, and checks the
// diagnostics against the package's `// want` annotations.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkgpath string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{testdata: testdata, fset: fset, pkgs: map[string]*types.Package{}}
	files, pkg, info, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("load %s: %v", pkgpath, err)
	}
	diags, err := lint.RunAnalyzers(fset, files, pkg, info, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]string{} // expected message substrings
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pos := fset.Position(c.Pos())
					var s string
					// The capture is a quoted Go-ish string; reuse JSON
					// unquoting for escapes.
					if err := json.Unmarshal([]byte(`"`+m[1]+`"`), &s); err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					wants[key{pos.Filename, pos.Line}] = append(wants[key{pos.Filename, pos.Line}], s)
				}
			}
		}
	}

	matched := map[key][]bool{}
	for k, ws := range wants {
		matched[k] = make([]bool, len(ws))
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		ok := false
		for i, w := range wants[k] {
			if strings.Contains(d.Message, w) {
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, d.Message)
		}
	}
	for k, ws := range wants {
		for i, w := range ws {
			if !matched[k][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w)
			}
		}
	}
}

// loader type-checks testdata packages, resolving testdata-internal imports
// from source and everything else from module/std export data.
type loader struct {
	testdata string
	fset     *token.FileSet
	pkgs     map[string]*types.Package // memo of testdata packages
}

func (ld *loader) load(pkgpath string) ([]*ast.File, *types.Package, *types.Info, error) {
	dir := filepath.Join(ld.testdata, "src", pkgpath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := lint.NewInfo()
	conf := types.Config{Importer: importerFunc(func(path string) (*types.Package, error) {
		return ld.importPkg(path)
	})}
	pkg, err := conf.Check(pkgpath, ld.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return files, pkg, info, nil
}

// importPkg resolves one import: testdata-local packages load from source,
// others from export data.
func (ld *loader) importPkg(path string) (*types.Package, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	if dir := filepath.Join(ld.testdata, "src", path); isDir(dir) {
		_, pkg, _, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		ld.pkgs[path] = pkg
		return pkg, nil
	}
	imp := importer.ForCompiler(ld.fset, "gc", func(p string) (io.ReadCloser, error) {
		ef, err := moduleExport(p)
		if err != nil {
			return nil, err
		}
		return os.Open(ef)
	})
	pkg, err := imp.(types.ImporterFrom).ImportFrom(path, "", 0)
	if err != nil {
		return nil, err
	}
	ld.pkgs[path] = pkg
	return pkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func isDir(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}

// moduleExport maps an import path to its export data file, computed once
// per test process by listing the module's full dependency closure.
var (
	exportOnce sync.Once
	exportMap  map[string]string
	exportErr  error
)

func moduleExport(path string) (string, error) {
	exportOnce.Do(func() {
		exportMap = map[string]string{}
		cmd := exec.Command("go", "list", "-deps", "-export", "-json", "dgsf/...")
		var out, errb bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &errb
		if err := cmd.Run(); err != nil {
			exportErr = fmt.Errorf("go list: %w\n%s", err, errb.String())
			return
		}
		dec := json.NewDecoder(&out)
		for {
			var lp struct {
				ImportPath string
				Export     string
			}
			if err := dec.Decode(&lp); err == io.EOF {
				break
			} else if err != nil {
				exportErr = err
				return
			}
			if lp.Export != "" && !strings.Contains(lp.ImportPath, " [") {
				exportMap[lp.ImportPath] = lp.Export
			}
		}
	})
	if exportErr != nil {
		return "", exportErr
	}
	f, ok := exportMap[path]
	if !ok {
		return "", fmt.Errorf("no export data for %q (is it in dgsf's dependency closure?)", path)
	}
	return f, nil
}
