package dataflow

import (
	"go/ast"
	"go/token"
)

// Sequential reports whether execution that performs a can fall through to
// b in the same pass over the function: a.Pos < b.Pos, the two sites are
// not in mutually exclusive branch arms, and no block enclosing a (but not
// b) terminates — returns or panics — between a and the block's end.
//
// It is deliberately conservative in the "false" direction: when control
// flow is too clever to prove fall-through (early returns, exclusive arms),
// analyzers should not report a both-execute violation.
func Sequential(a, b Site) bool {
	if a.Pos >= b.Pos {
		return false
	}
	if MutuallyExclusive(a, b) {
		return false
	}
	// Walk a's enclosing blocks from the inside out. For every block that
	// does not also enclose b, control must fall off the end of the block
	// to reach b; a return/panic after a inside that block prevents it.
	bNodes := map[ast.Node]bool{}
	for _, n := range b.Stack {
		bNodes[n] = true
	}
	for i := len(a.Stack) - 1; i >= 0; i-- {
		n := a.Stack[i]
		if bNodes[n] {
			break
		}
		var stmts []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			stmts = n.List
		case *ast.CaseClause:
			stmts = n.Body
		case *ast.CommClause:
			stmts = n.Body
		default:
			continue
		}
		for _, s := range stmts {
			if s.Pos() <= a.Pos || s.Pos() >= b.Pos {
				continue
			}
			if terminates(s) {
				return false
			}
		}
	}
	return true
}

// MutuallyExclusive reports whether a and b sit in different arms of the
// same if/else, switch, type switch, or select — so at most one of them
// executes in a given pass.
func MutuallyExclusive(a, b Site) bool {
	common := len(a.Stack)
	if len(b.Stack) < common {
		common = len(b.Stack)
	}
	div := 0
	for div < common && a.Stack[div] == b.Stack[div] {
		div++
	}
	if div == 0 || div >= len(a.Stack) || div >= len(b.Stack) {
		return false
	}
	parent := a.Stack[div-1]
	ca, cb := a.Stack[div], b.Stack[div]
	switch p := parent.(type) {
	case *ast.IfStmt:
		inBody := func(n ast.Node) bool { return n == ast.Node(p.Body) }
		inElse := func(n ast.Node) bool { return p.Else != nil && n == p.Else }
		return (inBody(ca) && inElse(cb)) || (inElse(ca) && inBody(cb))
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		_, aCase := ca.(*ast.CaseClause)
		_, bCase := cb.(*ast.CaseClause)
		return aCase && bCase
	case *ast.SelectStmt:
		_, aComm := ca.(*ast.CommClause)
		_, bComm := cb.(*ast.CommClause)
		return aComm && bComm
	}
	return false
}

// terminates reports whether s unconditionally leaves the surrounding
// block's fall-through path: a return, a goto, or a panic/Fatal call.
// break/continue do not count — they still reach code after the loop.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.GOTO
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch CalleeName(call) {
		case "panic", "Fatal", "Fatalf", "Exit", "Goexit":
			return true
		}
	}
	return false
}

// LoopBetween reports whether f sits inside a loop that does not also
// enclose the origin: the loop re-executes f against a value produced
// once, outside it (a release inside a loop for a single acquire).
func LoopBetween(origin, f Site) bool {
	originNodes := map[ast.Node]bool{}
	for _, n := range origin.Stack {
		originNodes[n] = true
	}
	for _, n := range f.Stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if !originNodes[n] {
				return true
			}
		}
	}
	return false
}
