// Package dataflow is the flow-sensitive layer under dgsfvet's ownership
// analyzers (bufown, sharedretain, lockorder). It builds per-function
// def-use chains directly on the AST plus types.Info — no SSA, no
// golang.org/x/tools — and tracks how a value produced at an origin
// (a pool acquire, a shared decode, a borrowed parameter) flows through
// assignments to the places it could outlive its contract: struct fields,
// globals, channels, goroutine captures, returns, call arguments.
//
// The model is deliberately modest and documented here so analyzer authors
// know what to trust:
//
//   - Propagation is per-function. One level of interprocedural context is
//     available through Summaries: every function body in the package gets a
//     summary of what it does with each parameter (escapes it, releases it,
//     returns an alias of it), and Track consults callee summaries at call
//     sites. Deeper chains are invisible by design.
//   - Statement order is approximated lexically. Within straight-line code
//     that is exact; across loops it is not (a use textually before a def
//     can run after it). The Sequential helper is branch-aware — it knows
//     mutually exclusive if/else arms and early-terminating blocks — so
//     analyzers can avoid flagging put-then-return-else-put patterns.
//   - Taint is killed by reassignment from a non-carrying expression
//     (x = strings.Clone(x) cleans x), queried with a nearest-preceding-def
//     rule at each use site.
//
// Aliasing through memory (stores to fields read back later) is not modeled;
// a store to a field is a terminal flow event, which is exactly the contract
// violation the ownership analyzers exist to report.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FlowKind classifies one event in a tracked value's life.
type FlowKind int

// Flow kinds, ordered roughly by severity of what they imply.
const (
	// FlowUse is a plain read of the tracked value (operand, receiver,
	// argument of a builtin). Used for use-after-release checks.
	FlowUse FlowKind = iota
	// FlowFieldStore stores the value into a struct field.
	FlowFieldStore
	// FlowGlobalStore stores the value into a package-level variable.
	FlowGlobalStore
	// FlowIndexStore stores the value into a map or slice element.
	FlowIndexStore
	// FlowChanSend sends the value (or a composite carrying it) on a channel.
	FlowChanSend
	// FlowGoCapture passes the value to a goroutine: as an argument of a
	// `go f(v)` call or as a free variable of a `go func(){...}` closure.
	FlowGoCapture
	// FlowDeferCapture passes the value to a deferred call or closure. The
	// deferred body runs at function exit, after any non-deferred release.
	FlowDeferCapture
	// FlowReturn returns the value (or something aliasing it).
	FlowReturn
	// FlowCallArg passes the value to a call. Analyzers classify the callee
	// (release function, known borrower, unknown).
	FlowCallArg
)

func (k FlowKind) String() string {
	switch k {
	case FlowUse:
		return "use"
	case FlowFieldStore:
		return "store to field"
	case FlowGlobalStore:
		return "store to package-level variable"
	case FlowIndexStore:
		return "store into map/slice element"
	case FlowChanSend:
		return "channel send"
	case FlowGoCapture:
		return "goroutine capture"
	case FlowDeferCapture:
		return "defer capture"
	case FlowReturn:
		return "return"
	case FlowCallArg:
		return "call argument"
	}
	return "?"
}

// A Site is a position plus its chain of enclosing AST nodes
// (outermost-first), enough for branch-exclusivity reasoning.
type Site struct {
	Pos   token.Pos
	Stack []ast.Node
}

// A Flow is one event in a tracked value's life, in source order.
type Flow struct {
	Site
	Kind FlowKind
	// Expr is the carrying expression involved in the event.
	Expr ast.Expr
	// Dest is the store destination for the *Store kinds.
	Dest ast.Expr
	// Call and ArgIndex identify the call for FlowCallArg / FlowGoCapture /
	// FlowDeferCapture events; ArgIndex is -1 for the method receiver.
	Call     *ast.CallExpr
	ArgIndex int
	// CalleeName is the bare name of the called function, when resolvable.
	CalleeName string
	// Deferred marks flows inside a defer statement: they execute at
	// function exit in LIFO registration order, not at their lexical
	// position. A deferred release runs after every non-deferred use.
	Deferred bool
}

// An Origin identifies the value to track: either the Result-th result of a
// producing expression, or a variable carrying a borrowed value. Param is
// usually a function parameter (tainted from entry); with From set it can
// be any local that becomes tainted at a position — e.g. a request struct
// after an in-place DecodeShared populated it with aliasing fields.
type Origin struct {
	Expr   ast.Expr
	Result int // result index for multi-result calls; 0 for single
	Param  *types.Var
	// From, when set with Param, is the position the variable becomes
	// tainted; reads before it (and redefinitions after it) are clean.
	From token.Pos
}

// A Value is one tracked origin plus every flow event it reaches.
type Value struct {
	Origin Origin
	// OriginSite locates the origin for loop reasoning and diagnostics.
	OriginSite Site
	// Flows are the events, ordered by position.
	Flows []Flow
}

// A Summary describes what one function body does with its parameters;
// Track consults callee summaries for one level of interprocedural flow.
type Summary struct {
	// Escapes[i]: parameter i may be stored beyond the call (field, global,
	// channel, goroutine, map/slice element).
	Escapes []bool
	// Releases[i]: parameter i is passed to a release function (directly or
	// through one more level).
	Releases []bool
	// ReturnsAlias[i]: some result of the function may alias parameter i.
	ReturnsAlias []bool
}

// Config parameterizes the engine with analyzer-specific knowledge.
type Config struct {
	// Release reports the indices of arguments a direct call releases
	// (returning them to a pool / ending their lifetime), or nil. Used both
	// for summaries and exposed via Package.ReleaseArgs.
	Release func(call *ast.CallExpr, info *types.Info) []int
	// AliasResult reports whether the call's result aliases memory reachable
	// from its receiver or arguments, so taint flows through (e.g.
	// (*wire.Encoder).Bytes). Conversions, append and copy are built in.
	AliasResult func(call *ast.CallExpr, info *types.Info) bool
}

// A Func is one analyzable function body.
type Func struct {
	// Decl is the *ast.FuncDecl or *ast.FuncLit.
	Decl ast.Node
	// Name is "f" or "T.m" for diagnostics ("func literal" for literals).
	Name string
	Body *ast.BlockStmt
	// Params are the declared parameters (receiver excluded).
	Params []*types.Var

	pkg *Package
}

// A Package is the dataflow view of one type-checked package.
type Package struct {
	Info  *types.Info
	Funcs []*Func

	cfg       Config
	summaries map[ast.Node]*Summary // keyed by Func.Decl
	inSummary map[ast.Node]bool     // recursion guard
	declOf    map[*types.Func]*Func
}

// Analyze builds the dataflow view of every function declaration in files.
// Function literals are analyzed as part of their enclosing function, so
// closure captures are visible to it.
func Analyze(files []*ast.File, info *types.Info, cfg Config) *Package {
	p := &Package{
		Info:      info,
		cfg:       cfg,
		summaries: map[ast.Node]*Summary{},
		inSummary: map[ast.Node]bool{},
		declOf:    map[*types.Func]*Func{},
	}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := &Func{Decl: fd, Name: funcName(fd), Body: fd.Body, pkg: p}
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				fn.Params = paramVars(obj)
				p.declOf[obj] = fn
			}
			p.Funcs = append(p.Funcs, fn)
		}
	}
	return p
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		if id, ok := ix.X.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

func paramVars(obj *types.Func) []*types.Var {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := make([]*types.Var, 0, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// FuncFor returns the Func whose body defines obj, or nil.
func (p *Package) FuncFor(obj *types.Func) *Func { return p.declOf[obj] }

// ReleaseArgs reports the argument indices call releases: directly per the
// config, or through one level of call summary (a wrapper that forwards a
// parameter to a release function).
func (p *Package) ReleaseArgs(call *ast.CallExpr) []int {
	if p.cfg.Release != nil {
		if idx := p.cfg.Release(call, p.Info); idx != nil {
			return idx
		}
	}
	callee := CalleeFunc(call, p.Info)
	if callee == nil {
		return nil
	}
	fn := p.declOf[callee]
	if fn == nil {
		return nil
	}
	sum := p.summaryOf(fn)
	if sum == nil {
		return nil
	}
	var out []int
	for i, rel := range sum.Releases {
		if rel {
			out = append(out, i)
		}
	}
	return out
}

// Summary returns the parameter summary of a function declared in this
// package, or nil for external/unknown callees.
func (p *Package) Summary(callee *types.Func) *Summary {
	fn := p.declOf[callee]
	if fn == nil {
		return nil
	}
	return p.summaryOf(fn)
}

// summaryOf computes (and caches) fn's parameter summary. Summaries are
// depth-0: they do not consult other summaries while being computed, except
// for release forwarding which the recursion guard keeps finite.
func (p *Package) summaryOf(fn *Func) *Summary {
	if s, ok := p.summaries[fn.Decl]; ok {
		return s
	}
	if p.inSummary[fn.Decl] {
		return nil // recursive cycle: stay conservative
	}
	p.inSummary[fn.Decl] = true
	defer delete(p.inSummary, fn.Decl)

	s := &Summary{
		Escapes:      make([]bool, len(fn.Params)),
		Releases:     make([]bool, len(fn.Params)),
		ReturnsAlias: make([]bool, len(fn.Params)),
	}
	for i, pv := range fn.Params {
		if pv == nil || ShallowSafe(pv.Type()) {
			continue // a scalar parameter cannot carry an aliasing contract
		}
		v := fn.track(Origin{Param: pv}, false)
		for _, fl := range v.Flows {
			switch fl.Kind {
			case FlowFieldStore, FlowGlobalStore, FlowIndexStore, FlowChanSend, FlowGoCapture:
				s.Escapes[i] = true
			case FlowReturn:
				s.ReturnsAlias[i] = true
			case FlowCallArg:
				if fl.Call != nil {
					for _, ri := range p.ReleaseArgs(fl.Call) {
						if ri == fl.ArgIndex {
							s.Releases[i] = true
						}
					}
				}
			}
		}
	}
	p.summaries[fn.Decl] = s
	return s
}

// Track traces origin through fn's body and returns its flow events in
// source order. Callee summaries (one level) classify call arguments and
// propagate taint through alias-returning calls declared in the package.
func (fn *Func) Track(origin Origin) *Value { return fn.track(origin, true) }

// CalleeFunc resolves the called function object, or nil (indirect calls,
// builtins, conversions).
func CalleeFunc(call *ast.CallExpr, info *types.Info) *types.Func {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	obj, _ := info.Uses[id].(*types.Func)
	return obj
}

// CalleeName returns the bare name of the called function or method.
func CalleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// ShallowSafe reports whether copying a value of type t severs all aliasing:
// t contains no strings, pointers, slices, maps, channels, funcs or
// interfaces. Copying a []cuda.DevPtr's elements is safe; copying a
// []string's elements still aliases every string's bytes.
func ShallowSafe(t types.Type) bool {
	return shallowSafe(t, 0)
}

func shallowSafe(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString == 0 && u.Kind() != types.UnsafePointer
	case *types.Array:
		return shallowSafe(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !shallowSafe(u.Field(i).Type(), depth+1) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
