package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A defRecord is one assignment to a named local, in source order. The set
// of records is fixed by the AST; only the tainted flags change during the
// fixpoint rounds.
type defRecord struct {
	obj types.Object
	// pos is where the definition takes effect — the END of the assigning
	// statement, so that a use of the old value on the right-hand side
	// (x = f(x)) is ordered before the new definition.
	pos token.Pos

	kind      defKind
	rhs       ast.Expr // exprRHS: the assigned expression; tupleDef: the call
	container ast.Expr // rangeDef/copyDef: the ranged-over / copied-from expr
	resultIdx int      // tupleDef: which result this lhs binds

	tainted bool
}

type defKind int

const (
	exprRHS  defKind = iota // x = <expr>
	tupleDef                // x, y := f() / v, ok := x.(T) / v, ok := <-ch
	rangeDef                // for _, v := range X — value or key binding
	copyDef                 // copy(x, src)
	zeroDef                 // var x T — explicit untainted definition
)

type tracker struct {
	fn     *Func
	origin Origin
	// useSummaries enables one-level interprocedural propagation; it is off
	// while computing summaries themselves to keep the analysis finite.
	useSummaries bool

	defs map[types.Object][]*defRecord
	// order holds every record in collection order for the fixpoint.
	order []*defRecord

	originSite Site
}

func (fn *Func) track(origin Origin, useSummaries bool) *Value {
	t := &tracker{
		fn:           fn,
		origin:       origin,
		useSummaries: useSummaries,
		defs:         map[types.Object][]*defRecord{},
	}
	t.collectDefs()
	// Fixpoint: recompute taint flags until stable. The record list is
	// fixed, so each round is a linear rescan; functions are small.
	for round := 0; round < 32; round++ {
		changed := false
		for _, d := range t.order {
			nt := t.defTainted(d)
			if nt != d.tainted {
				d.tainted = nt
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	v := &Value{Origin: origin, OriginSite: t.originSite}
	fw := &flowWalker{t: t}
	fw.walk(fn.Body)
	v.Flows = fw.flows
	sort.SliceStable(v.Flows, func(i, j int) bool { return v.Flows[i].Pos < v.Flows[j].Pos })
	if v.OriginSite.Pos == token.NoPos {
		if origin.Expr != nil {
			v.OriginSite.Pos = origin.Expr.Pos()
		} else {
			v.OriginSite.Pos = fn.Body.Pos()
		}
	}
	return v
}

// collectDefs records every named-local definition site in the body,
// including bodies of function literals (closures share the taint space of
// their enclosing function).
func (t *tracker) collectDefs() {
	var stack []ast.Node
	ast.Inspect(t.fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.AssignStmt:
			t.collectAssign(n, stack)
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					t.collectValueSpec(vs, stack)
				}
			}
		case *ast.RangeStmt:
			t.collectRange(n, stack)
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && builtinName(call, t.fn.pkg.Info) == "copy" && len(call.Args) == 2 {
				if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					if obj := t.fn.pkg.Info.ObjectOf(id); obj != nil {
						t.addDef(&defRecord{obj: obj, pos: n.End(), kind: copyDef, container: call.Args[1]}, stack, nil)
					}
				}
			}
		}
		return true
	})
}

func (t *tracker) collectAssign(n *ast.AssignStmt, stack []ast.Node) {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// x, y := f() — or a two-value type assert, map read, channel recv.
		for i, lhs := range n.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := t.fn.pkg.Info.ObjectOf(id)
			if obj == nil {
				continue
			}
			t.addDef(&defRecord{obj: obj, pos: n.End(), kind: tupleDef, rhs: n.Rhs[0], resultIdx: i}, stack, n.Rhs[0])
		}
		return
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := t.fn.pkg.Info.ObjectOf(id)
		if obj == nil {
			continue
		}
		// += etc. keep the old value live; only plain = and := redefine.
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
			continue
		}
		t.addDef(&defRecord{obj: obj, pos: n.End(), kind: exprRHS, rhs: n.Rhs[i]}, stack, n.Rhs[i])
	}
}

func (t *tracker) collectValueSpec(vs *ast.ValueSpec, stack []ast.Node) {
	for i, name := range vs.Names {
		if name.Name == "_" {
			continue
		}
		obj := t.fn.pkg.Info.ObjectOf(name)
		if obj == nil {
			continue
		}
		switch {
		case len(vs.Values) == 0:
			t.addDef(&defRecord{obj: obj, pos: vs.End(), kind: zeroDef}, stack, nil)
		case len(vs.Values) == 1 && len(vs.Names) > 1:
			t.addDef(&defRecord{obj: obj, pos: vs.End(), kind: tupleDef, rhs: vs.Values[0], resultIdx: i}, stack, vs.Values[0])
		case i < len(vs.Values):
			t.addDef(&defRecord{obj: obj, pos: vs.End(), kind: exprRHS, rhs: vs.Values[i]}, stack, vs.Values[i])
		}
	}
}

func (t *tracker) collectRange(n *ast.RangeStmt, stack []ast.Node) {
	bind := func(e ast.Expr) {
		if e == nil {
			return
		}
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := t.fn.pkg.Info.ObjectOf(id)
		if obj == nil {
			return
		}
		t.addDef(&defRecord{obj: obj, pos: n.X.End(), kind: rangeDef, container: n.X}, stack, nil)
	}
	bind(n.Key)
	bind(n.Value)
}

// addDef records d; if rhs is the origin expression, the origin site is the
// assignment itself (needed for loop reasoning).
func (t *tracker) addDef(d *defRecord, stack []ast.Node, rhs ast.Expr) {
	t.defs[d.obj] = append(t.defs[d.obj], d)
	t.order = append(t.order, d)
	if rhs != nil && containsNode(rhs, t.origin.Expr) && t.originSite.Pos == token.NoPos {
		t.originSite = Site{Pos: d.pos, Stack: copyStack(stack)}
	}
}

func copyStack(stack []ast.Node) []ast.Node {
	out := make([]ast.Node, len(stack))
	copy(out, stack)
	return out
}

// containsNode reports whether needle is root or a descendant of root.
func containsNode(root ast.Node, needle ast.Node) bool {
	if needle == nil || root == nil {
		return false
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == needle {
			found = true
		}
		return !found
	})
	return found
}

// defTainted recomputes one record's taint flag from the current state.
func (t *tracker) defTainted(d *defRecord) bool {
	switch d.kind {
	case zeroDef:
		return false
	case exprRHS:
		return t.carriesAt(d.rhs, d.rhs.End())
	case tupleDef:
		if d.rhs == t.origin.Expr {
			return d.resultIdx == t.origin.Result || t.origin.Result < 0
		}
		// v, ok := x.(T): only v aliases; v, ok := <-ch: neither (channels
		// hand off ownership). Otherwise fall back to the call/index rules.
		switch rhs := ast.Unparen(d.rhs).(type) {
		case *ast.TypeAssertExpr:
			return d.resultIdx == 0 && t.carriesAt(rhs.X, rhs.End())
		case *ast.UnaryExpr:
			return false // <-ch
		case *ast.IndexExpr:
			return d.resultIdx == 0 && t.carriesAt(rhs, rhs.End())
		default:
			// Multi-result call: taint every binding if any result aliases.
			return t.carriesAt(d.rhs, d.rhs.End())
		}
	case rangeDef:
		if !t.carriesAt(d.container, d.container.End()) {
			return false
		}
		return !ShallowSafe(d.obj.Type())
	case copyDef:
		if !t.carriesAt(d.container, d.container.End()) {
			return false
		}
		if sl, ok := d.obj.Type().Underlying().(*types.Slice); ok {
			return !ShallowSafe(sl.Elem())
		}
		return false
	}
	return false
}

// identTaintedAt answers the flow-sensitive query: is obj carrying the
// tracked value at pos? Nearest preceding definition wins; a Param origin
// is tainted from its From position (function entry when unset) until its
// first later redefinition.
func (t *tracker) identTaintedAt(obj types.Object, pos token.Pos) bool {
	var nearest *defRecord
	for _, d := range t.defs[obj] {
		if d.pos <= pos && (nearest == nil || d.pos > nearest.pos) {
			nearest = d
		}
	}
	if t.origin.Param != nil && obj == t.origin.Param {
		if pos < t.origin.From {
			return false
		}
		// Definitions before the taint point don't clean anything; a
		// redefinition after it does (or re-taints, per its own flag).
		if nearest == nil || nearest.pos <= t.origin.From {
			return true
		}
		return nearest.tainted
	}
	if nearest != nil {
		return nearest.tainted
	}
	return false
}

// carriesAt reports whether evaluating e at pos yields (something aliasing)
// the tracked value.
func (t *tracker) carriesAt(e ast.Expr, pos token.Pos) bool {
	if e == nil {
		return false
	}
	if e == t.origin.Expr {
		return true
	}
	info := t.fn.pkg.Info
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return false
		}
		return t.identTaintedAt(obj, pos)
	case *ast.ParenExpr:
		return t.carriesAt(e.X, pos)
	case *ast.StarExpr:
		return t.carriesAt(e.X, pos)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return t.carriesAt(e.X, pos)
		}
		return false
	case *ast.SelectorExpr:
		// pkg-qualified idents resolve through the Sel, not through X.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
				return false
			}
		}
		if !t.carriesAt(e.X, pos) {
			return false
		}
		if tv, ok := info.Types[e]; ok && tv.IsValue() {
			return !ShallowSafe(tv.Type)
		}
		return true
	case *ast.IndexExpr:
		// Could be a generic instantiation; only value indexing carries.
		if tv, ok := info.Types[e]; !ok || !tv.IsValue() {
			return false
		} else if ShallowSafe(tv.Type) {
			return false
		}
		return t.carriesAt(e.X, pos)
	case *ast.SliceExpr:
		return t.carriesAt(e.X, pos)
	case *ast.TypeAssertExpr:
		return e.Type != nil && t.carriesAt(e.X, pos)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if t.carriesAt(el, pos) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return t.callCarries(e, pos)
	}
	return false
}

// callCarries decides whether a call expression's result aliases the
// tracked value: conversions (except the copying string<->[]byte pair),
// append/copy semantics, analyzer-declared aliasing results, and one level
// of in-package callee summaries.
func (t *tracker) callCarries(call *ast.CallExpr, pos token.Pos) bool {
	info := t.fn.pkg.Info
	// Conversion T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if !convCarries(info, call.Args[0], tv.Type) {
			return false
		}
		return t.carriesAt(call.Args[0], pos)
	}
	switch builtinName(call, info) {
	case "append":
		if len(call.Args) == 0 {
			return false
		}
		if t.carriesAt(call.Args[0], pos) {
			return true
		}
		for _, a := range call.Args[1:] {
			if !t.carriesAt(a, pos) {
				continue
			}
			if call.Ellipsis.IsValid() {
				// append(dst, src...) copies the elements; the copy only
				// severs aliasing when the elements are shallow-safe.
				if sl, ok := info.TypeOf(a).Underlying().(*types.Slice); ok && ShallowSafe(sl.Elem()) {
					continue
				}
			}
			return true
		}
		return false
	case "":
	default:
		return false // len, cap, min, max, ... produce scalars
	}
	if t.fn.pkg.cfg.AliasResult != nil && t.fn.pkg.cfg.AliasResult(call, info) {
		if t.anyOperandCarries(call, pos) {
			return true
		}
	}
	if t.useSummaries {
		if callee := CalleeFunc(call, info); callee != nil {
			if sum := t.fn.pkg.Summary(callee); sum != nil {
				for i, aliases := range sum.ReturnsAlias {
					if aliases && i < len(call.Args) && t.carriesAt(call.Args[i], pos) {
						return true
					}
				}
			}
		}
	}
	return false
}

// anyOperandCarries reports whether the receiver or any argument of call
// carries the tracked value.
func (t *tracker) anyOperandCarries(call *ast.CallExpr, pos token.Pos) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t.carriesAt(sel.X, pos) {
			return true
		}
	}
	for _, a := range call.Args {
		if t.carriesAt(a, pos) {
			return true
		}
	}
	return false
}

// convCarries reports whether the conversion to target preserves aliasing
// of arg. string([]byte) and []byte(string) copy; everything else that can
// carry an alias (slice renames, struct renames, pointer conversions) does.
func convCarries(info *types.Info, arg ast.Expr, target types.Type) bool {
	from := info.TypeOf(arg)
	if from == nil {
		return true
	}
	fromStr := isString(from)
	toStr := isString(target)
	fromBytes := isByteSlice(from)
	toBytes := isByteSlice(target)
	if (fromStr && toBytes) || (fromBytes && toStr) {
		return false
	}
	return !ShallowSafe(target)
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// builtinName returns the name of the builtin being called, or "".
func builtinName(call *ast.CallExpr, info *types.Info) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.ObjectOf(id).(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
