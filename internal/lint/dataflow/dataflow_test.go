package dataflow

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"testing"
)

// testCfg marks Get as the acquire, Put as the release, and Enc.Bytes as an
// alias-returning method, mirroring the wire pool shape the analyzers use.
var testCfg = Config{
	Release: func(call *ast.CallExpr, info *types.Info) []int {
		if CalleeName(call) == "Put" {
			return []int{0}
		}
		return nil
	},
	AliasResult: func(call *ast.CallExpr, info *types.Info) bool {
		return CalleeName(call) == "Bytes"
	},
}

func analyzeSrc(t *testing.T, src string) (*Package, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.Default(), Error: func(error) {}}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return Analyze([]*ast.File{f}, info, testCfg), fset
}

func findFunc(t *testing.T, pkg *Package, name string) *Func {
	t.Helper()
	for _, fn := range pkg.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

// originCall locates the first call to callee inside fn's body.
func originCall(t *testing.T, pkg *Package, fn *Func, callee string) *ast.CallExpr {
	t.Helper()
	var out *ast.CallExpr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && CalleeName(call) == callee {
			out = call
			return false
		}
		return true
	})
	if out == nil {
		t.Fatalf("no call to %s in %s", callee, fn.Name)
	}
	return out
}

// flowSummary renders flows as "kind@line" strings, deduplicated, sorted.
func flowSummary(fset *token.FileSet, flows []Flow, kinds ...FlowKind) []string {
	want := map[FlowKind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	seen := map[string]bool{}
	var out []string
	for _, f := range flows {
		if len(kinds) > 0 && !want[f.Kind] {
			continue
		}
		s := fmt.Sprintf("%s@%d", f.Kind, fset.Position(f.Pos).Line)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

const poolSrc = `package p

type Enc struct{ buf []byte }

func Get() *Enc        { return &Enc{} }
func Put(e *Enc)       {}
func (e *Enc) Bytes() []byte { return e.buf }

type holder struct{ e *Enc }

var global *Enc

func escapeField(h *holder) {
	e := Get()
	h.e = e
	Put(e)
}

func escapeGlobal() {
	e := Get()
	global = e
}

func escapeChan(ch chan *Enc) {
	e := Get()
	ch <- e
}

func escapeGo() {
	e := Get()
	go func() { _ = e }()
}

func aliasBytes(h *holder) []byte {
	e := Get()
	b := e.Bytes()
	Put(e)
	return b
}

func killed(h *holder) {
	e := Get()
	Put(e)
	e = nil
	h.e = e
}

func releaseWrapper(e *Enc) { Put(e) }

func viaWrapper() {
	e := Get()
	releaseWrapper(e)
}

func storesParam(h *holder, e *Enc) { h.e = e }

func returnsParam(e *Enc) *Enc { return e }
`

func TestTrackPoolValue(t *testing.T) {
	pkg, fset := analyzeSrc(t, poolSrc)

	track := func(fnName string) (*Value, *Func) {
		fn := findFunc(t, pkg, fnName)
		call := originCall(t, pkg, fn, "Get")
		return fn.Track(Origin{Expr: call}), fn
	}

	cases := []struct {
		fn    string
		kinds []FlowKind
		want  []string
	}{
		{"escapeField", []FlowKind{FlowFieldStore}, []string{"store to field@15"}},
		{"escapeGlobal", []FlowKind{FlowGlobalStore}, []string{"store to package-level variable@21"}},
		{"escapeChan", []FlowKind{FlowChanSend}, []string{"channel send@26"}},
		{"escapeGo", []FlowKind{FlowGoCapture}, []string{"goroutine capture@31"}},
		// e.Bytes() aliases the pooled buffer; returning it is a flow.
		{"aliasBytes", []FlowKind{FlowReturn}, []string{"return@38"}},
		// e = nil kills the taint before the field store.
		{"killed", []FlowKind{FlowFieldStore}, nil},
	}
	for _, tc := range cases {
		v, _ := track(tc.fn)
		got := flowSummary(fset, v.Flows, tc.kinds...)
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.fn, got, tc.want)
		}
	}
}

func TestReleaseDetection(t *testing.T) {
	pkg, _ := analyzeSrc(t, poolSrc)

	fn := findFunc(t, pkg, "escapeField")
	v := fn.Track(Origin{Expr: originCall(t, pkg, fn, "Get")})
	var releases int
	for _, f := range v.Flows {
		if f.Kind == FlowCallArg && f.Call != nil {
			for _, i := range pkg.ReleaseArgs(f.Call) {
				if i == f.ArgIndex {
					releases++
				}
			}
		}
	}
	if releases != 1 {
		t.Errorf("escapeField: want 1 direct release, got %d", releases)
	}

	// releaseWrapper forwards its parameter to Put; the one-level summary
	// makes viaWrapper's call count as a release too.
	fn = findFunc(t, pkg, "viaWrapper")
	v = fn.Track(Origin{Expr: originCall(t, pkg, fn, "Get")})
	releases = 0
	for _, f := range v.Flows {
		if f.Kind == FlowCallArg && f.Call != nil {
			for _, i := range pkg.ReleaseArgs(f.Call) {
				if i == f.ArgIndex {
					releases++
				}
			}
		}
	}
	if releases != 1 {
		t.Errorf("viaWrapper: want 1 summary release, got %d", releases)
	}
}

func TestSummaries(t *testing.T) {
	pkg, _ := analyzeSrc(t, poolSrc)

	sumOf := func(name string) *Summary {
		fn := findFunc(t, pkg, name)
		obj := pkg.Info.Defs[fn.Decl.(*ast.FuncDecl).Name].(*types.Func)
		return pkg.Summary(obj)
	}

	if s := sumOf("storesParam"); s == nil || !s.Escapes[1] {
		t.Errorf("storesParam: want Escapes[1], got %+v", s)
	}
	if s := sumOf("returnsParam"); s == nil || !s.ReturnsAlias[0] {
		t.Errorf("returnsParam: want ReturnsAlias[0], got %+v", s)
	}
	if s := sumOf("releaseWrapper"); s == nil || !s.Releases[0] {
		t.Errorf("releaseWrapper: want Releases[0], got %+v", s)
	}
}

func TestParamOrigin(t *testing.T) {
	pkg, fset := analyzeSrc(t, poolSrc)
	fn := findFunc(t, pkg, "storesParam")
	v := fn.Track(Origin{Param: fn.Params[1]})
	got := flowSummary(fset, v.Flows, FlowFieldStore)
	if len(got) != 1 {
		t.Errorf("storesParam param origin: want 1 field store, got %v", got)
	}
}

const seqSrc = `package p

type Enc struct{ buf []byte }

func Get() *Enc  { return &Enc{} }
func Put(e *Enc) {}

func earlyReturn(fail bool) {
	e := Get()
	if fail {
		Put(e)
		return
	}
	Put(e)
}

func doublePut(fail bool) {
	e := Get()
	if fail {
		Put(e)
	}
	Put(e)
}

func exclusiveArms(fail bool) {
	e := Get()
	if fail {
		Put(e)
	} else {
		Put(e)
	}
}

func putInLoop(n int) {
	e := Get()
	for i := 0; i < n; i++ {
		Put(e)
	}
}

func acquireInLoop(n int) {
	for i := 0; i < n; i++ {
		e := Get()
		Put(e)
	}
}
`

// releaseFlows returns the CallArg flows that hit the release table.
func releaseFlows(pkg *Package, v *Value) []Flow {
	var out []Flow
	for _, f := range v.Flows {
		if f.Kind != FlowCallArg || f.Call == nil {
			continue
		}
		for _, i := range pkg.ReleaseArgs(f.Call) {
			if i == f.ArgIndex {
				out = append(out, f)
			}
		}
	}
	return out
}

func TestSequential(t *testing.T) {
	pkg, _ := analyzeSrc(t, seqSrc)

	rels := func(name string) (*Value, []Flow) {
		fn := findFunc(t, pkg, name)
		v := fn.Track(Origin{Expr: originCall(t, pkg, fn, "Get")})
		return v, releaseFlows(pkg, v)
	}

	// Put-then-return / else-Put: the two releases never both execute.
	if _, r := rels("earlyReturn"); len(r) != 2 || Sequential(r[0].Site, r[1].Site) {
		t.Errorf("earlyReturn: releases should not be sequential (got %d flows)", len(r))
	}
	// No return between them: both execute on the fail path.
	if _, r := rels("doublePut"); len(r) != 2 || !Sequential(r[0].Site, r[1].Site) {
		t.Errorf("doublePut: releases should be sequential (got %d flows)", len(r))
	}
	// if/else arms are mutually exclusive.
	if _, r := rels("exclusiveArms"); len(r) != 2 || !MutuallyExclusive(r[0].Site, r[1].Site) {
		t.Errorf("exclusiveArms: releases should be mutually exclusive (got %d flows)", len(r))
	}
}

func TestLoopBetween(t *testing.T) {
	pkg, _ := analyzeSrc(t, seqSrc)

	fn := findFunc(t, pkg, "putInLoop")
	v := fn.Track(Origin{Expr: originCall(t, pkg, fn, "Get")})
	r := releaseFlows(pkg, v)
	if len(r) != 1 || !LoopBetween(v.OriginSite, r[0].Site) {
		t.Errorf("putInLoop: release should be in a loop past the origin")
	}

	fn = findFunc(t, pkg, "acquireInLoop")
	v = fn.Track(Origin{Expr: originCall(t, pkg, fn, "Get")})
	r = releaseFlows(pkg, v)
	if len(r) != 1 || LoopBetween(v.OriginSite, r[0].Site) {
		t.Errorf("acquireInLoop: acquire and release share the loop")
	}
}

const sanitizeSrc = `package p

type Dec struct{ scratch []string }

func (d *Dec) StrsShared() []string { return d.scratch }

type DevPtr uintptr

type launch struct {
	Mutates []DevPtr
	Names   []string
}

type sink struct {
	names []string
	ptrs  []DevPtr
	raw   []byte
	s     string
}

func retainShared(d *Dec, s *sink) {
	names := d.StrsShared()
	s.names = names
}

func cloneElements(d *Dec, s *sink) {
	names := d.StrsShared()
	s.names = append([]string(nil), names...)
}

func scalarCopy(l launch, s *sink) {
	s.ptrs = append([]DevPtr(nil), l.Mutates...)
}

func stringConv(b []byte, s *sink) {
	s.s = string(b)
}

func byteKeep(b []byte, s *sink) {
	s.raw = b
}
`

func TestSanitizers(t *testing.T) {
	pkg, fset := analyzeSrc(t, sanitizeSrc)

	stores := func(name string, origin Origin) []string {
		fn := findFunc(t, pkg, name)
		return flowSummary(fset, fn.Track(origin).Flows, FlowFieldStore)
	}
	sharedOrigin := func(name string) Origin {
		fn := findFunc(t, pkg, name)
		return Origin{Expr: originCall(t, pkg, fn, "StrsShared")}
	}

	if got := stores("retainShared", sharedOrigin("retainShared")); len(got) != 1 {
		t.Errorf("retainShared: want 1 field store, got %v", got)
	}
	// append([]string(nil), names...) copies the headers but the strings
	// still alias the decoder scratch — NOT a sanitizer.
	if got := stores("cloneElements", sharedOrigin("cloneElements")); len(got) != 1 {
		t.Errorf("cloneElements: want 1 field store (string copy is shallow), got %v", got)
	}

	paramOrigin := func(name string, i int) Origin {
		fn := findFunc(t, pkg, name)
		return Origin{Param: fn.Params[i]}
	}
	// append([]DevPtr(nil), ...) fully severs scalar elements.
	if got := stores("scalarCopy", paramOrigin("scalarCopy", 0)); len(got) != 0 {
		t.Errorf("scalarCopy: scalar append should sanitize, got %v", got)
	}
	// string(b) copies the bytes.
	if got := stores("stringConv", paramOrigin("stringConv", 0)); len(got) != 0 {
		t.Errorf("stringConv: conversion should sanitize, got %v", got)
	}
	if got := stores("byteKeep", paramOrigin("byteKeep", 0)); len(got) != 1 {
		t.Errorf("byteKeep: want 1 field store, got %v", got)
	}
}

func TestShallowSafe(t *testing.T) {
	pkg, _ := analyzeSrc(t, sanitizeSrc)
	lookup := func(name string) types.Type {
		for id, obj := range pkg.Info.Defs {
			if obj != nil && id.Name == name {
				if tn, ok := obj.(*types.TypeName); ok {
					return tn.Type()
				}
			}
		}
		t.Fatalf("type %s not found", name)
		return nil
	}
	if !ShallowSafe(lookup("DevPtr")) {
		t.Error("DevPtr should be shallow-safe")
	}
	if ShallowSafe(lookup("launch")) {
		t.Error("launch contains slices; not shallow-safe")
	}
	if ShallowSafe(types.Typ[types.String]) {
		t.Error("string is not shallow-safe")
	}
}

func TestDeferredFlows(t *testing.T) {
	src := `package p

type Enc struct{ buf []byte }

func Get() *Enc  { return &Enc{} }
func Put(e *Enc) {}

func deferredPut() {
	e := Get()
	defer Put(e)
	_ = e.buf
}
`
	pkg, _ := analyzeSrc(t, src)
	fn := findFunc(t, pkg, "deferredPut")
	v := fn.Track(Origin{Expr: originCall(t, pkg, fn, "Get")})
	r := releaseFlows(pkg, v)
	if len(r) != 1 || !r[0].Deferred {
		t.Fatalf("want one deferred release, got %+v", r)
	}
	var plainUse bool
	for _, f := range v.Flows {
		if f.Kind == FlowUse && !f.Deferred {
			plainUse = true
		}
	}
	if !plainUse {
		t.Error("want a non-deferred use of e")
	}
}
