package dataflow

import (
	"go/ast"
	"go/types"
)

// flowWalker performs the final pass over a function body, recording every
// event involving an expression that carries the tracked value at that
// point. It maintains the enclosing-node stack so each Flow can reason
// about branches, and a defer depth so flows inside defer statements are
// marked as executing at function exit.
type flowWalker struct {
	t          *tracker
	stack      []ast.Node
	deferDepth int
	flows      []Flow
}

func (w *flowWalker) site(n ast.Node) Site {
	return Site{Pos: n.Pos(), Stack: copyStack(w.stack)}
}

func (w *flowWalker) emit(f Flow) {
	f.Deferred = w.deferDepth > 0
	w.flows = append(w.flows, f)
}

func (w *flowWalker) carries(e ast.Expr) bool {
	if e == nil {
		return false
	}
	return w.t.carriesAt(e, e.Pos())
}

func (w *flowWalker) walk(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			popped := w.stack[len(w.stack)-1]
			w.stack = w.stack[:len(w.stack)-1]
			if _, ok := popped.(*ast.DeferStmt); ok {
				w.deferDepth--
			}
			return true
		}
		w.stack = append(w.stack, n)
		switch n := n.(type) {
		case *ast.DeferStmt:
			w.deferDepth++
		case *ast.GoStmt:
			w.goStmt(n)
			// The goroutine body runs concurrently; the capture itself is
			// the event. Pop manually since we stop the descent.
			w.stack = w.stack[:len(w.stack)-1]
			return false
		case *ast.AssignStmt:
			w.assign(n)
		case *ast.SendStmt:
			if w.carries(n.Value) {
				w.emit(Flow{Site: w.site(n), Kind: FlowChanSend, Expr: n.Value})
			}
			if w.carries(n.Chan) {
				w.emit(Flow{Site: w.site(n), Kind: FlowUse, Expr: n.Chan})
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if w.carries(r) {
					w.emit(Flow{Site: w.site(n), Kind: FlowReturn, Expr: r})
				}
			}
		case *ast.CallExpr:
			w.call(n)
		case *ast.Ident:
			w.identUse(n)
		}
		return true
	})
}

// assign records store flows for non-ident destinations and Use flows for
// tracked values read on the right-hand side of a redefinition (the defs
// themselves were collected earlier).
func (w *flowWalker) assign(n *ast.AssignStmt) {
	info := w.t.fn.pkg.Info
	for i, lhs := range n.Lhs {
		var rhs ast.Expr
		if len(n.Rhs) == len(n.Lhs) {
			rhs = n.Rhs[i]
		} else if len(n.Rhs) == 1 {
			rhs = n.Rhs[0]
		}
		if rhs == nil || !w.carries(rhs) {
			continue
		}
		switch dst := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if obj := info.ObjectOf(dst); obj != nil {
				if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					w.emit(Flow{Site: w.site(n), Kind: FlowGlobalStore, Expr: rhs, Dest: dst})
				}
			}
		case *ast.SelectorExpr:
			if id, ok := dst.X.(*ast.Ident); ok {
				if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
					w.emit(Flow{Site: w.site(n), Kind: FlowGlobalStore, Expr: rhs, Dest: dst})
					continue
				}
			}
			w.emit(Flow{Site: w.site(n), Kind: FlowFieldStore, Expr: rhs, Dest: dst})
		case *ast.IndexExpr:
			w.emit(Flow{Site: w.site(n), Kind: FlowIndexStore, Expr: rhs, Dest: dst})
		case *ast.StarExpr:
			// Store through a pointer: the pointee may outlive the frame.
			w.emit(Flow{Site: w.site(n), Kind: FlowFieldStore, Expr: rhs, Dest: dst})
		}
	}
}

// goStmt records capture flows: tracked call arguments, a tracked method
// receiver, and tracked free variables of a `go func(){...}` closure.
func (w *flowWalker) goStmt(n *ast.GoStmt) {
	call := n.Call
	for i, a := range call.Args {
		if w.carries(a) {
			w.emit(Flow{Site: w.site(n), Kind: FlowGoCapture, Expr: a, Call: call, ArgIndex: i, CalleeName: CalleeName(call)})
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && w.carries(sel.X) {
		w.emit(Flow{Site: w.site(n), Kind: FlowGoCapture, Expr: sel.X, Call: call, ArgIndex: -1, CalleeName: CalleeName(call)})
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		for _, id := range w.freeTaintedIdents(lit) {
			w.emit(Flow{Site: w.site(n), Kind: FlowGoCapture, Expr: id, Call: call, ArgIndex: -1})
		}
	}
}

// freeTaintedIdents returns one representative ident per tracked object
// referenced inside lit but declared outside it.
func (w *flowWalker) freeTaintedIdents(lit *ast.FuncLit) []*ast.Ident {
	info := w.t.fn.pkg.Info
	seen := map[types.Object]bool{}
	var out []*ast.Ident
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.ObjectOf(id)
		if obj == nil || seen[obj] {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the closure
		}
		if w.t.identTaintedAt(obj, lit.Pos()) {
			seen[obj] = true
			out = append(out, id)
		}
		return true
	})
	return out
}

// call records CallArg flows for tracked arguments and receivers.
func (w *flowWalker) call(n *ast.CallExpr) {
	info := w.t.fn.pkg.Info
	if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
		return // conversion, handled by carriesAt
	}
	if builtinName(n, info) != "" {
		return
	}
	name := CalleeName(n)
	for i, a := range n.Args {
		if w.carries(a) {
			w.emit(Flow{Site: w.site(n), Kind: FlowCallArg, Expr: a, Call: n, ArgIndex: i, CalleeName: name})
		}
	}
	if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && w.carries(sel.X) {
		w.emit(Flow{Site: w.site(n), Kind: FlowCallArg, Expr: sel.X, Call: n, ArgIndex: -1, CalleeName: name})
	}
}

// identUse records a bare Use flow for a tracked ident in read position.
// Writes are skipped: assignment left-hand sides were handled in assign.
func (w *flowWalker) identUse(id *ast.Ident) {
	obj := w.t.fn.pkg.Info.ObjectOf(id)
	if obj == nil {
		return
	}
	if _, ok := obj.(*types.Var); !ok {
		return
	}
	if !w.t.identTaintedAt(obj, id.Pos()) {
		return
	}
	// Skip idents that are assignment destinations.
	for i := len(w.stack) - 2; i >= 0; i-- {
		switch p := w.stack[i].(type) {
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if ast.Unparen(lhs) == ast.Node(id) {
					return
				}
			}
		case *ast.KeyValueExpr:
			if p.Key == ast.Node(id) {
				return
			}
		case *ast.SelectorExpr:
			if p.Sel == ast.Node(id) {
				return
			}
		}
		if _, ok := w.stack[i].(ast.Stmt); ok {
			break
		}
	}
	w.emit(Flow{Site: w.site(id), Kind: FlowUse, Expr: id})
}
