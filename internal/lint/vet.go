package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file implements the `go vet -vettool` protocol (the same one
// x/tools' unitchecker speaks), so dgsfvet can run as
//
//	go vet -vettool=$(pwd)/dgsfvet ./...
//
// The go command invokes the tool three ways:
//
//	dgsfvet -V=full           print a version fingerprint
//	dgsfvet -flags            print supported flags as JSON
//	dgsfvet [-json] foo.cfg   analyze one package described by the cfg file
//
// The cfg file carries the package's file list and an ImportMap/PackageFile
// mapping for resolving imports to export data — no `go list` calls needed.

// vetConfig mirrors the JSON config the go command writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoreFiles               []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetMain handles one vettool invocation if args match the protocol, and
// reports whether it did. On a cfg-file invocation it exits the process
// itself (exit 2 when diagnostics were found, like go vet).
func VetMain(args []string, analyzers []*Analyzer) bool {
	if len(args) == 0 {
		return false
	}
	switch {
	case args[0] == "-V=full" || (len(args) >= 2 && args[0] == "-V" && args[1] == "full"):
		// The go command caches vet results keyed on this fingerprint.
		fmt.Printf("dgsfvet version devel comments-go-here buildID=%s\n", buildFingerprint(analyzers))
		os.Exit(0)
	case args[0] == "-flags":
		// Report the standard flags go vet may pass. JSON array of objects.
		fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit JSON output"}]`)
		os.Exit(0)
	}
	jsonOut := false
	rest := args
	for len(rest) > 0 && strings.HasPrefix(rest[0], "-") {
		if rest[0] == "-json" || rest[0] == "-json=true" {
			jsonOut = true
		}
		rest = rest[1:]
	}
	if len(rest) != 1 || !strings.HasSuffix(rest[0], ".cfg") {
		return false
	}
	vetRun(rest[0], jsonOut, analyzers)
	return true // unreachable; vetRun exits
}

// buildFingerprint folds the analyzer names and docs into a stable ID so
// that editing an analyzer invalidates go vet's result cache.
func buildFingerprint(analyzers []*Analyzer) string {
	h := uint64(1469598103934665603) // FNV offset basis
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	for _, a := range analyzers {
		mix(a.Name)
		mix(a.Doc)
	}
	return fmt.Sprintf("%016x/%016x", h, h)
}

func vetRun(cfgPath string, jsonOut bool, analyzers []*Analyzer) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("%s: %w", cfgPath, err))
	}
	// Facts are not used by dgsfvet, but the go command requires the vetx
	// output file to exist even for VetxOnly (dependency) packages.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}

	fset := token.NewFileSet()
	parsed, err := parseAll(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		fatal(err)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := NewInfo()
	pkg, _ := conf.Check(cfg.ImportPath, fset, parsed, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		for _, e := range typeErrs {
			fmt.Fprintln(os.Stderr, e)
		}
		os.Exit(1)
	}

	diags, err := RunAnalyzers(fset, parsed, pkg, info, analyzers)
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		emitJSON(cfg.ImportPath, diags)
		os.Exit(0)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// emitJSON prints diagnostics in go vet's -json shape:
// {"pkgpath": {"analyzer": [{"posn": ..., "message": ...}]}}.
func emitJSON(pkgPath string, diags []Diagnostic) {
	byAnalyzer := map[string][]map[string]string{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], map[string]string{
			"posn":    d.Pos.String(),
			"message": d.Message,
		})
	}
	names := make([]string, 0, len(byAnalyzer))
	for n := range byAnalyzer {
		names = append(names, n)
	}
	sort.Strings(names)
	out := map[string]map[string][]map[string]string{pkgPath: byAnalyzer}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func parseAll(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dgsfvet:", err)
	os.Exit(1)
}
