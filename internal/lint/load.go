package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string // as reported by go list (test variants keep their "[...]" marker)
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	// TypeErrors collects type-checker errors. Analysis still runs on a
	// partially-checked package, but dgsfvet reports these and fails.
	TypeErrors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	ForTest      string
	Name         string
	Dir          string
	Standard     bool
	Export       string
	GoFiles      []string
	XTestGoFiles []string
	DepOnly      bool
}

// Load loads the packages matching patterns (plus their test variants) in
// dir, type-checks them against compiler export data, and returns them
// ready for analysis.
//
// It shells out to `go list -test -deps -export -json`: -export makes the
// go tool produce (or reuse) export data for every dependency, which the
// type-checker then imports, so no source re-typechecking of dependencies
// is needed. Test variants ("p [p.test]") are preferred over the plain
// package because their file list includes _test.go files.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-test", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, errb.String())
	}
	return loadFromList(&out)
}

func loadFromList(r io.Reader) ([]*Package, error) {
	dec := json.NewDecoder(r)
	byPath := map[string]*listPkg{}
	var order []*listPkg
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parse go list output: %w", err)
		}
		byPath[lp.ImportPath] = lp
		order = append(order, lp)
	}

	// exports maps an import path (including "[...]" variant markers) to its
	// export data file.
	exports := map[string]string{}
	for _, lp := range byPath {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	baseOf := func(path string) string {
		if i := strings.Index(path, " ["); i >= 0 {
			return path[:i]
		}
		return path
	}

	// Select analysis targets: non-standard, non-harness packages that were
	// named by the patterns (not pulled in as dependencies). When a package
	// has an internal-test variant ("p [p.test]"), analyze the variant
	// instead of the plain package; external test packages ("p_test
	// [p.test]") are analyzed as well.
	named := map[string]bool{} // base import paths named by the patterns
	for _, lp := range order {
		if !lp.DepOnly && !lp.Standard && !strings.HasSuffix(baseOf(lp.ImportPath), ".test") {
			named[baseOf(lp.ImportPath)] = true
		}
	}
	hasVariant := map[string]bool{} // base paths with an internal-test variant
	for _, lp := range order {
		if lp.ForTest != "" && baseOf(lp.ImportPath) == lp.ForTest {
			hasVariant[lp.ImportPath[:strings.Index(lp.ImportPath, " [")]] = true
		}
	}

	var targets []*listPkg
	for _, lp := range order {
		base := baseOf(lp.ImportPath)
		if lp.Standard || strings.HasSuffix(base, ".test") {
			continue
		}
		switch {
		case lp.ForTest != "" && base == lp.ForTest:
			// Internal-test variant of a named package.
			if named[lp.ForTest] {
				targets = append(targets, lp)
			}
		case lp.ForTest != "":
			// External test package (p_test).
			if named[lp.ForTest] {
				targets = append(targets, lp)
			}
		default:
			if !lp.DepOnly && named[base] && !hasVariant[base] {
				targets = append(targets, lp)
			}
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, lp := range targets {
		p, err := typecheckListed(fset, lp, exports)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// typecheckListed parses and type-checks one go-list entry against export
// data. For a test variant "p [p.test]", imports resolve preferentially to
// sibling "[p.test]" variants so that an external test package sees the
// test-augmented API of the package under test.
func typecheckListed(fset *token.FileSet, lp *listPkg, exports map[string]string) (*Package, error) {
	variant := ""
	if i := strings.Index(lp.ImportPath, " ["); i >= 0 {
		variant = strings.TrimSuffix(lp.ImportPath[i+2:], "]")
	}

	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if variant != "" {
			if f, ok := exports[path+" ["+variant+"]"]; ok {
				return os.Open(f)
			}
		}
		if f, ok := exports[path]; ok {
			return os.Open(f)
		}
		return nil, fmt.Errorf("no export data for %q", path)
	}

	out := &Package{ImportPath: lp.ImportPath, Dir: lp.Dir, Fset: fset, Files: files}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { out.TypeErrors = append(out.TypeErrors, err) },
	}
	info := NewInfo()
	pkgPath := lp.ImportPath
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	pkg, _ := conf.Check(pkgPath, fset, files, info) // errors collected via conf.Error
	out.Pkg = pkg
	out.Info = info
	return out, nil
}
