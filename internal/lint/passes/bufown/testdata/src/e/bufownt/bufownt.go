// Package bufownt exercises the bufown analyzer: pooled codec lifecycle
// (double release, use after release, escape past a local release),
// borrowed transport results, and borrowed byte arguments.
package bufownt

import (
	"e/internal/remoting"
	"e/internal/remoting/wire"
	"e/internal/sim"
)

type holder struct {
	enc *wire.Encoder
	buf []byte
}

var globalEnc *wire.Encoder

// --- positives ---

func doublePut() {
	e := wire.GetEncoder()
	e.U64(1)
	wire.PutEncoder(e)
	wire.PutEncoder(e) // want "called again on the same pooled value"
}

func deferAndExplicitPut(payload []byte) {
	d := wire.GetDecoder(payload)
	defer wire.PutDecoder(d)
	_ = d.U64()
	wire.PutDecoder(d) // want "again by the deferred PutDecoder"
}

func useAfterPut() uint64 {
	d := wire.GetDecoder(nil)
	wire.PutDecoder(d)
	return d.U64() // want "after its PutDecoder"
}

func useAfterPutViaAlias(h *holder) []byte {
	e := wire.GetEncoder()
	b := e.Bytes()
	wire.PutEncoder(e)
	return b // want "after its PutEncoder"
}

func escapeFieldWithPut(h *holder) {
	e := wire.GetEncoder()
	h.enc = e // want "escapes (store to field) but is also released locally"
	wire.PutEncoder(e)
}

func escapeGlobalWithPut() {
	e := wire.GetEncoder()
	globalEnc = e // want "escapes (store to package-level variable) but is also released locally"
	wire.PutEncoder(e)
}

func escapeChanWithPut(ch chan *wire.Encoder) {
	e := wire.GetEncoder()
	ch <- e // want "escapes (channel send) but is also released locally"
	wire.PutEncoder(e)
}

func escapeGoWithPut() {
	e := wire.GetEncoder()
	go func() { // want "escapes (goroutine capture) but is also released locally"
		e.U64(1)
	}()
	wire.PutEncoder(e)
}

func putInLoop(n int) {
	e := wire.GetEncoder()
	for i := 0; i < n; i++ {
		wire.PutEncoder(e) // want "inside a loop releases the same pooled value"
	}
}

func retainBorrowedReply(p *sim.Proc, c *remoting.Caller, h *holder, req []byte) error {
	rep, err := c.Roundtrip(p, req, 0)
	if err != nil {
		return err
	}
	h.buf = rep // want "borrowed from the transport"
	return nil
}

func retainBorrowedVec(p *sim.Proc, c *remoting.Caller, h *holder, req, bulk []byte) error {
	_, respBulk, err := c.RoundtripVec(p, req, bulk, nil)
	if err != nil {
		return err
	}
	h.buf = respBulk // want "borrowed from the transport"
	return nil
}

var retainedBulk []byte

// WriteFrameVec mirrors the transport entry point: argument positions 1
// and 2 are borrowed from the caller until return.
func WriteFrameVec(w *holder, payload, bulk []byte, data int64) error {
	retainedBulk = bulk // want "borrowed from the caller only until WriteFrameVec returns"
	return nil
}

// --- negatives ---

func straightLine() uint64 {
	d := wire.GetDecoder(nil)
	v := d.U64()
	wire.PutDecoder(d)
	return v
}

func earlyReturnPut(fail bool) error {
	e := wire.GetEncoder()
	e.U64(1)
	if fail {
		wire.PutEncoder(e)
		return nil
	}
	e.U64(2)
	wire.PutEncoder(e)
	return nil
}

func exclusiveArmsPut(fail bool) {
	e := wire.GetEncoder()
	if fail {
		wire.PutEncoder(e)
	} else {
		e.U64(1)
		wire.PutEncoder(e)
	}
}

// transferOwnership hands the encoder to another owner without a local
// release: the transfer idiom, not a violation.
func transferOwnership(ch chan *wire.Encoder) {
	e := wire.GetEncoder()
	e.U64(1)
	ch <- e
}

// dropOnError loses the codec on the error path on purpose: the transport
// may still hold the request, and the pool reallocates.
func dropOnError(fail bool) error {
	e := wire.GetEncoder()
	e.U64(1)
	if fail {
		return nil
	}
	wire.PutEncoder(e)
	return nil
}

func acquireAndPutInLoop(n int) {
	for i := 0; i < n; i++ {
		e := wire.GetEncoder()
		e.U64(uint64(i))
		wire.PutEncoder(e)
	}
}

func deferThenUse(payload []byte) uint64 {
	d := wire.GetDecoder(payload)
	defer wire.PutDecoder(d)
	return d.U64()
}

// guardedDeferRelease is the conditional-cleanup idiom: the deferred Put
// only runs when the explicit path did not.
func guardedDeferRelease(fail bool) {
	e := wire.GetEncoder()
	done := false
	defer func() {
		if !done {
			wire.PutEncoder(e)
		}
	}()
	if fail {
		return
	}
	done = true
	wire.PutEncoder(e)
}

// decodeBorrowedReply consumes the borrowed reply before the next call:
// decoding copies what it needs.
func decodeBorrowedReply(p *sim.Proc, c *remoting.Caller, req []byte) (uint64, error) {
	rep, err := c.Roundtrip(p, req, 0)
	if err != nil {
		return 0, err
	}
	d := wire.GetDecoder(rep)
	v := d.U64()
	wire.PutDecoder(d)
	return v, nil
}

// copyBorrowedReply retains a copy, not the borrow.
func copyBorrowedReply(p *sim.Proc, c *remoting.Caller, h *holder, req []byte) error {
	rep, err := c.Roundtrip(p, req, 0)
	if err != nil {
		return err
	}
	h.buf = append([]byte(nil), rep...)
	return nil
}

// reacquireAfterPut rebinds the variable; the second value is fresh.
func reacquireAfterPut() {
	e := wire.GetEncoder()
	e.U64(1)
	wire.PutEncoder(e)
	e = wire.GetEncoder()
	e.U64(2)
	wire.PutEncoder(e)
}
