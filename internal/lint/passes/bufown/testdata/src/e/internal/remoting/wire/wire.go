// Package wire is a miniature mirror of the zero-copy codec package: the
// bufown analyzer matches pool functions by name inside any package whose
// path ends in remoting/wire.
package wire

// Encoder is a pooled message encoder.
type Encoder struct{ buf []byte }

// Decoder is a pooled message decoder.
type Decoder struct{ buf []byte }

// GetEncoder leases an encoder from the pool.
func GetEncoder() *Encoder { return &Encoder{} }

// PutEncoder returns an encoder to the pool.
func PutEncoder(e *Encoder) {}

// GetDecoder leases a decoder positioned over buf.
func GetDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// PutDecoder returns a decoder to the pool.
func PutDecoder(d *Decoder) {}

// U64 appends a value.
func (e *Encoder) U64(v uint64) {}

// Bytes returns the encoded frame, aliasing the pooled buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// U64 decodes a value.
func (d *Decoder) U64() uint64 { return 0 }

// Str decodes a string (copied; safe to retain).
func (d *Decoder) Str() string { return "" }
