// Package remoting is a miniature mirror of the transport: the bufown
// analyzer matches roundtrip entry points by name inside any package whose
// path ends in internal/remoting.
package remoting

import "e/internal/sim"

// Caller is the synchronous transport handle.
type Caller struct{}

// Roundtrip sends req and returns the reply, borrowed until the next call.
func (c *Caller) Roundtrip(p *sim.Proc, req []byte, reqData int64) ([]byte, error) {
	return nil, nil
}

// RoundtripTimeout is Roundtrip with a deadline.
func (c *Caller) RoundtripTimeout(p *sim.Proc, req []byte, reqData int64, d int64) ([]byte, error) {
	return nil, nil
}

// RoundtripVec sends req plus borrowed reqBulk; both results are borrowed.
func (c *Caller) RoundtripVec(p *sim.Proc, req, reqBulk, respDst []byte) ([]byte, []byte, error) {
	return nil, nil, nil
}
