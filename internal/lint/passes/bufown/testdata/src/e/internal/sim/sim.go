// Package sim is a miniature mirror of the blocking-primitive package:
// transport signatures take a *Proc.
package sim

// Proc is a simulated process handle.
type Proc struct{}
