package bufown_test

import (
	"testing"

	"dgsf/internal/lint/linttest"
	"dgsf/internal/lint/passes/bufown"
	"dgsf/internal/remoting/gen"
)

func TestBufown(t *testing.T) {
	linttest.Run(t, "testdata", bufown.Analyzer, "e/bufownt")
}

// TestDefaultTablesAreGenerated pins the analyzer to apigen's generated
// buffer-ownership contract table, not a hand-maintained copy.
func TestDefaultTablesAreGenerated(t *testing.T) {
	if len(bufown.Acquires) == 0 || len(bufown.Releases) == 0 {
		t.Fatal("default pool tables are empty")
	}
	for get, put := range bufown.Acquires {
		if gen.PoolAcquire[get] != put {
			t.Errorf("analyzer pairs %s->%s but gen.PoolAcquire does not", get, put)
		}
	}
	for name := range bufown.BorrowedResults {
		if !gen.BorrowedResultCalls[name] {
			t.Errorf("analyzer borrows results of %s but gen.BorrowedResultCalls does not", name)
		}
	}
	for name := range gen.BorrowedArgCalls {
		if len(bufown.BorrowedArgs[name]) == 0 {
			t.Errorf("gen.BorrowedArgCalls has %s but the analyzer table does not", name)
		}
	}
}
