// Package simdeterminism forbids nondeterminism sources in simulation-driven
// code: wall-clock reads, the global math/rand generator, and unordered map
// iteration that feeds simulated events. The simulator's reproducibility
// guarantee (same seed, same trace) holds only if every event's timing and
// payload derive from the engine seed; see internal/sim's per-Proc RNG.
package simdeterminism

import (
	"go/ast"
	"go/types"

	"dgsf/internal/lint"
)

// Analyzer is the simdeterminism pass.
var Analyzer = &lint.Analyzer{
	Name: "simdeterminism",
	Doc: "forbid time.Now, global math/rand and unordered map iteration feeding " +
		"sim events; use p.Now()/p.Rand() so runs replay deterministically " +
		"(//lint:allow simdeterminism for real-clock paths like the TCP transport)",
	Run: run,
}

// forbiddenTime lists time-package functions that read or depend on the real
// clock. Constructors like time.Duration arithmetic are fine.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRand lists math/rand functions that construct explicitly-seeded
// generators (the deterministic per-Proc pattern); every other package-level
// function uses the shared global source.
var allowedRand = map[string]bool{"New": true, "NewSource": true}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue // tests may time themselves
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkSelector(pass *lint.Pass, sel *ast.SelectorExpr) {
	obj := pass.ObjectOf(sel.Sel)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Only package-level functions: methods (e.g. (*rand.Rand).Intn,
	// (time.Time).Sub) have a receiver and are deterministic given their
	// receiver.
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTime[fn.Name()] {
			pass.Reportf(sel.Pos(), "time.%s reads the real clock; use the Proc/engine virtual clock (p.Now) in simulation-driven code", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRand[fn.Name()] {
			pass.Reportf(sel.Pos(), "rand.%s uses the global RNG; use the deterministic per-Proc generator (p.Rand) seeded from the engine seed", fn.Name())
		}
	}
}

// checkRange flags `for k := range m` over a map when the loop body makes a
// call involving a *sim.Proc or other internal/sim value — map order is
// random per run, so such a loop emits simulated events in random order — or
// draws from a *rand.Rand: even an explicitly-seeded generator becomes
// nondeterministic when its draw order follows map order. The chaos schedule
// generator is the canonical client of the second rule: a fault plan must be
// a pure function of (seed, trial), which randomized draw order breaks
// silently.
func checkRange(pass *lint.Pass, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	var badSim, badRand ast.Node
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if badSim != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callTouchesSim(pass, call) {
			badSim = call
			return false
		}
		if badRand == nil && callDrawsRand(pass, call) {
			badRand = call
		}
		return true
	})
	if badSim != nil {
		pass.Reportf(rng.Pos(), "map iteration order is randomized but this loop drives simulated events (%s); collect and sort the keys first", exprString(pass, badSim))
		return
	}
	if badRand != nil {
		pass.Reportf(rng.Pos(), "map iteration order is randomized but this loop draws from an RNG (%s), so the draw sequence differs per run; collect and sort the keys first", exprString(pass, badRand))
	}
}

func callTouchesSim(pass *lint.Pass, call *ast.CallExpr) bool {
	// Builtins (delete, append, len, ...) never emit events.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin {
			return false
		}
	}
	for _, arg := range call.Args {
		if isSimType(pass.TypeOf(arg)) {
			return true
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if isSimType(pass.TypeOf(sel.X)) {
			return true
		}
	}
	return false
}

// callDrawsRand reports whether the call is a method on a math/rand
// generator (*rand.Rand, rand.Source) — a draw whose position in the stream,
// and therefore its value, depends on the surrounding iteration order.
func callDrawsRand(pass *lint.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return isRandType(pass.TypeOf(sel.X))
}

func isRandType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "math/rand" || path == "math/rand/v2"
}

func isSimType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return lint.PkgPathHasSuffix(named.Obj().Pkg().Path(), "internal/sim")
}

func exprString(pass *lint.Pass, n ast.Node) string {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return "call"
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return "call to " + fun.Sel.Name
	case *ast.Ident:
		return "call to " + fun.Name
	}
	return "call"
}
