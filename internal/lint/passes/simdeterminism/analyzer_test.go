package simdeterminism_test

import (
	"testing"

	"dgsf/internal/lint/linttest"
	"dgsf/internal/lint/passes/simdeterminism"
)

func TestSimdeterminism(t *testing.T) {
	linttest.Run(t, "testdata", simdeterminism.Analyzer, "a/simdet")
}
