package simdet

import (
	"math/rand"
	"time"

	"a/internal/sim"
)

func emit(p *sim.Proc, k int) {}

func bad(p *sim.Proc, m map[int]string) {
	_ = time.Now()                     // want "time.Now reads the real clock"
	time.Sleep(1)                      // want "time.Sleep reads the real clock"
	_ = rand.Intn(4)                   // want "global RNG"
	rand.Shuffle(2, func(i, j int) {}) // want "global RNG"
	for k := range m {                 // want "map iteration order is randomized"
		emit(p, k)
	}
	r := rand.New(rand.NewSource(1))
	sum := 0
	for k := range m { // want "draws from an RNG"
		sum += k + r.Intn(4) // seeded, but draw order follows map order
	}
	_ = sum
}

func good(p *sim.Proc, m map[int]string) {
	r := rand.New(rand.NewSource(1)) // explicitly-seeded constructors are the sanctioned pattern
	_ = r.Intn(4)
	_ = p.Now()
	_ = time.Duration(3) * time.Second // duration arithmetic never reads the clock

	total := 0
	for k := range m { // no simulated event in the body: order is invisible
		total += k
	}
	_ = total

	keys := make([]int, 0, len(m))
	for k := range m { // collecting keys for sorting is exactly the fix
		keys = append(keys, k)
	}
	for _, k := range keys {
		emit(p, k)
	}

	//lint:allow simdeterminism exercising the escape hatch
	_ = time.Now()
}
