// Package sim is a miniature stand-in for dgsf/internal/sim: the analyzer
// keys on the "internal/sim" path suffix, not on the real package.
package sim

// Proc mimics a simulated process.
type Proc struct {
	name string
}

// Now returns the virtual clock.
func (p *Proc) Now() int64 { return 0 }

// Name returns the proc name.
func (p *Proc) Name() string { return p.name }
