package sharedretain_test

import (
	"testing"

	"dgsf/internal/lint/linttest"
	"dgsf/internal/lint/passes/sharedretain"
	"dgsf/internal/remoting/gen"
)

func TestSharedretain(t *testing.T) {
	linttest.Run(t, "testdata", sharedretain.Analyzer, "f/sharedt")
}

// TestDefaultTablesAreGenerated pins the analyzer to apigen's generated
// shared-decode contract tables, not a hand-maintained copy.
func TestDefaultTablesAreGenerated(t *testing.T) {
	for _, m := range []string{"StrsShared", "LaunchShared", "BytesShared", "DecodeShared"} {
		if !sharedretain.SharedMethods[m] {
			t.Errorf("SharedMethods is missing %s", m)
		}
	}
	for _, call := range []string{"RegisterKernels", "LaunchKernel", "MemWrite"} {
		if len(sharedretain.SharedParams[call]) == 0 {
			t.Errorf("SharedParams is missing %s", call)
		}
		if len(sharedretain.SharedParams[call]) != len(gen.SharedDecodeParams[call]) {
			t.Errorf("SharedParams[%s] diverges from gen.SharedDecodeParams", call)
		}
	}
}
