// Package cuda mirrors the device types carried by launch requests.
package cuda

// DevPtr is a device address.
type DevPtr uint64

// FnPtr is a registered kernel handle.
type FnPtr uint64

// LaunchParams describes one kernel launch. Mutates aliases decoder
// scratch when decoded with LaunchShared.
type LaunchParams struct {
	Fn      FnPtr
	Grid    [3]uint32
	Mutates []DevPtr
}
