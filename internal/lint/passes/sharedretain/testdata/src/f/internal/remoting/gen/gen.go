// Package gen mirrors the generated request types: DecodeShared populates
// the request in place with decoder-aliasing fields.
package gen

import "f/internal/remoting/wire"

// RegisterKernelsReq is the mirror of the generated request struct.
type RegisterKernelsReq struct {
	Names []string
}

// DecodeShared deserializes the request without copying: Names aliases the
// decoder's scratch afterwards. The store below is the mechanism the
// analyzer exempts by function name.
func (m *RegisterKernelsReq) DecodeShared(d *wire.Decoder) {
	m.Names = d.StrsShared()
}
