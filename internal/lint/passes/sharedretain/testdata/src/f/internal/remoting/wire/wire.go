// Package wire is a miniature mirror of the codec: the sharedretain
// analyzer matches the Shared decode variants by name inside any package
// whose path ends in remoting/wire.
package wire

import "f/internal/cuda"

// Decoder reads wire frames; the Shared variants return values backed by
// its scratch.
type Decoder struct {
	buf     []byte
	scratch []string
	devs    []cuda.DevPtr
}

// Str reads a string, copying out of the buffer.
func (d *Decoder) Str() string { return "" }

// Strs reads a string slice, copying every element.
func (d *Decoder) Strs() []string { return append([]string(nil), d.scratch...) }

// StrsShared reads a string slice without copying: the result aliases the
// decoder's scratch.
func (d *Decoder) StrsShared() []string { return d.scratch }

// BytesShared reads a byte slice without copying: the result aliases the
// decoder's buffer.
func (d *Decoder) BytesShared() []byte { return d.buf }

// LaunchShared reads launch params with Mutates backed by decoder scratch.
func (d *Decoder) LaunchShared() cuda.LaunchParams {
	return cuda.LaunchParams{Mutates: d.devs}
}
