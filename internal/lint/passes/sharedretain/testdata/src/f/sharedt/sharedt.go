// Package sharedt exercises the sharedretain analyzer: retention of
// shared-decode results, of requests populated in place by DecodeShared,
// and of backend parameters listed in gen.SharedDecodeParams.
package sharedt

import (
	"strings"

	"f/internal/cuda"
	"f/internal/remoting/gen"
	"f/internal/remoting/wire"
	"f/internal/sim"
)

type srv struct {
	names []string
	buf   []byte
	devs  []cuda.DevPtr
	cache map[string][]string
}

var gBuf []byte

// --- positives ---

func storeNamesField(s *srv, d *wire.Decoder) {
	names := d.StrsShared()
	s.names = names // want "result of StrsShared aliases the decoder's scratch (dead once the decoder is released or reused) and must not be retained (store to field)"
}

func returnShared(d *wire.Decoder) []string {
	return d.StrsShared() // want "result of StrsShared aliases the decoder's scratch (dead once the decoder is released or reused) and must not be returned"
}

func storeGlobal(d *wire.Decoder) {
	gBuf = d.BytesShared() // want "result of BytesShared aliases the decoder's scratch (dead once the decoder is released or reused) and must not be retained (store to package-level variable)"
}

func storeMutates(s *srv, d *wire.Decoder) {
	lp := d.LaunchShared()
	s.devs = lp.Mutates // want "result of LaunchShared aliases the decoder's scratch (dead once the decoder is released or reused) and must not be retained (store to field)"
}

func sendShared(d *wire.Decoder, ch chan []string) {
	names := d.StrsShared()
	ch <- names // want "must not be retained (channel send)"
}

func goShared(d *wire.Decoder) {
	names := d.StrsShared()
	go func() { // want "must not be retained (goroutine capture)"
		_ = names[0]
	}()
}

func cacheShared(s *srv, d *wire.Decoder) {
	names := d.StrsShared()
	s.cache["last"] = names // want "must not be retained (store into map/slice element)"
}

func retainReqField(s *srv, d *wire.Decoder) {
	var req gen.RegisterKernelsReq
	req.DecodeShared(d)
	s.names = req.Names // want "request decoded in place by DecodeShared aliases the decoder's scratch (dead once the decoder is released or reused) and must not be retained (store to field)"
}

func (s *srv) RegisterKernels(p *sim.Proc, names []string) ([]cuda.FnPtr, error) {
	s.names = names // want "parameter names of RegisterKernels (shared-decoded request field Names) aliases the decoder's scratch"
	return nil, nil
}

func (s *srv) MemWrite(p *sim.Proc, dst cuda.DevPtr, data []byte) error {
	s.buf = data // want "parameter data of MemWrite (shared-decoded request field Data) aliases the decoder's scratch"
	return nil
}

func (s *srv) LaunchKernel(p *sim.Proc, lp cuda.LaunchParams) error {
	s.devs = lp.Mutates // want "parameter lp of LaunchKernel (shared-decoded request field LP) aliases the decoder's scratch"
	return nil
}

type srv2 struct {
	names []string
}

// A shallow append copies the slice header array but the strings still
// point into decoder scratch.
func (s *srv2) RegisterKernels(p *sim.Proc, names []string) ([]cuda.FnPtr, error) {
	s.names = append([]string(nil), names...) // want "parameter names of RegisterKernels (shared-decoded request field Names) aliases the decoder's scratch"
	return nil, nil
}

var stash []string

func keep(names []string) { stash = names }

func helperEscape(d *wire.Decoder) {
	names := d.StrsShared()
	keep(names) // want "keep retains its argument"
}

// --- negatives ---

type okSrv struct {
	names []string
	devs  []cuda.DevPtr
	str   string
}

// Cloning every element before the store produces an owned slice.
func (s *okSrv) RegisterKernels(p *sim.Proc, names []string) ([]cuda.FnPtr, error) {
	cloned := make([]string, len(names))
	for i := range names {
		cloned[i] = strings.Clone(names[i])
	}
	s.names = cloned
	return nil, nil
}

// A string conversion copies the bytes.
func (s *okSrv) MemWrite(p *sim.Proc, dst cuda.DevPtr, data []byte) error {
	s.str = string(data)
	return nil
}

// DevPtr is shallow-safe, so the append deep-copies.
func (s *okSrv) LaunchKernel(p *sim.Proc, lp cuda.LaunchParams) error {
	s.devs = append([]cuda.DevPtr(nil), lp.Mutates...)
	return nil
}

// Reading the shared value before the decoder moves on is the intended use.
func transientUse(d *wire.Decoder) int {
	names := d.StrsShared()
	total := 0
	for _, n := range names {
		total += len(n)
	}
	return total
}

// The copying decode variants return owned values.
func copyingDecode(s *srv, d *wire.Decoder) {
	s.names = d.Strs()
}

func measure(names []string) int { return len(names) }

// Passing the shared value to a callee that only reads it is fine.
func dispatchOnly(d *wire.Decoder) int {
	names := d.StrsShared()
	return measure(names)
}
