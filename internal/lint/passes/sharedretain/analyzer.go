// Package sharedretain enforces the shared-decode aliasing contract of the
// wire path (DESIGN §4c). The Shared decode variants — StrsShared,
// LaunchShared, BytesShared, and the generated per-request DecodeShared —
// return values backed by the decoder's buffer or scratch: they die when
// the decoder is released or reset, so they may be read and dispatched but
// never stored or returned without a deep copy (strings.Clone per element,
// a fresh []byte, or an owned slice).
//
// Three kinds of values carry the shared lifetime:
//
//   - Results of wire.Decoder shared-decode methods.
//   - Request structs populated in place by a generated DecodeShared: their
//     decoded reference fields alias the dispatch decoder from that call on.
//   - Backend method parameters listed in gen.SharedDecodeParams: the
//     generated dispatch passes shared-decoded request fields straight
//     through, so every implementation of RegisterKernels / LaunchKernel /
//     MemWrite receives aliases it must not retain.
//
// The wire package itself is exempt (it implements the scratch), as are the
// generated DecodeShared bodies (storing the alias into the request is the
// mechanism) and the generated Client methods (their parameters come from
// the application caller, not a shared decode). The engine's sanitizers
// apply: string([]byte) conversions, appends of shallow-safe elements, and
// strings.Clone all produce owned values.
package sharedretain

import (
	"go/ast"
	"go/types"

	"dgsf/internal/lint"
	"dgsf/internal/lint/dataflow"
	"dgsf/internal/remoting/gen"
)

// Analyzer is the sharedretain pass.
var Analyzer = &lint.Analyzer{
	Name: "sharedretain",
	Doc: "values from the Shared decode variants (StrsShared/LaunchShared/" +
		"BytesShared/DecodeShared) alias the decoder's scratch and must not be " +
		"stored or returned without a deep copy; backend parameters listed in " +
		"gen.SharedDecodeParams carry the same lifetime",
	Run: run,
}

// The contract tables default to the generated single source of truth and
// are overridable in tests.
var (
	// SharedMethods names the decoder methods whose results alias scratch.
	SharedMethods = gen.SharedDecodeMethods
	// SharedParams maps backend call names to their shared parameters.
	SharedParams = gen.SharedDecodeParams
)

func calleeInPkg(info *types.Info, call *ast.CallExpr, suffix string) bool {
	fn := dataflow.CalleeFunc(call, info)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return lint.PkgPathHasSuffix(fn.Pkg().Path(), suffix)
}

// isSharedDecode matches d.StrsShared() / d.LaunchShared() / d.BytesShared()
// on the wire decoder; isDecodeShared matches the generated in-place
// req.DecodeShared(dec).
func isSharedDecode(info *types.Info, call *ast.CallExpr) bool {
	name := dataflow.CalleeName(call)
	return name != "DecodeShared" && SharedMethods[name] && calleeInPkg(info, call, "remoting/wire")
}

func isDecodeShared(info *types.Info, call *ast.CallExpr) bool {
	return dataflow.CalleeName(call) == "DecodeShared" && SharedMethods["DecodeShared"] &&
		calleeInPkg(info, call, "remoting/gen")
}

// firstParamIsProc reports the backend-method shape: a leading *sim.Proc
// parameter. gen.SharedDecodeParams positions are relative to it.
func firstParamIsProc(fn *dataflow.Func) bool {
	if len(fn.Params) == 0 || fn.Params[0] == nil {
		return false
	}
	ptr, ok := fn.Params[0].Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Proc" && obj.Pkg() != nil && lint.PkgPathHasSuffix(obj.Pkg().Path(), "internal/sim")
}

func run(pass *lint.Pass) error {
	// The wire package implements the scratch these contracts protect.
	if lint.PkgPathHasSuffix(pass.Pkg.Path(), "remoting/wire") {
		return nil
	}
	inGen := lint.PkgPathHasSuffix(pass.Pkg.Path(), "remoting/gen")
	pkg := dataflow.Analyze(pass.Files, pass.Info, dataflow.Config{})
	for _, fn := range pkg.Funcs {
		fd, ok := fn.Decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		// The generated DecodeShared bodies store the alias into the
		// request on purpose — that store is the contract, not a leak.
		if fd.Name.Name == "DecodeShared" {
			continue
		}
		checkSharedCalls(pass, pkg, fn)
		if !inGen {
			checkSharedParams(pass, pkg, fn, fd)
		}
	}
	return nil
}

// checkSharedCalls tracks the result of every shared-decode call and every
// request populated in place by DecodeShared.
func checkSharedCalls(pass *lint.Pass, pkg *dataflow.Package, fn *dataflow.Func) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isSharedDecode(pass.Info, call) {
			name := dataflow.CalleeName(call)
			v := fn.Track(dataflow.Origin{Expr: call})
			reportFlows(pass, pkg, v, "result of "+name)
		} else if isDecodeShared(pass.Info, call) {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			recv, ok := pass.Info.ObjectOf(id).(*types.Var)
			if !ok {
				return true
			}
			v := fn.Track(dataflow.Origin{Param: recv, From: call.End()})
			reportFlows(pass, pkg, v, "request decoded in place by DecodeShared")
		}
		return true
	})
}

// checkSharedParams tracks backend-method parameters that the generated
// dispatch fills with shared-decoded request fields.
func checkSharedParams(pass *lint.Pass, pkg *dataflow.Package, fn *dataflow.Func, fd *ast.FuncDecl) {
	params, ok := SharedParams[fd.Name.Name]
	if !ok || !firstParamIsProc(fn) {
		return
	}
	for _, sp := range params {
		idx := sp.Arg + 1 // positions are relative to the *sim.Proc parameter
		if idx >= len(fn.Params) || fn.Params[idx] == nil {
			continue
		}
		v := fn.Track(dataflow.Origin{Param: fn.Params[idx]})
		what := "parameter " + fn.Params[idx].Name() + " of " + fd.Name.Name +
			" (shared-decoded request field " + sp.Field + ")"
		reportFlows(pass, pkg, v, what)
	}
}

// reportFlows flags every retention of a shared value: stores, sends,
// goroutine captures, returns, and calls whose summary stores the argument.
// Plain uses and dispatch through unknown callees are fine — the contract
// forbids retention, not reading.
func reportFlows(pass *lint.Pass, pkg *dataflow.Package, v *dataflow.Value, what string) {
	const contract = "aliases the decoder's scratch (dead once the decoder is released or reused)"
	for _, f := range v.Flows {
		switch f.Kind {
		case dataflow.FlowFieldStore, dataflow.FlowGlobalStore, dataflow.FlowIndexStore,
			dataflow.FlowChanSend, dataflow.FlowGoCapture:
			pass.Reportf(f.Pos, "%s %s and must not be retained (%s); deep-copy it first (strings.Clone per element or a fresh slice)", what, contract, f.Kind)
		case dataflow.FlowReturn:
			if !f.Deferred {
				pass.Reportf(f.Pos, "%s %s and must not be returned; deep-copy it first (strings.Clone per element or a fresh slice)", what, contract)
			}
		case dataflow.FlowCallArg:
			if f.Call == nil {
				continue
			}
			if callee := dataflow.CalleeFunc(f.Call, pass.Info); callee != nil {
				if sum := pkg.Summary(callee); sum != nil && f.ArgIndex >= 0 && f.ArgIndex < len(sum.Escapes) && sum.Escapes[f.ArgIndex] {
					pass.Reportf(f.Pos, "%s %s but %s retains its argument; deep-copy it first", what, contract, f.CalleeName)
				}
			}
		}
	}
}
