package lockorder_test

import (
	"testing"

	"dgsf/internal/lint/linttest"
	"dgsf/internal/lint/passes/lockorder"
)

func TestLockorder(t *testing.T) {
	linttest.Run(t, "testdata", lockorder.Analyzer, "g/lockt")
}

// TestRoundtripTableIsGenerated pins the roundtrip sink set to apigen's
// generated transport table.
func TestRoundtripTableIsGenerated(t *testing.T) {
	for _, name := range []string{"Roundtrip", "RoundtripTimeout", "RoundtripVec"} {
		if !lockorder.RoundtripCalls[name] {
			t.Errorf("RoundtripCalls is missing %s", name)
		}
	}
}
