// Package lockt exercises the lockorder analyzer: re-entrant locking, lock
// order cycles (direct and through one level of calls), and remoting
// roundtrips or channel sends while a lock is held.
package lockt

import (
	"sync"

	"g/internal/remoting"
	"g/internal/sim"
)

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }
type P struct{ mu sync.Mutex }

type S struct {
	mu     sync.RWMutex
	events chan int
	out    chan int
}

func newS() *S {
	return &S{out: make(chan int, 8), events: make(chan int)}
}

var gmu sync.Mutex
var gmu2 sync.Mutex

// --- positives ---

func reentrant(a *A) {
	a.mu.Lock()
	a.mu.Lock() // want "A.mu is locked again while already held"
	a.mu.Unlock()
	a.mu.Unlock()
}

func reentrantGlobal() {
	gmu.Lock()
	gmu.Lock() // want "gmu is locked again while already held"
	gmu.Unlock()
	gmu.Unlock()
}

func lockAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "lock order cycle A.mu -> B.mu -> A.mu"
	defer b.mu.Unlock()
}

func lockBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want "lock order cycle B.mu -> A.mu -> B.mu"
	defer a.mu.Unlock()
}

func lockD(d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
}

// The C -> D edge flows through the helper's one-level summary.
func lockCthenHelper(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lockD(d) // want "lock order cycle C.mu -> D.mu -> C.mu"
}

func lockDthenC(c *C, d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c.mu.Lock() // want "lock order cycle D.mu -> C.mu -> D.mu"
	defer c.mu.Unlock()
}

func helperP(p *P) {
	p.mu.Lock()
	defer p.mu.Unlock()
}

func lockPtwiceViaHelper(p *P) {
	p.mu.Lock()
	defer p.mu.Unlock()
	helperP(p) // want "call to helperP acquires P.mu, which is already held"
}

func roundtripHeld(s *S, c *remoting.Caller, pr *sim.Proc, req []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.Roundtrip(pr, req, 0) // want "remoting roundtrip Roundtrip while S.mu is held"
}

func flush(c *remoting.Caller, pr *sim.Proc) {
	c.Roundtrip(pr, nil, 0)
}

func roundtripViaHelper(s *S, c *remoting.Caller, pr *sim.Proc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	flush(c, pr) // want "call to flush performs a remoting roundtrip while S.mu is held"
}

func sendHeld(s *S, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- 1 // want "channel send while S.mu is held"
}

func sendFieldHeld(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events <- 1 // want "channel send while S.mu is held"
}

func notify(ch chan int) { ch <- 1 }

func sendViaHelper(s *S, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	notify(ch) // want "call to notify sends on a channel not provably buffered while S.mu is held"
}

// --- negatives ---

// A consistent E -> F order in every function is not a cycle.
func orderEF1(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
}

func orderEF2(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

// Relocking after a release is a fresh critical section.
func relockAfterUnlock() {
	gmu2.Lock()
	gmu2.Unlock()
	gmu2.Lock()
	gmu2.Unlock()
}

func sendAfterUnlock(ch chan int) {
	gmu2.Lock()
	gmu2.Unlock()
	ch <- 1
}

// out is made with a constant capacity everywhere, so the send is bounded.
func sendBufferedHeld(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.out <- 1
}

// A select with a default arm never blocks.
func sendSelectDefault(s *S, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

func readS(s *S) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return 0
}

// Read locks nest with read locks.
func rlockNested(s *S) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return readS(s)
}

// The goroutine body is a separate execution: it does not run while the
// caller's lock is held.
func sendInGoroutine(s *S, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		ch <- 1
	}()
}

// Lock/Unlock pairs in mutually exclusive arms never overlap.
func lockArms(a *A, cond bool) {
	if cond {
		a.mu.Lock()
		a.mu.Unlock()
		return
	}
	a.mu.Lock()
	a.mu.Unlock()
}
