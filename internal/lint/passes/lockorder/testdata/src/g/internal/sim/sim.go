// Package sim mirrors the scheduler types the analyzer keys on.
package sim

// Proc is the simulated process handle.
type Proc struct {
	ID int
}
