// Package remoting is a miniature mirror of the transport: the lockorder
// analyzer matches roundtrip entry points by name inside any package whose
// path ends in internal/remoting.
package remoting

import "g/internal/sim"

// Caller is the synchronous transport handle.
type Caller struct{}

// Roundtrip sends req and blocks on the network for the reply.
func (c *Caller) Roundtrip(p *sim.Proc, req []byte, reqData int64) ([]byte, error) {
	return nil, nil
}
