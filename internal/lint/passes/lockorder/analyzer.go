// Package lockorder builds a mutex acquisition-order graph and enforces the
// locking discipline of the remoting path (DESIGN §4c). Mutexes are keyed
// by receiver type and field ("tcpCaller.mu") or by package-level variable
// name, so every instance of a type shares one node. Three families of
// reports:
//
//   - Cycles: lock A is acquired while B is held in one place and B while A
//     is held in another — the classic AB/BA deadlock. Edges flow through
//     one level of same-package calls, so a helper that locks on behalf of
//     its caller still contributes.
//   - Re-entry: acquiring a mutex that is already held (directly or through
//     a callee) — sync mutexes are not reentrant. RLock while only RLock is
//     held is tolerated.
//   - Blocking while held: a remoting roundtrip or a channel send executed
//     with a lock held pins the lock behind network latency or a slow
//     receiver. Sends are exempt when every make of that channel visible in
//     the package has a constant capacity > 0 (a bounded window, like the
//     TCP writer's sendCh), and when the send sits in a select with a
//     default arm.
//
// Held ranges are lexical: Lock to the nearest matching Unlock on the same
// fall-through path (dataflow.Sequential), or to the function's end for
// deferred unlocks. Goroutine literals are separate executions and are
// analyzed as their own bodies. The sim package is exempt: it implements
// the synchronization primitives this analyzer reasons about.
package lockorder

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"dgsf/internal/lint"
	"dgsf/internal/lint/dataflow"
	"dgsf/internal/remoting/gen"
)

// Analyzer is the lockorder pass.
var Analyzer = &lint.Analyzer{
	Name: "lockorder",
	Doc: "mutex acquisition cycles (AB/BA), re-entrant locking, and remoting " +
		"roundtrips or unbuffered channel sends while a lock is held; edges " +
		"propagate through one level of same-package calls",
	Run: run,
}

// RoundtripCalls names the synchronous transport entry points: the same
// generated set whose results are borrowed, because those are exactly the
// calls that block on the network.
var RoundtripCalls = gen.BorrowedResultCalls

type mode int

const (
	modeR mode = iota // RLock
	modeW             // Lock
)

// lockEv is one Lock/RLock/Unlock/RUnlock on a keyed mutex.
type lockEv struct {
	key      string
	mode     mode
	acquire  bool
	deferred bool
	site     dataflow.Site
}

// sendEv is one channel send; obj is the channel variable or field when
// resolvable, nonBlocking marks a select arm with a default.
type sendEv struct {
	obj         types.Object
	nonBlocking bool
	site        dataflow.Site
}

type callEv struct {
	call *ast.CallExpr
	site dataflow.Site
}

// funcEvents is the event stream of one executable body: a declared
// function, or a goroutine literal split out as its own execution.
type funcEvents struct {
	name  string
	decl  *ast.FuncDecl // nil for goroutine literals
	body  *ast.BlockStmt
	locks []lockEv
	sends []sendEv
	calls []callEv
}

// summary is what a callee does to locks, one level deep.
type summary struct {
	acquires  map[string]mode // worst (most exclusive) mode per key
	roundtrip bool
	unbufSend bool
}

type edgeKey struct{ from, to string }

func run(pass *lint.Pass) error {
	// The sim package implements the primitives (queues, waitgroups,
	// condition-style sleeps) under its one engine lock; holding it around
	// scheduler work is the design, not a violation.
	if lint.PkgPathHasSuffix(pass.Pkg.Path(), "internal/sim") {
		return nil
	}
	buffered := collectBuffered(pass)
	var fns []*funcEvents
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fns = collectEvents(pass, fd, fns)
		}
	}
	sums := map[*types.Func]*summary{}
	for _, fe := range fns {
		if fe.decl == nil {
			continue
		}
		obj, ok := pass.Info.Defs[fe.decl.Name].(*types.Func)
		if !ok {
			continue
		}
		sums[obj] = summarize(pass, fe, buffered)
	}
	edges := map[edgeKey]dataflow.Site{}
	for _, fe := range fns {
		checkFunc(pass, fe, sums, buffered, edges)
	}
	reportCycles(pass, edges)
	return nil
}

// --- event collection ---

func collectEvents(pass *lint.Pass, fd *ast.FuncDecl, out []*funcEvents) []*funcEvents {
	fe := &funcEvents{name: fd.Name.Name, decl: fd, body: fd.Body}
	out = append(out, fe)
	out = walkBody(pass, fe, fe.body, out)
	return out
}

// walkBody records events with ancestor stacks. Goroutine literals become
// separate funcEvents (their execution is concurrent, not sequential);
// non-literal go statements are skipped entirely. Inside deferred code only
// lock events are kept: a deferred unlock shapes held ranges, but deferred
// sends and calls run at exit in LIFO order this pass does not model.
func walkBody(pass *lint.Pass, fe *funcEvents, body *ast.BlockStmt, out []*funcEvents) []*funcEvents {
	var stack []ast.Node
	deferDepth := 0
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			if _, ok := stack[len(stack)-1].(*ast.DeferStmt); ok {
				deferDepth--
			}
			stack = stack[:len(stack)-1]
			return true
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				sub := &funcEvents{name: fe.name + " (goroutine)", body: lit.Body}
				out = append(out, sub)
				out = walkBody(pass, sub, lit.Body, out)
			}
			return false
		case *ast.DeferStmt:
			deferDepth++
		case *ast.CallExpr:
			site := dataflow.Site{Pos: x.Pos(), Stack: append([]ast.Node(nil), stack...)}
			if ev, ok := lockEvent(pass, x); ok {
				ev.deferred = deferDepth > 0
				ev.site = site
				fe.locks = append(fe.locks, ev)
			} else if deferDepth == 0 {
				fe.calls = append(fe.calls, callEv{call: x, site: site})
			}
		case *ast.SendStmt:
			if deferDepth == 0 {
				fe.sends = append(fe.sends, sendEv{
					obj:         chanObj(pass, x.Chan),
					nonBlocking: inSelectWithDefault(stack),
					site:        dataflow.Site{Pos: x.Pos(), Stack: append([]ast.Node(nil), stack...)},
				})
			}
		}
		stack = append(stack, n)
		return true
	})
	return out
}

// lockEvent recognizes m.Lock()/RLock()/Unlock()/RUnlock() on a keyed
// sync.Mutex or sync.RWMutex: a named struct field ("T.f") or a
// package-level variable. Local and embedded mutexes are not keyed.
func lockEvent(pass *lint.Pass, call *ast.CallExpr) (lockEv, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return lockEv{}, false
	}
	var ev lockEv
	switch sel.Sel.Name {
	case "Lock":
		ev.mode, ev.acquire = modeW, true
	case "RLock":
		ev.mode, ev.acquire = modeR, true
	case "Unlock":
		ev.mode, ev.acquire = modeW, false
	case "RUnlock":
		ev.mode, ev.acquire = modeR, false
	default:
		return lockEv{}, false
	}
	recv := ast.Unparen(sel.X)
	if !isSyncMutex(pass.Info.TypeOf(recv)) {
		return lockEv{}, false
	}
	switch r := recv.(type) {
	case *ast.SelectorExpr:
		fieldObj, ok := pass.Info.Uses[r.Sel].(*types.Var)
		if !ok || !fieldObj.IsField() {
			return lockEv{}, false
		}
		base := pass.Info.TypeOf(r.X)
		if ptr, ok := base.(*types.Pointer); ok {
			base = ptr.Elem()
		}
		named, ok := base.(*types.Named)
		if !ok {
			return lockEv{}, false
		}
		ev.key = named.Obj().Name() + "." + fieldObj.Name()
	case *ast.Ident:
		obj := pass.Info.ObjectOf(r)
		if obj == nil || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
			return lockEv{}, false
		}
		ev.key = obj.Name()
	default:
		return lockEv{}, false
	}
	return ev, true
}

func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// chanObj resolves the sent-to channel to a variable or field object.
func chanObj(pass *lint.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.Info.ObjectOf(e)
	case *ast.SelectorExpr:
		return pass.Info.Uses[e.Sel]
	}
	return nil
}

func inSelectWithDefault(stack []ast.Node) bool {
	for i := len(stack) - 1; i > 0; i-- {
		if _, ok := stack[i].(*ast.CommClause); !ok {
			continue
		}
		// The clause's select is above it (past the select's body block).
		for j := i - 1; j >= 0; j-- {
			sel, ok := stack[j].(*ast.SelectStmt)
			if !ok {
				continue
			}
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					return true
				}
			}
			break
		}
	}
	return false
}

// collectBuffered finds channels provably bounded: every visible
// make(chan T, n) assigned to the object has a constant n > 0.
func collectBuffered(pass *lint.Pass) map[types.Object]bool {
	makes := map[types.Object][]bool{}
	record := func(lhs ast.Node, rhs ast.Expr) {
		isMake, buffered := chanMake(pass, rhs)
		if !isMake {
			return
		}
		var obj types.Object
		switch l := lhs.(type) {
		case *ast.Ident:
			obj = pass.Info.ObjectOf(l)
		case *ast.SelectorExpr:
			obj = pass.Info.Uses[l.Sel]
		}
		if obj != nil {
			makes[obj] = append(makes[obj], buffered)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Rhs {
						record(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Values {
						record(n.Names[i], n.Values[i])
					}
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok {
							record(key, kv.Value)
						}
					}
				}
			}
			return true
		})
	}
	out := map[types.Object]bool{}
	for obj, list := range makes {
		ok := true
		for _, b := range list {
			ok = ok && b
		}
		out[obj] = ok
	}
	return out
}

// chanMake recognizes make(chan T[, n]) and whether n is a constant > 0.
func chanMake(pass *lint.Pass, e ast.Expr) (isMake, buffered bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || dataflow.CalleeName(call) != "make" || len(call.Args) == 0 {
		return false, false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || pass.Info.ObjectOf(id) != types.Universe.Lookup("make") {
		return false, false
	}
	if _, ok := pass.Info.TypeOf(call.Args[0]).Underlying().(*types.Chan); !ok {
		return false, false
	}
	if len(call.Args) < 2 {
		return true, false
	}
	tv := pass.Info.Types[call.Args[1]]
	if tv.Value == nil || tv.Value.Kind() != constant.Int {
		return true, false
	}
	n, ok := constant.Int64Val(tv.Value)
	return true, ok && n > 0
}

// --- per-function analysis ---

func summarize(pass *lint.Pass, fe *funcEvents, buffered map[types.Object]bool) *summary {
	s := &summary{acquires: map[string]mode{}}
	for _, l := range fe.locks {
		if !l.acquire || l.deferred {
			continue
		}
		if m, ok := s.acquires[l.key]; !ok || l.mode > m {
			s.acquires[l.key] = l.mode
		}
	}
	for _, c := range fe.calls {
		if isRoundtrip(pass, c.call) {
			s.roundtrip = true
		}
	}
	for _, snd := range fe.sends {
		if !snd.nonBlocking && !(snd.obj != nil && buffered[snd.obj]) {
			s.unbufSend = true
		}
	}
	return s
}

func isRoundtrip(pass *lint.Pass, call *ast.CallExpr) bool {
	if !RoundtripCalls[dataflow.CalleeName(call)] {
		return false
	}
	fn := dataflow.CalleeFunc(call, pass.Info)
	return fn != nil && fn.Pkg() != nil && lint.PkgPathHasSuffix(fn.Pkg().Path(), "internal/remoting")
}

func line(pass *lint.Pass, s dataflow.Site) int { return pass.Fset.Position(s.Pos).Line }

func checkFunc(pass *lint.Pass, fe *funcEvents, sums map[*types.Func]*summary, buffered map[types.Object]bool, edges map[edgeKey]dataflow.Site) {
	var self *types.Func
	if fe.decl != nil {
		self, _ = pass.Info.Defs[fe.decl.Name].(*types.Func)
	}
	addEdge := func(from, to string, site dataflow.Site) {
		k := edgeKey{from, to}
		if prev, ok := edges[k]; !ok || site.Pos < prev.Pos {
			edges[k] = site
		}
	}
	for _, l := range fe.locks {
		if !l.acquire || l.deferred {
			continue
		}
		end := fe.body.End()
		for _, u := range fe.locks {
			if u.acquire || u.deferred || u.key != l.key {
				continue
			}
			if u.site.Pos > l.site.Pos && u.site.Pos < end && dataflow.Sequential(l.site, u.site) {
				end = u.site.Pos
			}
		}
		held := func(s dataflow.Site) bool {
			return s.Pos > l.site.Pos && s.Pos < end && dataflow.Sequential(l.site, s)
		}
		for _, e := range fe.locks {
			if !e.acquire || e.deferred || !held(e.site) {
				continue
			}
			if e.key == l.key {
				if !(l.mode == modeR && e.mode == modeR) {
					pass.Reportf(e.site.Pos, "%s is locked again while already held (acquired at line %d); sync mutexes are not reentrant and this deadlocks", l.key, line(pass, l.site))
				}
				continue
			}
			addEdge(l.key, e.key, e.site)
		}
		for _, c := range fe.calls {
			if !held(c.site) {
				continue
			}
			if isRoundtrip(pass, c.call) {
				pass.Reportf(c.site.Pos, "remoting roundtrip %s while %s is held (acquired at line %d) pins the lock behind a network round trip; release it first", dataflow.CalleeName(c.call), l.key, line(pass, l.site))
				continue
			}
			callee := dataflow.CalleeFunc(c.call, pass.Info)
			if callee == nil || callee == self {
				if callee != nil && callee == self && sums[callee] != nil {
					if m, ok := sums[callee].acquires[l.key]; ok && !(l.mode == modeR && m == modeR) {
						pass.Reportf(c.site.Pos, "recursive call to %s re-acquires %s, which is already held (acquired at line %d); this deadlocks", callee.Name(), l.key, line(pass, l.site))
					}
				}
				continue
			}
			sum := sums[callee]
			if sum == nil {
				continue
			}
			keys := make([]string, 0, len(sum.acquires))
			for k := range sum.acquires {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if k == l.key {
					if !(l.mode == modeR && sum.acquires[k] == modeR) {
						pass.Reportf(c.site.Pos, "call to %s acquires %s, which is already held (acquired at line %d); this deadlocks", callee.Name(), k, line(pass, l.site))
					}
					continue
				}
				addEdge(l.key, k, c.site)
			}
			if sum.roundtrip {
				pass.Reportf(c.site.Pos, "call to %s performs a remoting roundtrip while %s is held (acquired at line %d); release the lock first", callee.Name(), l.key, line(pass, l.site))
			}
			if sum.unbufSend {
				pass.Reportf(c.site.Pos, "call to %s sends on a channel not provably buffered while %s is held (acquired at line %d); the lock is pinned until a receiver drains it", callee.Name(), l.key, line(pass, l.site))
			}
		}
		for _, snd := range fe.sends {
			if !held(snd.site) || snd.nonBlocking {
				continue
			}
			if snd.obj != nil && buffered[snd.obj] {
				continue
			}
			pass.Reportf(snd.site.Pos, "channel send while %s is held (acquired at line %d) can block until a receiver is ready; use a constant-capacity buffered channel or release the lock first", l.key, line(pass, l.site))
		}
	}
}

// --- cycle detection ---

func reportCycles(pass *lint.Pass, edges map[edgeKey]dataflow.Site) {
	adj := map[string][]string{}
	for k := range edges {
		adj[k.from] = append(adj[k.from], k.to)
	}
	for _, tos := range adj {
		sort.Strings(tos)
	}
	keys := make([]edgeKey, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		path := findPath(adj, k.to, k.from)
		if len(path) < 2 {
			// Self edges are reported as re-entry, not cycles, so a real
			// path always has >= 2 nodes.
			continue
		}
		cycle := append([]string{k.from}, path...)
		counter := edges[edgeKey{path[len(path)-2], path[len(path)-1]}]
		pass.Reportf(edges[k].Pos, "lock order cycle %s: %s is acquired here while %s is held, but the reverse order is established at line %d", strings.Join(cycle, " -> "), k.to, k.from, line(pass, counter))
	}
}

// findPath returns the BFS-shortest path from src to dst (inclusive of
// both), deterministically, or nil if dst is unreachable.
func findPath(adj map[string][]string, src, dst string) []string {
	prev := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == dst {
			var path []string
			for at := dst; ; at = prev[at] {
				path = append([]string{at}, path...)
				if at == src {
					return path
				}
			}
		}
		for _, m := range adj[n] {
			if _, seen := prev[m]; !seen {
				prev[m] = n
				queue = append(queue, m)
			}
		}
	}
	return nil
}
