// Package rawconn keeps raw network I/O inside internal/remoting. Every
// byte between guest and API server must flow through the transport's
// framing layer (WriteFrame/ReadFrame) so that fault injection, bandwidth
// accounting and crash recovery observe all traffic; a stray conn.Write in
// another package bypasses all three.
package rawconn

import (
	"go/ast"
	"go/types"
	"strings"

	"dgsf/internal/lint"
)

// Analyzer is the rawconn pass.
var Analyzer = &lint.Analyzer{
	Name: "rawconn",
	Doc: "forbid direct net.Conn reads/writes, net dialing and frame " +
		"construction outside internal/remoting; all guest↔server bytes go " +
		"through the transport layer",
	Run: run,
}

// connMethods are the net.Conn operations that move or gate bytes. Close is
// allowed: owners of an accepted conn may close it.
var connMethods = map[string]bool{
	"Read": true, "Write": true,
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
}

// dialFuncs are net package entry points that open client connections;
// guests must connect through remoting.DialTCP instead. Listen/Accept stay
// allowed so servers can hand accepted conns to remoting.ServeConn.
var dialFuncs = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialTCP": true, "DialUDP": true, "DialUnix": true, "DialIP": true,
}

// frameFuncs are remoting's framing primitives (v1 and v2, coalescing and
// vectored), reserved to the transport itself. A call site that framed its
// own bytes would also bypass the version negotiation the transport runs on
// connection establishment.
var frameFuncs = map[string]bool{
	"ReadFrame": true, "WriteFrame": true,
	"ReadFrameReuse": true, "ReadFrameInto": true, "WriteFrameVec": true,
}

func run(pass *lint.Pass) error {
	path := pass.Pkg.Path()
	if lint.PkgPathHasSuffix(path, "internal/remoting") || strings.Contains(path, "internal/remoting/") {
		return nil // the transport layer and its subpackages are the one place this is allowed
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.ObjectOf(sel.Sel)
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			switch {
			case fn.Pkg().Path() == "net" && sig != nil && sig.Recv() != nil && connMethods[fn.Name()]:
				pass.Reportf(call.Pos(), "direct %s on a net connection outside internal/remoting bypasses framing, fault injection and bandwidth accounting; use the transport layer", fn.Name())
			case fn.Pkg().Path() == "net" && sig != nil && sig.Recv() == nil && dialFuncs[fn.Name()]:
				pass.Reportf(call.Pos(), "net.%s outside internal/remoting; connect through remoting (DialTCP) so the session owns the conn", fn.Name())
			case lint.PkgPathHasSuffix(fn.Pkg().Path(), "internal/remoting") && sig != nil && sig.Recv() == nil && frameFuncs[fn.Name()]:
				pass.Reportf(call.Pos(), "remoting.%s is the transport's framing primitive; packages outside internal/remoting must use Roundtrip/Submit", fn.Name())
			}
			return true
		})
	}
	return nil
}
