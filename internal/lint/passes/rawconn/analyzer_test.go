package rawconn_test

import (
	"testing"

	"dgsf/internal/lint/linttest"
	"dgsf/internal/lint/passes/rawconn"
)

func TestRawconn(t *testing.T) {
	linttest.Run(t, "testdata", rawconn.Analyzer, "a/rawc")
}

// TestTransportExempt checks the transport package itself is not flagged.
func TestTransportExempt(t *testing.T) {
	linttest.Run(t, "testdata", rawconn.Analyzer, "b/internal/remoting")
}
