// Package remoting is a miniature transport layer: the rawconn analyzer
// exempts any package whose path ends in internal/remoting.
package remoting

import "net"

// ReadFrame reads one frame. Inside the transport, raw conn I/O is allowed.
func ReadFrame(c net.Conn) ([]byte, error) {
	buf := make([]byte, 4)
	_, err := c.Read(buf)
	return buf, err
}

// WriteFrame writes one frame.
func WriteFrame(c net.Conn, b []byte) error {
	_, err := c.Write(b)
	return err
}

// ReadFrameReuse reads one frame into a reusable buffer.
func ReadFrameReuse(c net.Conn, buf []byte) ([]byte, error) {
	_, err := c.Read(buf)
	return buf, err
}

// ReadFrameInto scatter-reads a v2 frame's bulk region into dst.
func ReadFrameInto(c net.Conn, buf, dst []byte) ([]byte, []byte, error) {
	_, err := c.Read(buf)
	return buf, dst, err
}

// WriteFrameVec writes a v2 frame as a vectored header+bulk write.
func WriteFrameVec(c net.Conn, meta, bulk []byte) error {
	_, err := c.Write(meta)
	if err == nil {
		_, err = c.Write(bulk)
	}
	return err
}
