// Package remoting is a miniature transport layer: the rawconn analyzer
// exempts any package whose path ends in internal/remoting.
package remoting

import "net"

// ReadFrame reads one frame. Inside the transport, raw conn I/O is allowed.
func ReadFrame(c net.Conn) ([]byte, error) {
	buf := make([]byte, 4)
	_, err := c.Read(buf)
	return buf, err
}

// WriteFrame writes one frame.
func WriteFrame(c net.Conn, b []byte) error {
	_, err := c.Write(b)
	return err
}
