package rawc

import (
	"net"

	"b/internal/remoting"
)

func bad() {
	c, _ := net.Dial("tcp", "example:1") // want "net.Dial outside internal/remoting"
	buf := make([]byte, 4)
	_, _ = c.Read(buf)                            // want "direct Read on a net connection"
	_, _ = c.Write(buf)                           // want "direct Write on a net connection"
	_, _ = remoting.ReadFrame(c)                  // want "framing primitive"
	_ = remoting.WriteFrame(c, buf)               // want "framing primitive"
	_, _ = remoting.ReadFrameReuse(c, buf)        // want "framing primitive"
	_, _, _ = remoting.ReadFrameInto(c, buf, buf) // want "framing primitive"
	_ = remoting.WriteFrameVec(c, buf, buf)       // want "framing primitive"
}

func good() (net.Listener, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0") // servers may listen
	if err != nil {
		return nil, err
	}
	c, err := l.Accept() // and accept, handing the conn to the transport
	if err == nil {
		c.Close() // owners may close their conns
	}
	return l, nil
}
