// Package gpuserver is a miniature server package: the goroutineleak
// analyzer keys on the server package path suffixes.
package gpuserver

import "os"

type srv struct {
	ch   chan int
	done chan struct{}
	stop bool
}

func bad(s *srv) {
	go func() { // want "can never be shut down"
		for {
			<-s.ch
		}
	}()
	go func() { // want "can never be shut down"
		for {
			select {
			case <-s.ch:
				break // only exits the select, not the loop
			}
		}
	}()
}

func good(s *srv) {
	go func() {
		for {
			select {
			case <-s.ch:
			case <-s.done:
				return
			}
		}
	}()
	go func() {
		for v := range s.ch { // range over a channel ends when it closes
			_ = v
		}
	}()
	go func() {
		for {
			if s.stop {
				break
			}
		}
	}()
	go func() {
		for {
			if s.stop {
				os.Exit(1) // terminal calls count as an exit
			}
		}
	}()
	go s.loop() // named method resolves to its declaration below
}

func (s *srv) loop() {
	for {
		if _, ok := <-s.ch; !ok {
			return
		}
	}
}
