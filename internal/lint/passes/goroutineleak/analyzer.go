// Package goroutineleak flags goroutines with no way to stop. In the
// long-running server packages (gpuserver, apiserver, remoting, faas) every
// spawned goroutine must be able to exit — via return on a closed channel,
// a ctx/done signal, or a connection error — or restart-heavy serverless
// churn accumulates leaked goroutines until the process dies.
package goroutineleak

import (
	"go/ast"
	"go/types"

	"dgsf/internal/lint"
)

// Analyzer is the goroutineleak pass.
var Analyzer = &lint.Analyzer{
	Name: "goroutineleak",
	Doc: "goroutines spawned in server packages must have a shutdown path: an " +
		"infinite for-loop inside `go` must contain a return, a break out of " +
		"the loop, or a terminal call (panic/os.Exit/log.Fatal)",
	Run: run,
}

// scopeSuffixes are the long-running server packages under watch.
var scopeSuffixes = []string{
	"internal/gpuserver",
	"internal/apiserver",
	"internal/remoting",
	"internal/faas",
	"internal/store",
	"internal/controller",
	"cmd/gpuserver",
}

func run(pass *lint.Pass) error {
	inScope := false
	for _, s := range scopeSuffixes {
		if lint.PkgPathHasSuffix(pass.Pkg.Path(), s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	// Index this package's function declarations so `go f()` and
	// `go c.writer()` resolve to a body we can inspect.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.ObjectOf(fd.Name); obj != nil {
					decls[obj] = fd
				}
			}
		}
	}

	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue // test goroutines die with the test process
		}
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(pass, gs, decls)
			if body == nil {
				return true // dynamic target; cannot analyze
			}
			checkBody(pass, gs, body)
			return true
		})
	}
	return nil
}

// goBody resolves the statement list the goroutine will execute.
func goBody(pass *lint.Pass, gs *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fd := decls[pass.ObjectOf(fun)]; fd != nil {
			return fd.Body
		}
	case *ast.SelectorExpr:
		if fd := decls[pass.ObjectOf(fun.Sel)]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// checkBody reports every infinite for-loop in body with no exit.
func checkBody(pass *lint.Pass, gs *ast.GoStmt, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a nested closure is not this goroutine's body
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil || loop.Init != nil || loop.Post != nil {
			return true
		}
		if !loopCanExit(pass, loop) {
			pass.Reportf(gs.Pos(), "goroutine runs an infinite loop (at %s) with no return, break or terminal call: it can never be shut down — select on a done/ctx channel or exit on error", pass.Fset.Position(loop.Pos()))
		}
		return true
	})
}

// loopCanExit reports whether an infinite `for { ... }` has any path out.
func loopCanExit(pass *lint.Pass, loop *ast.ForStmt) bool {
	canExit := false
	// depth counts enclosing break targets (for/range/select/switch) between
	// a statement and this loop: an unlabeled break only exits the loop when
	// depth is zero.
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if canExit || n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return // separate function; its returns do not exit the loop
		case *ast.ReturnStmt:
			canExit = true
			return
		case *ast.BranchStmt:
			// A labeled break/goto out of the loop, or an unlabeled break
			// belonging to it.
			if n.Tok.String() == "break" && (n.Label != nil || depth == 0) {
				canExit = true
			}
			if n.Tok.String() == "goto" {
				canExit = true
			}
			return
		case *ast.CallExpr:
			if isTerminalCall(pass, n) {
				canExit = true
				return
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			ast.Inspect(n, func(m ast.Node) bool {
				if m == n || canExit {
					return m == n
				}
				walk(m, depth+1)
				return false
			})
			return
		}
		// Generic recursion over children at the same depth.
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n || canExit {
				return m == n
			}
			walk(m, depth)
			return false
		})
	}
	for _, st := range loop.Body.List {
		walk(st, 0)
	}
	return canExit
}

// isTerminalCall reports calls that never return: panic, os.Exit,
// log.Fatal*, runtime.Goexit.
func isTerminalCall(pass *lint.Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			if _, isBuiltin := pass.ObjectOf(fun).(*types.Builtin); isBuiltin {
				return true
			}
		}
	case *ast.SelectorExpr:
		fn, ok := pass.ObjectOf(fun.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() == "Exit"
		case "log":
			return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln" ||
				fn.Name() == "Panic" || fn.Name() == "Panicf" || fn.Name() == "Panicln"
		case "runtime":
			return fn.Name() == "Goexit"
		}
	}
	return false
}
