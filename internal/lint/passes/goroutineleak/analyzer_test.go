package goroutineleak_test

import (
	"testing"

	"dgsf/internal/lint/linttest"
	"dgsf/internal/lint/passes/goroutineleak"
)

func TestGoroutineleak(t *testing.T) {
	linttest.Run(t, "testdata", goroutineleak.Analyzer, "d/internal/gpuserver")
}
