// Package passes registers the dgsfvet analyzer suite.
package passes

import (
	"dgsf/internal/lint"
	"dgsf/internal/lint/passes/asyncsafe"
	"dgsf/internal/lint/passes/bufown"
	"dgsf/internal/lint/passes/errsentinel"
	"dgsf/internal/lint/passes/goroutineleak"
	"dgsf/internal/lint/passes/journalcover"
	"dgsf/internal/lint/passes/lockorder"
	"dgsf/internal/lint/passes/rawconn"
	"dgsf/internal/lint/passes/sharedretain"
	"dgsf/internal/lint/passes/simdeterminism"
)

// All returns the full dgsfvet analyzer suite in reporting order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		simdeterminism.Analyzer,
		errsentinel.Analyzer,
		rawconn.Analyzer,
		asyncsafe.Analyzer,
		journalcover.Analyzer,
		goroutineleak.Analyzer,
		bufown.Analyzer,
		sharedretain.Analyzer,
		lockorder.Analyzer,
	}
}
