// Package journalcover ties the guest library to the crash-recovery replay
// journal: every guest method implementing a state-establishing call (per
// apigen's StateEstablishingCalls table) must register a journal entry
// (journalPut/journalPutPtr), or a recovered session would come back
// without that piece of server-side state.
package journalcover

import (
	"go/ast"

	"dgsf/internal/lint"
	"dgsf/internal/remoting/gen"
)

// Analyzer is the journalcover pass.
var Analyzer = &lint.Analyzer{
	Name: "journalcover",
	Doc: "every guest method implementing a call in gen.StateEstablishingCalls " +
		"must call journalPut/journalPutPtr so crash recovery can re-establish " +
		"the state it creates",
	Run: run,
}

// Required is the table of state-establishing call names; it defaults to
// the generated single source of truth and is overridable in tests.
var Required = gen.StateEstablishingCalls

// journalFuncs register a replay entry.
var journalFuncs = map[string]bool{"journalPut": true, "journalPutPtr": true}

func run(pass *lint.Pass) error {
	if !lint.PkgPathHasSuffix(pass.Pkg.Path(), "internal/guest") {
		return nil // the replay journal lives in the guest library
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if !Required[fd.Name.Name] {
				continue
			}
			if !callsJournal(fd.Body) {
				pass.Reportf(fd.Pos(), "%s establishes server-side state (gen.StateEstablishingCalls) but never registers a replay-journal entry (journalPut/journalPutPtr); a recovered session would lose this state", fd.Name.Name)
			}
		}
	}
	return nil
}

func callsJournal(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if journalFuncs[name] {
			found = true
			return false
		}
		return true
	})
	return found
}
