// Package guest is a miniature guest library: the journalcover analyzer
// keys on the "internal/guest" path suffix.
package guest

// Lib mimics the guest library with its replay journal.
type Lib struct {
	journal map[string]func()
}

func (l *Lib) journalPut(key string, replay func()) { l.journal[key] = replay }

func (l *Lib) journalPutPtr(key string, base uint64, replay func()) { l.journal[key] = replay }

// Malloc establishes state but forgets to journal it.
func (l *Lib) Malloc(size int64) uint64 { // want "never registers a replay-journal entry"
	return uint64(size)
}

// StreamCreate journals directly.
func (l *Lib) StreamCreate() uint64 {
	l.journalPut("stream", func() {})
	return 1
}

// MemcpyH2D journals inside a closure, the common shape in the real guest.
func (l *Lib) MemcpyH2D(dst uint64, n int64) error {
	submit := func() {
		l.journalPutPtr("h2d", dst, func() {})
	}
	submit()
	return nil
}

// Bye is not state-establishing; no journal entry required.
func (l *Lib) Bye() {}
