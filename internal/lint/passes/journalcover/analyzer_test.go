package journalcover_test

import (
	"testing"

	"dgsf/internal/lint/linttest"
	"dgsf/internal/lint/passes/journalcover"
	"dgsf/internal/remoting/gen"
)

func TestJournalcover(t *testing.T) {
	old := journalcover.Required
	journalcover.Required = map[string]bool{
		"Malloc":       true,
		"StreamCreate": true,
		"MemcpyH2D":    true,
	}
	defer func() { journalcover.Required = old }()
	linttest.Run(t, "testdata", journalcover.Analyzer, "c/internal/guest")
}

// TestDefaultTableIsGenerated pins the analyzer to apigen's single source
// of truth.
func TestDefaultTableIsGenerated(t *testing.T) {
	if len(journalcover.Required) == 0 {
		t.Fatal("default Required table is empty")
	}
	for name := range journalcover.Required {
		if !gen.StateEstablishingCalls[name] {
			t.Errorf("analyzer table has %s but gen.StateEstablishingCalls does not", name)
		}
	}
}
