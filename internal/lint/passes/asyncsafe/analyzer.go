// Package asyncsafe guards the one-way async lane: every call submitted
// through the guest's submitAsync/submitAsyncDone helpers (which wrap the
// payload in remoting.CallAsync) must be in apigen's deferrable-call table.
// A refactor that turns a result-bearing call into a fire-and-forget
// submission would otherwise silently discard its result and error.
package asyncsafe

import (
	"go/ast"
	"regexp"

	"dgsf/internal/lint"
	"dgsf/internal/remoting/gen"
)

// Analyzer is the asyncsafe pass.
var Analyzer = &lint.Analyzer{
	Name: "asyncsafe",
	Doc: "every Append*Call encoded inside a submitAsync/submitAsyncDone " +
		"submission must be in gen.DeferrableCalls (apigen's Async flag); " +
		"result-bearing calls must use the synchronous path",
	Run: run,
}

// Deferrable is the call table consulted; it defaults to the generated
// single source of truth and is overridable in tests.
var Deferrable = gen.DeferrableCalls

// submitFuncs are the guest helpers that wrap their payload in CallAsync.
var submitFuncs = map[string]bool{"submitAsync": true, "submitAsyncDone": true}

var appendCallRe = regexp.MustCompile(`^Append([A-Z]\w*)Call$`)

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if !submitFuncs[name] {
				return true
			}
			// The payload is built by a closure argument; find every
			// Append*Call it encodes and check the table.
			for _, arg := range call.Args {
				fl, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					inner, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					iname := calleeName(inner)
					sub := appendCallRe.FindStringSubmatch(iname)
					if sub == nil {
						return true
					}
					if !Deferrable[sub[1]] {
						pass.Reportf(inner.Pos(), "%s submitted on the one-way async lane but %s is not in gen.DeferrableCalls; its result/ordering would be silently lost — mark it Async in cmd/apigen's spec or use the synchronous path", iname, sub[1])
					}
					return true
				})
			}
			return true
		})
	}
	return nil
}

// calleeName returns the bare name of the called function or method.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
