package asyncsafe_test

import (
	"testing"

	"dgsf/internal/lint/linttest"
	"dgsf/internal/lint/passes/asyncsafe"
	"dgsf/internal/remoting/gen"
)

func TestAsyncsafe(t *testing.T) {
	old := asyncsafe.Deferrable
	asyncsafe.Deferrable = map[string]bool{"Good": true}
	defer func() { asyncsafe.Deferrable = old }()
	linttest.Run(t, "testdata", asyncsafe.Analyzer, "a/async")
}

// TestDefaultTableIsGenerated pins the analyzer to apigen's single source
// of truth: the default table must be the generated one, not a copy.
func TestDefaultTableIsGenerated(t *testing.T) {
	if len(asyncsafe.Deferrable) == 0 {
		t.Fatal("default Deferrable table is empty")
	}
	for name := range asyncsafe.Deferrable {
		if !gen.DeferrableCalls[name] {
			t.Errorf("analyzer table has %s but gen.DeferrableCalls does not", name)
		}
	}
	for name := range gen.DeferrableCalls {
		if !asyncsafe.Deferrable[name] {
			t.Errorf("gen.DeferrableCalls has %s but analyzer table does not", name)
		}
	}
}
