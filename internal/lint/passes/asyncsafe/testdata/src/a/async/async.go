package async

type enc struct{}

// AppendGoodCall stands in for a generated deferrable call's encoder.
func AppendGoodCall(e *enc) {}

// AppendBadCall stands in for a generated result-bearing call's encoder.
func AppendBadCall(e *enc) {}

type lib struct{}

func (l *lib) submitAsync(fn func(e *enc)) error     { return nil }
func (l *lib) submitAsyncDone(fn func(e *enc)) error { return nil }

func use(l *lib) {
	_ = l.submitAsync(func(e *enc) { AppendGoodCall(e) })
	_ = l.submitAsyncDone(func(e *enc) { AppendGoodCall(e) })
	_ = l.submitAsync(func(e *enc) { AppendBadCall(e) })     // want "not in gen.DeferrableCalls"
	_ = l.submitAsyncDone(func(e *enc) { AppendBadCall(e) }) // want "not in gen.DeferrableCalls"

	// Outside a submit closure, any Append*Call is fine (batching path).
	var e enc
	AppendBadCall(&e)
}
