package errsentinel_test

import (
	"testing"

	"dgsf/internal/lint/linttest"
	"dgsf/internal/lint/passes/errsentinel"
)

func TestErrsentinel(t *testing.T) {
	linttest.Run(t, "testdata", errsentinel.Analyzer, "a/errsent")
}
