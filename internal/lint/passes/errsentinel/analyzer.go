// Package errsentinel forbids identity comparison against error sentinels
// and error formatting that loses the wrap chain. The transport deliberately
// returns wrapped sentinels (ErrConnClosed, ErrFrameCorrupt, ErrCallTimeout
// carry the failing conn's detail), so `err == ErrConnClosed` silently stops
// matching the moment a path adds context; errors.Is and %w keep the chain
// intact.
package errsentinel

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"dgsf/internal/lint"
)

// Analyzer is the errsentinel pass.
var Analyzer = &lint.Analyzer{
	Name: "errsentinel",
	Doc: "forbid ==/!= against error sentinels (use errors.Is) and fmt.Errorf " +
		"wrapping an error without %w (which breaks errors.Is matching downstream)",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkCompare(pass, n)
			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCompare(pass *lint.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	// Comparisons against nil are the idiomatic success check; leave them.
	if isNil(pass, be.X) || isNil(pass, be.Y) {
		return
	}
	sentinel := sentinelName(pass, be.X)
	other := be.Y
	if sentinel == "" {
		sentinel = sentinelName(pass, be.Y)
		other = be.X
	}
	if sentinel == "" {
		return
	}
	// Require the other side to be error-ish so we do not flag comparisons
	// of, say, integer constants that happen to be named ErrFoo codes —
	// unless both sides are the concrete sentinel type, which still breaks
	// under wrapping when one side came through an error path.
	if !isErrorish(pass.TypeOf(other)) && !isErrorish(pass.TypeOf(be.X)) {
		return
	}
	pass.Reportf(be.OpPos, "comparing against sentinel %s with %s breaks once the error is wrapped; use errors.Is", sentinel, be.Op)
}

// isNil reports whether the expression is the untyped nil.
func isNil(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.IsNil()
}

// sentinelName reports the name of a package-level Err* error value the
// expression denotes, or "".
func sentinelName(pass *lint.Pass, e ast.Expr) string {
	e = ast.Unparen(e)
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	obj := pass.ObjectOf(id)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	// Package-level (not local) vars/consts named Err* whose type is
	// error-ish: errors.New sentinels, typed sentinel constants like
	// cuda.ErrInvalidValue, etc.
	if obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	switch obj.(type) {
	case *types.Var, *types.Const:
	default:
		return ""
	}
	if !strings.HasPrefix(obj.Name(), "Err") || !isErrorish(obj.Type()) {
		return ""
	}
	return obj.Name()
}

// isErrorish reports whether t is the error interface or a concrete type
// implementing it.
func isErrorish(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if types.Implements(t, errIface) {
		return true
	}
	return types.Implements(types.NewPointer(t), errIface)
}

// checkErrorf flags fmt.Errorf calls whose format has no %w verb but whose
// arguments include an error: the wrap chain is cut and errors.Is stops
// matching.
func checkErrorf(pass *lint.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // non-constant format: cannot reason about it
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		t := pass.TypeOf(arg)
		if t == nil || !isErrorInterface(t) {
			continue
		}
		pass.Reportf(call.Pos(), "fmt.Errorf formats an error argument without %%w; the sentinel becomes unmatchable by errors.Is")
		return
	}
}

// isErrorInterface reports whether t is exactly the error interface type
// (concrete error-typed values formatted with %v are usually intentional
// code/status rendering, e.g. cuda.Error codes).
func isErrorInterface(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type()
	return types.Identical(t, errType)
}
