package errsent

import (
	"errors"
	"fmt"
)

// ErrClosed mimics a transport sentinel.
var ErrClosed = errors.New("closed")

// notSentinel is package-level but not Err-named; identity comparison is
// assumed intentional.
var notSentinel = errors.New("other")

func op() error { return ErrClosed }

func bad() {
	if op() == ErrClosed { // want "use errors.Is"
		return
	}
	if ErrClosed != op() { // want "use errors.Is"
		return
	}
	err := op()
	_ = fmt.Errorf("op failed: %v", err) // want "without %w"
}

func good() error {
	err := op()
	if err == nil { // nil checks are the success idiom
		return nil
	}
	if errors.Is(err, ErrClosed) {
		return nil
	}
	if err == notSentinel {
		return nil
	}
	_ = fmt.Errorf("op failed: %w", err)
	_ = fmt.Errorf("count %d", 7)
	return err
}
