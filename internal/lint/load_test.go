package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadFromListVariantSelection feeds the loader a synthetic `go list
// -test -deps` stream and checks target selection: test variants replace
// their plain package, external test packages ride along, and standard,
// dep-only, and .test-binary entries are excluded.
func TestLoadFromListVariantSelection(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	aGo := write("a.go", "package a\n\nfunc A() {}\n")
	bGo := write("b.go", "package b\n\nfunc B() {}\n")
	bTestGo := write("b_internal_test.go", "package b\n\nfunc helperForTest() {}\n")
	bxGo := write("bx_test.go", "package b_test\n\nfunc X() {}\n")
	depGo := write("dep.go", "package dep\n\nfunc D() {}\n")

	entries := []map[string]any{
		{"ImportPath": "fmt", "Name": "fmt", "Standard": true, "DepOnly": true},
		{"ImportPath": "m/dep", "Name": "dep", "Dir": dir, "DepOnly": true, "GoFiles": []string{depGo}},
		{"ImportPath": "m/a", "Name": "a", "Dir": dir, "GoFiles": []string{aGo}},
		{"ImportPath": "m/b", "Name": "b", "Dir": dir, "GoFiles": []string{bGo}},
		{"ImportPath": "m/b [m/b.test]", "Name": "b", "Dir": dir, "ForTest": "m/b", "GoFiles": []string{bGo, bTestGo}},
		{"ImportPath": "m/b_test [m/b.test]", "Name": "b_test", "Dir": dir, "ForTest": "m/b", "GoFiles": []string{bxGo}},
		{"ImportPath": "m/b.test", "Name": "main", "Dir": dir},
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}

	pkgs, err := loadFromList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, p := range pkgs {
		got = append(got, p.ImportPath)
	}
	want := []string{"m/a", "m/b [m/b.test]", "m/b_test [m/b.test]"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("targets = %v, want %v", got, want)
	}

	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: type errors: %v", p.ImportPath, p.TypeErrors)
		}
		if p.Pkg == nil {
			t.Fatalf("%s: no type info", p.ImportPath)
		}
	}

	// The variant's type-checked package path drops the "[...]" marker, and
	// its file list includes the merged _test.go file.
	variant := pkgs[1]
	if variant.Pkg.Path() != "m/b" {
		t.Errorf("variant package path = %q, want m/b", variant.Pkg.Path())
	}
	hasTestFile := false
	for _, f := range variant.Files {
		if strings.HasSuffix(variant.Fset.Position(f.Pos()).Filename, "_test.go") {
			hasTestFile = true
		}
	}
	if !hasTestFile {
		t.Error("variant file list is missing its _test.go file")
	}
}

// TestLoadFromListNoVariant checks that a package without test files is
// analyzed as its plain (non-variant) entry.
func TestLoadFromListNoVariant(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.go")
	if err := os.WriteFile(path, []byte("package a\n\nfunc A() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(map[string]any{
		"ImportPath": "m/a", "Name": "a", "Dir": dir, "GoFiles": []string{path},
	}); err != nil {
		t.Fatal(err)
	}
	pkgs, err := loadFromList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "m/a" {
		t.Fatalf("targets = %+v, want the single plain package", pkgs)
	}
}
