package store

import (
	"encoding/binary"
	"time"

	"dgsf/internal/remoting"
	"dgsf/internal/sim"
	"dgsf/internal/store/storegen"
	"dgsf/internal/store/storewire"
)

// This file makes the store remotable: Serve exposes a Store on a remoting
// listener through the apigen-generated dispatch (storegen), and Remote is
// the client-side Interface implementation a controller uses when the store
// lives elsewhere. Synchronous CRUD rides the request/response lane;
// UpdateStatusAsync rides the one-way submission lane; watches are long-poll
// pulls pumped into an ordinary Watch queue.

// apiAdapter implements storegen.StoreAPI over the in-process store.
type apiAdapter struct{ s *Store }

func (a apiAdapter) StoreGet(p *sim.Proc, kind, name string) (storewire.Object, error) {
	r, err := a.s.Get(p, Kind(kind), name)
	if err != nil {
		return storewire.Object{}, err
	}
	return ToWire(r), nil
}

func (a apiAdapter) StoreList(p *sim.Proc, kind string) ([]storewire.Object, uint64, error) {
	rs, rv, err := a.s.List(p, Kind(kind))
	if err != nil {
		return nil, 0, err
	}
	objs := make([]storewire.Object, 0, len(rs))
	for _, r := range rs {
		objs = append(objs, ToWire(r))
	}
	return objs, rv, nil
}

func (a apiAdapter) StoreCreate(p *sim.Proc, obj storewire.Object) (storewire.Object, error) {
	r, err := FromWire(obj)
	if err != nil {
		return storewire.Object{}, err
	}
	stored, err := a.s.Create(p, r)
	if err != nil {
		return storewire.Object{}, err
	}
	return ToWire(stored), nil
}

func (a apiAdapter) StoreUpdate(p *sim.Proc, obj storewire.Object) (storewire.Object, error) {
	r, err := FromWire(obj)
	if err != nil {
		return storewire.Object{}, err
	}
	stored, err := a.s.Update(p, r)
	if err != nil {
		return storewire.Object{}, err
	}
	return ToWire(stored), nil
}

func (a apiAdapter) StoreUpdateStatus(p *sim.Proc, obj storewire.Object) (storewire.Object, error) {
	r, err := FromWire(obj)
	if err != nil {
		return storewire.Object{}, err
	}
	stored, err := a.s.UpdateStatus(p, r)
	if err != nil {
		return storewire.Object{}, err
	}
	return ToWire(stored), nil
}

func (a apiAdapter) StoreUpdateStatusAsync(p *sim.Proc, obj storewire.Object) error {
	r, err := FromWire(obj)
	if err != nil {
		return err
	}
	return a.s.UpdateStatusAsync(p, r)
}

func (a apiAdapter) StoreDelete(p *sim.Proc, kind, name string, rv uint64) error {
	return a.s.Delete(p, Kind(kind), name, rv)
}

func (a apiAdapter) StoreWatchPull(p *sim.Proc, kind string, fromRV uint64, max int, wait time.Duration) ([]storewire.Event, uint64, error) {
	evs, nextRV, err := a.s.PullEvents(p, Kind(kind), fromRV, max, wait)
	if err != nil {
		return nil, 0, err
	}
	out := make([]storewire.Event, 0, len(evs))
	for _, ev := range evs {
		out = append(out, storewire.Event{Type: byte(ev.Type), RV: ev.RV, Obj: ToWire(ev.Object)})
	}
	return out, nextRV, nil
}

// Serve runs the store's request loop on listener l until the listener's
// inbox closes. CRUD executes inline, preserving FIFO order between a
// client's one-way status submissions and its later synchronous calls;
// long-poll watch pulls block, so each runs in its own short-lived process
// and cannot stall other clients. Run it as a daemon:
//
//	e.Run("store", func(p *sim.Proc) { store.Serve(p, s, l) })
func Serve(p *sim.Proc, s *Store, l *remoting.Listener) {
	api := apiAdapter{s: s}
	for {
		req, ok := l.Incoming.Recv(p)
		if !ok {
			return
		}
		if req.Ctrl != nil || len(req.Payload) < 2 {
			continue
		}
		switch binary.LittleEndian.Uint16(req.Payload) {
		case remoting.CallProtoHello:
			// Version negotiation. A malformed hello falls through to
			// Dispatch's unknown-call error, which the dialer reads as
			// "v1 server" — the same answer a pre-hello store gave.
			if reply, _, ok := remoting.HandleHello(req.Payload, remoting.MaxProtoVersion); ok {
				if req.ReplyTo != nil {
					req.ReplyTo.TrySend(remoting.Response{Payload: reply, Proto: remoting.ProtoV1})
				}
				continue
			}
		case storegen.CallStoreWatchPull:
			r := req
			p.Spawn("store-pull", func(p *sim.Proc) {
				resp := storegen.Dispatch(p, api, r.Payload)
				if r.ReplyTo != nil {
					r.ReplyTo.TrySend(remoting.Response{Payload: resp, Proto: r.Proto})
				}
			})
			continue
		}
		resp := storegen.Dispatch(p, api, req.Payload)
		if req.ReplyTo != nil {
			// The client may have died mid-call; drop the reply like a
			// network would.
			req.ReplyTo.TrySend(remoting.Response{Payload: resp, Proto: req.Proto})
		}
	}
}

// Remote watch-pump tuning.
const (
	remotePullMax   = 128
	remotePullWait  = 200 * time.Millisecond
	remoteRetryWait = 100 * time.Millisecond
)

// Remote implements Interface over a remoting transport, so reconcilers are
// indifferent to whether the store is in-process or behind the wire.
type Remote struct {
	e *sim.Engine
	c *storegen.Client
}

// NewRemote returns a store handle speaking the wire protocol over t.
func NewRemote(e *sim.Engine, t remoting.Caller) *Remote {
	return &Remote{e: e, c: &storegen.Client{T: t}}
}

// Get implements Interface.
func (r *Remote) Get(p *sim.Proc, kind Kind, name string) (Resource, error) {
	o, err := r.c.StoreGet(p, string(kind), name)
	if err != nil {
		return nil, err
	}
	return FromWire(o)
}

// List implements Interface.
func (r *Remote) List(p *sim.Proc, kind Kind) ([]Resource, uint64, error) {
	objs, rv, err := r.c.StoreList(p, string(kind))
	if err != nil {
		return nil, 0, err
	}
	out := make([]Resource, 0, len(objs))
	for _, o := range objs {
		res, err := FromWire(o)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, res)
	}
	return out, rv, nil
}

// Create implements Interface.
func (r *Remote) Create(p *sim.Proc, res Resource) (Resource, error) {
	o, err := r.c.StoreCreate(p, ToWire(res))
	if err != nil {
		return nil, err
	}
	return FromWire(o)
}

// Update implements Interface.
func (r *Remote) Update(p *sim.Proc, res Resource) (Resource, error) {
	o, err := r.c.StoreUpdate(p, ToWire(res))
	if err != nil {
		return nil, err
	}
	return FromWire(o)
}

// UpdateStatus implements Interface.
func (r *Remote) UpdateStatus(p *sim.Proc, res Resource) (Resource, error) {
	o, err := r.c.StoreUpdateStatus(p, ToWire(res))
	if err != nil {
		return nil, err
	}
	return FromWire(o)
}

// UpdateStatusAsync implements Interface: the write rides the one-way lane
// and any conflict is dropped server-side.
func (r *Remote) UpdateStatusAsync(p *sim.Proc, res Resource) error {
	return r.c.StoreUpdateStatusAsync(p, ToWire(res))
}

// Delete implements Interface.
func (r *Remote) Delete(p *sim.Proc, kind Kind, name string, rv uint64) error {
	return r.c.StoreDelete(p, string(kind), name, rv)
}

// Watch implements Interface by pumping long-poll pulls into a local event
// queue. Transient transport errors retry after a short pause; Stop ends
// the pump.
func (r *Remote) Watch(p *sim.Proc, kind Kind, fromRV uint64) (*Watch, error) {
	w := &Watch{Events: sim.NewQueue[Event](r.e), kind: kind}
	w.stop = func() { w.Events.Close() }
	rv := fromRV
	p.SpawnDaemon("store-watch-pump", func(p *sim.Proc) {
		for !w.stopped {
			evs, nextRV, err := r.c.StoreWatchPull(p, string(kind), rv, remotePullMax, remotePullWait)
			if err != nil {
				if remoting.IsConnFault(err) {
					// The connection is gone for good (sim transports do
					// not reconnect); the consumer re-dials and re-watches.
					w.Events.Close()
					return
				}
				p.Sleep(remoteRetryWait)
				continue
			}
			for _, wev := range evs {
				res, err := FromWire(wev.Obj)
				if err != nil {
					continue
				}
				if !w.Events.TrySend(Event{Type: EventType(wev.Type), RV: wev.RV, Object: res}) {
					return
				}
			}
			rv = nextRV
		}
	})
	return w, nil
}

var _ Interface = (*Store)(nil)
var _ Interface = (*Remote)(nil)
