package store

import (
	"testing"
	"time"

	"dgsf/internal/remoting"
	"dgsf/internal/sim"
)

// runRemote builds a store served behind the sim transport and hands the test
// body a Remote handle plus the underlying conn (for fault injection) and the
// in-process store (for observing server-side state directly).
func runRemote(t *testing.T, seed int64, fn func(p *sim.Proc, r *Remote, conn remoting.AsyncCaller, s *Store)) {
	t.Helper()
	e := sim.NewEngine(seed)
	e.SetTimeLimit(time.Hour)
	s := New(e, nil)
	l := remoting.NewListener(e)
	e.Run("test", func(p *sim.Proc) {
		p.SpawnDaemon("store-serve", func(p *sim.Proc) { Serve(p, s, l) })
		conn := remoting.Dial(e, l, remoting.NetProfile{RTT: 100 * time.Microsecond})
		fn(p, NewRemote(e, conn), conn, s)
	})
}

func TestRemoteCRUDOverWire(t *testing.T) {
	runRemote(t, 1, func(p *sim.Proc, r *Remote, conn remoting.AsyncCaller, s *Store) {
		gs := &GPUServer{}
		gs.ObjectMeta.Name = "gpu-0"
		gs.Spec.GPUs = 4
		gs.Spec.ServersPerGPU = 2
		created, err := r.Create(p, gs)
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		cm := created.Meta()
		if cm.ResourceVersion == 0 || cm.UID == 0 || cm.Generation != 1 {
			t.Fatalf("bad created meta: %+v", cm)
		}

		// Get round-trips the typed resource.
		got, err := r.Get(p, KindGPUServer, "gpu-0")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if got.(*GPUServer).Spec.GPUs != 4 {
			t.Fatalf("spec lost over the wire: %+v", got)
		}
		if _, err := r.Get(p, KindGPUServer, "nope"); !IsNotFound(err) {
			t.Fatalf("want ErrNotFound through the wire, got %v", err)
		}

		// Spec update bumps generation; a stale RV conflicts with the typed
		// sentinel surviving encode/decode.
		upd := got.DeepCopy().(*GPUServer)
		upd.Spec.GPUs = 8
		upd2, err := r.Update(p, upd)
		if err != nil {
			t.Fatalf("Update: %v", err)
		}
		if upd2.Meta().Generation != 2 {
			t.Fatalf("generation = %d, want 2", upd2.Meta().Generation)
		}
		stale := got.DeepCopy().(*GPUServer) // still carries the old RV
		stale.Spec.GPUs = 16
		if _, err := r.Update(p, stale); !IsConflict(err) {
			t.Fatalf("want ErrConflict through the wire, got %v", err)
		}

		// Status update keeps the stored spec.
		st := upd2.DeepCopy().(*GPUServer)
		st.Status.Healthy = true
		st.Spec.GPUs = 999 // must be ignored
		st2, err := r.UpdateStatus(p, st)
		if err != nil {
			t.Fatalf("UpdateStatus: %v", err)
		}
		if st2.(*GPUServer).Spec.GPUs != 8 || !st2.(*GPUServer).Status.Healthy {
			t.Fatalf("UpdateStatus mangled the object: %+v", st2)
		}

		// List is sorted and versioned; Delete enforces the RV check.
		rs, rv, err := r.List(p, KindGPUServer)
		if err != nil || len(rs) != 1 || rv == 0 {
			t.Fatalf("List: %v %d %v", rs, rv, err)
		}
		if err := r.Delete(p, KindGPUServer, "gpu-0", 1); !IsConflict(err) {
			t.Fatalf("stale delete: want ErrConflict, got %v", err)
		}
		if err := r.Delete(p, KindGPUServer, "gpu-0", 0); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if _, err := r.Get(p, KindGPUServer, "gpu-0"); !IsNotFound(err) {
			t.Fatalf("object survived delete: %v", err)
		}
	})
}

func TestRemoteAsyncStatusLaneFIFO(t *testing.T) {
	runRemote(t, 2, func(p *sim.Proc, r *Remote, conn remoting.AsyncCaller, s *Store) {
		sess := &Session{}
		sess.ObjectMeta.Name = "s1"
		sess.Spec.FnID = "fn"
		created, err := r.Create(p, sess)
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		up := created.DeepCopy().(*Session)
		up.Status.Phase = PhaseRunning
		// One-way submission, then a synchronous Get as the fence: the
		// transport guarantees FIFO between Submit and Roundtrip, so the
		// status write must be visible to the fenced read.
		if err := r.UpdateStatusAsync(p, up); err != nil {
			t.Fatalf("UpdateStatusAsync: %v", err)
		}
		got, err := r.Get(p, KindSession, "s1")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if got.(*Session).Status.Phase != PhaseRunning {
			t.Fatalf("async status write not visible after fence: %+v", got)
		}

		// A conflicting async write is dropped server-side, not an error.
		staleAgain := created.DeepCopy().(*Session) // old RV now
		staleAgain.Status.Phase = PhaseFailed
		if err := r.UpdateStatusAsync(p, staleAgain); err != nil {
			t.Fatalf("conflicting async write should be dropped, got %v", err)
		}
		got2, err := r.Get(p, KindSession, "s1")
		if err != nil || got2.(*Session).Status.Phase != PhaseRunning {
			t.Fatalf("dropped conflict mutated state: %+v %v", got2, err)
		}
	})
}

func TestRemoteWatchPumpsEvents(t *testing.T) {
	runRemote(t, 3, func(p *sim.Proc, r *Remote, conn remoting.AsyncCaller, s *Store) {
		w, err := r.Watch(p, KindSession, 0)
		if err != nil {
			t.Fatalf("Watch: %v", err)
		}
		sess := &Session{}
		sess.ObjectMeta.Name = "s1"
		created, err := r.Create(p, sess)
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		up := created.DeepCopy().(*Session)
		up.Status.Phase = PhaseDone
		if _, err := r.UpdateStatus(p, up); err != nil {
			t.Fatalf("UpdateStatus: %v", err)
		}
		if err := r.Delete(p, KindSession, "s1", 0); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		wantTypes := []EventType{Added, Modified, Deleted}
		var lastRV uint64
		for i, want := range wantTypes {
			ev, ok := w.Events.Recv(p)
			if !ok {
				t.Fatalf("watch closed after %d events", i)
			}
			if ev.Type != want {
				t.Fatalf("event %d: type %v, want %v", i, ev.Type, want)
			}
			if ev.RV <= lastRV {
				t.Fatalf("event %d: RV %d not monotonic (last %d)", i, ev.RV, lastRV)
			}
			lastRV = ev.RV
			if ev.Object.Meta().Name != "s1" {
				t.Fatalf("event %d: wrong object %q", i, ev.Object.Meta().Name)
			}
		}
		w.Stop()
	})
}

func TestRemoteWatchPumpExitsOnConnFault(t *testing.T) {
	runRemote(t, 7, func(p *sim.Proc, r *Remote, conn remoting.AsyncCaller, s *Store) {
		w, err := r.Watch(p, KindGPUServer, 0)
		if err != nil {
			t.Fatalf("Watch: %v", err)
		}
		// Let the pump issue at least one pull, then sever the connection:
		// the pump must close the event queue rather than retry forever.
		p.Sleep(time.Millisecond)
		conn.(remoting.Faultable).Break()
		if _, ok := w.Events.Recv(p); ok {
			t.Fatal("got event after connection break")
		}
	})
}
