// Package store implements the cluster control plane's resource store: a
// versioned, watchable registry of the fleet's control state — GPU servers,
// hosted API servers, function sessions, staged models — modeled on the
// KRM-style device apiserver pattern (NVSentinel), scaled down to DGSF's
// needs.
//
// Semantics:
//
//   - Every resource carries ObjectMeta{Name, UID, ResourceVersion,
//     Generation}. ResourceVersion is a store-wide monotonic counter bumped
//     on every successful write to the object; Generation increments only
//     when the Spec section changes, so status-only churn does not retrigger
//     spec-driven reconcilers.
//   - Update, UpdateStatus and Delete are compare-and-swap on
//     ResourceVersion: a mismatch fails with ErrConflict and the caller is
//     expected to re-read and retry (optimistic concurrency).
//   - Watch delivers an ordered stream of Added/Modified/Deleted events per
//     kind. A watch from an old ResourceVersion replays from a bounded event
//     log; if the log no longer reaches back that far the store synthesizes
//     Added events for the current state instead — level-triggered consumers
//     (reconcilers) are correct either way.
//
// The store is deterministic under internal/sim: iteration is over sorted
// keys, watch delivery follows registration order, and no wall-clock or
// global randomness is consulted.
package store

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"dgsf/internal/metrics"
	"dgsf/internal/remoting/wire"
	"dgsf/internal/sim"
	"dgsf/internal/store/storewire"
)

// Typed store errors, shared with the wire layer (see storewire).
var (
	ErrConflict   = storewire.ErrConflict
	ErrNotFound   = storewire.ErrNotFound
	ErrExists     = storewire.ErrExists
	ErrBadRequest = storewire.ErrBadRequest
	ErrHalted     = storewire.ErrHalted
)

// Kind names a resource keyspace.
type Kind string

// The control plane's resource kinds.
const (
	KindGPUServer    Kind = "GPUServer"
	KindAPIServer    Kind = "APIServer"
	KindSession      Kind = "Session"
	KindStagedModel  Kind = "StagedModel"
	KindTensorHandle Kind = "TensorHandle"
)

// Kinds lists every keyspace in deterministic order.
func Kinds() []Kind {
	return []Kind{KindAPIServer, KindGPUServer, KindSession, KindStagedModel, KindTensorHandle}
}

// ObjectMeta is the common metadata of every stored resource.
type ObjectMeta struct {
	// Name is the immutable primary key within the kind's keyspace.
	Name string
	// UID distinguishes reincarnations of the same name. Immutable.
	UID uint64
	// ResourceVersion is the store-wide write counter value of the last
	// write to this object; writes must present the current value.
	ResourceVersion uint64
	// Generation counts Spec changes only.
	Generation uint64
	// CreatedAt is the virtual time the object was created.
	CreatedAt time.Duration
}

// Resource is one typed control-plane object. Implementations pair a Spec
// (desired state, bumps Generation) with a Status (observed state).
type Resource interface {
	Kind() Kind
	Meta() *ObjectMeta
	DeepCopy() Resource
	EncodeSpec(e *wire.Encoder)
	DecodeSpec(d *wire.Decoder)
	EncodeStatus(e *wire.Encoder)
	DecodeStatus(d *wire.Decoder)
}

// EventType classifies a watch notification.
type EventType byte

// Watch event types.
const (
	Added    = EventType(storewire.EventAdded)
	Modified = EventType(storewire.EventModified)
	Deleted  = EventType(storewire.EventDeleted)
)

// String returns the event type name.
func (t EventType) String() string {
	switch t {
	case Added:
		return "ADDED"
	case Modified:
		return "MODIFIED"
	case Deleted:
		return "DELETED"
	}
	return "?"
}

// Event is one watch notification. Object is a private copy of the state
// after the change; for Deleted it is the last stored state.
type Event struct {
	Type   EventType
	RV     uint64
	Object Resource
}

// Interface is the store API shared by the in-process Store and the remote
// client (remote.go), so controllers are indifferent to where the store
// lives. All writes copy their argument; all reads return private copies.
type Interface interface {
	Get(p *sim.Proc, kind Kind, name string) (Resource, error)
	List(p *sim.Proc, kind Kind) ([]Resource, uint64, error)
	Create(p *sim.Proc, r Resource) (Resource, error)
	Update(p *sim.Proc, r Resource) (Resource, error)
	UpdateStatus(p *sim.Proc, r Resource) (Resource, error)
	// UpdateStatusAsync is the fire-and-forget status lane: the write is
	// applied (or submitted) without waiting for a result, and conflicts
	// are dropped rather than reported — periodic resync heals the gap.
	UpdateStatusAsync(p *sim.Proc, r Resource) error
	Delete(p *sim.Proc, kind Kind, name string, rv uint64) error
	Watch(p *sim.Proc, kind Kind, fromRV uint64) (*Watch, error)
}

// logWindow bounds the replayable event log. Older events are dropped; a
// watch from before the window falls back to a synthesized relist.
const logWindow = 4096

// Store is the in-process resource store.
type Store struct {
	e     *sim.Engine
	rv    uint64
	uid   uint64
	kinds map[Kind]map[string]Resource

	log            []Event // bounded replay log, ascending RV
	truncatedAtRV  uint64  // RV of the newest dropped log event (0: none)
	watchers       []*Watch
	nextWatch      int
	writeBroadcast *sim.Cond // wakes blocked PullEvents long-polls

	writes     *metrics.Counter
	deletes    *metrics.Counter
	conflicts  *metrics.Counter
	watchSends *metrics.Counter
	objects    *metrics.Gauge
	watchGauge *metrics.Gauge

	// writeFault, when set, is consulted before applying any Update,
	// UpdateStatus or Delete; a non-nil return rejects the write with that
	// error and nothing is applied. The fault framework injects conflict
	// storms here — every writer's CAS loop gets exercised against spurious
	// rejections, exactly as if a competing writer kept winning the race.
	writeFault func(p *sim.Proc) error
}

// SetWriteFault installs (or clears, with nil) the write-fault hook.
func (s *Store) SetWriteFault(fn func(p *sim.Proc) error) { s.writeFault = fn }

// New returns an empty store. The registry may be nil; metrics are then
// discarded into unregistered instruments.
func New(e *sim.Engine, reg *metrics.Registry) *Store {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	kinds := make(map[Kind]map[string]Resource, len(Kinds()))
	for _, k := range Kinds() {
		kinds[k] = make(map[string]Resource)
	}
	return &Store{
		e:              e,
		kinds:          kinds,
		writeBroadcast: sim.NewCond(e),
		writes:         reg.Counter("store_writes_total"),
		deletes:        reg.Counter("store_deletes_total"),
		conflicts:      reg.Counter("store_conflicts_total"),
		watchSends:     reg.Counter("store_watch_events_total"),
		objects:        reg.Gauge("store_objects"),
		watchGauge:     reg.Gauge("store_watchers"),
	}
}

// keyspace returns the kind's object map or nil for an unknown kind.
func (s *Store) keyspace(kind Kind) map[string]Resource { return s.kinds[kind] }

// Get returns a private copy of the named object.
func (s *Store) Get(p *sim.Proc, kind Kind, name string) (Resource, error) {
	ks := s.keyspace(kind)
	if ks == nil {
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadRequest, kind)
	}
	obj, ok := ks[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, kind, name)
	}
	return obj.DeepCopy(), nil
}

// List returns private copies of every object of the kind in name order,
// plus the store's current resource version (the point to watch from).
func (s *Store) List(p *sim.Proc, kind Kind) ([]Resource, uint64, error) {
	ks := s.keyspace(kind)
	if ks == nil {
		return nil, 0, fmt.Errorf("%w: unknown kind %q", ErrBadRequest, kind)
	}
	names := make([]string, 0, len(ks))
	for name := range ks {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Resource, 0, len(names))
	for _, name := range names {
		out = append(out, ks[name].DeepCopy())
	}
	return out, s.rv, nil
}

// Create inserts a new object. The stored copy gets a fresh UID,
// Generation 1 and the next resource version; the returned copy reflects
// them.
func (s *Store) Create(p *sim.Proc, r Resource) (Resource, error) {
	ks := s.keyspace(r.Kind())
	if ks == nil {
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadRequest, r.Kind())
	}
	name := r.Meta().Name
	if name == "" {
		return nil, fmt.Errorf("%w: empty name", ErrBadRequest)
	}
	if _, ok := ks[name]; ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrExists, r.Kind(), name)
	}
	obj := r.DeepCopy()
	m := obj.Meta()
	s.uid++
	s.rv++
	m.UID = s.uid
	m.ResourceVersion = s.rv
	m.Generation = 1
	m.CreatedAt = p.Now()
	ks[name] = obj
	s.objects.Add(1)
	s.writes.Inc()
	s.notify(Event{Type: Added, RV: s.rv, Object: obj}, obj.Kind())
	return obj.DeepCopy(), nil
}

// Update replaces an object's spec and status, requiring the presented
// ResourceVersion to match. Generation increments only if the encoded Spec
// changed. Name and UID are immutable.
func (s *Store) Update(p *sim.Proc, r Resource) (Resource, error) {
	return s.update(p, r, true)
}

// UpdateStatus replaces only the Status section, requiring the presented
// ResourceVersion to match. Generation never changes.
func (s *Store) UpdateStatus(p *sim.Proc, r Resource) (Resource, error) {
	return s.update(p, r, false)
}

// UpdateStatusAsync applies a status write without reporting conflicts: a
// stale ResourceVersion drops the write (counted in store_conflicts_total).
// This is the local mirror of the remote one-way status lane.
func (s *Store) UpdateStatusAsync(p *sim.Proc, r Resource) error {
	_, err := s.update(p, r, false)
	if err != nil && !IsConflict(err) {
		return err
	}
	return nil
}

func (s *Store) update(p *sim.Proc, r Resource, withSpec bool) (Resource, error) {
	ks := s.keyspace(r.Kind())
	if ks == nil {
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadRequest, r.Kind())
	}
	name := r.Meta().Name
	cur, ok := ks[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, r.Kind(), name)
	}
	cm := cur.Meta()
	rm := r.Meta()
	if rm.ResourceVersion != cm.ResourceVersion {
		s.conflicts.Inc()
		return nil, fmt.Errorf("%w: %s/%s rv %d != stored %d",
			ErrConflict, r.Kind(), name, rm.ResourceVersion, cm.ResourceVersion)
	}
	if s.writeFault != nil {
		if err := s.writeFault(p); err != nil {
			if IsConflict(err) {
				s.conflicts.Inc()
			}
			return nil, err
		}
	}
	if rm.UID != 0 && rm.UID != cm.UID {
		return nil, fmt.Errorf("%w: %s/%s uid is immutable", ErrBadRequest, r.Kind(), name)
	}
	obj := r.DeepCopy()
	m := obj.Meta()
	*m = *cm // metadata is server-owned: keep UID, CreatedAt, Generation
	if withSpec {
		if !specEqual(cur, obj) {
			m.Generation = cm.Generation + 1
		}
	} else {
		// Status-only write: the spec presented by the caller may be stale;
		// keep the stored one.
		copySpec(cur, obj)
	}
	s.rv++
	m.ResourceVersion = s.rv
	ks[name] = obj
	s.writes.Inc()
	s.notify(Event{Type: Modified, RV: s.rv, Object: obj}, obj.Kind())
	return obj.DeepCopy(), nil
}

// Delete removes an object. rv 0 skips the version check (unconditional
// delete); any other value must match the stored version.
func (s *Store) Delete(p *sim.Proc, kind Kind, name string, rv uint64) error {
	ks := s.keyspace(kind)
	if ks == nil {
		return fmt.Errorf("%w: unknown kind %q", ErrBadRequest, kind)
	}
	cur, ok := ks[name]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, kind, name)
	}
	if rv != 0 && rv != cur.Meta().ResourceVersion {
		s.conflicts.Inc()
		return fmt.Errorf("%w: %s/%s rv %d != stored %d",
			ErrConflict, kind, name, rv, cur.Meta().ResourceVersion)
	}
	if s.writeFault != nil {
		if err := s.writeFault(p); err != nil {
			if IsConflict(err) {
				s.conflicts.Inc()
			}
			return err
		}
	}
	delete(ks, name)
	s.rv++
	s.objects.Add(-1)
	s.deletes.Inc()
	s.writes.Inc()
	s.notify(Event{Type: Deleted, RV: s.rv, Object: cur}, kind)
	return nil
}

// RV returns the store's current resource version.
func (s *Store) RV() uint64 { return s.rv }

// specEqual reports whether two resources encode identical Spec sections.
func specEqual(a, b Resource) bool {
	var ea, eb wire.Encoder
	a.EncodeSpec(&ea)
	b.EncodeSpec(&eb)
	return bytes.Equal(ea.Bytes(), eb.Bytes())
}

// copySpec overwrites dst's spec with src's, via the wire encoding (the
// only spec accessor the Resource interface exposes).
func copySpec(src, dst Resource) {
	var e wire.Encoder
	src.EncodeSpec(&e)
	d := wire.NewDecoder(e.Bytes())
	dst.DecodeSpec(d)
}

// notify appends the event to the replay log and fans it out to matching
// watchers in registration order.
func (s *Store) notify(ev Event, kind Kind) {
	s.log = append(s.log, ev)
	if len(s.log) > logWindow {
		drop := len(s.log) - logWindow
		s.truncatedAtRV = s.log[drop-1].RV
		s.log = append(s.log[:0], s.log[drop:]...)
	}
	for _, w := range s.watchers {
		if w.kind != kind || w.stopped {
			continue
		}
		s.watchSends.Inc()
		w.Events.Send(Event{Type: ev.Type, RV: ev.RV, Object: ev.Object.DeepCopy()})
	}
	s.writeBroadcast.Broadcast()
}

// Watch is one registered event stream. Events is closed by Stop.
type Watch struct {
	// Events delivers the stream in RV order.
	Events  *sim.Queue[Event]
	stop    func()
	kind    Kind
	stopped bool
}

// Stop unregisters the watch and closes its queue.
func (w *Watch) Stop() {
	if !w.stopped {
		w.stopped = true
		w.stop()
	}
}

// Watch registers an event stream for one kind. Events with RV > fromRV are
// replayed first (from the bounded log, or as synthesized Added events for
// the current state if the log has been truncated past fromRV), then live
// events follow in write order. fromRV 0 with no prior writes yields a
// stream of everything that ever happens to the kind.
func (s *Store) Watch(p *sim.Proc, kind Kind, fromRV uint64) (*Watch, error) {
	if s.keyspace(kind) == nil {
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadRequest, kind)
	}
	w := &Watch{Events: sim.NewQueue[Event](s.e), kind: kind}
	w.stop = func() {
		for i, x := range s.watchers {
			if x == w {
				s.watchers = append(s.watchers[:i], s.watchers[i+1:]...)
				break
			}
		}
		s.watchGauge.Add(-1)
		w.Events.Close()
	}
	for _, ev := range s.backlog(kind, fromRV) {
		s.watchSends.Inc()
		w.Events.Send(ev)
	}
	s.watchers = append(s.watchers, w)
	s.watchGauge.Add(1)
	return w, nil
}

// backlog returns the events a new consumer at fromRV must see first:
// a log replay when the log still reaches back to fromRV, else a
// synthesized relist of current state.
func (s *Store) backlog(kind Kind, fromRV uint64) []Event {
	if fromRV >= s.truncatedAtRV {
		var out []Event
		for _, ev := range s.log {
			if ev.RV > fromRV && ev.Object.Kind() == kind {
				out = append(out, Event{Type: ev.Type, RV: ev.RV, Object: ev.Object.DeepCopy()})
			}
		}
		return out
	}
	// The log no longer reaches back to fromRV: the consumer's position is
	// unreliable, so synthesize the full current state (it may re-see
	// objects it already knows; level-triggered consumers are idempotent).
	ks := s.keyspace(kind)
	names := make([]string, 0, len(ks))
	for name := range ks {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Event
	for _, name := range names {
		obj := ks[name]
		out = append(out, Event{Type: Added, RV: obj.Meta().ResourceVersion, Object: obj.DeepCopy()})
	}
	return out
}

// PullEvents is the long-poll form of Watch used by the remote protocol:
// it returns up to max events after fromRV, blocking up to wait for the
// first one, plus the store's current RV as the next poll position.
func (s *Store) PullEvents(p *sim.Proc, kind Kind, fromRV uint64, max int, wait time.Duration) ([]Event, uint64, error) {
	if s.keyspace(kind) == nil {
		return nil, 0, fmt.Errorf("%w: unknown kind %q", ErrBadRequest, kind)
	}
	if max <= 0 {
		max = 256
	}
	deadline := p.Now() + wait
	for {
		evs := s.backlog(kind, fromRV)
		if len(evs) > 0 {
			// Trim to max only when replaying the log: a replay resumes
			// cleanly from the last delivered RV. A synthesized relist
			// (truncated log) must go out whole — a trimmed one could
			// never deliver its tail.
			if len(evs) > max && fromRV >= s.truncatedAtRV {
				evs = evs[:max]
				return evs, evs[len(evs)-1].RV, nil
			}
			return evs, s.rv, nil
		}
		remaining := deadline - p.Now()
		if wait <= 0 || remaining <= 0 {
			return nil, s.rv, nil
		}
		if s.writeBroadcast.WaitTimeout(p, remaining) {
			return nil, s.rv, nil
		}
	}
}

// IsConflict reports whether err is a resource-version conflict.
func IsConflict(err error) bool { return errors.Is(err, ErrConflict) }

// IsNotFound reports whether err is a missing-resource error.
func IsNotFound(err error) bool { return errors.Is(err, ErrNotFound) }

// IsExists reports whether err is a duplicate-create error.
func IsExists(err error) bool { return errors.Is(err, ErrExists) }

// IsHalted reports whether err came through a halted (crashed) handle.
func IsHalted(err error) bool { return errors.Is(err, ErrHalted) }
