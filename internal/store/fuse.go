package store

import (
	"fmt"

	"dgsf/internal/sim"
)

// Fuse wraps a store handle with a deterministic crash point: once armed,
// it lets the next N writes through and then blows, after which every
// operation fails with ErrHalted. Wrapping a controller's store handle in a
// Fuse is how the fault framework kills it "between a store write and its
// status update" — the W-th write lands, the W+1-th (and everything after)
// dies — without relying on timing luck inside a reconcile.
//
// A blown fuse stays blown: the crashed controller instance can never touch
// the store again, exactly like a dead process. Recovery restarts a fresh
// controller on an unfused handle.
type Fuse struct {
	inner Interface

	armed      bool
	writesLeft int
	blown      bool

	// Blown, if set, is called exactly once when the fuse blows.
	Blown func()
}

// NewFuse returns an unarmed fuse over inner; until Arm it is transparent.
func NewFuse(inner Interface) *Fuse { return &Fuse{inner: inner} }

// Arm sets the crash point: afterWrites more writes succeed, then the fuse
// blows.
func (f *Fuse) Arm(afterWrites int) {
	f.armed = true
	f.writesLeft = afterWrites
}

// IsBlown reports whether the crash point has been reached.
func (f *Fuse) IsBlown() bool { return f.blown }

// check gates every operation; write marks operations that consume the
// armed write budget.
func (f *Fuse) check(write bool) error {
	if f.blown {
		return fmt.Errorf("%w: controller crashed", ErrHalted)
	}
	if f.armed && write {
		if f.writesLeft <= 0 {
			f.blown = true
			if f.Blown != nil {
				f.Blown()
			}
			return fmt.Errorf("%w: controller crashed", ErrHalted)
		}
		f.writesLeft--
	}
	return nil
}

// Get implements Interface.
func (f *Fuse) Get(p *sim.Proc, kind Kind, name string) (Resource, error) {
	if err := f.check(false); err != nil {
		return nil, err
	}
	return f.inner.Get(p, kind, name)
}

// List implements Interface.
func (f *Fuse) List(p *sim.Proc, kind Kind) ([]Resource, uint64, error) {
	if err := f.check(false); err != nil {
		return nil, 0, err
	}
	return f.inner.List(p, kind)
}

// Create implements Interface.
func (f *Fuse) Create(p *sim.Proc, r Resource) (Resource, error) {
	if err := f.check(true); err != nil {
		return nil, err
	}
	return f.inner.Create(p, r)
}

// Update implements Interface.
func (f *Fuse) Update(p *sim.Proc, r Resource) (Resource, error) {
	if err := f.check(true); err != nil {
		return nil, err
	}
	return f.inner.Update(p, r)
}

// UpdateStatus implements Interface.
func (f *Fuse) UpdateStatus(p *sim.Proc, r Resource) (Resource, error) {
	if err := f.check(true); err != nil {
		return nil, err
	}
	return f.inner.UpdateStatus(p, r)
}

// UpdateStatusAsync implements Interface.
func (f *Fuse) UpdateStatusAsync(p *sim.Proc, r Resource) error {
	if err := f.check(true); err != nil {
		return err
	}
	return f.inner.UpdateStatusAsync(p, r)
}

// Delete implements Interface.
func (f *Fuse) Delete(p *sim.Proc, kind Kind, name string, rv uint64) error {
	if err := f.check(true); err != nil {
		return err
	}
	return f.inner.Delete(p, kind, name, rv)
}

// Watch implements Interface. Established watches keep delivering after the
// fuse blows (the queue is already wired to the store); the crashed
// controller stops consuming them when its worker exits on ErrHalted.
func (f *Fuse) Watch(p *sim.Proc, kind Kind, fromRV uint64) (*Watch, error) {
	if err := f.check(false); err != nil {
		return nil, err
	}
	return f.inner.Watch(p, kind, fromRV)
}

var _ Interface = (*Fuse)(nil)
