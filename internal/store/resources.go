package store

import (
	"fmt"
	"time"

	"dgsf/internal/remoting/wire"
	"dgsf/internal/store/storewire"
)

// Session phases. A session is born Pending, is bound to a server by the
// placement controller (Placed), runs its function (Running) and ends Done.
// Failed is terminal and means the control plane gave up — the fleet
// experiment asserts it never happens.
const (
	PhasePending = "Pending"
	PhasePlaced  = "Placed"
	PhaseRunning = "Running"
	PhaseDone    = "Done"
	PhaseFailed  = "Failed"
)

// GPUServerSpec is the desired state of one GPU server: its hardware shape
// and scheduling intent.
type GPUServerSpec struct {
	GPUs           int
	ServersPerGPU  int
	MemBytesPerGPU int64
	// StageBudget bounds the host-tier staged-model bytes the fleet reclaim
	// controller allows before deleting StagedModels (0: unlimited).
	StageBudget int64
	// Unschedulable excludes the server from placement (drain).
	Unschedulable bool
}

// GPUServerStatus is the observed state its node agent publishes.
type GPUServerStatus struct {
	Healthy     bool
	Capacity    int // live API servers
	Active      int // leased API servers
	Queued      int // functions waiting in the monitor's queue
	StagedBytes int64
	HeartbeatAt time.Duration // virtual time of the last agent publish
	// Reserved* are the placement controller's bookkeeping of sessions
	// bound to this server but not yet released. Recomputed at resync, so
	// a controller crash between writes only skews them temporarily.
	ReservedSessions int
	ReservedMem      int64
}

// GPUServer is the control-plane record of one GPU server.
type GPUServer struct {
	ObjectMeta
	Spec   GPUServerSpec
	Status GPUServerStatus
}

// Kind implements Resource.
func (g *GPUServer) Kind() Kind { return KindGPUServer }

// Meta implements Resource.
func (g *GPUServer) Meta() *ObjectMeta { return &g.ObjectMeta }

// DeepCopy implements Resource.
func (g *GPUServer) DeepCopy() Resource { c := *g; return &c }

// EncodeSpec implements Resource.
func (g *GPUServer) EncodeSpec(e *wire.Encoder) {
	e.Int(g.Spec.GPUs)
	e.Int(g.Spec.ServersPerGPU)
	e.I64(g.Spec.MemBytesPerGPU)
	e.I64(g.Spec.StageBudget)
	e.Bool(g.Spec.Unschedulable)
}

// DecodeSpec implements Resource.
func (g *GPUServer) DecodeSpec(d *wire.Decoder) {
	g.Spec.GPUs = d.Int()
	g.Spec.ServersPerGPU = d.Int()
	g.Spec.MemBytesPerGPU = d.I64()
	g.Spec.StageBudget = d.I64()
	g.Spec.Unschedulable = d.Bool()
}

// EncodeStatus implements Resource.
func (g *GPUServer) EncodeStatus(e *wire.Encoder) {
	e.Bool(g.Status.Healthy)
	e.Int(g.Status.Capacity)
	e.Int(g.Status.Active)
	e.Int(g.Status.Queued)
	e.I64(g.Status.StagedBytes)
	e.Dur(g.Status.HeartbeatAt)
	e.Int(g.Status.ReservedSessions)
	e.I64(g.Status.ReservedMem)
}

// DecodeStatus implements Resource.
func (g *GPUServer) DecodeStatus(d *wire.Decoder) {
	g.Status.Healthy = d.Bool()
	g.Status.Capacity = d.Int()
	g.Status.Active = d.Int()
	g.Status.Queued = d.Int()
	g.Status.StagedBytes = d.I64()
	g.Status.HeartbeatAt = d.Dur()
	g.Status.ReservedSessions = d.Int()
	g.Status.ReservedMem = d.I64()
}

// APIServerSpec identifies one hosted API server slot on a GPU server.
type APIServerSpec struct {
	Server string // owning GPUServer resource name
	GPU    int
	Slot   int
}

// APIServerStatus is the slot's observed state.
type APIServerStatus struct {
	Ready bool
	FnID  string // leased function, if any
}

// APIServer is the control-plane record of one hosted API server.
type APIServer struct {
	ObjectMeta
	Spec   APIServerSpec
	Status APIServerStatus
}

// Kind implements Resource.
func (a *APIServer) Kind() Kind { return KindAPIServer }

// Meta implements Resource.
func (a *APIServer) Meta() *ObjectMeta { return &a.ObjectMeta }

// DeepCopy implements Resource.
func (a *APIServer) DeepCopy() Resource { c := *a; return &c }

// EncodeSpec implements Resource.
func (a *APIServer) EncodeSpec(e *wire.Encoder) {
	e.Str(a.Spec.Server)
	e.Int(a.Spec.GPU)
	e.Int(a.Spec.Slot)
}

// DecodeSpec implements Resource.
func (a *APIServer) DecodeSpec(d *wire.Decoder) {
	a.Spec.Server = d.Str()
	a.Spec.GPU = d.Int()
	a.Spec.Slot = d.Int()
}

// EncodeStatus implements Resource.
func (a *APIServer) EncodeStatus(e *wire.Encoder) {
	e.Bool(a.Status.Ready)
	e.Str(a.Status.FnID)
}

// DecodeStatus implements Resource.
func (a *APIServer) DecodeStatus(d *wire.Decoder) {
	a.Status.Ready = d.Bool()
	a.Status.FnID = d.Str()
}

// SessionSpec is one requested function invocation.
type SessionSpec struct {
	FnID     string
	MemBytes int64
	// ModelObject is the host-cache object name whose residency makes a
	// server a locality match ("" if the function has no model).
	ModelObject string
	// InputTensor names a TensorHandle resource this session consumes ("" if
	// none). The placement controller binds the session to the server
	// holding the tensor when it is healthy and fits, so chained
	// invocations land next to their inputs and the data plane's
	// same-server zero-copy import applies.
	InputTensor string
}

// SessionStatus tracks the invocation through the control plane.
type SessionStatus struct {
	Phase    string
	Server   string // GPUServer resource name, once placed
	Attempts int
	Reason   string // last failure reason, for diagnostics
	PlacedAt time.Duration
	DoneAt   time.Duration
}

// Session is the control-plane record of one function invocation.
type Session struct {
	ObjectMeta
	Spec   SessionSpec
	Status SessionStatus
}

// Kind implements Resource.
func (s *Session) Kind() Kind { return KindSession }

// Meta implements Resource.
func (s *Session) Meta() *ObjectMeta { return &s.ObjectMeta }

// DeepCopy implements Resource.
func (s *Session) DeepCopy() Resource { c := *s; return &c }

// EncodeSpec implements Resource.
func (s *Session) EncodeSpec(e *wire.Encoder) {
	e.Str(s.Spec.FnID)
	e.I64(s.Spec.MemBytes)
	e.Str(s.Spec.ModelObject)
	e.Str(s.Spec.InputTensor)
}

// DecodeSpec implements Resource.
func (s *Session) DecodeSpec(d *wire.Decoder) {
	s.Spec.FnID = d.Str()
	s.Spec.MemBytes = d.I64()
	s.Spec.ModelObject = d.Str()
	s.Spec.InputTensor = d.Str()
}

// EncodeStatus implements Resource.
func (s *Session) EncodeStatus(e *wire.Encoder) {
	e.Str(s.Status.Phase)
	e.Str(s.Status.Server)
	e.Int(s.Status.Attempts)
	e.Str(s.Status.Reason)
	e.Dur(s.Status.PlacedAt)
	e.Dur(s.Status.DoneAt)
}

// DecodeStatus implements Resource.
func (s *Session) DecodeStatus(d *wire.Decoder) {
	s.Status.Phase = d.Str()
	s.Status.Server = d.Str()
	s.Status.Attempts = d.Int()
	s.Status.Reason = d.Str()
	s.Status.PlacedAt = d.Dur()
	s.Status.DoneAt = d.Dur()
}

// Terminal reports whether the session reached a final phase.
func (s *Session) Terminal() bool {
	return s.Status.Phase == PhaseDone || s.Status.Phase == PhaseFailed
}

// StagedModelName returns the StagedModel resource name for an object
// staged on a server (names are per-kind unique, so the server is part of
// the key).
func StagedModelName(server, object string) string { return server + "/" + object }

// StagedModelSpec records one host-tier cache resident on one server.
type StagedModelSpec struct {
	Server string // GPUServer resource name
	Object string // host-tier key name (download or staged working set)
	Bytes  int64
}

// StagedModelStatus carries the recency the reclaim controller orders by.
type StagedModelStatus struct {
	Seq uint64 // LRU sequence: higher is fresher
}

// StagedModel is the control-plane record of one staged model/object.
type StagedModel struct {
	ObjectMeta
	Spec   StagedModelSpec
	Status StagedModelStatus
}

// Kind implements Resource.
func (m *StagedModel) Kind() Kind { return KindStagedModel }

// Meta implements Resource.
func (m *StagedModel) Meta() *ObjectMeta { return &m.ObjectMeta }

// DeepCopy implements Resource.
func (m *StagedModel) DeepCopy() Resource { c := *m; return &c }

// EncodeSpec implements Resource.
func (m *StagedModel) EncodeSpec(e *wire.Encoder) {
	e.Str(m.Spec.Server)
	e.Str(m.Spec.Object)
	e.I64(m.Spec.Bytes)
}

// DecodeSpec implements Resource.
func (m *StagedModel) DecodeSpec(d *wire.Decoder) {
	m.Spec.Server = d.Str()
	m.Spec.Object = d.Str()
	m.Spec.Bytes = d.I64()
}

// EncodeStatus implements Resource.
func (m *StagedModel) EncodeStatus(e *wire.Encoder) { e.U64(m.Status.Seq) }

// DecodeStatus implements Resource.
func (m *StagedModel) DecodeStatus(d *wire.Decoder) { m.Status.Seq = d.U64() }

// TensorHandle phases.
const (
	TensorLive     = "Live"     // exported, awaiting consumers
	TensorConsumed = "Consumed" // a consumer took the data
	TensorLost     = "Lost"     // the holding GPU server failed
)

// TensorHandleSpec is the control-plane record of one data-plane export: a
// device-resident intermediate tensor a producer published for its consumer.
type TensorHandleSpec struct {
	Producer string // producing function ID
	Server   string // GPUServer resource name holding the tensor
	Export   uint64 // fabric export ID (dataplane)
	Bytes    int64
	Tag      string // producer-chosen label (e.g. "detect/boxes")
}

// TensorHandleStatus tracks the handle's lifecycle.
type TensorHandleStatus struct {
	Phase      string
	ConsumedBy string // session name that took the data, once consumed
}

// TensorHandle is the control-plane record of one exported tensor. Its whole
// purpose is placement: a Pending session naming it as InputTensor is bound
// to Spec.Server so the handoff is a same-server zero-copy import.
type TensorHandle struct {
	ObjectMeta
	Spec   TensorHandleSpec
	Status TensorHandleStatus
}

// Kind implements Resource.
func (t *TensorHandle) Kind() Kind { return KindTensorHandle }

// Meta implements Resource.
func (t *TensorHandle) Meta() *ObjectMeta { return &t.ObjectMeta }

// DeepCopy implements Resource.
func (t *TensorHandle) DeepCopy() Resource { c := *t; return &c }

// EncodeSpec implements Resource.
func (t *TensorHandle) EncodeSpec(e *wire.Encoder) {
	e.Str(t.Spec.Producer)
	e.Str(t.Spec.Server)
	e.U64(t.Spec.Export)
	e.I64(t.Spec.Bytes)
	e.Str(t.Spec.Tag)
}

// DecodeSpec implements Resource.
func (t *TensorHandle) DecodeSpec(d *wire.Decoder) {
	t.Spec.Producer = d.Str()
	t.Spec.Server = d.Str()
	t.Spec.Export = d.U64()
	t.Spec.Bytes = d.I64()
	t.Spec.Tag = d.Str()
}

// EncodeStatus implements Resource.
func (t *TensorHandle) EncodeStatus(e *wire.Encoder) {
	e.Str(t.Status.Phase)
	e.Str(t.Status.ConsumedBy)
}

// DecodeStatus implements Resource.
func (t *TensorHandle) DecodeStatus(d *wire.Decoder) {
	t.Status.Phase = d.Str()
	t.Status.ConsumedBy = d.Str()
}

// NewOfKind returns a zero resource of the named kind, for decoding wire
// objects back into typed form.
func NewOfKind(kind Kind) (Resource, error) {
	switch kind {
	case KindGPUServer:
		return &GPUServer{}, nil
	case KindAPIServer:
		return &APIServer{}, nil
	case KindSession:
		return &Session{}, nil
	case KindStagedModel:
		return &StagedModel{}, nil
	case KindTensorHandle:
		return &TensorHandle{}, nil
	}
	return nil, fmt.Errorf("%w: unknown kind %q", ErrBadRequest, kind)
}

// ToWire flattens a resource into its wire Object form.
func ToWire(r Resource) storewire.Object {
	m := r.Meta()
	var spec, status wire.Encoder
	r.EncodeSpec(&spec)
	r.EncodeStatus(&status)
	return storewire.Object{
		Kind:            string(r.Kind()),
		Name:            m.Name,
		UID:             m.UID,
		ResourceVersion: m.ResourceVersion,
		Generation:      m.Generation,
		CreatedAt:       m.CreatedAt,
		Spec:            spec.Bytes(),
		Status:          status.Bytes(),
	}
}

// FromWire rebuilds a typed resource from its wire Object form.
func FromWire(o storewire.Object) (Resource, error) {
	r, err := NewOfKind(Kind(o.Kind))
	if err != nil {
		return nil, err
	}
	m := r.Meta()
	m.Name = o.Name
	m.UID = o.UID
	m.ResourceVersion = o.ResourceVersion
	m.Generation = o.Generation
	m.CreatedAt = o.CreatedAt
	d := wire.NewDecoder(o.Spec)
	r.DecodeSpec(d)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: bad spec encoding: %w", ErrBadRequest, err)
	}
	d.Reset(o.Status)
	r.DecodeStatus(d)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: bad status encoding: %w", ErrBadRequest, err)
	}
	return r, nil
}
