// Package storewire defines the wire-level representation of cluster
// control-plane resources: the flattened Object and Event records that ride
// the remoting protocol between a resource store and its clients, plus the
// typed error sentinels both sides share.
//
// It deliberately knows nothing about typed resources (internal/store owns
// those) so that the apigen-generated stubs in internal/store/storegen can
// depend on it without forming an import cycle with the store itself.
package storewire

import (
	"errors"
	"time"

	"dgsf/internal/remoting/wire"
)

// Typed store errors. They live here, not in internal/store, so that the
// generated wire stubs can translate them to and from status codes; the
// store package re-exports them under its own name.
var (
	// ErrConflict reports an Update/UpdateStatus/Delete whose
	// ResourceVersion no longer matches the stored object: someone else
	// wrote first. Callers re-read and retry.
	ErrConflict = errors.New("store: resource version conflict")
	// ErrNotFound reports an operation on a name that is not in the store.
	ErrNotFound = errors.New("store: resource not found")
	// ErrExists reports a Create for a name that is already present.
	ErrExists = errors.New("store: resource already exists")
	// ErrBadRequest reports a malformed operation: empty name, unknown
	// kind, or an attempt to change immutable metadata (name, UID).
	ErrBadRequest = errors.New("store: bad request")
	// ErrHalted reports an operation through a halted store handle — the
	// fault framework's way of crashing a controller mid-reconcile.
	ErrHalted = errors.New("store: handle halted")
)

// Status codes carried on the wire in place of error values.
const (
	codeOK = iota
	codeConflict
	codeNotFound
	codeExists
	codeBadRequest
	codeHalted
	codeInternal
)

// Code translates a store error into its wire status code.
func Code(err error) int32 {
	switch {
	case err == nil:
		return codeOK
	case errors.Is(err, ErrConflict):
		return codeConflict
	case errors.Is(err, ErrNotFound):
		return codeNotFound
	case errors.Is(err, ErrExists):
		return codeExists
	case errors.Is(err, ErrBadRequest):
		return codeBadRequest
	case errors.Is(err, ErrHalted):
		return codeHalted
	default:
		return codeInternal
	}
}

// ErrInternal reports a store-side failure that has no typed sentinel.
var ErrInternal = errors.New("store: internal error")

// FromCode translates a wire status code back into the matching sentinel.
func FromCode(code int32) error {
	switch code {
	case codeOK:
		return nil
	case codeConflict:
		return ErrConflict
	case codeNotFound:
		return ErrNotFound
	case codeExists:
		return ErrExists
	case codeBadRequest:
		return ErrBadRequest
	case codeHalted:
		return ErrHalted
	default:
		return ErrInternal
	}
}

// Object is the flattened wire form of one stored resource: metadata plus
// the opaque encoded Spec and Status sections. The store's typed resources
// encode themselves into this form at the remoting boundary.
type Object struct {
	Kind            string
	Name            string
	UID             uint64
	ResourceVersion uint64
	Generation      uint64
	CreatedAt       time.Duration // virtual creation time
	Spec            []byte
	Status          []byte
}

// Encode serializes the object.
func (o *Object) Encode(e *wire.Encoder) {
	e.Str(o.Kind)
	e.Str(o.Name)
	e.U64(o.UID)
	e.U64(o.ResourceVersion)
	e.U64(o.Generation)
	e.Dur(o.CreatedAt)
	e.BytesField(o.Spec)
	e.BytesField(o.Status)
}

// DecodeObject deserializes one object.
func DecodeObject(d *wire.Decoder) Object {
	return Object{
		Kind:            d.Str(),
		Name:            d.Str(),
		UID:             d.U64(),
		ResourceVersion: d.U64(),
		Generation:      d.U64(),
		CreatedAt:       d.Dur(),
		Spec:            d.BytesField(),
		Status:          d.BytesField(),
	}
}

// EncodeObjects serializes a length-prefixed object slice.
func EncodeObjects(e *wire.Encoder, objs []Object) {
	e.U32(uint32(len(objs)))
	for i := range objs {
		objs[i].Encode(e)
	}
}

// DecodeObjects deserializes a length-prefixed object slice.
func DecodeObjects(d *wire.Decoder) []Object {
	n := int(d.U32())
	if d.Err() != nil {
		return nil
	}
	var out []Object
	for i := 0; i < n; i++ {
		o := DecodeObject(d)
		if d.Err() != nil {
			return nil
		}
		out = append(out, o)
	}
	return out
}

// Event types delivered on watch streams.
const (
	EventAdded    = byte(1)
	EventModified = byte(2)
	EventDeleted  = byte(3)
)

// Event is one watch notification: the object state after the change (for
// Deleted, its last state), stamped with the write's resource version.
type Event struct {
	Type byte
	RV   uint64
	Obj  Object
}

// Encode serializes the event.
func (ev *Event) Encode(e *wire.Encoder) {
	e.U8(ev.Type)
	e.U64(ev.RV)
	ev.Obj.Encode(e)
}

// DecodeEvent deserializes one event.
func DecodeEvent(d *wire.Decoder) Event {
	return Event{Type: d.U8(), RV: d.U64(), Obj: DecodeObject(d)}
}

// EncodeEvents serializes a length-prefixed event slice.
func EncodeEvents(e *wire.Encoder, evs []Event) {
	e.U32(uint32(len(evs)))
	for i := range evs {
		evs[i].Encode(e)
	}
}

// DecodeEvents deserializes a length-prefixed event slice.
func DecodeEvents(d *wire.Decoder) []Event {
	n := int(d.U32())
	if d.Err() != nil {
		return nil
	}
	var out []Event
	for i := 0; i < n; i++ {
		ev := DecodeEvent(d)
		if d.Err() != nil {
			return nil
		}
		out = append(out, ev)
	}
	return out
}
