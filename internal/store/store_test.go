package store

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dgsf/internal/metrics"
	"dgsf/internal/sim"
)

// run executes fn as one simulated process.
func run(t *testing.T, fn func(p *sim.Proc, s *Store)) {
	t.Helper()
	e := sim.NewEngine(1)
	s := New(e, nil)
	e.Run("test", func(p *sim.Proc) { fn(p, s) })
}

func TestCreateGetSemantics(t *testing.T) {
	run(t, func(p *sim.Proc, s *Store) {
		in := &GPUServer{ObjectMeta: ObjectMeta{Name: "gs-0"}, Spec: GPUServerSpec{GPUs: 2}}
		stored, err := s.Create(p, in)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		m := stored.Meta()
		if m.UID == 0 || m.ResourceVersion == 0 || m.Generation != 1 {
			t.Fatalf("bad stored meta: %+v", m)
		}
		// The returned copy is private: mutating it must not affect the store.
		stored.(*GPUServer).Spec.GPUs = 99
		got, err := s.Get(p, KindGPUServer, "gs-0")
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if got.(*GPUServer).Spec.GPUs != 2 {
			t.Fatalf("store state leaked through returned copy")
		}
		if _, err := s.Create(p, in); !IsExists(err) {
			t.Fatalf("duplicate create: got %v, want ErrExists", err)
		}
		if _, err := s.Get(p, KindGPUServer, "missing"); !IsNotFound(err) {
			t.Fatalf("missing get: got %v, want ErrNotFound", err)
		}
		if _, err := s.Create(p, &GPUServer{}); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("empty name: got %v, want ErrBadRequest", err)
		}
	})
}

func TestUpdateOptimisticConcurrency(t *testing.T) {
	run(t, func(p *sim.Proc, s *Store) {
		stored, err := s.Create(p, &Session{ObjectMeta: ObjectMeta{Name: "s1"}, Spec: SessionSpec{FnID: "f"}})
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		a := stored.DeepCopy().(*Session)
		b := stored.DeepCopy().(*Session)
		a.Status.Phase = PhasePlaced
		if _, err := s.UpdateStatus(p, a); err != nil {
			t.Fatalf("first update: %v", err)
		}
		b.Status.Phase = PhaseFailed
		if _, err := s.UpdateStatus(p, b); !IsConflict(err) {
			t.Fatalf("stale update: got %v, want ErrConflict", err)
		}
		got, _ := s.Get(p, KindSession, "s1")
		if got.(*Session).Status.Phase != PhasePlaced {
			t.Fatalf("conflict overwrote state: %+v", got.(*Session).Status)
		}
	})
}

func TestGenerationBumpsOnSpecChangeOnly(t *testing.T) {
	run(t, func(p *sim.Proc, s *Store) {
		stored, _ := s.Create(p, &GPUServer{ObjectMeta: ObjectMeta{Name: "gs"}, Spec: GPUServerSpec{GPUs: 1}})
		cur := stored.DeepCopy().(*GPUServer)
		cur.Status.Active = 3
		updated, err := s.UpdateStatus(p, cur)
		if err != nil {
			t.Fatalf("status update: %v", err)
		}
		if g := updated.Meta().Generation; g != 1 {
			t.Fatalf("status update bumped generation to %d", g)
		}
		if updated.Meta().ResourceVersion <= stored.Meta().ResourceVersion {
			t.Fatal("status update did not bump RV")
		}
		cur = updated.DeepCopy().(*GPUServer)
		cur.Spec.Unschedulable = true
		updated, err = s.Update(p, cur)
		if err != nil {
			t.Fatalf("spec update: %v", err)
		}
		if g := updated.Meta().Generation; g != 2 {
			t.Fatalf("spec change: generation %d, want 2", g)
		}
		// Spec-preserving Update does not bump Generation.
		cur = updated.DeepCopy().(*GPUServer)
		updated, err = s.Update(p, cur)
		if err != nil {
			t.Fatalf("no-op update: %v", err)
		}
		if g := updated.Meta().Generation; g != 2 {
			t.Fatalf("no-op update: generation %d, want 2", g)
		}
	})
}

func TestUpdateStatusKeepsStoredSpec(t *testing.T) {
	run(t, func(p *sim.Proc, s *Store) {
		stored, _ := s.Create(p, &GPUServer{ObjectMeta: ObjectMeta{Name: "gs"}, Spec: GPUServerSpec{GPUs: 4}})
		cur := stored.DeepCopy().(*GPUServer)
		cur.Spec.GPUs = 1 // stale/garbled spec on a status write must be ignored
		cur.Status.Active = 1
		if _, err := s.UpdateStatus(p, cur); err != nil {
			t.Fatalf("update status: %v", err)
		}
		got, _ := s.Get(p, KindGPUServer, "gs")
		if got.(*GPUServer).Spec.GPUs != 4 {
			t.Fatalf("UpdateStatus overwrote spec: %+v", got.(*GPUServer).Spec)
		}
		if got.(*GPUServer).Status.Active != 1 {
			t.Fatalf("UpdateStatus lost status: %+v", got.(*GPUServer).Status)
		}
	})
}

func TestDeleteVersionCheck(t *testing.T) {
	run(t, func(p *sim.Proc, s *Store) {
		stored, _ := s.Create(p, &StagedModel{ObjectMeta: ObjectMeta{Name: "gs/m"}})
		if err := s.Delete(p, KindStagedModel, "gs/m", stored.Meta().ResourceVersion+7); !IsConflict(err) {
			t.Fatalf("stale delete: got %v, want ErrConflict", err)
		}
		if err := s.Delete(p, KindStagedModel, "gs/m", stored.Meta().ResourceVersion); err != nil {
			t.Fatalf("delete: %v", err)
		}
		if err := s.Delete(p, KindStagedModel, "gs/m", 0); !IsNotFound(err) {
			t.Fatalf("double delete: got %v, want ErrNotFound", err)
		}
	})
}

func TestListSortedAndVersioned(t *testing.T) {
	run(t, func(p *sim.Proc, s *Store) {
		for _, name := range []string{"b", "c", "a"} {
			if _, err := s.Create(p, &Session{ObjectMeta: ObjectMeta{Name: name}}); err != nil {
				t.Fatalf("create %s: %v", name, err)
			}
		}
		objs, rv, err := s.List(p, KindSession)
		if err != nil {
			t.Fatalf("list: %v", err)
		}
		if len(objs) != 3 || objs[0].Meta().Name != "a" || objs[2].Meta().Name != "c" {
			t.Fatalf("list not sorted: %v", objs)
		}
		if rv != s.RV() {
			t.Fatalf("list rv %d != store rv %d", rv, s.RV())
		}
	})
}

func TestWatchDeliversOrderedEvents(t *testing.T) {
	run(t, func(p *sim.Proc, s *Store) {
		w, err := s.Watch(p, KindSession, 0)
		if err != nil {
			t.Fatalf("watch: %v", err)
		}
		stored, _ := s.Create(p, &Session{ObjectMeta: ObjectMeta{Name: "s"}})
		cur := stored.DeepCopy().(*Session)
		cur.Status.Phase = PhaseDone
		updated, _ := s.UpdateStatus(p, cur)
		_ = s.Delete(p, KindSession, "s", updated.Meta().ResourceVersion)
		// Other kinds must not leak into the stream.
		_, _ = s.Create(p, &GPUServer{ObjectMeta: ObjectMeta{Name: "gs"}})
		want := []EventType{Added, Modified, Deleted}
		var lastRV uint64
		for _, wt := range want {
			ev, ok := w.Events.Recv(p)
			if !ok {
				t.Fatal("watch closed early")
			}
			if ev.Type != wt {
				t.Fatalf("event type %v, want %v", ev.Type, wt)
			}
			if ev.RV <= lastRV {
				t.Fatalf("events out of RV order: %d after %d", ev.RV, lastRV)
			}
			lastRV = ev.RV
			if ev.Object.Kind() != KindSession {
				t.Fatalf("foreign kind on stream: %v", ev.Object.Kind())
			}
		}
		w.Stop()
		if _, ok := w.Events.Recv(p); ok {
			t.Fatal("stream still open after Stop")
		}
	})
}

func TestWatchFromRVReplaysBacklog(t *testing.T) {
	run(t, func(p *sim.Proc, s *Store) {
		first, _ := s.Create(p, &Session{ObjectMeta: ObjectMeta{Name: "s1"}})
		_, _ = s.Create(p, &Session{ObjectMeta: ObjectMeta{Name: "s2"}})
		w, err := s.Watch(p, KindSession, first.Meta().ResourceVersion)
		if err != nil {
			t.Fatalf("watch: %v", err)
		}
		ev, ok := w.Events.Recv(p)
		if !ok || ev.Object.Meta().Name != "s2" {
			t.Fatalf("backlog replay: got %+v", ev)
		}
		w.Stop()
	})
}

func TestWatchFallsBackToRelistWhenLogTruncated(t *testing.T) {
	run(t, func(p *sim.Proc, s *Store) {
		_, _ = s.Create(p, &Session{ObjectMeta: ObjectMeta{Name: "keep"}})
		// Overflow the replay log so RV 1 is no longer reachable.
		for i := 0; i < logWindow+10; i++ {
			name := fmt.Sprintf("churn-%05d", i)
			obj, _ := s.Create(p, &StagedModel{ObjectMeta: ObjectMeta{Name: name}})
			_ = s.Delete(p, KindStagedModel, name, obj.Meta().ResourceVersion)
		}
		w, err := s.Watch(p, KindSession, 1)
		if err != nil {
			t.Fatalf("watch: %v", err)
		}
		ev, ok := w.Events.Recv(p)
		if !ok || ev.Type != Added || ev.Object.Meta().Name != "keep" {
			t.Fatalf("relist fallback: got %+v ok=%v", ev, ok)
		}
		w.Stop()
	})
}

func TestUpdateStatusAsyncDropsConflicts(t *testing.T) {
	run(t, func(p *sim.Proc, s *Store) {
		stored, _ := s.Create(p, &GPUServer{ObjectMeta: ObjectMeta{Name: "gs"}})
		stale := stored.DeepCopy().(*GPUServer)
		cur := stored.DeepCopy().(*GPUServer)
		cur.Status.Active = 1
		if _, err := s.UpdateStatus(p, cur); err != nil {
			t.Fatalf("update: %v", err)
		}
		stale.Status.Active = 42
		if err := s.UpdateStatusAsync(p, stale); err != nil {
			t.Fatalf("async conflict should be dropped, got %v", err)
		}
		got, _ := s.Get(p, KindGPUServer, "gs")
		if got.(*GPUServer).Status.Active != 1 {
			t.Fatalf("stale async write landed: %+v", got.(*GPUServer).Status)
		}
		// Non-conflict errors still surface.
		if err := s.UpdateStatusAsync(p, &GPUServer{ObjectMeta: ObjectMeta{Name: "nope"}}); !IsNotFound(err) {
			t.Fatalf("async on missing: got %v, want ErrNotFound", err)
		}
	})
}

func TestPullEventsLongPoll(t *testing.T) {
	e := sim.NewEngine(3)
	s := New(e, nil)
	e.Run("poller", func(p *sim.Proc) {
		p.Spawn("writer", func(p *sim.Proc) {
			p.Sleep(50 * time.Millisecond)
			_, _ = s.Create(p, &Session{ObjectMeta: ObjectMeta{Name: "late"}})
		})
		evs, nextRV, err := s.PullEvents(p, KindSession, 0, 16, time.Second)
		if err != nil {
			t.Errorf("pull: %v", err)
			return
		}
		if len(evs) != 1 || evs[0].Object.Meta().Name != "late" {
			t.Errorf("long poll missed the write: %+v", evs)
		}
		if nextRV != s.RV() {
			t.Errorf("nextRV %d != %d", nextRV, s.RV())
		}
		// A second poll from nextRV times out empty.
		evs, _, err = s.PullEvents(p, KindSession, nextRV, 16, 10*time.Millisecond)
		if err != nil || len(evs) != 0 {
			t.Errorf("empty poll: evs=%v err=%v", evs, err)
		}
	})
}

func TestStoreMetrics(t *testing.T) {
	e := sim.NewEngine(1)
	reg := metrics.NewRegistry()
	s := New(e, reg)
	e.Run("test", func(p *sim.Proc) {
		stored, _ := s.Create(p, &Session{ObjectMeta: ObjectMeta{Name: "s"}})
		stale := stored.DeepCopy().(*Session)
		cur := stored.DeepCopy().(*Session)
		cur.Status.Phase = PhaseDone
		_, _ = s.UpdateStatus(p, cur)
		_, _ = s.UpdateStatus(p, stale) // conflict
		w, _ := s.Watch(p, KindSession, 0)
		_, _ = s.Create(p, &Session{ObjectMeta: ObjectMeta{Name: "s2"}})
		w.Stop()
	})
	if got := reg.Get("store_writes_total"); got != 3 {
		t.Errorf("writes = %d, want 3", got)
	}
	if got := reg.Get("store_conflicts_total"); got != 1 {
		t.Errorf("conflicts = %d, want 1", got)
	}
	if reg.Get("store_watch_events_total") == 0 {
		t.Error("watch events not counted")
	}
	if got := reg.Get("store_objects"); got != 2 {
		t.Errorf("objects gauge = %d, want 2", got)
	}
	if got := reg.Get("store_watchers"); got != 0 {
		t.Errorf("watchers gauge = %d, want 0 after Stop", got)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	trace := func() string {
		e := sim.NewEngine(7)
		s := New(e, nil)
		var out string
		e.Run("test", func(p *sim.Proc) {
			w, _ := s.Watch(p, KindSession, 0)
			for i := 0; i < 5; i++ {
				name := fmt.Sprintf("s%d", i)
				obj, _ := s.Create(p, &Session{ObjectMeta: ObjectMeta{Name: name}})
				c := obj.DeepCopy().(*Session)
				c.Status.Phase = PhaseDone
				_, _ = s.UpdateStatus(p, c)
			}
			for i := 0; i < 10; i++ {
				ev, _ := w.Events.Recv(p)
				out += fmt.Sprintf("%s:%s@%d;", ev.Type, ev.Object.Meta().Name, ev.RV)
			}
			w.Stop()
		})
		return out
	}
	if a, b := trace(), trace(); a != b {
		t.Fatalf("nondeterministic event stream:\n%s\n%s", a, b)
	}
}

func TestFuseBlowsBetweenWrites(t *testing.T) {
	run(t, func(p *sim.Proc, s *Store) {
		f := NewFuse(s)
		blown := 0
		f.Blown = func() { blown++ }
		obj, err := f.Create(p, &Session{ObjectMeta: ObjectMeta{Name: "s"}})
		if err != nil {
			t.Fatalf("pre-arm create: %v", err)
		}
		f.Arm(1)
		c := obj.DeepCopy().(*Session)
		c.Status.Phase = PhasePlaced
		placed, err := f.UpdateStatus(p, c) // write 1: allowed
		if err != nil {
			t.Fatalf("armed write 1: %v", err)
		}
		c2 := placed.DeepCopy().(*Session)
		c2.Status.Phase = PhaseRunning
		if _, err := f.UpdateStatus(p, c2); !IsHalted(err) { // write 2: crash
			t.Fatalf("armed write 2: got %v, want ErrHalted", err)
		}
		if !f.IsBlown() || blown != 1 {
			t.Fatalf("fuse state: blown=%v cb=%d", f.IsBlown(), blown)
		}
		// Everything, including reads, now fails.
		if _, err := f.Get(p, KindSession, "s"); !IsHalted(err) {
			t.Fatalf("read after blow: got %v", err)
		}
		// The store itself is untouched: write 1 landed, write 2 did not.
		got, err := s.Get(p, KindSession, "s")
		if err != nil || got.(*Session).Status.Phase != PhasePlaced {
			t.Fatalf("store state after crash: %+v err=%v", got, err)
		}
	})
}
