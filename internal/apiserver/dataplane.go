package apiserver

// GPU-side data plane (internal/dataplane): tensor export/import between the
// API servers of one GPU server, bandwidth-modeled peer copies across GPU
// servers, and one-to-many model broadcast. These are the server halves of
// the MemExport/MemImport/PeerCopy/ModelBroadcast remoted calls; the plane
// itself only keeps books — every byte moved and every page-table edit goes
// through the cuda/gpu layers so device accounting and content fingerprints
// stay exact.

import (
	"strings"

	"dgsf/internal/cuda"
	"dgsf/internal/dataplane"
	"dgsf/internal/gpu"
	"dgsf/internal/modelcache"
	"dgsf/internal/sim"
)

// MemExport detaches a session allocation and publishes it on the data plane
// under a fabric-wide export ID. Ownership leaves the session — the pointer
// becomes invalid for the producer, its bytes stop counting against the
// session limit — but the tensor stays resident on the device awaiting a
// consumer, which is the whole point: the handoff never touches the host.
func (s *Server) MemExport(p *sim.Proc, ptr cuda.DevPtr, tag string) (uint64, int64, error) {
	sess := s.sess
	if sess == nil {
		return 0, 0, cuda.ErrNotInitialized
	}
	pl := s.cfg.Plane
	if pl == nil {
		return 0, 0, cuda.ErrInvalidValue
	}
	size, ok := sess.allocs[ptr]
	if !ok {
		return 0, 0, cuda.ErrInvalidValue
	}
	if _, shared := sess.imported[ptr]; shared {
		// Re-exporting a zero-copy import would fork ownership of the
		// backing memory; consumers that need to forward a tensor copy it
		// into an owned allocation first.
		return 0, 0, cuda.ErrInvalidValue
	}
	ctx, err := s.ctx(p)
	if err != nil {
		return 0, 0, err
	}
	if ptr == sess.bcastPtr {
		pl.DropBroadcastSource(sess.bcastKey)
		sess.bcastPtr, sess.bcastKey = 0, ""
	}
	a, err := ctx.DetachPhys(p, ptr)
	if err != nil {
		return 0, 0, err
	}
	delete(sess.allocs, ptr)
	sess.used -= size
	if sess.persistPtr == ptr {
		sess.persistPtr = 0
	}
	x := pl.Export(sess.fnID, strings.Clone(tag), a)
	return x.ID(), size, nil
}

// MemImport attaches an export published on this GPU server to the session.
// Producer and consumer on the same device share the physical pages through
// a VMM remap — zero bytes move. Across sibling devices of one machine the
// tensor is cloned at NVLink bandwidth. Exports living on other GPU servers
// are refused with ErrInvalidDevice; PeerCopy is the cross-server path.
func (s *Server) MemImport(p *sim.Proc, export uint64) (cuda.DevPtr, int64, error) {
	sess := s.sess
	if sess == nil {
		return 0, 0, cuda.ErrNotInitialized
	}
	pl := s.cfg.Plane
	if pl == nil {
		return 0, 0, cuda.ErrInvalidValue
	}
	x, ok := pl.Fabric().Lookup(export)
	if !ok {
		// Missing export: consumed by someone else, abandoned, or stranded
		// and scavenged after its machine died. The typed sentinel crosses
		// the wire so chain drivers can fall back on errors.Is alone.
		return 0, 0, dataplane.ErrHandoffLost
	}
	if !x.LocalTo(pl) {
		return 0, 0, cuda.ErrInvalidDevice
	}
	if x.SourceFailed() {
		return 0, 0, dataplane.ErrHandoffLost
	}
	size := x.Size()
	if sess.used+size > sess.memLimit {
		return 0, 0, cuda.ErrMemoryAllocation
	}
	ctx, err := s.ctx(p)
	if err != nil {
		return 0, 0, err
	}
	if x.Phys().Device() == ctx.Device() {
		ptr, err := ctx.AdoptMapped(p, x.Phys())
		if err != nil {
			return 0, 0, err
		}
		sess.allocs[ptr] = size
		sess.used += size
		sess.imported[ptr] = export
		pl.Fabric().BeginImport(x)
		return ptr, size, nil
	}
	// Sibling device on the same machine: the consumer gets an owned clone
	// over NVLink/P2P, and the export is consumed.
	ptr, err := s.Malloc(p, size)
	if err != nil {
		return 0, 0, err
	}
	dst, err := ctx.Backing(ptr)
	if err != nil {
		_ = s.Free(p, ptr)
		return 0, 0, err
	}
	gpu.CopyD2D(p, dst, x.Phys())
	pl.Fabric().NoteCrossDevImport()
	pl.Fabric().Consume(x)
	return ptr, size, nil
}

// PeerCopy pulls an export from another GPU server over the data-plane
// fabric into a fresh session allocation, consuming the export. The transfer
// is paced by the fabric bandwidth model — still far cheaper than a
// D2H + objstore + H2D bounce, which is the comparison `-exp pipeline`
// measures. A local export degrades to MemImport semantics.
func (s *Server) PeerCopy(p *sim.Proc, export uint64) (cuda.DevPtr, int64, error) {
	sess := s.sess
	if sess == nil {
		return 0, 0, cuda.ErrNotInitialized
	}
	pl := s.cfg.Plane
	if pl == nil {
		return 0, 0, cuda.ErrInvalidValue
	}
	x, ok := pl.Fabric().Lookup(export)
	if !ok {
		return 0, 0, dataplane.ErrHandoffLost
	}
	if x.LocalTo(pl) {
		return s.MemImport(p, export)
	}
	if x.SourceFailed() {
		return 0, 0, dataplane.ErrHandoffLost
	}
	size := x.Size()
	ptr, err := s.Malloc(p, size)
	if err != nil {
		return 0, 0, err
	}
	ctx, err := s.ctx(p)
	if err != nil {
		return 0, 0, err
	}
	dst, err := ctx.Backing(ptr)
	if err != nil {
		_ = s.Free(p, ptr)
		return 0, 0, err
	}
	if err := pl.Fabric().PeerTransfer(p, dst, x.Phys()); err != nil {
		// Mid-handoff fabric fault: the destination holds garbage and the
		// export is untouched — release our half and let the consumer retry
		// the pull or fall back to the bounce path.
		_ = s.Free(p, ptr)
		return 0, 0, err
	}
	pl.Fabric().NotePeerCopy(size)
	pl.Fabric().Consume(x)
	return ptr, size, nil
}

// ModelBroadcast is the fan-out path for shared-base-model fleets: the first
// session per GPU server to ask for its function's model pays one host-staged
// read (exactly like a host-tier ModelAttach) and registers the copy as the
// machine's broadcast source; every later session clones it device-to-device
// while the source lives. N sessions cost one traversal of the host link
// instead of N.
func (s *Server) ModelBroadcast(p *sim.Proc) (cuda.DevPtr, int64, int, error) {
	sess := s.sess
	if sess == nil {
		return 0, 0, 0, cuda.ErrNotInitialized
	}
	pl, c := s.cfg.Plane, s.cfg.Cache
	if pl == nil || c == nil {
		return 0, 0, dataplane.SrcMiss, nil
	}
	ctx, err := s.ctx(p)
	if err != nil {
		return 0, 0, 0, err
	}
	key := modelcache.StateKey(sess.fnID)
	for {
		if src, ok := pl.BroadcastSource(key.Name); ok {
			size := src.Size()
			ptr, err := s.Malloc(p, size)
			if err != nil {
				return 0, 0, 0, err
			}
			dst, err := ctx.Backing(ptr)
			if err != nil {
				_ = s.Free(p, ptr)
				return 0, 0, 0, err
			}
			gpu.CopyD2D(p, dst, src)
			pl.NoteBroadcastClone()
			c.NoteBroadcast(false)
			return ptr, size, dataplane.SrcClone, nil
		}
		// Another session is staging the model right now: wait for its seed
		// instead of paying a second host read, then re-check for the source
		// (an aborted seed hands the seeder role to a waiter).
		if !pl.WaitSeed(p, key.Name) {
			break
		}
	}
	bytes, ok := c.Host().Get(key)
	if !ok {
		return 0, 0, dataplane.SrcMiss, nil
	}
	pl.BeginSeed(p, key.Name)
	defer pl.EndSeed(key.Name)
	ptr, err := s.Malloc(p, bytes)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := ctx.MemcpyH2D(p, ptr, gpu.HostBuffer{FP: key.FP, Size: bytes}, bytes); err != nil {
		_ = s.Free(p, ptr)
		return 0, 0, 0, err
	}
	a, err := ctx.Backing(ptr)
	if err != nil {
		_ = s.Free(p, ptr)
		return 0, 0, 0, err
	}
	pl.SetBroadcastSource(key.Name, a)
	sess.bcastPtr, sess.bcastKey = ptr, key.Name
	c.NoteBroadcast(true)
	return ptr, bytes, dataplane.SrcHostSeed, nil
}

// releaseSessionPtr releases one session pointer with full data-plane
// bookkeeping: a broadcast source is deregistered first (later broadcasts
// re-seed from the host tier); a zero-copy import is detached — the mapping
// goes, the fabric decides whether the shared backing memory dies with it;
// everything else is a plain VMM free. Bye, scavenge and Free all funnel
// through here so no path can double-free fabric-owned memory.
func (s *Server) releaseSessionPtr(p *sim.Proc, ctx *cuda.Context, sess *session, ptr cuda.DevPtr) {
	if pl := s.cfg.Plane; pl != nil && ptr == sess.bcastPtr && sess.bcastPtr != 0 {
		pl.DropBroadcastSource(sess.bcastKey)
		sess.bcastPtr, sess.bcastKey = 0, ""
	}
	if export, shared := sess.imported[ptr]; shared {
		delete(sess.imported, ptr)
		a, err := ctx.DetachPhys(p, ptr)
		if err != nil {
			return
		}
		f := s.cfg.Plane.Fabric()
		if x, ok := f.Lookup(export); ok {
			f.EndImport(x)
		} else {
			// The export already left the namespace; the detached backing
			// has no owner left.
			a.Free()
		}
		return
	}
	_ = ctx.Free(p, ptr)
}
