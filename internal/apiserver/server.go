// Package apiserver implements a DGSF API server: the process on a GPU
// server that executes remoted API calls on behalf of exactly one serverless
// function at a time (§V-A).
//
// An API server owns one CUDA runtime with (by construction) at most one
// context per physical GPU. It is initially bound to a home GPU; while a
// function runs, the monitor may migrate it to another GPU at an API-call
// boundary, and when the function finishes it returns to its home GPU.
//
// Serverless specializations implemented here (§V-C):
//
//   - pre-initialized CUDA runtime and pooled cuDNN/cuBLAS handles, taking
//     ~3.2 s + 1.2 s + 0.2 s of initialization off the function's critical
//     path (an idle pre-warmed server occupies ~755 MB of device memory);
//   - device virtualization: the function always sees exactly one GPU;
//   - memory accounting against the function's declared limit, enforced at
//     allocation time;
//   - every allocation goes through the CUDA low-level virtual-memory API so
//     migration can rebuild an identical virtual address space elsewhere.
package apiserver

import (
	"fmt"
	"strings"
	"time"

	"dgsf/internal/cuda"
	"dgsf/internal/cudalibs"
	"dgsf/internal/dataplane"
	"dgsf/internal/gpu"
	"dgsf/internal/modelcache"
	"dgsf/internal/remoting"
	"dgsf/internal/remoting/gen"
	"dgsf/internal/remoting/wire"
	"dgsf/internal/sim"
)

// Config parameterizes an API server.
type Config struct {
	ID      int
	HomeDev int // initially assigned GPU

	// PoolHandles enables the startup optimization: the CUDA runtime is
	// initialized and DNNPool/BLASPool handles are created when the server
	// starts, not when a function first needs them.
	PoolHandles bool
	DNNPool     int
	BLASPool    int

	CUDACosts cuda.Costs
	LibCosts  cudalibs.Costs

	// Cache, when non-nil, is the GPU server's shared model cache: the
	// server may keep a function's model working set mapped after Bye and
	// hand it to the function's next invocation (internal/modelcache).
	Cache *modelcache.Manager

	// Plane, when non-nil, is the GPU server's data plane: tensor
	// export/import between the machine's API servers, peer copies across
	// machines, and model broadcast (internal/dataplane).
	Plane *dataplane.Plane

	// ProtoMax caps the wire-protocol version this server negotiates in
	// the hello exchange. Zero means remoting.MaxProtoVersion; set 1 to
	// model a not-yet-upgraded server during a rolling upgrade.
	ProtoMax int
}

// Stats is a snapshot of server activity for the monitor.
type Stats struct {
	CallsHandled   int
	BatchesHandled int
	AsyncHandled   int // one-way submissions executed without a reply
	FencesHandled  int // pipeline fences answered
	Kernels        int
	Migrations     int
	MigrationTime  time.Duration // cumulative
	SessionMem     int64         // bytes allocated by the current function
	Busy           bool          // a function session is active
	CurrentDev     int
}

// Server is one API server.
type Server struct {
	cfg  Config
	e    *sim.Engine
	rt   *cuda.Runtime
	libs *cudalibs.Libs

	// Inbox carries both guest requests and monitor control messages; both
	// are processed in FIFO order, which is what confines migration to API
	// call boundaries.
	Inbox *sim.Queue[remoting.Request]

	curDev  int
	prewarm bool // pools are ready

	pooledDNN  []cudalibs.DNNHandle
	pooledBLAS []cudalibs.BLASHandle

	sess       *session
	stats      Stats
	callCounts map[uint16]int
	crashed    bool // fault injection killed the server process

	// asyncErr latches the first error produced by a one-way (CallAsync)
	// submission; the next CallFence reports and clears it — the sticky
	// error semantics CUDA gives asynchronous work.
	asyncErr int32

	// pinned is the GPU-resident cached model this server holds while idle
	// (or before the owning function adopts it via ModelAttach). Its VMM
	// reservations stay mapped, so it migrates with the server's address
	// space and the pointer survives moves.
	pinned *pinnedModel
}

// pinnedModel is a retained model working set: the allocation a function
// marked with ModelPersist, kept mapped after its Bye.
type pinnedModel struct {
	fnID  string
	ptr   cuda.DevPtr
	bytes int64
}

// session is the state of the one function currently being served.
type session struct {
	fnID     string
	memLimit int64
	used     int64

	allocs map[cuda.DevPtr]int64 // base va -> size

	kernelNames []string
	virtFn      map[cuda.FnPtr]string
	nextVirt    uint64

	// Virtual handle -> per-device concrete handle translation maps. The
	// server pre-replicates streams in new contexts on migration (§V-D).
	streams map[cuda.StreamHandle]map[int]cuda.StreamHandle
	events  map[cuda.EventHandle]map[int]cuda.EventHandle

	dnns  map[cudalibs.DNNHandle]cudalibs.DNNHandle   // virtual -> real
	blass map[cudalibs.BLASHandle]cudalibs.BLASHandle // virtual -> real
	descs map[cudalibs.Descriptor]bool                // server-held descriptors

	hostAllocs map[uint64]int64
	nextHost   uint64

	// written holds the bytes last uploaded to each base pointer via
	// MemWrite (copied from the borrowed bulk region), so MemRead can
	// return real contents.
	written map[cuda.DevPtr][]byte

	persistPtr cuda.DevPtr // allocation to offer to the model cache at Bye

	// Data-plane state. imported maps a session va to the fabric export
	// whose physical memory it shares zero-copy: such pointers are released
	// by detaching the mapping, never by freeing the shared backing.
	// bcastPtr/bcastKey root the model-broadcast source this session seeds,
	// deregistered when the pointer is freed or the session ends.
	imported map[cuda.DevPtr]uint64
	bcastPtr cuda.DevPtr
	bcastKey string
}

var _ gen.API = (*Server)(nil)

// NewServer creates an API server over the GPU server's devices.
func NewServer(e *sim.Engine, rt *cuda.Runtime, cfg Config) *Server {
	if cfg.DNNPool == 0 {
		cfg.DNNPool = 1
	}
	if cfg.BLASPool == 0 {
		cfg.BLASPool = 1
	}
	return &Server{
		cfg:        cfg,
		e:          e,
		rt:         rt,
		libs:       cudalibs.New(cfg.LibCosts),
		Inbox:      sim.NewQueue[remoting.Request](e),
		curDev:     cfg.HomeDev,
		callCounts: make(map[uint16]int),
	}
}

// ID returns the server's identifier on its GPU server.
func (s *Server) ID() int { return s.cfg.ID }

// HomeDev returns the server's originally assigned GPU.
func (s *Server) HomeDev() int { return s.cfg.HomeDev }

// CurrentDev returns the GPU the server currently executes on.
func (s *Server) CurrentDev() int { return s.curDev }

// Busy reports whether a function session is active.
func (s *Server) Busy() bool { return s.sess != nil }

// Stats returns an activity snapshot for the monitor (step 3 in Fig. 2).
func (s *Server) Stats() Stats {
	st := s.stats
	st.Busy = s.sess != nil
	st.CurrentDev = s.curDev
	if s.sess != nil {
		st.SessionMem = s.sess.used
	}
	return st
}

// Prewarm initializes the CUDA runtime and fills the handle pools. The GPU
// server's manager runs this for every API server it creates, off any
// function's critical path.
func (s *Server) Prewarm(p *sim.Proc) error {
	if s.prewarm {
		return nil
	}
	if err := s.rt.SetDevice(p, s.cfg.HomeDev); err != nil {
		return err
	}
	if err := s.rt.Init(p); err != nil {
		return err
	}
	ctx, err := s.rt.Context(p, s.cfg.HomeDev)
	if err != nil {
		return err
	}
	for i := 0; i < s.cfg.DNNPool; i++ {
		h, err := s.libs.DNNCreate(p, ctx)
		if err != nil {
			return err
		}
		s.pooledDNN = append(s.pooledDNN, h)
	}
	for i := 0; i < s.cfg.BLASPool; i++ {
		h, err := s.libs.BLASCreate(p, ctx)
		if err != nil {
			return err
		}
		s.pooledBLAS = append(s.pooledBLAS, h)
	}
	s.prewarm = true
	return nil
}

// Run is the server's request loop. Spawn as a daemon process. If the
// PoolHandles optimization is on, the server pre-warms before serving.
func (s *Server) Run(p *sim.Proc) {
	if s.cfg.PoolHandles {
		if err := s.Prewarm(p); err != nil {
			panic(fmt.Sprintf("apiserver %d: prewarm: %v", s.cfg.ID, err))
		}
	}
	for {
		req, ok := s.Inbox.Recv(p)
		if !ok {
			if s.crashed {
				s.scavenge(p)
			}
			return
		}
		if req.Ctrl != nil {
			s.handleCtrl(p, req)
			continue
		}
		resp, data, bulk := s.handle(p, req)
		if resp == nil || req.ReplyTo == nil {
			continue // one-way submission: no acknowledgement
		}
		// TrySend: the guest's connection may have been severed (fault
		// injection) while the call executed, closing the reply queue.
		// Proto echoes the request so a TCP bridge frames the reply in
		// the version the guest negotiated.
		req.ReplyTo.TrySend(remoting.Response{Payload: resp, RespData: data, Bulk: bulk, Proto: req.Proto})
	}
}

// Crash kills the API server abruptly, as a process crash would: the inbox
// closes (in-flight guests never get replies; the GPU server's heartbeat
// detects the death), and the run loop scavenges the dead session's device
// state on the way out — the cleanup the driver performs when a process
// holding a context dies.
func (s *Server) Crash() {
	if s.crashed {
		return
	}
	s.crashed = true
	s.Inbox.Close()
}

// Crashed reports whether fault injection killed this server.
func (s *Server) Crashed() bool { return s.crashed }

// scavenge releases everything the dead server held: session allocations,
// stream/event replicas, library handles, descriptors, and any pinned cached
// model (dropped without staging out — the process that owned the host copy
// path is gone). Device accounting must end accurate so the survivors'
// placement decisions stay sound.
func (s *Server) scavenge(p *sim.Proc) {
	sess := s.sess
	s.sess = nil
	s.asyncErr = 0
	if sess != nil {
		if ctx, err := s.rt.Context(p, s.curDev); err == nil {
			for _, ptr := range sortedKeys(sess.allocs) {
				s.releaseSessionPtr(p, ctx, sess, ptr)
			}
		}
		for _, virt := range sortedKeys(sess.streams) {
			perDev := sess.streams[virt]
			for _, dev := range sortedKeys(perDev) {
				if c, err := s.rt.Context(p, dev); err == nil {
					_ = c.StreamDestroy(p, perDev[dev])
				}
			}
		}
		for _, virt := range sortedKeys(sess.events) {
			perDev := sess.events[virt]
			for _, dev := range sortedKeys(perDev) {
				if c, err := s.rt.Context(p, dev); err == nil {
					_ = c.EventDestroy(p, perDev[dev])
				}
			}
		}
		for _, virt := range sortedKeys(sess.dnns) {
			_ = s.libs.DNNDestroy(p, sess.dnns[virt])
		}
		for _, virt := range sortedKeys(sess.blass) {
			_ = s.libs.BLASDestroy(p, sess.blass[virt])
		}
		for _, d := range sortedKeys(sess.descs) {
			_ = s.libs.DestroyDescriptor(p, d)
		}
	}
	if pin := s.pinned; pin != nil {
		s.pinned = nil
		s.cfg.Cache.Unpin(s.cfg.ID)
		if ctx, err := s.rt.Context(p, s.curDev); err == nil {
			_ = ctx.Free(p, pin.ptr)
		}
	}
	if s.curDev != s.cfg.HomeDev {
		if awayCtx, err := s.rt.Context(p, s.curDev); err == nil {
			awayCtx.Destroy()
		}
		s.curDev = s.cfg.HomeDev
	}
}

// MigrateRequest asks the server to move to another GPU. The monitor sends
// it through the inbox so it executes at an API call boundary. Done, if
// non-nil, receives the migration duration (0 if the move was a no-op).
type MigrateRequest struct {
	TargetDev int
	Done      *sim.Queue[time.Duration]
}

// ResetRequest forcibly ends the current session, releasing all of its
// resources. The TCP front end sends it when a guest connection drops
// without a proper Bye.
type ResetRequest struct {
	Done *sim.Queue[struct{}]
}

// EvictModelRequest asks an idle server to swap its GPU-resident cached
// model out to the host tier, freeing device memory. The monitor sends it
// when a waiting request cannot be placed because of pinned models.
type EvictModelRequest struct {
	Done *sim.Queue[struct{}]
}

// PingRequest is the GPU server's liveness probe. It rides the same FIFO
// inbox as API calls, so an answered ping proves the server's run loop is
// draining requests — not merely that the process exists.
type PingRequest struct {
	Done *sim.Queue[struct{}]
}

func (s *Server) handleCtrl(p *sim.Proc, req remoting.Request) {
	switch c := req.Ctrl.(type) {
	case MigrateRequest:
		d, err := s.Migrate(p, c.TargetDev)
		if err != nil {
			d = 0
		}
		if c.Done != nil {
			c.Done.Send(d)
		}
	case ResetRequest:
		if s.sess != nil {
			_ = s.Bye(p)
		}
		if c.Done != nil {
			c.Done.Send(struct{}{})
		}
	case EvictModelRequest:
		s.evictPinned(p)
		if c.Done != nil {
			c.Done.Send(struct{}{})
		}
	case PingRequest:
		if c.Done != nil {
			// TrySend: the prober may have timed out and abandoned the probe.
			c.Done.TrySend(struct{}{})
		}
	default:
		panic(fmt.Sprintf("apiserver %d: unknown control message %T", s.cfg.ID, req.Ctrl))
	}
}

// handle executes one wire message (a single call, a batch, an async
// one-way submission, a fence, or a protocol hello). A nil response means
// "send no reply". The third return is the reply's bulk region, non-nil
// only for vectored bulk-response calls on a protocol-v2 connection.
func (s *Server) handle(p *sim.Proc, req remoting.Request) ([]byte, int64, []byte) {
	payload := req.Payload
	d := wire.NewDecoder(payload)
	switch id := d.U16(); id {
	case remoting.CallBatch:
		return s.handleBatch(p, d), 0, nil
	case remoting.CallAsync:
		s.handleAsync(p, payload[2:])
		return nil, 0, nil
	case remoting.CallFence:
		s.stats.FencesHandled++
		var e wire.Encoder
		e.I32(s.asyncErr)
		s.asyncErr = 0
		return e.Bytes(), 0, nil
	case remoting.CallProtoHello:
		// Version negotiation, answered out of band of the call table —
		// not an API call, so it stays out of callCounts. A malformed
		// hello falls through to Dispatch's unknown-call error, which is
		// exactly what a pre-hello (v1) server would answer.
		if reply, _, ok := remoting.HandleHello(payload, s.protoMax()); ok {
			return reply, 0, nil
		}
	default:
		s.callCounts[id]++
	}
	s.stats.CallsHandled++
	return gen.DispatchBulk(p, s, payload, req.Bulk, req.Proto >= remoting.ProtoV2)
}

// protoMax resolves the configured protocol-version cap.
func (s *Server) protoMax() int {
	if s.cfg.ProtoMax > 0 {
		return s.cfg.ProtoMax
	}
	return remoting.MaxProtoVersion
}

// handleAsync executes a one-way submission: the wrapped message runs like
// any other, but no reply is sent and the first error latches into asyncErr
// until the next fence.
func (s *Server) handleAsync(p *sim.Proc, inner []byte) {
	s.stats.AsyncHandled++
	id := wire.NewDecoder(inner).U16()
	if id == remoting.CallAsync || id == remoting.CallFence || id == remoting.CallBatch {
		if s.asyncErr == 0 {
			s.asyncErr = int32(cuda.Code(cuda.ErrInvalidValue))
		}
		return // malformed: reserved IDs do not nest inside a submission
	}
	// Only table-deferrable calls may run one-way: anything result-bearing
	// would silently drop its result here, so reject it instead of executing.
	if !gen.CallIsDeferrable(id) {
		if s.asyncErr == 0 {
			s.asyncErr = int32(cuda.Code(cuda.ErrInvalidValue))
		}
		return
	}
	resp, _, _ := s.handle(p, remoting.Request{Payload: inner})
	rd := wire.NewDecoder(resp)
	if code := rd.I32(); code != 0 && s.asyncErr == 0 && rd.Err() == nil {
		s.asyncErr = code
	}
}

// CallCounts reports how often each API has been executed, keyed by name —
// the per-server statistics the monitor collects (Fig. 2, step 3).
func (s *Server) CallCounts() map[string]int {
	out := make(map[string]int, len(s.callCounts))
	for id, n := range s.callCounts {
		out[gen.CallName(id)] += n
	}
	return out
}

// handleBatch executes the entries of a batch message in order, replying
// with the first error encountered (subsequent entries still execute, like
// asynchronous CUDA work after a sticky error).
func (s *Server) handleBatch(p *sim.Proc, d *wire.Decoder) []byte {
	n := int(d.U32())
	s.stats.BatchesHandled++
	firstErr := 0
	for i := 0; i < n && d.Err() == nil; i++ {
		entry := d.BytesField()
		if d.Err() != nil {
			break
		}
		s.stats.CallsHandled++
		if len(entry) >= 2 {
			s.callCounts[uint16(entry[0])|uint16(entry[1])<<8]++
		}
		resp, _ := gen.Dispatch(p, s, entry)
		rd := wire.NewDecoder(resp)
		if code := int(rd.I32()); code != 0 && firstErr == 0 {
			firstErr = code
		}
	}
	if d.Err() != nil && firstErr == 0 {
		firstErr = cuda.Code(cuda.ErrInvalidValue)
	}
	var e wire.Encoder
	e.I32(int32(firstErr))
	return e.Bytes()
}

// ctx returns the context on the server's current device.
func (s *Server) ctx(p *sim.Proc) (*cuda.Context, error) {
	if s.sess == nil {
		return nil, cuda.ErrNotInitialized
	}
	return s.rt.Context(p, s.curDev)
}

// --- session control ---

// Hello opens a function session. Without the pooling optimization, the
// CUDA runtime initializes here — on the function's critical path, exactly
// the cost DGSF's pre-initialization removes.
func (s *Server) Hello(p *sim.Proc, fnID string, memLimit int64) error {
	if s.sess != nil {
		return cuda.ErrInitializationError
	}
	s.asyncErr = 0 // a fresh session starts with a clean pipeline

	if !s.prewarm {
		if err := s.rt.SetDevice(p, s.cfg.HomeDev); err != nil {
			return err
		}
		if err := s.rt.Init(p); err != nil {
			return err
		}
	}
	// A different function is moving in: stage the previous tenant's cached
	// model out to the host tier so the session's declared memory limit has
	// the device to itself.
	if s.pinned != nil && s.pinned.fnID != fnID {
		s.evictPinned(p)
	}
	s.sess = &session{
		fnID:       fnID,
		memLimit:   memLimit,
		allocs:     make(map[cuda.DevPtr]int64),
		virtFn:     make(map[cuda.FnPtr]string),
		streams:    make(map[cuda.StreamHandle]map[int]cuda.StreamHandle),
		events:     make(map[cuda.EventHandle]map[int]cuda.EventHandle),
		dnns:       make(map[cudalibs.DNNHandle]cudalibs.DNNHandle),
		blass:      make(map[cudalibs.BLASHandle]cudalibs.BLASHandle),
		descs:      make(map[cudalibs.Descriptor]bool),
		hostAllocs: make(map[uint64]int64),
		imported:   make(map[cuda.DevPtr]uint64),
	}
	return nil
}

// Bye tears down the session: all function-owned resources are released,
// pooled handles are returned, and the server migrates back to its home GPU
// if the monitor had moved it (§V-A).
func (s *Server) Bye(p *sim.Proc) error {
	sess := s.sess
	if sess == nil {
		return cuda.ErrNotInitialized
	}
	ctx, err := s.rt.Context(p, s.curDev)
	if err != nil {
		return err
	}
	_ = ctx.DeviceSynchronize(p)
	// The allocation marked by ModelPersist is withheld from the free loop:
	// it stays mapped as a retention candidate for the model cache.
	var keep *pinnedModel
	if sess.persistPtr != 0 && s.cfg.Cache != nil {
		if size, ok := sess.allocs[sess.persistPtr]; ok {
			keep = &pinnedModel{fnID: sess.fnID, ptr: sess.persistPtr, bytes: size}
			delete(sess.allocs, sess.persistPtr)
			sess.used -= size
		}
	}
	for _, ptr := range sortedKeys(sess.allocs) {
		s.releaseSessionPtr(p, ctx, sess, ptr)
	}
	for _, virt := range sortedKeys(sess.streams) {
		perDev := sess.streams[virt]
		for _, dev := range sortedKeys(perDev) {
			c, err := s.rt.Context(p, dev)
			if err == nil {
				_ = c.StreamDestroy(p, perDev[dev])
			}
		}
	}
	for _, virt := range sortedKeys(sess.events) {
		perDev := sess.events[virt]
		for _, dev := range sortedKeys(perDev) {
			c, err := s.rt.Context(p, dev)
			if err == nil {
				_ = c.EventDestroy(p, perDev[dev])
			}
		}
	}
	// Non-pooled handles created for this session are destroyed; pooled
	// ones were already returned by DnnDestroy/BlasDestroy or are returned
	// now.
	for _, virt := range sortedKeys(sess.dnns) {
		s.releaseDNN(p, sess.dnns[virt])
	}
	for _, virt := range sortedKeys(sess.blass) {
		s.releaseBLAS(p, sess.blass[virt])
	}
	for _, d := range sortedKeys(sess.descs) {
		_ = s.libs.DestroyDescriptor(p, d)
	}
	s.sess = nil
	// Return home. Only a retained model (if any) remains mapped, so the
	// move copies at most that; the extra context created at the destination
	// is torn down to release its footprint.
	if s.curDev != s.cfg.HomeDev {
		away := s.curDev
		if _, err := s.Migrate(p, s.cfg.HomeDev); err != nil {
			return err
		}
		if awayCtx, err := s.rt.Context(p, away); err == nil {
			awayCtx.Destroy()
		}
	}
	if keep != nil {
		// A pin the function never adopted this session (it skipped
		// ModelAttach) cannot coexist with the new candidate.
		if s.pinned != nil {
			s.evictPinned(p)
		}
		if s.cfg.Cache.Pin(s.cfg.ID, s.cfg.HomeDev, keep.fnID, keep.bytes) {
			s.pinned = keep
		} else {
			// Device budget exhausted: swap the working set to the host tier
			// at copy-engine bandwidth instead of keeping it on the GPU.
			s.stageOut(p, keep)
		}
	}
	return nil
}

// evictPinned swaps the server's GPU-resident cached model out to the host
// tier (device-to-host at copy-engine bandwidth) and unmaps it.
func (s *Server) evictPinned(p *sim.Proc) {
	pin := s.pinned
	if pin == nil {
		return
	}
	s.pinned = nil
	s.cfg.Cache.Unpin(s.cfg.ID)
	s.cfg.Cache.NoteSwapOut(pin.bytes)
	s.stageOut(p, pin)
}

// stageOut copies a retained model to the host tier and frees its device
// memory.
func (s *Server) stageOut(p *sim.Proc, pin *pinnedModel) {
	if ctx, err := s.rt.Context(p, s.curDev); err == nil {
		_, _ = ctx.MemcpyD2H(p, pin.ptr, pin.bytes)
		_ = ctx.Free(p, pin.ptr)
	}
	s.cfg.Cache.Host().Put(modelcache.StateKey(pin.fnID), pin.bytes)
}

// --- model cache (internal/modelcache) ---

// ModelAttach hands the session a cached copy of its function's model
// working set, if the cache holds one. A GPU-resident pin left by the
// previous invocation on this server is adopted directly into the session's
// allocation table — the model-load phase vanishes. A host-staged copy is
// restored with an allocation plus a host-to-device transfer. The adopted
// bytes count against the session's declared memory limit like any other
// allocation.
func (s *Server) ModelAttach(p *sim.Proc) (cuda.DevPtr, int64, int, error) {
	sess := s.sess
	if sess == nil {
		return 0, 0, 0, cuda.ErrNotInitialized
	}
	c := s.cfg.Cache
	if c == nil {
		return 0, 0, modelcache.TierMiss, nil
	}
	if pin := s.pinned; pin != nil && pin.fnID == sess.fnID {
		if sess.used+pin.bytes <= sess.memLimit {
			s.pinned = nil
			c.Unpin(s.cfg.ID)
			sess.allocs[pin.ptr] = pin.bytes
			sess.used += pin.bytes
			c.NoteAttach(modelcache.TierDevice)
			return pin.ptr, pin.bytes, modelcache.TierDevice, nil
		}
		// The pin does not fit the declared limit (it must have been made
		// under a larger one); stage it out rather than stranding it.
		s.evictPinned(p)
	}
	key := modelcache.StateKey(sess.fnID)
	if bytes, ok := c.Host().Get(key); ok {
		ptr, err := s.Malloc(p, bytes)
		if err == nil {
			if ctx, cerr := s.ctx(p); cerr == nil {
				_ = ctx.MemcpyH2D(p, ptr, gpu.HostBuffer{FP: key.FP, Size: bytes}, bytes)
				c.NoteAttach(modelcache.TierHost)
				return ptr, bytes, modelcache.TierHost, nil
			}
			_ = s.Free(p, ptr)
		}
	}
	c.NoteAttach(modelcache.TierMiss)
	return 0, 0, modelcache.TierMiss, nil
}

// ModelPersist marks a session allocation as the function's model working
// set: at Bye the server tries to retain it (GPU-resident, else host-staged)
// instead of freeing it. Without a cache it degenerates to Free, so
// cache-oblivious deployments behave exactly as before.
func (s *Server) ModelPersist(p *sim.Proc, ptr cuda.DevPtr) error {
	sess := s.sess
	if sess == nil {
		return cuda.ErrNotInitialized
	}
	if _, ok := sess.allocs[ptr]; !ok {
		return cuda.ErrInvalidValue
	}
	if _, shared := sess.imported[ptr]; shared {
		// A zero-copy import shares fabric-owned memory; the session cannot
		// promise it to the cache beyond its own lifetime.
		return cuda.ErrInvalidValue
	}
	if s.cfg.Cache == nil {
		return s.Free(p, ptr)
	}
	sess.persistPtr = ptr
	return nil
}

func (s *Server) releaseDNN(p *sim.Proc, real cudalibs.DNNHandle) {
	if len(s.pooledDNN) < s.cfg.DNNPool && s.cfg.PoolHandles {
		s.pooledDNN = append(s.pooledDNN, real)
		return
	}
	_ = s.libs.DNNDestroy(p, real)
}

func (s *Server) releaseBLAS(p *sim.Proc, real cudalibs.BLASHandle) {
	if len(s.pooledBLAS) < s.cfg.BLASPool && s.cfg.PoolHandles {
		s.pooledBLAS = append(s.pooledBLAS, real)
		return
	}
	_ = s.libs.BLASDestroy(p, real)
}

// RegisterKernels registers the function's kernels in the current context
// and hands back stable virtual handles; launches translate them to the
// context-local pointers, which migration re-creates on the target GPU.
func (s *Server) RegisterKernels(p *sim.Proc, names []string) ([]cuda.FnPtr, error) {
	sess := s.sess
	if sess == nil {
		return nil, cuda.ErrNotInitialized
	}
	ctx, err := s.ctx(p)
	if err != nil {
		return nil, err
	}
	out := make([]cuda.FnPtr, 0, len(names))
	for _, name := range names {
		// Dispatch decodes the name slice in shared mode: the strings alias
		// the request buffer and die with it, so anything kept in session
		// state must own its bytes.
		name = strings.Clone(name)
		if _, err := ctx.RegisterFunction(p, name); err != nil {
			return nil, err
		}
		sess.kernelNames = append(sess.kernelNames, name)
		sess.nextVirt++
		virt := cuda.FnPtr(0x5000_0000_0000 + sess.nextVirt)
		sess.virtFn[virt] = name
		out = append(out, virt)
	}
	return out, nil
}

// --- device management (virtualized: the function sees one GPU) ---

// GetDeviceCount always answers 1 (§V-B, "Device management functions").
func (s *Server) GetDeviceCount(p *sim.Proc) (int, error) {
	if _, err := s.ctx(p); err != nil {
		return 0, err
	}
	return 1, nil
}

// GetDeviceProperties reports the currently assigned GPU as device 0.
func (s *Server) GetDeviceProperties(p *sim.Proc, dev int) (cuda.DeviceProp, error) {
	if _, err := s.ctx(p); err != nil {
		return cuda.DeviceProp{}, err
	}
	if dev != 0 {
		return cuda.DeviceProp{}, cuda.ErrInvalidDevice
	}
	return s.rt.DeviceProperties(p, s.curDev)
}

// SetDevice accepts only the virtual device 0.
func (s *Server) SetDevice(p *sim.Proc, dev int) error {
	if _, err := s.ctx(p); err != nil {
		return err
	}
	if dev != 0 {
		return cuda.ErrInvalidDevice
	}
	return nil
}

// GetDevice always answers 0.
func (s *Server) GetDevice(p *sim.Proc) (int, error) {
	if _, err := s.ctx(p); err != nil {
		return 0, err
	}
	return 0, nil
}

// MemGetInfo is scoped to the function's declared memory limit.
func (s *Server) MemGetInfo(p *sim.Proc) (int64, int64, error) {
	sess := s.sess
	if sess == nil {
		return 0, 0, cuda.ErrNotInitialized
	}
	return sess.memLimit - sess.used, sess.memLimit, nil
}

// DeviceSynchronize drains all streams in the current context.
func (s *Server) DeviceSynchronize(p *sim.Proc) error {
	ctx, err := s.ctx(p)
	if err != nil {
		return err
	}
	return ctx.DeviceSynchronize(p)
}

// GetLastError reports no error; errors are returned per call on the wire.
func (s *Server) GetLastError(p *sim.Proc) (int, error) { return 0, nil }

// DriverGetVersion reports CUDA 10.2, the driver version the paper's GPU
// servers run.
func (s *Server) DriverGetVersion(p *sim.Proc) (int, error) { return 10020, nil }

// RuntimeGetVersion reports CUDA 10.1, the runtime exposed to functions.
func (s *Server) RuntimeGetVersion(p *sim.Proc) (int, error) { return 10010, nil }

// --- memory management ---

// Malloc allocates through the VMM path (reserve + create + map) and checks
// the function's declared limit: DGSF "knows exactly how much memory an
// application is using and ensures it is not violating its limits" (§V-B).
func (s *Server) Malloc(p *sim.Proc, size int64) (cuda.DevPtr, error) {
	sess := s.sess
	if sess == nil {
		return 0, cuda.ErrNotInitialized
	}
	if size <= 0 {
		return 0, cuda.ErrInvalidValue
	}
	if sess.used+size > sess.memLimit {
		return 0, cuda.ErrMemoryAllocation
	}
	ctx, err := s.ctx(p)
	if err != nil {
		return 0, err
	}
	ptr, err := ctx.Malloc(p, size)
	if err != nil {
		return 0, err
	}
	sess.allocs[ptr] = size
	sess.used += size
	return ptr, nil
}

// Free releases a function allocation. Pointers attached through the data
// plane (zero-copy imports, broadcast sources) carry extra bookkeeping, so
// the release goes through the shared helper.
func (s *Server) Free(p *sim.Proc, ptr cuda.DevPtr) error {
	sess := s.sess
	if sess == nil {
		return cuda.ErrNotInitialized
	}
	size, ok := sess.allocs[ptr]
	if !ok {
		return cuda.ErrInvalidValue
	}
	ctx, err := s.ctx(p)
	if err != nil {
		return err
	}
	s.releaseSessionPtr(p, ctx, sess, ptr)
	delete(sess.allocs, ptr)
	sess.used -= size
	return nil
}

// Memset mirrors cudaMemset.
func (s *Server) Memset(p *sim.Proc, ptr cuda.DevPtr, value byte, size int64) error {
	ctx, err := s.ctx(p)
	if err != nil {
		return err
	}
	return ctx.Memset(p, ptr, value, size)
}

// MemcpyH2D mirrors cudaMemcpy(HostToDevice).
func (s *Server) MemcpyH2D(p *sim.Proc, dst cuda.DevPtr, src gpu.HostBuffer, size int64) error {
	ctx, err := s.ctx(p)
	if err != nil {
		return err
	}
	return ctx.MemcpyH2D(p, dst, src, size)
}

// MemcpyD2H mirrors cudaMemcpy(DeviceToHost).
func (s *Server) MemcpyD2H(p *sim.Proc, src cuda.DevPtr, size int64) (gpu.HostBuffer, error) {
	ctx, err := s.ctx(p)
	if err != nil {
		return gpu.HostBuffer{}, err
	}
	return ctx.MemcpyD2H(p, src, size)
}

// MemWrite is the vectored twin of MemcpyH2D: the payload bytes arrive with
// the call (borrowed, on v2 as the frame's bulk region), so the server both
// charges the PCIe upload and retains a copy in the session's byte store for
// read-back through MemRead.
func (s *Server) MemWrite(p *sim.Proc, dst cuda.DevPtr, data []byte) error {
	sess := s.sess
	if sess == nil {
		return cuda.ErrNotInitialized
	}
	ctx, err := s.ctx(p)
	if err != nil {
		return err
	}
	size := int64(len(data))
	if err := ctx.MemcpyH2D(p, dst, gpu.HostBuffer{Size: size}, size); err != nil {
		return err
	}
	if sess.written == nil {
		sess.written = make(map[cuda.DevPtr][]byte)
	}
	// Copy: data is borrowed from the transport's frame buffer.
	sess.written[dst] = append([]byte(nil), data...)
	return nil
}

// MemRead is the vectored twin of MemcpyD2H: it charges the PCIe download
// and returns the bytes last written to src via MemWrite, zero-filled past
// them. On a protocol-v2 connection the reply travels as a bulk region.
func (s *Server) MemRead(p *sim.Proc, src cuda.DevPtr, size int64) ([]byte, error) {
	sess := s.sess
	if sess == nil {
		return nil, cuda.ErrNotInitialized
	}
	ctx, err := s.ctx(p)
	if err != nil {
		return nil, err
	}
	if _, err := ctx.MemcpyD2H(p, src, size); err != nil {
		return nil, err
	}
	out := make([]byte, size)
	copy(out, sess.written[src])
	return out, nil
}

// MemcpyD2D mirrors cudaMemcpy(DeviceToDevice).
func (s *Server) MemcpyD2D(p *sim.Proc, dst, src cuda.DevPtr, size int64) error {
	ctx, err := s.ctx(p)
	if err != nil {
		return err
	}
	return ctx.MemcpyD2D(p, dst, src, size)
}

// MallocHost emulates pinned host allocation server-side (the optimized
// guest never forwards it).
func (s *Server) MallocHost(p *sim.Proc, size int64) (uint64, error) {
	sess := s.sess
	if sess == nil {
		return 0, cuda.ErrNotInitialized
	}
	sess.nextHost++
	ptr := 0x6100_0000_0000 + sess.nextHost<<12
	sess.hostAllocs[ptr] = size
	return ptr, nil
}

// FreeHost mirrors cudaFreeHost.
func (s *Server) FreeHost(p *sim.Proc, ptr uint64) error {
	sess := s.sess
	if sess == nil {
		return cuda.ErrNotInitialized
	}
	if _, ok := sess.hostAllocs[ptr]; !ok {
		return cuda.ErrInvalidValue
	}
	delete(sess.hostAllocs, ptr)
	return nil
}

// PointerGetAttributes answers from the session allocation table.
func (s *Server) PointerGetAttributes(p *sim.Proc, ptr cuda.DevPtr) (cuda.PtrAttributes, error) {
	sess := s.sess
	if sess == nil {
		return cuda.PtrAttributes{}, cuda.ErrNotInitialized
	}
	for base, size := range sess.allocs {
		if ptr >= base && uint64(ptr) < uint64(base)+uint64(size) {
			return cuda.PtrAttributes{Device: 0, Size: size, IsDevice: true}, nil
		}
	}
	return cuda.PtrAttributes{}, cuda.ErrInvalidValue
}

// --- execution ---

// PushCallConfiguration is accepted for unoptimized guests; the
// configuration is implicit in the subsequent launch.
func (s *Server) PushCallConfiguration(p *sim.Proc, grid, block [3]int, stream cuda.StreamHandle) error {
	if _, err := s.ctx(p); err != nil {
		return err
	}
	return nil
}

// PopCallConfiguration matches PushCallConfiguration.
func (s *Server) PopCallConfiguration(p *sim.Proc) error {
	if _, err := s.ctx(p); err != nil {
		return err
	}
	return nil
}

// LaunchKernel translates the virtual function pointer and stream handle to
// the current context's and enqueues the kernel.
func (s *Server) LaunchKernel(p *sim.Proc, lp cuda.LaunchParams) error {
	sess := s.sess
	if sess == nil {
		return cuda.ErrNotInitialized
	}
	ctx, err := s.ctx(p)
	if err != nil {
		return err
	}
	name, ok := sess.virtFn[lp.Fn]
	if !ok {
		return cuda.ErrInvalidFunction
	}
	real, err := ctx.FunctionPtr(name)
	if err != nil {
		return err
	}
	lp.Fn = real
	if lp.Stream != 0 {
		realStream, err := s.translateStream(lp.Stream)
		if err != nil {
			return err
		}
		lp.Stream = realStream
	}
	s.stats.Kernels++
	return ctx.LaunchKernel(p, lp)
}

func (s *Server) translateStream(virt cuda.StreamHandle) (cuda.StreamHandle, error) {
	perDev, ok := s.sess.streams[virt]
	if !ok {
		return 0, cuda.ErrInvalidResourceHandle
	}
	real, ok := perDev[s.curDev]
	if !ok {
		return 0, cuda.ErrInvalidResourceHandle
	}
	return real, nil
}

func (s *Server) translateEvent(virt cuda.EventHandle) (cuda.EventHandle, error) {
	perDev, ok := s.sess.events[virt]
	if !ok {
		return 0, cuda.ErrInvalidResourceHandle
	}
	real, ok := perDev[s.curDev]
	if !ok {
		return 0, cuda.ErrInvalidResourceHandle
	}
	return real, nil
}

// StreamCreate creates a stream and returns a stable virtual handle; the
// per-context concrete handle lives in the translation map.
func (s *Server) StreamCreate(p *sim.Proc) (cuda.StreamHandle, error) {
	sess := s.sess
	if sess == nil {
		return 0, cuda.ErrNotInitialized
	}
	ctx, err := s.ctx(p)
	if err != nil {
		return 0, err
	}
	real, err := ctx.StreamCreate(p)
	if err != nil {
		return 0, err
	}
	sess.nextVirt++
	virt := cuda.StreamHandle(0x7000_0000 + sess.nextVirt)
	sess.streams[virt] = map[int]cuda.StreamHandle{s.curDev: real}
	return virt, nil
}

// StreamDestroy destroys the stream in every context holding a replica.
func (s *Server) StreamDestroy(p *sim.Proc, h cuda.StreamHandle) error {
	sess := s.sess
	if sess == nil {
		return cuda.ErrNotInitialized
	}
	perDev, ok := sess.streams[h]
	if !ok {
		return cuda.ErrInvalidResourceHandle
	}
	for _, dev := range sortedKeys(perDev) {
		c, err := s.rt.Context(p, dev)
		if err != nil {
			continue
		}
		_ = c.StreamDestroy(p, perDev[dev])
	}
	delete(sess.streams, h)
	return nil
}

// StreamSynchronize synchronizes the stream in the current context.
func (s *Server) StreamSynchronize(p *sim.Proc, h cuda.StreamHandle) error {
	ctx, err := s.ctx(p)
	if err != nil {
		return err
	}
	if h == 0 {
		return ctx.StreamSynchronize(p, 0)
	}
	real, err := s.translateStream(h)
	if err != nil {
		return err
	}
	return ctx.StreamSynchronize(p, real)
}

// EventCreate creates an event behind a stable virtual handle.
func (s *Server) EventCreate(p *sim.Proc) (cuda.EventHandle, error) {
	sess := s.sess
	if sess == nil {
		return 0, cuda.ErrNotInitialized
	}
	ctx, err := s.ctx(p)
	if err != nil {
		return 0, err
	}
	real, err := ctx.EventCreate(p)
	if err != nil {
		return 0, err
	}
	sess.nextVirt++
	virt := cuda.EventHandle(0x7100_0000 + sess.nextVirt)
	sess.events[virt] = map[int]cuda.EventHandle{s.curDev: real}
	return virt, nil
}

// EventDestroy destroys the event in every context holding a replica.
func (s *Server) EventDestroy(p *sim.Proc, h cuda.EventHandle) error {
	sess := s.sess
	if sess == nil {
		return cuda.ErrNotInitialized
	}
	perDev, ok := sess.events[h]
	if !ok {
		return cuda.ErrInvalidResourceHandle
	}
	for _, dev := range sortedKeys(perDev) {
		c, err := s.rt.Context(p, dev)
		if err != nil {
			continue
		}
		_ = c.EventDestroy(p, perDev[dev])
	}
	delete(sess.events, h)
	return nil
}

// EventRecord records the event on the translated stream.
func (s *Server) EventRecord(p *sim.Proc, h cuda.EventHandle, stream cuda.StreamHandle) error {
	ctx, err := s.ctx(p)
	if err != nil {
		return err
	}
	real, err := s.translateEvent(h)
	if err != nil {
		return err
	}
	realStream := cuda.StreamHandle(0)
	if stream != 0 {
		realStream, err = s.translateStream(stream)
		if err != nil {
			return err
		}
	}
	return ctx.EventRecord(p, real, realStream)
}

// EventSynchronize waits for the translated event.
func (s *Server) EventSynchronize(p *sim.Proc, h cuda.EventHandle) error {
	ctx, err := s.ctx(p)
	if err != nil {
		return err
	}
	real, err := s.translateEvent(h)
	if err != nil {
		return err
	}
	return ctx.EventSynchronize(p, real)
}

// EventElapsed reports time between two translated events.
func (s *Server) EventElapsed(p *sim.Proc, start, end cuda.EventHandle) (time.Duration, error) {
	ctx, err := s.ctx(p)
	if err != nil {
		return 0, err
	}
	rs, err := s.translateEvent(start)
	if err != nil {
		return 0, err
	}
	re, err := s.translateEvent(end)
	if err != nil {
		return 0, err
	}
	return ctx.EventElapsed(p, rs, re)
}
