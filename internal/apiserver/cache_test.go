package apiserver

import (
	"testing"
	"time"

	"dgsf/internal/cuda"
	"dgsf/internal/gpu"
	"dgsf/internal/modelcache"
	"dgsf/internal/remoting"
	"dgsf/internal/sim"
)

func cacheCfg(m *modelcache.Manager) Config {
	cfg := fastCfg()
	cfg.Cache = m
	return cfg
}

// loadModel opens a session, uploads a model into a working buffer and
// persists it, closing the session. Returns the working buffer's address.
func loadModel(t *testing.T, p *sim.Proc, r *rig, fnID string, bytes int64) cuda.DevPtr {
	t.Helper()
	if err := r.lib.Hello(p, fnID, 1<<30); err != nil {
		t.Fatal(err)
	}
	ptr, size, _, err := r.lib.ModelAttach(p)
	if err != nil {
		t.Fatal(err)
	}
	if ptr == 0 || size < bytes {
		ptr, err = r.lib.Malloc(p, bytes)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.lib.MemcpyH2D(p, ptr, gpu.HostBuffer{FP: 7, Size: bytes}, bytes); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.lib.ModelPersist(p, ptr); err != nil {
		t.Fatal(err)
	}
	r.lib.FlushBatch(p)
	if err := r.lib.Bye(p); err != nil {
		t.Fatal(err)
	}
	return ptr
}

func TestModelPersistPinsAndAttachAdopts(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		m := modelcache.NewManager(modelcache.Config{Enable: true})
		r := newRig(e, p, 1, cacheCfg(m), 0)
		const bytes = 256 << 20

		ptr := loadModel(t, p, r, "fn", bytes)
		if fn, got, ok := m.PinnedFn(0); !ok || fn != "fn" || got != bytes {
			t.Fatalf("after Bye: pin = (%q, %d, %v), want (fn, %d, true)", fn, got, ok, int64(bytes))
		}

		// Same function again: the attach adopts the pinned allocation at
		// the same virtual address, instantly.
		if err := r.lib.Hello(p, "fn", 1<<30); err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		got, size, tier, err := r.lib.ModelAttach(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != ptr || size != bytes || tier != modelcache.TierDevice {
			t.Fatalf("ModelAttach = (%v, %d, tier %d), want (%v, %d, tier %d)", got, size, tier, ptr, int64(bytes), modelcache.TierDevice)
		}
		if took := p.Now() - start; took > 10*time.Millisecond {
			t.Fatalf("device-tier attach took %v, should be near-instant", took)
		}
		// The adopted allocation is fully usable.
		if err := r.lib.Memset(p, got, 0, 1<<20); err != nil {
			t.Fatal(err)
		}
		if err := r.lib.ModelPersist(p, got); err != nil {
			t.Fatal(err)
		}
		r.lib.FlushBatch(p)
		if err := r.lib.Bye(p); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := m.PinnedFn(0); !ok {
			t.Fatal("model not re-pinned after second session")
		}
		st := m.Stats()
		if st.DeviceHits != 1 || st.Misses != 1 || st.Pins != 2 {
			t.Fatalf("stats = %+v, want 1 device hit, 1 miss, 2 pins", st)
		}
	})
}

func TestForeignHelloEvictsPinToHostTier(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		m := modelcache.NewManager(modelcache.Config{Enable: true})
		r := newRig(e, p, 1, cacheCfg(m), 0)
		const bytes = 128 << 20

		oldPtr := loadModel(t, p, r, "fn1", bytes)

		// A different function takes the server: the pin must not survive
		// on-device (single-tenant pinning) — it demotes to the host tier.
		if err := r.lib.Hello(p, "fn2", 1<<30); err != nil {
			t.Fatal(err)
		}
		if ptr, _, tier, err := r.lib.ModelAttach(p); err != nil || ptr != 0 || tier != modelcache.TierMiss {
			t.Fatalf("fn2 attach = (%v, tier %d, %v), want a miss", ptr, tier, err)
		}
		r.lib.FlushBatch(p)
		if err := r.lib.Bye(p); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := m.PinnedFn(0); ok {
			t.Fatal("fn1 pin survived a foreign session")
		}
		if !m.Host().Peek(modelcache.StateKey("fn1")) {
			t.Fatal("evicted model not staged to the host tier")
		}
		if m.Stats().SwapOutBytes != bytes {
			t.Fatalf("swap-out bytes = %d, want %d", m.Stats().SwapOutBytes, int64(bytes))
		}

		// fn1 returns: host-tier hit — a *fresh* allocation is restaged;
		// the evicted device pointer is never handed back stale.
		if err := r.lib.Hello(p, "fn1", 1<<30); err != nil {
			t.Fatal(err)
		}
		ptr, size, tier, err := r.lib.ModelAttach(p)
		if err != nil {
			t.Fatal(err)
		}
		if tier != modelcache.TierHost || size != bytes {
			t.Fatalf("fn1 re-attach = tier %d size %d, want host tier %d size %d", tier, size, modelcache.TierHost, int64(bytes))
		}
		if ptr == oldPtr {
			t.Fatal("host-tier attach returned the evicted device pointer")
		}
		if err := r.lib.Memset(p, ptr, 0, 1<<20); err != nil {
			t.Fatal(err)
		}
		r.lib.FlushBatch(p)
		if err := r.lib.Bye(p); err != nil {
			t.Fatal(err)
		}
	})
}

func TestEvictModelRequestFreesIdlePin(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		m := modelcache.NewManager(modelcache.Config{Enable: true})
		r := newRig(e, p, 1, cacheCfg(m), 0)
		loadModel(t, p, r, "fn", 64<<20)
		if _, _, ok := m.PinnedFn(0); !ok {
			t.Fatal("no pin to evict")
		}
		done := sim.NewQueue[struct{}](e)
		r.srv.Inbox.Send(remoting.Request{Ctrl: EvictModelRequest{Done: done}})
		done.Recv(p)
		if _, _, ok := m.PinnedFn(0); ok {
			t.Fatal("pin survived EvictModelRequest")
		}
		if !m.Host().Peek(modelcache.StateKey("fn")) {
			t.Fatal("evicted model not in the host tier")
		}
	})
}

func TestPinnedModelMigratesWithServer(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		m := modelcache.NewManager(modelcache.Config{Enable: true})
		r := newRig(e, p, 2, cacheCfg(m), 0)
		const bytes = 256 << 20

		ptr := loadModel(t, p, r, "fn", bytes)
		if m.PinnedBytes(0) != bytes {
			t.Fatalf("pin accounted %d bytes on GPU 0, want %d", m.PinnedBytes(0), int64(bytes))
		}

		// Move the idle server to GPU 1. The pinned reservation rides the
		// VA-preserving migration walk; the cache accounting follows.
		done := sim.NewQueue[time.Duration](e)
		r.srv.Inbox.Send(remoting.Request{Ctrl: MigrateRequest{TargetDev: 1, Done: done}})
		done.Recv(p)
		if m.PinnedBytes(0) != 0 || m.PinnedBytes(1) != bytes {
			t.Fatalf("pin accounting after migration: gpu0=%d gpu1=%d, want 0 and %d", m.PinnedBytes(0), m.PinnedBytes(1), int64(bytes))
		}

		// The next session adopts the model at the same virtual address and
		// uses it on the new GPU — no stale pointer, no reload.
		if err := r.lib.Hello(p, "fn", 1<<30); err != nil {
			t.Fatal(err)
		}
		got, size, tier, err := r.lib.ModelAttach(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != ptr || size != bytes || tier != modelcache.TierDevice {
			t.Fatalf("post-migration attach = (%v, %d, tier %d), want (%v, %d, tier %d)", got, size, tier, ptr, int64(bytes), modelcache.TierDevice)
		}
		if err := r.lib.Memset(p, got, 1, bytes); err != nil {
			t.Fatal(err)
		}
		r.lib.FlushBatch(p)
		if err := r.lib.Bye(p); err != nil {
			t.Fatal(err)
		}
	})
}
