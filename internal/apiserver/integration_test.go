package apiserver

import (
	"errors"
	"testing"
	"time"

	"dgsf/internal/cuda"
	"dgsf/internal/cudalibs"
	"dgsf/internal/gpu"
	"dgsf/internal/guest"
	"dgsf/internal/native"
	"dgsf/internal/remoting"
	"dgsf/internal/remoting/gen"
	"dgsf/internal/sim"
)

// rig wires devices, one API server and one guest library inside a running
// simulation.
type rig struct {
	devs []*gpu.Device
	srv  *Server
	lib  *guest.Lib
}

// newRig builds a GPU-server-side runtime over n fast devices, starts an API
// server daemon and connects a guest at the given optimization tier.
func newRig(e *sim.Engine, p *sim.Proc, n int, cfg Config, opt guest.Opt) *rig {
	devs := make([]*gpu.Device, n)
	for i := range devs {
		c := gpu.V100Config(i)
		c.CopyLat, c.KernelLat = 0, 0
		devs[i] = gpu.New(e, c)
	}
	rt := cuda.NewRuntime(e, devs, cfg.CUDACosts)
	srv := NewServer(e, rt, cfg)
	p.SpawnDaemon("apiserver", srv.Run)
	conn := remoting.Dial(e, &remoting.Listener{Incoming: srv.Inbox}, remoting.NetProfile{RTT: 50 * time.Microsecond})
	return &rig{devs: devs, srv: srv, lib: guest.New(conn, opt)}
}

func fastCfg() Config {
	return Config{PoolHandles: true}
}

func TestSessionLifecycleAndMemoryLimit(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		r := newRig(e, p, 1, fastCfg(), guest.OptAll)
		lib := r.lib
		if err := lib.Hello(p, "fn", 1<<30); err != nil {
			t.Fatal(err)
		}
		// Double Hello fails: one function at a time per API server.
		if err := lib.Hello(p, "fn2", 1<<30); err == nil {
			t.Fatal("second Hello succeeded")
		}
		ptr, err := lib.Malloc(p, 512<<20)
		if err != nil {
			t.Fatal(err)
		}
		// Exceeding the declared limit fails even though the GPU has room.
		if _, err := lib.Malloc(p, 600<<20); !errors.Is(err, cuda.ErrMemoryAllocation) {
			t.Fatalf("over-limit Malloc = %v, want ErrMemoryAllocation", err)
		}
		free, total, err := lib.MemGetInfo(p)
		if err != nil || total != 1<<30 || free != 512<<20 {
			t.Fatalf("MemGetInfo = (%d, %d, %v)", free, total, err)
		}
		if err := lib.Free(p, ptr); err != nil {
			t.Fatal(err)
		}
		lib.FlushBatch(p)
		if err := lib.Bye(p); err != nil {
			t.Fatal(err)
		}
		// Session memory is fully reclaimed (only prewarm footprint stays).
		if got := r.srv.Stats().SessionMem; got != 0 {
			t.Fatalf("session memory after Bye = %d", got)
		}
	})
}

func TestDeviceVirtualization(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		r := newRig(e, p, 4, fastCfg(), guest.OptNone)
		lib := r.lib
		if err := lib.Hello(p, "fn", 1<<30); err != nil {
			t.Fatal(err)
		}
		// The GPU server has 4 GPUs; the function must see exactly 1.
		if n, _ := lib.GetDeviceCount(p); n != 1 {
			t.Fatalf("GetDeviceCount = %d, want 1", n)
		}
		prop, err := lib.GetDeviceProperties(p, 0)
		if err != nil || prop.Name == "" {
			t.Fatalf("props = %+v, %v", prop, err)
		}
		if _, err := lib.GetDeviceProperties(p, 1); !errors.Is(err, cuda.ErrInvalidDevice) {
			t.Fatalf("props of device 1 = %v, want ErrInvalidDevice", err)
		}
		if err := lib.SetDevice(p, 0); err != nil {
			t.Fatal(err)
		}
		if err := lib.SetDevice(p, 1); !errors.Is(err, cuda.ErrInvalidDevice) {
			t.Fatalf("SetDevice(1) = %v, want ErrInvalidDevice", err)
		}
	})
}

func TestPrewarmRemovesInitFromCriticalPath(t *testing.T) {
	costs := cuda.DefaultCosts()
	costs.InitJitter = 0
	libCosts := cudalibs.DefaultCosts()

	run := func(pool bool) (hello, dnn time.Duration) {
		e := sim.NewEngine(1)
		e.Run("root", func(p *sim.Proc) {
			cfg := Config{PoolHandles: pool, CUDACosts: costs, LibCosts: libCosts}
			r := newRig(e, p, 1, cfg, guest.OptAll)
			// Let the server finish pre-warming before the function arrives.
			p.Sleep(10 * time.Second)
			start := p.Now()
			if err := r.lib.Hello(p, "fn", 1<<30); err != nil {
				t.Fatal(err)
			}
			hello = p.Now() - start
			start = p.Now()
			if _, err := r.lib.DnnCreate(p); err != nil {
				t.Fatal(err)
			}
			dnn = p.Now() - start
		})
		return
	}

	hello, dnn := run(true)
	if hello > 100*time.Millisecond {
		t.Errorf("pre-warmed Hello took %v, want ~0 (init off critical path)", hello)
	}
	if dnn > 100*time.Millisecond {
		t.Errorf("pooled DnnCreate took %v, want ~0", dnn)
	}
	hello, dnn = run(false)
	if hello < 3*time.Second {
		t.Errorf("cold Hello took %v, want >= 3s (CUDA init on critical path)", hello)
	}
	if dnn < 1200*time.Millisecond {
		t.Errorf("cold DnnCreate took %v, want >= 1.2s", dnn)
	}
}

// script exercises the full API surface against any backend and returns the
// observed device-content fingerprints. Identical results across backends
// demonstrate remoting transparency (challenge C1).
func script(p *sim.Proc, api gen.API) []uint64 {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(api.Hello(p, "script", 4<<30))
	fns, err := api.RegisterKernels(p, []string{"saxpy", "reduce"})
	must(err)
	a, err := api.Malloc(p, 1<<20)
	must(err)
	b, err := api.Malloc(p, 2<<20)
	must(err)
	must(api.Memset(p, a, 0, 1<<20))
	must(api.MemcpyH2D(p, b, gpu.HostBuffer{FP: 42, Size: 2 << 20}, 2<<20))
	must(api.LaunchKernel(p, cuda.LaunchParams{Fn: fns[0], Grid: [3]int{64, 1, 1}, Block: [3]int{256, 1, 1}, Duration: time.Millisecond, Mutates: []cuda.DevPtr{a}}))
	must(api.LaunchKernel(p, cuda.LaunchParams{Fn: fns[1], Duration: time.Millisecond, Mutates: []cuda.DevPtr{a, b}}))
	must(api.StreamSynchronize(p, 0))
	dnn, err := api.DnnCreate(p)
	must(err)
	td, err := api.DnnCreateTensorDescriptor(p)
	must(err)
	must(api.DnnSetTensorDescriptor(p, td))
	must(api.DnnForward(p, dnn, "conv", time.Millisecond, []cuda.DevPtr{b}, []uint64{uint64(td)}))
	must(api.DnnDestroyTensorDescriptor(p, td))
	blas, err := api.BlasCreate(p)
	must(err)
	must(api.BlasGemm(p, blas, time.Millisecond, []cuda.DevPtr{a}))
	must(api.DeviceSynchronize(p))
	ha, err := api.MemcpyD2H(p, a, 1<<20)
	must(err)
	hb, err := api.MemcpyD2H(p, b, 2<<20)
	must(err)
	must(api.Bye(p))
	return []uint64{ha.FP, hb.FP}
}

func TestRemotingTransparency(t *testing.T) {
	// The same program must observe identical device contents natively and
	// through DGSF at every optimization tier.
	results := map[string][]uint64{}

	// Native baseline.
	{
		e := sim.NewEngine(1)
		e.Run("root", func(p *sim.Proc) {
			cfg := gpu.V100Config(0)
			cfg.CopyLat, cfg.KernelLat = 0, 0
			dev := gpu.New(e, cfg)
			rt := cuda.NewRuntime(e, []*gpu.Device{dev}, cuda.Costs{})
			results["native"] = script(p, native.New(rt, cudalibs.Costs{}))
		})
	}
	for _, tc := range []struct {
		name string
		opt  guest.Opt
	}{
		{"dgsf-noopt", guest.OptNone},
		{"dgsf-desc", guest.OptLocalDescriptors},
		{"dgsf-all", guest.OptAll},
	} {
		e := sim.NewEngine(1)
		e.Run("root", func(p *sim.Proc) {
			r := newRig(e, p, 2, fastCfg(), tc.opt)
			results[tc.name] = script(p, r.lib)
			// Batched launches must all have executed before D2H, so the
			// fingerprints must match regardless of batching.
		})
	}
	want := results["native"]
	if len(want) != 2 || want[0] == 0 {
		t.Fatalf("native script results look wrong: %v", want)
	}
	for name, got := range results {
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s fingerprint[%d] = %x, want %x (native)", name, i, got[i], want[i])
			}
		}
	}
}

func TestOptimizationsReduceForwardedCalls(t *testing.T) {
	counts := map[guest.Opt]guest.Stats{}
	for _, opt := range []guest.Opt{guest.OptNone, guest.OptLocalDescriptors, guest.OptAll} {
		e := sim.NewEngine(1)
		e.Run("root", func(p *sim.Proc) {
			r := newRig(e, p, 1, fastCfg(), opt)
			script(p, r.lib)
			counts[opt] = r.lib.Stats()
		})
	}
	none, desc, all := counts[guest.OptNone], counts[guest.OptLocalDescriptors], counts[guest.OptAll]
	if none.Localized != 0 {
		t.Errorf("OptNone localized %d calls, want 0", none.Localized)
	}
	if desc.Forwarded() >= none.Forwarded() {
		t.Errorf("descriptor localization did not reduce forwarded calls: %d vs %d", desc.Forwarded(), none.Forwarded())
	}
	if all.Roundtrips() >= desc.Roundtrips() {
		t.Errorf("batching did not reduce round trips: %d vs %d", all.Roundtrips(), desc.Roundtrips())
	}
	if all.Batches == 0 || all.Batched == 0 {
		t.Errorf("OptAll produced no batches: %+v", all)
	}
}

func TestMigrationPreservesAddressSpaceAndContents(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		r := newRig(e, p, 2, fastCfg(), guest.OptNone)
		lib := r.lib
		must := func(err error) {
			if err != nil {
				t.Fatal(err)
			}
		}
		must(lib.Hello(p, "fn", 4<<30))
		fns, err := lib.RegisterKernels(p, []string{"touch"})
		must(err)
		a, err := lib.Malloc(p, 256<<20)
		must(err)
		b, err := lib.Malloc(p, 64<<20)
		must(err)
		st, err := lib.StreamCreate(p)
		must(err)
		must(lib.MemcpyH2D(p, a, gpu.HostBuffer{FP: 7, Size: 256 << 20}, 256<<20))
		must(lib.MemcpyH2D(p, b, gpu.HostBuffer{FP: 8, Size: 64 << 20}, 64<<20))
		preA, err := lib.MemcpyD2H(p, a, 256<<20)
		must(err)

		dev0Before := r.devs[0].UsedBytes()
		if dev0Before == 0 {
			t.Fatal("no memory on device 0 before migration")
		}

		// Force a migration to GPU 1 at an API call boundary.
		done := sim.NewQueue[time.Duration](e)
		r.srv.Inbox.Send(remoting.Request{Ctrl: MigrateRequest{TargetDev: 1, Done: done}})
		migTime, _ := done.Recv(p)
		if migTime <= 0 {
			t.Fatal("migration reported zero duration")
		}
		if got := r.srv.CurrentDev(); got != 1 {
			t.Fatalf("CurrentDev after migration = %d", got)
		}
		// The function's memory now lives on device 1.
		if r.devs[1].UsedBytes() < 256<<20 {
			t.Fatalf("device 1 holds %d bytes after migration", r.devs[1].UsedBytes())
		}

		// The same pointers, stream and kernel handles keep working.
		postA, err := lib.MemcpyD2H(p, a, 256<<20)
		must(err)
		if postA.FP != preA.FP {
			t.Fatalf("contents changed across migration: %x vs %x", postA.FP, preA.FP)
		}
		must(lib.LaunchKernel(p, cuda.LaunchParams{Fn: fns[0], Stream: st, Duration: time.Millisecond, Mutates: []cuda.DevPtr{a, b}}))
		must(lib.StreamSynchronize(p, st))
		mutA, err := lib.MemcpyD2H(p, a, 256<<20)
		must(err)
		if mutA.FP == postA.FP {
			t.Fatal("kernel after migration did not execute")
		}
		must(lib.Bye(p))
		// After Bye the server returned home and released everything on
		// device 1.
		if got := r.srv.CurrentDev(); got != 0 {
			t.Fatalf("server did not return home: dev %d", got)
		}
		if got := r.devs[1].UsedBytes(); got != 0 {
			t.Fatalf("device 1 still holds %d bytes after Bye", got)
		}
	})
}

func TestMigrationCostScalesWithMemory(t *testing.T) {
	move := func(bytes int64) time.Duration {
		e := sim.NewEngine(1)
		var d time.Duration
		e.Run("root", func(p *sim.Proc) {
			r := newRig(e, p, 2, fastCfg(), guest.OptNone)
			if err := r.lib.Hello(p, "fn", 15<<30); err != nil {
				t.Fatal(err)
			}
			ptr, err := r.lib.Malloc(p, bytes)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.lib.Memset(p, ptr, 1, bytes); err != nil {
				t.Fatal(err)
			}
			done := sim.NewQueue[time.Duration](e)
			r.srv.Inbox.Send(remoting.Request{Ctrl: MigrateRequest{TargetDev: 1, Done: done}})
			d, _ = done.Recv(p)
		})
		return d
	}
	small, large := move(323<<20), move(13194<<20)
	if large < 3*small {
		t.Fatalf("migration cost not memory-dominated: %v (323MB) vs %v (13194MB)", small, large)
	}
	// Table V: ~2.1s for 13194 MB at ~6.5 GB/s effective.
	if large < 1500*time.Millisecond || large > 3*time.Second {
		t.Fatalf("13GB migration took %v, want ~2s", large)
	}
}

func TestBatchedErrorSurfacesThroughGetLastError(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		r := newRig(e, p, 1, fastCfg(), guest.OptAll)
		lib := r.lib
		if err := lib.Hello(p, "fn", 1<<30); err != nil {
			t.Fatal(err)
		}
		// Launch with a bogus function pointer: batched, so no immediate
		// error...
		if err := lib.LaunchKernel(p, cuda.LaunchParams{Fn: cuda.FnPtr(0xDEAD)}); err != nil {
			t.Fatalf("batched launch returned inline error %v", err)
		}
		lib.FlushBatch(p)
		// ...but the sticky error reports it afterwards.
		code, err := lib.GetLastError(p)
		if err != nil || code == 0 {
			t.Fatalf("GetLastError = (%d, %v), want nonzero code", code, err)
		}
		// And it resets, like cudaGetLastError.
		if code, _ := lib.GetLastError(p); code != 0 {
			t.Fatalf("second GetLastError = %d, want 0", code)
		}
	})
}

func TestPooledHandlesSurviveSessions(t *testing.T) {
	costs := cuda.DefaultCosts()
	costs.InitJitter = 0
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		cfg := Config{PoolHandles: true, CUDACosts: costs, LibCosts: cudalibs.DefaultCosts()}
		r := newRig(e, p, 1, cfg, guest.OptAll)
		p.Sleep(10 * time.Second) // prewarm
		for i := 0; i < 3; i++ {
			if err := r.lib.Hello(p, "fn", 1<<30); err != nil {
				t.Fatal(err)
			}
			start := p.Now()
			h, err := r.lib.DnnCreate(p)
			if err != nil {
				t.Fatal(err)
			}
			if d := p.Now() - start; d > 50*time.Millisecond {
				t.Fatalf("session %d: DnnCreate took %v, pool not reused", i, d)
			}
			if err := r.lib.DnnDestroy(p, h); err != nil {
				t.Fatal(err)
			}
			r.lib.FlushBatch(p)
			if err := r.lib.Bye(p); err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestServerStatsTrackActivity(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		r := newRig(e, p, 1, fastCfg(), guest.OptNone)
		script(p, r.lib)
		st := r.srv.Stats()
		if st.CallsHandled == 0 || st.Kernels == 0 {
			t.Fatalf("stats = %+v", st)
		}
		if st.Busy {
			t.Fatal("server still busy after Bye")
		}
	})
}

func TestCallCountsByName(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		r := newRig(e, p, 1, fastCfg(), guest.OptAll)
		script(p, r.lib)
		counts := r.srv.CallCounts()
		if counts["Malloc"] != 2 {
			t.Errorf("Malloc count = %d, want 2", counts["Malloc"])
		}
		if counts["LaunchKernel"] != 2 {
			t.Errorf("LaunchKernel count = %d, want 2 (batched launches must be counted)", counts["LaunchKernel"])
		}
		if counts["Hello"] != 1 || counts["Bye"] != 1 {
			t.Errorf("session calls = %d/%d", counts["Hello"], counts["Bye"])
		}
		if counts["?"] != 0 {
			t.Errorf("unknown call IDs recorded: %d", counts["?"])
		}
	})
}
