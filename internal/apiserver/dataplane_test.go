package apiserver

import (
	"errors"
	"testing"
	"time"

	"dgsf/internal/cuda"
	"dgsf/internal/dataplane"
	"dgsf/internal/gpu"
	"dgsf/internal/guest"
	"dgsf/internal/metrics"
	"dgsf/internal/modelcache"
	"dgsf/internal/remoting"
	"dgsf/internal/sim"
)

// planeRig wires one GPU server's worth of data plane: n fast devices under
// one runtime, and one API server + guest per entry in homes (the server's
// home device). All servers share the same plane, like siblings on a machine.
type planeRig struct {
	devs   []*gpu.Device
	srvs   []*Server
	guests []*guest.Lib
}

func newPlaneRig(e *sim.Engine, p *sim.Proc, n int, homes []int, pl *dataplane.Plane, cache *modelcache.Manager) *planeRig {
	devs := make([]*gpu.Device, n)
	for i := range devs {
		c := gpu.V100Config(i)
		c.CopyLat, c.KernelLat = 0, 0
		devs[i] = gpu.New(e, c)
	}
	r := &planeRig{devs: devs}
	rt := cuda.NewRuntime(e, devs, cuda.Costs{})
	for i, home := range homes {
		cfg := fastCfg()
		cfg.ID = i
		cfg.HomeDev = home
		cfg.Plane = pl
		cfg.Cache = cache
		srv := NewServer(e, rt, cfg)
		p.SpawnDaemon("apiserver", srv.Run)
		conn := remoting.Dial(e, &remoting.Listener{Incoming: srv.Inbox}, remoting.NetProfile{RTT: 50 * time.Microsecond})
		r.srvs = append(r.srvs, srv)
		r.guests = append(r.guests, guest.New(conn, guest.OptAll))
	}
	return r
}

func TestMemExportImportSameDevice(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		reg := metrics.NewRegistry()
		fab := dataplane.NewFabric(dataplane.DefaultConfig(), reg)
		pl := fab.NewPlane("gpu-a")
		r := newPlaneRig(e, p, 1, []int{0, 0}, pl, nil)
		prod, cons := r.guests[0], r.guests[1]
		const size = int64(32 << 20)

		if err := prod.Hello(p, "producer", 1<<30); err != nil {
			t.Fatal(err)
		}
		ptr, err := prod.Malloc(p, size)
		if err != nil {
			t.Fatal(err)
		}
		if err := prod.MemcpyH2D(p, ptr, gpu.HostBuffer{FP: 77, Size: size}, size); err != nil {
			t.Fatal(err)
		}
		export, xsize, err := prod.MemExport(p, ptr, "boxes")
		if err != nil || export == 0 || xsize != size {
			t.Fatalf("MemExport = (%d, %d, %v)", export, xsize, err)
		}
		// Ownership left the session: the pointer is dead for the producer.
		if _, err := prod.MemcpyD2H(p, ptr, size); err == nil {
			t.Fatal("exported pointer must be invalid for the producer")
		}

		if err := cons.Hello(p, "consumer", 1<<30); err != nil {
			t.Fatal(err)
		}
		iptr, isize, err := cons.MemImport(p, export)
		if err != nil || isize != size {
			t.Fatalf("MemImport = (%d, %d, %v)", iptr, isize, err)
		}
		buf, err := cons.MemcpyD2H(p, iptr, size)
		if err != nil {
			t.Fatal(err)
		}
		want := gpu.Mix(gpu.Mix(77, uint64(size)), uint64(size))
		if buf.FP != want {
			t.Fatalf("imported content fingerprint = %d, want %d", buf.FP, want)
		}

		// The export stays in the namespace while the mapping lives, and
		// leaves (memory freed) when the consumer drops it.
		if _, ok := fab.Lookup(export); !ok {
			t.Fatal("export must stay live while mapped")
		}
		if err := cons.Free(p, iptr); err != nil {
			t.Fatal(err)
		}
		cons.FlushBatch(p)
		if _, ok := fab.Lookup(export); ok {
			t.Fatal("export must leave the namespace after the last mapping drops")
		}
		if used := r.devs[0].UsedBytes(); used != 0 {
			t.Fatalf("device memory leaked: %d", used)
		}
		if reg.Get(dataplane.CtrBypassHits) != 1 || reg.Get(dataplane.CtrImports) != 1 {
			t.Fatalf("counters: %s", reg.String())
		}
	})
}

func TestMemImportCrossDeviceClones(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		reg := metrics.NewRegistry()
		fab := dataplane.NewFabric(dataplane.DefaultConfig(), reg)
		pl := fab.NewPlane("gpu-a")
		r := newPlaneRig(e, p, 2, []int{0, 1}, pl, nil)
		prod, cons := r.guests[0], r.guests[1]
		const size = int64(16 << 20)

		if err := prod.Hello(p, "producer", 1<<30); err != nil {
			t.Fatal(err)
		}
		ptr, err := prod.Malloc(p, size)
		if err != nil {
			t.Fatal(err)
		}
		if err := prod.MemcpyH2D(p, ptr, gpu.HostBuffer{FP: 5, Size: size}, size); err != nil {
			t.Fatal(err)
		}
		export, _, err := prod.MemExport(p, ptr, "t")
		if err != nil {
			t.Fatal(err)
		}
		if err := cons.Hello(p, "consumer", 1<<30); err != nil {
			t.Fatal(err)
		}
		iptr, isize, err := cons.MemImport(p, export)
		if err != nil || isize != size {
			t.Fatalf("cross-device MemImport = (%d, %d, %v)", iptr, isize, err)
		}
		// The clone consumed the export: source memory freed, namespace clean.
		if _, ok := fab.Lookup(export); ok {
			t.Fatal("consumed export must leave the namespace")
		}
		if used := r.devs[0].UsedBytes(); used != 0 {
			t.Fatalf("source device memory leaked: %d", used)
		}
		buf, err := cons.MemcpyD2H(p, iptr, size)
		if err != nil {
			t.Fatal(err)
		}
		want := gpu.Mix(gpu.Mix(5, uint64(size)), uint64(size))
		if buf.FP != want {
			t.Fatalf("cloned content fingerprint = %d, want %d", buf.FP, want)
		}
		if reg.Get(dataplane.CtrBypassHits) != 1 {
			t.Fatalf("cross-device import must still count as a bypass: %s", reg.String())
		}
	})
}

func TestPeerCopyAcrossServers(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		reg := metrics.NewRegistry()
		fab := dataplane.NewFabric(dataplane.DefaultConfig(), reg)
		plA, plB := fab.NewPlane("gpu-a"), fab.NewPlane("gpu-b")
		ra := newPlaneRig(e, p, 1, []int{0}, plA, nil)
		rb := newPlaneRig(e, p, 1, []int{0}, plB, nil)
		prod, cons := ra.guests[0], rb.guests[0]
		const size = int64(8 << 20)

		if err := prod.Hello(p, "producer", 1<<30); err != nil {
			t.Fatal(err)
		}
		ptr, err := prod.Malloc(p, size)
		if err != nil {
			t.Fatal(err)
		}
		if err := prod.MemcpyH2D(p, ptr, gpu.HostBuffer{FP: 9, Size: size}, size); err != nil {
			t.Fatal(err)
		}
		export, _, err := prod.MemExport(p, ptr, "t")
		if err != nil {
			t.Fatal(err)
		}
		if err := cons.Hello(p, "consumer", 1<<30); err != nil {
			t.Fatal(err)
		}
		// A remote export cannot be imported in place.
		if _, _, err := cons.MemImport(p, export); !errors.Is(err, cuda.ErrInvalidDevice) {
			t.Fatalf("remote MemImport = %v, want ErrInvalidDevice", err)
		}
		iptr, isize, err := cons.PeerCopy(p, export)
		if err != nil || isize != size {
			t.Fatalf("PeerCopy = (%d, %d, %v)", iptr, isize, err)
		}
		buf, err := cons.MemcpyD2H(p, iptr, size)
		if err != nil {
			t.Fatal(err)
		}
		want := gpu.Mix(gpu.Mix(9, uint64(size)), uint64(size))
		if buf.FP != want {
			t.Fatalf("peer-copied fingerprint = %d, want %d", buf.FP, want)
		}
		if _, ok := fab.Lookup(export); ok {
			t.Fatal("peer copy must consume the export")
		}
		if used := ra.devs[0].UsedBytes(); used != 0 {
			t.Fatalf("producer-side memory leaked: %d", used)
		}
		if reg.Get(dataplane.CtrPeerCopies) != 1 || reg.Get(dataplane.CtrPeerBytes) != size {
			t.Fatalf("peer counters: %s", reg.String())
		}
		if reg.Get(dataplane.CtrBypassHits) != 0 {
			t.Fatal("a fabric transfer is not a same-server bypass")
		}
	})
}

func TestImportFromFailedPlane(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		fab := dataplane.NewFabric(dataplane.DefaultConfig(), nil)
		plA, plB := fab.NewPlane("gpu-a"), fab.NewPlane("gpu-b")
		ra := newPlaneRig(e, p, 1, []int{0, 0}, plA, nil)
		rb := newPlaneRig(e, p, 1, []int{0}, plB, nil)
		prod, sib, cons := ra.guests[0], ra.guests[1], rb.guests[0]

		if err := prod.Hello(p, "producer", 1<<30); err != nil {
			t.Fatal(err)
		}
		ptr, err := prod.Malloc(p, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		export, _, err := prod.MemExport(p, ptr, "t")
		if err != nil {
			t.Fatal(err)
		}

		plA.Fail()

		if err := sib.Hello(p, "sibling", 1<<30); err != nil {
			t.Fatal(err)
		}
		if _, _, err := sib.MemImport(p, export); !errors.Is(err, dataplane.ErrHandoffLost) {
			t.Fatalf("import from failed plane = %v, want ErrHandoffLost", err)
		}
		if err := cons.Hello(p, "consumer", 1<<30); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cons.PeerCopy(p, export); !errors.Is(err, dataplane.ErrHandoffLost) {
			t.Fatalf("peer copy from failed plane = %v, want ErrHandoffLost", err)
		}
	})
}

func TestMemExportRefusesImportedPointer(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		fab := dataplane.NewFabric(dataplane.DefaultConfig(), nil)
		pl := fab.NewPlane("gpu-a")
		r := newPlaneRig(e, p, 1, []int{0, 0}, pl, nil)
		prod, cons := r.guests[0], r.guests[1]

		if err := prod.Hello(p, "producer", 1<<30); err != nil {
			t.Fatal(err)
		}
		ptr, err := prod.Malloc(p, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		export, _, err := prod.MemExport(p, ptr, "t")
		if err != nil {
			t.Fatal(err)
		}
		if err := cons.Hello(p, "consumer", 1<<30); err != nil {
			t.Fatal(err)
		}
		iptr, _, err := cons.MemImport(p, export)
		if err != nil {
			t.Fatal(err)
		}
		// Re-exporting a zero-copy mapping would fork ownership.
		if _, _, err := cons.MemExport(p, iptr, "fork"); !errors.Is(err, cuda.ErrInvalidValue) {
			t.Fatalf("re-export of imported pointer = %v, want ErrInvalidValue", err)
		}
	})
}

func TestModelBroadcastSeedCloneReseed(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		reg := metrics.NewRegistry()
		fab := dataplane.NewFabric(dataplane.DefaultConfig(), reg)
		pl := fab.NewPlane("gpu-a")
		cache := modelcache.NewManager(modelcache.Config{Enable: true})
		const modelBytes = int64(64 << 20)
		key := modelcache.StateKey("fn")
		cache.Host().Put(key, modelBytes)

		r := newPlaneRig(e, p, 1, []int{0, 0}, pl, cache)
		a, b := r.guests[0], r.guests[1]

		// First session seeds from the host tier, second clones on-device.
		if err := a.Hello(p, "fn", 1<<30); err != nil {
			t.Fatal(err)
		}
		_, size, src, err := a.ModelBroadcast(p)
		if err != nil || src != dataplane.SrcHostSeed || size != modelBytes {
			t.Fatalf("first broadcast = (size=%d, src=%d, %v)", size, src, err)
		}
		if err := b.Hello(p, "fn", 1<<30); err != nil {
			t.Fatal(err)
		}
		_, size, src, err = b.ModelBroadcast(p)
		if err != nil || src != dataplane.SrcClone || size != modelBytes {
			t.Fatalf("second broadcast = (size=%d, src=%d, %v)", size, src, err)
		}

		// The seeder leaving drops the source; the next asker re-seeds.
		if err := a.Bye(p); err != nil {
			t.Fatal(err)
		}
		if err := a.Hello(p, "fn", 1<<30); err != nil {
			t.Fatal(err)
		}
		_, _, src, err = a.ModelBroadcast(p)
		if err != nil || src != dataplane.SrcHostSeed {
			t.Fatalf("post-drop broadcast = (src=%d, %v), want a fresh host seed", src, err)
		}

		if pl.HostLoads(key.Name) != 2 {
			t.Fatalf("host loads = %d, want 2", pl.HostLoads(key.Name))
		}
		if reg.Get(dataplane.CtrBroadcastLoads) != 2 || reg.Get(dataplane.CtrBroadcastClones) != 1 {
			t.Fatalf("broadcast counters: %s", reg.String())
		}

		// A function with nothing staged gets a miss, not an error.
		if err := b.Bye(p); err != nil {
			t.Fatal(err)
		}
		if err := b.Hello(p, "unknown-fn", 1<<30); err != nil {
			t.Fatal(err)
		}
		ptr, _, src, err := b.ModelBroadcast(p)
		if err != nil || ptr != 0 || src != dataplane.SrcMiss {
			t.Fatalf("unstaged broadcast = (ptr=%d, src=%d, %v), want a miss", ptr, src, err)
		}
	})
}
