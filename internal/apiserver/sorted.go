package apiserver

import (
	"cmp"
	"slices"
)

// sortedKeys returns m's keys in ascending order. Teardown, scavenge and
// migration loops walk maps of handles while emitting simulated events;
// iterating in map order would randomize event order across runs and break
// the simulator's same-seed-same-trace guarantee (simdeterminism).
func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
