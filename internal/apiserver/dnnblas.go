package apiserver

import (
	"time"

	"dgsf/internal/cuda"
	"dgsf/internal/cudalibs"
	"dgsf/internal/sim"
)

// cuDNN / cuBLAS backend. Handle-creating calls are served from the
// pre-created pool when the PoolHandles optimization is on, "simply
// returning one of them when the API is called" (§V-A); otherwise the full
// creation cost lands on the function's critical path.

// DnnCreate mirrors cudnnCreate.
func (s *Server) DnnCreate(p *sim.Proc) (cudalibs.DNNHandle, error) {
	sess := s.sess
	if sess == nil {
		return 0, cuda.ErrNotInitialized
	}
	var real cudalibs.DNNHandle
	if n := len(s.pooledDNN); n > 0 {
		real = s.pooledDNN[n-1]
		s.pooledDNN = s.pooledDNN[:n-1]
		// A pooled handle may have been created on the home context; make
		// sure it is bound to the device we currently execute on.
		if ctx, ok := s.libs.DNNContext(real); ok && ctx.Device().ID() != s.curDev {
			cur, err := s.rt.Context(p, s.curDev)
			if err != nil {
				return 0, err
			}
			if err := s.libs.RebindDNN(p, real, cur); err != nil {
				return 0, err
			}
		}
	} else {
		ctx, err := s.ctx(p)
		if err != nil {
			return 0, err
		}
		h, err := s.libs.DNNCreate(p, ctx)
		if err != nil {
			return 0, err
		}
		real = h
	}
	sess.nextVirt++
	virt := cudalibs.DNNHandle(0x7200_0000 + sess.nextVirt)
	sess.dnns[virt] = real
	return virt, nil
}

// DnnDestroy returns the handle to the pool (or destroys it when pooling is
// off).
func (s *Server) DnnDestroy(p *sim.Proc, h cudalibs.DNNHandle) error {
	sess := s.sess
	if sess == nil {
		return cuda.ErrNotInitialized
	}
	real, ok := sess.dnns[h]
	if !ok {
		return cuda.ErrInvalidResourceHandle
	}
	delete(sess.dnns, h)
	s.releaseDNN(p, real)
	return nil
}

// DnnSetStream mirrors cudnnSetStream; stream binding is implicit in this
// model, so only handle validity is checked.
func (s *Server) DnnSetStream(p *sim.Proc, h cudalibs.DNNHandle, stream cuda.StreamHandle) error {
	sess := s.sess
	if sess == nil {
		return cuda.ErrNotInitialized
	}
	if _, ok := sess.dnns[h]; !ok {
		return cuda.ErrInvalidResourceHandle
	}
	if stream != 0 {
		if _, err := s.translateStream(stream); err != nil {
			return err
		}
	}
	return nil
}

// DnnGetConvolutionWorkspaceSize mirrors its cuDNN namesake.
func (s *Server) DnnGetConvolutionWorkspaceSize(p *sim.Proc, d cudalibs.Descriptor) (int64, error) {
	sess := s.sess
	if sess == nil {
		return 0, cuda.ErrNotInitialized
	}
	if !sess.descs[d] {
		return 0, cuda.ErrInvalidResourceHandle
	}
	return 64 << 20, nil
}

// DnnForward translates the virtual handle and runs the primitive.
func (s *Server) DnnForward(p *sim.Proc, h cudalibs.DNNHandle, op string, dur time.Duration, bufs []cuda.DevPtr, descs []uint64) error {
	sess := s.sess
	if sess == nil {
		return cuda.ErrNotInitialized
	}
	real, ok := sess.dnns[h]
	if !ok {
		return cuda.ErrInvalidResourceHandle
	}
	return s.libs.DNNForward(p, real, op, dur, bufs)
}

// BlasCreate mirrors cublasCreate, pool-backed like DnnCreate.
func (s *Server) BlasCreate(p *sim.Proc) (cudalibs.BLASHandle, error) {
	sess := s.sess
	if sess == nil {
		return 0, cuda.ErrNotInitialized
	}
	var real cudalibs.BLASHandle
	if n := len(s.pooledBLAS); n > 0 {
		real = s.pooledBLAS[n-1]
		s.pooledBLAS = s.pooledBLAS[:n-1]
	} else {
		ctx, err := s.ctx(p)
		if err != nil {
			return 0, err
		}
		h, err := s.libs.BLASCreate(p, ctx)
		if err != nil {
			return 0, err
		}
		real = h
	}
	sess.nextVirt++
	virt := cudalibs.BLASHandle(0x7300_0000 + sess.nextVirt)
	sess.blass[virt] = real
	return virt, nil
}

// BlasDestroy returns the handle to the pool (or destroys it).
func (s *Server) BlasDestroy(p *sim.Proc, h cudalibs.BLASHandle) error {
	sess := s.sess
	if sess == nil {
		return cuda.ErrNotInitialized
	}
	real, ok := sess.blass[h]
	if !ok {
		return cuda.ErrInvalidResourceHandle
	}
	delete(sess.blass, h)
	s.releaseBLAS(p, real)
	return nil
}

// BlasSetStream mirrors cublasSetStream.
func (s *Server) BlasSetStream(p *sim.Proc, h cudalibs.BLASHandle, stream cuda.StreamHandle) error {
	sess := s.sess
	if sess == nil {
		return cuda.ErrNotInitialized
	}
	if _, ok := sess.blass[h]; !ok {
		return cuda.ErrInvalidResourceHandle
	}
	if stream != 0 {
		if _, err := s.translateStream(stream); err != nil {
			return err
		}
	}
	return nil
}

// BlasGemm translates the virtual handle and runs the GEMM.
func (s *Server) BlasGemm(p *sim.Proc, h cudalibs.BLASHandle, dur time.Duration, bufs []cuda.DevPtr) error {
	sess := s.sess
	if sess == nil {
		return cuda.ErrNotInitialized
	}
	real, ok := sess.blass[h]
	if !ok {
		return cuda.ErrInvalidResourceHandle
	}
	return s.libs.GEMM(p, real, dur, bufs)
}

// --- descriptor backend (for unoptimized guests that remote them) ---

func (s *Server) createDesc(p *sim.Proc, kind cudalibs.DescriptorKind) (cudalibs.Descriptor, error) {
	sess := s.sess
	if sess == nil {
		return 0, cuda.ErrNotInitialized
	}
	d, err := s.libs.CreateDescriptor(p, kind)
	if err != nil {
		return 0, err
	}
	sess.descs[d] = true
	return d, nil
}

func (s *Server) setDesc(p *sim.Proc, d cudalibs.Descriptor) error {
	sess := s.sess
	if sess == nil {
		return cuda.ErrNotInitialized
	}
	if !sess.descs[d] {
		return cuda.ErrInvalidResourceHandle
	}
	return s.libs.SetDescriptor(p, d)
}

func (s *Server) destroyDesc(p *sim.Proc, d cudalibs.Descriptor) error {
	sess := s.sess
	if sess == nil {
		return cuda.ErrNotInitialized
	}
	if !sess.descs[d] {
		return cuda.ErrInvalidResourceHandle
	}
	delete(sess.descs, d)
	return s.libs.DestroyDescriptor(p, d)
}

// DnnCreateTensorDescriptor mirrors cudnnCreateTensorDescriptor.
func (s *Server) DnnCreateTensorDescriptor(p *sim.Proc) (cudalibs.Descriptor, error) {
	return s.createDesc(p, cudalibs.TensorDescriptor)
}

// DnnSetTensorDescriptor mirrors cudnnSetTensorNdDescriptor.
func (s *Server) DnnSetTensorDescriptor(p *sim.Proc, d cudalibs.Descriptor) error {
	return s.setDesc(p, d)
}

// DnnDestroyTensorDescriptor mirrors cudnnDestroyTensorDescriptor.
func (s *Server) DnnDestroyTensorDescriptor(p *sim.Proc, d cudalibs.Descriptor) error {
	return s.destroyDesc(p, d)
}

// DnnCreateFilterDescriptor mirrors cudnnCreateFilterDescriptor.
func (s *Server) DnnCreateFilterDescriptor(p *sim.Proc) (cudalibs.Descriptor, error) {
	return s.createDesc(p, cudalibs.FilterDescriptor)
}

// DnnSetFilterDescriptor mirrors cudnnSetFilterNdDescriptor.
func (s *Server) DnnSetFilterDescriptor(p *sim.Proc, d cudalibs.Descriptor) error {
	return s.setDesc(p, d)
}

// DnnDestroyFilterDescriptor mirrors cudnnDestroyFilterDescriptor.
func (s *Server) DnnDestroyFilterDescriptor(p *sim.Proc, d cudalibs.Descriptor) error {
	return s.destroyDesc(p, d)
}

// DnnCreateConvolutionDescriptor mirrors cudnnCreateConvolutionDescriptor.
func (s *Server) DnnCreateConvolutionDescriptor(p *sim.Proc) (cudalibs.Descriptor, error) {
	return s.createDesc(p, cudalibs.ConvolutionDescriptor)
}

// DnnSetConvolutionDescriptor mirrors cudnnSetConvolutionNdDescriptor.
func (s *Server) DnnSetConvolutionDescriptor(p *sim.Proc, d cudalibs.Descriptor) error {
	return s.setDesc(p, d)
}

// DnnDestroyConvolutionDescriptor mirrors cudnnDestroyConvolutionDescriptor.
func (s *Server) DnnDestroyConvolutionDescriptor(p *sim.Proc, d cudalibs.Descriptor) error {
	return s.destroyDesc(p, d)
}

// DnnCreateActivationDescriptor mirrors cudnnCreateActivationDescriptor.
func (s *Server) DnnCreateActivationDescriptor(p *sim.Proc) (cudalibs.Descriptor, error) {
	return s.createDesc(p, cudalibs.ActivationDescriptor)
}

// DnnSetActivationDescriptor mirrors cudnnSetActivationDescriptor.
func (s *Server) DnnSetActivationDescriptor(p *sim.Proc, d cudalibs.Descriptor) error {
	return s.setDesc(p, d)
}

// DnnDestroyActivationDescriptor mirrors cudnnDestroyActivationDescriptor.
func (s *Server) DnnDestroyActivationDescriptor(p *sim.Proc, d cudalibs.Descriptor) error {
	return s.destroyDesc(p, d)
}

// DnnCreatePoolingDescriptor mirrors cudnnCreatePoolingDescriptor.
func (s *Server) DnnCreatePoolingDescriptor(p *sim.Proc) (cudalibs.Descriptor, error) {
	return s.createDesc(p, cudalibs.PoolingDescriptor)
}

// DnnSetPoolingDescriptor mirrors cudnnSetPoolingNdDescriptor.
func (s *Server) DnnSetPoolingDescriptor(p *sim.Proc, d cudalibs.Descriptor) error {
	return s.setDesc(p, d)
}

// DnnDestroyPoolingDescriptor mirrors cudnnDestroyPoolingDescriptor.
func (s *Server) DnnDestroyPoolingDescriptor(p *sim.Proc, d cudalibs.Descriptor) error {
	return s.destroyDesc(p, d)
}
