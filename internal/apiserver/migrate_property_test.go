package apiserver

import (
	"testing"
	"testing/quick"
	"time"

	"dgsf/internal/cuda"
	"dgsf/internal/gpu"
	"dgsf/internal/guest"
	"dgsf/internal/remoting"
	"dgsf/internal/sim"
)

// opCode drives the randomized migration-equivalence program.
type opCode struct {
	Kind    uint8  // alloc, free, memset, h2d, launch, migrate
	Arg     uint16 // size selector / buffer selector / content
	Migrate bool
}

// TestMigrationEquivalenceProperty is the core correctness property of
// DGSF's live migration (§V-D): for ANY sequence of memory and kernel
// operations, interleaving forced migrations at arbitrary API-call
// boundaries must not change what the application observes. We run every
// random program twice — once pinned to GPU 0, once with migrations — and
// require identical device-content fingerprints at every read.
func TestMigrationEquivalenceProperty(t *testing.T) {
	run := func(ops []opCode, migrate bool) (fps []uint64, ok bool) {
		e := sim.NewEngine(99)
		e.Run("prog", func(p *sim.Proc) {
			r := newRig(e, p, 3, fastCfg(), guest.OptNone)
			lib := r.lib
			if err := lib.Hello(p, "prog", 8<<30); err != nil {
				t.Fatal(err)
			}
			fns, err := lib.RegisterKernels(p, []string{"mutA", "mutB"})
			if err != nil {
				t.Fatal(err)
			}
			var bufs []cuda.DevPtr
			target := 1
			for _, op := range ops {
				if migrate && op.Migrate {
					done := sim.NewQueue[time.Duration](e)
					r.srv.Inbox.Send(remoting.Request{Ctrl: MigrateRequest{TargetDev: target, Done: done}})
					done.Recv(p)
					target = (target + 1) % 3
				}
				switch op.Kind % 5 {
				case 0: // alloc
					size := int64(op.Arg%64+1) << 20
					ptr, err := lib.Malloc(p, size)
					if err != nil {
						ok = false
						return
					}
					bufs = append(bufs, ptr)
				case 1: // free
					if len(bufs) > 0 {
						i := int(op.Arg) % len(bufs)
						if err := lib.Free(p, bufs[i]); err != nil {
							ok = false
							return
						}
						bufs = append(bufs[:i], bufs[i+1:]...)
					}
				case 2: // memset
					if len(bufs) > 0 {
						i := int(op.Arg) % len(bufs)
						if err := lib.Memset(p, bufs[i], byte(op.Arg), 1<<20); err != nil {
							ok = false
							return
						}
					}
				case 3: // h2d copy
					if len(bufs) > 0 {
						i := int(op.Arg) % len(bufs)
						if err := lib.MemcpyH2D(p, bufs[i], gpu.HostBuffer{FP: uint64(op.Arg), Size: 1 << 20}, 1<<20); err != nil {
							ok = false
							return
						}
					}
				case 4: // kernel over a buffer, then read it back
					if len(bufs) > 0 {
						i := int(op.Arg) % len(bufs)
						fn := fns[int(op.Arg)%len(fns)]
						if err := lib.LaunchKernel(p, cuda.LaunchParams{Fn: fn, Duration: 100 * time.Microsecond, Mutates: []cuda.DevPtr{bufs[i]}}); err != nil {
							ok = false
							return
						}
						if err := lib.StreamSynchronize(p, 0); err != nil {
							ok = false
							return
						}
						hb, err := lib.MemcpyD2H(p, bufs[i], 1<<20)
						if err != nil {
							ok = false
							return
						}
						fps = append(fps, hb.FP)
					}
				}
			}
			// Final read of every live buffer.
			for _, b := range bufs {
				hb, err := lib.MemcpyD2H(p, b, 1<<20)
				if err != nil {
					ok = false
					return
				}
				fps = append(fps, hb.FP)
			}
			if err := lib.Bye(p); err != nil {
				ok = false
				return
			}
			ok = true
		})
		return fps, ok
	}

	f := func(ops []opCode) bool {
		if len(ops) > 24 {
			ops = ops[:24]
		}
		base, ok1 := run(ops, false)
		moved, ok2 := run(ops, true)
		if !ok1 || !ok2 || len(base) != len(moved) {
			return false
		}
		for i := range base {
			if base[i] != moved[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestRepeatedMigrationRoundTrip bounces a session across all GPUs several
// times and back; pointers, contents and accounting must survive every hop.
func TestRepeatedMigrationRoundTrip(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		r := newRig(e, p, 3, fastCfg(), guest.OptNone)
		lib := r.lib
		if err := lib.Hello(p, "fn", 4<<30); err != nil {
			t.Fatal(err)
		}
		ptr, err := lib.Malloc(p, 512<<20)
		if err != nil {
			t.Fatal(err)
		}
		if err := lib.MemcpyH2D(p, ptr, gpu.HostBuffer{FP: 1234, Size: 512 << 20}, 512<<20); err != nil {
			t.Fatal(err)
		}
		want, _ := lib.MemcpyD2H(p, ptr, 512<<20)
		for hop := 0; hop < 6; hop++ {
			target := (hop + 1) % 3
			done := sim.NewQueue[time.Duration](e)
			r.srv.Inbox.Send(remoting.Request{Ctrl: MigrateRequest{TargetDev: target, Done: done}})
			done.Recv(p)
			got, err := lib.MemcpyD2H(p, ptr, 512<<20)
			if err != nil {
				t.Fatalf("hop %d: %v", hop, err)
			}
			if got.FP != want.FP {
				t.Fatalf("hop %d: contents diverged", hop)
			}
		}
		if err := lib.Bye(p); err != nil {
			t.Fatal(err)
		}
		// After Bye + return home, every non-home device is fully free.
		for i := 1; i < 3; i++ {
			if got := r.devs[i].UsedBytes(); got != 0 {
				t.Fatalf("device %d holds %d bytes after session end", i, got)
			}
		}
	})
}
