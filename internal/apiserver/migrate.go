package apiserver

import (
	"time"

	"dgsf/internal/cuda"
	"dgsf/internal/gpu"
	"dgsf/internal/sim"
)

// Migrate moves the API server's execution to another GPU (§V-D). It runs
// at an API call boundary (the monitor injects it through the inbox) and:
//
//  1. waits for all pending device work to complete;
//  2. obtains (creating if needed) a context on the target GPU;
//  3. rebuilds the application's virtual address space on the target using
//     the low-level VMM API — reserving the *same* virtual addresses with
//     MemAddressReserveAt, allocating fresh physical memory with MemCreate,
//     copying device-to-device and mapping with MemMap — so every pointer
//     the application holds, including indirect device pointers stored in
//     device memory, remains valid;
//  4. rebinds cuDNN/cuBLAS handles and re-creates streams, events and kernel
//     registrations in the target context, extending the translation maps.
//
// It returns the migration duration.
func (s *Server) Migrate(p *sim.Proc, target int) (time.Duration, error) {
	if target == s.curDev {
		return 0, nil
	}
	// Live data-plane attachments pin the server to its device: a zero-copy
	// imported mapping shares physical memory owned by the fabric, and a
	// broadcast source is cloned from by sibling servers. Moving would free
	// or strand that shared memory, so refuse until the session drops them
	// (real CUDA similarly refuses to unmap memory with open IPC handles).
	if sess := s.sess; sess != nil && (len(sess.imported) > 0 || sess.bcastPtr != 0) {
		return 0, cuda.ErrAlreadyMapped
	}
	start := p.Now()
	oldCtx, err := s.rt.Context(p, s.curDev)
	if err != nil {
		return 0, err
	}

	// 1. Stop: wait for completion of all pending operations.
	if err := oldCtx.DeviceSynchronize(p); err != nil {
		return 0, err
	}

	// 2. Target context (one per GPU, created on first use).
	newCtx, err := s.rt.Context(p, target)
	if err != nil {
		return 0, err
	}

	// 3. Move every mapped reservation, preserving virtual addresses.
	for _, r := range oldCtx.Reservations() {
		va := cuda.DevPtr(r.Addr)
		if err := newCtx.MemAddressReserveAt(p, va, r.Size); err != nil {
			return 0, err
		}
		if r.Phys == 0 {
			continue // reserved but unmapped: nothing to copy
		}
		oldAlloc, ok := oldCtx.PhysAlloc(r.Phys)
		if !ok {
			return 0, cuda.ErrInvalidResourceHandle
		}
		newPhys, err := newCtx.MemCreate(p, oldAlloc.Size())
		if err != nil {
			return 0, err
		}
		newAlloc, _ := newCtx.PhysAlloc(newPhys)
		gpu.CopyD2D(p, newAlloc, oldAlloc)
		if err := newCtx.MemMap(p, va, newPhys); err != nil {
			return 0, err
		}
		// Release the source: unmap, free physical, drop the reservation.
		if err := oldCtx.MemUnmap(p, va); err != nil {
			return 0, err
		}
		if err := oldCtx.MemRelease(p, r.Phys); err != nil {
			return 0, err
		}
		if err := oldCtx.MemAddressFree(p, va); err != nil {
			return 0, err
		}
	}

	if sess := s.sess; sess != nil {
		// 4a. Re-register kernels so launches can translate to valid
		// per-context function pointers.
		for _, name := range sess.kernelNames {
			if _, err := newCtx.RegisterFunction(p, name); err != nil {
				return 0, err
			}
		}
		// 4b. Replicate streams and events into the new context.
		for _, virt := range sortedKeys(sess.streams) {
			perDev := sess.streams[virt]
			if _, ok := perDev[target]; ok {
				continue
			}
			real, err := newCtx.StreamCreate(p)
			if err != nil {
				return 0, err
			}
			perDev[target] = real
		}
		for _, virt := range sortedKeys(sess.events) {
			perDev := sess.events[virt]
			if _, ok := perDev[target]; ok {
				continue
			}
			real, err := newCtx.EventCreate(p)
			if err != nil {
				return 0, err
			}
			perDev[target] = real
		}
		// 4c. Rebind library handles (their workspaces move devices).
		for _, virt := range sortedKeys(sess.dnns) {
			if err := s.libs.RebindDNN(p, sess.dnns[virt], newCtx); err != nil {
				return 0, err
			}
		}
		for _, virt := range sortedKeys(sess.blass) {
			if err := s.libs.RebindBLAS(p, sess.blass[virt], newCtx); err != nil {
				return 0, err
			}
		}
	}
	// Pooled (idle) handles follow the server so the pool stays usable.
	for _, h := range s.pooledDNN {
		if err := s.libs.RebindDNN(p, h, newCtx); err != nil {
			return 0, err
		}
	}
	for _, h := range s.pooledBLAS {
		if err := s.libs.RebindBLAS(p, h, newCtx); err != nil {
			return 0, err
		}
	}

	s.curDev = target
	// A retained cached model rode along in the reservation walk above (its
	// virtual address is unchanged); move its budget accounting with it.
	if s.pinned != nil && s.cfg.Cache != nil {
		s.cfg.Cache.UpdatePinGPU(s.cfg.ID, target)
	}
	d := p.Now() - start
	s.stats.Migrations++
	s.stats.MigrationTime += d
	return d, nil
}
