// Package faults is a deterministic fault injection framework for the DGSF
// control plane. A Plan describes scheduled process failures (API server
// crashes, whole-GPU-server failures) and probabilistic per-connection
// faults (breaks, stalls, frame corruption); an Injector applies the plan to
// a running deployment using only simulated time and the per-proc
// deterministic RNG, so every run with the same seed injects the same faults
// at the same instants.
//
// The injector exercises every failure-handling layer: heartbeats detect
// crashed API servers, guests detect broken or stalled connections through
// typed transport errors and per-call deadlines, the recovery path replays
// sessions, and the GPU server's degraded-mode scheduling routes around dead
// capacity.
package faults

import (
	"fmt"
	"time"

	"dgsf/internal/dataplane"
	"dgsf/internal/gpuserver"
	"dgsf/internal/remoting"
	"dgsf/internal/sim"
	"dgsf/internal/store"
)

// Kind enumerates injectable fault kinds.
type Kind int

// Fault kinds.
const (
	// KillAPIServer crashes one hosted API server process: its inbox closes
	// mid-stream and its session state is scavenged, exactly as if the
	// process died. Server selects which (flattened across GPU servers).
	KillAPIServer Kind = iota + 1
	// FailGPUServer fails a whole GPU server: every hosted API server
	// crashes and the server stops granting leases. Server selects the GPU
	// server index.
	FailGPUServer
)

// Event is one scheduled fault.
type Event struct {
	At     time.Duration
	Kind   Kind
	Server int
}

// Plan configures an injection campaign. Scheduled Events model correlated
// control-plane failures; the rate fields model per-connection data-path
// faults, decided at dial time from the dialing proc's RNG.
type Plan struct {
	Events []Event

	// DropRate is the probability a dialed connection is severed DropAfter
	// after dialing.
	DropRate  float64
	DropAfter time.Duration

	// StallRate is the probability a dialed connection's first send is
	// delayed by StallFor — long enough, under a per-call deadline, to look
	// like a dead server.
	StallRate float64
	StallFor  time.Duration

	// CorruptRate is the probability a dialed connection corrupts the
	// framing of its first outbound message. On a v2-capable connection
	// the first outbound message is the negotiation hello itself, so this
	// also exercises the corrupted-hello path.
	CorruptRate float64

	// DowngradeRate is the probability a dialed connection is forced down
	// to wire-protocol v1 before its hello runs — modeling the stale peer
	// or version-stripping middlebox a rolling upgrade must interoperate
	// with. Downgraded connections never use the vectored bulk lane.
	DowngradeRate float64

	// ControllerKills schedules fleet-controller crashes: at each At, the
	// next store fuse bound via BindControllerFuse is armed so the
	// controller's store handle dies AfterWrites writes later — killing the
	// reconciler mid-flight between two of its writes. The controller's
	// supervisor is expected to restart a replacement that converges.
	ControllerKills []ControllerKill

	// Partitions schedules asymmetric network partitions between machine
	// groups: guest traffic to the listed GPU servers is cut for a window —
	// live connections break at onset, new dials are born broken — while
	// the servers' own store-agent traffic stays up, so the control plane
	// keeps advertising the machines as healthy. That asymmetry is the hard
	// case: routing must survive placements onto machines it cannot reach.
	Partitions []Partition

	// Brownouts schedules slow-GPU windows: every device on the server
	// executes kernels and copies Factor× slower for the duration —
	// thermal throttling or a noisy co-tenant, a machine that is slow but
	// not dead and never stops heartbeating.
	Brownouts []Brownout

	// ConflictStorms schedules windows during which store writes spuriously
	// fail with ErrConflict at the given rate, as if a competing writer kept
	// winning every CAS race. Requires BindStore.
	ConflictStorms []ConflictStorm

	// FabricFaultRate is the probability that any one data-plane fabric
	// transfer dies mid-flight with remoting.ErrFabricFault, drawn per
	// transfer from the transferring proc's RNG. Requires BindFabric.
	FabricFaultRate float64
}

// Partition is one scheduled asymmetric network partition.
type Partition struct {
	At      time.Duration
	Dur     time.Duration
	Servers []int // GPU server indices cut off from guests
}

// Brownout is one scheduled slow-GPU window.
type Brownout struct {
	At     time.Duration
	Dur    time.Duration
	Server int     // GPU server index whose devices slow down
	Factor float64 // slowdown multiplier (≥ 1)
}

// ConflictStorm is one scheduled store write-conflict window.
type ConflictStorm struct {
	At   time.Duration
	Dur  time.Duration
	Rate float64 // probability each write in the window is rejected
}

// ControllerKill schedules one fleet-controller crash.
type ControllerKill struct {
	At time.Duration
	// AfterWrites is the write budget the fuse gets when armed: 0 blows on
	// the very next write; 1 lets exactly one write land first — the cut
	// between a session bind and its status bookkeeping.
	AfterWrites int
}

// Injector applies a Plan to a set of GPU servers.
type Injector struct {
	e       *sim.Engine
	plan    Plan
	servers []*gpuserver.GPUServer
	fuses   []*store.Fuse

	serverIdx   map[*gpuserver.GPUServer]int
	partitioned []int                  // active partition count per server index
	conns       [][]remoting.Faultable // live guest conns per server index
	st          *store.Store

	// Injection counters, for experiment reporting.
	Killed       int // API server crashes injected
	Failed       int // GPU server failures injected
	Dropped      int // connections scheduled to break
	Stalled      int // connections stalled
	Corrupted    int // connections set to corrupt a frame
	Downgraded   int // connections forced to wire-protocol v1
	CtrlKilled   int // fleet-controller crashes armed
	Partitioned  int // partition windows applied
	Severed      int // connections cut by partitions
	Browned      int // brownout windows applied
	Stormed      int // store writes rejected by conflict storms
	FabricFaults int // fabric transfers killed mid-flight
}

// BindControllerFuse registers a controller replica's store fuse as a kill
// target. Scheduled ControllerKills consume fuses in binding order; a kill
// with no fuse left to arm is skipped (the supervisor stopped restarting).
func (in *Injector) BindControllerFuse(f *store.Fuse) {
	in.fuses = append(in.fuses, f)
}

// NewInjector returns an injector over the deployment's GPU servers.
func NewInjector(e *sim.Engine, plan Plan, servers []*gpuserver.GPUServer) *Injector {
	in := &Injector{
		e:           e,
		plan:        plan,
		servers:     servers,
		serverIdx:   make(map[*gpuserver.GPUServer]int, len(servers)),
		partitioned: make([]int, len(servers)),
		conns:       make([][]remoting.Faultable, len(servers)),
	}
	for i, gs := range servers {
		in.serverIdx[gs] = i
	}
	return in
}

// BindStore attaches the store the plan's conflict storms reject writes on.
func (in *Injector) BindStore(st *store.Store) { in.st = st }

// BindFabric installs the mid-handoff fabric fault hook on the data plane.
// Each transfer draws from the transferring proc's RNG; a hit aborts the
// transfer with remoting.ErrFabricFault partway through.
func (in *Injector) BindFabric(fab *dataplane.Fabric) {
	rate := in.plan.FabricFaultRate
	if rate <= 0 {
		return
	}
	fab.SetFaultHook(func(p *sim.Proc, size int64) error {
		if p.Rand().Float64() < rate {
			in.FabricFaults++
			return fmt.Errorf("%w: injected mid-handoff fault (%d bytes)", remoting.ErrFabricFault, size)
		}
		return nil
	})
}

// Arm schedules the plan's events on a daemon: the engine does not wait for
// outstanding faults at the end of a run.
func (in *Injector) Arm(p *sim.Proc) {
	if events := in.plan.Events; len(events) > 0 {
		p.SpawnDaemon("fault-injector", func(p *sim.Proc) {
			for _, ev := range events {
				if d := ev.At - p.Now(); d > 0 {
					p.Sleep(d)
				}
				in.apply(ev)
			}
		})
	}
	if kills := in.plan.ControllerKills; len(kills) > 0 {
		p.SpawnDaemon("fault-ctrl-killer", func(p *sim.Proc) {
			for i, k := range kills {
				if d := k.At - p.Now(); d > 0 {
					p.Sleep(d)
				}
				if i >= len(in.fuses) {
					return // no replica left to kill
				}
				in.fuses[i].Arm(k.AfterWrites)
				in.CtrlKilled++
			}
		})
	}
	for i, part := range in.plan.Partitions {
		part := part
		p.SpawnDaemon(fmt.Sprintf("fault-partition-%d", i), func(p *sim.Proc) {
			if d := part.At - p.Now(); d > 0 {
				p.Sleep(d)
			}
			in.Partitioned++
			for _, s := range part.Servers {
				if s < 0 || s >= len(in.partitioned) {
					continue
				}
				in.partitioned[s]++
				// Sever live guest connections to the machine; its agent
				// link to the store is in another machine group and stays.
				for _, f := range in.conns[s] {
					f.Break()
					in.Severed++
				}
				in.conns[s] = nil
			}
			p.Sleep(part.Dur)
			for _, s := range part.Servers {
				if s >= 0 && s < len(in.partitioned) {
					in.partitioned[s]--
				}
			}
		})
	}
	for i, bo := range in.plan.Brownouts {
		bo := bo
		if bo.Server < 0 || bo.Server >= len(in.servers) || bo.Factor <= 1 {
			continue
		}
		p.SpawnDaemon(fmt.Sprintf("fault-brownout-%d", i), func(p *sim.Proc) {
			if d := bo.At - p.Now(); d > 0 {
				p.Sleep(d)
			}
			gs := in.servers[bo.Server]
			for _, dev := range gs.Devices() {
				dev.SetSlowdown(bo.Factor)
			}
			in.Browned++
			p.Sleep(bo.Dur)
			for _, dev := range gs.Devices() {
				dev.SetSlowdown(1)
			}
		})
	}
	for i, storm := range in.plan.ConflictStorms {
		storm := storm
		if in.st == nil || storm.Rate <= 0 {
			continue
		}
		p.SpawnDaemon(fmt.Sprintf("fault-storm-%d", i), func(p *sim.Proc) {
			if d := storm.At - p.Now(); d > 0 {
				p.Sleep(d)
			}
			in.st.SetWriteFault(func(p *sim.Proc) error {
				if p.Rand().Float64() < storm.Rate {
					in.Stormed++
					return fmt.Errorf("%w: injected conflict storm", store.ErrConflict)
				}
				return nil
			})
			p.Sleep(storm.Dur)
			in.st.SetWriteFault(nil)
		})
	}
}

// apply fires one scheduled event.
func (in *Injector) apply(ev Event) {
	switch ev.Kind {
	case KillAPIServer:
		// Crash the process directly; detection is the heartbeat's job.
		idx := 0
		for _, gs := range in.servers {
			for _, srv := range gs.Servers() {
				if idx == ev.Server {
					srv.Crash()
					in.Killed++
					return
				}
				idx++
			}
		}
	case FailGPUServer:
		if ev.Server >= 0 && ev.Server < len(in.servers) {
			in.servers[ev.Server].Fail()
			in.Failed++
		}
	}
}

// WrapConn decides, deterministically from the dialing proc's RNG, which
// per-connection faults this connection suffers. It matches the faas
// backend's DialHook signature; connections whose transport does not expose
// fault hooks pass through untouched.
func (in *Injector) WrapConn(p *sim.Proc, conn remoting.AsyncCaller) remoting.AsyncCaller {
	f, ok := conn.(remoting.Faultable)
	if !ok {
		return conn
	}
	rng := p.Rand()
	if in.plan.CorruptRate > 0 && rng.Float64() < in.plan.CorruptRate {
		f.CorruptNext()
		in.Corrupted++
	}
	if in.plan.StallRate > 0 && rng.Float64() < in.plan.StallRate {
		f.StallFor(in.plan.StallFor)
		in.Stalled++
	}
	if in.plan.DropRate > 0 && rng.Float64() < in.plan.DropRate {
		in.Dropped++
		after := in.plan.DropAfter
		p.SpawnDaemon("fault-conn-drop", func(p *sim.Proc) {
			if after > 0 {
				p.Sleep(after)
			}
			f.Break()
		})
	}
	if in.plan.DowngradeRate > 0 && rng.Float64() < in.plan.DowngradeRate {
		if d, ok := conn.(remoting.Downgrader); ok {
			d.ForceVersion(remoting.ProtoV1)
			in.Downgraded++
		}
	}
	return conn
}

// WrapTargetConn applies target-aware faults: a dial into a currently
// partitioned GPU server is born broken, and every live connection is
// tracked so a later partition onset can sever it. It matches the faas
// backends' DialServerHook signature and composes with WrapConn (which
// handles the target-independent per-connection faults).
func (in *Injector) WrapTargetConn(p *sim.Proc, gs *gpuserver.GPUServer, conn remoting.AsyncCaller) remoting.AsyncCaller {
	f, ok := conn.(remoting.Faultable)
	if !ok {
		return conn
	}
	idx, ok := in.serverIdx[gs]
	if !ok {
		return conn
	}
	if in.partitioned[idx] > 0 {
		f.Break()
		in.Severed++
		return conn
	}
	in.conns[idx] = append(in.conns[idx], f)
	return conn
}
