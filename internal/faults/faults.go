// Package faults is a deterministic fault injection framework for the DGSF
// control plane. A Plan describes scheduled process failures (API server
// crashes, whole-GPU-server failures) and probabilistic per-connection
// faults (breaks, stalls, frame corruption); an Injector applies the plan to
// a running deployment using only simulated time and the per-proc
// deterministic RNG, so every run with the same seed injects the same faults
// at the same instants.
//
// The injector exercises every failure-handling layer: heartbeats detect
// crashed API servers, guests detect broken or stalled connections through
// typed transport errors and per-call deadlines, the recovery path replays
// sessions, and the GPU server's degraded-mode scheduling routes around dead
// capacity.
package faults

import (
	"time"

	"dgsf/internal/gpuserver"
	"dgsf/internal/remoting"
	"dgsf/internal/sim"
	"dgsf/internal/store"
)

// Kind enumerates injectable fault kinds.
type Kind int

// Fault kinds.
const (
	// KillAPIServer crashes one hosted API server process: its inbox closes
	// mid-stream and its session state is scavenged, exactly as if the
	// process died. Server selects which (flattened across GPU servers).
	KillAPIServer Kind = iota + 1
	// FailGPUServer fails a whole GPU server: every hosted API server
	// crashes and the server stops granting leases. Server selects the GPU
	// server index.
	FailGPUServer
)

// Event is one scheduled fault.
type Event struct {
	At     time.Duration
	Kind   Kind
	Server int
}

// Plan configures an injection campaign. Scheduled Events model correlated
// control-plane failures; the rate fields model per-connection data-path
// faults, decided at dial time from the dialing proc's RNG.
type Plan struct {
	Events []Event

	// DropRate is the probability a dialed connection is severed DropAfter
	// after dialing.
	DropRate  float64
	DropAfter time.Duration

	// StallRate is the probability a dialed connection's first send is
	// delayed by StallFor — long enough, under a per-call deadline, to look
	// like a dead server.
	StallRate float64
	StallFor  time.Duration

	// CorruptRate is the probability a dialed connection corrupts the
	// framing of its first outbound message. On a v2-capable connection
	// the first outbound message is the negotiation hello itself, so this
	// also exercises the corrupted-hello path.
	CorruptRate float64

	// DowngradeRate is the probability a dialed connection is forced down
	// to wire-protocol v1 before its hello runs — modeling the stale peer
	// or version-stripping middlebox a rolling upgrade must interoperate
	// with. Downgraded connections never use the vectored bulk lane.
	DowngradeRate float64

	// ControllerKills schedules fleet-controller crashes: at each At, the
	// next store fuse bound via BindControllerFuse is armed so the
	// controller's store handle dies AfterWrites writes later — killing the
	// reconciler mid-flight between two of its writes. The controller's
	// supervisor is expected to restart a replacement that converges.
	ControllerKills []ControllerKill
}

// ControllerKill schedules one fleet-controller crash.
type ControllerKill struct {
	At time.Duration
	// AfterWrites is the write budget the fuse gets when armed: 0 blows on
	// the very next write; 1 lets exactly one write land first — the cut
	// between a session bind and its status bookkeeping.
	AfterWrites int
}

// Injector applies a Plan to a set of GPU servers.
type Injector struct {
	e       *sim.Engine
	plan    Plan
	servers []*gpuserver.GPUServer
	fuses   []*store.Fuse

	// Injection counters, for experiment reporting.
	Killed     int // API server crashes injected
	Failed     int // GPU server failures injected
	Dropped    int // connections scheduled to break
	Stalled    int // connections stalled
	Corrupted  int // connections set to corrupt a frame
	Downgraded int // connections forced to wire-protocol v1
	CtrlKilled int // fleet-controller crashes armed
}

// BindControllerFuse registers a controller replica's store fuse as a kill
// target. Scheduled ControllerKills consume fuses in binding order; a kill
// with no fuse left to arm is skipped (the supervisor stopped restarting).
func (in *Injector) BindControllerFuse(f *store.Fuse) {
	in.fuses = append(in.fuses, f)
}

// NewInjector returns an injector over the deployment's GPU servers.
func NewInjector(e *sim.Engine, plan Plan, servers []*gpuserver.GPUServer) *Injector {
	return &Injector{e: e, plan: plan, servers: servers}
}

// Arm schedules the plan's events on a daemon: the engine does not wait for
// outstanding faults at the end of a run.
func (in *Injector) Arm(p *sim.Proc) {
	if events := in.plan.Events; len(events) > 0 {
		p.SpawnDaemon("fault-injector", func(p *sim.Proc) {
			for _, ev := range events {
				if d := ev.At - p.Now(); d > 0 {
					p.Sleep(d)
				}
				in.apply(ev)
			}
		})
	}
	if kills := in.plan.ControllerKills; len(kills) > 0 {
		p.SpawnDaemon("fault-ctrl-killer", func(p *sim.Proc) {
			for i, k := range kills {
				if d := k.At - p.Now(); d > 0 {
					p.Sleep(d)
				}
				if i >= len(in.fuses) {
					return // no replica left to kill
				}
				in.fuses[i].Arm(k.AfterWrites)
				in.CtrlKilled++
			}
		})
	}
}

// apply fires one scheduled event.
func (in *Injector) apply(ev Event) {
	switch ev.Kind {
	case KillAPIServer:
		// Crash the process directly; detection is the heartbeat's job.
		idx := 0
		for _, gs := range in.servers {
			for _, srv := range gs.Servers() {
				if idx == ev.Server {
					srv.Crash()
					in.Killed++
					return
				}
				idx++
			}
		}
	case FailGPUServer:
		if ev.Server >= 0 && ev.Server < len(in.servers) {
			in.servers[ev.Server].Fail()
			in.Failed++
		}
	}
}

// WrapConn decides, deterministically from the dialing proc's RNG, which
// per-connection faults this connection suffers. It matches the faas
// backend's DialHook signature; connections whose transport does not expose
// fault hooks pass through untouched.
func (in *Injector) WrapConn(p *sim.Proc, conn remoting.AsyncCaller) remoting.AsyncCaller {
	f, ok := conn.(remoting.Faultable)
	if !ok {
		return conn
	}
	rng := p.Rand()
	if in.plan.CorruptRate > 0 && rng.Float64() < in.plan.CorruptRate {
		f.CorruptNext()
		in.Corrupted++
	}
	if in.plan.StallRate > 0 && rng.Float64() < in.plan.StallRate {
		f.StallFor(in.plan.StallFor)
		in.Stalled++
	}
	if in.plan.DropRate > 0 && rng.Float64() < in.plan.DropRate {
		in.Dropped++
		after := in.plan.DropAfter
		p.SpawnDaemon("fault-conn-drop", func(p *sim.Proc) {
			if after > 0 {
				p.Sleep(after)
			}
			f.Break()
		})
	}
	if in.plan.DowngradeRate > 0 && rng.Float64() < in.plan.DowngradeRate {
		if d, ok := conn.(remoting.Downgrader); ok {
			d.ForceVersion(remoting.ProtoV1)
			in.Downgraded++
		}
	}
	return conn
}
