package faults

import (
	"errors"
	"testing"
	"time"

	"dgsf/internal/dataplane"
	"dgsf/internal/gpu"
	"dgsf/internal/gpuserver"
	"dgsf/internal/remoting"
	"dgsf/internal/sim"
	"dgsf/internal/store"
)

func startServer(e *sim.Engine, p *sim.Proc) *gpuserver.GPUServer {
	cfg := gpuserver.DefaultConfig()
	cfg.GPUs = 1
	cfg.ServersPerGPU = 2
	cfg.HeartbeatPeriod = 10 * time.Millisecond
	cfg.HeartbeatMisses = 3
	gs := gpuserver.New(e, cfg)
	gs.Start(p)
	return gs
}

func TestScheduledKillCrashesServerAndHeartbeatNotices(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		gs := startServer(e, p)
		// Start consumes virtual time (prewarm), so schedule relative to now.
		killAt := p.Now() + 50*time.Millisecond
		inj := NewInjector(e, Plan{Events: []Event{
			{At: killAt, Kind: KillAPIServer, Server: 1},
		}}, []*gpuserver.GPUServer{gs})
		inj.Arm(p)

		p.Sleep(40 * time.Millisecond)
		if gs.Servers()[1].Crashed() {
			t.Fatal("server crashed before its scheduled event")
		}
		if got := gs.Capacity(); got != 2 {
			t.Fatalf("capacity before kill = %d, want 2", got)
		}
		p.Sleep(20 * time.Millisecond) // past the event
		if !gs.Servers()[1].Crashed() {
			t.Fatal("scheduled kill did not crash the server")
		}
		if inj.Killed != 1 {
			t.Fatalf("Killed = %d, want 1", inj.Killed)
		}
		// Heartbeats (10ms period, 3 misses) take the corpse out of rotation.
		p.Sleep(100 * time.Millisecond)
		if got := gs.Capacity(); got != 1 {
			t.Fatalf("capacity after heartbeat detection = %d, want 1", got)
		}
	})
}

func TestFailGPUServerStopsGrantingLeases(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		gs := startServer(e, p)
		inj := NewInjector(e, Plan{Events: []Event{
			{At: p.Now() + 30*time.Millisecond, Kind: FailGPUServer, Server: 0},
		}}, []*gpuserver.GPUServer{gs})
		inj.Arm(p)

		p.Sleep(50 * time.Millisecond)
		if gs.Healthy() {
			t.Fatal("failed GPU server still reports healthy")
		}
		if inj.Failed != 1 {
			t.Fatalf("Failed = %d, want 1", inj.Failed)
		}
		if _, err := gs.Acquire(p, "fn", 1<<20); !errors.Is(err, gpuserver.ErrCapacity) {
			t.Fatalf("acquire on failed server = %v, want ErrCapacity", err)
		}
	})
}

func TestWrapConnAppliesPlannedFaults(t *testing.T) {
	e := sim.NewEngine(3)
	e.Run("root", func(p *sim.Proc) {
		l := remoting.NewListener(e)
		p.SpawnDaemon("server", func(p *sim.Proc) {
			for {
				req, ok := l.Incoming.Recv(p)
				if !ok {
					return
				}
				if req.ReplyTo != nil {
					req.ReplyTo.Send(remoting.Response{Payload: []byte("ok")})
				}
			}
		})
		inj := NewInjector(e, Plan{
			DropRate:    0.5,
			DropAfter:   time.Millisecond,
			CorruptRate: 0.25,
		}, nil)
		// Wrap many conns; with these rates some of each fault must land.
		var conns []remoting.AsyncCaller
		for i := 0; i < 40; i++ {
			conns = append(conns, inj.WrapConn(p, remoting.Dial(e, l, remoting.NetProfile{})))
		}
		if inj.Dropped == 0 || inj.Corrupted == 0 {
			t.Fatalf("no faults armed: dropped=%d corrupted=%d", inj.Dropped, inj.Corrupted)
		}
		p.Sleep(10 * time.Millisecond) // past every DropAfter
		var dead, corrupt int
		for _, c := range conns {
			_, err := c.Roundtrip(p, []byte("ping"), 0)
			switch {
			case errors.Is(err, remoting.ErrConnClosed):
				dead++
			case errors.Is(err, remoting.ErrFrameCorrupt):
				corrupt++
			case err != nil:
				t.Fatalf("unexpected fault class: %v", err)
			}
		}
		if dead != inj.Dropped {
			t.Fatalf("dead conns = %d, want %d scheduled drops", dead, inj.Dropped)
		}
		if corrupt == 0 {
			t.Fatal("no corrupted frame surfaced")
		}
	})
}

func TestWrapConnDowngradesProtocol(t *testing.T) {
	e := sim.NewEngine(5)
	e.Run("root", func(p *sim.Proc) {
		l := remoting.NewListener(e)
		p.SpawnDaemon("server", func(p *sim.Proc) {
			for {
				req, ok := l.Incoming.Recv(p)
				if !ok {
					return
				}
				if reply, _, hok := remoting.HandleHello(req.Payload, remoting.MaxProtoVersion); hok {
					req.ReplyTo.TrySend(remoting.Response{Payload: reply, Proto: remoting.ProtoV1})
					continue
				}
				req.ReplyTo.Send(remoting.Response{Payload: []byte("ok"), Proto: req.Proto})
			}
		})
		inj := NewInjector(e, Plan{DowngradeRate: 1}, nil)
		down := inj.WrapConn(p, remoting.Dial(e, l, remoting.NetProfile{}))
		if inj.Downgraded != 1 {
			t.Fatalf("Downgraded = %d, want 1", inj.Downgraded)
		}
		clean := remoting.Dial(e, l, remoting.NetProfile{})
		if _, err := down.Roundtrip(p, []byte("ping"), 0); err != nil {
			t.Fatalf("downgraded conn roundtrip: %v", err)
		}
		if _, err := clean.Roundtrip(p, []byte("ping"), 0); err != nil {
			t.Fatalf("clean conn roundtrip: %v", err)
		}
		if v := down.(remoting.VecCaller).ProtoVersion(); v != remoting.ProtoV1 {
			t.Fatalf("downgraded conn negotiated v%d, want v1", v)
		}
		if v := clean.(remoting.VecCaller).ProtoVersion(); v != remoting.ProtoV2 {
			t.Fatalf("clean conn negotiated v%d, want v2", v)
		}
	})
}

func TestInjectionDeterministicAcrossRuns(t *testing.T) {
	run := func() [3]int {
		e := sim.NewEngine(7)
		var counts [3]int
		e.Run("root", func(p *sim.Proc) {
			l := remoting.NewListener(e)
			inj := NewInjector(e, Plan{
				DropRate:    0.3,
				DropAfter:   time.Millisecond,
				StallRate:   0.2,
				StallFor:    time.Second,
				CorruptRate: 0.1,
			}, nil)
			for i := 0; i < 64; i++ {
				inj.WrapConn(p, remoting.Dial(e, l, remoting.NetProfile{}))
			}
			counts = [3]int{inj.Dropped, inj.Stalled, inj.Corrupted}
		})
		return counts
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed injected %v then %v", a, b)
	}
	if a == [3]int{} {
		t.Fatal("no faults injected at these rates")
	}
}

// TestPartitionSeversConnsAndBlocksDials exercises the asymmetric partition:
// live guest connections to the cut machine break at onset, dials during the
// window are born broken, and dials after it heal.
func TestPartitionSeversConnsAndBlocksDials(t *testing.T) {
	e := sim.NewEngine(7)
	e.Run("root", func(p *sim.Proc) {
		gs := startServer(e, p)
		l := remoting.NewListener(e)
		p.SpawnDaemon("echo", func(p *sim.Proc) {
			for {
				req, ok := l.Incoming.Recv(p)
				if !ok {
					return
				}
				if req.ReplyTo != nil {
					req.ReplyTo.TrySend(remoting.Response{Payload: []byte("ok")})
				}
			}
		})
		dial := func() remoting.AsyncCaller {
			return remoting.Dial(e, l, remoting.NetProfile{})
		}

		onset := p.Now() + 50*time.Millisecond
		inj := NewInjector(e, Plan{Partitions: []Partition{
			{At: onset, Dur: 100 * time.Millisecond, Servers: []int{0}},
		}}, []*gpuserver.GPUServer{gs})
		inj.Arm(p)

		before := inj.WrapTargetConn(p, gs, dial())
		if _, err := before.Roundtrip(p, []byte("ping"), 0); err != nil {
			t.Fatalf("pre-partition roundtrip: %v", err)
		}
		p.Sleep(60 * time.Millisecond) // into the window
		if inj.Partitioned != 1 {
			t.Fatalf("Partitioned = %d, want 1", inj.Partitioned)
		}
		if _, err := before.Roundtrip(p, []byte("ping"), 0); !errors.Is(err, remoting.ErrConnClosed) {
			t.Fatalf("live conn must break at partition onset, got %v", err)
		}
		during := inj.WrapTargetConn(p, gs, dial())
		if _, err := during.Roundtrip(p, []byte("ping"), 0); !errors.Is(err, remoting.ErrConnClosed) {
			t.Fatalf("dial during the window must be born broken, got %v", err)
		}
		if inj.Severed != 2 {
			t.Fatalf("Severed = %d, want 2 (one cut, one stillborn)", inj.Severed)
		}
		p.Sleep(100 * time.Millisecond) // past the window
		after := inj.WrapTargetConn(p, gs, dial())
		if _, err := after.Roundtrip(p, []byte("ping"), 0); err != nil {
			t.Fatalf("post-partition roundtrip: %v", err)
		}
	})
}

// TestBrownoutSlowsDevicesForTheWindow exercises the slow-GPU brownout: the
// machine's devices run Factor× slower inside the window and recover after.
func TestBrownoutSlowsDevicesForTheWindow(t *testing.T) {
	e := sim.NewEngine(7)
	e.Run("root", func(p *sim.Proc) {
		gs := startServer(e, p)
		onset := p.Now() + 20*time.Millisecond
		inj := NewInjector(e, Plan{Brownouts: []Brownout{
			{At: onset, Dur: 50 * time.Millisecond, Server: 0, Factor: 4},
		}}, []*gpuserver.GPUServer{gs})
		inj.Arm(p)

		dev := gs.Devices()[0]
		if got := dev.Slowdown(); got != 1 {
			t.Fatalf("slowdown before the window = %v, want 1", got)
		}
		p.Sleep(30 * time.Millisecond) // into the window
		if got := dev.Slowdown(); got != 4 {
			t.Fatalf("slowdown inside the window = %v, want 4", got)
		}
		if inj.Browned != 1 {
			t.Fatalf("Browned = %d, want 1", inj.Browned)
		}
		p.Sleep(50 * time.Millisecond) // past the window
		if got := dev.Slowdown(); got != 1 {
			t.Fatalf("slowdown after the window = %v, want 1", got)
		}
	})
}

// TestConflictStormRejectsWritesForTheWindow exercises the store conflict
// storm: writes inside the window fail with ErrConflict (a CAS race the
// writer keeps losing), writes before and after land normally.
func TestConflictStormRejectsWritesForTheWindow(t *testing.T) {
	e := sim.NewEngine(7)
	st := store.New(e, nil)
	e.Run("root", func(p *sim.Proc) {
		onset := p.Now() + 20*time.Millisecond
		inj := NewInjector(e, Plan{ConflictStorms: []ConflictStorm{
			{At: onset, Dur: 50 * time.Millisecond, Rate: 1},
		}}, nil)
		inj.BindStore(st)
		inj.Arm(p)

		// The storm rejects CAS writes (Update/UpdateStatus/Delete) — the ops
		// whose retry loops it exists to exercise; Creates pass untouched.
		obj, err := st.Create(p, &store.Session{ObjectMeta: store.ObjectMeta{Name: "s-0"}})
		if err != nil {
			t.Fatalf("create before the storm: %v", err)
		}
		p.Sleep(30 * time.Millisecond) // into the window
		if _, err := st.Update(p, obj); !errors.Is(err, store.ErrConflict) {
			t.Fatalf("update during the storm = %v, want ErrConflict", err)
		}
		if inj.Stormed == 0 {
			t.Fatal("Stormed counter never moved")
		}
		p.Sleep(50 * time.Millisecond) // past the window
		if _, err := st.Update(p, obj); err != nil {
			t.Fatalf("update after the storm: %v", err)
		}
	})
}

// TestFabricFaultAbortsPeerTransfer exercises the mid-handoff fabric fault:
// with the hook bound at rate 1, a peer transfer dies partway through with
// the typed (and conn-fault-classified) ErrFabricFault.
func TestFabricFaultAbortsPeerTransfer(t *testing.T) {
	e := sim.NewEngine(7)
	e.Run("root", func(p *sim.Proc) {
		fab := dataplane.NewFabric(dataplane.DefaultConfig(), nil)
		inj := NewInjector(e, Plan{FabricFaultRate: 1}, nil)
		inj.BindFabric(fab)

		mkalloc := func(idx int) *gpu.PhysAlloc {
			dev := gpu.New(e, gpu.V100Config(idx))
			a, err := dev.AllocPhys(1 << 20)
			if err != nil {
				t.Fatalf("AllocPhys: %v", err)
			}
			return a
		}
		src, dst := mkalloc(0), mkalloc(1)

		start := p.Now()
		err := fab.PeerTransfer(p, dst, src)
		if !errors.Is(err, remoting.ErrFabricFault) {
			t.Fatalf("PeerTransfer = %v, want ErrFabricFault", err)
		}
		if !remoting.IsConnFault(err) {
			t.Fatal("fabric faults must classify as recoverable conn faults")
		}
		if inj.FabricFaults != 1 {
			t.Fatalf("FabricFaults = %d, want 1", inj.FabricFaults)
		}
		if p.Now() == start {
			t.Fatal("a mid-flight fault must still burn transfer time")
		}
		if fab.Metrics().Get(dataplane.CtrFabricFaults) != 1 {
			t.Fatalf("fabric fault counter: %s", fab.Metrics().String())
		}
	})
}
