package workloads

// Chained pipelines over the GPU-side data plane (internal/dataplane): a
// two-stage detect→identify face pipeline whose intermediate tensor travels
// by MemExport/MemImport (or PeerCopy across GPU servers) instead of
// bouncing through the object store, and an N-way ensemble workload whose
// replicas share one model upload via ModelBroadcast.

import (
	"fmt"
	"time"

	"dgsf/internal/cuda"
	"dgsf/internal/dataplane"
	"dgsf/internal/faas"
	"dgsf/internal/gpu"
	"dgsf/internal/remoting/gen"
	"dgsf/internal/sim"
)

// PipelineTensorBytes is the detect stage's output — aligned face crops plus
// landmarks for a 256-image batch — and thus the volume the handoff moves.
const PipelineTensorBytes = 48 * MB

// pipeline stage parameters: RetinaFace-class detector feeding an
// ArcFace-class identifier, scaled to the pipeline experiment's batch.
const (
	detectModelBytes   = 104 * MB
	detectWorkBytes    = 1200 * MB
	identifyModelBytes = 249 * MB
	identifyWorkBytes  = 1500 * MB
)

// DetectStage returns the producer of the two-stage face pipeline. Its body
// reads h.Mode: in GPU mode it exports its output tensor on the data plane
// and publishes the export ID in h; in bounce mode it reads the tensor back
// to the host and publishes its fingerprint for the consumer's re-upload.
func DetectStage(h *dataplane.Handoff) *faas.Function {
	return &faas.Function{
		Name:          "pipeline-detect",
		GPUMem:        2 << 30,
		DownloadBytes: 134 * MB,
		ModelDLBytes:  detectModelBytes,
		Run: func(p *sim.Proc, api gen.API) error {
			return runDetect(p, api, h)
		},
	}
}

func runDetect(p *sim.Proc, api gen.API, h *dataplane.Handoff) error {
	fns, err := api.RegisterKernels(p, []string{"detect::infer"})
	if err != nil {
		return err
	}
	work, err := api.Malloc(p, detectWorkBytes)
	if err != nil {
		return err
	}
	if err := api.MemcpyH2D(p, work, gpu.HostBuffer{FP: 21, Size: detectModelBytes}, detectModelBytes); err != nil {
		return err
	}
	out, err := api.Malloc(p, PipelineTensorBytes)
	if err != nil {
		return err
	}
	for i := 0; i < 24; i++ {
		if err := api.LaunchKernel(p, cuda.LaunchParams{
			Fn:       fns[0],
			Grid:     [3]int{128, 1, 1},
			Block:    [3]int{256, 1, 1},
			Duration: 800 * time.Microsecond,
			Mutates:  []cuda.DevPtr{work, out},
		}); err != nil {
			return err
		}
	}
	if err := api.DeviceSynchronize(p); err != nil {
		return err
	}
	if h.Mode == dataplane.HandoffGPU {
		export, size, err := api.MemExport(p, out, "detect-out")
		if err != nil {
			return err
		}
		h.Export, h.Bytes = export, size
	} else {
		buf, err := api.MemcpyD2H(p, out, PipelineTensorBytes)
		if err != nil {
			return err
		}
		h.FP, h.Bytes = buf.FP, PipelineTensorBytes
		if err := api.Free(p, out); err != nil {
			return err
		}
	}
	return api.Free(p, work)
}

// IdentifyStage returns the consumer of the two-stage face pipeline. In GPU
// mode it imports the producer's export — zero-copy on the producer's GPU
// server, a fabric peer copy elsewhere — and wraps any import failure in
// dataplane.ErrHandoffLost so the chain driver falls back to the bounce
// path. In bounce mode it re-uploads the tensor the producer staged out.
func IdentifyStage(h *dataplane.Handoff) *faas.Function {
	return &faas.Function{
		Name:          "pipeline-identify",
		GPUMem:        2 << 30,
		DownloadBytes: 266 * MB,
		ModelDLBytes:  identifyModelBytes,
		Run: func(p *sim.Proc, api gen.API) error {
			return runIdentify(p, api, h)
		},
	}
}

func runIdentify(p *sim.Proc, api gen.API, h *dataplane.Handoff) error {
	fns, err := api.RegisterKernels(p, []string{"identify::infer"})
	if err != nil {
		return err
	}
	work, err := api.Malloc(p, identifyWorkBytes)
	if err != nil {
		return err
	}
	if err := api.MemcpyH2D(p, work, gpu.HostBuffer{FP: 22, Size: identifyModelBytes}, identifyModelBytes); err != nil {
		return err
	}
	var in cuda.DevPtr
	if h.Mode == dataplane.HandoffGPU {
		ptr, _, err := api.MemImport(p, h.Export)
		if err != nil {
			ptr, _, err = api.PeerCopy(p, h.Export)
		}
		if err != nil {
			return fmt.Errorf("%w: export %d: %v", dataplane.ErrHandoffLost, h.Export, err)
		}
		in = ptr
	} else {
		ptr, err := api.Malloc(p, h.Bytes)
		if err != nil {
			return err
		}
		if err := api.MemcpyH2D(p, ptr, gpu.HostBuffer{FP: h.FP, Size: h.Bytes}, h.Bytes); err != nil {
			return err
		}
		in = ptr
	}
	// The imported tensor may be a zero-copy view of shared pages: the
	// identify kernels read it and mutate only their own working set.
	for i := 0; i < 32; i++ {
		if err := api.LaunchKernel(p, cuda.LaunchParams{
			Fn:       fns[0],
			Grid:     [3]int{128, 1, 1},
			Block:    [3]int{256, 1, 1},
			Duration: 600 * time.Microsecond,
			Mutates:  []cuda.DevPtr{work},
		}); err != nil {
			return err
		}
	}
	if err := api.DeviceSynchronize(p); err != nil {
		return err
	}
	if _, err := api.MemcpyD2H(p, work, 128<<10); err != nil {
		return err
	}
	// Freeing the import drops the shared mapping; the fabric frees the
	// backing pages once the last consumer lets go.
	if err := api.Free(p, in); err != nil {
		return err
	}
	return api.Free(p, work)
}

// EnsembleMember returns one replica of an N-way model-ensemble function:
// every member needs the same base model on device before voting on its
// slice of the input. Members ask the data plane for the model first —
// ModelBroadcast returns a host-seeded copy for the first member on a GPU
// server and device-to-device clones for the rest — and fall back to a
// plain upload when nothing is staged.
func EnsembleMember(modelBytes int64) *faas.Function {
	return &faas.Function{
		Name:          "ensemble",
		GPUMem:        2 << 30,
		DownloadBytes: modelBytes + 16*MB,
		ModelDLBytes:  modelBytes,
		Run: func(p *sim.Proc, api gen.API) error {
			return runEnsemble(p, api, modelBytes)
		},
	}
}

func runEnsemble(p *sim.Proc, api gen.API, modelBytes int64) error {
	fns, err := api.RegisterKernels(p, []string{"ensemble::vote"})
	if err != nil {
		return err
	}
	model, size, _, err := api.ModelBroadcast(p)
	if err != nil {
		return err
	}
	if model == 0 || size < modelBytes {
		if model != 0 {
			if err := api.Free(p, model); err != nil {
				return err
			}
		}
		// Nothing staged on this GPU server yet: pay the ordinary upload.
		model, err = api.Malloc(p, modelBytes)
		if err != nil {
			return err
		}
		if err := api.MemcpyH2D(p, model, gpu.HostBuffer{FP: 23, Size: modelBytes}, modelBytes); err != nil {
			return err
		}
	}
	scratch, err := api.Malloc(p, 64*MB)
	if err != nil {
		return err
	}
	for i := 0; i < 16; i++ {
		if err := api.LaunchKernel(p, cuda.LaunchParams{
			Fn:       fns[0],
			Grid:     [3]int{64, 1, 1},
			Block:    [3]int{256, 1, 1},
			Duration: 700 * time.Microsecond,
			Mutates:  []cuda.DevPtr{scratch},
		}); err != nil {
			return err
		}
	}
	if err := api.DeviceSynchronize(p); err != nil {
		return err
	}
	if _, err := api.MemcpyD2H(p, scratch, 64<<10); err != nil {
		return err
	}
	if err := api.Free(p, scratch); err != nil {
		return err
	}
	return api.Free(p, model)
}

// SeedEnsembleModel returns a warm-up function that stages the ensemble
// model into the GPU server's host cache tier: it uploads the model and
// offers it to the model cache (ModelPersist); once the session ends and
// device pins are rejected or scavenged, the bytes land in the host tier —
// exactly the state ModelBroadcast seeds from.
func SeedEnsembleModel(modelBytes int64) *faas.Function {
	return &faas.Function{
		Name:          "ensemble",
		GPUMem:        2 << 30,
		DownloadBytes: modelBytes + 16*MB,
		ModelDLBytes:  modelBytes,
		Run: func(p *sim.Proc, api gen.API) error {
			work, err := api.Malloc(p, modelBytes)
			if err != nil {
				return err
			}
			if err := api.MemcpyH2D(p, work, gpu.HostBuffer{FP: 23, Size: modelBytes}, modelBytes); err != nil {
				return err
			}
			return api.ModelPersist(p, work)
		},
	}
}
