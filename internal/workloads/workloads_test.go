package workloads

import (
	"testing"
	"time"

	"dgsf/internal/cuda"
	"dgsf/internal/cudalibs"
	"dgsf/internal/gpu"
	"dgsf/internal/native"
	"dgsf/internal/sim"
)

func TestCatalog(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("All() = %d specs, want 6", len(all))
	}
	small := Smaller()
	if len(small) != 4 {
		t.Fatalf("Smaller() = %d specs, want 4", len(small))
	}
	for _, s := range small {
		if s.Name == "covidctnet" || s.Name == "facedetection" {
			t.Errorf("Smaller() contains the large-footprint workload %s", s.Name)
		}
	}
	for _, s := range all {
		if _, err := ByName(s.Name); err != nil {
			t.Errorf("ByName(%s): %v", s.Name, err)
		}
		if s.PeakMem > s.MemLimit {
			t.Errorf("%s: peak memory (%d) exceeds declared limit (%d)", s.Name, s.PeakMem, s.MemLimit)
		}
		if s.WorkBuf > s.MemLimit {
			t.Errorf("%s: working set (%d) exceeds declared limit (%d)", s.Name, s.WorkBuf, s.MemLimit)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) succeeded")
	}
}

func TestPaperMemoryFootprints(t *testing.T) {
	// Table II's peak memory column, verbatim.
	want := map[string]int64{
		"kmeans":             323 * MB,
		"covidctnet":         7802 * MB,
		"facedetection":      13194 * MB,
		"faceidentification": 3514 * MB,
		"nlp":                4028 * MB,
		"resnet":             7650 * MB,
	}
	for name, mem := range want {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.PeakMem != mem {
			t.Errorf("%s peak = %d MB, want %d MB", name, s.PeakMem>>20, mem>>20)
		}
	}
}

// runNative executes a spec against a fresh native backend and returns the
// phases plus the device (for memory checks).
func runNative(t *testing.T, seed int64, spec *Spec) (Phases, *gpu.Device) {
	t.Helper()
	var phases Phases
	var dev *gpu.Device
	e := sim.NewEngine(seed)
	e.Run("wl", func(p *sim.Proc) {
		dev = gpu.New(e, gpu.V100Config(0))
		rt := cuda.NewRuntime(e, []*gpu.Device{dev}, cuda.DefaultCosts())
		api := native.New(rt, cudalibs.DefaultCosts())
		start := p.Now()
		if err := api.Hello(p, spec.Name, spec.MemLimit); err != nil {
			t.Fatal(err)
		}
		phases.Init = p.Now() - start
		if err := spec.RunBody(p, api, &phases); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
	})
	return phases, dev
}

func TestRunBodyAllWorkloadsNative(t *testing.T) {
	for _, spec := range All() {
		phases, dev := runNative(t, 1, spec)
		if phases.Init < 2800*time.Millisecond {
			t.Errorf("%s: init = %v, want >= 2.8s", spec.Name, phases.Init)
		}
		if phases.Process <= 0 || phases.Load <= 0 {
			t.Errorf("%s: empty phases %+v", spec.Name, phases)
		}
		// The function released its working set; only the runtime context
		// and any library handles remain.
		if used := dev.UsedBytes(); used > 2<<30 {
			t.Errorf("%s: %d MB still allocated after run", spec.Name, used>>20)
		}
	}
}

func TestRunBodyDeterministic(t *testing.T) {
	spec := FaceIdentification()
	a, _ := runNative(t, 7, spec)
	b, _ := runNative(t, 7, spec)
	if a != b {
		t.Fatalf("same seed produced different phases: %+v vs %+v", a, b)
	}
}

func TestCUDAOnlyWorkloadUsesNoLibraries(t *testing.T) {
	spec := KMeans()
	if spec.UsesDNN || spec.UsesBLAS {
		t.Fatal("kmeans must be pure CUDA")
	}
	// It must still run to completion.
	phases, _ := runNative(t, 1, spec)
	if phases.Process <= 0 {
		t.Fatal("kmeans produced no processing time")
	}
}

func TestFunctionAdapter(t *testing.T) {
	spec := KMeans()
	fn := spec.Function()
	if fn.Name != spec.Name || fn.GPUMem != spec.MemLimit || fn.DownloadBytes != spec.DownloadBytes {
		t.Fatalf("adapter mismatch: %+v", fn)
	}
	if fn.Run == nil {
		t.Fatal("adapter has no body")
	}
}

func TestWorkloadDurationsAreCalibrated(t *testing.T) {
	// Native totals (incl. a nominal download at 280 MB/s) must stay within
	// the Table II ballpark; this guards the calibration against parameter
	// drift when the model evolves.
	want := map[string]time.Duration{
		"kmeans":             14 * time.Second,
		"covidctnet":         25100 * time.Millisecond,
		"facedetection":      18500 * time.Millisecond,
		"faceidentification": 13400 * time.Millisecond,
		"nlp":                34300 * time.Millisecond,
		"resnet":             26700 * time.Millisecond,
	}
	for _, spec := range All() {
		phases, _ := runNative(t, 3, spec)
		download := time.Duration(float64(spec.DownloadBytes) / 280e6 * float64(time.Second))
		total := download + phases.Total()
		target := want[spec.Name]
		if total < time.Duration(float64(target)*0.75) || total > time.Duration(float64(target)*1.25) {
			t.Errorf("%s: native total %v outside ±25%% of paper's %v", spec.Name, total, target)
		}
	}
}

func TestCovidTransientSpikeRequiresWholeGPU(t *testing.T) {
	// CovidCTNet's allocators spike to ~13.5 GB: running it with a memory
	// limit matching only its steady-state peak must fail with OOM, which
	// is exactly why the paper oversizes the function's GPU request (§VII).
	spec := CovidCTNet()
	if spec.TransientBytes == 0 {
		t.Fatal("covid transient spike not modeled")
	}
	e := sim.NewEngine(1)
	e.Run("wl", func(p *sim.Proc) {
		dev := gpu.New(e, gpu.V100Config(0))
		rt := cuda.NewRuntime(e, []*gpu.Device{dev}, cuda.DefaultCosts())
		api := native.New(rt, cudalibs.DefaultCosts())
		if err := api.Hello(p, spec.Name, spec.MemLimit); err != nil {
			t.Fatal(err)
		}
		// The full 16 GB device accommodates the spike natively.
		if err := spec.RunBody(p, api, nil); err != nil {
			t.Fatalf("covid with full GPU failed: %v", err)
		}
	})
	// Against a DGSF API server, the declared limit is enforced: an
	// 8 GB declaration (enough for the steady-state working set) fails.
	// This is covered end-to-end in internal/apiserver's memory-limit
	// tests; here we check the working set alone still fits 8 GB so the
	// failure is attributable to the spike.
	if spec.WorkBuf > 8<<30 {
		t.Fatal("working set alone exceeds 8GB; spike test would be vacuous")
	}
}
