// Package workloads models the six benchmark applications of the paper's
// evaluation (§VII) as phase-calibrated programs against the remoted API
// surface:
//
//	K-means (Altis, CUDA-only), CovidCTNet (TensorFlow), Face Detection
//	(RetinaFace/ONNX), Face Identification (ArcFace/ONNX), Question
//	Answering (BERT/ONNX) and Image Classification (ResNet-50/ONNX).
//
// Each workload is a Spec: download volume, GPU memory footprint, a model
// load phase (handle creation, descriptor call streams, model upload,
// graph-construction ops) and a batched processing phase (input uploads,
// pointer queries, descriptor churn, raw kernel launches, synchronous
// library ops, result downloads). The per-phase parameters are calibrated
// so the phase totals land near Table II / Figure 3 on the simulated V100s;
// weights and images are synthetic bytes — the paper's observed timings,
// memory footprints and API-call mixes are what the experiments exercise,
// and all of those are retained (see DESIGN.md §2).
package workloads

import (
	"fmt"
	"time"

	"dgsf/internal/cuda"
	"dgsf/internal/cudalibs"
	"dgsf/internal/faas"
	"dgsf/internal/gpu"
	"dgsf/internal/remoting/gen"
	"dgsf/internal/sim"
)

// MB is one binary megabyte, the unit Table II uses.
const MB = int64(1) << 20

// Spec describes one benchmark workload.
type Spec struct {
	Name string

	// Memory.
	MemLimit int64 // declared GPU memory requirement (drives scheduling)
	PeakMem  int64 // Table II "Peak GPU Memory Usage"
	WorkBuf  int64 // main device working set allocated during load

	// Download phase: the real model+input volume, charged against the
	// environment's S3 bandwidth (OpenFaaS containers sustain parallel
	// multipart transfers; Lambda sees a fraction of that, which is what
	// produces the Table II Lambda spikes for NLP and ResNet).
	DownloadBytes int64

	// TransientBytes models allocator spikes: memory briefly allocated and
	// released right after model load. CovidCTNet's TensorFlow allocators
	// "for a brief moment during execution, allocate a large amount of
	// memory" (§VII), which is why it must request nearly a whole GPU.
	TransientBytes int64

	// Model load phase.
	UsesDNN       bool
	UsesBLAS      bool
	ModelBytes    int64         // uploaded host-to-device during load
	LoadDescPairs int           // cudnnCreate*/Set* descriptor pairs during load
	LoadOps       int           // graph-construction library ops during load
	LoadOpTime    time.Duration // nominal kernel time per load op

	// Processing phase, per batch.
	Batches        int
	BatchInBytes   int64
	BatchOutBytes  int64
	Launches       int           // raw kernel launches per batch
	LaunchTime     time.Duration // nominal kernel time per raw launch
	Forwards       int           // synchronous cuDNN/cuBLAS ops per batch
	ForwardTime    time.Duration // nominal kernel time per library op
	DescPairs      int           // descriptor create/set/destroy churn per batch
	PtrQueries     int           // cudaPointerGetAttributes per batch
	CPUPerBatch    time.Duration // host-side pre/post-processing per batch
	CPUOnlyRuntime time.Duration // Table II "Average Runtime (CPU)"
}

// Phases records the per-phase times of one run, the quantities Figure 3
// breaks down.
type Phases struct {
	Download time.Duration
	Init     time.Duration // CUDA runtime/context initialization (critical path)
	Load     time.Duration // handle creation + descriptors + model upload + ops
	Process  time.Duration // batched inference/compute
}

// Total returns the sum of all phases.
func (ph Phases) Total() time.Duration {
	return ph.Download + ph.Init + ph.Load + ph.Process
}

// KMeans models the Altis CUDA K-means benchmark: one million 16-d points,
// 16 clusters, 2000 rounds. Pure CUDA: no cuDNN, no cuBLAS.
func KMeans() *Spec {
	return &Spec{
		Name:           "kmeans",
		MemLimit:       1 << 30,
		PeakMem:        323 * MB,
		WorkBuf:        300 * MB,
		DownloadBytes:  235 * MB, // 235.3 MB input
		ModelBytes:     0,
		Batches:        2000, // one batch per clustering round
		BatchInBytes:   0,    // points uploaded once with the working set
		BatchOutBytes:  4096, // centroid readback every round
		Launches:       2,
		LaunchTime:     1250 * time.Microsecond,
		CPUPerBatch:    2500 * time.Microsecond,
		CPUOnlyRuntime: 429100 * time.Millisecond,
	}
}

// CovidCTNet models the TensorFlow COVID CT-scan pipeline: two models whose
// allocators transiently demand 13.5 GB, so the function requests (nearly)
// a whole GPU (§VII).
func CovidCTNet() *Spec {
	return &Spec{
		Name:           "covidctnet",
		MemLimit:       14 << 30,
		PeakMem:        7802 * MB,
		WorkBuf:        6800 * MB,
		TransientBytes: 6600 * MB, // spike to ~13.5 GB during model setup
		DownloadBytes:  202 * MB,  // 47.3 MB models + 155.5 MB scans
		UsesDNN:        true,
		UsesBLAS:       true,
		ModelBytes:     47 * MB,
		LoadDescPairs:  3500,
		LoadOps:        150,
		LoadOpTime:     4 * time.Millisecond,
		Batches:        2, // two CT scans per invocation
		BatchInBytes:   78 * MB,
		BatchOutBytes:  1 * MB,
		Launches:       800,
		LaunchTime:     50 * time.Microsecond,
		Forwards:       900,
		ForwardTime:    5100 * time.Microsecond,
		DescPairs:      350,
		PtrQueries:     200,
		CPUPerBatch:    4820 * time.Millisecond,
		CPUOnlyRuntime: 99200 * time.Millisecond,
	}
}

// FaceDetection models RetinaFace-ResNet50 on ONNX Runtime: 256 WIDER FACE
// images, batch size 16, and the largest GPU footprint of the suite.
func FaceDetection() *Spec {
	return &Spec{
		Name:           "facedetection",
		MemLimit:       14 << 30,
		PeakMem:        13194 * MB,
		WorkBuf:        12500 * MB,
		DownloadBytes:  134 * MB, // 104.4 MB model + ~30 MB images
		UsesDNN:        true,
		UsesBLAS:       true,
		ModelBytes:     104 * MB,
		LoadDescPairs:  2800,
		LoadOps:        60,
		LoadOpTime:     5 * time.Millisecond,
		Batches:        16,
		BatchInBytes:   2 * MB,
		BatchOutBytes:  512 << 10,
		Launches:       300,
		LaunchTime:     40 * time.Microsecond,
		Forwards:       810,
		ForwardTime:    460 * time.Microsecond,
		DescPairs:      150,
		PtrQueries:     100,
		CPUPerBatch:    405 * time.Millisecond,
		CPUOnlyRuntime: 71000 * time.Millisecond,
	}
}

// FaceIdentification models ArcFace LResNet100E-IR on ONNX Runtime: 256 LFW
// faces per run, batch size 16 — the workload the ablation study (Fig. 4)
// discusses in detail.
func FaceIdentification() *Spec {
	return &Spec{
		Name:           "faceidentification",
		MemLimit:       4 << 30,
		PeakMem:        3514 * MB,
		WorkBuf:        3200 * MB,
		DownloadBytes:  266 * MB, // 249 MB model + 17 MB faces
		UsesDNN:        true,
		UsesBLAS:       true,
		ModelBytes:     249 * MB,
		LoadDescPairs:  2500,
		LoadOps:        50,
		LoadOpTime:     5 * time.Millisecond,
		Batches:        16,
		BatchInBytes:   1 * MB,
		BatchOutBytes:  128 << 10,
		Launches:       470,
		LaunchTime:     30 * time.Microsecond,
		Forwards:       430,
		ForwardTime:    450 * time.Microsecond,
		DescPairs:      230,
		PtrQueries:     150,
		CPUPerBatch:    222 * time.Millisecond,
		CPUOnlyRuntime: 42100 * time.Millisecond,
	}
}

// QuestionAnswering models BERT (MLPerf) SQuAD inference on ONNX Runtime:
// 512 questions per run, batch size 16, a 1.2 GB model.
func QuestionAnswering() *Spec {
	return &Spec{
		Name:           "nlp",
		MemLimit:       5 << 30,
		PeakMem:        4028 * MB,
		WorkBuf:        2500 * MB,
		DownloadBytes:  1262 * MB, // 1.2 GB model + 61.7 MB inputs
		UsesDNN:        true,
		UsesBLAS:       true,
		ModelBytes:     1200 * MB,
		LoadDescPairs:  3000,
		LoadOps:        120,
		LoadOpTime:     5 * time.Millisecond,
		Batches:        32,
		BatchInBytes:   2 * MB,
		BatchOutBytes:  256 << 10,
		Launches:       200,
		LaunchTime:     100 * time.Microsecond,
		Forwards:       380,
		ForwardTime:    1530 * time.Microsecond,
		DescPairs:      120,
		PtrQueries:     80,
		CPUPerBatch:    150 * time.Millisecond,
		CPUOnlyRuntime: 347000 * time.Millisecond,
	}
}

// ImageClassification models ResNet-50 v1.5 (MLPerf) on ONNX Runtime: 2048
// preprocessed ImageNet images (~1.2 GB uploaded across batches), batch 16.
func ImageClassification() *Spec {
	return &Spec{
		Name:           "resnet",
		MemLimit:       8 << 30,
		PeakMem:        7650 * MB,
		WorkBuf:        7000 * MB,
		DownloadBytes:  1297 * MB, // 97.4 MB model + 1.2 GB inputs
		UsesDNN:        true,
		UsesBLAS:       true,
		ModelBytes:     97 * MB,
		LoadDescPairs:  2600,
		LoadOps:        70,
		LoadOpTime:     5 * time.Millisecond,
		Batches:        128,
		BatchInBytes:   9728 << 10, // ~9.5 MB of preprocessed images per batch
		BatchOutBytes:  64 << 10,
		Launches:       60,
		LaunchTime:     35 * time.Microsecond,
		Forwards:       80,
		ForwardTime:    720 * time.Microsecond,
		DescPairs:      40,
		PtrQueries:     30,
		CPUPerBatch:    70 * time.Millisecond,
		CPUOnlyRuntime: 66700 * time.Millisecond,
	}
}

// All returns the six workloads in the paper's column order.
func All() []*Spec {
	return []*Spec{
		KMeans(), CovidCTNet(), FaceDetection(),
		FaceIdentification(), QuestionAnswering(), ImageClassification(),
	}
}

// Smaller returns the four workloads with the smaller memory footprints
// (Table III's "SW" mix): all but CovidCTNet and Face Detection.
func Smaller() []*Spec {
	return []*Spec{
		KMeans(), FaceIdentification(), QuestionAnswering(), ImageClassification(),
	}
}

// ByName returns the named spec.
func ByName(name string) (*Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// RunBody executes the workload's GPU phases against api. The session must
// already be open (Hello); phases, if non-nil, receives the load/process
// breakdown. Init time (CUDA context creation) is whatever the backend puts
// on the critical path before the first call returns — it is measured by
// the caller around the session setup.
func (s *Spec) RunBody(p *sim.Proc, api gen.API, phases *Phases) error {
	loadStart := p.Now()

	// The guest library ships kernel information ahead of execution.
	fns, err := api.RegisterKernels(p, []string{s.Name + "::main", s.Name + "::aux"})
	if err != nil {
		return err
	}

	// Applications commonly probe the device before allocating.
	if _, err := api.GetDeviceCount(p); err != nil {
		return err
	}
	if _, err := api.GetDeviceProperties(p, 0); err != nil {
		return err
	}

	// Working set: weights, activations, input and output buffers. A model
	// cache hit (ModelAttach) adopts the working set a previous invocation
	// of this function persisted — weights already on device, or restaged
	// from the host tier by the API server — so the model load phase below
	// collapses to handle creation.
	var work cuda.DevPtr
	warm := false
	if s.ModelBytes > 0 {
		ptr, size, _, err := api.ModelAttach(p)
		if err != nil {
			return err
		}
		if ptr != 0 && size >= s.WorkBuf {
			work, warm = ptr, true
		}
	}
	if !warm {
		w, err := api.Malloc(p, s.WorkBuf)
		if err != nil {
			return err
		}
		work = w
	}
	inBuf, err := api.Malloc(p, maxI64(s.BatchInBytes, 1*MB))
	if err != nil {
		return err
	}
	outBuf, err := api.Malloc(p, maxI64(s.BatchOutBytes, 64<<10))
	if err != nil {
		return err
	}

	// --- model load phase ---
	var dnn dnnState
	if s.UsesDNN {
		h, err := api.DnnCreate(p)
		if err != nil {
			return err
		}
		dnn.h = h
		dnn.ok = true
	}
	var blas blasState
	if s.UsesBLAS {
		h, err := api.BlasCreate(p)
		if err != nil {
			return err
		}
		blas.h = h
		blas.ok = true
	}
	if !warm {
		if err := descriptorChurn(p, api, s.LoadDescPairs); err != nil {
			return err
		}
		if s.ModelBytes > 0 {
			if err := api.MemcpyH2D(p, work, gpu.HostBuffer{FP: 11, Size: s.ModelBytes}, s.ModelBytes); err != nil {
				return err
			}
		}
		for i := 0; i < s.LoadOps; i++ {
			if dnn.ok {
				if err := api.DnnForward(p, dnn.h, "build", s.LoadOpTime, []cuda.DevPtr{work}, nil); err != nil {
					return err
				}
			} else {
				if err := api.LaunchKernel(p, cuda.LaunchParams{Fn: fns[1], Duration: s.LoadOpTime, Mutates: []cuda.DevPtr{work}}); err != nil {
					return err
				}
			}
		}
		if s.TransientBytes > 0 {
			// Allocator spike: grab, touch and immediately release a large
			// transient region. A function that under-declared its memory
			// requirement fails right here with an out-of-memory error.
			tmp, err := api.Malloc(p, s.TransientBytes)
			if err != nil {
				return err
			}
			if err := api.Memset(p, tmp, 0, s.TransientBytes); err != nil {
				return err
			}
			if err := api.Free(p, tmp); err != nil {
				return err
			}
		}
	}
	if err := api.DeviceSynchronize(p); err != nil {
		return err
	}
	if phases != nil {
		phases.Load = p.Now() - loadStart
	}

	// --- processing phase ---
	procStart := p.Now()
	for b := 0; b < s.Batches; b++ {
		if s.BatchInBytes > 0 {
			if err := api.MemcpyH2D(p, inBuf, gpu.HostBuffer{FP: uint64(b + 1), Size: s.BatchInBytes}, s.BatchInBytes); err != nil {
				return err
			}
		}
		for q := 0; q < s.PtrQueries; q++ {
			if _, err := api.PointerGetAttributes(p, work); err != nil {
				return err
			}
		}
		if err := descriptorChurn(p, api, s.DescPairs); err != nil {
			return err
		}
		for l := 0; l < s.Launches; l++ {
			if err := api.LaunchKernel(p, cuda.LaunchParams{
				Fn:       fns[0],
				Grid:     [3]int{256, 1, 1},
				Block:    [3]int{256, 1, 1},
				Duration: s.LaunchTime,
				Mutates:  []cuda.DevPtr{work},
			}); err != nil {
				return err
			}
		}
		for f := 0; f < s.Forwards; f++ {
			switch {
			case dnn.ok && (f%4 != 3 || !blas.ok):
				if err := api.DnnForward(p, dnn.h, "op", s.ForwardTime, []cuda.DevPtr{work}, nil); err != nil {
					return err
				}
			case blas.ok:
				if err := api.BlasGemm(p, blas.h, s.ForwardTime, []cuda.DevPtr{work}); err != nil {
					return err
				}
			}
		}
		if err := api.StreamSynchronize(p, 0); err != nil {
			return err
		}
		if s.BatchOutBytes > 0 {
			if _, err := api.MemcpyD2H(p, outBuf, s.BatchOutBytes); err != nil {
				return err
			}
		}
		if s.CPUPerBatch > 0 {
			p.Sleep(s.CPUPerBatch)
		}
	}
	if phases != nil {
		phases.Process = p.Now() - procStart
	}

	// --- teardown ---
	if dnn.ok {
		if err := api.DnnDestroy(p, dnn.h); err != nil {
			return err
		}
	}
	if blas.ok {
		if err := api.BlasDestroy(p, blas.h); err != nil {
			return err
		}
	}
	for _, ptr := range []cuda.DevPtr{outBuf, inBuf} {
		if err := api.Free(p, ptr); err != nil {
			return err
		}
	}
	// The working set is offered to the model cache; without one (or for
	// model-less workloads) this is an ordinary free.
	if s.ModelBytes > 0 {
		if err := api.ModelPersist(p, work); err != nil {
			return err
		}
	} else if err := api.Free(p, work); err != nil {
		return err
	}
	return nil
}

type dnnState struct {
	h  cudalibs.DNNHandle
	ok bool
}
type blasState struct {
	h  cudalibs.BLASHandle
	ok bool
}

// descriptorChurn issues n create+set+destroy descriptor triples, rotating
// over the cuDNN descriptor species like a graph runtime does.
func descriptorChurn(p *sim.Proc, api gen.API, n int) error {
	for i := 0; i < n; i++ {
		var err error
		switch i % 4 {
		case 0:
			err = churn(p, api.DnnCreateTensorDescriptor, api.DnnSetTensorDescriptor, api.DnnDestroyTensorDescriptor)
		case 1:
			err = churn(p, api.DnnCreateFilterDescriptor, api.DnnSetFilterDescriptor, api.DnnDestroyFilterDescriptor)
		case 2:
			err = churn(p, api.DnnCreateConvolutionDescriptor, api.DnnSetConvolutionDescriptor, api.DnnDestroyConvolutionDescriptor)
		case 3:
			err = churn(p, api.DnnCreateActivationDescriptor, api.DnnSetActivationDescriptor, api.DnnDestroyActivationDescriptor)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func churn[D any](p *sim.Proc,
	create func(*sim.Proc) (D, error),
	set func(*sim.Proc, D) error,
	destroy func(*sim.Proc, D) error,
) error {
	d, err := create(p)
	if err != nil {
		return err
	}
	if err := set(p, d); err != nil {
		return err
	}
	return destroy(p, d)
}

// Function adapts the workload to a deployable serverless function.
func (s *Spec) Function() *faas.Function {
	return &faas.Function{
		Name:          s.Name,
		GPUMem:        s.MemLimit,
		DownloadBytes: s.DownloadBytes,
		ModelDLBytes:  s.ModelBytes,
		Run: func(p *sim.Proc, api gen.API) error {
			return s.RunBody(p, api, nil)
		},
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
