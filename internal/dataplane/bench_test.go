package dataplane

import (
	"fmt"
	"testing"

	"dgsf/internal/gpu"
	"dgsf/internal/sim"
)

// The data-plane fast path runs once per chained invocation, so its
// bookkeeping must stay cheap next to the simulated transfers it models.
// These benchmarks pin the per-handoff costs: publish + zero-copy import +
// drop, namespace lookup, and the per-attempt Handoff reset.

func benchDevice() *gpu.Device {
	e := sim.NewEngine(1)
	c := gpu.V100Config(0)
	c.CopyLat, c.KernelLat = 0, 0
	return gpu.New(e, c)
}

func BenchmarkExportImportDrop(b *testing.B) {
	f := NewFabric(DefaultConfig(), nil)
	pl := f.NewPlane("gpu-0")
	dev := benchDevice()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := dev.AllocPhys(1 << 20)
		if err != nil {
			b.Fatal(err)
		}
		x := pl.Export("fn", "t", a)
		f.BeginImport(x)
		if !f.EndImport(x) {
			b.Fatal("export must drop on last EndImport")
		}
	}
}

func BenchmarkFabricLookup(b *testing.B) {
	f := NewFabric(DefaultConfig(), nil)
	pl := f.NewPlane("gpu-0")
	dev := benchDevice()
	ids := make([]uint64, 256)
	for i := range ids {
		a, err := dev.AllocPhys(1 << 10)
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = pl.Export("fn", "t", a).ID()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := f.Lookup(ids[i%len(ids)]); !ok {
			b.Fatal("lookup missed")
		}
	}
}

func BenchmarkBroadcastSourceHit(b *testing.B) {
	f := NewFabric(DefaultConfig(), nil)
	pl := f.NewPlane("gpu-0")
	dev := benchDevice()
	for i := 0; i < 8; i++ {
		a, err := dev.AllocPhys(1 << 20)
		if err != nil {
			b.Fatal(err)
		}
		pl.sources[fmt.Sprintf("model-%d", i)] = a
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := pl.BroadcastSource("model-3"); !ok {
			b.Fatal("source missed")
		}
	}
}

func BenchmarkHandoffReset(b *testing.B) {
	h := &Handoff{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Reset(HandoffGPU)
		h.Export, h.Bytes = uint64(i)+1, 1<<20
		h.Reset(HandoffBounce)
	}
}

func BenchmarkTransferTimeModel(b *testing.B) {
	f := NewFabric(DefaultConfig(), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f.TransferTime(48<<20) <= 0 {
			b.Fatal("bad model")
		}
	}
}
