package dataplane

import (
	"testing"
	"time"

	"dgsf/internal/gpu"
	"dgsf/internal/metrics"
	"dgsf/internal/sim"
)

func testAlloc(t *testing.T, e *sim.Engine, size int64) *gpu.PhysAlloc {
	t.Helper()
	dev := gpu.New(e, gpu.V100Config(0))
	a, err := dev.AllocPhys(size)
	if err != nil {
		t.Fatalf("AllocPhys: %v", err)
	}
	return a
}

func TestExportImportLifecycle(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("test", func(p *sim.Proc) {
		reg := metrics.NewRegistry()
		f := NewFabric(DefaultConfig(), reg)
		pl := f.NewPlane("gpu-0")
		a := testAlloc(t, e, 64<<20)

		x := pl.Export("fn", "boxes", a)
		if x.ID() == 0 {
			t.Fatal("export ID must be nonzero")
		}
		if got, ok := f.Lookup(x.ID()); !ok || got != x {
			t.Fatal("Lookup must find the live export")
		}
		if !x.LocalTo(pl) {
			t.Fatal("export must be local to its plane")
		}
		if x.Size() != 64<<20 || x.Tag() != "boxes" {
			t.Fatalf("export metadata: size=%d tag=%q", x.Size(), x.Tag())
		}

		// One zero-copy mapping: the export stays live until it ends.
		f.BeginImport(x)
		if _, ok := f.Lookup(x.ID()); !ok {
			t.Fatal("export must survive while a mapping is live")
		}
		if !f.EndImport(x) {
			t.Fatal("last EndImport after a taken import must drop the export")
		}
		if _, ok := f.Lookup(x.ID()); ok {
			t.Fatal("dropped export must leave the namespace")
		}
		if reg.Get(CtrExports) != 1 || reg.Get(CtrImports) != 1 || reg.Get(CtrBypassHits) != 1 {
			t.Fatalf("counters: %s", reg.String())
		}
	})
}

func TestConsumeFreesWithoutMappings(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("test", func(p *sim.Proc) {
		f := NewFabric(DefaultConfig(), nil)
		pl := f.NewPlane("gpu-0")
		a := testAlloc(t, e, 1<<20)
		dev := a.Device()

		x := pl.Export("fn", "t", a)
		f.Consume(x)
		if _, ok := f.Lookup(x.ID()); ok {
			t.Fatal("consumed export with no mappings must drop immediately")
		}
		if dev.UsedBytes() != 0 {
			t.Fatalf("backing memory must be freed, still used: %d", dev.UsedBytes())
		}
	})
}

func TestPlaneFailMarksExportsUnreachable(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("test", func(p *sim.Proc) {
		f := NewFabric(DefaultConfig(), nil)
		pl := f.NewPlane("gpu-0")
		x := pl.Export("fn", "t", testAlloc(t, e, 1<<20))

		pl.Fail()
		if !pl.Failed() {
			t.Fatal("Failed() must report the crash")
		}
		if !x.SourceFailed() {
			t.Fatal("exports on a failed plane must report SourceFailed")
		}
		if _, ok := pl.BroadcastSource("m"); ok {
			t.Fatal("failed plane must not serve broadcast sources")
		}
	})
}

func TestPeerTransferTakesModeledTime(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("test", func(p *sim.Proc) {
		cfg := Config{PeerBps: 1 << 30, PeerLat: time.Millisecond}
		f := NewFabric(cfg, nil)
		src := testAlloc(t, e, 1<<30)
		dst := testAlloc(t, e, 1<<30)
		gpu.MutateKernel(src, "produce")

		start := p.Now()
		f.PeerTransfer(p, dst, src)
		got := p.Now() - start
		// 1 GiB at 1 GiB/s + 1ms latency: at least the nominal time.
		if got < time.Second+time.Millisecond {
			t.Fatalf("peer transfer too fast: %v", got)
		}
		if want := f.TransferTime(1 << 30); want < time.Second {
			t.Fatalf("TransferTime model off: %v", want)
		}
		if dst.Fingerprint() == 0 || dst.Fingerprint() != src.Fingerprint() {
			t.Fatalf("peer copy must carry content: fp=%d want %d", dst.Fingerprint(), src.Fingerprint())
		}
	})
}

func TestBroadcastSeedGate(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("test", func(p *sim.Proc) {
		f := NewFabric(DefaultConfig(), nil)
		pl := f.NewPlane("gpu-0")

		if pl.WaitSeed(p, "m") {
			t.Fatal("WaitSeed with no seed in flight must not wait")
		}
		pl.BeginSeed(p, "m")
		waited := false
		done := sim.NewWaitGroup(e)
		done.Add(1)
		p.Spawn("waiter", func(p *sim.Proc) {
			defer done.Done()
			waited = pl.WaitSeed(p, "m")
		})
		p.Sleep(time.Millisecond)
		pl.EndSeed("m")
		done.Wait(p)
		if !waited {
			t.Fatal("concurrent broadcaster must wait on the in-flight seed")
		}
	})
}

func TestHandoffReset(t *testing.T) {
	h := &Handoff{Mode: HandoffGPU, Export: 7, Bytes: 42, FP: 9}
	h.Reset(HandoffBounce)
	if h.Mode != HandoffBounce || h.Export != 0 || h.FP != 0 {
		t.Fatalf("Reset must clear attempt state: %+v", h)
	}
	if h.Bytes != 42 {
		t.Fatal("Reset must keep Bytes: the producer's size survives across attempts")
	}
}

func TestPlaneFailDrainsSeedGates(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("test", func(p *sim.Proc) {
		f := NewFabric(DefaultConfig(), nil)
		pl := f.NewPlane("gpu-0")
		pl.BeginSeed(p, "m1")
		pl.BeginSeed(p, "m2")
		released := 0
		done := sim.NewWaitGroup(e)
		for _, key := range []string{"m1", "m2"} {
			key := key
			done.Add(1)
			p.Spawn("waiter-"+key, func(p *sim.Proc) {
				defer done.Done()
				pl.WaitSeed(p, key)
				released++
			})
		}
		p.Sleep(time.Millisecond)
		pl.Fail()
		done.Wait(p)
		if released != 2 {
			t.Fatalf("Fail must wake all seed waiters, released=%d", released)
		}
	})
}

// TestPlaneFailIdempotent locks in Fail's re-entry contract: a flapping
// machine, or two fault paths racing to report the same death, must not
// re-strand exports, double-count stranded drops, or re-drain seed gates.
func TestPlaneFailIdempotent(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("test", func(p *sim.Proc) {
		reg := metrics.NewRegistry()
		f := NewFabric(DefaultConfig(), reg)
		pl := f.NewPlane("gpu-0")
		free := pl.Export("fn", "unmapped", testAlloc(t, e, 1<<20))
		held := pl.Export("fn", "mapped", testAlloc(t, e, 1<<20))
		f.BeginImport(held)

		pl.BeginSeed(p, "model")
		released := 0
		done := sim.NewWaitGroup(e)
		done.Add(1)
		p.Spawn("waiter", func(p *sim.Proc) {
			defer done.Done()
			pl.WaitSeed(p, "model")
			released++
		})
		p.Sleep(time.Millisecond)

		pl.Fail()
		pl.Fail() // must be a no-op
		done.Wait(p)

		if released != 1 {
			t.Fatalf("seed waiter released %d times, want 1", released)
		}
		if _, ok := f.Lookup(free.ID()); ok {
			t.Fatal("unmapped export must leave the namespace on Fail")
		}
		if got := reg.Get(CtrStranded); got != 1 {
			t.Fatalf("stranded counter after double Fail: %d, want 1 (mapped export still held)", got)
		}
		if f.LiveExports() != 1 {
			t.Fatalf("live exports after double Fail: %d, want 1", f.LiveExports())
		}

		// The consumer detaches: the mapped export drops as stranded (its
		// backing memory died with the machine — never freed here).
		f.EndImport(held)
		if got := reg.Get(CtrStranded); got != 2 {
			t.Fatalf("stranded counter after detach: %d, want 2", got)
		}
		if exp, frees, str := reg.Get(CtrExports), reg.Get(CtrExportFrees), reg.Get(CtrStranded); exp != frees+str+int64(f.LiveExports()) {
			t.Fatalf("export balance broken: exports=%d frees=%d stranded=%d live=%d", exp, frees, str, f.LiveExports())
		}

		pl.Fail() // still a no-op after quiesce
		if got := reg.Get(CtrStranded); got != 2 {
			t.Fatalf("stranded counter after third Fail: %d, want 2", got)
		}
	})
}
