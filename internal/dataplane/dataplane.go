// Package dataplane is the GPU-side data plane for chained serverless
// functions (ROADMAP item 2, following FaaSTube's GPU-oriented data layer).
//
// DGSF functions historically exchanged every intermediate tensor by bouncing
// it through the guest and objstore — a D2H copy, an object upload, a
// download, and an H2D copy — even when producer and consumer ran on API
// servers sharing one physical GPU. The data plane removes that bounce:
//
//   - Export/Import: a producer detaches a device allocation from its session
//     (cuda.Context.DetachPhys) and publishes it under a fabric-wide export
//     ID. A consumer on the same GPU server imports it as a zero-copy VMM
//     remap (same device) or an NVLink D2D clone (sibling device). No bytes
//     cross the host link either way.
//   - PeerCopy: a consumer on a different GPU server pulls the export over
//     the bandwidth-modeled data-plane fabric (GPUDirect-RDMA-style), still
//     skipping the objstore round trip.
//   - Broadcast: for shared-base-model fleets, the first session per GPU
//     server seeds a model copy from the modelcache host tier with a single
//     staged read and registers itself as the broadcast source; later
//     sessions clone it device-to-device at D2D/NVLink bandwidth instead of
//     paying N× host-to-device loads.
//
// A Fabric is cluster-wide (one per simulation); each GPU server gets a Plane
// via Fabric.NewPlane. Planes are bookkeeping only — the API server performs
// the actual VMM calls and copies — which keeps the package free of any
// dependency on the serving stack, mirroring how modelcache sits beside
// apiserver rather than under it.
package dataplane

import (
	"errors"
	"sort"
	"time"

	"dgsf/internal/cuda"
	"dgsf/internal/gpu"
	"dgsf/internal/metrics"
	"dgsf/internal/sim"
)

// Counter names registered on the fabric's metrics registry.
const (
	CtrExports         = "dataplane_exports"
	CtrImports         = "dataplane_imports"
	CtrBypassHits      = "dataplane_bypass_hits"
	CtrPeerCopies      = "dataplane_peer_copies"
	CtrPeerBytes       = "dataplane_peer_bytes"
	CtrBroadcastLoads  = "dataplane_broadcast_loads"
	CtrBroadcastClones = "dataplane_broadcast_clones"
	CtrFallbacks       = "dataplane_fallbacks"
	CtrExportFrees     = "dataplane_export_frees"
	CtrStranded        = "dataplane_exports_stranded"
	CtrFabricFaults    = "dataplane_fabric_faults"
)

// ErrHandoffLost reports that a GPU-side handoff could not complete (export
// missing, consumed, or stranded on a failed GPU server). Chain drivers treat
// it as the signal to fall back to the bounce-through-host path.
var ErrHandoffLost = errors.New("dataplane: handoff lost")

// ErrHandoffLost crosses the remoting boundary: consumers of a chained
// function see it through the generated stubs' status codes.
func init() { cuda.RegisterWireSentinel(9010, ErrHandoffLost) }

// ModelBroadcast source codes (the Src response field).
const (
	SrcMiss     = 0 // no cached copy and no live source: load normally
	SrcHostSeed = 1 // single host-staged read; caller became the source
	SrcClone    = 2 // device-to-device clone from the live source
)

// Config models the inter-GPU-server fabric link used by PeerCopy.
type Config struct {
	PeerBps float64       // cross-server transfer bandwidth, bytes/s
	PeerLat time.Duration // fixed per-transfer link latency
}

// DefaultConfig returns a 25 Gb/s RDMA-class fabric, the class of NIC on the
// paper's p3.8xlarge testbed.
func DefaultConfig() Config {
	return Config{PeerBps: 3.1e9, PeerLat: 30 * time.Microsecond}
}

// Fabric is the cluster-wide data plane: the export namespace shared by every
// GPU server plus the bandwidth model for transfers between them.
type Fabric struct {
	cfg     Config
	reg     *metrics.Registry
	nextID  uint64
	exports map[uint64]*Export

	// faultHook, when set, is consulted before every fabric transfer; a
	// non-nil return aborts the transfer with that error. The fault
	// framework interposes mid-handoff fabric failures here.
	faultHook func(p *sim.Proc, size int64) error
}

// NewFabric creates a fabric. A nil registry gets a private one.
func NewFabric(cfg Config, reg *metrics.Registry) *Fabric {
	if cfg.PeerBps <= 0 {
		cfg.PeerBps = DefaultConfig().PeerBps
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	f := &Fabric{cfg: cfg, reg: reg, exports: make(map[uint64]*Export)}
	// Register every counter up front so experiment reports always show the
	// full set (the registry renders in registration order).
	for _, name := range []string{
		CtrExports, CtrImports, CtrBypassHits, CtrPeerCopies,
		CtrPeerBytes, CtrBroadcastLoads, CtrBroadcastClones, CtrFallbacks,
		CtrExportFrees, CtrStranded, CtrFabricFaults,
	} {
		f.reg.Counter(name)
	}
	return f
}

// SetFaultHook installs the fabric-transfer fault hook (fault injection).
func (f *Fabric) SetFaultHook(hook func(p *sim.Proc, size int64) error) {
	f.faultHook = hook
}

// Metrics returns the fabric's registry.
func (f *Fabric) Metrics() *metrics.Registry { return f.reg }

// TransferTime returns the modeled duration of moving size bytes across the
// fabric (latency + size/bandwidth). Exposed for experiment analysis.
func (f *Fabric) TransferTime(size int64) time.Duration {
	d := f.cfg.PeerLat
	if size > 0 {
		d += time.Duration(float64(size) / f.cfg.PeerBps * float64(time.Second))
	}
	return d
}

// PeerTransfer moves an export's contents into dst across the fabric,
// charging link latency plus size/bandwidth on the virtual clock and both
// devices' copy engines (gpu.FabricCopy). An injected fabric fault aborts
// the transfer partway — roughly half the modeled time is charged, the
// destination contents stay undefined, and the typed error surfaces to the
// caller, which must release dst and leave the export untouched so a retry
// or fallback can still reach the data.
func (f *Fabric) PeerTransfer(p *sim.Proc, dst, src *gpu.PhysAlloc) error {
	if f.faultHook != nil {
		if err := f.faultHook(p, src.Size()); err != nil {
			f.reg.Counter(CtrFabricFaults).Inc()
			if half := f.TransferTime(src.Size()) / 2; half > 0 {
				p.Sleep(half)
			}
			return err
		}
	}
	gpu.FabricCopy(p, dst, src, f.cfg.PeerBps, f.cfg.PeerLat)
	return nil
}

// NoteFallback records a chain driver abandoning the GPU path for the
// host-bounce path.
func (f *Fabric) NoteFallback() { f.reg.Counter(CtrFallbacks).Inc() }

// Lookup finds a live export by ID.
func (f *Fabric) Lookup(id uint64) (*Export, bool) {
	x, ok := f.exports[id]
	return x, ok
}

// BeginImport records a zero-copy mapping of an export into a consumer
// session. This is the same-server bypass: the intermediate skipped the
// objstore round trip entirely.
func (f *Fabric) BeginImport(x *Export) {
	x.imports++
	x.taken = true
	f.reg.Counter(CtrImports).Inc()
	f.reg.Counter(CtrBypassHits).Inc()
}

// EndImport releases one zero-copy mapping. When the last mapping goes and
// the export has been consumed, the backing memory is freed and the export
// leaves the namespace; EndImport returns true in that case (the caller's
// context dropped its reference before calling, so the fabric was the last
// owner).
func (f *Fabric) EndImport(x *Export) bool {
	if x.imports > 0 {
		x.imports--
	}
	if x.imports == 0 && x.taken && !x.dropped {
		f.drop(x)
		return true
	}
	return false
}

// Consume finalizes a copying transfer (cross-device import or peer copy):
// the consumer owns a clone, so the source allocation is freed immediately
// unless zero-copy mappings still reference it.
func (f *Fabric) Consume(x *Export) {
	x.taken = true
	if x.imports == 0 && !x.dropped {
		f.drop(x)
	}
}

// NoteCrossDevImport records a same-machine, cross-device import. It still
// counts as a bypass: the host link was never touched.
func (f *Fabric) NoteCrossDevImport() {
	f.reg.Counter(CtrImports).Inc()
	f.reg.Counter(CtrBypassHits).Inc()
}

// NotePeerCopy records a cross-server fabric transfer.
func (f *Fabric) NotePeerCopy(size int64) {
	f.reg.Counter(CtrPeerCopies).Inc()
	f.reg.Counter(CtrPeerBytes).Add(size)
}

// drop removes the export from the namespace and frees its backing memory.
// Stranded exports (their machine died) leave the namespace without a Free:
// the device memory died with the machine, and the allocation may still be
// referenced by a consumer's zero-copy detach path.
func (f *Fabric) drop(x *Export) {
	x.dropped = true
	delete(f.exports, x.id)
	if x.stranded {
		f.reg.Counter(CtrStranded).Inc()
		return
	}
	f.reg.Counter(CtrExportFrees).Inc()
	x.phys.Free()
}

// Abandon releases an export that will never be consumed — the chain driver
// gave up on the GPU-side handoff (consumer failed, no healthy server to
// land it on) and is falling back to the bounce path. Without this the
// producer's tensor would sit on the device forever. Exports already taken
// or still mapped are left alone: a live consumer owns the lifecycle.
func (f *Fabric) Abandon(id uint64) {
	x, ok := f.exports[id]
	if !ok || x.taken || x.imports > 0 {
		return
	}
	f.drop(x)
}

// LiveExports returns the number of exports still in the namespace.
func (f *Fabric) LiveExports() int { return len(f.exports) }

// strandPlane marks every export of a failed plane stranded. Exports with no
// live zero-copy mappings leave the namespace immediately; mapped ones stay
// until their consumers detach (EndImport drains the refcount and drop then
// skips the Free — the backing device is gone). Conservation invariant for
// the chaos oracle: exports == export_frees + exports_stranded + live.
func (f *Fabric) strandPlane(pl *Plane) {
	ids := make([]uint64, 0, len(f.exports))
	for id, x := range f.exports {
		if x.pl == pl {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		x := f.exports[id]
		x.stranded = true
		if x.imports == 0 {
			f.drop(x)
		}
	}
}

// Plane is one GPU server's view of the data plane: its exports and its
// model-broadcast sources. Created by Fabric.NewPlane and handed to every API
// server on that machine via the server config.
type Plane struct {
	f      *Fabric
	name   string
	failed bool
	// broadcast sources per model key, live while the seeding session holds
	// the allocation.
	sources map[string]*gpu.PhysAlloc
	loads   map[string]int            // host-staged reads per model key
	seeding map[string]*sim.WaitGroup // host-staged seeds in flight
}

// NewPlane creates the plane for one GPU server.
func (f *Fabric) NewPlane(name string) *Plane {
	return &Plane{
		f:       f,
		name:    name,
		sources: make(map[string]*gpu.PhysAlloc),
		loads:   make(map[string]int),
		seeding: make(map[string]*sim.WaitGroup),
	}
}

// Name returns the owning GPU server's name.
func (pl *Plane) Name() string { return pl.name }

// Fabric returns the cluster fabric.
func (pl *Plane) Fabric() *Fabric { return pl.f }

// Fail marks the GPU server dead: its exports are stranded (they leave the
// namespace once unmapped, without freeing device memory that died with the
// machine), its broadcast sources are dropped, and in-flight seed waiters
// are released, so consumers see prompt errors instead of hanging on a
// machine that no longer exists. Idempotent: a second Fail — a flapping
// machine, or overlapping fault paths racing to report the same death —
// must not re-strand exports or re-drain seed waiters.
func (pl *Plane) Fail() {
	if pl.failed {
		return
	}
	pl.failed = true
	pl.f.strandPlane(pl)
	pl.sources = make(map[string]*gpu.PhysAlloc)
	pl.loads = make(map[string]int)
	keys := make([]string, 0, len(pl.seeding))
	for k := range pl.seeding {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pl.EndSeed(k)
	}
}

// Failed reports whether the GPU server was marked dead.
func (pl *Plane) Failed() bool { return pl.failed }

// --- exports ---

// Export is a published tensor: a physical device allocation detached from
// its producing session, owned by the plane until a consumer takes it.
type Export struct {
	id   uint64
	pl   *Plane
	fn   string
	tag  string
	phys *gpu.PhysAlloc

	imports  int  // live zero-copy mappings held by consumer sessions
	taken    bool // at least one consumer received the data
	dropped  bool // removed from the fabric namespace
	stranded bool // machine died; backing memory is gone, never freed here
}

// ID returns the fabric-wide export ID.
func (x *Export) ID() uint64 { return x.id }

// Size returns the tensor size in bytes.
func (x *Export) Size() int64 { return x.phys.Size() }

// Tag returns the producer-chosen label.
func (x *Export) Tag() string { return x.tag }

// Phys returns the backing allocation.
func (x *Export) Phys() *gpu.PhysAlloc { return x.phys }

// LocalTo reports whether the export lives on pl's GPU server.
func (x *Export) LocalTo(pl *Plane) bool { return x.pl == pl }

// SourceFailed reports whether the GPU server holding the export died; its
// device memory died with it, so consumers must fall back to the bounce path.
func (x *Export) SourceFailed() bool { return x.pl.failed }

// Export publishes a detached allocation under a fresh fabric-wide ID.
func (pl *Plane) Export(fnID, tag string, phys *gpu.PhysAlloc) *Export {
	pl.f.nextID++
	x := &Export{id: pl.f.nextID, pl: pl, fn: fnID, tag: tag, phys: phys}
	pl.f.exports[x.id] = x
	pl.f.reg.Counter(CtrExports).Inc()
	return x
}

// --- model broadcast ---

// BroadcastSource returns the live broadcast source allocation for a model
// key on this GPU server, if any.
func (pl *Plane) BroadcastSource(key string) (*gpu.PhysAlloc, bool) {
	a, ok := pl.sources[key]
	return a, ok
}

// SetBroadcastSource registers a freshly host-seeded model copy as the
// broadcast source for key and counts the staged read.
func (pl *Plane) SetBroadcastSource(key string, a *gpu.PhysAlloc) {
	pl.sources[key] = a
	pl.loads[key]++
	pl.f.reg.Counter(CtrBroadcastLoads).Inc()
}

// NoteBroadcastClone counts a device-to-device clone served from a source.
func (pl *Plane) NoteBroadcastClone() {
	pl.f.reg.Counter(CtrBroadcastClones).Inc()
}

// DropBroadcastSource deregisters the source backed by allocation a (called
// when the seeding session frees it or ends). Later broadcasts on this server
// re-seed from the host tier.
func (pl *Plane) DropBroadcastSource(key string) {
	delete(pl.sources, key)
}

// HostLoads returns how many host-staged reads key has cost on this server —
// the quantity the broadcast experiment proves stays at 1 for an N-way
// fan-out.
func (pl *Plane) HostLoads(key string) int { return pl.loads[key] }

// BeginSeed marks a host-staged seed for key as in flight. Concurrent
// broadcasters of the same model wait on the gate instead of each paying a
// host read — that is what keeps an N-way simultaneous fan-out at one staged
// read. The sim is cooperatively scheduled, so the check-then-begin sequence
// in the API server cannot interleave with another seeder.
func (pl *Plane) BeginSeed(p *sim.Proc, key string) {
	wg := sim.NewWaitGroup(p.Engine())
	wg.Add(1)
	pl.seeding[key] = wg
}

// EndSeed completes (or aborts) the in-flight seed for key and wakes waiters.
// Waiters re-check for a live source; after an aborted seed one of them takes
// over as the seeder.
func (pl *Plane) EndSeed(key string) {
	if wg, ok := pl.seeding[key]; ok {
		delete(pl.seeding, key)
		wg.Done()
	}
}

// WaitSeed blocks while a seed for key is in flight, reporting whether it
// waited at all.
func (pl *Plane) WaitSeed(p *sim.Proc, key string) bool {
	wg, ok := pl.seeding[key]
	if !ok {
		return false
	}
	wg.Wait(p)
	return true
}

// --- chain handoff state (shared between chained function bodies) ---

// HandoffMode selects how a chained intermediate travels.
type HandoffMode int

const (
	// HandoffBounce is the baseline: D2H + objstore round trip + H2D.
	HandoffBounce HandoffMode = iota
	// HandoffGPU keeps the tensor on the GPU side: MemImport on the same
	// server, PeerCopy across servers.
	HandoffGPU
)

// Handoff carries the data-plane state between a producer and a consumer
// function body. The chain driver resets it per attempt and flips Mode when
// falling back; the bodies read Mode and fill/consume the rest.
type Handoff struct {
	Mode   HandoffMode
	Export uint64 // fabric export ID (HandoffGPU)
	Bytes  int64  // intermediate size, set by the producer
	FP     uint64 // producer-side content fingerprint (bounce path carries it)
}

// Reset prepares the handoff for a fresh chain attempt in the given mode.
func (h *Handoff) Reset(mode HandoffMode) {
	h.Mode = mode
	h.Export = 0
	h.FP = 0
}
