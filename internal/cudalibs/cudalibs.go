// Package cudalibs emulates the vendor math libraries DGSF interposes on
// top of the CUDA runtime: cuDNN (deep-learning primitives) and cuBLAS
// (dense linear algebra).
//
// The paper's serverless optimizations act on two properties of these
// libraries, both reproduced here:
//
//   - handle creation is expensive and memory-hungry (cuDNN: ~1.2 s and
//     ~386 MB; cuBLAS: ~0.2 s and ~70 MB), which makes per-API-server handle
//     pools worth 1.4 s of critical-path latency (§V-C);
//   - model loading issues large numbers of cheap descriptor-management
//     calls (cudnnCreate*Descriptor / cudnnSet*Descriptor), each of which
//     costs a network round trip when remoted naively — the motivation for
//     guest-side descriptor pooling and call batching.
package cudalibs

import (
	"time"

	"dgsf/internal/cuda"
	"dgsf/internal/gpu"
	"dgsf/internal/sim"
)

// Handle identifiers crossing the remoting wire.
type (
	// DNNHandle names a cuDNN handle.
	DNNHandle uint64
	// BLASHandle names a cuBLAS handle.
	BLASHandle uint64
	// Descriptor names a cuDNN descriptor (tensor, filter, convolution, ...).
	Descriptor uint64
)

// DescriptorKind enumerates the cuDNN descriptor types the workloads create.
type DescriptorKind int

// Descriptor kinds.
const (
	TensorDescriptor DescriptorKind = iota + 1
	FilterDescriptor
	ConvolutionDescriptor
	ActivationDescriptor
	PoolingDescriptor
)

// Costs models library-side fixed costs, calibrated from §V-C.
type Costs struct {
	DNNCreateTime  time.Duration // cudnnCreate
	DNNBytes       int64         // workspace held by a cuDNN handle
	BLASCreateTime time.Duration // cublasCreate
	BLASBytes      int64         // workspace held by a cuBLAS handle
	DescTime       time.Duration // CPU cost of descriptor create/set/destroy
}

// DefaultCosts returns the paper-calibrated values.
func DefaultCosts() Costs {
	return Costs{
		DNNCreateTime:  1200 * time.Millisecond,
		DNNBytes:       386 << 20,
		BLASCreateTime: 200 * time.Millisecond,
		BLASBytes:      70 << 20,
		DescTime:       1200 * time.Nanosecond,
	}
}

// Libs is the per-context library state: live handles and descriptors.
type Libs struct {
	costs Costs

	nextID uint64
	dnn    map[DNNHandle]*dnnState
	blas   map[BLASHandle]*blasState
	descs  map[Descriptor]DescriptorKind
}

type dnnState struct {
	ctx       *cuda.Context
	workspace *gpu.PhysAlloc
}

type blasState struct {
	ctx       *cuda.Context
	workspace *gpu.PhysAlloc
}

// New returns empty library state with the given cost model.
func New(costs Costs) *Libs {
	return &Libs{
		costs: costs,
		dnn:   make(map[DNNHandle]*dnnState),
		blas:  make(map[BLASHandle]*blasState),
		descs: make(map[Descriptor]DescriptorKind),
	}
}

// Costs returns the cost model.
func (l *Libs) Costs() Costs { return l.costs }

func (l *Libs) id() uint64 {
	l.nextID++
	return l.nextID
}

// --- cuDNN ---

// DNNCreate mirrors cudnnCreate: expensive, and pins workspace memory on the
// context's device.
func (l *Libs) DNNCreate(p *sim.Proc, ctx *cuda.Context) (DNNHandle, error) {
	if l.costs.DNNCreateTime > 0 {
		p.Sleep(l.costs.DNNCreateTime)
	}
	var ws *gpu.PhysAlloc
	if l.costs.DNNBytes > 0 {
		a, err := ctx.Device().AllocPhys(l.costs.DNNBytes)
		if err != nil {
			return 0, cuda.ErrMemoryAllocation
		}
		ws = a
	}
	h := DNNHandle(l.id())
	l.dnn[h] = &dnnState{ctx: ctx, workspace: ws}
	return h, nil
}

// DNNDestroy mirrors cudnnDestroy.
func (l *Libs) DNNDestroy(p *sim.Proc, h DNNHandle) error {
	s, ok := l.dnn[h]
	if !ok {
		return cuda.ErrInvalidResourceHandle
	}
	if s.workspace != nil {
		s.workspace.Free()
	}
	delete(l.dnn, h)
	return nil
}

// DNNContext returns the context a handle is bound to (the migration engine
// needs this to rebind handles after a context switch).
func (l *Libs) DNNContext(h DNNHandle) (*cuda.Context, bool) {
	s, ok := l.dnn[h]
	if !ok {
		return nil, false
	}
	return s.ctx, true
}

// RebindDNN points an existing handle at a new context, moving its workspace
// allocation to the new device. Used on migration.
func (l *Libs) RebindDNN(p *sim.Proc, h DNNHandle, ctx *cuda.Context) error {
	s, ok := l.dnn[h]
	if !ok {
		return cuda.ErrInvalidResourceHandle
	}
	if s.workspace != nil {
		ws, err := ctx.Device().AllocPhys(s.workspace.Size())
		if err != nil {
			return cuda.ErrMemoryAllocation
		}
		s.workspace.Free()
		s.workspace = ws
	}
	s.ctx = ctx
	return nil
}

// CreateDescriptor mirrors cudnnCreate*Descriptor: a host-side allocation.
func (l *Libs) CreateDescriptor(p *sim.Proc, kind DescriptorKind) (Descriptor, error) {
	if l.costs.DescTime > 0 {
		p.Sleep(l.costs.DescTime)
	}
	d := Descriptor(l.id())
	l.descs[d] = kind
	return d, nil
}

// SetDescriptor mirrors cudnnSet*Descriptor: host-side state only.
func (l *Libs) SetDescriptor(p *sim.Proc, d Descriptor) error {
	if l.costs.DescTime > 0 {
		p.Sleep(l.costs.DescTime)
	}
	if _, ok := l.descs[d]; !ok {
		return cuda.ErrInvalidResourceHandle
	}
	return nil
}

// DestroyDescriptor mirrors cudnnDestroy*Descriptor.
func (l *Libs) DestroyDescriptor(p *sim.Proc, d Descriptor) error {
	if l.costs.DescTime > 0 {
		p.Sleep(l.costs.DescTime)
	}
	if _, ok := l.descs[d]; !ok {
		return cuda.ErrInvalidResourceHandle
	}
	delete(l.descs, d)
	return nil
}

// DescriptorCount returns the number of live descriptors (tests).
func (l *Libs) DescriptorCount() int { return len(l.descs) }

// DNNForward mirrors a cuDNN compute call (cudnnConvolutionForward and
// friends): it launches a kernel of the given nominal duration on the
// handle's context.
func (l *Libs) DNNForward(p *sim.Proc, h DNNHandle, op string, dur time.Duration, bufs []cuda.DevPtr) error {
	s, ok := l.dnn[h]
	if !ok {
		return cuda.ErrInvalidResourceHandle
	}
	fn, err := s.ctx.RegisterFunction(p, "cudnn::"+op)
	if err != nil {
		return err
	}
	if err := s.ctx.LaunchKernel(p, cuda.LaunchParams{Fn: fn, Duration: dur, Mutates: bufs}); err != nil {
		return err
	}
	return s.ctx.StreamSynchronize(p, 0)
}

// --- cuBLAS ---

// BLASCreate mirrors cublasCreate.
func (l *Libs) BLASCreate(p *sim.Proc, ctx *cuda.Context) (BLASHandle, error) {
	if l.costs.BLASCreateTime > 0 {
		p.Sleep(l.costs.BLASCreateTime)
	}
	var ws *gpu.PhysAlloc
	if l.costs.BLASBytes > 0 {
		a, err := ctx.Device().AllocPhys(l.costs.BLASBytes)
		if err != nil {
			return 0, cuda.ErrMemoryAllocation
		}
		ws = a
	}
	h := BLASHandle(l.id())
	l.blas[h] = &blasState{ctx: ctx, workspace: ws}
	return h, nil
}

// BLASDestroy mirrors cublasDestroy.
func (l *Libs) BLASDestroy(p *sim.Proc, h BLASHandle) error {
	s, ok := l.blas[h]
	if !ok {
		return cuda.ErrInvalidResourceHandle
	}
	if s.workspace != nil {
		s.workspace.Free()
	}
	delete(l.blas, h)
	return nil
}

// RebindBLAS points an existing handle at a new context on migration.
func (l *Libs) RebindBLAS(p *sim.Proc, h BLASHandle, ctx *cuda.Context) error {
	s, ok := l.blas[h]
	if !ok {
		return cuda.ErrInvalidResourceHandle
	}
	if s.workspace != nil {
		ws, err := ctx.Device().AllocPhys(s.workspace.Size())
		if err != nil {
			return cuda.ErrMemoryAllocation
		}
		s.workspace.Free()
		s.workspace = ws
	}
	s.ctx = ctx
	return nil
}

// GEMM mirrors cublasSgemm: one kernel on the handle's context.
func (l *Libs) GEMM(p *sim.Proc, h BLASHandle, dur time.Duration, bufs []cuda.DevPtr) error {
	s, ok := l.blas[h]
	if !ok {
		return cuda.ErrInvalidResourceHandle
	}
	fn, err := s.ctx.RegisterFunction(p, "cublas::gemm")
	if err != nil {
		return err
	}
	if err := s.ctx.LaunchKernel(p, cuda.LaunchParams{Fn: fn, Duration: dur, Mutates: bufs}); err != nil {
		return err
	}
	return s.ctx.StreamSynchronize(p, 0)
}

// DNNCount and BLASCount return live handle counts (tests, monitor).
func (l *Libs) DNNCount() int  { return len(l.dnn) }
func (l *Libs) BLASCount() int { return len(l.blas) }
