package cudalibs

import (
	"errors"
	"testing"
	"time"

	"dgsf/internal/cuda"
	"dgsf/internal/gpu"
	"dgsf/internal/sim"
)

func rig(e *sim.Engine, p *sim.Proc, n int) (*cuda.Runtime, []*gpu.Device) {
	devs := make([]*gpu.Device, n)
	for i := range devs {
		cfg := gpu.V100Config(i)
		cfg.CopyLat, cfg.KernelLat = 0, 0
		devs[i] = gpu.New(e, cfg)
	}
	rt := cuda.NewRuntime(e, devs, cuda.Costs{})
	if err := rt.Init(p); err != nil {
		panic(err)
	}
	return rt, devs
}

func TestDNNHandleCostAndFootprint(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		rt, devs := rig(e, p, 1)
		ctx, _ := rt.CurrentContext(p)
		l := New(DefaultCosts())
		start := p.Now()
		h, err := l.DNNCreate(p, ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Now() - start; got != 1200*time.Millisecond {
			t.Fatalf("cudnnCreate took %v, want 1.2s", got)
		}
		if got := devs[0].UsedBytes(); got != 386<<20 {
			t.Fatalf("cuDNN footprint = %d, want 386MB", got)
		}
		if err := l.DNNDestroy(p, h); err != nil {
			t.Fatal(err)
		}
		if got := devs[0].UsedBytes(); got != 0 {
			t.Fatalf("footprint after destroy = %d, want 0", got)
		}
	})
}

func TestBLASHandleCostAndFootprint(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		rt, devs := rig(e, p, 1)
		ctx, _ := rt.CurrentContext(p)
		l := New(DefaultCosts())
		start := p.Now()
		h, err := l.BLASCreate(p, ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Now() - start; got != 200*time.Millisecond {
			t.Fatalf("cublasCreate took %v, want 0.2s", got)
		}
		if got := devs[0].UsedBytes(); got != 70<<20 {
			t.Fatalf("cuBLAS footprint = %d, want 70MB", got)
		}
		_ = l.BLASDestroy(p, h)
	})
}

func TestDescriptorLifecycle(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		l := New(DefaultCosts())
		d, err := l.CreateDescriptor(p, ConvolutionDescriptor)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.SetDescriptor(p, d); err != nil {
			t.Fatal(err)
		}
		if err := l.DestroyDescriptor(p, d); err != nil {
			t.Fatal(err)
		}
		if err := l.SetDescriptor(p, d); !errors.Is(err, cuda.ErrInvalidResourceHandle) {
			t.Fatalf("Set on destroyed descriptor = %v", err)
		}
		if got := l.DescriptorCount(); got != 0 {
			t.Fatalf("live descriptors = %d, want 0", got)
		}
	})
}

func TestDNNForwardLaunchesOnContext(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		rt, _ := rig(e, p, 1)
		ctx, _ := rt.CurrentContext(p)
		l := New(Costs{}) // zero costs: isolate kernel time
		h, _ := l.DNNCreate(p, ctx)
		buf, _ := ctx.Malloc(p, 4096)
		start := p.Now()
		if err := l.DNNForward(p, h, "conv", 50*time.Millisecond, []cuda.DevPtr{buf}); err != nil {
			t.Fatal(err)
		}
		if got := p.Now() - start; got != 50*time.Millisecond {
			t.Fatalf("DNNForward took %v, want 50ms", got)
		}
	})
}

func TestGEMMInvalidHandle(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		l := New(Costs{})
		if err := l.GEMM(p, BLASHandle(5), time.Millisecond, nil); !errors.Is(err, cuda.ErrInvalidResourceHandle) {
			t.Fatalf("GEMM with bad handle = %v", err)
		}
	})
}

func TestRebindMovesWorkspace(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		rt, devs := rig(e, p, 2)
		ctx0, _ := rt.Context(p, 0)
		ctx1, _ := rt.Context(p, 1)
		l := New(DefaultCosts())
		h, _ := l.DNNCreate(p, ctx0)
		if got := devs[0].UsedBytes(); got != 386<<20 {
			t.Fatalf("workspace on dev0 = %d", got)
		}
		if err := l.RebindDNN(p, h, ctx1); err != nil {
			t.Fatal(err)
		}
		if got := devs[0].UsedBytes(); got != 0 {
			t.Fatalf("dev0 usage after rebind = %d, want 0", got)
		}
		if got := devs[1].UsedBytes(); got != 386<<20 {
			t.Fatalf("dev1 usage after rebind = %d, want 386MB", got)
		}
		// Forward now runs on the new context without error.
		if err := l.DNNForward(p, h, "conv", time.Millisecond, nil); err != nil {
			t.Fatal(err)
		}
	})
}

func TestIdleAPIServerFootprint(t *testing.T) {
	// Paper §V-C: context (303 MB) + cuDNN (386 MB) + cuBLAS (70 MB) ≈ 755 MB
	// for an idle pre-initialized API server.
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		dev := gpu.New(e, gpu.V100Config(0))
		costs := cuda.DefaultCosts()
		costs.InitJitter = 0
		rt := cuda.NewRuntime(e, []*gpu.Device{dev}, costs)
		_ = rt.Init(p)
		ctx, _ := rt.CurrentContext(p)
		l := New(DefaultCosts())
		_, _ = l.DNNCreate(p, ctx)
		_, _ = l.BLASCreate(p, ctx)
		want := int64(303+386+70) << 20
		if got := dev.UsedBytes(); got != want {
			t.Fatalf("idle API server footprint = %d MB, want 759 MB (paper: ~755)", got>>20)
		}
	})
}
