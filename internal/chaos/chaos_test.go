package chaos

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dgsf/internal/faults"
)

func TestTrialSeedDeterministic(t *testing.T) {
	if TrialSeed(1, 0) != TrialSeed(1, 0) {
		t.Fatal("TrialSeed is not a pure function")
	}
	if TrialSeed(1, 0) < 0 {
		t.Fatal("TrialSeed must be non-negative")
	}
	seen := map[int64]bool{}
	for trial := 0; trial < 64; trial++ {
		s := TrialSeed(7, trial)
		if seen[s] {
			t.Fatalf("TrialSeed collision at trial %d", trial)
		}
		seen[s] = true
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		a := Generate(3, trial)
		b := Generate(3, trial)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: Generate is not deterministic:\n%+v\n%+v", trial, a, b)
		}
	}
	// Trials must alternate workloads so campaigns exercise both harnesses.
	if Generate(3, 0).Workload != WorkloadPipeline || Generate(3, 1).Workload != WorkloadFleet {
		t.Fatal("trial parity does not alternate pipeline/fleet")
	}
}

// TestRunScheduleDeterministic replays the same (seed, schedule) pair twice
// and demands bit-identical results — the property every reproducer file
// depends on.
func TestRunScheduleDeterministic(t *testing.T) {
	for _, trial := range []int{0, 1} {
		s := Generate(1, trial)
		a := RunSchedule(1, s)
		b := RunSchedule(1, s)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: RunSchedule is not deterministic:\n%+v\n%+v", s, a, b)
		}
	}
}

// TestCampaignCleanSmoke runs the first two trials of seed 1 — one pipeline,
// one fleet — and expects the oracle to stay quiet, the same bar the full
// CI campaign holds over 50 trials per seed.
func TestCampaignCleanSmoke(t *testing.T) {
	r := RunCampaign(1, 2, CampaignConfig{})
	if r.Violations != 0 || r.Hangs != 0 {
		t.Fatalf("clean campaign found violations: %s\ntrials: %+v", r.Summary(), r.Trials)
	}
	if r.Fleet != 1 || r.Pipeline != 1 {
		t.Fatalf("expected one trial per workload, got fleet=%d pipeline=%d", r.Fleet, r.Pipeline)
	}
	if r.Invocations == 0 {
		t.Fatal("campaign completed zero invocations")
	}
}

// canarySchedule builds the shrinker self-test input: a pipeline schedule
// with the seeded export leak armed, a fabric fault rate high enough to
// guarantee fallbacks (which is what triggers the leak), and a pile of
// irrelevant noise faults for ddmin to strip away.
func canarySchedule() Schedule {
	s := Schedule{
		Workload:    WorkloadPipeline,
		Servers:     3,
		Invocations: 4,
		CrossServer: true, // tensor must ride the fabric for the fault to bite
		CanaryLeak:  true,
	}
	s.Plan.FabricFaultRate = 0.9
	s.Plan.Events = append(s.Plan.Events, faults.Event{
		At: 8 * time.Second, Kind: faults.KillAPIServer, Server: 4,
	})
	s.Plan.Brownouts = append(s.Plan.Brownouts,
		faults.Brownout{At: 2 * time.Second, Dur: time.Second, Server: 1, Factor: 3},
		faults.Brownout{At: 6 * time.Second, Dur: time.Second, Server: 2, Factor: 4},
	)
	s.Plan.CorruptRate = 0.05
	s.Plan.DowngradeRate = 0.2
	return s
}

// TestShrinkerCanary is the self-test demanded by the CI chaos job: seed a
// known bug (an export leaked on every chain fallback), confirm the oracle
// catches it, and confirm the shrinker strips the six-element noise plan
// down to at most three elements while still reproducing the violation.
func TestShrinkerCanary(t *testing.T) {
	s := canarySchedule()
	r := RunSchedule(11, s)
	if len(r.Violations) == 0 {
		t.Fatal("canary schedule did not trip the oracle")
	}
	found := false
	for _, v := range r.Violations {
		if v.Check == "export-leak" {
			found = true
		}
	}
	if !found {
		t.Fatalf("canary violations missing export-leak: %+v", r.Violations)
	}

	fails := func(c Schedule) bool { return len(RunSchedule(11, c).Violations) > 0 }
	min, stats := Shrink(s, fails, 24)
	if stats.From != 6 {
		t.Fatalf("canary plan should atomize to 6 elements, got %d", stats.From)
	}
	if stats.Elements > 3 {
		t.Fatalf("shrinker left %d elements (want <= 3) after %d runs: %+v",
			stats.Elements, stats.Runs, min.Plan)
	}
	if !fails(min) {
		t.Fatal("minimized schedule no longer reproduces the violation")
	}
	if !min.CanaryLeak {
		t.Fatal("shrinking must not strip schedule fields outside the plan")
	}
}

func TestShrinkEmptyPlanFastPath(t *testing.T) {
	s := Generate(1, 1) // fleet schedule with a handful of elements
	if len(atomize(s.Plan)) == 0 {
		t.Skip("generated plan has no elements")
	}
	// A predicate that fails regardless of the plan (a pure workload bug)
	// must shrink to the empty plan in a single run.
	min, stats := Shrink(s, func(Schedule) bool { return true }, 24)
	if stats.Elements != 0 {
		t.Fatalf("always-failing predicate should shrink to 0 elements, got %d", stats.Elements)
	}
	if stats.Runs != 1 {
		t.Fatalf("empty-plan fast path should cost exactly 1 run, got %d", stats.Runs)
	}
	if got := len(atomize(min.Plan)); got != 0 {
		t.Fatalf("minimal plan still has %d elements", got)
	}
}

func TestAtomizeRebuildRoundTrip(t *testing.T) {
	s := Generate(9, 3)
	els := atomize(s.Plan)
	if !reflect.DeepEqual(rebuild(s.Plan, els), s.Plan) {
		t.Fatal("rebuild(atomize(p)) != p")
	}
	if !reflect.DeepEqual(rebuild(s.Plan, nil), faults.Plan{}) {
		t.Fatal("rebuild with no kept elements should be the zero plan")
	}
}

func TestReproRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := Repro{
		Seed:     3,
		Trial:    14,
		Schedule: canarySchedule(),
		Violations: []Violation{
			{Check: "export-leak", Detail: "1 exports still live at quiesce"},
		},
		Shrink: ShrinkStats{Runs: 9, From: 6, Elements: 1},
	}
	path, err := WriteRepro(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "chaos-repro-seed3-trial14.json"); path != want {
		t.Fatalf("repro path %q, want %q", path, want)
	}
	got, err := ReadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("repro round trip mismatch:\n%+v\n%+v", got, r)
	}
}
