package chaos

import (
	"fmt"
	"time"

	"dgsf/internal/controller"
	"dgsf/internal/cuda"
	"dgsf/internal/dataplane"
	"dgsf/internal/faas"
	"dgsf/internal/faults"
	"dgsf/internal/gpu"
	"dgsf/internal/gpuserver"
	"dgsf/internal/guest"
	"dgsf/internal/metrics"
	"dgsf/internal/remoting"
	"dgsf/internal/remoting/gen"
	"dgsf/internal/sim"
	"dgsf/internal/store"
	"dgsf/internal/workloads"
)

// RunSchedule executes one schedule and returns the oracle's verdict. A
// deadlock or virtual-time-limit panic from the engine is captured as a
// "hang" violation rather than crashing the campaign — a hang IS a finding.
func RunSchedule(seed int64, s Schedule) (res Result) {
	defer func() {
		if r := recover(); r != nil {
			res.Hang = true
			detail := fmt.Sprint(r)
			if len(detail) > 12000 {
				detail = detail[:12000] + " ..."
			}
			res.Violations = append(res.Violations, Violation{Check: "hang", Detail: detail})
		}
	}()
	switch s.Workload {
	case WorkloadFleet:
		return runFleetSchedule(seed, s)
	default:
		return runPipelineSchedule(seed, s)
	}
}

// chaosFleetFn builds the fleet workload's function profile: a model
// download that is host-cacheable plus one kernel, like the fleet
// experiment's, so the staged-model reclaim loop has real work.
func chaosFleetFn(name string, kernel time.Duration) *faas.Function {
	return &faas.Function{
		Name:          name,
		GPUMem:        1 << 30,
		DownloadBytes: 10e6,
		ModelDLBytes:  8e6,
		Run: func(p *sim.Proc, api gen.API) error {
			fns, err := api.RegisterKernels(p, []string{"work"})
			if err != nil {
				return err
			}
			if err := api.LaunchKernel(p, cuda.LaunchParams{Fn: fns[0], Duration: kernel}); err != nil {
				return err
			}
			return api.DeviceSynchronize(p)
		},
	}
}

// runFleetSchedule drives the schedule's submissions through the full
// control plane — watched store, remote placement controller under a
// supervisor, reclaim controller, one agent per machine — with the fault
// plan armed, then runs the store, session, and wire invariants.
func runFleetSchedule(seed int64, s Schedule) Result {
	var res Result
	e := sim.NewEngine(seed)
	e.SetTimeLimit(2 * time.Hour)
	reg := metrics.NewRegistry()
	st := store.New(e, reg)
	wireStart := remoting.SnapshotWireStats()

	e.Run("chaos-fleet", func(p *sim.Proc) {
		// Oracle watches first: opened at RV 0 before the cluster's first
		// write, they see the complete history of both kinds.
		sessObs, err := observe(p, st, store.KindSession)
		if err != nil {
			panic(err)
		}
		gsObs, err := observe(p, st, store.KindGPUServer)
		if err != nil {
			panic(err)
		}

		env := faas.OpenFaaSEnv()
		env.Download.Latency = 0
		env.Download.JitterFrac = 0
		// Wider than the default: the generator's partition windows must be
		// survivable by retrying through them. The placement controller below
		// must share the same budget — it is the side that marks a session
		// Failed, so a smaller controller budget silently truncates the
		// backend's (recovery gap found by seed 2, trial 3: the controller's
		// default of 5 failed sessions the backend had 5 more attempts for).
		const maxAttempts = 10
		backend := faas.NewFleet(e, st, faas.FleetConfig{
			Env:          env,
			Registry:     reg,
			MaxAttempts:  maxAttempts,
			RetryBackoff: 75 * time.Millisecond,
		})
		var machines []*gpuserver.GPUServer
		for i := 0; i < s.Servers; i++ {
			cfg := gpuserver.DefaultConfig()
			cfg.GPUs, cfg.ServersPerGPU = 1, 1
			// Recovery gap found by this engine (seed 1, trial 29): with
			// DefaultConfig's zero HeartbeatPeriod and QueueDeadline, a
			// KillAPIServer event is never detected and never shed, so the
			// invocation queued behind it waits past the virtual time limit.
			// Detection + shedding turn the kill into a retryable fault.
			cfg.HeartbeatPeriod = 50 * time.Millisecond
			cfg.HeartbeatMisses = 3
			cfg.QueueDeadline = 5 * time.Minute
			cfg.PoolHandles = false
			cfg.CUDACosts = cuda.Costs{}
			cfg.LibCosts.DNNCreateTime = 0
			cfg.LibCosts.BLASCreateTime = 0
			cfg.GPUConfig = func(i int) gpu.Config {
				c := gpu.V100Config(i)
				c.CopyLat, c.KernelLat = 0, 0
				return c
			}
			cfg.Cache.Enable = true
			cfg.Cache.HostBudget = 1 << 30
			cfg.Cache.DeviceBudget = -1
			gs := gpuserver.New(e, cfg)
			gs.Start(p)
			machines = append(machines, gs)
			name := fmt.Sprintf("gpu-%03d", i)
			backend.AddServer(name, gs)
			agent := gpuserver.NewAgent(gs, st, name, gpuserver.AgentConfig{
				SyncPeriod:  200 * time.Millisecond,
				StageBudget: 20e6,
			})
			p.SpawnDaemon("agent-"+name, agent.Run)
		}
		p.Sleep(250 * time.Millisecond) // first agent sync: fleet visible in store

		l := remoting.NewListener(e)
		p.SpawnDaemon("store-serve", func(p *sim.Proc) { store.Serve(p, st, l) })
		remoteHandle := func() store.Interface {
			return store.NewRemote(e, remoting.Dial(e, l, remoting.NetProfile{RTT: 100 * time.Microsecond}))
		}

		inj := faults.NewInjector(e, s.Plan, machines)
		inj.BindStore(st)
		inj.Arm(p)
		backend.DialHook = inj.WrapConn
		backend.DialServerHook = inj.WrapTargetConn

		var active *controller.Controller
		p.Spawn("placement-supervisor", func(p *sim.Proc) {
			faas.RunSupervised(p, 10*time.Millisecond, 5, func() *controller.Controller {
				handle := remoteHandle()
				fuse := store.NewFuse(handle)
				inj.BindControllerFuse(fuse)
				active = faas.NewPlacementController(fuse, faas.PlacementConfig{
					Resync:      100 * time.Millisecond,
					Registry:    reg,
					MaxAttempts: maxAttempts,
				})
				return active
			})
		})
		reclaim := faas.NewReclaimController(st, faas.ReclaimConfig{Resync: 200 * time.Millisecond, Registry: reg})
		p.Spawn("reclaim", reclaim.Run)

		if err := backend.Run(p); err != nil {
			panic(err)
		}
		fns := []*faas.Function{
			chaosFleetFn("detect", 150*time.Millisecond),
			chaosFleetFn("classify", 100*time.Millisecond),
			chaosFleetFn("embed", 250*time.Millisecond),
			chaosFleetFn("rank", 80*time.Millisecond),
		}
		for i := 0; i < s.Invocations; i++ {
			backend.Submit(p, fns[i%len(fns)])
			p.Sleep(time.Duration(p.Rand().ExpFloat64() * float64(30*time.Millisecond)))
		}
		backend.Drain(p)
		if active != nil {
			active.Stop()
		}
		reclaim.Stop()

		// Invariant: session conservation. Every submission completes, every
		// session object converges to Done, and the store's and the
		// backend's accounting agree.
		invs := backend.Invocations()
		res.Invocations = len(invs)
		for _, inv := range invs {
			if inv.Err != nil {
				res.Failed++
				res.violate("session-conservation", "invocation %d (%s) failed: %v", inv.Seq, inv.Fn.Name, inv.Err)
			}
			res.Recoveries += inv.Recoveries
			checkGuestAccounting(&res, "invocation", inv.Seq, inv)
		}
		if len(invs) != s.Invocations {
			res.violate("session-conservation", "submitted %d invocations, backend tracked %d", s.Invocations, len(invs))
		}

		// Drain the oracle watches and snapshot current state back-to-back:
		// no sleep separates them, so the fold and the List are one atomic
		// observation of the store.
		sessObs.drain(&res)
		gsObs.drain(&res)
		sessions, _, err := st.List(p, store.KindSession)
		if err != nil {
			panic(err)
		}
		gss, _, err := st.List(p, store.KindGPUServer)
		if err != nil {
			panic(err)
		}
		sessObs.checkComplete(&res, sessions)
		gsObs.checkComplete(&res, gss)
		checkStoreCounters(&res, st, reg)

		if len(sessions) != s.Invocations {
			res.violate("session-conservation", "store holds %d sessions for %d submissions", len(sessions), s.Invocations)
		}
		done := 0
		for _, r := range sessions {
			sess := r.(*store.Session)
			if sess.Status.Phase == store.PhaseDone {
				done++
			} else {
				res.violate("session-conservation", "session %q stuck in phase %q after drain",
					sess.Meta().Name, sess.Status.Phase)
			}
		}
		if c := reg.Counter("fleet_sessions_done").Value(); c != int64(done) {
			res.violate("session-conservation", "fleet_sessions_done=%d but %d sessions are Done in the store", c, done)
		}
		if c := reg.Counter("fleet_sessions_failed").Value(); c != 0 {
			res.violate("session-conservation", "fleet_sessions_failed=%d", c)
		}
	})
	checkWireDelta(&res, remoting.SnapshotWireStats().Sub(wireStart))
	return res
}

// chaosRecovery is the pipeline guests' recovery policy: attempts sized to
// outlast the generator's partition windows, a call deadline below the
// injected stall length so stalls are detected, not waited out.
func chaosRecovery() guest.RecoveryConfig {
	return guest.RecoveryConfig{
		MaxAttempts:  10,
		BackoffBase:  5 * time.Millisecond,
		BackoffCap:   500 * time.Millisecond,
		CallDeadline: 60 * time.Second,
		FenceLag:     time.Second,
	}
}

// runPipelineSchedule drives the schedule's detect→identify chains over the
// GPU-side data plane with the fault plan armed, then runs the export,
// device-memory, guest, and wire invariants.
func runPipelineSchedule(seed int64, s Schedule) Result {
	var res Result
	e := sim.NewEngine(seed)
	e.SetTimeLimit(2 * time.Hour)
	reg := metrics.NewRegistry()
	fab := dataplane.NewFabric(dataplane.DefaultConfig(), reg)
	wireStart := remoting.SnapshotWireStats()

	e.Run("chaos-pipeline", func(p *sim.Proc) {
		var servers []*gpuserver.GPUServer
		var planes []*dataplane.Plane
		for i := 0; i < s.Servers; i++ {
			gcfg := gpuserver.DefaultConfig()
			gcfg.GPUs = 1
			gcfg.ServersPerGPU = 2
			gcfg.HeartbeatPeriod = 50 * time.Millisecond
			gcfg.HeartbeatMisses = 3
			gcfg.QueueDeadline = 5 * time.Minute
			pl := fab.NewPlane(fmt.Sprintf("gpu-%d", i))
			gcfg.Plane = pl
			gs := gpuserver.New(e, gcfg)
			gs.Start(p)
			servers = append(servers, gs)
			planes = append(planes, pl)
		}
		// Device-memory baseline: the hosted API servers' own contexts and
		// handle pools, created by Prewarm before Start returned and alive
		// for the machine's lifetime. The pools are bounded at their
		// prewarmed size, so a healthy machine at quiesce must be exactly
		// back at this baseline.
		baseline := make([][]int, len(servers))
		for i, gs := range servers {
			for _, dev := range gs.Devices() {
				baseline[i] = append(baseline[i], dev.LiveAllocs())
			}
		}

		inj := faults.NewInjector(e, s.Plan, servers)
		inj.BindFabric(fab)
		inj.Arm(p)

		backend := faas.NewMultiBackend(e, servers, faas.PickFixed, faas.OpenFaaSEnv())
		backend.DialHook = inj.WrapConn
		backend.DialServerHook = inj.WrapTargetConn
		rc := chaosRecovery()
		backend.Recovery = &rc

		h := &dataplane.Handoff{}
		spec := faas.ChainSpec{
			Producer:    workloads.DetectStage(h),
			Consumer:    workloads.IdentifyStage(h),
			Handoff:     h,
			Fabric:      fab,
			CrossServer: s.CrossServer,
		}
		for i := 0; i < s.Invocations; i++ {
			ffBefore := reg.Counter(dataplane.CtrFabricFaults).Value()
			r := backend.InvokeChain(p, spec)
			res.Invocations++
			if r.Err != nil {
				res.Failed++
				res.violate("chain-conservation", "chain %d failed: %v", i, r.Err)
			} else if r.FellBack {
				res.Fallbacks++
			} else {
				res.GPUChains++
			}
			for _, inv := range []*faas.Invocation{r.Producer, r.Consumer} {
				if inv != nil {
					res.Recoveries += inv.Recoveries
				}
			}
			checkGuestAccounting(&res, "chain-producer", i, r.Producer)
			checkGuestAccounting(&res, "chain-consumer", i, r.Consumer)

			if s.CanaryLeak && reg.Counter(dataplane.CtrFabricFaults).Value() > ffBefore {
				// Seeded bug for the shrinker self-test: any chain whose
				// handoff took a mid-flight fabric fault leaks one export, as
				// a buggy retry path would leak its half-imported tensor.
				for j, gs := range servers {
					if !gs.Healthy() {
						continue
					}
					if phys, err := gs.Devices()[0].AllocPhys(1 << 20); err == nil {
						planes[j].Export("canary", fmt.Sprintf("leak-%d", i), phys)
					}
					break
				}
			}
		}

		// Invariant: device-memory conservation. With every chain complete
		// and every session closed, a healthy machine must be back at its
		// startup allocation baseline (failed machines keep their stranded
		// memory by design).
		for i, gs := range servers {
			if !gs.Healthy() {
				continue
			}
			for di, dev := range gs.Devices() {
				if n := dev.LiveAllocs(); n > baseline[i][di] {
					res.violate("device-leak", "server %d device %d holds %d live allocations at quiesce (startup baseline %d)",
						i, di, n, baseline[i][di])
				}
			}
		}
	})
	checkExportBalance(&res, fab)
	checkWireDelta(&res, remoting.SnapshotWireStats().Sub(wireStart))
	return res
}
