package chaos

import (
	"fmt"

	"dgsf/internal/dataplane"
	"dgsf/internal/faas"
	"dgsf/internal/metrics"
	"dgsf/internal/remoting"
	"dgsf/internal/sim"
	"dgsf/internal/store"
)

// Violation is one invariant breach found by the oracle after a run.
type Violation struct {
	Check  string `json:"check"`
	Detail string `json:"detail"`
}

// Result is the outcome of running one schedule: the oracle's verdict plus
// enough accounting for campaign summaries.
type Result struct {
	Violations []Violation

	Invocations int // submissions or chains completed
	Failed      int // invocations that ended with an error
	Recoveries  int // guest recovery episodes
	Fallbacks   int // chains that fell back to the host bounce (pipeline)
	GPUChains   int // chains that completed GPU-side (pipeline)
	Hang        bool
}

// violate records one invariant breach.
func (r *Result) violate(check, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Check: check, Detail: fmt.Sprintf(format, args...)})
}

// --- store oracle: RV monotonicity + watch completeness ---

// observer is a watch opened at RV 0 before the cluster's first write, so
// its stream is a pure log replay: every event that ever happens to the
// kind, in write order, with strictly increasing ResourceVersions.
type observer struct {
	kind   store.Kind
	w      *store.Watch
	lastRV uint64
	events int
	fold   map[string]store.Event // name → last event seen
}

// observe opens an oracle watch on one kind. Must run before any write of
// that kind lands, or the stream is not a full history.
func observe(p *sim.Proc, st *store.Store, kind store.Kind) (*observer, error) {
	w, err := st.Watch(p, kind, 0)
	if err != nil {
		return nil, err
	}
	return &observer{kind: kind, w: w, fold: map[string]store.Event{}}, nil
}

// drain consumes everything buffered on the watch without yielding to the
// scheduler, checking RV monotonicity as it goes. Because the store enqueues
// events synchronously at write time, a non-blocking drain at quiesce sees
// the complete history.
func (o *observer) drain(res *Result) {
	for {
		ev, ok := o.w.Events.TryRecv()
		if !ok {
			return
		}
		o.events++
		if ev.RV <= o.lastRV {
			res.violate("store-rv-monotonic", "%s watch: event %d has RV %d after RV %d",
				o.kind, o.events, ev.RV, o.lastRV)
		}
		o.lastRV = ev.RV
		if ev.Object != nil {
			o.fold[ev.Object.Meta().Name] = ev
		}
	}
}

// checkComplete compares the folded watch history with a List snapshot of
// current state: every live object must be the last thing the watch saw for
// its name, at the same ResourceVersion, and nothing the watch believes
// live may be missing from the snapshot. drain must have run immediately
// before the List, with no yield in between.
func (o *observer) checkComplete(res *Result, rs []store.Resource) {
	live := map[string]bool{}
	for _, r := range rs {
		m := r.Meta()
		live[m.Name] = true
		ev, ok := o.fold[m.Name]
		if !ok {
			res.violate("store-watch-complete", "%s %q at RV %d never appeared on the watch",
				o.kind, m.Name, m.ResourceVersion)
			continue
		}
		if ev.Type == store.Deleted {
			res.violate("store-watch-complete", "%s %q is live at RV %d but the watch last saw it Deleted at RV %d",
				o.kind, m.Name, m.ResourceVersion, ev.RV)
			continue
		}
		if ev.RV != m.ResourceVersion {
			res.violate("store-watch-complete", "%s %q is at RV %d but the watch last saw RV %d",
				o.kind, m.Name, m.ResourceVersion, ev.RV)
		}
	}
	for name, ev := range o.fold {
		if ev.Type != store.Deleted && !live[name] {
			res.violate("store-watch-complete", "%s %q last seen %s at RV %d but absent from the snapshot",
				o.kind, name, ev.Type, ev.RV)
		}
	}
}

// checkStoreCounters ties the store's version counter to its metrics: every
// RV bump is a write, so the store-wide RV and the write counter must agree.
func checkStoreCounters(res *Result, st *store.Store, reg *metrics.Registry) {
	writes := uint64(reg.Counter("store_writes_total").Value())
	if rv := st.RV(); rv != writes {
		res.violate("store-counter-conservation", "store RV %d != store_writes_total %d", rv, writes)
	}
}

// --- data-plane oracle: export refcount balance ---

// checkExportBalance verifies export accounting on the fabric: every export
// ever created is either freed, stranded with a machine failure, or still
// live — and at quiesce, with all chains complete and sessions closed,
// nothing may still be live.
func checkExportBalance(res *Result, fab *dataplane.Fabric) {
	reg := fab.Metrics()
	exports := reg.Counter(dataplane.CtrExports).Value()
	frees := reg.Counter(dataplane.CtrExportFrees).Value()
	stranded := reg.Counter(dataplane.CtrStranded).Value()
	live := int64(fab.LiveExports())
	if exports != frees+stranded+live {
		res.violate("export-balance", "exports=%d != frees=%d + stranded=%d + live=%d",
			exports, frees, stranded, live)
	}
	if live != 0 {
		res.violate("export-leak", "%d exports still live at quiesce (exports=%d frees=%d stranded=%d)",
			live, exports, frees, stranded)
	}
}

// --- guest oracle: journal replay accounting ---

// checkGuestAccounting verifies the recovery ledger of one invocation:
// replays only happen inside recovery episodes, episodes only redial, and no
// single redial can replay more entries than the journal ever recorded. The
// bound is per redial, not per episode: a replay that itself hits a fault
// mid-way redials and replays again within the same episode, so one episode
// legitimately replays up to Journaled × (its redial count) entries.
func checkGuestAccounting(res *Result, kind string, seq int, inv *faas.Invocation) {
	if inv == nil {
		return
	}
	if inv.Replayed > 0 && inv.Recoveries == 0 {
		res.violate("guest-replay-accounting", "%s %d replayed %d journal entries without a recovery episode",
			kind, seq, inv.Replayed)
	}
	if inv.Redials < inv.Recoveries {
		res.violate("guest-replay-accounting", "%s %d entered %d recovery episodes but redialed only %d times",
			kind, seq, inv.Recoveries, inv.Redials)
	}
	if inv.Recoveries > 0 && inv.Replayed > inv.Journaled*inv.Redials {
		res.violate("guest-replay-accounting", "%s %d replayed %d entries > journaled %d × redials %d",
			kind, seq, inv.Replayed, inv.Journaled, inv.Redials)
	}
}

// --- wire oracle: transport byte conservation ---

// checkWireDelta verifies the run's wire traffic is conserved: counters
// only move forward, and bytes never move without frames. (rx may exceed tx
// legitimately: the simulated transport charges a response's modeled data
// bytes at the receiver only.)
func checkWireDelta(res *Result, d remoting.WireStats) {
	if d.BytesTx < 0 || d.BytesRx < 0 || d.FramesV1 < 0 || d.FramesV2 < 0 || d.HellosV1 < 0 || d.HellosV2 < 0 {
		res.violate("wire-conservation", "wire counters moved backwards: %+v", d)
	}
	if d.BytesTx > 0 && d.FramesV1+d.FramesV2 == 0 {
		res.violate("wire-conservation", "%d bytes written without a single frame", d.BytesTx)
	}
}
