// Package chaos is a randomized fault-schedule search engine for the DGSF
// cluster. Each trial draws a random — but seed-deterministic — fault
// schedule from the full injection vocabulary (process kills, whole-machine
// failures, connection drops/stalls/corruption, protocol downgrades,
// controller kills, asymmetric network partitions, slow-GPU brownouts,
// store conflict storms, mid-handoff fabric faults), runs a workload under
// it, and checks a set of cluster-wide invariants afterwards: session
// conservation, data-plane export refcount balance, store ResourceVersion
// monotonicity and watch completeness, guest journal-replay accounting, and
// wire/metrics counter conservation. A schedule that violates an invariant
// is delta-debugged down to a minimal reproducer and serialized to disk.
//
// Determinism is the load-bearing property: a schedule is a pure function
// of (seed, trial), a run is a pure function of (seed, schedule), so every
// reproducer file replays the exact failure it was shrunk from.
package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"dgsf/internal/faults"
)

// Workload names the harness a schedule runs against.
const (
	// WorkloadFleet drives submissions through the 120-server control plane:
	// watched store, remote placement controller under a supervisor, reclaim
	// controller, per-machine agents.
	WorkloadFleet = "fleet"
	// WorkloadPipeline drives chained detect→identify pipelines over the
	// GPU-side data plane with recoverable guests.
	WorkloadPipeline = "pipeline"
)

// Schedule is one randomized trial: a workload, its scale, and the fault
// plan injected under it. Schedules serialize to JSON so a shrunken
// reproducer can be stored and replayed.
type Schedule struct {
	Workload    string `json:"workload"`
	Servers     int    `json:"servers"`
	Invocations int    `json:"invocations"` // submissions (fleet) or chains (pipeline)

	// CrossServer forces pipeline consumers onto a different GPU server
	// than their producer, so the intermediate tensor rides the fabric
	// (PeerCopy) instead of remapping in place — the only path where
	// mid-handoff fabric faults can bite.
	CrossServer bool `json:"cross_server,omitempty"`

	Plan faults.Plan `json:"plan"`

	// CanaryLeak seeds a known bug for the shrinker self-test: the pipeline
	// harness leaks one data-plane export per chain whose handoff suffered a
	// mid-flight fabric fault, tripping the export-leak oracle. Never set by
	// the generator.
	CanaryLeak bool `json:"canary_leak,omitempty"`
}

// TrialSeed derives the RNG seed for one trial from the campaign seed,
// FNV-1a style, so trials are independent streams but reproducible from
// (seed, trial) alone.
func TrialSeed(seed int64, trial int) int64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(uint64(seed))
	mix(uint64(trial) + 0x9e3779b97f4a7c15)
	return int64(h >> 1) // keep it non-negative for readability in repro files
}

// Generate draws the schedule for one trial. Trials alternate between the
// fleet and pipeline workloads so every campaign exercises both; everything
// else — which fault kinds appear, how many, when, and how hard — comes
// from the trial's own RNG.
//
// The generator keeps schedules survivable by construction: it never fails
// enough machines to strand the workload, partition windows stay inside
// what the retry budgets can outlast, conflict-storm rates stay below the
// level where CAS loops stop terminating, and stalls are longer than the
// pipeline guests' call deadline so they are detectable rather than silent.
// The oracle's job is to find recovery gaps, not to report unsurvivable
// schedules as failures.
func Generate(seed int64, trial int) Schedule {
	rng := rand.New(rand.NewSource(TrialSeed(seed, trial)))
	if trial%2 == 0 {
		return generatePipeline(rng)
	}
	return generateFleet(rng)
}

// generateFleet draws a fault plan for the 120-server control plane.
// Submissions span roughly the first 1.5s; faults land in [300ms, 3s] so
// they overlap the active window and the drain tail.
func generateFleet(rng *rand.Rand) Schedule {
	s := Schedule{
		Workload:    WorkloadFleet,
		Servers:     120,
		Invocations: 24 + rng.Intn(13), // 24..36
	}
	at := func(lo, hi time.Duration) time.Duration {
		return lo + time.Duration(rng.Int63n(int64(hi-lo)))
	}

	// Whole-machine failures: at most 3 of 120, distinct machines.
	failed := map[int]bool{}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		srv := rng.Intn(s.Servers)
		if failed[srv] {
			continue
		}
		failed[srv] = true
		s.Plan.Events = append(s.Plan.Events, faults.Event{
			At: at(300*time.Millisecond, 3*time.Second), Kind: faults.FailGPUServer, Server: srv,
		})
	}
	// API-server crashes (one hosted server per machine in this harness).
	for i, n := 0, rng.Intn(4); i < n; i++ {
		s.Plan.Events = append(s.Plan.Events, faults.Event{
			At: at(300*time.Millisecond, 3*time.Second), Kind: faults.KillAPIServer, Server: rng.Intn(s.Servers),
		})
	}
	// Placement-controller kills mid-reconcile.
	for i, n := 0, rng.Intn(3); i < n; i++ {
		s.Plan.ControllerKills = append(s.Plan.ControllerKills, faults.ControllerKill{
			At: at(400*time.Millisecond, 2*time.Second), AfterWrites: rng.Intn(4),
		})
	}
	// Asymmetric partitions: a few machines unreachable from guests while
	// their agents keep heartbeating store-ward. Windows stay well inside
	// the retry budget (MaxAttempts × backoff + placement resync).
	for i, n := 0, rng.Intn(3); i < n; i++ {
		var cut []int
		for j, m := 0, 1+rng.Intn(5); j < m; j++ {
			cut = append(cut, rng.Intn(s.Servers))
		}
		s.Plan.Partitions = append(s.Plan.Partitions, faults.Partition{
			At:      at(300*time.Millisecond, 2*time.Second),
			Dur:     at(100*time.Millisecond, 600*time.Millisecond),
			Servers: cut,
		})
	}
	// Brownouts: slow but alive machines.
	for i, n := 0, rng.Intn(3); i < n; i++ {
		s.Plan.Brownouts = append(s.Plan.Brownouts, faults.Brownout{
			At:     at(300*time.Millisecond, 2*time.Second),
			Dur:    at(200*time.Millisecond, 2*time.Second),
			Server: rng.Intn(s.Servers),
			Factor: 2 + 6*rng.Float64(),
		})
	}
	// Conflict storms: rate capped at 0.5 — CAS retry loops run in zero
	// virtual time against the in-process store, so they must terminate
	// probabilistically within the window, not by waiting it out.
	for i, n := 0, rng.Intn(3); i < n; i++ {
		s.Plan.ConflictStorms = append(s.Plan.ConflictStorms, faults.ConflictStorm{
			At:   at(300*time.Millisecond, 2*time.Second),
			Dur:  at(100*time.Millisecond, 1*time.Second),
			Rate: 0.1 + 0.4*rng.Float64(),
		})
	}
	// Per-connection faults. Fleet guests run without a call deadline, so a
	// stall only stretches an attempt; keep them rare.
	if rng.Intn(2) == 1 {
		s.Plan.DropRate = 0.05 + 0.15*rng.Float64()
		s.Plan.DropAfter = at(20*time.Millisecond, 250*time.Millisecond)
	}
	if rng.Intn(4) == 0 {
		s.Plan.StallRate = 0.02 + 0.03*rng.Float64()
		s.Plan.StallFor = 90 * time.Second
	}
	if rng.Intn(2) == 1 {
		s.Plan.CorruptRate = 0.05 + 0.10*rng.Float64()
	}
	if rng.Intn(2) == 1 {
		s.Plan.DowngradeRate = 0.1 + 0.2*rng.Float64()
	}
	return s
}

// generatePipeline draws a fault plan for the data-plane pipeline harness:
// 3 machines, chains placed by PickFixed, recoverable guests. Chains run
// sequentially at roughly 4–6s each, so scheduled faults land in [1s, 20s].
func generatePipeline(rng *rand.Rand) Schedule {
	s := Schedule{
		Workload:    WorkloadPipeline,
		Servers:     3,
		Invocations: 4 + rng.Intn(3), // 4..6 chains
	}
	at := func(lo, hi time.Duration) time.Duration {
		return lo + time.Duration(rng.Int63n(int64(hi-lo)))
	}

	// At most one of three machines fails — chains must retain capacity.
	if rng.Intn(2) == 1 {
		s.Plan.Events = append(s.Plan.Events, faults.Event{
			At: at(1*time.Second, 20*time.Second), Kind: faults.FailGPUServer, Server: rng.Intn(s.Servers),
		})
	}
	// API-server crashes (2 hosted per machine → indices 0..5).
	for i, n := 0, rng.Intn(3); i < n; i++ {
		s.Plan.Events = append(s.Plan.Events, faults.Event{
			At: at(1*time.Second, 20*time.Second), Kind: faults.KillAPIServer, Server: rng.Intn(2 * s.Servers),
		})
	}
	// One partition window at a time, short enough that guest redial
	// (MaxAttempts 10, backoff cap 500ms) outlasts it.
	for i, n := 0, rng.Intn(2); i < n; i++ {
		s.Plan.Partitions = append(s.Plan.Partitions, faults.Partition{
			At:      at(1*time.Second, 15*time.Second),
			Dur:     at(200*time.Millisecond, 1200*time.Millisecond),
			Servers: []int{rng.Intn(s.Servers)},
		})
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		s.Plan.Brownouts = append(s.Plan.Brownouts, faults.Brownout{
			At:     at(1*time.Second, 15*time.Second),
			Dur:    at(500*time.Millisecond, 4*time.Second),
			Server: rng.Intn(s.Servers),
			Factor: 2 + 6*rng.Float64(),
		})
	}
	// Half the trials force the consumer onto a different server so the
	// tensor rides the fabric; only those can carry mid-handoff fabric
	// faults (the same-server import never touches it).
	s.CrossServer = rng.Intn(2) == 1
	if s.CrossServer && rng.Intn(2) == 1 {
		s.Plan.FabricFaultRate = 0.2 + 0.4*rng.Float64()
	}
	// Per-connection faults. Stalls exceed the 60s call deadline so the
	// guest detects them instead of waiting them out.
	if rng.Intn(2) == 1 {
		s.Plan.DropRate = 0.05 + 0.20*rng.Float64()
		s.Plan.DropAfter = at(50*time.Millisecond, 300*time.Millisecond)
	}
	if rng.Intn(3) == 0 {
		s.Plan.StallRate = 0.03 + 0.07*rng.Float64()
		s.Plan.StallFor = 90 * time.Second
	}
	if rng.Intn(2) == 1 {
		s.Plan.CorruptRate = 0.05 + 0.10*rng.Float64()
	}
	if rng.Intn(2) == 1 {
		s.Plan.DowngradeRate = 0.1 + 0.2*rng.Float64()
	}
	return s
}

// String renders a short human label for logs and summaries.
func (s Schedule) String() string {
	return fmt.Sprintf("%s servers=%d invs=%d faults=%d", s.Workload, s.Servers, s.Invocations, len(atomize(s.Plan)))
}
