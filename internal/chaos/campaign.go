package chaos

import "fmt"

// TrialReport is the outcome of one trial in a campaign.
type TrialReport struct {
	Trial    int
	Schedule Schedule
	Result   Result
	Repro    string // path of the shrunken reproducer, when the trial failed
}

// CampaignResult aggregates one campaign: n schedules drawn from one seed.
type CampaignResult struct {
	Seed       int64
	Schedules  int
	Violations int // trials with at least one invariant violation
	Hangs      int // trials that deadlocked or hit the virtual-time limit
	Fleet      int // trials run against the fleet workload
	Pipeline   int // trials run against the pipeline workload

	Invocations int // total submissions/chains across all trials
	Recoveries  int // total guest recovery episodes observed
	Fallbacks   int // total chain fallbacks observed

	Trials []TrialReport // failed trials only, with their reproducers
}

// CampaignConfig tunes a campaign.
type CampaignConfig struct {
	// ReproDir receives shrunken reproducer files for failing trials; empty
	// disables both shrinking and serialization (violations still count).
	ReproDir string
	// ShrinkRuns bounds the schedule executions spent minimizing one
	// failing trial (default 64).
	ShrinkRuns int
	// Log, when set, receives one line per failing trial.
	Log func(format string, args ...any)
}

// RunCampaign draws and executes n schedules from seed. Every trial is
// independently reproducible: schedule i is Generate(seed, i) and its run
// is RunSchedule(seed, schedule). Failing trials are delta-debugged to a
// minimal reproducer and serialized under cfg.ReproDir.
func RunCampaign(seed int64, n int, cfg CampaignConfig) CampaignResult {
	res := CampaignResult{Seed: seed, Schedules: n}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for trial := 0; trial < n; trial++ {
		s := Generate(seed, trial)
		if s.Workload == WorkloadFleet {
			res.Fleet++
		} else {
			res.Pipeline++
		}
		r := RunSchedule(seed, s)
		res.Invocations += r.Invocations
		res.Recoveries += r.Recoveries
		res.Fallbacks += r.Fallbacks
		if len(r.Violations) == 0 {
			continue
		}
		res.Violations++
		if r.Hang {
			res.Hangs++
		}
		report := TrialReport{Trial: trial, Schedule: s, Result: r}
		logf("chaos: seed=%d trial=%d (%s): %d violation(s), first: [%s] %s",
			seed, trial, s, len(r.Violations), r.Violations[0].Check, r.Violations[0].Detail)
		if cfg.ReproDir != "" {
			min, stats := Shrink(s, func(c Schedule) bool {
				return len(RunSchedule(seed, c).Violations) > 0
			}, cfg.ShrinkRuns)
			repro := Repro{
				Seed:       seed,
				Trial:      trial,
				Schedule:   min,
				Violations: RunSchedule(seed, min).Violations,
				Shrink:     stats,
			}
			path, err := WriteRepro(cfg.ReproDir, repro)
			if err != nil {
				logf("chaos: writing reproducer: %v", err)
			} else {
				report.Repro = path
				logf("chaos: shrunk trial %d from %d to %d element(s) in %d runs: %s",
					trial, stats.From, stats.Elements, stats.Runs, path)
			}
		}
		res.Trials = append(res.Trials, report)
	}
	return res
}

// Summary renders the one-line greppable campaign verdict.
func (r CampaignResult) Summary() string {
	return fmt.Sprintf("chaos_summary seed=%d schedules=%d violations=%d hangs=%d fleet=%d pipeline=%d invocations=%d recoveries=%d fallbacks=%d",
		r.Seed, r.Schedules, r.Violations, r.Hangs, r.Fleet, r.Pipeline, r.Invocations, r.Recoveries, r.Fallbacks)
}
