package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dgsf/internal/faults"
)

// The shrinker is a delta debugger over fault-plan elements: each scheduled
// event, partition, brownout, storm, and controller kill is one element, and
// each probabilistic rate group (drop, stall, corrupt, downgrade, fabric) is
// one on/off element. ddmin removes chunks of elements while the reduced
// schedule still reproduces a violation, converging on a locally minimal
// plan — usually one or two faults — that is serialized as a reproducer.

// elemKind enumerates the shrinkable plan elements.
type elemKind int

const (
	elemEvent elemKind = iota
	elemCtrlKill
	elemPartition
	elemBrownout
	elemStorm
	elemDropRate
	elemStallRate
	elemCorruptRate
	elemDowngradeRate
	elemFabricRate
)

// element addresses one removable piece of a Plan.
type element struct {
	kind elemKind
	idx  int // index within its slice; unused for rate elements
}

// atomize flattens a plan into its removable elements.
func atomize(p faults.Plan) []element {
	var out []element
	for i := range p.Events {
		out = append(out, element{elemEvent, i})
	}
	for i := range p.ControllerKills {
		out = append(out, element{elemCtrlKill, i})
	}
	for i := range p.Partitions {
		out = append(out, element{elemPartition, i})
	}
	for i := range p.Brownouts {
		out = append(out, element{elemBrownout, i})
	}
	for i := range p.ConflictStorms {
		out = append(out, element{elemStorm, i})
	}
	if p.DropRate > 0 {
		out = append(out, element{elemDropRate, 0})
	}
	if p.StallRate > 0 {
		out = append(out, element{elemStallRate, 0})
	}
	if p.CorruptRate > 0 {
		out = append(out, element{elemCorruptRate, 0})
	}
	if p.DowngradeRate > 0 {
		out = append(out, element{elemDowngradeRate, 0})
	}
	if p.FabricFaultRate > 0 {
		out = append(out, element{elemFabricRate, 0})
	}
	return out
}

// rebuild assembles the plan containing only the kept elements of the
// original, preserving relative order.
func rebuild(p faults.Plan, keep []element) faults.Plan {
	var out faults.Plan
	for _, el := range keep {
		switch el.kind {
		case elemEvent:
			out.Events = append(out.Events, p.Events[el.idx])
		case elemCtrlKill:
			out.ControllerKills = append(out.ControllerKills, p.ControllerKills[el.idx])
		case elemPartition:
			out.Partitions = append(out.Partitions, p.Partitions[el.idx])
		case elemBrownout:
			out.Brownouts = append(out.Brownouts, p.Brownouts[el.idx])
		case elemStorm:
			out.ConflictStorms = append(out.ConflictStorms, p.ConflictStorms[el.idx])
		case elemDropRate:
			out.DropRate, out.DropAfter = p.DropRate, p.DropAfter
		case elemStallRate:
			out.StallRate, out.StallFor = p.StallRate, p.StallFor
		case elemCorruptRate:
			out.CorruptRate = p.CorruptRate
		case elemDowngradeRate:
			out.DowngradeRate = p.DowngradeRate
		case elemFabricRate:
			out.FabricFaultRate = p.FabricFaultRate
		}
	}
	return out
}

// ShrinkStats reports what the shrinker did.
type ShrinkStats struct {
	Runs     int `json:"runs"`     // schedule executions spent shrinking
	From     int `json:"from"`     // elements in the violating schedule
	Elements int `json:"elements"` // elements in the minimal schedule
}

// Shrink reduces a violating schedule to a locally minimal one: the
// returned schedule still fails the oracle, but removing any single chunk
// ddmin tried no longer does. fails must be a deterministic predicate —
// RunSchedule with a fixed seed is.
func Shrink(s Schedule, fails func(Schedule) bool, maxRuns int) (Schedule, ShrinkStats) {
	base := atomize(s.Plan)
	stats := ShrinkStats{From: len(base)}
	if maxRuns <= 0 {
		maxRuns = 64
	}
	with := func(keep []element) Schedule {
		out := s
		out.Plan = rebuild(s.Plan, keep)
		return out
	}
	test := func(keep []element) bool {
		if stats.Runs >= maxRuns {
			return false
		}
		stats.Runs++
		return fails(with(keep))
	}

	keep := base
	// Fast path: many oracle failures are workload bugs, not fault-plan
	// interactions — try the empty plan first.
	if len(keep) > 0 && test(nil) {
		keep = nil
	}
	n := 2
	for len(keep) >= 2 && n <= len(keep) && stats.Runs < maxRuns {
		chunk := (len(keep) + n - 1) / n
		reduced := false
		for lo := 0; lo < len(keep); lo += chunk {
			hi := lo + chunk
			if hi > len(keep) {
				hi = len(keep)
			}
			// Complement: drop [lo,hi), keep the rest.
			rest := append(append([]element{}, keep[:lo]...), keep[hi:]...)
			if len(rest) > 0 && len(rest) < len(keep) && test(rest) {
				keep = rest
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(keep) {
				break
			}
			n = min(n*2, len(keep))
		}
	}
	// Final pass: try dropping each remaining element individually.
	for i := 0; i < len(keep) && stats.Runs < maxRuns; {
		rest := append(append([]element{}, keep[:i]...), keep[i+1:]...)
		if test(rest) {
			keep = rest
		} else {
			i++
		}
	}
	stats.Elements = len(keep)
	return with(keep), stats
}

// Repro is a minimal reproducer, serialized to disk for replay.
type Repro struct {
	Seed       int64       `json:"seed"`
	Trial      int         `json:"trial"`
	Schedule   Schedule    `json:"schedule"`
	Violations []Violation `json:"violations"`
	Shrink     ShrinkStats `json:"shrink"`
}

// WriteRepro serializes a reproducer as
// <dir>/chaos-repro-seed<seed>-trial<trial>.json and returns the path.
func WriteRepro(dir string, r Repro) (string, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("chaos-repro-seed%d-trial%d.json", r.Seed, r.Trial))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadRepro loads a reproducer file for replay.
func ReadRepro(path string) (Repro, error) {
	var r Repro
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	err = json.Unmarshal(data, &r)
	return r, err
}
