package controller

import (
	"fmt"
	"testing"
	"time"

	"dgsf/internal/metrics"
	"dgsf/internal/sim"
	"dgsf/internal/store"
)

func newSession(name string) *store.Session {
	s := &store.Session{}
	s.ObjectMeta.Name = name
	s.Spec.FnID = "fn"
	return s
}

// TestReconcilesOnWatchEdges checks that creates flow through the watch pump
// into reconcile calls, and that the controller sees pre-existing objects via
// the initial relist.
func TestReconcilesOnWatchEdges(t *testing.T) {
	e := sim.NewEngine(1)
	e.SetTimeLimit(time.Minute)
	st := store.New(e, nil)
	seen := map[string]int{}
	var ctrl *Controller
	ctrl = New(Options{
		Name:  "test",
		Store: st,
		Kinds: []store.Kind{store.KindSession},
	}, Func(func(p *sim.Proc, key Key) error {
		seen[key.Name]++
		if len(seen) == 3 && seen["pre"] > 0 && seen["a"] > 0 && seen["b"] > 0 {
			ctrl.Stop()
		}
		return nil
	}))
	e.Run("test", func(p *sim.Proc) {
		if _, err := st.Create(p, newSession("pre")); err != nil {
			t.Fatalf("Create: %v", err)
		}
		p.Spawn("writer", func(p *sim.Proc) {
			p.Sleep(time.Millisecond)
			if _, err := st.Create(p, newSession("a")); err != nil {
				t.Errorf("Create a: %v", err)
			}
			if _, err := st.Create(p, newSession("b")); err != nil {
				t.Errorf("Create b: %v", err)
			}
		})
		ctrl.Run(p)
	})
	for _, name := range []string{"pre", "a", "b"} {
		if seen[name] == 0 {
			t.Errorf("key %q never reconciled: %v", name, seen)
		}
	}
}

// TestRequeueWithBackoffOnError checks that a failing key is retried with
// increasing delay until it succeeds, and that the requeue counter advances.
func TestRequeueWithBackoffOnError(t *testing.T) {
	e := sim.NewEngine(2)
	e.SetTimeLimit(time.Minute)
	st := store.New(e, nil)
	reg := metrics.NewRegistry()
	var attempts int
	var times []time.Duration
	var ctrl *Controller
	ctrl = New(Options{
		Name:        "retry",
		Store:       st,
		Kinds:       []store.Kind{store.KindSession},
		BaseBackoff: time.Millisecond,
		MaxBackoff:  8 * time.Millisecond,
		Registry:    reg,
	}, Func(func(p *sim.Proc, key Key) error {
		attempts++
		times = append(times, p.Now())
		if attempts < 4 {
			return fmt.Errorf("transient failure %d", attempts)
		}
		ctrl.Stop()
		return nil
	}))
	e.Run("test", func(p *sim.Proc) {
		if _, err := st.Create(p, newSession("s")); err != nil {
			t.Fatalf("Create: %v", err)
		}
		ctrl.Run(p)
	})
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4", attempts)
	}
	// Delays double: 1ms, 2ms, 4ms between consecutive attempts.
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	for i := 1; i < len(times); i++ {
		if d := times[i] - times[i-1]; d != want[i-1] {
			t.Errorf("gap %d = %v, want %v", i, d, want[i-1])
		}
	}
	if got := reg.Get("ctrl_retry_requeues_total"); got != 3 {
		t.Errorf("requeues counter = %d, want 3", got)
	}
	if got := reg.Get("ctrl_retry_reconciles_total"); got != 4 {
		t.Errorf("reconciles counter = %d, want 4", got)
	}
}

// TestResyncRedeliversAllKeys checks the level trigger: with no edges at all
// after startup, every object is still re-reconciled each resync period.
func TestResyncRedeliversAllKeys(t *testing.T) {
	e := sim.NewEngine(3)
	e.SetTimeLimit(time.Minute)
	st := store.New(e, nil)
	seen := map[string]int{}
	var ctrl *Controller
	ctrl = New(Options{
		Name:   "resync",
		Store:  st,
		Kinds:  []store.Kind{store.KindSession},
		Resync: 5 * time.Millisecond,
	}, Func(func(p *sim.Proc, key Key) error {
		seen[key.Name]++
		if seen["x"] >= 3 && seen["y"] >= 3 {
			ctrl.Stop()
		}
		return nil
	}))
	e.Run("test", func(p *sim.Proc) {
		for _, n := range []string{"x", "y"} {
			if _, err := st.Create(p, newSession(n)); err != nil {
				t.Fatalf("Create: %v", err)
			}
		}
		ctrl.Run(p)
	})
	if seen["x"] < 3 || seen["y"] < 3 {
		t.Fatalf("resync did not redeliver: %v", seen)
	}
}

// TestQueueCoalescesEventStorms checks the dedup property: many edges for a
// key already pending collapse into one reconcile.
func TestQueueCoalescesEventStorms(t *testing.T) {
	e := sim.NewEngine(4)
	q := newWorkqueue(e)
	for i := 0; i < 100; i++ {
		q.Add(Key{Kind: store.KindSession, Name: "same"})
	}
	q.Add(Key{Kind: store.KindSession, Name: "other"})
	if q.Len() != 2 {
		t.Fatalf("queue length = %d, want 2", q.Len())
	}
	e.Run("test", func(p *sim.Proc) {
		k1, ok1 := q.Get(p)
		k2, ok2 := q.Get(p)
		if !ok1 || !ok2 || k1.Name != "same" || k2.Name != "other" {
			t.Errorf("drain order wrong: %v %v %v %v", k1, ok1, k2, ok2)
		}
		// Once popped, the key may be re-added (it is no longer pending).
		q.Add(k1)
		if q.Len() != 1 {
			t.Errorf("re-add after pop failed, len=%d", q.Len())
		}
	})
}

// TestHaltsWhenStoreFuseBlows checks the crash path: the store handle dies
// mid-reconcile (fuse blows between two writes) and the controller parks
// itself with Halted() true instead of spinning on a dead handle.
func TestHaltsWhenStoreFuseBlows(t *testing.T) {
	e := sim.NewEngine(7)
	e.SetTimeLimit(time.Minute)
	st := store.New(e, nil)
	fuse := store.NewFuse(st)
	var ctrl *Controller
	ctrl = New(Options{
		Name:  "crash",
		Store: fuse,
		Kinds: []store.Kind{store.KindSession},
	}, Func(func(p *sim.Proc, key Key) error {
		cur, err := fuse.Get(p, key.Kind, key.Name)
		if err != nil {
			return err
		}
		up := cur.DeepCopy().(*store.Session)
		up.Status.Phase = store.PhasePlaced
		if _, err := fuse.UpdateStatus(p, up); err != nil {
			return err
		}
		// Second write of the same reconcile: the fuse blows here.
		up2 := cur.DeepCopy().(*store.Session)
		up2.Status.Phase = store.PhaseRunning
		if _, err := fuse.UpdateStatus(p, up2); err != nil {
			return err
		}
		return nil
	}))
	var phase string
	var restartedSaw bool
	e.Run("test", func(p *sim.Proc) {
		if _, err := st.Create(p, newSession("victim")); err != nil {
			t.Fatalf("Create: %v", err)
		}
		fuse.Arm(1) // one write allowed, the second blows
		ctrl.Run(p)

		// The store itself survived the crash with the first write applied:
		// a replacement controller with a fresh handle resumes from exactly
		// this intermediate state.
		r, err := st.Get(p, store.KindSession, "victim")
		if err != nil {
			t.Fatalf("Get after crash: %v", err)
		}
		phase = r.(*store.Session).Status.Phase

		var ctrl2 *Controller
		ctrl2 = New(Options{
			Name:  "crash2",
			Store: st, // fresh, unblown handle
			Kinds: []store.Kind{store.KindSession},
		}, Func(func(p *sim.Proc, key Key) error {
			restartedSaw = true
			ctrl2.Stop()
			return nil
		}))
		ctrl2.Run(p)
	})
	if !ctrl.Halted() {
		t.Fatal("controller did not halt on blown fuse")
	}
	if phase != store.PhasePlaced {
		t.Fatalf("stored phase = %v, want Placed (first write only)", phase)
	}
	if !restartedSaw {
		t.Fatal("restarted controller never saw the orphaned key")
	}
}
