// Package controller is the reconciler runtime of the fleet control plane.
//
// A Controller owns a deduplicating work queue of object keys, fed from two
// sources: store watch streams (edge triggers) and a periodic full relist
// (the level trigger that makes missed edges harmless). A single reconcile
// loop pops keys and hands them to the Reconciler, which reads the current
// state from the store and drives it toward the desired state. Reconcilers
// must be idempotent: the same key may be delivered many times, and after a
// crash the resync replays every key.
//
// Error handling is uniform: a reconcile error requeues the key with
// exponential backoff (conflicts are ordinary errors — the next attempt
// re-reads and retries against fresh state), and store.ErrHalted is fatal —
// it means this replica's store handle is dead (crash injection or a severed
// connection), so the controller parks itself and waits to be restarted by
// its supervisor.
package controller

import (
	"errors"
	"fmt"
	"time"

	"dgsf/internal/metrics"
	"dgsf/internal/sim"
	"dgsf/internal/store"
)

// Key identifies one object to reconcile.
type Key struct {
	Kind store.Kind
	Name string
}

// Reconciler drives the object named by key toward its desired state. A nil
// error means done (until the next edge); any other error requeues the key
// with backoff. Returning an error wrapping store.ErrHalted stops the
// controller.
type Reconciler interface {
	Reconcile(p *sim.Proc, key Key) error
}

// Func adapts a plain function to the Reconciler interface.
type Func func(p *sim.Proc, key Key) error

// Reconcile implements Reconciler.
func (f Func) Reconcile(p *sim.Proc, key Key) error { return f(p, key) }

// Options configures a Controller.
type Options struct {
	// Name labels metrics and spawned processes.
	Name string
	// Store is the handle reconcile reads and writes go through. Wrap it in
	// a store.Fuse to crash the controller at a chosen write.
	Store store.Interface
	// Kinds lists the keyspaces whose events feed the work queue.
	Kinds []store.Kind
	// Resync is the period of the level-triggered full relist; 0 disables it.
	Resync time.Duration
	// BaseBackoff and MaxBackoff bound the per-key retry delay. Zero values
	// take the defaults (1ms, 250ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Registry receives the controller's counters; nil means a private one.
	Registry *metrics.Registry
}

// Controller runs one reconcile loop over a watched keyspace.
type Controller struct {
	name     string
	st       store.Interface
	kinds    []store.Kind
	resync   time.Duration
	baseBO   time.Duration
	maxBO    time.Duration
	rec      Reconciler
	queue    *workqueue
	failures map[Key]int

	halted  bool
	stopped bool
	watches []*store.Watch

	reconciles *metrics.Counter
	requeues   *metrics.Counter
	resyncs    *metrics.Counter
}

// New builds a controller; call Run from a simulated process to start it.
func New(opts Options, rec Reconciler) *Controller {
	if opts.Name == "" {
		opts.Name = "controller"
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 250 * time.Millisecond
	}
	reg := opts.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Controller{
		name:       opts.Name,
		st:         opts.Store,
		kinds:      opts.Kinds,
		resync:     opts.Resync,
		baseBO:     opts.BaseBackoff,
		maxBO:      opts.MaxBackoff,
		rec:        rec,
		failures:   make(map[Key]int),
		reconciles: reg.Counter(fmt.Sprintf("ctrl_%s_reconciles_total", opts.Name)),
		requeues:   reg.Counter(fmt.Sprintf("ctrl_%s_requeues_total", opts.Name)),
		resyncs:    reg.Counter(fmt.Sprintf("ctrl_%s_resyncs_total", opts.Name)),
	}
}

// Enqueue adds a key to the work queue (deduplicated). Use it to seed work
// that has no watch edge, e.g. from a data-plane event.
func (c *Controller) Enqueue(key Key) {
	if c.queue != nil {
		c.queue.Add(key)
	}
}

// Halted reports whether the controller stopped because its store handle
// returned ErrHalted — the signal for a supervisor to start a replacement.
func (c *Controller) Halted() bool { return c.halted }

// Stop ends the reconcile loop and its watch pumps. Idempotent.
func (c *Controller) Stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	for _, w := range c.watches {
		w.Stop()
	}
	if c.queue != nil {
		c.queue.Close()
	}
}

// Run starts the watch pumps and resync ticker, seeds the queue with a full
// relist, and loops reconciling until Stop or a halt. It blocks for the
// controller's lifetime; spawn it if the caller has other work.
func (c *Controller) Run(p *sim.Proc) {
	c.queue = newWorkqueue(p.Engine())

	// List-then-watch per kind: the initial relist makes the controller
	// converge from any starting state, and watching from the relist's RV
	// avoids replaying the very edges the relist already covered.
	for _, kind := range c.kinds {
		rs, rv, err := c.st.List(p, kind)
		if err != nil {
			c.halted = c.halted || store.IsHalted(err)
			c.finish()
			return
		}
		for _, r := range rs {
			c.queue.Add(Key{Kind: kind, Name: r.Meta().Name})
		}
		w, err := c.st.Watch(p, kind, rv)
		if err != nil {
			// ErrHalted before we even started: park immediately.
			c.halted = c.halted || store.IsHalted(err)
			c.finish()
			return
		}
		c.watches = append(c.watches, w)
		kind := kind
		p.SpawnDaemon(fmt.Sprintf("%s-watch-%s", c.name, kind), func(p *sim.Proc) {
			for {
				ev, ok := w.Events.Recv(p)
				if !ok {
					return
				}
				c.queue.Add(Key{Kind: kind, Name: ev.Object.Meta().Name})
			}
		})
	}

	if c.resync > 0 {
		p.SpawnDaemon(c.name+"-resync", func(p *sim.Proc) {
			for !c.stopped {
				p.Sleep(c.resync)
				if c.stopped {
					return
				}
				c.resyncs.Inc()
				if !c.relist(p) {
					return
				}
			}
		})
	}

	for {
		key, ok := c.queue.Get(p)
		if !ok || c.stopped {
			c.finish()
			return
		}
		c.reconciles.Inc()
		err := c.rec.Reconcile(p, key)
		switch {
		case err == nil:
			delete(c.failures, key)
		case errors.Is(err, store.ErrHalted):
			c.halted = true
			c.finish()
			return
		default:
			c.failures[key]++
			c.requeues.Inc()
			d := c.backoff(c.failures[key])
			p.Spawn(c.name+"-requeue", func(p *sim.Proc) {
				p.Sleep(d)
				if !c.stopped {
					c.queue.Add(key)
				}
			})
		}
	}
}

// relist enqueues every current object of every watched kind. It reports
// false when the store handle is dead, which also marks the controller
// halted and stops it.
func (c *Controller) relist(p *sim.Proc) bool {
	for _, kind := range c.kinds {
		rs, _, err := c.st.List(p, kind)
		if err != nil {
			if store.IsHalted(err) {
				c.halted = true
				c.Stop()
			}
			return false
		}
		for _, r := range rs {
			c.queue.Add(Key{Kind: kind, Name: r.Meta().Name})
		}
	}
	return true
}

// backoff returns the delay before the n-th consecutive retry of a key.
func (c *Controller) backoff(n int) time.Duration {
	d := c.baseBO
	for i := 1; i < n && d < c.maxBO; i++ {
		d *= 2
	}
	if d > c.maxBO {
		d = c.maxBO
	}
	return d
}

// finish tears down watches and the queue when the loop exits for any reason.
func (c *Controller) finish() {
	c.Stop()
}

// workqueue is a deduplicating FIFO of keys. A key already waiting is not
// added again; a key being reconciled right now can be re-added (it is no
// longer "in" the queue), which is what coalesces event storms into at most
// one pending reconcile per object.
type workqueue struct {
	items   []Key
	present map[Key]bool
	cond    *sim.Cond
	closed  bool
}

func newWorkqueue(e *sim.Engine) *workqueue {
	return &workqueue{present: make(map[Key]bool), cond: sim.NewCond(e)}
}

// Add enqueues key unless it is already pending or the queue is closed.
func (q *workqueue) Add(key Key) {
	if q.closed || q.present[key] {
		return
	}
	q.present[key] = true
	q.items = append(q.items, key)
	q.cond.Signal()
}

// Get blocks until a key is available or the queue closes.
func (q *workqueue) Get(p *sim.Proc) (Key, bool) {
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait(p)
	}
	if len(q.items) == 0 {
		return Key{}, false
	}
	key := q.items[0]
	q.items = q.items[1:]
	delete(q.present, key)
	return key, true
}

// Len reports the number of pending keys.
func (q *workqueue) Len() int { return len(q.items) }

// Close wakes all waiters; pending keys are still drained by Get.
func (q *workqueue) Close() {
	if q.closed {
		return
	}
	q.closed = true
	q.cond.Broadcast()
}
