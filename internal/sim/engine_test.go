package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	e := NewEngine(1)
	var at time.Duration
	e.Run("root", func(p *Proc) {
		p.Sleep(3 * time.Second)
		at = p.Now()
	})
	if at != 3*time.Second {
		t.Fatalf("Now after Sleep(3s) = %v, want 3s", at)
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	e := NewEngine(1)
	e.Run("root", func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-time.Second)
		if got := p.Now(); got != 0 {
			t.Errorf("Now = %v, want 0", got)
		}
	})
}

func TestVirtualTimeIsNotWallClock(t *testing.T) {
	e := NewEngine(1)
	start := time.Now()
	e.Run("root", func(p *Proc) {
		p.Sleep(1000 * time.Hour)
	})
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("simulating 1000h took %v of wall time", wall)
	}
	if got := e.Now(); got != 1000*time.Hour {
		t.Fatalf("Now = %v, want 1000h", got)
	}
}

func TestSpawnInterleaving(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Run("root", func(p *Proc) {
		p.Spawn("a", func(p *Proc) {
			p.Sleep(10 * time.Millisecond)
			order = append(order, "a")
		})
		p.Spawn("b", func(p *Proc) {
			p.Sleep(5 * time.Millisecond)
			order = append(order, "b")
		})
		p.Sleep(20 * time.Millisecond)
		order = append(order, "root")
	})
	want := "b,a,root"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
}

func TestSimultaneousTimersFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Run("root", func(p *Proc) {
		wg := NewWaitGroup(e)
		for i := 0; i < 10; i++ {
			i := i
			wg.Add(1)
			p.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(time.Second) // all wake at the same instant
				order = append(order, i)
				wg.Done()
			})
		}
		wg.Wait(p)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO by spawn order", order)
		}
	}
}

func TestRunWaitsForAllNonDaemons(t *testing.T) {
	e := NewEngine(1)
	finished := false
	e.Run("root", func(p *Proc) {
		p.Spawn("slow", func(p *Proc) {
			p.Sleep(time.Minute)
			finished = true
		})
	})
	if !finished {
		t.Fatal("Run returned before spawned non-daemon finished")
	}
}

func TestDaemonDoesNotBlockRun(t *testing.T) {
	e := NewEngine(1)
	e.Run("root", func(p *Proc) {
		q := NewQueue[int](e)
		p.SpawnDaemon("server", func(p *Proc) {
			for {
				if _, ok := q.Recv(p); !ok {
					return
				}
			}
		})
		p.Sleep(time.Second)
	})
	if got := e.Now(); got != time.Second {
		t.Fatalf("Now = %v, want 1s", got)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "deadlock") {
			t.Fatalf("panic = %v, want deadlock dump", r)
		}
		if !strings.Contains(msg, "stuck") {
			t.Fatalf("dump does not name the blocked process: %q", msg)
		}
	}()
	e := NewEngine(1)
	e.Run("root", func(p *Proc) {
		q := NewQueue[int](e)
		p.Spawn("stuck", func(p *Proc) { q.Recv(p) })
	})
}

func TestOpenModeIdlesInsteadOfDeadlocking(t *testing.T) {
	e := NewOpenEngine(1)
	q := NewQueue[int](e)
	got := make(chan int, 1)
	<-e.Inject("setup", func(p *Proc) {}) // warm up the engine
	done := e.Inject("consumer", func(p *Proc) {
		v, _ := q.Recv(p)
		got <- v
	})
	// The consumer is now blocked with no timers; in Run mode this would be
	// a deadlock. Feed it from outside.
	q.Send(42)
	<-done
	if v := <-got; v != 42 {
		t.Fatalf("consumer got %d, want 42", v)
	}
}

func TestInjectAccountsVirtualTime(t *testing.T) {
	e := NewOpenEngine(1)
	done := e.Inject("worker", func(p *Proc) {
		p.Sleep(90 * time.Second)
	})
	<-done
	if got := e.Now(); got != 90*time.Second {
		t.Fatalf("Now = %v, want 90s", got)
	}
}

func TestStopKillsBlockedProcs(t *testing.T) {
	e := NewOpenEngine(1)
	q := NewQueue[int](e)
	done := e.Inject("stuck", func(p *Proc) { q.Recv(p) })
	e.Stop()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not release the blocked process")
	}
}

func TestRunTwicePanics(t *testing.T) {
	e := NewEngine(1)
	e.Run("root", func(p *Proc) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on second Run")
		}
	}()
	e.Run("root2", func(p *Proc) {})
}

func TestTraceHook(t *testing.T) {
	e := NewEngine(1)
	var events []string
	e.SetTrace(func(now time.Duration, proc, event string) {
		events = append(events, proc+":"+event)
	})
	e.Run("root", func(p *Proc) { p.Sleep(time.Millisecond) })
	joined := strings.Join(events, " ")
	for _, want := range []string{"root:spawn", "root:run", "root:block:sleep", "root:exit"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q; got %v", want, events)
		}
	}
}

func TestRandStreamsIsolatedPerProc(t *testing.T) {
	// A process's draws must not depend on unrelated concurrent activity:
	// the same-named process sees the same stream whether or not a noisy
	// neighbor is drawing in between.
	draw := func(noise bool) []float64 {
		e := NewEngine(3)
		var out []float64
		e.Run("root", func(p *Proc) {
			if noise {
				p.SpawnDaemon("noisy", func(p *Proc) {
					for {
						p.Rand().Float64()
						p.Sleep(time.Microsecond)
					}
				})
			}
			p.Spawn("worker", func(p *Proc) {
				for i := 0; i < 5; i++ {
					out = append(out, p.Rand().Float64())
					p.Sleep(time.Millisecond)
				}
			})
		})
		return out
	}
	quiet, noisy := draw(false), draw(true)
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("draw %d shifted by unrelated activity: %v vs %v", i, quiet[i], noisy[i])
		}
	}
}

func TestDeterministicRand(t *testing.T) {
	draw := func(seed int64) []float64 {
		e := NewEngine(seed)
		var out []float64
		e.Run("root", func(p *Proc) {
			for i := 0; i < 5; i++ {
				out = append(out, p.Rand().Float64())
				p.Sleep(time.Millisecond)
			}
		})
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical draws")
	}
}

func TestYieldRoundRobin(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Run("root", func(p *Proc) {
		wg := NewWaitGroup(e)
		for _, name := range []string{"a", "b"} {
			name := name
			wg.Add(1)
			p.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					order = append(order, name)
					p.Yield()
				}
				wg.Done()
			})
		}
		wg.Wait(p)
	})
	want := "a,b,a,b,a,b"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
}

func TestTimeLimitConvertsLivelockToFailure(t *testing.T) {
	// A periodic daemon keeps timers pending forever, so a stuck non-daemon
	// never trips deadlock detection; the time limit catches it.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected time-limit panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "time limit") {
			t.Fatalf("panic = %v, want time-limit dump", r)
		}
	}()
	e := NewEngine(1)
	e.SetTimeLimit(10 * time.Second)
	e.Run("root", func(p *Proc) {
		q := NewQueue[int](e)
		p.SpawnDaemon("ticker", func(p *Proc) {
			for {
				p.Sleep(time.Second)
			}
		})
		q.Recv(p) // blocks forever; only the ticker keeps time moving
	})
}

func TestSleepOverflowClamped(t *testing.T) {
	e := NewEngine(1)
	e.SetTimeLimit(time.Hour)
	defer func() {
		if recover() == nil {
			t.Fatal("expected time-limit panic after clamped overflow sleep")
		}
	}()
	e.Run("root", func(p *Proc) {
		p.Sleep(1<<63 - 1) // would overflow now+d; must clamp, not corrupt
	})
}
