package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	e := NewEngine(1)
	e.Run("root", func(p *Proc) {
		q := NewQueue[int](e)
		for i := 0; i < 100; i++ {
			q.Send(i)
		}
		for i := 0; i < 100; i++ {
			v, ok := q.Recv(p)
			if !ok || v != i {
				t.Fatalf("Recv #%d = (%d,%v), want (%d,true)", i, v, ok, i)
			}
		}
	})
}

func TestQueueBlocksUntilSend(t *testing.T) {
	e := NewEngine(1)
	var recvAt time.Duration
	e.Run("root", func(p *Proc) {
		q := NewQueue[string](e)
		p.Spawn("producer", func(p *Proc) {
			p.Sleep(5 * time.Second)
			q.Send("hello")
		})
		v, ok := q.Recv(p)
		recvAt = p.Now()
		if !ok || v != "hello" {
			t.Errorf("Recv = (%q,%v)", v, ok)
		}
	})
	if recvAt != 5*time.Second {
		t.Fatalf("received at %v, want 5s", recvAt)
	}
}

func TestQueueRecvTimeout(t *testing.T) {
	e := NewEngine(1)
	e.Run("root", func(p *Proc) {
		q := NewQueue[int](e)
		_, ok, timedOut := q.RecvTimeout(p, time.Second)
		if ok || !timedOut {
			t.Fatalf("RecvTimeout on empty queue = ok=%v timedOut=%v", ok, timedOut)
		}
		if got := p.Now(); got != time.Second {
			t.Fatalf("timeout fired at %v, want 1s", got)
		}
		q.Send(9)
		v, ok, timedOut := q.RecvTimeout(p, time.Second)
		if !ok || timedOut || v != 9 {
			t.Fatalf("RecvTimeout with item = (%d,%v,%v)", v, ok, timedOut)
		}
		if got := p.Now(); got != time.Second {
			t.Fatalf("non-blocking receive advanced time to %v", got)
		}
	})
}

func TestQueueTimeoutThenSendDoesNotLoseItem(t *testing.T) {
	e := NewEngine(1)
	e.Run("root", func(p *Proc) {
		q := NewQueue[int](e)
		_, _, timedOut := q.RecvTimeout(p, time.Second)
		if !timedOut {
			t.Fatal("expected timeout")
		}
		// The timed-out waiter must not swallow this send.
		q.Send(7)
		if v, ok := q.TryRecv(); !ok || v != 7 {
			t.Fatalf("TryRecv = (%d,%v), want (7,true)", v, ok)
		}
	})
}

func TestQueueClose(t *testing.T) {
	e := NewEngine(1)
	e.Run("root", func(p *Proc) {
		q := NewQueue[int](e)
		q.Send(1)
		q.Close()
		if v, ok := q.Recv(p); !ok || v != 1 {
			t.Fatalf("Recv after Close should drain items first, got (%d,%v)", v, ok)
		}
		if _, ok := q.Recv(p); ok {
			t.Fatal("Recv on closed drained queue reported ok")
		}
	})
}

func TestQueueCloseWakesBlockedReceivers(t *testing.T) {
	e := NewEngine(1)
	e.Run("root", func(p *Proc) {
		q := NewQueue[int](e)
		got := NewQueue[bool](e)
		p.Spawn("r", func(p *Proc) {
			_, ok := q.Recv(p)
			got.Send(ok)
		})
		p.Sleep(time.Millisecond)
		q.Close()
		ok, _ := got.Recv(p)
		if ok {
			t.Fatal("blocked receiver saw ok=true after Close")
		}
	})
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := NewEngine(1)
	var maxInside, inside int
	e.Run("root", func(p *Proc) {
		s := NewSemaphore(e, 2)
		wg := NewWaitGroup(e)
		for i := 0; i < 6; i++ {
			wg.Add(1)
			p.Spawn("w", func(p *Proc) {
				s.Acquire(p, 1)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				p.Sleep(time.Second)
				inside--
				s.Release(1)
				wg.Done()
			})
		}
		wg.Wait(p)
	})
	if maxInside != 2 {
		t.Fatalf("max concurrent holders = %d, want 2", maxInside)
	}
	// 6 workers, 2 at a time, 1s each => 3s.
	if got := e.Now(); got != 3*time.Second {
		t.Fatalf("total time = %v, want 3s", got)
	}
}

func TestSemaphoreFIFOOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Run("root", func(p *Proc) {
		s := NewSemaphore(e, 0)
		wg := NewWaitGroup(e)
		for i := 0; i < 5; i++ {
			i := i
			wg.Add(1)
			p.Spawn("w", func(p *Proc) {
				s.Acquire(p, 1)
				order = append(order, i)
				wg.Done()
			})
		}
		p.Sleep(time.Millisecond)
		s.Release(5)
		wg.Wait(p)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("wakeup order = %v, want FIFO", order)
		}
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := NewEngine(1)
	e.Run("root", func(p *Proc) {
		s := NewSemaphore(e, 1)
		if !s.TryAcquire(1) {
			t.Fatal("TryAcquire(1) with 1 available failed")
		}
		if s.TryAcquire(1) {
			t.Fatal("TryAcquire(1) with 0 available succeeded")
		}
		s.Release(1)
		if got := s.Available(); got != 1 {
			t.Fatalf("Available = %d, want 1", got)
		}
	})
}

func TestCondWaitTimeout(t *testing.T) {
	e := NewEngine(1)
	e.Run("root", func(p *Proc) {
		c := NewCond(e)
		if !c.WaitTimeout(p, time.Second) {
			t.Fatal("WaitTimeout with no signal should time out")
		}
		if got := p.Now(); got != time.Second {
			t.Fatalf("woke at %v, want 1s", got)
		}
		p.Spawn("signaler", func(p *Proc) {
			p.Sleep(100 * time.Millisecond)
			c.Broadcast()
		})
		if c.WaitTimeout(p, time.Hour) {
			t.Fatal("WaitTimeout reported timeout despite broadcast")
		}
		if got := p.Now(); got != time.Second+100*time.Millisecond {
			t.Fatalf("woke at %v, want 1.1s", got)
		}
	})
}

func TestCondSignalWakesOne(t *testing.T) {
	e := NewEngine(1)
	woken := 0
	e.Run("root", func(p *Proc) {
		c := NewCond(e)
		for i := 0; i < 3; i++ {
			p.Spawn("w", func(p *Proc) {
				c.Wait(p)
				woken++
			})
		}
		p.Sleep(time.Millisecond)
		c.Signal()
		p.Sleep(time.Millisecond)
		if woken != 1 {
			t.Fatalf("after one Signal, woken = %d, want 1", woken)
		}
		c.Broadcast()
	})
	if woken != 3 {
		t.Fatalf("after Broadcast, woken = %d, want 3", woken)
	}
}

// Property: for any set of sleep durations, processes finish in order of
// their durations (ties broken FIFO), and the final virtual time equals the
// maximum duration.
func TestSleepOrderingProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 {
			return true
		}
		if len(durs) > 64 {
			durs = durs[:64]
		}
		e := NewEngine(42)
		type fin struct {
			idx int
			at  time.Duration
		}
		var fins []fin
		e.Run("root", func(p *Proc) {
			wg := NewWaitGroup(e)
			for i, d := range durs {
				i, d := i, time.Duration(d)*time.Microsecond
				wg.Add(1)
				p.Spawn("w", func(p *Proc) {
					p.Sleep(d)
					fins = append(fins, fin{i, p.Now()})
					wg.Done()
				})
			}
			wg.Wait(p)
		})
		var max time.Duration
		for _, d := range durs {
			if dd := time.Duration(d) * time.Microsecond; dd > max {
				max = dd
			}
		}
		if e.Now() != max {
			return false
		}
		for i := 1; i < len(fins); i++ {
			if fins[i].at < fins[i-1].at {
				return false
			}
		}
		// Every process's wake time must equal its requested duration.
		for _, f := range fins {
			if f.at != time.Duration(durs[f.idx])*time.Microsecond {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a queue delivers exactly the multiset of items sent, in FIFO
// order, across any interleaving of producers.
func TestQueueDeliveryProperty(t *testing.T) {
	f := func(items []int16, seed int64) bool {
		e := NewEngine(seed)
		var got []int16
		e.Run("root", func(p *Proc) {
			q := NewQueue[int16](e)
			p.Spawn("producer", func(p *Proc) {
				for _, v := range items {
					p.Sleep(time.Duration(p.Rand().Intn(100)) * time.Microsecond)
					q.Send(v)
				}
				q.Close()
			})
			for {
				v, ok := q.Recv(p)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		if len(got) != len(items) {
			return false
		}
		for i := range got {
			if got[i] != items[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: semaphore permit accounting never goes negative and all waiters
// eventually complete for any workload shape.
func TestSemaphoreAccountingProperty(t *testing.T) {
	f := func(nWorkers uint8, permits uint8, seed int64) bool {
		w := int(nWorkers%20) + 1
		n := int(permits%4) + 1
		e := NewEngine(seed)
		completed := 0
		e.Run("root", func(p *Proc) {
			s := NewSemaphore(e, n)
			wg := NewWaitGroup(e)
			for i := 0; i < w; i++ {
				wg.Add(1)
				p.Spawn("w", func(p *Proc) {
					s.Acquire(p, 1)
					p.Sleep(time.Duration(p.Rand().Intn(1000)) * time.Microsecond)
					s.Release(1)
					completed++
					wg.Done()
				})
			}
			wg.Wait(p)
		})
		return completed == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: two runs of an identical randomized workload produce an
// identical event trace.
func TestDeterministicTraceProperty(t *testing.T) {
	run := func(seed int64) []string {
		e := NewEngine(seed)
		var trace []string
		e.SetTrace(func(now time.Duration, proc, event string) {
			trace = append(trace, now.String()+proc+event)
		})
		e.Run("root", func(p *Proc) {
			q := NewQueue[int](e)
			s := NewSemaphore(e, 2)
			wg := NewWaitGroup(e)
			for i := 0; i < 8; i++ {
				wg.Add(1)
				p.Spawn("w", func(p *Proc) {
					defer wg.Done()
					s.Acquire(p, 1)
					p.Sleep(time.Duration(p.Rand().Intn(5000)) * time.Microsecond)
					q.Send(1)
					s.Release(1)
				})
			}
			wg.Wait(p)
		})
		return trace
	}
	a, b := run(99), run(99)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestWaitGroupZeroIsImmediate(t *testing.T) {
	e := NewEngine(1)
	e.Run("root", func(p *Proc) {
		wg := NewWaitGroup(e)
		wg.Wait(p) // must not block
		if got := p.Now(); got != 0 {
			t.Fatalf("Wait on empty group advanced time to %v", got)
		}
	})
}
