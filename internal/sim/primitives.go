package sim

import "time"

// Cond is a condition variable for simulated processes. Unlike sync.Cond it
// carries no external mutex: the engine lock serializes all state changes,
// and waiters re-check their predicate after waking, as usual.
type Cond struct {
	e       *Engine
	waiters []*condWaiter
}

type condWaiter struct {
	p        *Proc
	t        *timer
	timedOut bool
	signaled bool
}

// NewCond returns a condition variable bound to e.
func NewCond(e *Engine) *Cond { return &Cond{e: e} }

// Wait blocks p until Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Proc) { c.wait(p, -1) }

// WaitTimeout blocks p until it is signaled or d elapses. It reports whether
// the wait timed out.
func (c *Cond) WaitTimeout(p *Proc, d time.Duration) (timedOut bool) {
	if d <= 0 {
		return true
	}
	return c.wait(p, d)
}

func (c *Cond) wait(p *Proc, d time.Duration) bool {
	e := c.e
	e.mu.Lock()
	e.checkRunningLocked(p, "Cond.Wait")
	w := &condWaiter{p: p}
	if d >= 0 {
		w.t = e.afterLocked(d, func() {
			if w.signaled {
				return
			}
			w.timedOut = true
			c.remove(w)
			e.readyLocked(p)
		})
	}
	c.waiters = append(c.waiters, w)
	e.blockLocked(p, "cond")
	e.mu.Unlock()
	p.park()
	return w.timedOut
}

func (c *Cond) remove(w *condWaiter) {
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Broadcast wakes every waiter. Safe to call from simulated processes and,
// in open mode, from external goroutines.
func (c *Cond) Broadcast() {
	e := c.e
	e.mu.Lock()
	for _, w := range c.waiters {
		w.signaled = true
		if w.t != nil {
			w.t.cancelLocked()
		}
		e.readyLocked(w.p)
	}
	c.waiters = nil
	e.maybeDispatchLocked()
	e.mu.Unlock()
}

// Signal wakes the longest-waiting waiter, if any.
func (c *Cond) Signal() {
	e := c.e
	e.mu.Lock()
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		w.signaled = true
		if w.t != nil {
			w.t.cancelLocked()
		}
		e.readyLocked(w.p)
	}
	e.maybeDispatchLocked()
	e.mu.Unlock()
}

// Queue is an unbounded FIFO channel between simulated processes. Send never
// blocks and is safe to call from external goroutines (open mode); Recv
// blocks the calling process until an item or Close arrives.
type Queue[T any] struct {
	e       *Engine
	items   []T
	waiters []*queueWaiter[T]
	closed  bool
}

type queueWaiter[T any] struct {
	p        *Proc
	v        T
	ok       bool
	timedOut bool
	t        *timer
	handed   bool
}

// NewQueue returns an empty queue bound to e.
func NewQueue[T any](e *Engine) *Queue[T] { return &Queue[T]{e: e} }

// Send enqueues v, waking the longest-blocked receiver if one exists.
func (q *Queue[T]) Send(v T) {
	e := q.e
	e.mu.Lock()
	defer e.mu.Unlock()
	if q.closed {
		panic("sim: send on closed Queue")
	}
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.handed {
			continue
		}
		w.v, w.ok, w.handed = v, true, true
		if w.t != nil {
			w.t.cancelLocked()
		}
		e.readyLocked(w.p)
		e.maybeDispatchLocked()
		return
	}
	q.items = append(q.items, v)
	e.maybeDispatchLocked()
}

// TrySend enqueues v like Send but reports false instead of panicking when
// the queue is already closed. Fault-tolerant senders use it to race a
// receiver that may crash (close its inbox) at any instant.
func (q *Queue[T]) TrySend(v T) bool {
	e := q.e
	e.mu.Lock()
	defer e.mu.Unlock()
	if q.closed {
		return false
	}
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.handed {
			continue
		}
		w.v, w.ok, w.handed = v, true, true
		if w.t != nil {
			w.t.cancelLocked()
		}
		e.readyLocked(w.p)
		e.maybeDispatchLocked()
		return true
	}
	q.items = append(q.items, v)
	e.maybeDispatchLocked()
	return true
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool {
	q.e.mu.Lock()
	defer q.e.mu.Unlock()
	return q.closed
}

// Close marks the queue closed. Blocked and future receivers observe ok=false
// once the queue drains. Sending after Close panics.
func (q *Queue[T]) Close() {
	e := q.e
	e.mu.Lock()
	defer e.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	for _, w := range q.waiters {
		if w.handed {
			continue
		}
		w.handed = true
		if w.t != nil {
			w.t.cancelLocked()
		}
		e.readyLocked(w.p)
	}
	q.waiters = nil
	e.maybeDispatchLocked()
}

// Recv dequeues the next item, blocking until one is available. ok is false
// if the queue was closed and drained.
func (q *Queue[T]) Recv(p *Proc) (v T, ok bool) {
	v, ok, _ = q.recv(p, -1)
	return v, ok
}

// RecvTimeout is Recv with a virtual-time deadline.
func (q *Queue[T]) RecvTimeout(p *Proc, d time.Duration) (v T, ok bool, timedOut bool) {
	return q.recv(p, d)
}

// TryRecv dequeues the next item without blocking.
func (q *Queue[T]) TryRecv() (v T, ok bool) {
	e := q.e
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(q.items) > 0 {
		v = q.items[0]
		q.items = q.items[1:]
		return v, true
	}
	return v, false
}

func (q *Queue[T]) recv(p *Proc, d time.Duration) (v T, ok bool, timedOut bool) {
	e := q.e
	e.mu.Lock()
	e.checkRunningLocked(p, "Queue.Recv")
	if len(q.items) > 0 {
		v = q.items[0]
		q.items = q.items[1:]
		e.mu.Unlock()
		return v, true, false
	}
	if q.closed {
		e.mu.Unlock()
		return v, false, false
	}
	if d == 0 {
		e.mu.Unlock()
		return v, false, true
	}
	w := &queueWaiter[T]{p: p}
	if d > 0 {
		w.t = e.afterLocked(d, func() {
			if w.handed {
				return
			}
			w.handed = true
			w.timedOut = true
			e.readyLocked(p)
		})
	}
	q.waiters = append(q.waiters, w)
	e.blockLocked(p, "queue")
	e.mu.Unlock()
	p.park()
	return w.v, w.ok, w.timedOut
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int {
	q.e.mu.Lock()
	defer q.e.mu.Unlock()
	return len(q.items)
}

// Semaphore is a counting semaphore with FIFO wakeup.
type Semaphore struct {
	e       *Engine
	avail   int
	waiters []*semWaiter
}

type semWaiter struct {
	p *Proc
	n int
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(e *Engine, n int) *Semaphore {
	if n < 0 {
		panic("sim: negative semaphore count")
	}
	return &Semaphore{e: e, avail: n}
}

// Acquire blocks p until n permits are available, then takes them. Waiters
// are served strictly in arrival order.
func (s *Semaphore) Acquire(p *Proc, n int) {
	e := s.e
	e.mu.Lock()
	e.checkRunningLocked(p, "Semaphore.Acquire")
	if len(s.waiters) == 0 && s.avail >= n {
		s.avail -= n
		e.mu.Unlock()
		return
	}
	s.waiters = append(s.waiters, &semWaiter{p: p, n: n})
	e.blockLocked(p, "semaphore")
	e.mu.Unlock()
	p.park()
}

// TryAcquire takes n permits if available without blocking.
func (s *Semaphore) TryAcquire(n int) bool {
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	if len(s.waiters) == 0 && s.avail >= n {
		s.avail -= n
		return true
	}
	return false
}

// Release returns n permits and wakes waiters whose requests now fit.
func (s *Semaphore) Release(n int) {
	e := s.e
	e.mu.Lock()
	defer e.mu.Unlock()
	s.avail += n
	for len(s.waiters) > 0 && s.avail >= s.waiters[0].n {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.avail -= w.n
		e.readyLocked(w.p)
	}
	e.maybeDispatchLocked()
}

// Available returns the current permit count.
func (s *Semaphore) Available() int {
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	return s.avail
}

// WaitGroup waits for a collection of simulated activities to finish.
type WaitGroup struct {
	e    *Engine
	n    int
	cond *Cond
}

// NewWaitGroup returns an empty wait group bound to e.
func NewWaitGroup(e *Engine) *WaitGroup { return &WaitGroup{e: e, cond: NewCond(e)} }

// Add adds delta to the counter.
func (wg *WaitGroup) Add(delta int) {
	wg.e.mu.Lock()
	wg.n += delta
	n := wg.n
	wg.e.mu.Unlock()
	if n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if n == 0 {
		wg.cond.Broadcast()
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks p until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for {
		wg.e.mu.Lock()
		n := wg.n
		wg.e.mu.Unlock()
		if n == 0 {
			return
		}
		wg.cond.Wait(p)
	}
}
