// Package sim implements a deterministic discrete-event simulation engine.
//
// Every DGSF component that the experiments measure — guest libraries, API
// servers, the GPU server monitor, the serverless backend, and the simulated
// GPUs themselves — runs as a simulated process (Proc) on a virtual clock.
// The engine executes exactly one process at a time: when the running process
// blocks (Sleep, Queue.Recv, Cond.Wait, Semaphore.Acquire, ...) the engine
// picks the next ready process, and when no process is ready it advances the
// virtual clock to the earliest pending timer. Given a fixed seed, a
// simulation is fully deterministic and independent of wall-clock speed.
//
// The engine supports two modes:
//
//   - Run mode (Engine.Run): the usual mode for experiments. Run returns when
//     every non-daemon process has finished. If all processes are blocked with
//     no pending timers, the engine panics with a process dump (deadlock).
//
//   - Open mode (NewOpenEngine + Engine.Inject): used when simulated
//     components serve requests arriving from outside the simulation, e.g. a
//     GPU server reachable over real TCP sockets. Idle is not a deadlock;
//     external goroutines inject new processes at any time. Virtual durations
//     are still accounted, but the engine runs as fast as possible.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// errKilled is panicked inside a process when the engine is stopped; the
// process runner recovers it and exits the goroutine cleanly.
var errKilled = errors.New("sim: process killed")

// Engine is a discrete-event simulation engine. Create one with NewEngine or
// NewOpenEngine; the zero value is not usable.
type Engine struct {
	mu sync.Mutex

	now    time.Duration // current virtual time
	timers timerHeap     // pending timer events, earliest first
	seq    uint64        // tie-break sequence for timers and procs

	running    *Proc   // the process currently executing, or nil
	runq       []*Proc // processes ready to execute, FIFO
	inDispatch bool    // true while dispatchLocked is advancing the clock

	nlive   int              // live non-daemon processes
	started bool             // Run was called
	done    chan struct{}    // closed when nlive reaches 0 (Run mode)
	open    bool             // open mode: idle is not a deadlock
	stopped bool             // Stop was called
	blocked map[*Proc]string // blocked processes and why, for deadlock dumps

	seed      int64
	nextPID   int
	trace     func(now time.Duration, proc, event string)
	deadlock  string        // non-empty if the simulation deadlocked; Run panics with it
	timeLimit time.Duration // abort when virtual time passes this (0 = off)
}

// NewEngine returns an engine in Run mode seeded with seed. All randomness
// drawn through Proc.Rand derives from this seed, so a simulation replays
// identically for identical seeds.
func NewEngine(seed int64) *Engine {
	return &Engine{
		seed:    seed,
		blocked: make(map[*Proc]string),
	}
}

// NewOpenEngine returns an engine in open mode: the engine idles instead of
// declaring deadlock when no process is runnable, and external goroutines may
// add work with Inject at any time.
func NewOpenEngine(seed int64) *Engine {
	e := NewEngine(seed)
	e.open = true
	return e
}

// SetTrace installs fn as the trace hook, invoked for process lifecycle
// events. Must be called before Run or Inject.
func (e *Engine) SetTrace(fn func(now time.Duration, proc, event string)) { e.trace = fn }

// SetTimeLimit makes Run fail (panic, like a deadlock) if virtual time
// passes limit. Periodic daemons can mask a stuck simulation from deadlock
// detection by keeping timers pending forever; a time limit converts that
// livelock into a diagnosable failure. Zero disables the limit.
func (e *Engine) SetTimeLimit(limit time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.timeLimit = limit
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// Proc is a simulated process. A Proc is only valid inside the function it
// was spawned with; all blocking methods must be called by the process
// itself.
type Proc struct {
	e      *Engine
	id     int
	name   string
	daemon bool
	wake   chan struct{} // buffered(1); one send per park
	killed bool
	doneCh chan struct{} // closed on exit, if requested via Inject
	rng    *rand.Rand    // lazily created by Rand
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration {
	p.e.mu.Lock()
	defer p.e.mu.Unlock()
	return p.e.now
}

// Rand returns the process's deterministic random source. Each process
// draws from its own stream, seeded from the engine seed and the process
// name, so a process's draws depend only on its own call sequence — not on
// how concurrent activity elsewhere in the simulation interleaves with it.
// Processes spawned under the same name share a seed and therefore observe
// identical streams.
func (p *Proc) Rand() *rand.Rand {
	if p.rng == nil {
		seed := uint64(p.e.seed) ^ 0xcbf29ce484222325
		for _, c := range p.name {
			seed = (seed ^ uint64(c)) * 0x100000001b3
		}
		p.rng = rand.New(rand.NewSource(int64(seed)))
	}
	return p.rng
}

// Run spawns a root process executing root and blocks until that process and
// every non-daemon process transitively spawned from it have finished.
// Run may be called at most once per engine.
func (e *Engine) Run(name string, root func(p *Proc)) {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		panic("sim: Run called twice")
	}
	e.started = true
	e.done = make(chan struct{})
	done := e.done
	p := e.newProcLocked(name, false)
	e.startLocked(p, root)
	if e.running == nil {
		e.dispatchLocked()
	}
	e.mu.Unlock()
	<-done
	e.mu.Lock()
	dl := e.deadlock
	e.mu.Unlock()
	if dl != "" {
		panic(dl)
	}
}

// Inject spawns a non-daemon process from outside the simulation (open mode)
// and returns a channel that is closed when the process finishes.
func (e *Engine) Inject(name string, fn func(p *Proc)) <-chan struct{} {
	e.mu.Lock()
	defer e.mu.Unlock()
	p := e.newProcLocked(name, false)
	p.doneCh = make(chan struct{})
	e.startLocked(p, fn)
	if e.running == nil && !e.inDispatch {
		e.dispatchLocked()
	}
	return p.doneCh
}

// InjectDaemon spawns a daemon process from outside the simulation.
func (e *Engine) InjectDaemon(name string, fn func(p *Proc)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	p := e.newProcLocked(name, true)
	e.startLocked(p, fn)
	if e.running == nil && !e.inDispatch {
		e.dispatchLocked()
	}
}

// Stop kills every blocked and ready process. The currently running process,
// if any, is killed at its next blocking call. Stop is best-effort and
// intended for tearing down open-mode engines.
func (e *Engine) Stop() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stopped = true
	for p := range e.blocked {
		p.killed = true
		delete(e.blocked, p)
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
	for _, p := range e.runq {
		p.killed = true
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
	e.runq = nil
}

// Spawn starts a new non-daemon process. Run-mode simulations do not finish
// until every non-daemon process has finished.
func (p *Proc) Spawn(name string, fn func(*Proc)) *Proc {
	return p.spawn(name, fn, false)
}

// SpawnDaemon starts a daemon process. Daemons do not keep the simulation
// alive: Run returns even if daemons are still blocked.
func (p *Proc) SpawnDaemon(name string, fn func(*Proc)) *Proc {
	return p.spawn(name, fn, true)
}

func (p *Proc) spawn(name string, fn func(*Proc), daemon bool) *Proc {
	e := p.e
	e.mu.Lock()
	defer e.mu.Unlock()
	np := e.newProcLocked(name, daemon)
	e.startLocked(np, fn)
	return np
}

// Sleep blocks the process for virtual duration d. Non-positive durations
// yield to other ready processes without advancing time.
func (p *Proc) Sleep(d time.Duration) {
	if d <= 0 {
		p.Yield()
		return
	}
	e := p.e
	e.mu.Lock()
	e.checkRunningLocked(p, "Sleep")
	e.afterLocked(d, func() { e.readyLocked(p) })
	e.blockLocked(p, "sleep")
	e.mu.Unlock()
	p.park()
}

// Yield moves the process to the back of the ready queue, letting other
// ready processes run at the same virtual time.
func (p *Proc) Yield() {
	e := p.e
	e.mu.Lock()
	e.checkRunningLocked(p, "Yield")
	if len(e.runq) == 0 && e.timers.Len() == 0 {
		e.mu.Unlock()
		return
	}
	e.runq = append(e.runq, p)
	e.running = nil
	e.dispatchLocked()
	e.mu.Unlock()
	p.park()
}

// --- internals ---

func (e *Engine) newProcLocked(name string, daemon bool) *Proc {
	e.nextPID++
	return &Proc{
		e:      e,
		id:     e.nextPID,
		name:   name,
		daemon: daemon,
		wake:   make(chan struct{}, 1),
	}
}

// startLocked queues p for its first dispatch and launches its goroutine.
func (e *Engine) startLocked(p *Proc, fn func(*Proc)) {
	if !p.daemon {
		e.nlive++
	}
	if e.stopped {
		p.killed = true
	}
	e.runq = append(e.runq, p)
	e.traceLocked(p, "spawn")
	go func() {
		p.park()
		defer e.procExit(p)
		fn(p)
	}()
}

// procExit runs when a process function returns or is killed.
func (e *Engine) procExit(p *Proc) {
	if r := recover(); r != nil {
		if err, ok := r.(error); !ok || !errors.Is(err, errKilled) {
			// Real panic from process code: let it crash with this
			// goroutine's stack, which points at the offending code.
			panic(r)
		}
	}
	e.mu.Lock()
	e.traceLocked(p, "exit")
	if !p.daemon {
		e.nlive--
		if e.nlive == 0 && e.done != nil {
			close(e.done)
			e.done = nil
		}
	}
	if p.doneCh != nil {
		close(p.doneCh)
	}
	if e.running == p {
		e.running = nil
		e.dispatchLocked()
	}
	e.mu.Unlock()
}

// park blocks the goroutine until the scheduler wakes the process.
func (p *Proc) park() {
	<-p.wake
	if p.killed {
		panic(errKilled)
	}
}

// checkRunningLocked guards against sim primitives being called from
// goroutines that are not the currently scheduled process.
func (e *Engine) checkRunningLocked(p *Proc, op string) {
	if e.running != p {
		panic(fmt.Sprintf("sim: %s called by %q which is not the running process", op, p.name))
	}
}

// blockLocked marks the running process as blocked and schedules the next
// one. The caller must subsequently release the lock and park.
func (e *Engine) blockLocked(p *Proc, why string) {
	if e.stopped {
		// The engine is shutting down: the process wakes immediately and its
		// park() call raises errKilled.
		p.killed = true
		e.running = nil
		e.runq = append(e.runq, p)
		e.dispatchLocked()
		return
	}
	e.blocked[p] = why
	e.traceLocked(p, "block:"+why)
	e.running = nil
	e.dispatchLocked()
}

// readyLocked moves a blocked process to the ready queue.
func (e *Engine) readyLocked(p *Proc) {
	delete(e.blocked, p)
	e.runq = append(e.runq, p)
}

// maybeDispatchLocked starts the scheduler if no process is running, which
// happens when an external goroutine (open mode) makes a process ready.
func (e *Engine) maybeDispatchLocked() {
	if e.running == nil && !e.inDispatch {
		e.dispatchLocked()
	}
}

// dispatchLocked picks the next process to run, advancing the virtual clock
// through pending timers as needed. Called with e.running == nil.
func (e *Engine) dispatchLocked() {
	e.inDispatch = true
	defer func() { e.inDispatch = false }()
	for {
		if len(e.runq) > 0 {
			p := e.runq[0]
			e.runq = e.runq[1:]
			e.running = p
			e.traceLocked(p, "run")
			p.wake <- struct{}{}
			return
		}
		if e.nlive == 0 && e.started && !e.open {
			// The simulation is over: every non-daemon process finished.
			// Daemons stay parked and their pending timers never fire —
			// otherwise periodic daemons (samplers, monitor ticks) would
			// advance virtual time forever in the background.
			if e.done != nil {
				close(e.done)
				e.done = nil
			}
			return
		}
		if e.timers.Len() > 0 {
			t := heap.Pop(&e.timers).(*timer)
			if t.cancelled {
				continue
			}
			if t.at < e.now {
				panic("sim: timer in the past")
			}
			e.now = t.at
			if e.timeLimit > 0 && e.now > e.timeLimit && !e.open {
				e.deadlock = "sim: virtual time limit exceeded at " + e.now.String() + "\n" + e.deadlockDumpLocked()
				if e.done != nil {
					close(e.done)
					e.done = nil
				}
				return
			}
			t.fired = true
			t.fn()
			continue
		}
		if e.open || e.done == nil || e.stopped {
			return // idle until external activity (or already finished)
		}
		// Deadlock: every non-daemon process is blocked with nothing to wake
		// it. Report to the Run caller, which panics with the dump; blocked
		// process goroutines are intentionally left parked.
		e.deadlock = e.deadlockDumpLocked()
		close(e.done)
		e.done = nil
		return
	}
}

func (e *Engine) deadlockDumpLocked() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock at t=%v: %d non-daemon process(es) blocked with no pending timers\n", e.now, e.nlive)
	type entry struct {
		id   int
		desc string
	}
	var entries []entry
	for p, why := range e.blocked {
		kind := ""
		if p.daemon {
			kind = " (daemon)"
		}
		entries = append(entries, entry{p.id, fmt.Sprintf("  proc %d %q%s blocked on %s\n", p.id, p.name, kind, why)})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	for _, en := range entries {
		b.WriteString(en.desc)
	}
	return b.String()
}

func (e *Engine) traceLocked(p *Proc, event string) {
	if e.trace != nil {
		e.trace(e.now, p.name, event)
	}
}

// --- timers ---

type timer struct {
	at        time.Duration
	seq       uint64
	fn        func() // runs inside dispatchLocked with the engine lock held
	idx       int
	fired     bool
	cancelled bool
}

// afterLocked schedules fn to run at now+d. fn runs with the engine lock held
// inside the dispatch loop and must only perform scheduler bookkeeping
// (typically readyLocked).
func (e *Engine) afterLocked(d time.Duration, fn func()) *timer {
	e.seq++
	at := e.now + d
	if at < e.now {
		// Overflow (a caller slept for an absurd duration, e.g. decoded
		// from hostile input): clamp to the far future instead of
		// corrupting the timer heap.
		at = math.MaxInt64
	}
	t := &timer{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.timers, t)
	return t
}

func (t *timer) cancelLocked() {
	if !t.fired {
		t.cancelled = true
	}
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*timer)
	t.idx = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
