// Package gpu models a physical GPU for the DGSF simulation.
//
// A Device owns three things the paper's evaluation measures:
//
//   - finite device memory, allocated in physical chunks (the substrate under
//     the CUDA low-level virtual-memory API that DGSF's migration relies on);
//   - a compute engine executing kernels under processor sharing: a kernel
//     with nominal duration d running alongside k-1 concurrent kernels
//     progresses at rate 1/k (this is why two compute-heavy functions "don't
//     share a GPU well", §VIII-E);
//   - DMA copy engines with finite bandwidth for host↔device and
//     device↔device transfers (the cost that dominates migration, Table V).
//
// Memory contents are tracked as 64-bit fingerprints rather than real bytes:
// every write (memset, copy, kernel mutation) folds into the fingerprint, so
// tests can verify end-to-end data integrity across migration without
// materializing multi-gigabyte buffers.
package gpu

import (
	"fmt"
	"time"

	"dgsf/internal/sim"
)

// Config describes the hardware parameters of a simulated device.
type Config struct {
	ID        int
	Name      string
	MemBytes  int64
	SMs       int
	ClockMHz  int
	H2DBps    float64       // host-to-device copy bandwidth, bytes/s
	D2HBps    float64       // device-to-host copy bandwidth, bytes/s
	D2DBps    float64       // same-device copy bandwidth, bytes/s
	PeerBps   float64       // cross-device copy bandwidth, bytes/s (migration path)
	CopyLat   time.Duration // fixed per-copy launch latency
	KernelLat time.Duration // fixed per-kernel launch latency
}

// V100Config returns the parameters of the NVIDIA V100-SXM2-16GB used in the
// paper's p3.8xlarge testbed. PeerBps is calibrated from Table V: migrating a
// 13194 MB array takes ~2.12 s.
func V100Config(id int) Config {
	return Config{
		ID:        id,
		Name:      "Tesla V100-SXM2-16GB",
		MemBytes:  16 << 30,
		SMs:       80,
		ClockMHz:  1530,
		H2DBps:    11.5e9,
		D2HBps:    11.5e9,
		D2DBps:    700e9,
		PeerBps:   6.5e9,
		CopyLat:   8 * time.Microsecond,
		KernelLat: 5 * time.Microsecond,
	}
}

// Device is one simulated GPU. All methods that take a *sim.Proc must be
// called from simulated processes; the engine's serialization makes internal
// state access race-free.
type Device struct {
	Cfg Config

	e       *sim.Engine
	compute *psResource
	copyEng *psResource

	memUsed  int64
	nextID   uint64
	allocs   map[uint64]*PhysAlloc
	slowdown float64 // brownout multiplier on kernel/copy nominals (0 or 1: none)
}

// New creates a device bound to engine e.
func New(e *sim.Engine, cfg Config) *Device {
	return &Device{
		Cfg:     cfg,
		e:       e,
		compute: newPSResource(e),
		copyEng: newPSResource(e),
		allocs:  make(map[uint64]*PhysAlloc),
	}
}

// ID returns the device index on its GPU server.
func (d *Device) ID() int { return d.Cfg.ID }

// --- memory ---

// PhysAlloc is a physical device-memory allocation (the object created by
// cuMemCreate in the real API). It carries a content fingerprint updated by
// every write so migration correctness is checkable.
type PhysAlloc struct {
	id    uint64
	dev   *Device
	size  int64
	fp    uint64
	freed bool
}

// OOMError reports a failed device allocation.
type OOMError struct {
	Dev       int
	Requested int64
	Free      int64
}

func (e *OOMError) Error() string {
	return fmt.Sprintf("gpu%d: out of memory: requested %d bytes, %d free", e.Dev, e.Requested, e.Free)
}

// AllocPhys reserves size bytes of device memory.
func (d *Device) AllocPhys(size int64) (*PhysAlloc, error) {
	if size <= 0 {
		return nil, fmt.Errorf("gpu%d: invalid allocation size %d", d.Cfg.ID, size)
	}
	if d.memUsed+size > d.Cfg.MemBytes {
		return nil, &OOMError{Dev: d.Cfg.ID, Requested: size, Free: d.Cfg.MemBytes - d.memUsed}
	}
	d.memUsed += size
	d.nextID++
	a := &PhysAlloc{id: d.nextID, dev: d, size: size}
	d.allocs[a.id] = a
	return a, nil
}

// Free releases the allocation. Double frees panic: they indicate a bug in
// the runtime layered above, never a user error.
func (a *PhysAlloc) Free() {
	if a.freed {
		panic(fmt.Sprintf("gpu%d: double free of phys alloc %d", a.dev.Cfg.ID, a.id))
	}
	a.freed = true
	a.dev.memUsed -= a.size
	delete(a.dev.allocs, a.id)
}

// Size returns the allocation size in bytes.
func (a *PhysAlloc) Size() int64 { return a.size }

// Device returns the device owning the allocation.
func (a *PhysAlloc) Device() *Device { return a.dev }

// Fingerprint returns the current content fingerprint.
func (a *PhysAlloc) Fingerprint() uint64 { return a.fp }

// UsedBytes returns the bytes currently allocated on the device.
func (d *Device) UsedBytes() int64 { return d.memUsed }

// FreeBytes returns the bytes currently available on the device.
func (d *Device) FreeBytes() int64 { return d.Cfg.MemBytes - d.memUsed }

// LiveAllocs returns the number of live physical allocations.
func (d *Device) LiveAllocs() int { return len(d.allocs) }

// SetSlowdown applies a brownout multiplier to every subsequent kernel and
// copy nominal on this device: factor 4 makes the GPU compute and move data
// 4× slower. Factor ≤ 1 restores full speed. The fault framework uses this
// to model thermally throttled or contended GPUs that are slow, not dead.
func (d *Device) SetSlowdown(factor float64) {
	if factor < 1 {
		factor = 1
	}
	d.slowdown = factor
}

// Slowdown returns the active brownout multiplier (1 when none).
func (d *Device) Slowdown() float64 {
	if d.slowdown < 1 {
		return 1
	}
	return d.slowdown
}

// stretch applies the device's brownout multiplier to a nominal duration.
func (d *Device) stretch(nominal time.Duration) time.Duration {
	if d.slowdown > 1 {
		return time.Duration(float64(nominal) * d.slowdown)
	}
	return nominal
}

// maxSlowdown returns the larger of two devices' brownout multipliers: a
// cross-device transfer is paced by its slower endpoint.
func maxSlowdown(a, b *Device) float64 {
	f := a.Slowdown()
	if g := b.Slowdown(); g > f {
		f = g
	}
	return f
}

// --- content fingerprinting ---

// Mix folds new data into a fingerprint (FNV-1a step over the 64-bit words).
func Mix(fp uint64, vals ...uint64) uint64 {
	const prime = 1099511628211
	if fp == 0 {
		fp = 14695981039346656037
	}
	for _, v := range vals {
		for i := 0; i < 8; i++ {
			fp ^= (v >> (8 * i)) & 0xff
			fp *= prime
		}
	}
	return fp
}

// HostBuffer stands in for host memory contents: synthetic workloads produce
// data as (fingerprint, size) pairs instead of real bytes.
type HostBuffer struct {
	FP   uint64
	Size int64
}

// --- kernels ---

// ExecKernel runs a kernel of nominal duration d to completion under
// processor sharing with every other kernel concurrently executing on the
// device, blocking p until the kernel finishes.
func (d *Device) ExecKernel(p *sim.Proc, nominal time.Duration) {
	if d.Cfg.KernelLat > 0 {
		p.Sleep(d.Cfg.KernelLat)
	}
	if nominal <= 0 {
		return
	}
	d.compute.Exec(p, d.stretch(nominal))
}

// MutateKernel applies kernel kernelName to the allocation's contents,
// updating the fingerprint deterministically. Used by synthetic workloads to
// model kernels that read and write device buffers.
func MutateKernel(a *PhysAlloc, kernelName string) {
	h := uint64(0)
	for _, c := range kernelName {
		h = Mix(h, uint64(c))
	}
	a.fp = Mix(a.fp, h)
}

// ActiveKernels returns the number of kernels currently executing.
func (d *Device) ActiveKernels() int { return d.compute.Active() }

// ComputeBusy returns the cumulative virtual time during which at least one
// kernel was executing (the quantity NVML's utilization counter integrates).
func (d *Device) ComputeBusy() time.Duration { return d.compute.Busy() }

// --- copies ---

// Memset overwrites the allocation with a byte value, taking D2D write
// bandwidth, and stamps the content fingerprint.
func (d *Device) Memset(p *sim.Proc, a *PhysAlloc, value byte, size int64) {
	d.copyTime(p, size, d.Cfg.D2DBps)
	a.fp = Mix(0, uint64(value), uint64(size))
}

// CopyH2D transfers size bytes of host content into dst over PCIe.
func (d *Device) CopyH2D(p *sim.Proc, dst *PhysAlloc, src HostBuffer, size int64) {
	d.copyTime(p, size, d.Cfg.H2DBps)
	dst.fp = Mix(src.FP, uint64(size))
}

// CopyD2H transfers size bytes of device content to the host, returning the
// host-visible content.
func (d *Device) CopyD2H(p *sim.Proc, src *PhysAlloc, size int64) HostBuffer {
	d.copyTime(p, size, d.Cfg.D2HBps)
	return HostBuffer{FP: Mix(src.fp, uint64(size)), Size: size}
}

// CopyD2D transfers the full contents of src into dst. When the allocations
// live on different devices the transfer runs at peer (NVLink/PCIe-P2P)
// bandwidth and charges both devices' copy engines; this is the data path of
// API-server migration.
func CopyD2D(p *sim.Proc, dst, src *PhysAlloc) {
	size := src.size
	if dst.size < size {
		size = dst.size
	}
	if src.dev == dst.dev {
		src.dev.copyTime(p, size, src.dev.Cfg.D2DBps)
	} else {
		bps := src.dev.Cfg.PeerBps
		if dst.dev.Cfg.PeerBps < bps {
			bps = dst.dev.Cfg.PeerBps
		}
		src.dev.crossCopyTime(p, dst.dev, size, bps)
	}
	dst.fp = src.fp
}

// FabricCopy models a cross-GPU-server transfer over the data-plane fabric:
// the transfer is paced by the fabric bandwidth bps after a fixed link
// latency, occupies both devices' copy engines for its span (GPUDirect DMA on
// each end), and copies content like CopyD2D. The devices belong to different
// machines, so neither NVLink peer bandwidth nor a shared engine applies.
func FabricCopy(p *sim.Proc, dst, src *PhysAlloc, bps float64, lat time.Duration) {
	size := src.size
	if dst.size < size {
		size = dst.size
	}
	if lat > 0 {
		p.Sleep(lat)
	}
	if size > 0 && bps > 0 {
		nominal := time.Duration(float64(size) / bps * float64(time.Second))
		// A brownout on either endpoint paces the whole transfer.
		if f := maxSlowdown(src.dev, dst.dev); f > 1 {
			nominal = time.Duration(float64(nominal) * f)
		}
		dst.dev.copyEng.enter(p)
		src.dev.copyEng.Exec(p, nominal)
		dst.dev.copyEng.leave(p)
	}
	dst.fp = src.fp
}

// copyTime charges the device's copy engine for a size-byte transfer.
func (d *Device) copyTime(p *sim.Proc, size int64, bps float64) {
	if d.Cfg.CopyLat > 0 {
		p.Sleep(d.Cfg.CopyLat)
	}
	if size <= 0 || bps <= 0 {
		return
	}
	nominal := time.Duration(float64(size) / bps * float64(time.Second))
	d.copyEng.Exec(p, d.stretch(nominal))
}

// crossCopyTime charges a peer copy: the source engine paces the transfer
// and the destination engine is marked busy for the same span.
func (d *Device) crossCopyTime(p *sim.Proc, dst *Device, size int64, bps float64) {
	if d.Cfg.CopyLat > 0 {
		p.Sleep(d.Cfg.CopyLat)
	}
	if size <= 0 || bps <= 0 {
		return
	}
	nominal := time.Duration(float64(size) / bps * float64(time.Second))
	if f := maxSlowdown(d, dst); f > 1 {
		nominal = time.Duration(float64(nominal) * f)
	}
	dst.copyEng.enter(p)
	d.copyEng.Exec(p, nominal)
	dst.copyEng.leave(p)
}

// CopyBusy returns cumulative copy-engine busy time.
func (d *Device) CopyBusy() time.Duration { return d.copyEng.Busy() }
