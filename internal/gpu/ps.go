package gpu

import (
	"time"

	"dgsf/internal/sim"
)

// psResource is an egalitarian processor-sharing server: n concurrent
// executions each progress at rate 1/n. It models both the SM array (kernels
// from API servers sharing a GPU) and DMA copy engines (concurrent transfers
// sharing bus bandwidth).
type psResource struct {
	e       *sim.Engine
	changed *sim.Cond // broadcast whenever the active set changes

	active    int
	busy      time.Duration // cumulative time with active > 0
	busySince time.Duration // valid while active > 0
}

func newPSResource(e *sim.Engine) *psResource {
	return &psResource{e: e, changed: sim.NewCond(e)}
}

// Exec runs a job of nominal duration d (its duration when running alone),
// blocking p until the job's work is complete under processor sharing.
func (r *psResource) Exec(p *sim.Proc, nominal time.Duration) {
	if nominal <= 0 {
		return
	}
	r.enter(p)
	defer r.leave(p)

	remaining := float64(nominal) // nanoseconds of solo work left
	for remaining >= 1 {
		n := r.active
		// At rate 1/n the remaining work takes remaining*n wall nanoseconds.
		span := time.Duration(remaining * float64(n))
		if span < 1 {
			span = 1
		}
		start := p.Now()
		timedOut := r.changed.WaitTimeout(p, span)
		elapsed := p.Now() - start
		remaining -= float64(elapsed) / float64(n)
		if timedOut {
			return // ran the full span: work complete
		}
		// The active set changed; loop to recompute the finish time.
	}
}

// enter admits a job to the active set.
func (r *psResource) enter(p *sim.Proc) {
	if r.active == 0 {
		r.busySince = p.Now()
	}
	r.active++
	r.changed.Broadcast()
}

// leave removes a job from the active set.
func (r *psResource) leave(p *sim.Proc) {
	r.active--
	if r.active == 0 {
		r.busy += p.Now() - r.busySince
	}
	r.changed.Broadcast()
}

// Active returns the number of jobs currently executing.
func (r *psResource) Active() int { return r.active }

// Busy returns cumulative time during which at least one job was executing.
// While jobs are active the open interval is included.
func (r *psResource) Busy() time.Duration {
	if r.active > 0 {
		return r.busy + (r.e.Now() - r.busySince)
	}
	return r.busy
}
