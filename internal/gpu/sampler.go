package gpu

import (
	"time"

	"dgsf/internal/sim"
)

// Sample is one utilization reading, as NVML reports it: the percentage of
// the preceding sample period during which one or more kernels were
// executing, plus the device's memory occupancy at sampling time.
type Sample struct {
	At        time.Duration
	Util      float64 // 0..100
	UsedBytes int64
}

// Sampler polls a device's compute-busy counter the way the paper's monitor
// polls NVML: every Period (the paper samples every 200 ms; the V100's
// internal sample period is 167 ms).
type Sampler struct {
	Dev    *Device
	Period time.Duration

	samples  []Sample
	lastBusy time.Duration
	stop     bool
}

// NewSampler returns a sampler for dev with the given polling period.
func NewSampler(dev *Device, period time.Duration) *Sampler {
	return &Sampler{Dev: dev, Period: period}
}

// Run polls until Stop is called. Spawn it as a daemon process.
func (s *Sampler) Run(p *sim.Proc) {
	s.lastBusy = s.Dev.ComputeBusy()
	for !s.stop {
		p.Sleep(s.Period)
		busy := s.Dev.ComputeBusy()
		util := float64(busy-s.lastBusy) / float64(s.Period) * 100
		if util > 100 {
			util = 100
		}
		s.lastBusy = busy
		s.samples = append(s.samples, Sample{
			At:        p.Now(),
			Util:      util,
			UsedBytes: s.Dev.UsedBytes(),
		})
	}
}

// Stop ends the sampling loop after the in-flight period completes.
func (s *Sampler) Stop() { s.stop = true }

// Samples returns all recorded samples.
func (s *Sampler) Samples() []Sample { return s.samples }

// MovingAverage returns the utilization series smoothed with a trailing
// window of the given size, as plotted in the paper's Figure 7 (window 5).
func (s *Sampler) MovingAverage(window int) []Sample {
	if window < 1 {
		window = 1
	}
	out := make([]Sample, 0, len(s.samples))
	var sum float64
	for i, smp := range s.samples {
		sum += smp.Util
		if i >= window {
			sum -= s.samples[i-window].Util
		}
		n := window
		if i+1 < window {
			n = i + 1
		}
		out = append(out, Sample{At: smp.At, Util: sum / float64(n), UsedBytes: smp.UsedBytes})
	}
	return out
}

// MeanUtil returns the average utilization over all samples between from and
// to (inclusive); with from==to==0 it averages every sample.
func (s *Sampler) MeanUtil(from, to time.Duration) float64 {
	var sum float64
	var n int
	for _, smp := range s.samples {
		if (from != 0 || to != 0) && (smp.At < from || smp.At > to) {
			continue
		}
		sum += smp.Util
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
