package gpu

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"dgsf/internal/sim"
)

func newTestDevice(e *sim.Engine) *Device {
	cfg := V100Config(0)
	cfg.CopyLat = 0
	cfg.KernelLat = 0
	return New(e, cfg)
}

func TestAllocAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		d := newTestDevice(e)
		a, err := d.AllocPhys(1 << 30)
		if err != nil {
			t.Fatalf("AllocPhys: %v", err)
		}
		if got := d.UsedBytes(); got != 1<<30 {
			t.Fatalf("UsedBytes = %d, want 1GiB", got)
		}
		b, err := d.AllocPhys(2 << 30)
		if err != nil {
			t.Fatalf("AllocPhys: %v", err)
		}
		a.Free()
		if got := d.UsedBytes(); got != 2<<30 {
			t.Fatalf("UsedBytes after free = %d, want 2GiB", got)
		}
		b.Free()
		if got, live := d.UsedBytes(), d.LiveAllocs(); got != 0 || live != 0 {
			t.Fatalf("after freeing all: used=%d live=%d", got, live)
		}
	})
}

func TestAllocOOM(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		d := newTestDevice(e)
		if _, err := d.AllocPhys(d.Cfg.MemBytes + 1); err == nil {
			t.Fatal("allocation above capacity succeeded")
		}
		a, err := d.AllocPhys(d.Cfg.MemBytes)
		if err != nil {
			t.Fatalf("full-capacity allocation failed: %v", err)
		}
		_, err = d.AllocPhys(1)
		var oom *OOMError
		if !errors.As(err, &oom) {
			t.Fatalf("expected OOMError, got %v", err)
		}
		if oom.Free != 0 {
			t.Fatalf("OOMError.Free = %d, want 0", oom.Free)
		}
		a.Free()
		if _, err := d.AllocPhys(1); err != nil {
			t.Fatalf("allocation after free failed: %v", err)
		}
	})
}

func TestAllocInvalidSize(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		d := newTestDevice(e)
		for _, sz := range []int64{0, -1} {
			if _, err := d.AllocPhys(sz); err == nil {
				t.Errorf("AllocPhys(%d) succeeded", sz)
			}
		}
	})
}

func TestDoubleFreePanics(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		d := newTestDevice(e)
		a, _ := d.AllocPhys(1024)
		a.Free()
		defer func() {
			if recover() == nil {
				t.Error("double free did not panic")
			}
		}()
		a.Free()
	})
}

func TestKernelSoloDuration(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		d := newTestDevice(e)
		start := p.Now()
		d.ExecKernel(p, 100*time.Millisecond)
		if got := p.Now() - start; got != 100*time.Millisecond {
			t.Fatalf("solo kernel took %v, want 100ms", got)
		}
	})
}

func TestKernelProcessorSharing(t *testing.T) {
	// Two equal kernels sharing the device each take 2x their solo time.
	e := sim.NewEngine(1)
	var aDone, bDone time.Duration
	e.Run("root", func(p *sim.Proc) {
		d := newTestDevice(e)
		wg := sim.NewWaitGroup(e)
		wg.Add(2)
		p.Spawn("a", func(p *sim.Proc) {
			d.ExecKernel(p, time.Second)
			aDone = p.Now()
			wg.Done()
		})
		p.Spawn("b", func(p *sim.Proc) {
			d.ExecKernel(p, time.Second)
			bDone = p.Now()
			wg.Done()
		})
		wg.Wait(p)
	})
	if aDone != 2*time.Second || bDone != 2*time.Second {
		t.Fatalf("shared kernels finished at %v and %v, want 2s both", aDone, bDone)
	}
}

func TestKernelUnequalSharing(t *testing.T) {
	// A 1s kernel and a 3s kernel start together: the short one sees rate
	// 1/2 until it finishes at t=2s; the long one then has 2s of work left
	// and finishes at t=4s.
	e := sim.NewEngine(1)
	var shortDone, longDone time.Duration
	e.Run("root", func(p *sim.Proc) {
		d := newTestDevice(e)
		wg := sim.NewWaitGroup(e)
		wg.Add(2)
		p.Spawn("short", func(p *sim.Proc) {
			d.ExecKernel(p, time.Second)
			shortDone = p.Now()
			wg.Done()
		})
		p.Spawn("long", func(p *sim.Proc) {
			d.ExecKernel(p, 3*time.Second)
			longDone = p.Now()
			wg.Done()
		})
		wg.Wait(p)
	})
	if shortDone != 2*time.Second {
		t.Fatalf("short kernel finished at %v, want 2s", shortDone)
	}
	if longDone != 4*time.Second {
		t.Fatalf("long kernel finished at %v, want 4s", longDone)
	}
}

func TestKernelLateArrivalSharing(t *testing.T) {
	// Kernel A (2s) starts at t=0; kernel B (1s) arrives at t=1s.
	// A runs solo for 1s (1s work left), then shares: both at rate 1/2.
	// B finishes at 1 + 2 = 3s; A also has 1s left at t=1 so finishes at 3s.
	e := sim.NewEngine(1)
	var aDone, bDone time.Duration
	e.Run("root", func(p *sim.Proc) {
		d := newTestDevice(e)
		wg := sim.NewWaitGroup(e)
		wg.Add(2)
		p.Spawn("a", func(p *sim.Proc) {
			d.ExecKernel(p, 2*time.Second)
			aDone = p.Now()
			wg.Done()
		})
		p.Spawn("b", func(p *sim.Proc) {
			p.Sleep(time.Second)
			d.ExecKernel(p, time.Second)
			bDone = p.Now()
			wg.Done()
		})
		wg.Wait(p)
	})
	if aDone != 3*time.Second || bDone != 3*time.Second {
		t.Fatalf("finish times a=%v b=%v, want 3s both", aDone, bDone)
	}
}

// Property: under processor sharing, total busy time equals total work, and
// every kernel takes at least its nominal duration.
func TestProcessorSharingConservationProperty(t *testing.T) {
	f := func(durs []uint16, seed int64) bool {
		if len(durs) == 0 {
			return true
		}
		if len(durs) > 16 {
			durs = durs[:16]
		}
		e := sim.NewEngine(seed)
		d := New(e, Config{ID: 0, MemBytes: 1 << 30, D2DBps: 1e9, H2DBps: 1e9, D2HBps: 1e9, PeerBps: 1e9})
		ok := true
		var total time.Duration
		e.Run("root", func(p *sim.Proc) {
			wg := sim.NewWaitGroup(e)
			for _, u := range durs {
				nominal := time.Duration(u+1) * time.Microsecond
				total += nominal
				wg.Add(1)
				p.Spawn("k", func(p *sim.Proc) {
					start := p.Now()
					d.ExecKernel(p, nominal)
					if p.Now()-start < nominal {
						ok = false // finished faster than running alone
					}
					wg.Done()
				})
			}
			wg.Wait(p)
		})
		// Work conservation: all kernels started at t=0 and the device is
		// never idle until the last finishes, so busy time == total work
		// (within rounding of 1ns per wait iteration per kernel).
		slack := time.Duration(len(durs) * 64)
		busy := d.ComputeBusy()
		if busy < total-slack || busy > total+slack {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCopyBandwidth(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		cfg := V100Config(0)
		cfg.CopyLat = 0
		cfg.H2DBps = 1e9 // 1 GB/s for easy math
		d := New(e, cfg)
		a, _ := d.AllocPhys(1 << 30)
		start := p.Now()
		d.CopyH2D(p, a, HostBuffer{FP: 1, Size: 5e8}, 5e8)
		if got := p.Now() - start; got != 500*time.Millisecond {
			t.Fatalf("0.5GB at 1GB/s took %v, want 500ms", got)
		}
	})
}

func TestCrossDeviceCopySlowAndStampsContent(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		cfg0, cfg1 := V100Config(0), V100Config(1)
		cfg0.CopyLat, cfg1.CopyLat = 0, 0
		cfg0.PeerBps, cfg1.PeerBps = 2e9, 2e9
		d0, d1 := New(e, cfg0), New(e, cfg1)
		src, _ := d0.AllocPhys(1e9)
		dst, _ := d1.AllocPhys(1e9)
		d0.Memset(p, src, 0xAB, 1e9)
		want := src.Fingerprint()
		start := p.Now()
		CopyD2D(p, dst, src)
		if got := p.Now() - start; got != 500*time.Millisecond {
			t.Fatalf("1GB at 2GB/s peer took %v, want 500ms", got)
		}
		if dst.Fingerprint() != want {
			t.Fatalf("content fingerprint not preserved: %x vs %x", dst.Fingerprint(), want)
		}
	})
}

func TestMemsetAndMutateDeterministic(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		d := newTestDevice(e)
		a, _ := d.AllocPhys(4096)
		b, _ := d.AllocPhys(4096)
		d.Memset(p, a, 0, 4096)
		d.Memset(p, b, 0, 4096)
		MutateKernel(a, "saxpy")
		MutateKernel(b, "saxpy")
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatal("identical op sequences produced different fingerprints")
		}
		MutateKernel(a, "gemm")
		if a.Fingerprint() == b.Fingerprint() {
			t.Fatal("different kernels produced identical fingerprints")
		}
	})
}

func TestD2HRoundTripObservesWrites(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		d := newTestDevice(e)
		a, _ := d.AllocPhys(1 << 20)
		d.CopyH2D(p, a, HostBuffer{FP: 77, Size: 1 << 20}, 1<<20)
		h1 := d.CopyD2H(p, a, 1<<20)
		MutateKernel(a, "inc")
		h2 := d.CopyD2H(p, a, 1<<20)
		if h1.FP == h2.FP {
			t.Fatal("kernel mutation not visible through D2H copy")
		}
	})
}

func TestSamplerMeasuresUtilization(t *testing.T) {
	e := sim.NewEngine(1)
	var s *Sampler
	e.Run("root", func(p *sim.Proc) {
		d := newTestDevice(e)
		s = NewSampler(d, 100*time.Millisecond)
		p.SpawnDaemon("sampler", s.Run)
		// Busy for 1s, idle for 1s.
		d.ExecKernel(p, time.Second)
		p.Sleep(time.Second)
		s.Stop()
		p.Sleep(200 * time.Millisecond)
	})
	samples := s.Samples()
	if len(samples) < 15 {
		t.Fatalf("got %d samples, want >= 15", len(samples))
	}
	// First ~10 samples should read ~100, the following ~10 should read ~0.
	if samples[4].Util < 99 {
		t.Errorf("sample during busy period = %v, want ~100", samples[4].Util)
	}
	if samples[14].Util > 1 {
		t.Errorf("sample during idle period = %v, want ~0", samples[14].Util)
	}
}

func TestSamplerMovingAverage(t *testing.T) {
	s := &Sampler{samples: []Sample{
		{Util: 100}, {Util: 0}, {Util: 100}, {Util: 0}, {Util: 100},
	}}
	ma := s.MovingAverage(5)
	if got := ma[4].Util; got != 60 {
		t.Fatalf("window-5 average = %v, want 60", got)
	}
	if got := ma[0].Util; got != 100 {
		t.Fatalf("first element average = %v, want 100", got)
	}
	if got := s.MeanUtil(0, 0); got != 60 {
		t.Fatalf("MeanUtil = %v, want 60", got)
	}
}

func TestMixFingerprint(t *testing.T) {
	if Mix(0, 1) == Mix(0, 2) {
		t.Fatal("Mix collides on trivially different inputs")
	}
	if Mix(0, 1, 2) == Mix(0, 2, 1) {
		t.Fatal("Mix is order-insensitive")
	}
	if Mix(Mix(0, 1), 2) != Mix(0, 1, 2) {
		t.Fatal("Mix is not associative over folding")
	}
}
