// Package guest implements DGSF's guest library: the shim interposed under
// an application's CUDA/cuDNN/cuBLAS calls (§V-A). Every call the
// application makes lands here; the library decides, per call and per
// optimization tier, whether to answer it locally, defer it into a batch,
// or remote it to the API server.
//
// Optimization tiers follow the paper's ablation (§V-C, Fig. 4):
//
//   - OptNone: every interposed call is forwarded individually, including
//     the __cudaPushCallConfiguration/__cudaPopCallConfiguration pair
//     around each kernel launch.
//   - OptLocalDescriptors: cuDNN descriptor create/set/destroy, host-only
//     memory APIs (cudaMallocHost), version queries and error queries are
//     answered from guest-side state without touching the network.
//   - OptBatching: calls with no immediately-needed result (kernel
//     launches, memsets, frees, event records, ...) are accumulated and
//     shipped as one batch message before the next synchronous call; launch
//     configurations are piggybacked onto launches; pointer-attribute
//     queries are answered from tracked allocations.
//
// Server-side handle pooling (OptHandlePool in the experiments) lives in
// internal/apiserver; the guest is oblivious to it, exactly as in DGSF.
package guest

import (
	"time"

	"dgsf/internal/cuda"
	"dgsf/internal/cudalibs"
	"dgsf/internal/gpu"
	"dgsf/internal/remoting"
	"dgsf/internal/remoting/gen"
	"dgsf/internal/remoting/wire"
	"dgsf/internal/sim"
)

// Opt is a bitmask of guest-side optimization tiers.
type Opt uint8

// Guest optimization flags. OptAll enables every guest-side optimization in
// the paper's ablation; OptAsync additionally turns on the pipelined
// submission lane and must be combined with a transport that supports it.
const (
	OptNone             Opt = 0
	OptLocalDescriptors Opt = 1 << iota
	OptBatching
	OptAsync
	OptAll = OptLocalDescriptors | OptBatching
)

// Stats counts how the guest library disposed of interposed calls.
type Stats struct {
	Total     int // calls interposed
	Remoted   int // forwarded as individual round trips
	Batched   int // forwarded inside batch messages
	Localized int // answered locally, never forwarded
	Async     int // forwarded as one-way pipelined submissions
	Batches   int // batch messages sent
	Fences    int // pipeline fences performed (round trips)
}

// Roundtrips returns the number of network round trips performed.
func (s Stats) Roundtrips() int { return s.Remoted + s.Batches + s.Fences }

// Forwarded returns the number of API calls that reached the API server.
func (s Stats) Forwarded() int { return s.Remoted + s.Batched + s.Async }

// localDescBit marks guest-allocated descriptor handles so they can never
// collide with server-side handles.
const localDescBit = 1 << 62

// maxAsyncWindow bounds the guest-tracked in-flight depth of the pipelined
// lane; hitting it forces a fence so an unbounded burst of one-way
// submissions cannot run arbitrarily far ahead of the server. It is sized
// above the launch bursts real inference loops produce (hundreds per batch):
// a mid-burst fence would reintroduce exactly the round trip the lane hides.
const maxAsyncWindow = 512

// Lib is a guest library instance: one per function execution.
type Lib struct {
	cl  *gen.Client
	opt Opt

	// async is the transport's pipelined lane, non-nil when the transport
	// implements remoting.AsyncCaller. Without it OptAsync degrades to the
	// synchronous paths.
	async         remoting.AsyncCaller
	asyncInFlight int

	stats Stats

	// Guest-side state backing localized APIs.
	lastError  int
	ptrSizes   map[cuda.DevPtr]int64
	hostAllocs map[uint64]int64
	nextHost   uint64
	localDescs map[cudalibs.Descriptor]bool
	nextDesc   uint64
	cfgStack   []gen.PushCallConfigurationReq
	localCost  time.Duration // CPU cost of a locally-answered call

	// Pending batch (OptBatching).
	batch      wire.Encoder
	batchBody  wire.Encoder
	batchCount int
}

var _ gen.API = (*Lib)(nil)

// New returns a guest library speaking to the API server over t.
func New(t remoting.Caller, opt Opt) *Lib {
	l := &Lib{
		cl:         &gen.Client{T: t},
		opt:        opt,
		ptrSizes:   make(map[cuda.DevPtr]int64),
		hostAllocs: make(map[uint64]int64),
		localDescs: make(map[cudalibs.Descriptor]bool),
		localCost:  300 * time.Nanosecond,
	}
	if ac, ok := t.(remoting.AsyncCaller); ok {
		l.async = ac
	}
	return l
}

// Stats returns the call-disposition counters.
func (l *Lib) Stats() Stats { return l.stats }

// Opt returns the active optimization tier.
func (l *Lib) Opt() Opt { return l.opt }

// local charges the CPU cost of answering a call in the guest library.
func (l *Lib) local(p *sim.Proc) {
	l.stats.Total++
	l.stats.Localized++
	if l.localCost > 0 {
		p.Sleep(l.localCost)
	}
}

// remoteCall wraps an individual round trip: any pending batch is flushed
// and the pipelined lane is drained first, so the server observes calls in
// program order and latched asynchronous errors surface before the
// synchronous call runs.
func (l *Lib) remote(p *sim.Proc) {
	l.FlushBatch(p)
	l.fence(p)
	l.stats.Total++
	l.stats.Remoted++
}

// deferCall length-prefixes one encoded call into the pending batch body.
// The scratch encoder is reused across calls: BytesField copies its bytes.
func (l *Lib) deferCall(appendFn func(e *wire.Encoder)) {
	l.stats.Total++
	l.stats.Batched++
	l.batch.Reset()
	appendFn(&l.batch)
	l.batchBody.BytesField(l.batch.Bytes())
	l.batchCount++
}

// submitAsync fires one call down the transport's pipelined lane without
// waiting for an acknowledgement. The encoder buffer is freshly allocated —
// never pooled — because the transport may hold it until delivery. Errors
// latch server-side and surface at the next fence.
func (l *Lib) submitAsync(p *sim.Proc, reqData int64, appendFn func(e *wire.Encoder)) error {
	if l.asyncInFlight >= maxAsyncWindow {
		l.fence(p)
	}
	l.stats.Total++
	l.stats.Async++
	var e wire.Encoder
	e.U16(remoting.CallAsync)
	appendFn(&e)
	if err := l.async.Submit(p, e.Bytes(), reqData); err != nil {
		l.lastError = -1
		return err
	}
	l.asyncInFlight++
	return nil
}

// fence drains the pipelined lane: a CallFence round trip whose FIFO
// position guarantees every prior submission has executed, and whose reply
// carries the first latched asynchronous error. A no-op with nothing in
// flight, so tiers without OptAsync are unaffected.
func (l *Lib) fence(p *sim.Proc) {
	if l.asyncInFlight == 0 {
		return
	}
	l.asyncInFlight = 0
	l.stats.Fences++
	enc := wire.GetEncoder()
	enc.U16(remoting.CallFence)
	resp, err := l.cl.T.Roundtrip(p, enc.Bytes(), 0)
	if err != nil {
		l.lastError = -1
		return
	}
	wire.PutEncoder(enc)
	d := wire.GetDecoder(resp)
	if code := int(d.I32()); code != 0 && l.lastError == 0 {
		l.lastError = code
	}
	wire.PutDecoder(d)
}

// FlushBatch ships the pending batch, if any, as one round trip. Errors from
// batched calls surface through GetLastError, like asynchronous CUDA errors.
func (l *Lib) FlushBatch(p *sim.Proc) {
	if l.batchCount == 0 {
		return
	}
	l.batch.Reset()
	l.batch.U16(remoting.CallBatch)
	l.batch.U32(uint32(l.batchCount))
	l.batch.Raw(l.batchBody.Bytes())
	l.batchBody.Reset()
	l.batchCount = 0
	l.stats.Batches++
	resp, err := l.cl.T.Roundtrip(p, l.batch.Bytes(), 0)
	if err != nil {
		l.lastError = -1
		return
	}
	d := wire.GetDecoder(resp)
	if code := int(d.I32()); code != 0 {
		l.lastError = code
	}
	wire.PutDecoder(d)
}

// batching reports whether batching is enabled.
func (l *Lib) batching() bool { return l.opt&OptBatching != 0 }

// asyncing reports whether the pipelined lane is active: the OptAsync tier
// is enabled and the transport supports one-way submissions.
func (l *Lib) asyncing() bool { return l.opt&OptAsync != 0 && l.async != nil }

// localizing reports whether guest-side localization is enabled.
func (l *Lib) localizing() bool { return l.opt&OptLocalDescriptors != 0 }

// --- session control (always remoted) ---

// Hello opens the function session.
func (l *Lib) Hello(p *sim.Proc, fnID string, memLimit int64) error {
	l.remote(p)
	return l.cl.Hello(p, fnID, memLimit)
}

// Bye ends the function session.
func (l *Lib) Bye(p *sim.Proc) error {
	l.remote(p)
	return l.cl.Bye(p)
}

// RegisterKernels ships the function's kernel symbols to the API server.
func (l *Lib) RegisterKernels(p *sim.Proc, names []string) ([]cuda.FnPtr, error) {
	l.remote(p)
	return l.cl.RegisterKernels(p, names)
}

// ModelAttach asks the API server for a cached copy of the function's model
// working set; the returned pointer is tracked like a Malloc so localized
// pointer-attribute queries keep working.
func (l *Lib) ModelAttach(p *sim.Proc) (cuda.DevPtr, int64, int, error) {
	l.remote(p)
	ptr, size, tier, err := l.cl.ModelAttach(p)
	if err == nil && ptr != 0 {
		l.ptrSizes[ptr] = size
	}
	return ptr, size, tier, err
}

// ModelPersist offers an allocation to the API server's model cache. The
// allocation is gone from the session either way, like a Free.
func (l *Lib) ModelPersist(p *sim.Proc, ptr cuda.DevPtr) error {
	delete(l.ptrSizes, ptr)
	l.remote(p)
	return l.cl.ModelPersist(p, ptr)
}

// --- device management ---

// GetDeviceCount mirrors cudaGetDeviceCount.
func (l *Lib) GetDeviceCount(p *sim.Proc) (int, error) {
	l.remote(p)
	return l.cl.GetDeviceCount(p)
}

// GetDeviceProperties mirrors cudaGetDeviceProperties.
func (l *Lib) GetDeviceProperties(p *sim.Proc, dev int) (cuda.DeviceProp, error) {
	l.remote(p)
	return l.cl.GetDeviceProperties(p, dev)
}

// SetDevice mirrors cudaSetDevice.
func (l *Lib) SetDevice(p *sim.Proc, dev int) error {
	l.remote(p)
	return l.cl.SetDevice(p, dev)
}

// GetDevice mirrors cudaGetDevice; the virtual device is always 0, so the
// optimized guest answers locally.
func (l *Lib) GetDevice(p *sim.Proc) (int, error) {
	if l.localizing() {
		l.local(p)
		return 0, nil
	}
	l.remote(p)
	return l.cl.GetDevice(p)
}

// MemGetInfo mirrors cudaMemGetInfo.
func (l *Lib) MemGetInfo(p *sim.Proc) (int64, int64, error) {
	l.remote(p)
	return l.cl.MemGetInfo(p)
}

// DeviceSynchronize mirrors cudaDeviceSynchronize.
func (l *Lib) DeviceSynchronize(p *sim.Proc) error {
	l.remote(p)
	return l.cl.DeviceSynchronize(p)
}

// GetLastError mirrors cudaGetLastError.
func (l *Lib) GetLastError(p *sim.Proc) (int, error) {
	if l.localizing() {
		l.local(p)
		code := l.lastError
		l.lastError = 0
		return code, nil
	}
	l.remote(p)
	return l.cl.GetLastError(p)
}

// DriverGetVersion mirrors cuDriverGetVersion.
func (l *Lib) DriverGetVersion(p *sim.Proc) (int, error) {
	if l.localizing() {
		l.local(p)
		return 10020, nil
	}
	l.remote(p)
	return l.cl.DriverGetVersion(p)
}

// RuntimeGetVersion mirrors cudaRuntimeGetVersion.
func (l *Lib) RuntimeGetVersion(p *sim.Proc) (int, error) {
	if l.localizing() {
		l.local(p)
		return 10010, nil
	}
	l.remote(p)
	return l.cl.RuntimeGetVersion(p)
}

// --- memory management ---

// Malloc mirrors cudaMalloc; the returned address is tracked for localized
// pointer-attribute queries.
func (l *Lib) Malloc(p *sim.Proc, size int64) (cuda.DevPtr, error) {
	l.remote(p)
	ptr, err := l.cl.Malloc(p, size)
	if err == nil {
		l.ptrSizes[ptr] = size
	}
	return ptr, err
}

// Free mirrors cudaFree. It is a synchronizing call in the pipelined tier:
// releasing memory while one-way work may still reference it must drain the
// lane first, so it takes the remote path, which fences.
func (l *Lib) Free(p *sim.Proc, ptr cuda.DevPtr) error {
	delete(l.ptrSizes, ptr)
	if l.asyncing() {
		l.remote(p)
		return l.cl.Free(p, ptr)
	}
	if l.batching() {
		l.deferCall(func(e *wire.Encoder) { gen.AppendFreeCall(e, ptr) })
		return nil
	}
	l.remote(p)
	return l.cl.Free(p, ptr)
}

// Memset mirrors cudaMemset.
func (l *Lib) Memset(p *sim.Proc, ptr cuda.DevPtr, value byte, size int64) error {
	if l.asyncing() {
		return l.submitAsync(p, 0, func(e *wire.Encoder) { gen.AppendMemsetCall(e, ptr, value, size) })
	}
	if l.batching() {
		l.deferCall(func(e *wire.Encoder) { gen.AppendMemsetCall(e, ptr, value, size) })
		return nil
	}
	l.remote(p)
	return l.cl.Memset(p, ptr, value, size)
}

// MemcpyH2D mirrors cudaMemcpy(HostToDevice). Host-to-device copies need no
// result, so the pipelined tier submits them one-way, overlapping the
// transfer's network latency with guest compute.
func (l *Lib) MemcpyH2D(p *sim.Proc, dst cuda.DevPtr, src gpu.HostBuffer, size int64) error {
	if l.asyncing() {
		return l.submitAsync(p, size, func(e *wire.Encoder) { gen.AppendMemcpyH2DCall(e, dst, src, size) })
	}
	l.remote(p)
	return l.cl.MemcpyH2D(p, dst, src, size)
}

// MemcpyD2H mirrors cudaMemcpy(DeviceToHost).
func (l *Lib) MemcpyD2H(p *sim.Proc, src cuda.DevPtr, size int64) (gpu.HostBuffer, error) {
	l.remote(p)
	return l.cl.MemcpyD2H(p, src, size)
}

// MemcpyD2D mirrors cudaMemcpy(DeviceToDevice).
func (l *Lib) MemcpyD2D(p *sim.Proc, dst, src cuda.DevPtr, size int64) error {
	l.remote(p)
	return l.cl.MemcpyD2D(p, dst, src, size)
}

// MallocHost mirrors cudaMallocHost: host-only state, so the optimized guest
// emulates it entirely (§V-C).
func (l *Lib) MallocHost(p *sim.Proc, size int64) (uint64, error) {
	if l.localizing() {
		l.local(p)
		l.nextHost++
		ptr := 0x6000_0000_0000 + l.nextHost<<12
		l.hostAllocs[ptr] = size
		return ptr, nil
	}
	l.remote(p)
	return l.cl.MallocHost(p, size)
}

// FreeHost mirrors cudaFreeHost.
func (l *Lib) FreeHost(p *sim.Proc, ptr uint64) error {
	if l.localizing() {
		l.local(p)
		if _, ok := l.hostAllocs[ptr]; !ok {
			return cuda.ErrInvalidValue
		}
		delete(l.hostAllocs, ptr)
		return nil
	}
	l.remote(p)
	return l.cl.FreeHost(p, ptr)
}

// PointerGetAttributes mirrors cudaPointerGetAttributes. With batching
// optimizations on, the guest answers from the addresses it tracked at
// allocation time.
func (l *Lib) PointerGetAttributes(p *sim.Proc, ptr cuda.DevPtr) (cuda.PtrAttributes, error) {
	if l.batching() {
		l.local(p)
		for base, size := range l.ptrSizes {
			if ptr >= base && uint64(ptr) < uint64(base)+uint64(size) {
				return cuda.PtrAttributes{Device: 0, Size: size, IsDevice: true}, nil
			}
		}
		return cuda.PtrAttributes{}, cuda.ErrInvalidValue
	}
	l.remote(p)
	return l.cl.PointerGetAttributes(p, ptr)
}

// --- execution ---

// PushCallConfiguration mirrors __cudaPushCallConfiguration. Optimized
// guests keep the configuration local and piggyback it onto the launch.
func (l *Lib) PushCallConfiguration(p *sim.Proc, grid, block [3]int, stream cuda.StreamHandle) error {
	if l.batching() {
		l.local(p)
		l.cfgStack = append(l.cfgStack, gen.PushCallConfigurationReq{Grid: grid, Block: block, Stream: stream})
		return nil
	}
	l.remote(p)
	return l.cl.PushCallConfiguration(p, grid, block, stream)
}

// PopCallConfiguration mirrors __cudaPopCallConfiguration.
func (l *Lib) PopCallConfiguration(p *sim.Proc) error {
	if l.batching() {
		l.local(p)
		if n := len(l.cfgStack); n > 0 {
			l.cfgStack = l.cfgStack[:n-1]
		}
		return nil
	}
	l.remote(p)
	return l.cl.PopCallConfiguration(p)
}

// LaunchKernel mirrors cudaLaunchKernel. The unoptimized guest reproduces
// the native call pattern — push configuration, launch, pop configuration —
// as three forwarded calls; the optimized guest ships one batched launch.
func (l *Lib) LaunchKernel(p *sim.Proc, lp cuda.LaunchParams) error {
	if l.asyncing() {
		return l.submitAsync(p, 0, func(e *wire.Encoder) { gen.AppendLaunchKernelCall(e, lp) })
	}
	if l.batching() {
		l.deferCall(func(e *wire.Encoder) { gen.AppendLaunchKernelCall(e, lp) })
		return nil
	}
	if err := l.PushCallConfiguration(p, lp.Grid, lp.Block, lp.Stream); err != nil {
		return err
	}
	l.remote(p)
	if err := l.cl.LaunchKernel(p, lp); err != nil {
		return err
	}
	return l.PopCallConfiguration(p)
}

// StreamCreate mirrors cudaStreamCreate.
func (l *Lib) StreamCreate(p *sim.Proc) (cuda.StreamHandle, error) {
	l.remote(p)
	return l.cl.StreamCreate(p)
}

// StreamDestroy mirrors cudaStreamDestroy.
func (l *Lib) StreamDestroy(p *sim.Proc, h cuda.StreamHandle) error {
	if l.asyncing() {
		return l.submitAsync(p, 0, func(e *wire.Encoder) { gen.AppendStreamDestroyCall(e, h) })
	}
	if l.batching() {
		l.deferCall(func(e *wire.Encoder) { gen.AppendStreamDestroyCall(e, h) })
		return nil
	}
	l.remote(p)
	return l.cl.StreamDestroy(p, h)
}

// StreamSynchronize mirrors cudaStreamSynchronize.
func (l *Lib) StreamSynchronize(p *sim.Proc, h cuda.StreamHandle) error {
	l.remote(p)
	return l.cl.StreamSynchronize(p, h)
}

// EventCreate mirrors cudaEventCreate.
func (l *Lib) EventCreate(p *sim.Proc) (cuda.EventHandle, error) {
	l.remote(p)
	return l.cl.EventCreate(p)
}

// EventDestroy mirrors cudaEventDestroy.
func (l *Lib) EventDestroy(p *sim.Proc, h cuda.EventHandle) error {
	if l.asyncing() {
		return l.submitAsync(p, 0, func(e *wire.Encoder) { gen.AppendEventDestroyCall(e, h) })
	}
	if l.batching() {
		l.deferCall(func(e *wire.Encoder) { gen.AppendEventDestroyCall(e, h) })
		return nil
	}
	l.remote(p)
	return l.cl.EventDestroy(p, h)
}

// EventRecord mirrors cudaEventRecord.
func (l *Lib) EventRecord(p *sim.Proc, h cuda.EventHandle, stream cuda.StreamHandle) error {
	if l.asyncing() {
		return l.submitAsync(p, 0, func(e *wire.Encoder) { gen.AppendEventRecordCall(e, h, stream) })
	}
	if l.batching() {
		l.deferCall(func(e *wire.Encoder) { gen.AppendEventRecordCall(e, h, stream) })
		return nil
	}
	l.remote(p)
	return l.cl.EventRecord(p, h, stream)
}

// EventSynchronize mirrors cudaEventSynchronize.
func (l *Lib) EventSynchronize(p *sim.Proc, h cuda.EventHandle) error {
	l.remote(p)
	return l.cl.EventSynchronize(p, h)
}

// EventElapsed mirrors cudaEventElapsedTime.
func (l *Lib) EventElapsed(p *sim.Proc, start, end cuda.EventHandle) (time.Duration, error) {
	l.remote(p)
	return l.cl.EventElapsed(p, start, end)
}

// --- cuDNN ---

// DnnCreate mirrors cudnnCreate.
func (l *Lib) DnnCreate(p *sim.Proc) (cudalibs.DNNHandle, error) {
	l.remote(p)
	return l.cl.DnnCreate(p)
}

// DnnDestroy mirrors cudnnDestroy.
func (l *Lib) DnnDestroy(p *sim.Proc, h cudalibs.DNNHandle) error {
	if l.asyncing() {
		return l.submitAsync(p, 0, func(e *wire.Encoder) { gen.AppendDnnDestroyCall(e, h) })
	}
	if l.batching() {
		l.deferCall(func(e *wire.Encoder) { gen.AppendDnnDestroyCall(e, h) })
		return nil
	}
	l.remote(p)
	return l.cl.DnnDestroy(p, h)
}

// DnnSetStream mirrors cudnnSetStream.
func (l *Lib) DnnSetStream(p *sim.Proc, h cudalibs.DNNHandle, stream cuda.StreamHandle) error {
	if l.asyncing() {
		return l.submitAsync(p, 0, func(e *wire.Encoder) { gen.AppendDnnSetStreamCall(e, h, stream) })
	}
	if l.batching() {
		l.deferCall(func(e *wire.Encoder) { gen.AppendDnnSetStreamCall(e, h, stream) })
		return nil
	}
	l.remote(p)
	return l.cl.DnnSetStream(p, h, stream)
}

// DnnGetConvolutionWorkspaceSize mirrors its cuDNN namesake.
func (l *Lib) DnnGetConvolutionWorkspaceSize(p *sim.Proc, d cudalibs.Descriptor) (int64, error) {
	if l.localizing() && l.localDescs[d] {
		// Descriptor state lives in the guest; answer without remoting.
		l.local(p)
		return 64 << 20, nil
	}
	l.remote(p)
	return l.cl.DnnGetConvolutionWorkspaceSize(p, d)
}

// DnnForward runs a cuDNN compute primitive on the API server. Descriptor
// arguments pooled guest-side are stripped before forwarding: the server's
// kernels depend only on shapes already encoded in the op.
func (l *Lib) DnnForward(p *sim.Proc, h cudalibs.DNNHandle, op string, dur time.Duration, bufs []cuda.DevPtr, descs []uint64) error {
	if l.localizing() {
		descs = nil // guest-held descriptors are meaningless to the server
	}
	l.remote(p)
	return l.cl.DnnForward(p, h, op, dur, bufs, descs)
}

// --- cuBLAS ---

// BlasCreate mirrors cublasCreate.
func (l *Lib) BlasCreate(p *sim.Proc) (cudalibs.BLASHandle, error) {
	l.remote(p)
	return l.cl.BlasCreate(p)
}

// BlasDestroy mirrors cublasDestroy.
func (l *Lib) BlasDestroy(p *sim.Proc, h cudalibs.BLASHandle) error {
	if l.asyncing() {
		return l.submitAsync(p, 0, func(e *wire.Encoder) { gen.AppendBlasDestroyCall(e, h) })
	}
	if l.batching() {
		l.deferCall(func(e *wire.Encoder) { gen.AppendBlasDestroyCall(e, h) })
		return nil
	}
	l.remote(p)
	return l.cl.BlasDestroy(p, h)
}

// BlasSetStream mirrors cublasSetStream.
func (l *Lib) BlasSetStream(p *sim.Proc, h cudalibs.BLASHandle, stream cuda.StreamHandle) error {
	if l.asyncing() {
		return l.submitAsync(p, 0, func(e *wire.Encoder) { gen.AppendBlasSetStreamCall(e, h, stream) })
	}
	if l.batching() {
		l.deferCall(func(e *wire.Encoder) { gen.AppendBlasSetStreamCall(e, h, stream) })
		return nil
	}
	l.remote(p)
	return l.cl.BlasSetStream(p, h, stream)
}

// BlasGemm mirrors cublasSgemm.
func (l *Lib) BlasGemm(p *sim.Proc, h cudalibs.BLASHandle, dur time.Duration, bufs []cuda.DevPtr) error {
	l.remote(p)
	return l.cl.BlasGemm(p, h, dur, bufs)
}
