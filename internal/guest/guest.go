// Package guest implements DGSF's guest library: the shim interposed under
// an application's CUDA/cuDNN/cuBLAS calls (§V-A). Every call the
// application makes lands here; the library decides, per call and per
// optimization tier, whether to answer it locally, defer it into a batch,
// or remote it to the API server.
//
// Optimization tiers follow the paper's ablation (§V-C, Fig. 4):
//
//   - OptNone: every interposed call is forwarded individually, including
//     the __cudaPushCallConfiguration/__cudaPopCallConfiguration pair
//     around each kernel launch.
//   - OptLocalDescriptors: cuDNN descriptor create/set/destroy, host-only
//     memory APIs (cudaMallocHost), version queries and error queries are
//     answered from guest-side state without touching the network.
//   - OptBatching: calls with no immediately-needed result (kernel
//     launches, memsets, frees, event records, ...) are accumulated and
//     shipped as one batch message before the next synchronous call; launch
//     configurations are piggybacked onto launches; pointer-attribute
//     queries are answered from tracked allocations.
//
// Server-side handle pooling (OptHandlePool in the experiments) lives in
// internal/apiserver; the guest is oblivious to it, exactly as in DGSF.
package guest

import (
	"fmt"
	"time"

	"dgsf/internal/cuda"
	"dgsf/internal/cudalibs"
	"dgsf/internal/gpu"
	"dgsf/internal/remoting"
	"dgsf/internal/remoting/gen"
	"dgsf/internal/remoting/wire"
	"dgsf/internal/sim"
)

// Opt is a bitmask of guest-side optimization tiers.
type Opt uint8

// Guest optimization flags. OptAll enables every guest-side optimization in
// the paper's ablation; OptAsync additionally turns on the pipelined
// submission lane and must be combined with a transport that supports it.
const (
	OptNone             Opt = 0
	OptLocalDescriptors Opt = 1 << iota
	OptBatching
	OptAsync
	OptAll = OptLocalDescriptors | OptBatching
)

// Stats counts how the guest library disposed of interposed calls.
type Stats struct {
	Total     int // calls interposed
	Remoted   int // forwarded as individual round trips
	Batched   int // forwarded inside batch messages
	Localized int // answered locally, never forwarded
	Async     int // forwarded as one-way pipelined submissions
	Batches   int // batch messages sent
	Fences    int // pipeline fences performed (round trips)

	// Recovery counters (recoverable libraries only).
	Recoveries int // recovery episodes entered after a transport fault
	Redials    int // redial attempts across all episodes
	Replayed   int // journal entries replayed onto fresh sessions
	Journaled  int // state-establishing calls recorded in the replay journal
}

// Roundtrips returns the number of network round trips performed.
func (s Stats) Roundtrips() int { return s.Remoted + s.Batches + s.Fences }

// Forwarded returns the number of API calls that reached the API server.
func (s Stats) Forwarded() int { return s.Remoted + s.Batched + s.Async }

// localDescBit marks guest-allocated descriptor handles so they can never
// collide with server-side handles.
const localDescBit = 1 << 62

// maxAsyncWindow bounds the guest-tracked in-flight depth of the pipelined
// lane; hitting it forces a fence so an unbounded burst of one-way
// submissions cannot run arbitrarily far ahead of the server. It is sized
// above the launch bursts real inference loops produce (hundreds per batch):
// a mid-burst fence would reintroduce exactly the round trip the lane hides.
const maxAsyncWindow = 512

// Lib is a guest library instance: one per function execution.
type Lib struct {
	cl  *gen.Client
	opt Opt

	// async is the transport's pipelined lane, non-nil when the transport
	// implements remoting.AsyncCaller. Without it OptAsync degrades to the
	// synchronous paths.
	async         remoting.AsyncCaller
	asyncInFlight int

	stats Stats

	// Guest-side state backing localized APIs.
	lastError  int
	ptrSizes   map[cuda.DevPtr]int64
	hostAllocs map[uint64]int64
	nextHost   uint64
	localDescs map[cudalibs.Descriptor]bool
	nextDesc   uint64
	cfgStack   []gen.PushCallConfigurationReq
	localCost  time.Duration // CPU cost of a locally-answered call

	// Pending batch (OptBatching).
	batch      wire.Encoder
	batchBody  wire.Encoder
	batchCount int

	// Crash recovery (NewRecoverable only; nil rec disables everything).
	rec        *RecoveryConfig
	conn       remoting.Caller // raw transport, pre deadline wrapping
	recovering bool            // inside recoverSession: no nested recovery
	lost       bool            // recovery exhausted; session unrecoverable

	// Guest-virtual handle spaces: app-visible IDs -> current session's.
	ptrMap    map[cuda.DevPtr]cuda.DevPtr
	streamMap map[cuda.StreamHandle]cuda.StreamHandle
	eventMap  map[cuda.EventHandle]cuda.EventHandle
	dnnMap    map[cudalibs.DNNHandle]cudalibs.DNNHandle
	blasMap   map[cudalibs.BLASHandle]cudalibs.BLASHandle
	fnMap     map[cuda.FnPtr]cuda.FnPtr
	descMap   map[cudalibs.Descriptor]cudalibs.Descriptor
	hostMap   map[uint64]uint64
	nextVirt  uint64
	nextVA    int64

	// Idempotent replay journal and the unflushed/unfenced call windows.
	journal        []*journalEntry
	journalKeys    map[string]*journalEntry
	batchOps       []batchOp
	unfenced       []asyncOp
	oldestUnfenced time.Duration
}

var _ gen.API = (*Lib)(nil)

// New returns a guest library speaking to the API server over t.
func New(t remoting.Caller, opt Opt) *Lib {
	l := &Lib{
		cl:         &gen.Client{T: t},
		opt:        opt,
		ptrSizes:   make(map[cuda.DevPtr]int64),
		hostAllocs: make(map[uint64]int64),
		localDescs: make(map[cudalibs.Descriptor]bool),
		localCost:  300 * time.Nanosecond,
		conn:       t,
	}
	if ac, ok := t.(remoting.AsyncCaller); ok {
		l.async = ac
	}
	return l
}

// Stats returns the call-disposition counters.
func (l *Lib) Stats() Stats { return l.stats }

// Opt returns the active optimization tier.
func (l *Lib) Opt() Opt { return l.opt }

// local charges the CPU cost of answering a call in the guest library.
func (l *Lib) local(p *sim.Proc) {
	l.stats.Total++
	l.stats.Localized++
	if l.localCost > 0 {
		p.Sleep(l.localCost)
	}
}

// remoteCall wraps an individual round trip: any pending batch is flushed
// and the pipelined lane is drained first, so the server observes calls in
// program order and latched asynchronous errors surface before the
// synchronous call runs.
func (l *Lib) remote(p *sim.Proc) {
	l.FlushBatch(p)
	l.fence(p)
	l.stats.Total++
	l.stats.Remoted++
}

// deferCall length-prefixes one encoded call into the pending batch body.
// The scratch encoder is reused across calls: BytesField copies its bytes.
// Recoverable libraries defer the closure instead: encoding (and handle
// translation) runs at flush time against the session then current.
func (l *Lib) deferCall(appendFn func(e *wire.Encoder)) {
	l.deferCallDone(appendFn, nil)
}

func (l *Lib) deferCallDone(appendFn func(e *wire.Encoder), onDone func()) {
	l.stats.Total++
	l.stats.Batched++
	if l.rec != nil {
		l.batchOps = append(l.batchOps, batchOp{app: appendFn, onDone: onDone})
		return
	}
	l.batch.Reset()
	appendFn(&l.batch)
	l.batchBody.BytesField(l.batch.Bytes())
	l.batchCount++
}

// submitAsync fires one call down the transport's pipelined lane without
// waiting for an acknowledgement. The encoder buffer is freshly allocated —
// never pooled — because the transport may hold it until delivery. Errors
// latch server-side and surface at the next fence.
func (l *Lib) submitAsync(p *sim.Proc, reqData int64, appendFn func(e *wire.Encoder)) error {
	return l.submitAsyncDone(p, reqData, appendFn, nil)
}

func (l *Lib) submitAsyncDone(p *sim.Proc, reqData int64, appendFn func(e *wire.Encoder), onDone func()) error {
	if l.asyncInFlight >= maxAsyncWindow {
		l.fence(p)
	}
	if l.rec != nil {
		if l.lost {
			return cuda.ErrDevicesUnavailable
		}
		// Bounded staleness: the lane must not run blind past FenceLag, or
		// a dead server would be discovered arbitrarily late.
		if l.rec.FenceLag > 0 && len(l.unfenced) > 0 && p.Now()-l.oldestUnfenced > l.rec.FenceLag {
			l.fence(p)
		}
	}
	l.stats.Total++
	l.stats.Async++
	var e wire.Encoder
	e.U16(remoting.CallAsync)
	appendFn(&e)
	// Only table-deferrable calls may ride the one-way lane; a result-bearing
	// call submitted here would lose its result. The asyncsafe analyzer
	// enforces this statically — this guard catches dynamically-built
	// submissions that slip past it.
	if id := wire.NewDecoder(e.Bytes()[2:]).U16(); !gen.CallIsDeferrable(id) {
		panic(fmt.Sprintf("guest: %s (call %d) submitted async but not in gen.DeferrableCalls", gen.CallName(id), id))
	}
	err := l.async.Submit(p, e.Bytes(), reqData)
	if err != nil && l.rec != nil && !l.recovering && remoting.IsConnFault(err) {
		if rerr := l.recoverSession(p); rerr == nil {
			var e2 wire.Encoder
			e2.U16(remoting.CallAsync)
			appendFn(&e2)
			err = l.async.Submit(p, e2.Bytes(), reqData)
		}
	}
	if err != nil {
		if l.rec != nil {
			l.lastError = int(cuda.ErrDevicesUnavailable)
			return cuda.ErrDevicesUnavailable
		}
		l.lastError = -1
		return err
	}
	l.asyncInFlight++
	if l.rec != nil {
		if len(l.unfenced) == 0 {
			l.oldestUnfenced = p.Now()
		}
		l.unfenced = append(l.unfenced, asyncOp{app: appendFn, reqData: reqData, onDone: onDone})
	}
	return nil
}

// fence drains the pipelined lane: a CallFence round trip whose FIFO
// position guarantees every prior submission has executed, and whose reply
// carries the first latched asynchronous error. A no-op with nothing in
// flight, so tiers without OptAsync are unaffected. On a recoverable
// library a transport fault triggers session recovery (which re-sends the
// unfenced window) and the fence is retried.
func (l *Lib) fence(p *sim.Proc) {
	if l.asyncInFlight == 0 {
		return
	}
	l.stats.Fences++
	var code int
	var err error
	for tries := 0; ; tries++ {
		code, err = l.fenceOnce(p)
		if err == nil || l.rec == nil || l.recovering || l.lost ||
			!remoting.IsConnFault(err) || tries >= maxCallRecoveries {
			break
		}
		if rerr := l.recoverSession(p); rerr != nil {
			break
		}
	}
	l.asyncInFlight = 0
	if err != nil {
		l.clearUnfenced(false)
		if l.rec != nil {
			l.lastError = int(cuda.ErrDevicesUnavailable)
		} else {
			l.lastError = -1
		}
		return
	}
	l.clearUnfenced(true)
	if code != 0 && l.lastError == 0 {
		l.lastError = code
	}
}

// fenceOnce performs a single CallFence round trip.
func (l *Lib) fenceOnce(p *sim.Proc) (int, error) {
	enc := wire.GetEncoder()
	enc.U16(remoting.CallFence)
	resp, err := l.cl.T.Roundtrip(p, enc.Bytes(), 0)
	if err != nil {
		return 0, err
	}
	wire.PutEncoder(enc)
	d := wire.GetDecoder(resp)
	code := int(d.I32())
	wire.PutDecoder(d)
	return code, nil
}

// FlushBatch ships the pending batch, if any, as one round trip. Errors from
// batched calls surface through GetLastError, like asynchronous CUDA errors.
func (l *Lib) FlushBatch(p *sim.Proc) {
	if l.rec != nil {
		l.flushBatchRec(p)
		return
	}
	if l.batchCount == 0 {
		return
	}
	l.batch.Reset()
	l.batch.U16(remoting.CallBatch)
	l.batch.U32(uint32(l.batchCount))
	l.batch.Raw(l.batchBody.Bytes())
	l.batchBody.Reset()
	l.batchCount = 0
	l.stats.Batches++
	resp, err := l.cl.T.Roundtrip(p, l.batch.Bytes(), 0)
	if err != nil {
		l.lastError = -1
		return
	}
	d := wire.GetDecoder(resp)
	if code := int(d.I32()); code != 0 {
		l.lastError = code
	}
	wire.PutDecoder(d)
}

// flushBatchRec is the recoverable flush: deferred closures are encoded
// fresh per attempt so translation matches the current session, and the
// whole batch is retried after recovery (batched calls are the
// state-establishing and idempotent kind).
func (l *Lib) flushBatchRec(p *sim.Proc) {
	if len(l.batchOps) == 0 {
		return
	}
	l.stats.Batches++
	var code int
	var err error
	for tries := 0; ; tries++ {
		l.batchBody.Reset()
		for _, op := range l.batchOps {
			l.batch.Reset()
			op.app(&l.batch)
			l.batchBody.BytesField(l.batch.Bytes())
		}
		l.batch.Reset()
		l.batch.U16(remoting.CallBatch)
		l.batch.U32(uint32(len(l.batchOps)))
		l.batch.Raw(l.batchBody.Bytes())
		var resp []byte
		resp, err = l.cl.T.Roundtrip(p, l.batch.Bytes(), 0)
		if err == nil {
			d := wire.GetDecoder(resp)
			code = int(d.I32())
			wire.PutDecoder(d)
			break
		}
		if l.recovering || l.lost || !remoting.IsConnFault(err) || tries >= maxCallRecoveries {
			break
		}
		if rerr := l.recoverSession(p); rerr != nil {
			break
		}
	}
	if err != nil {
		l.batchOps = l.batchOps[:0]
		l.lastError = int(cuda.ErrDevicesUnavailable)
		return
	}
	for _, op := range l.batchOps {
		if op.onDone != nil {
			op.onDone()
		}
	}
	l.batchOps = l.batchOps[:0]
	if code != 0 {
		l.lastError = code
	}
}

// batching reports whether batching is enabled.
func (l *Lib) batching() bool { return l.opt&OptBatching != 0 }

// asyncing reports whether the pipelined lane is active: the OptAsync tier
// is enabled and the transport supports one-way submissions.
func (l *Lib) asyncing() bool { return l.opt&OptAsync != 0 && l.async != nil }

// localizing reports whether guest-side localization is enabled.
func (l *Lib) localizing() bool { return l.opt&OptLocalDescriptors != 0 }

// --- session control (always remoted) ---

// Hello opens the function session. On a recoverable library it is the
// journal's first entry: every recovered session re-opens before replay.
func (l *Lib) Hello(p *sim.Proc, fnID string, memLimit int64) error {
	l.remote(p)
	err := l.reliably(p, func(p *sim.Proc) error { return l.cl.Hello(p, fnID, memLimit) })
	if err == nil {
		l.journalPut("hello", func(p *sim.Proc) error { return l.cl.Hello(p, fnID, memLimit) })
	}
	return err
}

// Bye ends the function session and retires the replay journal.
func (l *Lib) Bye(p *sim.Proc) error {
	l.remote(p)
	err := l.reliably(p, func(p *sim.Proc) error { return l.cl.Bye(p) })
	if err == nil && l.rec != nil {
		l.journal = nil
		l.journalKeys = make(map[string]*journalEntry)
		l.clearUnfenced(false)
	}
	return err
}

// RegisterKernels ships the function's kernel symbols to the API server.
// Recoverable libraries hand out virtual function pointers: the context that
// re-registers after a failover mints different real ones.
func (l *Lib) RegisterKernels(p *sim.Proc, names []string) ([]cuda.FnPtr, error) {
	l.remote(p)
	var ptrs []cuda.FnPtr
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		ptrs, err = l.cl.RegisterKernels(p, names)
		return err
	})
	if err != nil || l.rec == nil {
		return ptrs, err
	}
	virts := make([]cuda.FnPtr, len(ptrs))
	for i, fp := range ptrs {
		v := cuda.FnPtr(virtFnBase + l.newVirt())
		l.fnMap[v] = fp
		virts[i] = v
	}
	l.journalPut(fmt.Sprintf("kernels:%d", len(l.journal)), func(p *sim.Proc) error {
		nps, err := l.cl.RegisterKernels(p, names)
		if err != nil {
			return err
		}
		for i, v := range virts {
			if i < len(nps) {
				l.fnMap[v] = nps[i]
			}
		}
		return nil
	})
	return virts, err
}

// ModelAttach asks the API server for a cached copy of the function's model
// working set; the returned pointer is tracked like a Malloc so localized
// pointer-attribute queries keep working. On replay a cache miss on the
// recovered server degrades to a plain allocation whose contents are
// restored by the journaled uploads that follow it.
func (l *Lib) ModelAttach(p *sim.Proc) (cuda.DevPtr, int64, int, error) {
	l.remote(p)
	var (
		ptr  cuda.DevPtr
		size int64
		tier int
	)
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		ptr, size, tier, err = l.cl.ModelAttach(p)
		return err
	})
	if err != nil || ptr == 0 {
		return ptr, size, tier, err
	}
	if l.rec != nil {
		v := l.newVirtPtr(size)
		l.ptrMap[v] = ptr
		sz := size
		l.journalPutPtr(ptrKey(v), v, func(p *sim.Proc) error {
			rp, rsz, _, err := l.cl.ModelAttach(p)
			if err == nil && rp != 0 && rsz == sz {
				l.ptrMap[v] = rp
				return nil
			}
			if err != nil && !remoting.IsConnFault(err) {
				err = nil // semantic attach failure: fall back to Malloc
			}
			if err != nil {
				return err
			}
			np, err := l.cl.Malloc(p, sz)
			if err != nil {
				return err
			}
			l.ptrMap[v] = np
			return nil
		})
		ptr = v
	}
	l.ptrSizes[ptr] = size
	return ptr, size, tier, err
}

// ModelPersist offers an allocation to the API server's model cache. The
// allocation is gone from the session either way, like a Free, so its
// journal entries are retired: a recovered session does not re-persist.
func (l *Lib) ModelPersist(p *sim.Proc, ptr cuda.DevPtr) error {
	size := l.ptrSizes[ptr]
	delete(l.ptrSizes, ptr)
	l.remote(p)
	err := l.reliably(p, func(p *sim.Proc) error { return l.cl.ModelPersist(p, l.xp(ptr)) })
	l.dropPtrEntries(ptr, size)
	return err
}

// --- device management ---

// GetDeviceCount mirrors cudaGetDeviceCount.
func (l *Lib) GetDeviceCount(p *sim.Proc) (int, error) {
	l.remote(p)
	var n int
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		n, err = l.cl.GetDeviceCount(p)
		return err
	})
	return n, err
}

// GetDeviceProperties mirrors cudaGetDeviceProperties.
func (l *Lib) GetDeviceProperties(p *sim.Proc, dev int) (cuda.DeviceProp, error) {
	l.remote(p)
	var prop cuda.DeviceProp
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		prop, err = l.cl.GetDeviceProperties(p, dev)
		return err
	})
	return prop, err
}

// SetDevice mirrors cudaSetDevice.
func (l *Lib) SetDevice(p *sim.Proc, dev int) error {
	l.remote(p)
	return l.reliably(p, func(p *sim.Proc) error { return l.cl.SetDevice(p, dev) })
}

// GetDevice mirrors cudaGetDevice; the virtual device is always 0, so the
// optimized guest answers locally.
func (l *Lib) GetDevice(p *sim.Proc) (int, error) {
	if l.localizing() {
		l.local(p)
		return 0, nil
	}
	l.remote(p)
	var dev int
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		dev, err = l.cl.GetDevice(p)
		return err
	})
	return dev, err
}

// MemGetInfo mirrors cudaMemGetInfo.
func (l *Lib) MemGetInfo(p *sim.Proc) (int64, int64, error) {
	l.remote(p)
	var free, total int64
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		free, total, err = l.cl.MemGetInfo(p)
		return err
	})
	return free, total, err
}

// DeviceSynchronize mirrors cudaDeviceSynchronize.
func (l *Lib) DeviceSynchronize(p *sim.Proc) error {
	l.remote(p)
	return l.reliably(p, func(p *sim.Proc) error { return l.cl.DeviceSynchronize(p) })
}

// GetLastError mirrors cudaGetLastError.
func (l *Lib) GetLastError(p *sim.Proc) (int, error) {
	if l.localizing() {
		l.local(p)
		code := l.lastError
		l.lastError = 0
		return code, nil
	}
	l.remote(p)
	var code int
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		code, err = l.cl.GetLastError(p)
		return err
	})
	return code, err
}

// DriverGetVersion mirrors cuDriverGetVersion.
func (l *Lib) DriverGetVersion(p *sim.Proc) (int, error) {
	if l.localizing() {
		l.local(p)
		return 10020, nil
	}
	l.remote(p)
	var v int
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		v, err = l.cl.DriverGetVersion(p)
		return err
	})
	return v, err
}

// RuntimeGetVersion mirrors cudaRuntimeGetVersion.
func (l *Lib) RuntimeGetVersion(p *sim.Proc) (int, error) {
	if l.localizing() {
		l.local(p)
		return 10010, nil
	}
	l.remote(p)
	var v int
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		v, err = l.cl.RuntimeGetVersion(p)
		return err
	})
	return v, err
}

// --- memory management ---

// Malloc mirrors cudaMalloc; the returned address is tracked for localized
// pointer-attribute queries. Recoverable libraries return a guest-virtual
// address and journal the allocation.
func (l *Lib) Malloc(p *sim.Proc, size int64) (cuda.DevPtr, error) {
	l.remote(p)
	var ptr cuda.DevPtr
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		ptr, err = l.cl.Malloc(p, size)
		return err
	})
	if err != nil {
		return 0, err
	}
	if l.rec != nil {
		v := l.newVirtPtr(size)
		l.ptrMap[v] = ptr
		l.journalPutPtr(ptrKey(v), v, func(p *sim.Proc) error {
			np, err := l.cl.Malloc(p, size)
			if err != nil {
				return err
			}
			l.ptrMap[v] = np
			return nil
		})
		ptr = v
	}
	l.ptrSizes[ptr] = size
	return ptr, nil
}

// Free mirrors cudaFree. It is a synchronizing call in the pipelined tier:
// releasing memory while one-way work may still reference it must drain the
// lane first, so it takes the remote path, which fences. Journal entries for
// the allocation are retired only once the free is confirmed: an unflushed
// free must still find the allocation replayed after a recovery.
func (l *Lib) Free(p *sim.Proc, ptr cuda.DevPtr) error {
	size := l.ptrSizes[ptr]
	delete(l.ptrSizes, ptr)
	if !l.asyncing() && l.batching() {
		l.deferCallDone(
			func(e *wire.Encoder) { gen.AppendFreeCall(e, l.xp(ptr)) },
			func() { l.dropPtrEntries(ptr, size) },
		)
		return nil
	}
	l.remote(p)
	err := l.reliably(p, func(p *sim.Proc) error { return l.cl.Free(p, l.xp(ptr)) })
	if err == nil {
		l.dropPtrEntries(ptr, size)
	}
	return err
}

// Memset mirrors cudaMemset. Not journaled: memset output is intermediate
// state the function rebuilds, like kernel results.
func (l *Lib) Memset(p *sim.Proc, ptr cuda.DevPtr, value byte, size int64) error {
	if l.asyncing() {
		return l.submitAsync(p, 0, func(e *wire.Encoder) { gen.AppendMemsetCall(e, l.xp(ptr), value, size) })
	}
	if l.batching() {
		l.deferCall(func(e *wire.Encoder) { gen.AppendMemsetCall(e, l.xp(ptr), value, size) })
		return nil
	}
	l.remote(p)
	return l.reliably(p, func(p *sim.Proc) error { return l.cl.Memset(p, l.xp(ptr), value, size) })
}

// MemcpyH2D mirrors cudaMemcpy(HostToDevice). Host-to-device copies need no
// result, so the pipelined tier submits them one-way, overlapping the
// transfer's network latency with guest compute. The source buffer lives in
// the guest, so the upload is journaled once confirmed: recovered sessions
// re-establish device contents from it.
func (l *Lib) MemcpyH2D(p *sim.Proc, dst cuda.DevPtr, src gpu.HostBuffer, size int64) error {
	journal := func() {
		l.journalPutPtr(h2dKey(dst, size), dst, func(p *sim.Proc) error {
			return l.cl.MemcpyH2D(p, l.xp(dst), src, size)
		})
	}
	if l.asyncing() {
		return l.submitAsyncDone(p, size,
			func(e *wire.Encoder) { gen.AppendMemcpyH2DCall(e, l.xp(dst), src, size) },
			journal)
	}
	l.remote(p)
	err := l.reliably(p, func(p *sim.Proc) error { return l.cl.MemcpyH2D(p, l.xp(dst), src, size) })
	if err == nil && l.rec != nil {
		journal()
	}
	return err
}

// MemcpyD2H mirrors cudaMemcpy(DeviceToHost).
func (l *Lib) MemcpyD2H(p *sim.Proc, src cuda.DevPtr, size int64) (gpu.HostBuffer, error) {
	l.remote(p)
	var buf gpu.HostBuffer
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		buf, err = l.cl.MemcpyD2H(p, l.xp(src), size)
		return err
	})
	return buf, err
}

// MemWrite uploads caller-provided bytes to device memory: the vectored twin
// of MemcpyH2D. On a protocol-v2 connection the generated client passes data
// borrowed through the writev bulk lane; on v1 it is inlined. Journaled like
// MemcpyH2D so recovered sessions re-establish device contents — the journal
// retains its own copy, because the caller keeps ownership of data.
func (l *Lib) MemWrite(p *sim.Proc, dst cuda.DevPtr, data []byte) error {
	l.remote(p)
	err := l.reliably(p, func(p *sim.Proc) error { return l.cl.MemWrite(p, l.xp(dst), data) })
	if err == nil && l.rec != nil {
		kept := append([]byte(nil), data...)
		l.journalPutPtr(h2dKey(dst, int64(len(kept))), dst, func(p *sim.Proc) error {
			return l.cl.MemWrite(p, l.xp(dst), kept)
		})
	}
	return err
}

// MemRead downloads device memory back to the caller: the vectored twin of
// MemcpyD2H.
func (l *Lib) MemRead(p *sim.Proc, src cuda.DevPtr, size int64) ([]byte, error) {
	return l.MemReadInto(p, src, size, nil)
}

// MemReadInto is MemRead with a caller-owned destination buffer: on a
// protocol-v2 connection a pre-sized dst makes the download allocation-free.
// The returned slice may alias dst.
func (l *Lib) MemReadInto(p *sim.Proc, src cuda.DevPtr, size int64, dst []byte) ([]byte, error) {
	l.remote(p)
	var out []byte
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		out, err = l.cl.MemReadInto(p, l.xp(src), size, dst)
		return err
	})
	return out, err
}

// MemcpyD2D mirrors cudaMemcpy(DeviceToDevice). Not journaled: the copied
// contents are derived device state.
func (l *Lib) MemcpyD2D(p *sim.Proc, dst, src cuda.DevPtr, size int64) error {
	l.remote(p)
	return l.reliably(p, func(p *sim.Proc) error { return l.cl.MemcpyD2D(p, l.xp(dst), l.xp(src), size) })
}

// MallocHost mirrors cudaMallocHost: host-only state, so the optimized guest
// emulates it entirely (§V-C).
func (l *Lib) MallocHost(p *sim.Proc, size int64) (uint64, error) {
	if l.localizing() {
		l.local(p)
		l.nextHost++
		ptr := 0x6000_0000_0000 + l.nextHost<<12
		l.hostAllocs[ptr] = size
		return ptr, nil
	}
	l.remote(p)
	var ptr uint64
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		ptr, err = l.cl.MallocHost(p, size)
		return err
	})
	if err == nil && l.rec != nil {
		v := virtHostBase + l.newVirt()<<12
		l.hostMap[v] = ptr
		l.journalPut(hostKey(v), func(p *sim.Proc) error {
			np, err := l.cl.MallocHost(p, size)
			if err != nil {
				return err
			}
			l.hostMap[v] = np
			return nil
		})
		ptr = v
	}
	return ptr, err
}

// FreeHost mirrors cudaFreeHost.
func (l *Lib) FreeHost(p *sim.Proc, ptr uint64) error {
	if l.localizing() {
		l.local(p)
		if _, ok := l.hostAllocs[ptr]; !ok {
			return cuda.ErrInvalidValue
		}
		delete(l.hostAllocs, ptr)
		return nil
	}
	l.remote(p)
	err := l.reliably(p, func(p *sim.Proc) error { return l.cl.FreeHost(p, l.xhost(ptr)) })
	if err == nil && l.rec != nil {
		l.journalDrop(hostKey(ptr))
		delete(l.hostMap, ptr)
	}
	return err
}

// PointerGetAttributes mirrors cudaPointerGetAttributes. With batching
// optimizations on, the guest answers from the addresses it tracked at
// allocation time.
func (l *Lib) PointerGetAttributes(p *sim.Proc, ptr cuda.DevPtr) (cuda.PtrAttributes, error) {
	if l.batching() {
		l.local(p)
		for base, size := range l.ptrSizes {
			if ptr >= base && uint64(ptr) < uint64(base)+uint64(size) {
				return cuda.PtrAttributes{Device: 0, Size: size, IsDevice: true}, nil
			}
		}
		return cuda.PtrAttributes{}, cuda.ErrInvalidValue
	}
	l.remote(p)
	var attrs cuda.PtrAttributes
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		attrs, err = l.cl.PointerGetAttributes(p, l.xp(ptr))
		return err
	})
	return attrs, err
}

// --- execution ---

// PushCallConfiguration mirrors __cudaPushCallConfiguration. Optimized
// guests keep the configuration local and piggyback it onto the launch.
func (l *Lib) PushCallConfiguration(p *sim.Proc, grid, block [3]int, stream cuda.StreamHandle) error {
	if l.batching() {
		l.local(p)
		l.cfgStack = append(l.cfgStack, gen.PushCallConfigurationReq{Grid: grid, Block: block, Stream: stream})
		return nil
	}
	l.remote(p)
	return l.reliably(p, func(p *sim.Proc) error {
		return l.cl.PushCallConfiguration(p, grid, block, l.xs(stream))
	})
}

// PopCallConfiguration mirrors __cudaPopCallConfiguration.
func (l *Lib) PopCallConfiguration(p *sim.Proc) error {
	if l.batching() {
		l.local(p)
		if n := len(l.cfgStack); n > 0 {
			l.cfgStack = l.cfgStack[:n-1]
		}
		return nil
	}
	l.remote(p)
	return l.reliably(p, func(p *sim.Proc) error { return l.cl.PopCallConfiguration(p) })
}

// LaunchKernel mirrors cudaLaunchKernel. The unoptimized guest reproduces
// the native call pattern — push configuration, launch, pop configuration —
// as three forwarded calls; the optimized guest ships one batched launch.
func (l *Lib) LaunchKernel(p *sim.Proc, lp cuda.LaunchParams) error {
	if l.asyncing() {
		return l.submitAsync(p, 0, func(e *wire.Encoder) { gen.AppendLaunchKernelCall(e, l.xlp(lp)) })
	}
	if l.batching() {
		l.deferCall(func(e *wire.Encoder) { gen.AppendLaunchKernelCall(e, l.xlp(lp)) })
		return nil
	}
	if err := l.PushCallConfiguration(p, lp.Grid, lp.Block, lp.Stream); err != nil {
		return err
	}
	l.remote(p)
	if err := l.reliably(p, func(p *sim.Proc) error { return l.cl.LaunchKernel(p, l.xlp(lp)) }); err != nil {
		return err
	}
	return l.PopCallConfiguration(p)
}

// StreamCreate mirrors cudaStreamCreate.
func (l *Lib) StreamCreate(p *sim.Proc) (cuda.StreamHandle, error) {
	l.remote(p)
	var h cuda.StreamHandle
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		h, err = l.cl.StreamCreate(p)
		return err
	})
	if err == nil && l.rec != nil {
		v := cuda.StreamHandle(virtStreamBase + l.newVirt())
		l.streamMap[v] = h
		l.journalPut(streamKey(v), func(p *sim.Proc) error {
			nh, err := l.cl.StreamCreate(p)
			if err != nil {
				return err
			}
			l.streamMap[v] = nh
			return nil
		})
		h = v
	}
	return h, err
}

// StreamDestroy mirrors cudaStreamDestroy.
func (l *Lib) StreamDestroy(p *sim.Proc, h cuda.StreamHandle) error {
	drop := func() {
		l.journalDrop(streamKey(h))
		delete(l.streamMap, h)
	}
	if l.asyncing() {
		return l.submitAsyncDone(p, 0, func(e *wire.Encoder) { gen.AppendStreamDestroyCall(e, l.xs(h)) }, drop)
	}
	if l.batching() {
		l.deferCallDone(func(e *wire.Encoder) { gen.AppendStreamDestroyCall(e, l.xs(h)) }, drop)
		return nil
	}
	l.remote(p)
	err := l.reliably(p, func(p *sim.Proc) error { return l.cl.StreamDestroy(p, l.xs(h)) })
	if err == nil && l.rec != nil {
		drop()
	}
	return err
}

// StreamSynchronize mirrors cudaStreamSynchronize.
func (l *Lib) StreamSynchronize(p *sim.Proc, h cuda.StreamHandle) error {
	l.remote(p)
	return l.reliably(p, func(p *sim.Proc) error { return l.cl.StreamSynchronize(p, l.xs(h)) })
}

// EventCreate mirrors cudaEventCreate.
func (l *Lib) EventCreate(p *sim.Proc) (cuda.EventHandle, error) {
	l.remote(p)
	var h cuda.EventHandle
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		h, err = l.cl.EventCreate(p)
		return err
	})
	if err == nil && l.rec != nil {
		v := cuda.EventHandle(virtEventBase + l.newVirt())
		l.eventMap[v] = h
		l.journalPut(eventKey(v), func(p *sim.Proc) error {
			nh, err := l.cl.EventCreate(p)
			if err != nil {
				return err
			}
			l.eventMap[v] = nh
			return nil
		})
		h = v
	}
	return h, err
}

// EventDestroy mirrors cudaEventDestroy.
func (l *Lib) EventDestroy(p *sim.Proc, h cuda.EventHandle) error {
	drop := func() {
		l.journalDrop(eventKey(h))
		delete(l.eventMap, h)
	}
	if l.asyncing() {
		return l.submitAsyncDone(p, 0, func(e *wire.Encoder) { gen.AppendEventDestroyCall(e, l.xe(h)) }, drop)
	}
	if l.batching() {
		l.deferCallDone(func(e *wire.Encoder) { gen.AppendEventDestroyCall(e, l.xe(h)) }, drop)
		return nil
	}
	l.remote(p)
	err := l.reliably(p, func(p *sim.Proc) error { return l.cl.EventDestroy(p, l.xe(h)) })
	if err == nil && l.rec != nil {
		drop()
	}
	return err
}

// EventRecord mirrors cudaEventRecord. Not journaled: a recorded timestamp
// is transient timing state, re-sent with the unfenced window if pending.
func (l *Lib) EventRecord(p *sim.Proc, h cuda.EventHandle, stream cuda.StreamHandle) error {
	if l.asyncing() {
		return l.submitAsync(p, 0, func(e *wire.Encoder) { gen.AppendEventRecordCall(e, l.xe(h), l.xs(stream)) })
	}
	if l.batching() {
		l.deferCall(func(e *wire.Encoder) { gen.AppendEventRecordCall(e, l.xe(h), l.xs(stream)) })
		return nil
	}
	l.remote(p)
	return l.reliably(p, func(p *sim.Proc) error { return l.cl.EventRecord(p, l.xe(h), l.xs(stream)) })
}

// EventSynchronize mirrors cudaEventSynchronize.
func (l *Lib) EventSynchronize(p *sim.Proc, h cuda.EventHandle) error {
	l.remote(p)
	return l.reliably(p, func(p *sim.Proc) error { return l.cl.EventSynchronize(p, l.xe(h)) })
}

// EventElapsed mirrors cudaEventElapsedTime.
func (l *Lib) EventElapsed(p *sim.Proc, start, end cuda.EventHandle) (time.Duration, error) {
	l.remote(p)
	var d time.Duration
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		d, err = l.cl.EventElapsed(p, l.xe(start), l.xe(end))
		return err
	})
	return d, err
}

// --- cuDNN ---

// DnnCreate mirrors cudnnCreate.
func (l *Lib) DnnCreate(p *sim.Proc) (cudalibs.DNNHandle, error) {
	l.remote(p)
	var h cudalibs.DNNHandle
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		h, err = l.cl.DnnCreate(p)
		return err
	})
	if err == nil && l.rec != nil {
		v := cudalibs.DNNHandle(virtDnnBase + l.newVirt())
		l.dnnMap[v] = h
		l.journalPut(dnnKey(v), func(p *sim.Proc) error {
			nh, err := l.cl.DnnCreate(p)
			if err != nil {
				return err
			}
			l.dnnMap[v] = nh
			return nil
		})
		h = v
	}
	return h, err
}

// DnnDestroy mirrors cudnnDestroy.
func (l *Lib) DnnDestroy(p *sim.Proc, h cudalibs.DNNHandle) error {
	drop := func() {
		l.journalDrop(dnnKey(h))
		l.journalDrop(dnnKey(h) + ":stream")
		delete(l.dnnMap, h)
	}
	if l.asyncing() {
		return l.submitAsyncDone(p, 0, func(e *wire.Encoder) { gen.AppendDnnDestroyCall(e, l.xdn(h)) }, drop)
	}
	if l.batching() {
		l.deferCallDone(func(e *wire.Encoder) { gen.AppendDnnDestroyCall(e, l.xdn(h)) }, drop)
		return nil
	}
	l.remote(p)
	err := l.reliably(p, func(p *sim.Proc) error { return l.cl.DnnDestroy(p, l.xdn(h)) })
	if err == nil && l.rec != nil {
		drop()
	}
	return err
}

// DnnSetStream mirrors cudnnSetStream. The binding is journaled (keyed per
// handle, last set wins) so a recovered handle is re-bound to its stream.
func (l *Lib) DnnSetStream(p *sim.Proc, h cudalibs.DNNHandle, stream cuda.StreamHandle) error {
	journal := func() {
		l.journalPut(dnnKey(h)+":stream", func(p *sim.Proc) error {
			return l.cl.DnnSetStream(p, l.xdn(h), l.xs(stream))
		})
	}
	if l.asyncing() {
		return l.submitAsyncDone(p, 0, func(e *wire.Encoder) { gen.AppendDnnSetStreamCall(e, l.xdn(h), l.xs(stream)) }, journal)
	}
	if l.batching() {
		l.deferCallDone(func(e *wire.Encoder) { gen.AppendDnnSetStreamCall(e, l.xdn(h), l.xs(stream)) }, journal)
		return nil
	}
	l.remote(p)
	err := l.reliably(p, func(p *sim.Proc) error { return l.cl.DnnSetStream(p, l.xdn(h), l.xs(stream)) })
	if err == nil && l.rec != nil {
		journal()
	}
	return err
}

// DnnGetConvolutionWorkspaceSize mirrors its cuDNN namesake.
func (l *Lib) DnnGetConvolutionWorkspaceSize(p *sim.Proc, d cudalibs.Descriptor) (int64, error) {
	if l.localizing() && l.localDescs[d] {
		// Descriptor state lives in the guest; answer without remoting.
		l.local(p)
		return 64 << 20, nil
	}
	l.remote(p)
	var size int64
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		size, err = l.cl.DnnGetConvolutionWorkspaceSize(p, l.xdc(d))
		return err
	})
	return size, err
}

// DnnForward runs a cuDNN compute primitive on the API server. Descriptor
// arguments pooled guest-side are stripped before forwarding: the server's
// kernels depend only on shapes already encoded in the op.
func (l *Lib) DnnForward(p *sim.Proc, h cudalibs.DNNHandle, op string, dur time.Duration, bufs []cuda.DevPtr, descs []uint64) error {
	if l.localizing() {
		descs = nil // guest-held descriptors are meaningless to the server
	}
	l.remote(p)
	return l.reliably(p, func(p *sim.Proc) error {
		return l.cl.DnnForward(p, l.xdn(h), op, dur, l.xptrs(bufs), l.xdescs(descs))
	})
}

// --- cuBLAS ---

// BlasCreate mirrors cublasCreate.
func (l *Lib) BlasCreate(p *sim.Proc) (cudalibs.BLASHandle, error) {
	l.remote(p)
	var h cudalibs.BLASHandle
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		h, err = l.cl.BlasCreate(p)
		return err
	})
	if err == nil && l.rec != nil {
		v := cudalibs.BLASHandle(virtBlasBase + l.newVirt())
		l.blasMap[v] = h
		l.journalPut(blasKey(v), func(p *sim.Proc) error {
			nh, err := l.cl.BlasCreate(p)
			if err != nil {
				return err
			}
			l.blasMap[v] = nh
			return nil
		})
		h = v
	}
	return h, err
}

// BlasDestroy mirrors cublasDestroy.
func (l *Lib) BlasDestroy(p *sim.Proc, h cudalibs.BLASHandle) error {
	drop := func() {
		l.journalDrop(blasKey(h))
		l.journalDrop(blasKey(h) + ":stream")
		delete(l.blasMap, h)
	}
	if l.asyncing() {
		return l.submitAsyncDone(p, 0, func(e *wire.Encoder) { gen.AppendBlasDestroyCall(e, l.xbl(h)) }, drop)
	}
	if l.batching() {
		l.deferCallDone(func(e *wire.Encoder) { gen.AppendBlasDestroyCall(e, l.xbl(h)) }, drop)
		return nil
	}
	l.remote(p)
	err := l.reliably(p, func(p *sim.Proc) error { return l.cl.BlasDestroy(p, l.xbl(h)) })
	if err == nil && l.rec != nil {
		drop()
	}
	return err
}

// BlasSetStream mirrors cublasSetStream; journaled like DnnSetStream.
func (l *Lib) BlasSetStream(p *sim.Proc, h cudalibs.BLASHandle, stream cuda.StreamHandle) error {
	journal := func() {
		l.journalPut(blasKey(h)+":stream", func(p *sim.Proc) error {
			return l.cl.BlasSetStream(p, l.xbl(h), l.xs(stream))
		})
	}
	if l.asyncing() {
		return l.submitAsyncDone(p, 0, func(e *wire.Encoder) { gen.AppendBlasSetStreamCall(e, l.xbl(h), l.xs(stream)) }, journal)
	}
	if l.batching() {
		l.deferCallDone(func(e *wire.Encoder) { gen.AppendBlasSetStreamCall(e, l.xbl(h), l.xs(stream)) }, journal)
		return nil
	}
	l.remote(p)
	err := l.reliably(p, func(p *sim.Proc) error { return l.cl.BlasSetStream(p, l.xbl(h), l.xs(stream)) })
	if err == nil && l.rec != nil {
		journal()
	}
	return err
}

// BlasGemm mirrors cublasSgemm.
func (l *Lib) BlasGemm(p *sim.Proc, h cudalibs.BLASHandle, dur time.Duration, bufs []cuda.DevPtr) error {
	l.remote(p)
	return l.reliably(p, func(p *sim.Proc) error {
		return l.cl.BlasGemm(p, l.xbl(h), dur, l.xptrs(bufs))
	})
}
