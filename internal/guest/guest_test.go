package guest

import (
	"errors"
	"testing"
	"time"

	"dgsf/internal/cuda"
	"dgsf/internal/cudalibs"
	"dgsf/internal/gpu"
	"dgsf/internal/native"
	"dgsf/internal/remoting"
	"dgsf/internal/remoting/gen"
	"dgsf/internal/remoting/wire"
	"dgsf/internal/sim"
)

// countingLoopback satisfies remoting.Caller by dispatching straight into a
// native backend, counting messages and recording the call IDs that crossed.
type countingLoopback struct {
	b     gen.API
	n     int
	calls []uint16
}

func (l *countingLoopback) Roundtrip(p *sim.Proc, req []byte, reqData int64) ([]byte, error) {
	l.n++
	id := uint16(0)
	if len(req) >= 2 {
		id = uint16(req[0]) | uint16(req[1])<<8
		l.calls = append(l.calls, id)
	}
	if id == remoting.CallBatch {
		// Unpack the batch container the way an API server does.
		d := wire.NewDecoder(req)
		_ = d.U16()
		n := int(d.U32())
		firstErr := 0
		for i := 0; i < n && d.Err() == nil; i++ {
			entry := d.BytesField()
			resp, _ := gen.Dispatch(p, l.b, entry)
			rd := wire.NewDecoder(resp)
			if code := int(rd.I32()); code != 0 && firstErr == 0 {
				firstErr = code
			}
		}
		var e wire.Encoder
		e.I32(int32(firstErr))
		return e.Bytes(), nil
	}
	resp, _ := gen.Dispatch(p, l.b, req)
	return resp, nil
}
func (l *countingLoopback) Close() {}

// rig builds a guest library over a counting loopback to a native backend.
func rig(e *sim.Engine, p *sim.Proc, opt Opt) (*Lib, *countingLoopback) {
	cfg := gpu.V100Config(0)
	cfg.CopyLat, cfg.KernelLat = 0, 0
	dev := gpu.New(e, cfg)
	rt := cuda.NewRuntime(e, []*gpu.Device{dev}, cuda.Costs{})
	lb := &countingLoopback{b: native.New(rt, cudalibs.Costs{})}
	return New(lb, opt), lb
}

func TestStatsIdentity(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		lib, _ := rig(e, p, OptAll)
		_ = lib.Hello(p, "fn", 1<<30)
		ptr, _ := lib.Malloc(p, 1<<20)
		_ = lib.Memset(p, ptr, 0, 1<<20)
		_, _ = lib.DnnCreateTensorDescriptor(p)
		_, _ = lib.GetLastError(p)
		lib.FlushBatch(p)
		st := lib.Stats()
		if st.Total != st.Remoted+st.Batched+st.Localized {
			t.Fatalf("stats identity broken: %+v", st)
		}
		if st.Roundtrips() != st.Remoted+st.Batches {
			t.Fatalf("roundtrip identity broken: %+v", st)
		}
	})
}

func TestOptNoneRemotesEverything(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		lib, lb := rig(e, p, OptNone)
		_ = lib.Hello(p, "fn", 1<<30)
		d, err := lib.DnnCreateTensorDescriptor(p)
		if err != nil {
			t.Fatal(err)
		}
		_ = lib.DnnSetTensorDescriptor(p, d)
		_, _ = lib.MallocHost(p, 4096)
		_, _ = lib.GetLastError(p)
		st := lib.Stats()
		if st.Localized != 0 || st.Batched != 0 {
			t.Fatalf("unoptimized guest localized/batched calls: %+v", st)
		}
		if st.Remoted != lb.n {
			t.Fatalf("remoted count %d != %d messages on the wire", st.Remoted, lb.n)
		}
	})
}

func TestUnoptimizedLaunchIsThreeCalls(t *testing.T) {
	// Native launch = __cudaPushCallConfiguration + cudaLaunchKernel +
	// __cudaPopCallConfiguration; the unoptimized guest forwards all three.
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		lib, lb := rig(e, p, OptNone)
		_ = lib.Hello(p, "fn", 1<<30)
		fns, _ := lib.RegisterKernels(p, []string{"k"})
		before := lb.n
		if err := lib.LaunchKernel(p, cuda.LaunchParams{Fn: fns[0], Duration: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
		if got := lb.n - before; got != 3 {
			t.Fatalf("unoptimized launch used %d round trips, want 3", got)
		}
		seq := lb.calls[len(lb.calls)-3:]
		want := []uint16{gen.CallPushCallConfiguration, gen.CallLaunchKernel, gen.CallPopCallConfiguration}
		for i := range want {
			if seq[i] != want[i] {
				t.Fatalf("launch sequence = %v, want %v", seq, want)
			}
		}
	})
}

func TestBatchingLaunchIsZeroRoundTripsUntilFlush(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		lib, lb := rig(e, p, OptAll)
		_ = lib.Hello(p, "fn", 1<<30)
		fns, _ := lib.RegisterKernels(p, []string{"k"})
		before := lb.n
		for i := 0; i < 10; i++ {
			if err := lib.LaunchKernel(p, cuda.LaunchParams{Fn: fns[0], Duration: time.Millisecond}); err != nil {
				t.Fatal(err)
			}
		}
		if lb.n != before {
			t.Fatalf("batched launches crossed the wire early (%d messages)", lb.n-before)
		}
		lib.FlushBatch(p)
		if got := lb.n - before; got != 1 {
			t.Fatalf("flush used %d round trips, want 1", got)
		}
	})
}

func TestSynchronousCallFlushesPendingBatch(t *testing.T) {
	// Ordering: batched work must reach the server before any synchronous
	// call that could observe its effects.
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		lib, _ := rig(e, p, OptAll)
		_ = lib.Hello(p, "fn", 1<<30)
		fns, _ := lib.RegisterKernels(p, []string{"mutator"})
		ptr, _ := lib.Malloc(p, 1<<20)
		_ = lib.Memset(p, ptr, 0, 1<<20) // batched
		base, _ := lib.MemcpyD2H(p, ptr, 1<<20)
		_ = lib.LaunchKernel(p, cuda.LaunchParams{Fn: fns[0], Duration: time.Millisecond, Mutates: []cuda.DevPtr{ptr}}) // batched
		_ = lib.StreamSynchronize(p, 0)
		after, _ := lib.MemcpyD2H(p, ptr, 1<<20)
		if base.FP == after.FP {
			t.Fatal("batched memset/launch not visible to subsequent synchronous reads")
		}
	})
}

func TestLocalDescriptorsNeverCrossTheWire(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		lib, lb := rig(e, p, OptLocalDescriptors)
		_ = lib.Hello(p, "fn", 1<<30)
		before := lb.n
		for i := 0; i < 50; i++ {
			d, err := lib.DnnCreateConvolutionDescriptor(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := lib.DnnSetConvolutionDescriptor(p, d); err != nil {
				t.Fatal(err)
			}
			if err := lib.DnnDestroyConvolutionDescriptor(p, d); err != nil {
				t.Fatal(err)
			}
		}
		if lb.n != before {
			t.Fatalf("descriptor churn crossed the wire %d times", lb.n-before)
		}
		if st := lib.Stats(); st.Localized != 150 {
			t.Fatalf("localized = %d, want 150", st.Localized)
		}
		// Stale descriptor handles are rejected locally too.
		if err := lib.DnnSetTensorDescriptor(p, 0xDEAD); !errors.Is(err, cuda.ErrInvalidResourceHandle) {
			t.Fatalf("stale descriptor err = %v", err)
		}
	})
}

func TestHostMemoryEmulation(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		lib, lb := rig(e, p, OptLocalDescriptors)
		_ = lib.Hello(p, "fn", 1<<30)
		before := lb.n
		ptr, err := lib.MallocHost(p, 1<<20)
		if err != nil || ptr == 0 {
			t.Fatalf("MallocHost = (%v, %v)", ptr, err)
		}
		if err := lib.FreeHost(p, ptr); err != nil {
			t.Fatal(err)
		}
		if err := lib.FreeHost(p, ptr); !errors.Is(err, cuda.ErrInvalidValue) {
			t.Fatalf("double FreeHost = %v", err)
		}
		if lb.n != before {
			t.Fatal("host-only memory APIs crossed the wire")
		}
	})
}

func TestLocalPointerAttributes(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		lib, lb := rig(e, p, OptAll)
		_ = lib.Hello(p, "fn", 1<<30)
		ptr, _ := lib.Malloc(p, 1<<20)
		before := lb.n
		a, err := lib.PointerGetAttributes(p, ptr+4096) // interior pointer
		if err != nil || !a.IsDevice || a.Size != 1<<20 {
			t.Fatalf("attrs = (%+v, %v)", a, err)
		}
		if _, err := lib.PointerGetAttributes(p, cuda.DevPtr(12345)); !errors.Is(err, cuda.ErrInvalidValue) {
			t.Fatalf("unknown pointer err = %v", err)
		}
		if lb.n != before {
			t.Fatal("pointer attribute queries crossed the wire")
		}
	})
}

func TestVersionAndDeviceQueriesLocalized(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		lib, lb := rig(e, p, OptAll)
		_ = lib.Hello(p, "fn", 1<<30)
		before := lb.n
		if v, _ := lib.RuntimeGetVersion(p); v != 10010 {
			t.Fatalf("runtime version = %d", v)
		}
		if v, _ := lib.DriverGetVersion(p); v != 10020 {
			t.Fatalf("driver version = %d", v)
		}
		if d, _ := lib.GetDevice(p); d != 0 {
			t.Fatalf("GetDevice = %d", d)
		}
		if lb.n != before {
			t.Fatal("version/device queries crossed the wire")
		}
	})
}

func TestPushPopConfigurationLocalizedWhenBatching(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		lib, lb := rig(e, p, OptAll)
		_ = lib.Hello(p, "fn", 1<<30)
		before := lb.n
		if err := lib.PushCallConfiguration(p, [3]int{1, 1, 1}, [3]int{256, 1, 1}, 0); err != nil {
			t.Fatal(err)
		}
		if err := lib.PopCallConfiguration(p); err != nil {
			t.Fatal(err)
		}
		if lb.n != before {
			t.Fatal("launch configuration crossed the wire despite batching")
		}
	})
}

// asyncLoopback extends the counting loopback with the pipelined lane:
// Submit executes CallAsync-wrapped messages immediately (a loopback has no
// latency to hide) and latches the first error; a CallFence round trip
// reports and clears it, mirroring the API server's semantics.
type asyncLoopback struct {
	countingLoopback
	submits int
	latched int32
}

func (l *asyncLoopback) Roundtrip(p *sim.Proc, req []byte, reqData int64) ([]byte, error) {
	if len(req) >= 2 {
		if id := uint16(req[0]) | uint16(req[1])<<8; id == remoting.CallFence {
			l.n++
			var e wire.Encoder
			e.I32(l.latched)
			l.latched = 0
			return e.Bytes(), nil
		}
	}
	return l.countingLoopback.Roundtrip(p, req, reqData)
}

func (l *asyncLoopback) Submit(p *sim.Proc, req []byte, reqData int64) error {
	l.submits++
	resp, _ := gen.Dispatch(p, l.b, req[2:]) // strip the CallAsync wrapper
	rd := wire.NewDecoder(resp)
	if code := rd.I32(); code != 0 && l.latched == 0 {
		l.latched = code
	}
	return nil
}

// rigAsync builds a guest library over an async-capable loopback.
func rigAsync(e *sim.Engine, p *sim.Proc, opt Opt) (*Lib, *asyncLoopback) {
	cfg := gpu.V100Config(0)
	cfg.CopyLat, cfg.KernelLat = 0, 0
	dev := gpu.New(e, cfg)
	rt := cuda.NewRuntime(e, []*gpu.Device{dev}, cuda.Costs{})
	lb := &asyncLoopback{countingLoopback: countingLoopback{b: native.New(rt, cudalibs.Costs{})}}
	return New(lb, opt), lb
}

func TestAsyncSubmissionsAreZeroRoundTripsUntilSync(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		lib, lb := rigAsync(e, p, OptAll|OptAsync)
		_ = lib.Hello(p, "fn", 1<<30)
		fns, _ := lib.RegisterKernels(p, []string{"k"})
		ptr, _ := lib.Malloc(p, 1<<20)
		before := lb.n
		_ = lib.MemcpyH2D(p, ptr, gpu.HostBuffer{FP: 1, Size: 1 << 20}, 1<<20)
		_ = lib.Memset(p, ptr, 0, 1<<20)
		for i := 0; i < 10; i++ {
			if err := lib.LaunchKernel(p, cuda.LaunchParams{Fn: fns[0], Duration: time.Millisecond, Mutates: []cuda.DevPtr{ptr}}); err != nil {
				t.Fatal(err)
			}
		}
		if lb.n != before {
			t.Fatalf("async submissions used %d round trips", lb.n-before)
		}
		if lb.submits != 12 {
			t.Fatalf("submits = %d, want 12", lb.submits)
		}
		// A synchronizing call drains the lane: one fence plus itself.
		if _, err := lib.MemcpyD2H(p, ptr, 1<<20); err != nil {
			t.Fatal(err)
		}
		if got := lb.n - before; got != 2 {
			t.Fatalf("synchronizing call after async burst used %d round trips, want 2 (fence + call)", got)
		}
		st := lib.Stats()
		if st.Async != 12 || st.Fences != 1 {
			t.Fatalf("stats = %+v, want 12 async / 1 fence", st)
		}
		if st.Total != st.Remoted+st.Batched+st.Localized+st.Async {
			t.Fatalf("stats identity broken with async lane: %+v", st)
		}
		if st.Roundtrips() != st.Remoted+st.Batches+st.Fences {
			t.Fatalf("roundtrip identity broken: %+v", st)
		}
	})
}

func TestAsyncErrorSurfacesAtFenceNotBefore(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		lib, lb := rigAsync(e, p, OptAll|OptAsync)
		_ = lib.Hello(p, "fn", 1<<30)
		// A one-way memset of unallocated memory fails on the server and
		// latches; the submission itself reports success.
		if err := lib.Memset(p, cuda.DevPtr(0xDEAD0000), 0, 4096); err != nil {
			t.Fatalf("async submission surfaced error early: %v", err)
		}
		if lb.latched == 0 {
			t.Fatal("loopback did not latch the async error")
		}
		// Before any fence the guest has not seen the error.
		if code, _ := lib.GetLastError(p); code != 0 {
			t.Fatalf("error visible before fence: %d", code)
		}
		// The next synchronizing call fences and pulls the latched error in.
		if err := lib.DeviceSynchronize(p); err != nil {
			t.Fatal(err)
		}
		code, _ := lib.GetLastError(p)
		if code == 0 {
			t.Fatal("latched async error not surfaced after fence")
		}
		// Sticky semantics: reading it cleared it.
		if again, _ := lib.GetLastError(p); again != 0 {
			t.Fatalf("error not cleared after read: %d", again)
		}
	})
}

func TestAsyncFreeIsSynchronizing(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		lib, lb := rigAsync(e, p, OptAll|OptAsync)
		_ = lib.Hello(p, "fn", 1<<30)
		ptr, _ := lib.Malloc(p, 1<<20)
		_ = lib.Memset(p, ptr, 0, 1<<20) // async
		before := lb.n
		if err := lib.Free(p, ptr); err != nil {
			t.Fatal(err)
		}
		// Free drained the lane (fence) and executed synchronously.
		if got := lb.n - before; got != 2 {
			t.Fatalf("free used %d round trips, want 2 (fence + free)", got)
		}
	})
}

func TestOptAsyncDegradesWithoutAsyncTransport(t *testing.T) {
	// A transport implementing only Caller (e.g. a test double) silently
	// falls back to the batching tier.
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		lib, lb := rig(e, p, OptAll|OptAsync)
		_ = lib.Hello(p, "fn", 1<<30)
		ptr, _ := lib.Malloc(p, 1<<20)
		before := lb.n
		_ = lib.Memset(p, ptr, 0, 1<<20)
		if lb.n != before {
			t.Fatal("memset crossed the wire instead of batching")
		}
		lib.FlushBatch(p)
		st := lib.Stats()
		if st.Async != 0 || st.Fences != 0 {
			t.Fatalf("async lane used without transport support: %+v", st)
		}
		if st.Batched == 0 {
			t.Fatalf("fallback did not batch: %+v", st)
		}
	})
}

// --- crash-recovery tests ---

// flakyAsync is an async loopback that can die like a severed connection:
// once broken, every roundtrip and submission fails with ErrConnClosed.
type flakyAsync struct {
	asyncLoopback
	broken bool
}

func (l *flakyAsync) Roundtrip(p *sim.Proc, req []byte, reqData int64) ([]byte, error) {
	if l.broken {
		return nil, remoting.ErrConnClosed
	}
	return l.asyncLoopback.Roundtrip(p, req, reqData)
}

func (l *flakyAsync) Submit(p *sim.Proc, req []byte, reqData int64) error {
	if l.broken {
		return remoting.ErrConnClosed
	}
	return l.asyncLoopback.Submit(p, req, reqData)
}

func (l *flakyAsync) Close() { l.broken = true }

// recoveryRig hands out fresh backends on redial: each conn fronts a brand
// new native runtime, so replayed sessions land on different real handles —
// exactly the situation the guest's handle translation must absorb.
type recoveryRig struct {
	e     *sim.Engine
	conns []*flakyAsync
}

func (r *recoveryRig) dial() *flakyAsync {
	cfg := gpu.V100Config(0)
	cfg.CopyLat, cfg.KernelLat = 0, 0
	dev := gpu.New(r.e, cfg)
	rt := cuda.NewRuntime(r.e, []*gpu.Device{dev}, cuda.Costs{})
	c := &flakyAsync{asyncLoopback: asyncLoopback{countingLoopback: countingLoopback{b: native.New(rt, cudalibs.Costs{})}}}
	r.conns = append(r.conns, c)
	return c
}

func rigRecoverable(e *sim.Engine, opt Opt) (*Lib, *recoveryRig) {
	r := &recoveryRig{e: e}
	rc := RecoveryConfig{
		Redial:      func(p *sim.Proc) (remoting.Caller, error) { return r.dial(), nil },
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		BackoffCap:  8 * time.Millisecond,
	}
	return NewRecoverable(r.dial(), opt, rc), r
}

func sawCall(calls []uint16, id uint16) bool {
	for _, c := range calls {
		if c == id {
			return true
		}
	}
	return false
}

func TestRecoveryRedialsAndReplaysJournal(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		lib, r := rigRecoverable(e, OptAll|OptAsync)
		if err := lib.Hello(p, "fn", 1<<30); err != nil {
			t.Fatal(err)
		}
		fns, err := lib.RegisterKernels(p, []string{"k"})
		if err != nil {
			t.Fatal(err)
		}
		ptr, err := lib.Malloc(p, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if err := lib.MemcpyH2D(p, ptr, gpu.HostBuffer{FP: 1, Size: 1 << 20}, 1<<20); err != nil {
			t.Fatal(err)
		}
		stream, err := lib.StreamCreate(p)
		if err != nil {
			t.Fatal(err)
		}
		dnn, err := lib.DnnCreate(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := lib.DnnSetStream(p, dnn, stream); err != nil {
			t.Fatal(err)
		}
		if err := lib.DeviceSynchronize(p); err != nil {
			t.Fatal(err)
		}

		// The server vanishes between calls.
		r.conns[0].broken = true

		// The next synchronous call recovers transparently.
		if err := lib.DeviceSynchronize(p); err != nil {
			t.Fatalf("call across conn loss = %v, want recovery", err)
		}
		st := lib.Stats()
		if st.Recoveries != 1 || st.Redials != 1 {
			t.Fatalf("recoveries/redials = %d/%d, want 1/1", st.Recoveries, st.Redials)
		}
		if len(r.conns) != 2 {
			t.Fatalf("dialed %d conns, want 2", len(r.conns))
		}
		// The journal replayed every state-establishing call on the fresh
		// backend, in its original order.
		for _, id := range []uint16{gen.CallHello, gen.CallRegisterKernels, gen.CallMalloc,
			gen.CallMemcpyH2D, gen.CallStreamCreate, gen.CallDnnCreate, gen.CallDnnSetStream} {
			if !sawCall(r.conns[1].calls, id) {
				t.Errorf("replay did not re-issue call %d on the new backend", id)
			}
		}
		if st.Replayed == 0 {
			t.Fatal("stats recorded no replayed journal entries")
		}
		// Pre-failure handles stay valid: translation maps them onto the new
		// backend's real handles.
		if err := lib.Memset(p, ptr, 0, 1<<20); err != nil {
			t.Fatalf("old devptr after recovery: %v", err)
		}
		if err := lib.LaunchKernel(p, cuda.LaunchParams{Fn: fns[0], Duration: time.Millisecond, Mutates: []cuda.DevPtr{ptr}}); err != nil {
			t.Fatalf("old fnptr after recovery: %v", err)
		}
		if err := lib.StreamSynchronize(p, stream); err != nil {
			t.Fatalf("old stream after recovery: %v", err)
		}
		if err := lib.DeviceSynchronize(p); err != nil {
			t.Fatal(err)
		}
		if code, _ := lib.GetLastError(p); code != 0 {
			t.Fatalf("recovered session carries error %d", code)
		}
	})
}

func TestFenceAfterConnLossRecoversUnfencedWindow(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		lib, r := rigRecoverable(e, OptAll|OptAsync)
		_ = lib.Hello(p, "fn", 1<<30)
		fns, _ := lib.RegisterKernels(p, []string{"k"})
		ptr, _ := lib.Malloc(p, 1<<20)
		if err := lib.DeviceSynchronize(p); err != nil {
			t.Fatal(err)
		}
		// Three launches enter the pipelined lane, then the conn dies with
		// all three unfenced.
		for i := 0; i < 3; i++ {
			if err := lib.LaunchKernel(p, cuda.LaunchParams{Fn: fns[0], Duration: time.Millisecond, Mutates: []cuda.DevPtr{ptr}}); err != nil {
				t.Fatal(err)
			}
		}
		r.conns[0].broken = true
		// A further submission recovers the session in-line...
		if err := lib.LaunchKernel(p, cuda.LaunchParams{Fn: fns[0], Duration: time.Millisecond, Mutates: []cuda.DevPtr{ptr}}); err != nil {
			t.Fatalf("async submit across conn loss = %v, want recovery", err)
		}
		// ...and the fence drains the re-sent window without hanging.
		if err := lib.DeviceSynchronize(p); err != nil {
			t.Fatal(err)
		}
		st := lib.Stats()
		if st.Recoveries != 1 {
			t.Fatalf("recoveries = %d, want 1", st.Recoveries)
		}
		// The new backend executed the three re-sent launches plus the one
		// submitted after recovery.
		if got := r.conns[1].submits; got != 4 {
			t.Fatalf("new backend saw %d submissions, want 4 (3 re-sent + 1 new)", got)
		}
		if code, _ := lib.GetLastError(p); code != 0 {
			t.Fatalf("recovered async lane carries error %d", code)
		}
	})
}

func TestRecoveryPreservesStickyError(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		lib, r := rigRecoverable(e, OptAll|OptAsync)
		_ = lib.Hello(p, "fn", 1<<30)
		// Latch a genuine CUDA error: an async memset of unallocated memory
		// fails on the server and surfaces at the next fence.
		if err := lib.Memset(p, cuda.DevPtr(0xDEAD0000), 0, 4096); err != nil {
			t.Fatal(err)
		}
		_ = lib.DeviceSynchronize(p)
		// Kill the conn and recover through an unrelated call.
		r.conns[0].broken = true
		if _, err := lib.Malloc(p, 4096); err != nil {
			t.Fatalf("malloc across conn loss = %v, want recovery", err)
		}
		if lib.Stats().Recoveries != 1 {
			t.Fatal("expected one recovery")
		}
		// cudaGetLastError still reports the pre-failure sticky error:
		// recovery is invisible to the application's error model.
		code, _ := lib.GetLastError(p)
		if code == 0 {
			t.Fatal("sticky error lost across recovery")
		}
		if again, _ := lib.GetLastError(p); again != 0 {
			t.Fatalf("sticky error not cleared after read: %d", again)
		}
	})
}

func TestRecoveryExhaustionLatchesDevicesUnavailable(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		r := &recoveryRig{e: e}
		redials := 0
		rc := RecoveryConfig{
			Redial: func(p *sim.Proc) (remoting.Caller, error) {
				redials++
				return nil, remoting.ErrConnClosed // every backend is gone
			},
			MaxAttempts: 3,
			BackoffBase: time.Millisecond,
			BackoffCap:  8 * time.Millisecond,
		}
		lib := NewRecoverable(r.dial(), OptAll|OptAsync, rc)
		_ = lib.Hello(p, "fn", 1<<30)
		r.conns[0].broken = true
		err := lib.DeviceSynchronize(p)
		if !errors.Is(err, cuda.ErrDevicesUnavailable) {
			t.Fatalf("exhausted recovery = %v, want cudaErrorDevicesUnavailable", err)
		}
		if redials != 3 {
			t.Fatalf("redial attempts = %d, want MaxAttempts (3)", redials)
		}
		// The session is lost for good: later calls fail fast, with no
		// further redial storms.
		if _, err := lib.Malloc(p, 4096); !errors.Is(err, cuda.ErrDevicesUnavailable) {
			t.Fatalf("call on lost session = %v, want cudaErrorDevicesUnavailable", err)
		}
		if redials != 3 {
			t.Fatalf("lost session redialed again (%d attempts)", redials)
		}
		if code, _ := lib.GetLastError(p); code != int(cuda.ErrDevicesUnavailable) {
			t.Fatalf("last error = %d, want %d", code, int(cuda.ErrDevicesUnavailable))
		}
	})
}

func TestLegacyGuestMapsConnFaultToDevicesUnavailable(t *testing.T) {
	// Without a recovery policy the guest must still fail fast and typed —
	// never hang — when the connection dies under it.
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		r := &recoveryRig{e: e}
		conn := r.dial()
		lib := New(conn, OptAll|OptAsync)
		_ = lib.Hello(p, "fn", 1<<30)
		ptr, _ := lib.Malloc(p, 1<<20)
		_ = lib.Memset(p, ptr, 0, 1<<20) // enters the async lane
		conn.broken = true
		err := lib.DeviceSynchronize(p)
		if !errors.Is(err, cuda.ErrDevicesUnavailable) {
			t.Fatalf("conn fault on legacy guest = %v, want cudaErrorDevicesUnavailable", err)
		}
		if code, _ := lib.GetLastError(p); code == 0 {
			t.Fatal("conn fault left no sticky error")
		}
	})
}
