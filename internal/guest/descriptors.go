package guest

import (
	"dgsf/internal/cuda"
	"dgsf/internal/cudalibs"
	"dgsf/internal/sim"
)

// cuDNN descriptor interposition. Descriptor create/set/destroy calls are
// issued in large numbers while loading a model — each one a network round
// trip when remoted naively. With OptLocalDescriptors the guest pools them
// entirely on its side: these APIs "simply allocate memory on the host side
// to hold the opaque structure" (§V-C), so no server state is needed.

// createDescriptor implements the cudnnCreate*Descriptor family. On the
// remoted path a recoverable library virtualizes and journals the
// descriptor, like every other server-issued handle.
func (l *Lib) createDescriptor(p *sim.Proc, remoteCreate func(*sim.Proc) (cudalibs.Descriptor, error)) (cudalibs.Descriptor, error) {
	if l.localizing() {
		l.local(p)
		l.nextDesc++
		d := cudalibs.Descriptor(localDescBit | l.nextDesc)
		l.localDescs[d] = true
		return d, nil
	}
	l.remote(p)
	var d cudalibs.Descriptor
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		d, err = remoteCreate(p)
		return err
	})
	if err == nil && l.rec != nil {
		v := cudalibs.Descriptor(virtDescBase + l.newVirt())
		l.descMap[v] = d
		l.journalPut(descKey(v), func(p *sim.Proc) error {
			nd, err := remoteCreate(p)
			if err != nil {
				return err
			}
			l.descMap[v] = nd
			return nil
		})
		d = v
	}
	return d, err
}

// setDescriptor implements the cudnnSet*Descriptor family. The remoted set
// is journaled per descriptor (last set wins) so recovered descriptors are
// reconfigured.
func (l *Lib) setDescriptor(p *sim.Proc, d cudalibs.Descriptor, remoteSet func(*sim.Proc, cudalibs.Descriptor) error) error {
	if l.localizing() {
		l.local(p)
		if !l.localDescs[d] {
			return cuda.ErrInvalidResourceHandle
		}
		return nil
	}
	l.remote(p)
	err := l.reliably(p, func(p *sim.Proc) error { return remoteSet(p, l.xdc(d)) })
	if err == nil && l.rec != nil {
		l.journalPut(descKey(d)+":set", func(p *sim.Proc) error {
			return remoteSet(p, l.xdc(d))
		})
	}
	return err
}

// destroyDescriptor implements the cudnnDestroy*Descriptor family.
func (l *Lib) destroyDescriptor(p *sim.Proc, d cudalibs.Descriptor, remoteDestroy func(*sim.Proc, cudalibs.Descriptor) error) error {
	if l.localizing() {
		l.local(p)
		if !l.localDescs[d] {
			return cuda.ErrInvalidResourceHandle
		}
		delete(l.localDescs, d)
		return nil
	}
	l.remote(p)
	err := l.reliably(p, func(p *sim.Proc) error { return remoteDestroy(p, l.xdc(d)) })
	if err == nil && l.rec != nil {
		l.journalDrop(descKey(d))
		l.journalDrop(descKey(d) + ":set")
		delete(l.descMap, d)
	}
	return err
}

// DnnCreateTensorDescriptor mirrors cudnnCreateTensorDescriptor.
func (l *Lib) DnnCreateTensorDescriptor(p *sim.Proc) (cudalibs.Descriptor, error) {
	return l.createDescriptor(p, l.cl.DnnCreateTensorDescriptor)
}

// DnnSetTensorDescriptor mirrors cudnnSetTensorNdDescriptor.
func (l *Lib) DnnSetTensorDescriptor(p *sim.Proc, d cudalibs.Descriptor) error {
	return l.setDescriptor(p, d, l.cl.DnnSetTensorDescriptor)
}

// DnnDestroyTensorDescriptor mirrors cudnnDestroyTensorDescriptor.
func (l *Lib) DnnDestroyTensorDescriptor(p *sim.Proc, d cudalibs.Descriptor) error {
	return l.destroyDescriptor(p, d, l.cl.DnnDestroyTensorDescriptor)
}

// DnnCreateFilterDescriptor mirrors cudnnCreateFilterDescriptor.
func (l *Lib) DnnCreateFilterDescriptor(p *sim.Proc) (cudalibs.Descriptor, error) {
	return l.createDescriptor(p, l.cl.DnnCreateFilterDescriptor)
}

// DnnSetFilterDescriptor mirrors cudnnSetFilterNdDescriptor.
func (l *Lib) DnnSetFilterDescriptor(p *sim.Proc, d cudalibs.Descriptor) error {
	return l.setDescriptor(p, d, l.cl.DnnSetFilterDescriptor)
}

// DnnDestroyFilterDescriptor mirrors cudnnDestroyFilterDescriptor.
func (l *Lib) DnnDestroyFilterDescriptor(p *sim.Proc, d cudalibs.Descriptor) error {
	return l.destroyDescriptor(p, d, l.cl.DnnDestroyFilterDescriptor)
}

// DnnCreateConvolutionDescriptor mirrors cudnnCreateConvolutionDescriptor.
func (l *Lib) DnnCreateConvolutionDescriptor(p *sim.Proc) (cudalibs.Descriptor, error) {
	return l.createDescriptor(p, l.cl.DnnCreateConvolutionDescriptor)
}

// DnnSetConvolutionDescriptor mirrors cudnnSetConvolutionNdDescriptor.
func (l *Lib) DnnSetConvolutionDescriptor(p *sim.Proc, d cudalibs.Descriptor) error {
	return l.setDescriptor(p, d, l.cl.DnnSetConvolutionDescriptor)
}

// DnnDestroyConvolutionDescriptor mirrors cudnnDestroyConvolutionDescriptor.
func (l *Lib) DnnDestroyConvolutionDescriptor(p *sim.Proc, d cudalibs.Descriptor) error {
	return l.destroyDescriptor(p, d, l.cl.DnnDestroyConvolutionDescriptor)
}

// DnnCreateActivationDescriptor mirrors cudnnCreateActivationDescriptor.
func (l *Lib) DnnCreateActivationDescriptor(p *sim.Proc) (cudalibs.Descriptor, error) {
	return l.createDescriptor(p, l.cl.DnnCreateActivationDescriptor)
}

// DnnSetActivationDescriptor mirrors cudnnSetActivationDescriptor.
func (l *Lib) DnnSetActivationDescriptor(p *sim.Proc, d cudalibs.Descriptor) error {
	return l.setDescriptor(p, d, l.cl.DnnSetActivationDescriptor)
}

// DnnDestroyActivationDescriptor mirrors cudnnDestroyActivationDescriptor.
func (l *Lib) DnnDestroyActivationDescriptor(p *sim.Proc, d cudalibs.Descriptor) error {
	return l.destroyDescriptor(p, d, l.cl.DnnDestroyActivationDescriptor)
}

// DnnCreatePoolingDescriptor mirrors cudnnCreatePoolingDescriptor.
func (l *Lib) DnnCreatePoolingDescriptor(p *sim.Proc) (cudalibs.Descriptor, error) {
	return l.createDescriptor(p, l.cl.DnnCreatePoolingDescriptor)
}

// DnnSetPoolingDescriptor mirrors cudnnSetPoolingNdDescriptor.
func (l *Lib) DnnSetPoolingDescriptor(p *sim.Proc, d cudalibs.Descriptor) error {
	return l.setDescriptor(p, d, l.cl.DnnSetPoolingDescriptor)
}

// DnnDestroyPoolingDescriptor mirrors cudnnDestroyPoolingDescriptor.
func (l *Lib) DnnDestroyPoolingDescriptor(p *sim.Proc, d cudalibs.Descriptor) error {
	return l.destroyDescriptor(p, d, l.cl.DnnDestroyPoolingDescriptor)
}
