package guest

// Guest-side wrappers for the GPU data plane (internal/dataplane): tensor
// export/import between chained functions and model broadcast. The import
// family establishes server-side state, so recoverable libraries journal a
// replay entry per call; exports, like ModelPersist, *remove* session state
// and instead retire the exported pointer's journal entries.

import (
	"dgsf/internal/cuda"
	"dgsf/internal/remoting"
	"dgsf/internal/sim"
)

// MemExport publishes a device allocation on the GPU server's data plane and
// returns its fabric-wide export ID. Ownership leaves the session: the
// pointer is dropped from local tracking and its journal entries are retired
// — a recovered session must not rebuild a tensor it no longer owns.
func (l *Lib) MemExport(p *sim.Proc, ptr cuda.DevPtr, tag string) (uint64, int64, error) {
	l.remote(p)
	var (
		export uint64
		size   int64
	)
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		export, size, err = l.cl.MemExport(p, l.xp(ptr), tag)
		return err
	})
	if err != nil {
		return 0, 0, err
	}
	sz := l.ptrSizes[ptr]
	delete(l.ptrSizes, ptr)
	l.dropPtrEntries(ptr, sz)
	return export, size, nil
}

// MemImport maps an export published on the session's own GPU server into
// the session (zero-copy on the same device, an NVLink clone across sibling
// devices). On replay after a failover the export is usually gone — the
// journal degrades to a plain allocation of the same size so the pointer
// stays valid, exactly like a ModelAttach miss.
func (l *Lib) MemImport(p *sim.Proc, export uint64) (cuda.DevPtr, int64, error) {
	l.remote(p)
	var (
		ptr  cuda.DevPtr
		size int64
	)
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		ptr, size, err = l.cl.MemImport(p, export)
		return err
	})
	if err != nil || ptr == 0 {
		return ptr, size, err
	}
	if l.rec != nil {
		v := l.newVirtPtr(size)
		l.ptrMap[v] = ptr
		sz := size
		l.journalPutPtr(ptrKey(v), v, func(p *sim.Proc) error {
			rp, rsz, err := l.cl.MemImport(p, export)
			if err == nil && rp != 0 && rsz == sz {
				l.ptrMap[v] = rp
				return nil
			}
			if err != nil && !remoting.IsConnFault(err) {
				err = nil // export gone or unreachable: fall back to Malloc
			}
			if err != nil {
				return err
			}
			np, err := l.cl.Malloc(p, sz)
			if err != nil {
				return err
			}
			l.ptrMap[v] = np
			return nil
		})
		ptr = v
	}
	l.ptrSizes[ptr] = size
	return ptr, size, nil
}

// PeerCopy pulls an export from another GPU server across the data-plane
// fabric into a fresh session allocation. Journaled like MemImport, with the
// same Malloc degradation on replay.
func (l *Lib) PeerCopy(p *sim.Proc, export uint64) (cuda.DevPtr, int64, error) {
	l.remote(p)
	var (
		ptr  cuda.DevPtr
		size int64
	)
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		ptr, size, err = l.cl.PeerCopy(p, export)
		return err
	})
	if err != nil || ptr == 0 {
		return ptr, size, err
	}
	if l.rec != nil {
		v := l.newVirtPtr(size)
		l.ptrMap[v] = ptr
		sz := size
		l.journalPutPtr(ptrKey(v), v, func(p *sim.Proc) error {
			rp, rsz, err := l.cl.PeerCopy(p, export)
			if err == nil && rp != 0 && rsz == sz {
				l.ptrMap[v] = rp
				return nil
			}
			if err != nil && !remoting.IsConnFault(err) {
				err = nil // export consumed or source dead: fall back to Malloc
			}
			if err != nil {
				return err
			}
			np, err := l.cl.Malloc(p, sz)
			if err != nil {
				return err
			}
			l.ptrMap[v] = np
			return nil
		})
		ptr = v
	}
	l.ptrSizes[ptr] = size
	return ptr, size, nil
}

// ModelBroadcast asks the API server for a fan-out copy of the function's
// model: a single host-staged read for the first session on the GPU server,
// a device-to-device clone for the rest. Tracked and journaled exactly like
// ModelAttach — on replay a miss degrades to a plain allocation restored by
// the journaled uploads that follow.
func (l *Lib) ModelBroadcast(p *sim.Proc) (cuda.DevPtr, int64, int, error) {
	l.remote(p)
	var (
		ptr  cuda.DevPtr
		size int64
		src  int
	)
	err := l.reliably(p, func(p *sim.Proc) error {
		var err error
		ptr, size, src, err = l.cl.ModelBroadcast(p)
		return err
	})
	if err != nil || ptr == 0 {
		return ptr, size, src, err
	}
	if l.rec != nil {
		v := l.newVirtPtr(size)
		l.ptrMap[v] = ptr
		sz := size
		l.journalPutPtr(ptrKey(v), v, func(p *sim.Proc) error {
			rp, rsz, _, err := l.cl.ModelBroadcast(p)
			if err == nil && rp != 0 && rsz == sz {
				l.ptrMap[v] = rp
				return nil
			}
			if err != nil && !remoting.IsConnFault(err) {
				err = nil // semantic broadcast miss: fall back to Malloc
			}
			if err != nil {
				return err
			}
			np, err := l.cl.Malloc(p, sz)
			if err != nil {
				return err
			}
			l.ptrMap[v] = np
			return nil
		})
		ptr = v
	}
	l.ptrSizes[ptr] = size
	return ptr, size, src, nil
}
