package guest

import (
	"errors"
	"fmt"
	"time"

	"dgsf/internal/cuda"
	"dgsf/internal/cudalibs"
	"dgsf/internal/remoting"
	"dgsf/internal/remoting/wire"
	"dgsf/internal/sim"
)

// Session recovery. A recoverable guest library survives the loss of its API
// server: it virtualizes every server-issued handle, keeps an idempotent
// replay journal of the calls that established session state, and on a
// transport fault redials (through a backend-supplied policy), replays the
// journal against the fresh session, re-sends the pipelined submissions that
// were never covered by a fence, and retries the interrupted call.
//
// What is NOT replayed, by design: kernel launches, memsets and
// device-to-device copies. Their effects are intermediate device state that
// DGSF functions recompute from replayed inputs — functions are assumed
// idempotent within a phase, the same assumption serverless platforms make
// when they re-execute a function after a worker loss.

// ErrSessionLost is returned (wrapped) when recovery exhausted its redial
// budget without re-establishing a session.
var ErrSessionLost = errors.New("guest: session lost, recovery exhausted")

// RedialFunc produces a fresh transport to a healthy API server. It is
// called with the guest's process so backoff and lease re-acquisition run on
// simulated time. Returning an error counts against the attempt budget.
type RedialFunc func(p *sim.Proc) (remoting.Caller, error)

// RecoveryConfig tunes the crash-recovery behavior of a recoverable guest.
type RecoveryConfig struct {
	// Redial re-acquires a session endpoint after a transport fault.
	Redial RedialFunc
	// MaxAttempts bounds redials per recovery episode (default 5).
	MaxAttempts int
	// BackoffBase is the first retry delay; it doubles per attempt up to
	// BackoffCap, with +/-50% deterministic jitter from the proc's RNG.
	BackoffBase time.Duration
	// BackoffCap caps the exponential backoff (default 100ms).
	BackoffCap time.Duration
	// CallDeadline bounds every synchronous round trip; a reply that does
	// not arrive in time is treated as a connection fault. Zero disables
	// per-call deadlines (faults are then detected only on closed
	// transports).
	CallDeadline time.Duration
	// FenceLag bounds how stale the pipelined lane may run: if the oldest
	// unfenced submission is older than FenceLag when the next one is
	// issued, a fence is forced first so latched errors (and dead
	// connections) surface promptly. Zero disables the staleness bound.
	FenceLag time.Duration
}

// maxCallRecoveries bounds how many distinct recovery episodes a single
// interposed call may trigger before giving up.
const maxCallRecoveries = 3

// Virtual handle namespaces. A recoverable guest never exposes server-issued
// handles to the application: recovered sessions mint different ones (and a
// different server has a different VA allocator), so the guest hands out
// stable virtual IDs and translates at encode time.
const (
	virtPtrBase    = 0x7e00_0000_0000 // device pointers, bump-allocated
	virtFnBase     = 0x5e00_0000_0000 // kernel function pointers
	virtHostBase   = 0x6b00_0000_0000 // host (pinned) allocations
	virtStreamBase = 0x6600_0000      // streams
	virtEventBase  = 0x6700_0000      // events
	virtDnnBase    = 0x6800_0000      // cuDNN handles
	virtBlasBase   = 0x6900_0000      // cuBLAS handles
	virtDescBase   = 0x6a00_0000      // cuDNN descriptors (remoted mode)
)

// journalEntry is one state-establishing call in the replay journal. Entries
// are replayed in original order; superseded or released entries are marked
// dead in place so replacement cannot reorder a call before state it uses.
type journalEntry struct {
	key    string
	base   cuda.DevPtr // owning allocation for content uploads, 0 otherwise
	dead   bool
	replay func(p *sim.Proc) error
}

// batchOp is a deferred batched call in closure form: the encode runs at
// flush time so handle translation reflects the current session, and onDone
// runs once the batch round trip confirms execution.
type batchOp struct {
	app    func(e *wire.Encoder)
	onDone func()
}

// asyncOp mirrors one in-flight pipelined submission so it can be re-sent
// against a recovered session; onDone runs at the first successful fence.
type asyncOp struct {
	app     func(e *wire.Encoder)
	reqData int64
	onDone  func()
}

// NewRecoverable returns a guest library that recovers from API server
// failures according to rc. Handle virtualization, journaling and per-call
// deadlines are active only on libraries built through this constructor; New
// keeps the exact non-recoverable fast paths.
func NewRecoverable(t remoting.Caller, opt Opt, rc RecoveryConfig) *Lib {
	l := New(t, opt)
	if rc.MaxAttempts <= 0 {
		rc.MaxAttempts = 5
	}
	if rc.BackoffBase <= 0 {
		rc.BackoffBase = time.Millisecond
	}
	if rc.BackoffCap <= 0 {
		rc.BackoffCap = 100 * time.Millisecond
	}
	l.rec = &rc
	l.ptrMap = make(map[cuda.DevPtr]cuda.DevPtr)
	l.streamMap = make(map[cuda.StreamHandle]cuda.StreamHandle)
	l.eventMap = make(map[cuda.EventHandle]cuda.EventHandle)
	l.dnnMap = make(map[cudalibs.DNNHandle]cudalibs.DNNHandle)
	l.blasMap = make(map[cudalibs.BLASHandle]cudalibs.BLASHandle)
	l.fnMap = make(map[cuda.FnPtr]cuda.FnPtr)
	l.descMap = make(map[cudalibs.Descriptor]cudalibs.Descriptor)
	l.hostMap = make(map[uint64]uint64)
	l.journalKeys = make(map[string]*journalEntry)
	l.adoptTransport(t)
	return l
}

// adoptTransport points the library at a (re)dialed transport, wrapping the
// synchronous lane with the per-call deadline when one is configured.
func (l *Lib) adoptTransport(t remoting.Caller) {
	l.conn = t
	l.cl.T = t
	if l.rec != nil && l.rec.CallDeadline > 0 {
		if _, ok := t.(remoting.DeadlineCaller); ok {
			l.cl.T = &deadlineWrap{inner: t, d: l.rec.CallDeadline}
		}
	}
	if ac, ok := t.(remoting.AsyncCaller); ok {
		l.async = ac
	} else {
		l.async = nil
	}
}

// deadlineWrap bounds every synchronous round trip on transports that
// support reply deadlines, converting a silently-dead server into a typed
// fault the recovery path can act on.
type deadlineWrap struct {
	inner remoting.Caller
	d     time.Duration
}

func (w *deadlineWrap) Roundtrip(p *sim.Proc, req []byte, reqData int64) ([]byte, error) {
	return w.inner.(remoting.DeadlineCaller).RoundtripTimeout(p, req, reqData, w.d)
}

func (w *deadlineWrap) Close() { w.inner.Close() }

// --- virtual handle minting and translation ---

func (l *Lib) newVirt() uint64 {
	l.nextVirt++
	return l.nextVirt
}

// newVirtPtr mints a stable guest-virtual device pointer for an allocation
// of the given size. 4 KiB alignment keeps interior-pointer arithmetic
// exact across ranges.
func (l *Lib) newVirtPtr(size int64) cuda.DevPtr {
	v := cuda.DevPtr(virtPtrBase + l.nextVA)
	l.nextVA += (size + 4095) &^ 4095
	if size == 0 {
		l.nextVA += 4096
	}
	return v
}

// xp translates a guest-virtual device pointer (base or interior) to the
// current session's real pointer. Identity on non-recoverable libraries.
func (l *Lib) xp(v cuda.DevPtr) cuda.DevPtr {
	if l.rec == nil || v == 0 {
		return v
	}
	if r, ok := l.ptrMap[v]; ok {
		return r
	}
	for base, size := range l.ptrSizes {
		if v > base && uint64(v) < uint64(base)+uint64(size) {
			if r, ok := l.ptrMap[base]; ok {
				return r + (v - base)
			}
		}
	}
	return v
}

func (l *Lib) xs(v cuda.StreamHandle) cuda.StreamHandle {
	if l.rec == nil || v == 0 {
		return v
	}
	if r, ok := l.streamMap[v]; ok {
		return r
	}
	return v
}

func (l *Lib) xe(v cuda.EventHandle) cuda.EventHandle {
	if l.rec == nil || v == 0 {
		return v
	}
	if r, ok := l.eventMap[v]; ok {
		return r
	}
	return v
}

func (l *Lib) xdn(v cudalibs.DNNHandle) cudalibs.DNNHandle {
	if l.rec == nil {
		return v
	}
	if r, ok := l.dnnMap[v]; ok {
		return r
	}
	return v
}

func (l *Lib) xbl(v cudalibs.BLASHandle) cudalibs.BLASHandle {
	if l.rec == nil {
		return v
	}
	if r, ok := l.blasMap[v]; ok {
		return r
	}
	return v
}

func (l *Lib) xf(v cuda.FnPtr) cuda.FnPtr {
	if l.rec == nil {
		return v
	}
	if r, ok := l.fnMap[v]; ok {
		return r
	}
	return v
}

func (l *Lib) xdc(v cudalibs.Descriptor) cudalibs.Descriptor {
	if l.rec == nil {
		return v
	}
	if r, ok := l.descMap[v]; ok {
		return r
	}
	return v
}

func (l *Lib) xhost(v uint64) uint64 {
	if l.rec == nil {
		return v
	}
	if r, ok := l.hostMap[v]; ok {
		return r
	}
	return v
}

// xlp translates a LaunchParams for the wire. The Mutates slice is copied:
// the caller's slice must not observe translated pointers.
func (l *Lib) xlp(lp cuda.LaunchParams) cuda.LaunchParams {
	if l.rec == nil {
		return lp
	}
	lp.Fn = l.xf(lp.Fn)
	lp.Stream = l.xs(lp.Stream)
	if len(lp.Mutates) > 0 {
		m := make([]cuda.DevPtr, len(lp.Mutates))
		for i, v := range lp.Mutates {
			m[i] = l.xp(v)
		}
		lp.Mutates = m
	}
	return lp
}

func (l *Lib) xptrs(bufs []cuda.DevPtr) []cuda.DevPtr {
	if l.rec == nil || len(bufs) == 0 {
		return bufs
	}
	out := make([]cuda.DevPtr, len(bufs))
	for i, v := range bufs {
		out[i] = l.xp(v)
	}
	return out
}

func (l *Lib) xdescs(descs []uint64) []uint64 {
	if l.rec == nil || len(descs) == 0 {
		return descs
	}
	out := make([]uint64, len(descs))
	for i, v := range descs {
		out[i] = uint64(l.xdc(cudalibs.Descriptor(v)))
	}
	return out
}

// --- journal ---

func ptrKey(v cuda.DevPtr) string          { return fmt.Sprintf("ptr:%x", uint64(v)) }
func streamKey(v cuda.StreamHandle) string { return fmt.Sprintf("stream:%x", uint64(v)) }
func eventKey(v cuda.EventHandle) string   { return fmt.Sprintf("event:%x", uint64(v)) }
func dnnKey(v cudalibs.DNNHandle) string   { return fmt.Sprintf("dnn:%x", uint64(v)) }
func blasKey(v cudalibs.BLASHandle) string { return fmt.Sprintf("blas:%x", uint64(v)) }
func descKey(v cudalibs.Descriptor) string { return fmt.Sprintf("desc:%x", uint64(v)) }
func hostKey(v uint64) string              { return fmt.Sprintf("host:%x", v) }
func h2dKey(dst cuda.DevPtr, size int64) string {
	return fmt.Sprintf("h2d:%x:%x", uint64(dst), size)
}

// journalPut records (or replaces) a state-establishing call. Replacement
// appends and kills the old entry rather than updating in place: the new
// call may reference state created after the original (a re-bound stream,
// say), and replay order must respect that.
func (l *Lib) journalPut(key string, replay func(p *sim.Proc) error) {
	l.journalPutPtr(key, 0, replay)
}

func (l *Lib) journalPutPtr(key string, base cuda.DevPtr, replay func(p *sim.Proc) error) {
	if l.rec == nil {
		return
	}
	if old, ok := l.journalKeys[key]; ok {
		old.dead = true
	}
	en := &journalEntry{key: key, base: base, replay: replay}
	l.journal = append(l.journal, en)
	l.journalKeys[key] = en
	l.stats.Journaled++
}

// journalDrop kills the entry for a released resource.
func (l *Lib) journalDrop(key string) {
	if l.rec == nil {
		return
	}
	if en, ok := l.journalKeys[key]; ok {
		en.dead = true
		delete(l.journalKeys, key)
	}
}

// dropPtrEntries kills the allocation entry for ptr and every content upload
// targeting it. Called when the allocation leaves the session (Free,
// ModelPersist).
func (l *Lib) dropPtrEntries(ptr cuda.DevPtr, size int64) {
	if l.rec == nil {
		return
	}
	l.journalDrop(ptrKey(ptr))
	for _, en := range l.journal {
		if !en.dead && en.base != 0 && en.base >= ptr && uint64(en.base) < uint64(ptr)+uint64(size) {
			en.dead = true
			delete(l.journalKeys, en.key)
		}
	}
	delete(l.ptrMap, ptr)
}

// replayJournal re-establishes session state on a fresh connection.
func (l *Lib) replayJournal(p *sim.Proc) error {
	for _, en := range l.journal {
		if en.dead {
			continue
		}
		if err := en.replay(p); err != nil {
			return err
		}
		l.stats.Replayed++
	}
	return nil
}

// resendUnfenced re-submits the pipelined calls issued after the last
// successful fence. Encoding runs fresh so translation picks up the
// recovered session's handles.
func (l *Lib) resendUnfenced(p *sim.Proc) error {
	l.asyncInFlight = 0
	if len(l.unfenced) == 0 {
		return nil
	}
	if l.async == nil {
		return errors.New("guest: recovered transport lacks the pipelined lane")
	}
	for _, op := range l.unfenced {
		var e wire.Encoder
		e.U16(remoting.CallAsync)
		op.app(&e)
		if err := l.async.Submit(p, e.Bytes(), op.reqData); err != nil {
			return err
		}
		l.asyncInFlight++
	}
	return nil
}

// clearUnfenced retires the tracked pipelined window. On success the
// deferred completion hooks (journal retirements, handle-map cleanup) run in
// submission order.
func (l *Lib) clearUnfenced(success bool) {
	if l.rec == nil {
		return
	}
	if success {
		for _, op := range l.unfenced {
			if op.onDone != nil {
				op.onDone()
			}
		}
	}
	l.unfenced = l.unfenced[:0]
	l.oldestUnfenced = 0
}

// --- recovery driver ---

// reliably runs one synchronous remoted call, recovering the session and
// retrying when the transport faults. Non-fault errors (CUDA status codes)
// pass through untouched. On a non-recoverable library, or when recovery is
// exhausted, a transport fault surfaces as cudaErrorDevicesUnavailable —
// what a native runtime reports when its device disappears.
func (l *Lib) reliably(p *sim.Proc, fn func(p *sim.Proc) error) error {
	if l.rec != nil && l.lost {
		return cuda.ErrDevicesUnavailable
	}
	err := fn(p)
	if err == nil || !remoting.IsConnFault(err) {
		return err
	}
	if l.rec == nil || l.recovering {
		l.lastError = int(cuda.ErrDevicesUnavailable)
		return cuda.ErrDevicesUnavailable
	}
	for tries := 0; tries < maxCallRecoveries; tries++ {
		if rerr := l.recoverSession(p); rerr != nil {
			break
		}
		err = fn(p)
		if err == nil || !remoting.IsConnFault(err) {
			return err
		}
	}
	l.lastError = int(cuda.ErrDevicesUnavailable)
	return cuda.ErrDevicesUnavailable
}

// recoverSession redials, replays the journal and re-sends unfenced work,
// with capped exponential backoff and deterministic jitter between attempts.
// The sticky cudaGetLastError value observed before the fault is preserved:
// recovery is transparent to the application's error-model view.
func (l *Lib) recoverSession(p *sim.Proc) error {
	rec := l.rec
	l.stats.Recoveries++
	sticky := l.lastError
	l.recovering = true
	defer func() { l.recovering = false }()
	if l.conn != nil {
		l.conn.Close()
	}
	for attempt := 0; attempt < rec.MaxAttempts; attempt++ {
		if attempt > 0 {
			d := rec.BackoffBase << (attempt - 1)
			if d > rec.BackoffCap {
				d = rec.BackoffCap
			}
			// Uniform jitter in [d/2, 3d/2): deterministic per proc.
			d = d/2 + time.Duration(p.Rand().Int63n(int64(d)+1))
			p.Sleep(d)
		}
		l.stats.Redials++
		nc, err := rec.Redial(p)
		if err != nil || nc == nil {
			continue
		}
		l.adoptTransport(nc)
		if err := l.replayJournal(p); err != nil {
			if remoting.IsConnFault(err) {
				l.conn.Close()
				continue
			}
			l.lost = true
			return fmt.Errorf("%w: journal replay: %v", ErrSessionLost, err)
		}
		if err := l.resendUnfenced(p); err != nil {
			if remoting.IsConnFault(err) {
				l.conn.Close()
				continue
			}
			l.lost = true
			return fmt.Errorf("%w: resend: %v", ErrSessionLost, err)
		}
		l.lastError = sticky
		return nil
	}
	l.lost = true
	return ErrSessionLost
}
