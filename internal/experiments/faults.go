package experiments

import (
	"errors"
	"fmt"
	"time"

	"dgsf/internal/dataplane"
	"dgsf/internal/faas"
	"dgsf/internal/faults"
	"dgsf/internal/gpuserver"
	"dgsf/internal/guest"
	"dgsf/internal/sim"
	"dgsf/internal/workloads"
)

// Fault-tolerance experiment: the smaller-workload mix runs under injected
// control-plane failures — broken/stalled/corrupted guest connections,
// API server crashes detected by heartbeats, and a whole-GPU-server failure
// the multi-server backend must route around. Guests run in recoverable
// mode (idempotent session replay + redial); every scenario is deterministic
// per seed, and a virtual-time limit converts any hang into a hard failure
// instead of a silent stall.

// FaultsResult is the outcome of one fault scenario.
type FaultsResult struct {
	Scenario    string
	Invocations int
	Failed      int // invocations that ended with an error
	Recovered   int // invocations that recovered at least once
	Recoveries  int // total recovery episodes across invocations
	Shed        int // invocations refused for (degraded) capacity reasons

	// Injection counters, from the injector.
	Killed    int // API server crashes
	FailedGS  int // whole-GPU-server failures
	Dropped   int // connections severed
	Stalled   int // connections stalled past the call deadline
	Corrupted int // connections with an injected corrupt frame

	ProviderE2E time.Duration
	E2ESum      time.Duration

	// Pipeline-scenario extras (zero elsewhere): chains that completed via
	// the GPU-side handoff and chains that fell back to the host bounce
	// after the injected failure.
	GPUChains int
	Fallbacks int
}

// faultScenario pairs a name with an injection plan builder; the plan may
// depend on the number of hosted API servers.
type faultScenario struct {
	name     string
	servers  int // GPU servers in the deployment
	plan     faults.Plan
	pipeline bool // run chained pipelines over the data plane instead of the mix
}

// faultsScenarios returns the scenario ladder: a no-fault control, then one
// fault class at a time, then a combined storm.
func faultsScenarios() []faultScenario {
	return []faultScenario{
		{name: "baseline", servers: 1},
		{
			name:    "conn-drops",
			servers: 1,
			plan:    faults.Plan{DropRate: 0.35, DropAfter: 150 * time.Millisecond, CorruptRate: 0.15},
		},
		{
			name:    "api-crash",
			servers: 1,
			plan: faults.Plan{Events: []faults.Event{
				{At: 4 * time.Second, Kind: faults.KillAPIServer, Server: 0},
				{At: 12 * time.Second, Kind: faults.KillAPIServer, Server: 2},
			}},
		},
		{
			name:    "gpu-server-fail",
			servers: 2,
			plan: faults.Plan{Events: []faults.Event{
				// Server 0 is the least-loaded tie-break favourite, so failing
				// it mid-run kills active sessions: their leases are revoked
				// and the guests must fail over to the surviving server.
				{At: 20 * time.Second, Kind: faults.FailGPUServer, Server: 0},
			}},
		},
		{
			name:     "pipeline-crash",
			servers:  2,
			pipeline: true,
			plan: faults.Plan{Events: []faults.Event{
				// PickFixed routes chains to server 0. 12.3s is inside the
				// second chain's handoff window on every CI seed: its
				// producer has exported the tensor on server 0 and finished,
				// and its consumer is still downloading. Failing the machine
				// there strands a live export — the consumer's import must
				// fail promptly (not hang) and the chain must complete via
				// the host-bounce fallback on the surviving server.
				{At: 12300 * time.Millisecond, Kind: faults.FailGPUServer, Server: 0},
			}},
		},
		{
			name:    "storm",
			servers: 2,
			plan: faults.Plan{
				DropRate:    0.25,
				DropAfter:   200 * time.Millisecond,
				StallRate:   0.10,
				StallFor:    90 * time.Second,
				CorruptRate: 0.10,
				Events: []faults.Event{
					{At: 5 * time.Second, Kind: faults.KillAPIServer, Server: 1},
					{At: 9 * time.Second, Kind: faults.FailGPUServer, Server: 1},
				},
			},
		},
	}
}

// RunFaults executes every fault scenario with the given seed and returns
// one result per scenario, the no-fault baseline first (its E2E numbers are
// the reference the deltas of the faulty runs are read against).
func RunFaults(seed int64) []FaultsResult {
	var out []FaultsResult
	for _, sc := range faultsScenarios() {
		out = append(out, runFaultScenario(seed, sc))
	}
	return out
}

func runFaultScenario(seed int64, sc faultScenario) FaultsResult {
	if sc.pipeline {
		return runPipelineFaultScenario(seed, sc)
	}
	res := FaultsResult{Scenario: sc.name}
	e := sim.NewEngine(seed)
	// Zero hangs under injection is an acceptance criterion, not a hope: a
	// run that stalls past the limit panics instead of wedging the suite.
	e.SetTimeLimit(2 * time.Hour)
	e.Run("faults", func(p *sim.Proc) {
		var servers []*gpuserver.GPUServer
		for i := 0; i < sc.servers; i++ {
			gcfg := gpuserver.DefaultConfig()
			gcfg.GPUs = 2
			gcfg.ServersPerGPU = 2
			gcfg.HeartbeatPeriod = 50 * time.Millisecond
			gcfg.HeartbeatMisses = 3
			gcfg.QueueDeadline = 5 * time.Minute
			gs := gpuserver.New(e, gcfg)
			gs.Start(p)
			servers = append(servers, gs)
		}

		inj := faults.NewInjector(e, sc.plan, servers)
		inj.Arm(p)

		backend := faas.NewMultiBackend(e, servers, faas.PickLeastLoaded, faas.OpenFaaSEnv())
		backend.DialHook = inj.WrapConn
		rc := guestRecoveryDefaults()
		backend.Recovery = &rc

		var fns []*faas.Function
		for _, spec := range workloads.Smaller() {
			f := spec.Function()
			for i := 0; i < 4; i++ {
				fns = append(fns, f)
			}
		}
		p.Rand().Shuffle(len(fns), func(i, j int) { fns[i], fns[j] = fns[j], fns[i] })
		backend.SubmitSequence(p, fns, faas.ExponentialArrivals(p, 2*time.Second))
		backend.Drain(p)

		for _, inv := range backend.Invocations() {
			res.Invocations++
			if inv.Err != nil {
				res.Failed++
				if isCapacityErr(inv.Err) {
					res.Shed++
				}
			}
			if inv.Recoveries > 0 {
				res.Recovered++
			}
			res.Recoveries += inv.Recoveries
		}
		res.ProviderE2E = backend.ProviderEndToEnd()
		res.E2ESum = backend.E2ESum()
		res.Killed = inj.Killed
		res.FailedGS = inj.Failed
		res.Dropped = inj.Dropped
		res.Stalled = inj.Stalled
		res.Corrupted = inj.Corrupted
	})
	return res
}

// runPipelineFaultScenario drives chained detect→identify pipelines over the
// GPU-side data plane while a GPU server fails mid-chain. The acceptance bar
// is zero failed chains and zero hangs: a chain whose handoff dies with the
// machine falls back to the bounce path (or recovers onto the survivor) and
// still completes.
func runPipelineFaultScenario(seed int64, sc faultScenario) FaultsResult {
	res := FaultsResult{Scenario: sc.name}
	e := sim.NewEngine(seed)
	e.SetTimeLimit(2 * time.Hour)
	fab := dataplane.NewFabric(dataplane.DefaultConfig(), nil)
	e.Run("faults-pipeline", func(p *sim.Proc) {
		var servers []*gpuserver.GPUServer
		for i := 0; i < sc.servers; i++ {
			gcfg := gpuserver.DefaultConfig()
			gcfg.GPUs = 1
			gcfg.ServersPerGPU = 2
			gcfg.HeartbeatPeriod = 50 * time.Millisecond
			gcfg.HeartbeatMisses = 3
			gcfg.QueueDeadline = 5 * time.Minute
			gcfg.Plane = fab.NewPlane(fmt.Sprintf("gpu-%d", i))
			gs := gpuserver.New(e, gcfg)
			gs.Start(p)
			servers = append(servers, gs)
		}

		inj := faults.NewInjector(e, sc.plan, servers)
		inj.Arm(p)

		backend := faas.NewMultiBackend(e, servers, faas.PickFixed, faas.OpenFaaSEnv())
		backend.DialHook = inj.WrapConn
		rc := guestRecoveryDefaults()
		backend.Recovery = &rc

		h := &dataplane.Handoff{}
		spec := faas.ChainSpec{
			Producer: workloads.DetectStage(h),
			Consumer: workloads.IdentifyStage(h),
			Handoff:  h,
			Fabric:   fab,
		}
		const chains = 6
		start := p.Now()
		for i := 0; i < chains; i++ {
			r := backend.InvokeChain(p, spec)
			res.Invocations++
			if r.Err != nil {
				res.Failed++
			} else if r.FellBack {
				res.Fallbacks++
			} else {
				res.GPUChains++
			}
			recov := 0
			for _, inv := range []*faas.Invocation{r.Producer, r.Consumer} {
				if inv != nil {
					recov += inv.Recoveries
				}
			}
			if recov > 0 {
				res.Recovered++
			}
			res.Recoveries += recov
			res.E2ESum += r.E2E()
		}
		res.ProviderE2E = p.Now() - start
		res.Killed = inj.Killed
		res.FailedGS = inj.Failed
		res.Dropped = inj.Dropped
		res.Stalled = inj.Stalled
		res.Corrupted = inj.Corrupted
	})
	return res
}

// guestRecoveryDefaults is the recovery policy the experiment runs under.
// The call deadline is sized far above any legitimate synchronous call
// (fences included) so it only ever fires on dead or stalled servers, and
// the fence lag keeps the pipelined lane from running blind for long.
func guestRecoveryDefaults() guest.RecoveryConfig {
	return guest.RecoveryConfig{
		MaxAttempts:  6,
		BackoffBase:  5 * time.Millisecond,
		BackoffCap:   500 * time.Millisecond,
		CallDeadline: 60 * time.Second,
		FenceLag:     time.Second,
	}
}

func isCapacityErr(err error) bool {
	return errors.Is(err, faas.ErrNoCapacity)
}
