package experiments

import (
	"fmt"
	"time"

	"dgsf/internal/dataplane"
	"dgsf/internal/faas"
	"dgsf/internal/gpuserver"
	"dgsf/internal/metrics"
	"dgsf/internal/remoting"
	"dgsf/internal/sim"
	"dgsf/internal/workloads"
)

// Pipeline experiment: the GPU-side data plane for chained functions. Three
// parts, each comparing the data-plane path against the historical
// bounce-through-host baseline in an otherwise identical world:
//
//   - Same-server handoff: detect→identify on one GPU server (two API
//     servers sharing the GPU). The intermediate tensor moves by
//     MemExport/MemImport — a zero-copy VMM remap — versus a D2H copy, an
//     object-store round trip and an H2D re-upload.
//   - Cross-server handoff: producer and consumer pinned to different GPU
//     servers, across a sweep of guest↔server RTTs. The tensor rides the
//     bandwidth-modeled peer fabric (PeerCopy) versus the same bounce.
//   - Model fan-out: an N-way ensemble burst on one GPU server. The first
//     session seeds the model from the host tier once and every other
//     session clones it device-to-device (ModelBroadcast), versus N
//     independent host-to-device uploads contending on one copy engine.
//
// Every part must hold for every seed: the experiment reports strict
// comparisons, and CI greps them on seeds 1, 2, 3 and 7.

// PipelineCrossPoint is one RTT point of the cross-server sweep.
type PipelineCrossPoint struct {
	RTT        time.Duration
	Peer       time.Duration // chain E2E via PeerCopy
	Bounce     time.Duration // chain E2E via the objstore bounce
	PeerCopies int64
}

// PipelineResult is the outcome of the full pipeline experiment.
type PipelineResult struct {
	// Part A: same-server chain.
	SameHandoff time.Duration
	SameBounce  time.Duration
	Exports     int64
	Imports     int64
	BypassHits  int64
	Fallbacks   int64

	// Part B: cross-server chain across RTTs.
	Cross []PipelineCrossPoint

	// Part C: N-way broadcast fan-out.
	FanOut          int
	BroadcastE2E    time.Duration
	BaselineE2E     time.Duration
	BroadcastLoads  int64
	BroadcastClones int64

	// MetricsTable renders the same-server run's data-plane counters.
	MetricsTable string
}

// RunPipeline executes all three parts with the given seed.
func RunPipeline(seed int64) PipelineResult {
	var res PipelineResult

	// Part A: same-server handoff vs bounce. The wire-stat delta around the
	// measured chain surfaces the remoting_* counters (bytes, frame versions,
	// hello outcomes) in the summary next to the data-plane counters.
	wireStart := remoting.SnapshotWireStats()
	handoff, reg := runPipelineChain(seed, pipelineChainOpts{})
	remoting.PublishWireStats(reg, remoting.SnapshotWireStats().Sub(wireStart))
	bounce, _ := runPipelineChain(seed, pipelineChainOpts{forceBounce: true})
	res.SameHandoff, res.SameBounce = handoff, bounce
	res.Exports = reg.Get(dataplane.CtrExports)
	res.Imports = reg.Get(dataplane.CtrImports)
	res.BypassHits = reg.Get(dataplane.CtrBypassHits)
	res.Fallbacks = reg.Get(dataplane.CtrFallbacks)
	res.MetricsTable = reg.String()

	// Part B: cross-server handoff vs bounce, across guest↔server RTTs.
	for _, rtt := range []time.Duration{
		200 * time.Microsecond, time.Millisecond, 5 * time.Millisecond,
	} {
		peer, preg := runPipelineChain(seed, pipelineChainOpts{cross: true, rtt: rtt})
		bnc, _ := runPipelineChain(seed, pipelineChainOpts{cross: true, rtt: rtt, forceBounce: true})
		res.Cross = append(res.Cross, PipelineCrossPoint{
			RTT:        rtt,
			Peer:       peer,
			Bounce:     bnc,
			PeerCopies: preg.Get(dataplane.CtrPeerCopies),
		})
	}

	// Part C: broadcast fan-out vs independent uploads.
	res.FanOut = 4
	var breg *metrics.Registry
	res.BroadcastE2E, breg = runPipelineBroadcast(seed, res.FanOut, true)
	res.BaselineE2E, _ = runPipelineBroadcast(seed, res.FanOut, false)
	res.BroadcastLoads = breg.Get(dataplane.CtrBroadcastLoads)
	res.BroadcastClones = breg.Get(dataplane.CtrBroadcastClones)
	return res
}

// pipelineChainOpts selects a chain-world variant.
type pipelineChainOpts struct {
	cross       bool          // two GPU servers, consumer forced off-producer
	forceBounce bool          // baseline: skip the GPU-side path
	rtt         time.Duration // guest↔API-server RTT override (0: env default)
}

// runPipelineChain builds one world, runs a warm-up chain and a measured
// chain, and returns the measured chain's E2E plus the fabric's registry.
func runPipelineChain(seed int64, opts pipelineChainOpts) (time.Duration, *metrics.Registry) {
	e := sim.NewEngine(seed)
	e.SetTimeLimit(time.Hour)
	reg := metrics.NewRegistry()
	fab := dataplane.NewFabric(dataplane.DefaultConfig(), reg)
	var e2e time.Duration

	e.Run("pipeline-chain", func(p *sim.Proc) {
		nServers := 1
		if opts.cross {
			nServers = 2
		}
		var servers []*gpuserver.GPUServer
		for i := 0; i < nServers; i++ {
			cfg := gpuserver.DefaultConfig()
			cfg.GPUs = 1
			if opts.cross {
				cfg.ServersPerGPU = 1
			} else {
				cfg.ServersPerGPU = 2 // producer and consumer share the GPU
			}
			cfg.Plane = fab.NewPlane(fmt.Sprintf("gpu-%d", i))
			gs := gpuserver.New(e, cfg)
			gs.Start(p)
			servers = append(servers, gs)
		}

		env := faas.OpenFaaSEnv()
		env.Download.JitterFrac = 0 // measured deltas are pure data-plane effects
		if opts.rtt > 0 {
			env.Net.RTT = opts.rtt
		}
		backend := faas.NewMultiBackend(e, servers, faas.PickFixed, env)

		h := &dataplane.Handoff{}
		spec := faas.ChainSpec{
			Producer:    workloads.DetectStage(h),
			Consumer:    workloads.IdentifyStage(h),
			Handoff:     h,
			Fabric:      fab,
			CrossServer: opts.cross,
			ForceBounce: opts.forceBounce,
		}
		for i := 0; i < 2; i++ { // warm-up chain, then the measured chain
			r := backend.InvokeChain(p, spec)
			if r.Err != nil {
				panic(r.Err)
			}
			e2e = r.E2E()
		}
	})
	return e2e, reg
}

// runPipelineBroadcast stages the ensemble model into one GPU server's host
// tier, then fires fanOut simultaneous ensemble members at it and measures
// the burst. withPlane toggles the data plane: without it ModelBroadcast
// misses and every member pays its own host-to-device upload.
func runPipelineBroadcast(seed int64, fanOut int, withPlane bool) (time.Duration, *metrics.Registry) {
	e := sim.NewEngine(seed)
	e.SetTimeLimit(time.Hour)
	reg := metrics.NewRegistry()
	fab := dataplane.NewFabric(dataplane.DefaultConfig(), reg)
	modelBytes := int64(104) * workloads.MB
	var e2e time.Duration

	e.Run("pipeline-broadcast", func(p *sim.Proc) {
		cfg := gpuserver.DefaultConfig()
		cfg.GPUs = 1
		cfg.ServersPerGPU = fanOut
		cfg.Cache.Enable = true
		cfg.Cache.DeviceBudget = -1 // host tier only: pins stage out at Bye
		if withPlane {
			cfg.Plane = fab.NewPlane("bcast-plane")
		}
		gs := gpuserver.New(e, cfg)
		gs.Start(p)

		env := faas.OpenFaaSEnv()
		env.Download.JitterFrac = 0
		backend := faas.NewBackend(e, gs, env)

		// Warm-up: one run persists the model; its Bye stages the working
		// set into the host tier, which is what ModelBroadcast seeds from.
		if inv := backend.Invoke(p, workloads.SeedEnsembleModel(modelBytes)); inv.Err != nil {
			panic(inv.Err)
		}

		start := p.Now()
		for i := 0; i < fanOut; i++ {
			backend.Submit(p, workloads.EnsembleMember(modelBytes))
		}
		backend.Drain(p)
		for _, inv := range backend.Invocations() {
			if inv.Err != nil {
				panic(inv.Err)
			}
		}
		e2e = p.Now() - start
	})
	return e2e, reg
}
