package experiments

import (
	"time"

	"dgsf/internal/faas"
	"dgsf/internal/gpu"
	"dgsf/internal/gpuserver"
	"dgsf/internal/sim"
	"dgsf/internal/workloads"
)

// Variant is a GPU-server sharing/placement configuration of §VIII-D.
type Variant struct {
	Name          string
	ServersPerGPU int
	Policy        gpuserver.Policy
	Migration     bool
}

// Variants returns the three configurations Tables III and IV compare.
func Variants() []Variant {
	return []Variant{
		{Name: "no-sharing", ServersPerGPU: 1, Policy: gpuserver.BestFit},
		{Name: "sharing-2-best-fit", ServersPerGPU: 2, Policy: gpuserver.BestFit},
		{Name: "sharing-2-worst-fit", ServersPerGPU: 2, Policy: gpuserver.WorstFit},
	}
}

// MixResult is the outcome of one mixed-workload run.
type MixResult struct {
	Variant     string
	Mix         string // "AW" (all workloads) or "SW" (smaller workloads)
	GPUs        int
	ProviderE2E time.Duration // first launch to last completion
	E2ESum      time.Duration // sum of every function's end-to-end time
	PerFn       map[string]faas.FnSummary
	MeanUtil    float64 // average GPU utilization across devices, %
	Migrations  int
}

// MixConfig parameterizes a mixed-workload run.
type MixConfig struct {
	Specs     []*workloads.Spec
	Instances int // invocations per workload
	GPUs      int
	Variant   Variant
	// Arrival process: exponential inter-arrival with MeanGap, or a burst
	// pattern when Bursts > 0.
	MeanGap  time.Duration
	Bursts   int
	BurstGap time.Duration
}

// RunMix executes one mixed-workload experiment: `Instances` invocations of
// each workload in a random but seed-consistent order (§VIII-D).
func RunMix(seed int64, cfg MixConfig) MixResult {
	res := MixResult{
		Variant: cfg.Variant.Name,
		GPUs:    cfg.GPUs,
		Mix:     mixName(cfg.Specs),
	}
	e := sim.NewEngine(seed)
	e.Run("mix", func(p *sim.Proc) {
		gcfg := gpuserver.DefaultConfig()
		gcfg.GPUs = cfg.GPUs
		gcfg.ServersPerGPU = cfg.Variant.ServersPerGPU
		gcfg.Policy = cfg.Variant.Policy
		gcfg.EnableMigration = cfg.Variant.Migration
		gs := gpuserver.New(e, gcfg)
		gs.Start(p)

		backend := faas.NewBackend(e, gs, faas.OpenFaaSEnv())

		// Build the invocation list: Instances copies of each workload,
		// shuffled deterministically.
		var fns []*faas.Function
		for _, spec := range cfg.Specs {
			f := spec.Function()
			for i := 0; i < cfg.Instances; i++ {
				fns = append(fns, f)
			}
		}
		p.Rand().Shuffle(len(fns), func(i, j int) { fns[i], fns[j] = fns[j], fns[i] })

		start := p.Now()
		if cfg.Bursts > 0 {
			per := len(fns) / cfg.Bursts
			for r := 0; r < cfg.Bursts; r++ {
				if r > 0 {
					p.Sleep(cfg.BurstGap)
				}
				for _, fn := range fns[r*per : (r+1)*per] {
					backend.Submit(p, fn)
				}
			}
		} else {
			backend.SubmitSequence(p, fns, faas.ExponentialArrivals(p, cfg.MeanGap))
		}
		backend.Drain(p)
		end := p.Now()

		for _, inv := range backend.Invocations() {
			if inv.Err != nil {
				panic("mix invocation failed: " + inv.Err.Error())
			}
		}
		res.ProviderE2E = backend.ProviderEndToEnd()
		res.E2ESum = backend.E2ESum()
		res.PerFn = backend.PerFunction()
		res.Migrations = gs.Migrations()
		var util float64
		for _, s := range gs.Samplers() {
			util += s.MeanUtil(start, end)
		}
		res.MeanUtil = util / float64(len(gs.Samplers()))
	})
	return res
}

// AverageMix runs the experiment `runs` times with consecutive seeds and
// averages the aggregate metrics, as the paper averages repeated runs.
// Per-function summaries and the migration count come from the first run.
func AverageMix(seed int64, runs int, cfg MixConfig) MixResult {
	if runs <= 0 {
		runs = 1
	}
	var acc MixResult
	for r := 0; r < runs; r++ {
		res := RunMix(seed+int64(r), cfg)
		if r == 0 {
			acc = res
		} else {
			acc.ProviderE2E += res.ProviderE2E
			acc.E2ESum += res.E2ESum
			acc.MeanUtil += res.MeanUtil
		}
	}
	acc.ProviderE2E /= time.Duration(runs)
	acc.E2ESum /= time.Duration(runs)
	acc.MeanUtil /= float64(runs)
	return acc
}

func mixName(specs []*workloads.Spec) string {
	if len(specs) == len(workloads.All()) {
		return "AW"
	}
	return "SW"
}

// Table3 reproduces Table III: provider end-to-end time and function E2E
// sum under high load (exponential inter-arrival, 2 s mean), for all
// workloads (AW) and the four smaller workloads (SW), with and without
// sharing, on four GPUs.
func Table3(seed int64) []MixResult {
	var out []MixResult
	for _, specs := range [][]*workloads.Spec{workloads.All(), workloads.Smaller()} {
		for _, v := range Variants() {
			out = append(out, AverageMix(seed, 3, MixConfig{
				Specs:     specs,
				Instances: 10,
				GPUs:      4,
				Variant:   v,
				MeanGap:   2 * time.Second,
			}))
		}
	}
	return out
}

// Fig5Row is one bar of Figure 5: a workload's mean queueing and execution
// delay under high load.
type Fig5Row struct {
	Mix      string
	Workload string
	Queue    time.Duration
	Exec     time.Duration
}

// Figure5 reproduces Figure 5: per-workload queueing and execution delay
// under high load (sharing with two API servers per GPU, best fit).
func Figure5(seed int64) []Fig5Row {
	var out []Fig5Row
	sharing := Variants()[1]
	for _, specs := range [][]*workloads.Spec{workloads.All(), workloads.Smaller()} {
		res := RunMix(seed, MixConfig{
			Specs:     specs,
			Instances: 10,
			GPUs:      4,
			Variant:   sharing,
			MeanGap:   2 * time.Second,
		})
		for _, spec := range specs {
			s := res.PerFn[spec.Name]
			out = append(out, Fig5Row{
				Mix:      res.Mix,
				Workload: spec.Name,
				Queue:    s.MeanQueue(),
				Exec:     s.MeanExec(),
			})
		}
	}
	return out
}

// Table4 reproduces Table IV: the same mixes under low load (exponential
// inter-arrival, 3 s mean) with four and with three GPUs.
func Table4(seed int64) []MixResult {
	var out []MixResult
	for _, gpus := range []int{4, 3} {
		for _, v := range Variants() {
			out = append(out, AverageMix(seed, 3, MixConfig{
				Specs:     workloads.All(),
				Instances: 10,
				GPUs:      gpus,
				Variant:   v,
				MeanGap:   3 * time.Second,
			}))
		}
	}
	return out
}

// Figure6 reproduces Figure 6: per-workload queueing and execution delay
// under low load (four GPUs, sharing best fit).
func Figure6(seed int64) []Fig5Row {
	var out []Fig5Row
	for _, v := range []Variant{Variants()[0], Variants()[1]} {
		res := RunMix(seed, MixConfig{
			Specs:     workloads.All(),
			Instances: 10,
			GPUs:      4,
			Variant:   v,
			MeanGap:   3 * time.Second,
		})
		for _, spec := range workloads.All() {
			s := res.PerFn[spec.Name]
			out = append(out, Fig5Row{
				Mix:      v.Name,
				Workload: spec.Name,
				Queue:    s.MeanQueue(),
				Exec:     s.MeanExec(),
			})
		}
	}
	return out
}

// Fig7Result is one configuration's burst run: total completion time, mean
// utilization, and the smoothed utilization series Figure 7 plots.
type Fig7Result struct {
	Variant     string
	ProviderE2E time.Duration
	MeanUtil    float64
	Series      [][]gpu.Sample // per GPU, moving average window 5
}

// Figure7 reproduces Figure 7 and the burst numbers of §VIII-D: ten bursts
// of all six workloads, two seconds apart, without sharing and with two API
// servers per GPU under best fit. Utilization samples are taken every
// 200 ms and smoothed with a window of five.
func Figure7(seed int64) []Fig7Result {
	var out []Fig7Result
	for _, v := range []Variant{Variants()[0], Variants()[1]} {
		r := Fig7Result{Variant: v.Name}
		e := sim.NewEngine(seed)
		e.Run("burst", func(p *sim.Proc) {
			gcfg := gpuserver.DefaultConfig()
			gcfg.GPUs = 4
			gcfg.ServersPerGPU = v.ServersPerGPU
			gcfg.Policy = v.Policy
			gs := gpuserver.New(e, gcfg)
			gs.Start(p)
			backend := faas.NewBackend(e, gs, faas.OpenFaaSEnv())
			var fns []*faas.Function
			for _, spec := range workloads.All() {
				fns = append(fns, spec.Function())
			}
			start := p.Now()
			backend.SubmitBursts(p, fns, 10, 2*time.Second)
			backend.Drain(p)
			end := p.Now()
			r.ProviderE2E = backend.ProviderEndToEnd()
			var util float64
			for _, s := range gs.Samplers() {
				util += s.MeanUtil(start, end)
				r.Series = append(r.Series, s.MovingAverage(5))
			}
			r.MeanUtil = util / float64(len(gs.Samplers()))
		})
		out = append(out, r)
	}
	return out
}
