package experiments

import (
	"testing"
	"time"
)

func TestCacheColdWarm(t *testing.T) {
	rows := CacheColdWarm(1)
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5 model workloads", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-18s cold{e2e %v dl %v load %v} warm-host{e2e %v dl %v load %v} warm-gpu{e2e %v dl %v load %v}",
			r.Workload,
			r.Cold.E2E, r.Cold.Download, r.Cold.Load,
			r.WarmHost.E2E, r.WarmHost.Download, r.WarmHost.Load,
			r.WarmGPU.E2E, r.WarmGPU.Download, r.WarmGPU.Load)
		// Warm invocations skip the model download: the repeat fetch is
		// latency-only for the model portion.
		if r.WarmGPU.Download >= r.Cold.Download {
			t.Errorf("%s: warm-GPU download %v not below cold %v", r.Workload, r.WarmGPU.Download, r.Cold.Download)
		}
		// The GPU-resident hit eliminates the model load phase: no
		// descriptor churn, no weight upload, no graph construction.
		if r.WarmGPU.Load*4 >= r.Cold.Load {
			t.Errorf("%s: warm-GPU load %v not well below cold load %v", r.Workload, r.WarmGPU.Load, r.Cold.Load)
		}
		// And the device tier beats restaging from host memory.
		if r.WarmGPU.Load >= r.WarmHost.Load {
			t.Errorf("%s: warm-GPU load %v not below warm-host load %v", r.Workload, r.WarmGPU.Load, r.WarmHost.Load)
		}
		// End to end: warm-GPU < cold, strictly.
		if r.WarmGPU.E2E >= r.Cold.E2E {
			t.Errorf("%s: warm-GPU E2E %v not below cold %v", r.Workload, r.WarmGPU.E2E, r.Cold.E2E)
		}
		// Warm-host always wins the download; it wins end-to-end only when
		// restaging the working set from host memory is cheaper than the
		// cold load phase (not so for facedetection, whose working set is
		// far larger than its model load cost).
		if r.WarmHost.Download >= r.Cold.Download {
			t.Errorf("%s: warm-host download %v not below cold %v", r.Workload, r.WarmHost.Download, r.Cold.Download)
		}
		if r.WarmHost.Load < r.Cold.Load && r.WarmHost.E2E >= r.Cold.E2E {
			t.Errorf("%s: warm-host E2E %v not below cold %v", r.Workload, r.WarmHost.E2E, r.Cold.E2E)
		}
	}
}

func TestCacheUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-load experiment")
	}
	rs := CacheUnderLoad(1)
	bf, loc := rs[0], rs[1]
	t.Logf("best-fit: provider %v e2esum %v stats %+v dlhits %d/%d", bf.ProviderE2E, bf.E2ESum, bf.Stats, bf.DownloadHits, bf.Invocations)
	t.Logf("locality: provider %v e2esum %v stats %+v dlhits %d/%d", loc.ProviderE2E, loc.E2ESum, loc.Stats, loc.DownloadHits, loc.Invocations)
	if loc.Stats.DeviceHitRate() <= bf.Stats.DeviceHitRate() {
		t.Errorf("locality device hit rate %.2f not above best-fit %.2f", loc.Stats.DeviceHitRate(), bf.Stats.DeviceHitRate())
	}
	if loc.Stats.DeviceHits == 0 {
		t.Error("locality produced no GPU-resident hits")
	}
	_ = time.Second
}
