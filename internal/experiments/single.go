// Package experiments regenerates every table and figure of the paper's
// evaluation (§VIII) on the simulated substrate. Each exported function is
// one experiment; cmd/dgsf-bench prints them in the paper's layout and
// bench_test.go wraps them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"time"

	"dgsf/internal/apiserver"
	"dgsf/internal/cuda"
	"dgsf/internal/cudalibs"
	"dgsf/internal/faas"
	"dgsf/internal/gpu"
	"dgsf/internal/guest"
	"dgsf/internal/native"
	"dgsf/internal/remoting"
	"dgsf/internal/sim"
	"dgsf/internal/workloads"
)

// Mode selects the execution configuration of a single-workload run.
type Mode string

// Single-workload execution modes (the rows of Table II).
const (
	ModeNative    Mode = "native"     // local GPU, no remoting
	ModeDGSF      Mode = "dgsf"       // remoted, all optimizations (OpenFaaS env)
	ModeLambda    Mode = "lambda"     // remoted, all optimizations (Lambda env)
	ModeDGSFNoOpt Mode = "dgsf-noopt" // remoted, no optimizations
	ModeCPU       Mode = "cpu"        // CPU-only baseline
)

// SingleResult is the outcome of one single-workload run.
type SingleResult struct {
	Workload  string
	Mode      Mode
	Phases    workloads.Phases
	Total     time.Duration
	Stats     guest.Stats   // zero for native/cpu
	Migration time.Duration // non-zero if a forced migration was measured
}

// RunSingle executes one workload in one mode on a fresh simulated testbed
// and returns its phase breakdown. forceMigration, valid for DGSF modes,
// injects one API-server migration mid-processing and records its duration.
func RunSingle(seed int64, spec *workloads.Spec, mode Mode, forceMigration bool) SingleResult {
	res := SingleResult{Workload: spec.Name, Mode: mode}
	if mode == ModeCPU {
		// Six-vCPU container, no GPU: the measured CPU runtime (§VIII-B).
		res.Total = spec.CPUOnlyRuntime
		return res
	}
	env := faas.OpenFaaSEnv()
	if mode == ModeLambda {
		env = faas.LambdaEnv()
	}

	e := sim.NewEngine(seed)
	e.Run("exp", func(p *sim.Proc) {
		// Download phase is common to all modes.
		t0 := p.Now()
		p.Sleep(env.Download.TransferTime(p, spec.DownloadBytes))
		res.Phases.Download = p.Now() - t0

		switch mode {
		case ModeNative:
			res.runNative(e, p, spec)
		default:
			res.runDGSF(e, p, spec, env, mode == ModeDGSFNoOpt, forceMigration)
		}
	})
	res.Total = res.Phases.Total()
	return res
}

// runNative executes the workload on a local GPU: CUDA initialization lands
// on the critical path at first API use.
func (res *SingleResult) runNative(e *sim.Engine, p *sim.Proc, spec *workloads.Spec) {
	dev := gpu.New(e, gpu.V100Config(0))
	rt := cuda.NewRuntime(e, []*gpu.Device{dev}, cuda.DefaultCosts())
	api := native.New(rt, cudalibs.DefaultCosts())
	t0 := p.Now()
	if err := api.Hello(p, spec.Name, spec.MemLimit); err != nil {
		panic(fmt.Sprintf("%s native: %v", spec.Name, err))
	}
	res.Phases.Init = p.Now() - t0
	if err := spec.RunBody(p, api, &res.Phases); err != nil {
		panic(fmt.Sprintf("%s native: %v", spec.Name, err))
	}
}

// runDGSF executes the workload against a pre-warmed (or cold, for no-opt)
// API server over the simulated network.
func (res *SingleResult) runDGSF(e *sim.Engine, p *sim.Proc, spec *workloads.Spec, env faas.Env, noOpt bool, forceMigration bool) {
	nDevs := 1
	if forceMigration {
		nDevs = 2
	}
	devs := make([]*gpu.Device, nDevs)
	for i := range devs {
		devs[i] = gpu.New(e, gpu.V100Config(i))
	}
	rt := cuda.NewRuntime(e, devs, cuda.DefaultCosts())
	srvCfg := apiserver.Config{
		PoolHandles: !noOpt,
		CUDACosts:   cuda.DefaultCosts(),
		LibCosts:    cudalibs.DefaultCosts(),
	}
	srv := apiserver.NewServer(e, rt, srvCfg)
	if !noOpt {
		// Pre-warm off the critical path, as the GPU server manager does.
		if err := srv.Prewarm(p); err != nil {
			panic(err)
		}
	}
	p.SpawnDaemon("apiserver", srv.Run)

	opt := env.GuestOpt
	if noOpt {
		opt = guest.OptNone
	}
	conn := remoting.Dial(e, &remoting.Listener{Incoming: srv.Inbox}, env.Net)
	lib := guest.New(conn, opt)

	t0 := p.Now()
	if err := lib.Hello(p, spec.Name, spec.MemLimit); err != nil {
		panic(fmt.Sprintf("%s dgsf: %v", spec.Name, err))
	}
	res.Phases.Init = p.Now() - t0

	if forceMigration {
		// Trigger the migration mid-processing: the control message lands
		// in the server's FIFO behind roughly half the workload's calls.
		p.Spawn("migrator", func(p *sim.Proc) {
			// Wait until the processing phase is underway.
			p.Sleep(2 * time.Second)
			done := sim.NewQueue[time.Duration](e)
			srv.Inbox.Send(remoting.Request{Ctrl: apiserver.MigrateRequest{TargetDev: 1, Done: done}})
			d, _ := done.Recv(p)
			res.Migration = d
		})
	}
	if err := spec.RunBody(p, lib, &res.Phases); err != nil {
		panic(fmt.Sprintf("%s dgsf: %v", spec.Name, err))
	}
	lib.FlushBatch(p)
	if err := lib.Bye(p); err != nil {
		panic(fmt.Sprintf("%s dgsf bye: %v", spec.Name, err))
	}
	res.Stats = lib.Stats()
}

// Table2Row is one column of Table II (the table is printed transposed).
type Table2Row struct {
	Workload  string
	PeakMemMB int64
	Native    time.Duration
	DGSF      time.Duration
	Lambda    time.Duration
	CPU       time.Duration
	Migration time.Duration
}

// Table2 reproduces Table II: per-workload peak memory and average runtime
// under native, DGSF, DGSF-on-Lambda and CPU execution, plus approximate
// migration time. Times average `runs` seeded executions, as the paper
// averages three runs.
func Table2(seed int64, runs int) []Table2Row {
	if runs <= 0 {
		runs = 3
	}
	out := make([]Table2Row, 0, 6)
	for _, spec := range workloads.All() {
		row := Table2Row{Workload: spec.Name, PeakMemMB: spec.PeakMem >> 20}
		var nat, dg, lam, mig time.Duration
		for r := 0; r < runs; r++ {
			s := seed + int64(r)
			nat += RunSingle(s, spec, ModeNative, false).Total
			dg += RunSingle(s, spec, ModeDGSF, false).Total
			lam += RunSingle(s, spec, ModeLambda, false).Total
			mig += RunSingle(s, spec, ModeDGSF, true).Migration
		}
		row.Native = nat / time.Duration(runs)
		row.DGSF = dg / time.Duration(runs)
		row.Lambda = lam / time.Duration(runs)
		row.Migration = mig / time.Duration(runs)
		row.CPU = spec.CPUOnlyRuntime
		out = append(out, row)
	}
	return out
}

// Fig3Row is one bar group of Figure 3: the phase breakdown of a workload
// under native, unoptimized DGSF and optimized DGSF execution.
type Fig3Row struct {
	Workload string
	Mode     Mode
	Phases   workloads.Phases
}

// Figure3 reproduces Figure 3: per-workload phase breakdowns.
func Figure3(seed int64) []Fig3Row {
	var out []Fig3Row
	for _, spec := range workloads.All() {
		for _, mode := range []Mode{ModeNative, ModeDGSFNoOpt, ModeDGSF} {
			r := RunSingle(seed, spec, mode, false)
			out = append(out, Fig3Row{Workload: spec.Name, Mode: mode, Phases: r.Phases})
		}
	}
	return out
}

// Tier is one cumulative optimization step of the ablation study.
type Tier string

// Ablation tiers, cumulative left to right (Fig. 4, extended with the
// pipelined submission lane).
const (
	TierNative     Tier = "native"
	TierNoOpt      Tier = "dgsf-noopt"
	TierHandlePool Tier = "+handle-pool"
	TierDescPool   Tier = "+desc-pool"
	TierBatching   Tier = "+batching"
	TierAsync      Tier = "+async"
)

// Tiers lists the ablation tiers in order.
func Tiers() []Tier {
	return []Tier{TierNative, TierNoOpt, TierHandlePool, TierDescPool, TierBatching, TierAsync}
}

// Fig4Row is one workload's ablation: processing time (downloads excluded,
// per §VIII-C) at each cumulative optimization tier.
type Fig4Row struct {
	Workload string
	Times    map[Tier]time.Duration
	Stats    map[Tier]guest.Stats
}

// Figure4 reproduces Figure 4: the ablation of DGSF's optimizations.
func Figure4(seed int64) []Fig4Row {
	var out []Fig4Row
	for _, spec := range workloads.All() {
		row := Fig4Row{
			Workload: spec.Name,
			Times:    make(map[Tier]time.Duration),
			Stats:    make(map[Tier]guest.Stats),
		}
		for _, tier := range Tiers() {
			r := runTier(seed, spec, tier)
			row.Times[tier] = r.Total - r.Phases.Download
			row.Stats[tier] = r.Stats
		}
		out = append(out, row)
	}
	return out
}

// runTier executes one ablation cell.
func runTier(seed int64, spec *workloads.Spec, tier Tier) SingleResult {
	switch tier {
	case TierNative:
		return RunSingle(seed, spec, ModeNative, false)
	case TierNoOpt:
		return RunSingle(seed, spec, ModeDGSFNoOpt, false)
	}
	// Custom combinations: pool on the server; guest tier per step.
	var res SingleResult
	res.Workload = spec.Name
	res.Mode = Mode(tier)
	env := faas.OpenFaaSEnv()
	switch tier {
	case TierHandlePool:
		env.GuestOpt = guest.OptNone
	case TierDescPool:
		env.GuestOpt = guest.OptLocalDescriptors
	case TierBatching:
		env.GuestOpt = guest.OptAll
	case TierAsync:
		env.GuestOpt = guest.OptAll | guest.OptAsync
	}
	e := sim.NewEngine(seed)
	e.Run("exp", func(p *sim.Proc) {
		t0 := p.Now()
		p.Sleep(env.Download.TransferTime(p, spec.DownloadBytes))
		res.Phases.Download = p.Now() - t0
		res.runDGSF(e, p, spec, env, false, false)
	})
	res.Total = res.Phases.Total()
	return res
}
