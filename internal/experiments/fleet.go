package experiments

import (
	"fmt"
	"time"

	"dgsf/internal/controller"
	"dgsf/internal/cuda"
	"dgsf/internal/faas"
	"dgsf/internal/faults"
	"dgsf/internal/gpu"
	"dgsf/internal/gpuserver"
	"dgsf/internal/metrics"
	"dgsf/internal/remoting"
	"dgsf/internal/remoting/gen"
	"dgsf/internal/sim"
	"dgsf/internal/store"
)

// Fleet experiment: the cluster control plane at scale. A fleet of GPU
// servers (each with an agent mirroring its state into the versioned store)
// serves a burst of invocations routed entirely through watch-driven
// reconcilers — the placement controller runs over a REMOTE store handle
// (apigen-generated stubs over the simulated transport, sync CRUD plus the
// one-way status lane), machines fail mid-run, staged models overflow their
// budget and are reclaimed store-ward, and the placement controller itself
// is killed mid-reconcile (its store handle's fuse blows between two writes)
// and restarted by a supervisor. Acceptance: every invocation completes and
// every session object converges to Done — zero lost sessions — for every
// seed.

// FleetResult is the outcome of one fleet run.
type FleetResult struct {
	Servers     int
	Invocations int
	Done        int
	Failed      int // invocations that ended with an error (must be 0)
	Lost        int // sessions not Done in the store (must be 0)
	Retried     int // sessions that needed more than one attempt

	CtrlRestarts int // placement-controller replacements after kills
	FailedGS     int // GPU-server failures injected
	StagedBytes  int64
	ProviderE2E  time.Duration

	// MetricsTable renders the run's store/controller/fleet counters.
	MetricsTable string
}

// fleetFn builds one function profile for the fleet workload; the model
// portion of the download is host-cacheable, which is what feeds the
// staged-model reclaim loop.
func fleetFn(name string, kernel time.Duration) *faas.Function {
	return &faas.Function{
		Name:          name,
		GPUMem:        1 << 30,
		DownloadBytes: 10e6,
		ModelDLBytes:  8e6,
		Run: func(p *sim.Proc, api gen.API) error {
			fns, err := api.RegisterKernels(p, []string{"work"})
			if err != nil {
				return err
			}
			if err := api.LaunchKernel(p, cuda.LaunchParams{Fn: fns[0], Duration: kernel}); err != nil {
				return err
			}
			return api.DeviceSynchronize(p)
		},
	}
}

// RunFleet drives nServers machines and nInvocations invocations through
// the control plane under failures and a controller kill.
func RunFleet(seed int64, nServers, nInvocations int) FleetResult {
	res := FleetResult{Servers: nServers, Invocations: nInvocations}
	e := sim.NewEngine(seed)
	e.SetTimeLimit(2 * time.Hour)
	reg := metrics.NewRegistry()
	st := store.New(e, reg)
	var inj *faults.Injector
	wireStart := remoting.SnapshotWireStats()

	e.Run("fleet", func(p *sim.Proc) {
		// Machines: cheap data plane (the experiment measures the control
		// plane), host-tier cache on, stage budget tight enough that the
		// reclaim controller has real work.
		env := faas.OpenFaaSEnv()
		env.Download.Latency = 0
		env.Download.JitterFrac = 0
		backend := faas.NewFleet(e, st, faas.FleetConfig{Env: env, Registry: reg})
		var machines []*gpuserver.GPUServer
		for i := 0; i < nServers; i++ {
			cfg := gpuserver.DefaultConfig()
			cfg.GPUs, cfg.ServersPerGPU = 1, 1
			cfg.PoolHandles = false
			cfg.CUDACosts = cuda.Costs{}
			cfg.LibCosts.DNNCreateTime = 0
			cfg.LibCosts.BLASCreateTime = 0
			cfg.GPUConfig = func(i int) gpu.Config {
				c := gpu.V100Config(i)
				c.CopyLat, c.KernelLat = 0, 0
				return c
			}
			cfg.Cache.Enable = true
			cfg.Cache.HostBudget = 1 << 30
			cfg.Cache.DeviceBudget = -1
			gs := gpuserver.New(e, cfg)
			gs.Start(p)
			machines = append(machines, gs)
			name := fmt.Sprintf("gpu-%03d", i)
			backend.AddServer(name, gs)
			agent := gpuserver.NewAgent(gs, st, name, gpuserver.AgentConfig{
				SyncPeriod:  200 * time.Millisecond,
				StageBudget: 20e6, // ~2 staged models before reclaim bites
			})
			p.SpawnDaemon("agent-"+name, agent.Run)
		}
		p.Sleep(250 * time.Millisecond) // first agent sync: fleet visible in store

		// The store, served over the simulated transport: the placement
		// controller speaks only the generated wire protocol.
		l := remoting.NewListener(e)
		p.SpawnDaemon("store-serve", func(p *sim.Proc) { store.Serve(p, st, l) })
		remoteHandle := func() store.Interface {
			return store.NewRemote(e, remoting.Dial(e, l, remoting.NetProfile{RTT: 100 * time.Microsecond}))
		}

		// Fault plan: two machines fail mid-run; the placement controller is
		// killed mid-reconcile 3 writes after the kill fires.
		plan := faults.Plan{
			Events: []faults.Event{
				{At: 2 * time.Second, Kind: faults.FailGPUServer, Server: 0},
				{At: 4 * time.Second, Kind: faults.FailGPUServer, Server: 1},
			},
			ControllerKills: []faults.ControllerKill{{At: time.Second, AfterWrites: 3}},
		}
		inj = faults.NewInjector(e, plan, machines)
		inj.Arm(p)

		var active *controller.Controller
		p.Spawn("placement-supervisor", func(p *sim.Proc) {
			res.CtrlRestarts = faas.RunSupervised(p, 10*time.Millisecond, 5, func() *controller.Controller {
				handle := remoteHandle()
				fuse := store.NewFuse(handle)
				inj.BindControllerFuse(fuse)
				active = faas.NewPlacementController(fuse, faas.PlacementConfig{
					Resync:   100 * time.Millisecond,
					Registry: reg,
				})
				return active
			})
		})
		reclaim := faas.NewReclaimController(st, faas.ReclaimConfig{Resync: 200 * time.Millisecond, Registry: reg})
		p.Spawn("reclaim", reclaim.Run)

		if err := backend.Run(p); err != nil {
			panic(err)
		}
		fns := []*faas.Function{
			fleetFn("detect", 150*time.Millisecond),
			fleetFn("classify", 100*time.Millisecond),
			fleetFn("embed", 250*time.Millisecond),
			fleetFn("rank", 80*time.Millisecond),
		}
		for i := 0; i < nInvocations; i++ {
			backend.Submit(p, fns[i%len(fns)])
			p.Sleep(time.Duration(p.Rand().ExpFloat64() * float64(25*time.Millisecond)))
		}
		backend.Drain(p)
		if active != nil {
			active.Stop()
		}
		reclaim.Stop()

		for _, inv := range backend.Invocations() {
			if inv.Err != nil {
				res.Failed++
			}
			if inv.Done > res.ProviderE2E {
				res.ProviderE2E = inv.Done
			}
		}
		rs, _, err := st.List(p, store.KindSession)
		if err != nil {
			panic(err)
		}
		for _, r := range rs {
			s := r.(*store.Session)
			if s.Status.Phase == store.PhaseDone {
				res.Done++
			} else {
				res.Lost++
			}
			if s.Status.Attempts > 1 {
				res.Retried++
			}
		}
		sms, _, err := st.List(p, store.KindStagedModel)
		if err != nil {
			panic(err)
		}
		for _, r := range sms {
			res.StagedBytes += r.(*store.StagedModel).Spec.Bytes
		}
	})
	res.FailedGS = inj.Failed
	// The wire-stat delta over the run reports the remoting_* counters
	// (bytes on the wire, v1/v2 frame mix, hello outcomes) in the summary.
	remoting.PublishWireStats(reg, remoting.SnapshotWireStats().Sub(wireStart))
	res.MetricsTable = reg.String()
	return res
}
