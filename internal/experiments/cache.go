package experiments

import (
	"fmt"
	"time"

	"dgsf/internal/faas"
	"dgsf/internal/gpuserver"
	"dgsf/internal/modelcache"
	"dgsf/internal/remoting/gen"
	"dgsf/internal/sim"
	"dgsf/internal/workloads"
)

// CachePoint is one invocation's timing under a given cache state.
type CachePoint struct {
	E2E      time.Duration // submission to completion
	Download time.Duration // object-store fetch (model + inputs)
	Load     time.Duration // model load phase inside the session
}

// CacheRow compares, for one workload, a cold invocation against a repeat
// invocation that hits the host-staged tier and one that hits the
// GPU-resident tier of the model cache.
type CacheRow struct {
	Workload string
	Cold     CachePoint
	WarmHost CachePoint // repeat with the device tier disabled
	WarmGPU  CachePoint // repeat with the full cache
}

// CacheColdWarm measures cold vs warm invocations for every workload that
// ships a model. Two deployments per workload, each a single API server on
// one GPU with the model cache enabled: one with the device tier disabled —
// the repeat invocation restages the working set from host memory — and one
// with the full cache — the repeat invocation adopts the GPU-resident
// working set and skips the model load phase entirely. In both deployments
// the repeat's model download is served by the host-staged object cache.
func CacheColdWarm(seed int64) []CacheRow {
	var out []CacheRow
	for _, spec := range workloads.All() {
		if spec.ModelBytes == 0 {
			continue // nothing to cache (kmeans)
		}
		row := CacheRow{Workload: spec.Name}
		row.Cold, row.WarmHost = coldWarmPair(seed, spec, -1)
		_, row.WarmGPU = coldWarmPair(seed, spec, 0)
		out = append(out, row)
	}
	return out
}

// coldWarmPair runs the workload twice back-to-back on a fresh single-server
// deployment and returns both invocations' timings. deviceBudget < 0
// disables the GPU-resident tier; 0 uses the default budget.
func coldWarmPair(seed int64, spec *workloads.Spec, deviceBudget int64) (first, second CachePoint) {
	e := sim.NewEngine(seed)
	e.Run("cache-"+spec.Name, func(p *sim.Proc) {
		gcfg := gpuserver.DefaultConfig()
		gcfg.GPUs = 1
		gcfg.ServersPerGPU = 1
		gcfg.Cache = modelcache.Config{Enable: true, DeviceBudget: deviceBudget}
		gs := gpuserver.New(e, gcfg)
		gs.Start(p)
		backend := faas.NewBackend(e, gs, faas.OpenFaaSEnv())
		for _, pt := range []*CachePoint{&first, &second} {
			var ph workloads.Phases
			f := spec.Function()
			f.Run = func(p *sim.Proc, api gen.API) error {
				return spec.RunBody(p, api, &ph)
			}
			inv := backend.Submit(p, f)
			backend.Drain(p)
			if inv.Err != nil {
				panic(fmt.Sprintf("cache experiment: %s failed: %v", spec.Name, inv.Err))
			}
			pt.E2E = inv.E2E()
			pt.Download = inv.DownloadDone - inv.SubmittedAt
			pt.Load = ph.Load
		}
	})
	return first, second
}

// CacheLoadResult aggregates one mixed-load run with the model cache on.
type CacheLoadResult struct {
	Policy       string
	ProviderE2E  time.Duration
	E2ESum       time.Duration
	Stats        modelcache.Stats
	DownloadHits int // invocations whose model download came from the host cache
	Invocations  int
}

// CacheUnderLoad runs the smaller-workload mix of Table III (10 instances
// each, 4 GPUs, two API servers per GPU) with the model cache enabled,
// comparing best-fit placement against the locality-aware policy. The mean
// inter-arrival gap is 5 s — moderate load: under full saturation at most
// one API server is ever idle and placement policy has no choice to make.
// Locality routes repeat invocations to API servers already holding their
// model, so its GPU-resident hit rate should exceed best-fit's.
func CacheUnderLoad(seed int64) []CacheLoadResult {
	var out []CacheLoadResult
	for _, pol := range []gpuserver.Policy{gpuserver.BestFit, gpuserver.PolicyLocality} {
		r := CacheLoadResult{Policy: pol.String()}
		e := sim.NewEngine(seed)
		e.Run("cache-load", func(p *sim.Proc) {
			gcfg := gpuserver.DefaultConfig()
			gcfg.GPUs = 4
			gcfg.ServersPerGPU = 2
			gcfg.Policy = pol
			gcfg.Cache = modelcache.Config{Enable: true}
			gs := gpuserver.New(e, gcfg)
			gs.Start(p)
			backend := faas.NewBackend(e, gs, faas.OpenFaaSEnv())
			var fns []*faas.Function
			for _, spec := range workloads.Smaller() {
				f := spec.Function()
				for i := 0; i < 10; i++ {
					fns = append(fns, f)
				}
			}
			p.Rand().Shuffle(len(fns), func(i, j int) { fns[i], fns[j] = fns[j], fns[i] })
			backend.SubmitSequence(p, fns, faas.ExponentialArrivals(p, 5*time.Second))
			backend.Drain(p)
			for _, inv := range backend.Invocations() {
				if inv.Err != nil {
					panic("cache load invocation failed: " + inv.Err.Error())
				}
				if inv.ModelCached {
					r.DownloadHits++
				}
			}
			r.Invocations = len(backend.Invocations())
			r.ProviderE2E = backend.ProviderEndToEnd()
			r.E2ESum = backend.E2ESum()
			r.Stats = gs.Cache().Stats()
		})
		out = append(out, r)
	}
	return out
}
