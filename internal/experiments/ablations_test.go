package experiments

import (
	"testing"
	"time"
)

func TestSchedulingAblationSJFTradesFairnessForLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-load experiment")
	}
	rs := SchedulingAblation(1)
	if len(rs) != 2 {
		t.Fatalf("%d results", len(rs))
	}
	fcfs, sjf := rs[0], rs[1]
	if fcfs.Policy != "fcfs" || sjf.Policy != "sjf" {
		t.Fatalf("policies = %s, %s", fcfs.Policy, sjf.Policy)
	}
	// SJF improves mean queueing delay (throughput-oriented)...
	if sjf.QueueMean >= fcfs.QueueMean {
		t.Errorf("SJF mean queue (%v) not below FCFS (%v)", sjf.QueueMean, fcfs.QueueMean)
	}
	// ...at some loss of fairness: the worst-served function waits longer.
	if sjf.QueueMax <= fcfs.QueueMax {
		t.Errorf("SJF max queue (%v) not above FCFS (%v) — expected a fairness cost", sjf.QueueMax, fcfs.QueueMax)
	}
}

func TestSharingSweepDiminishingReturns(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-load experiment")
	}
	rs := SharingSweep(1)
	if len(rs) != 4 {
		t.Fatalf("%d results", len(rs))
	}
	// Two servers per GPU clearly beat one (paper: -9% on the burst)...
	gain12 := float64(rs[0].ProviderE2E-rs[1].ProviderE2E) / float64(rs[0].ProviderE2E)
	if gain12 < 0.03 {
		t.Errorf("2 servers/GPU gained only %.1f%% over 1", gain12*100)
	}
	// ...while going from 2 to 4 yields much less (§VIII-D: "no significant
	// improvement because each workload uses most of the GPU's memory").
	gain24 := float64(rs[1].ProviderE2E-rs[3].ProviderE2E) / float64(rs[1].ProviderE2E)
	if gain24 > gain12 {
		t.Errorf("4 servers/GPU gained %.1f%% over 2, more than 2 over 1 (%.1f%%) — diminishing returns expected",
			gain24*100, gain12*100)
	}
	// Utilization is non-decreasing in the sharing degree.
	for i := 1; i < len(rs); i++ {
		if rs[i].MeanUtil < rs[i-1].MeanUtil-5 {
			t.Errorf("utilization dropped from %.1f%% to %.1f%% at degree %d",
				rs[i-1].MeanUtil, rs[i].MeanUtil, rs[i].ServersPerGPU)
		}
	}
}

// sweepByWorkload groups RTT sweep points per workload, preserving order.
func sweepByWorkload(rs []RTTResult) map[string][]RTTResult {
	out := make(map[string][]RTTResult)
	for _, r := range rs {
		out[r.Workload] = append(out[r.Workload], r)
	}
	return out
}

func TestRTTSweepCrossover(t *testing.T) {
	rs := RTTSweep(1)
	byWl := sweepByWorkload(rs)
	if len(byWl) != 2 {
		t.Fatalf("%d workloads in sweep", len(byWl))
	}
	for wl, pts := range byWl {
		if len(pts) != len(RTTSweepRTTs()) {
			t.Fatalf("%s: %d points", wl, len(pts))
		}
		// Monotone: more latency, slower DGSF.
		for i := 1; i < len(pts); i++ {
			if pts[i].DGSF <= pts[i-1].DGSF {
				t.Errorf("%s: DGSF time not increasing with RTT: %v then %v", wl, pts[i-1].DGSF, pts[i].DGSF)
			}
		}
		// At in-rack RTT DGSF beats native; at millisecond RTTs it does not.
		if pts[0].DGSF >= pts[0].Native {
			t.Errorf("%s: at %v RTT, DGSF (%v) should beat native (%v)", wl, pts[0].RTT, pts[0].DGSF, pts[0].Native)
		}
		last := pts[len(pts)-1]
		if last.DGSF <= last.Native {
			t.Errorf("%s: at %v RTT, DGSF (%v) should lose to native (%v)", wl, last.RTT, last.DGSF, last.Native)
		}
	}
}

// TestRTTSweepAsyncBeatsBatching is the acceptance criterion of the
// pipelined lane: at round trips of 500µs and above, one-way submission
// strictly beats batching alone, for every swept workload.
func TestRTTSweepAsyncBeatsBatching(t *testing.T) {
	rs := RTTSweep(1)
	for wl, pts := range sweepByWorkload(rs) {
		for _, r := range pts {
			if r.DGSFAsync <= 0 {
				t.Fatalf("%s: missing async measurement at %v", wl, r.RTT)
			}
			if r.RTT >= 500*time.Microsecond && r.DGSFAsync >= r.DGSF {
				t.Errorf("%s: at %v RTT, async (%v) not strictly below batching (%v)",
					wl, r.RTT, r.DGSFAsync, r.DGSF)
			}
		}
	}
}

// TestRTTSweepDeterministic checks that the pipelined lane preserves the
// simulation's determinism: the same seed reproduces identical virtual
// times, async tier included.
func TestRTTSweepDeterministic(t *testing.T) {
	a, b := RTTSweep(1), RTTSweep(1)
	if len(a) != len(b) {
		t.Fatalf("sweep lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("point %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestScaleOutDoublesCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-load experiment")
	}
	rs := ScaleOut(1)
	one, twoFixed, twoLL := rs[0], rs[1], rs[2]
	// A second (used!) GPU server must relieve the stream substantially.
	if twoLL.E2ESum >= one.E2ESum*8/10 {
		t.Errorf("two servers least-loaded (sum %v) did not clearly beat one (%v)", twoLL.E2ESum, one.E2ESum)
	}
	// The fixed policy never touches the second server, so it gains nothing.
	diff := twoFixed.E2ESum - one.E2ESum
	if diff < 0 {
		diff = -diff
	}
	if diff > one.E2ESum/20 {
		t.Errorf("fixed policy with an unused second server differs from one server: %v vs %v", twoFixed.E2ESum, one.E2ESum)
	}
	_ = time.Second
}
