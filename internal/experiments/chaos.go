package experiments

import "dgsf/internal/chaos"

// Chaos experiment: the randomized fault-schedule search engine. Each run
// draws n schedules from the seed — alternating between the 120-server
// fleet control plane and the data-plane pipeline workload — executes them
// under the full fault vocabulary, and checks the cluster invariants after
// every run. The acceptance bar is zero violations and zero hangs; any
// failing schedule is delta-debugged to a minimal reproducer under
// reproDir.

// RunChaos executes a chaos campaign of n schedules for one seed.
func RunChaos(seed int64, n int, reproDir string, logf func(format string, args ...any)) chaos.CampaignResult {
	return chaos.RunCampaign(seed, n, chaos.CampaignConfig{
		ReproDir: reproDir,
		Log:      logf,
	})
}
