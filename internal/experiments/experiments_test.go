package experiments

import (
	"testing"
	"time"

	"dgsf/internal/workloads"
)

// Table II shape: GPU acceleration is preserved through DGSF, optimized
// DGSF beats native end-to-end, and the Lambda deployment spikes exactly
// for the download-heavy workloads (§VIII-B).
func TestTable2Shape(t *testing.T) {
	rows := Table2(1, 1)
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.DGSF >= r.Native {
			t.Errorf("%s: DGSF (%v) not faster than native (%v)", r.Workload, r.DGSF, r.Native)
		}
		if float64(r.CPU) < 1.5*float64(r.DGSF) {
			t.Errorf("%s: CPU (%v) not clearly slower than DGSF (%v) — GPU benefit lost", r.Workload, r.CPU, r.DGSF)
		}
		if r.Lambda < r.DGSF {
			t.Errorf("%s: Lambda (%v) faster than OpenFaaS DGSF (%v)", r.Workload, r.Lambda, r.DGSF)
		}
		if r.Migration <= 0 {
			t.Errorf("%s: no migration time measured", r.Workload)
		}
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	// The spike: NLP and image classification suffer far more on Lambda
	// than face detection does (paper: +28s / +22s vs +1.5s).
	nlpPenalty := byName["nlp"].Lambda - byName["nlp"].DGSF
	fdPenalty := byName["facedetection"].Lambda - byName["facedetection"].DGSF
	if nlpPenalty < 4*fdPenalty {
		t.Errorf("NLP Lambda penalty (%v) not dominating face detection's (%v)", nlpPenalty, fdPenalty)
	}
	// Within-ballpark absolute calibration vs Table II (±25%).
	paper := map[string]time.Duration{
		"kmeans": 14 * time.Second, "covidctnet": 25100 * time.Millisecond,
		"facedetection": 18500 * time.Millisecond, "faceidentification": 13400 * time.Millisecond,
		"nlp": 34300 * time.Millisecond, "resnet": 26700 * time.Millisecond,
	}
	for name, want := range paper {
		got := byName[name].Native
		if got < time.Duration(float64(want)*0.75) || got > time.Duration(float64(want)*1.25) {
			t.Errorf("%s native = %v, outside ±25%% of paper's %v", name, got, want)
		}
	}
}

// Figure 3 shape: DGSF removes CUDA initialization from the critical path
// and loads models faster than native thanks to pooled handles.
func TestFigure3Shape(t *testing.T) {
	rows := Figure3(1)
	get := func(wl string, mode Mode) workloads.Phases {
		for _, r := range rows {
			if r.Workload == wl && r.Mode == mode {
				return r.Phases
			}
		}
		t.Fatalf("missing row %s/%s", wl, mode)
		return workloads.Phases{}
	}
	for _, spec := range workloads.All() {
		nat := get(spec.Name, ModeNative)
		opt := get(spec.Name, ModeDGSF)
		noopt := get(spec.Name, ModeDGSFNoOpt)
		if nat.Init < 2800*time.Millisecond {
			t.Errorf("%s native init = %v, want >= 2.8s", spec.Name, nat.Init)
		}
		if opt.Init > 100*time.Millisecond {
			t.Errorf("%s DGSF init = %v, want ~0 (pre-initialized)", spec.Name, opt.Init)
		}
		if noopt.Init < 2800*time.Millisecond {
			t.Errorf("%s unoptimized DGSF init = %v, want >= 2.8s (cold runtime)", spec.Name, noopt.Init)
		}
		if spec.UsesDNN && opt.Load >= nat.Load {
			t.Errorf("%s DGSF load (%v) not faster than native (%v) despite handle pools", spec.Name, opt.Load, nat.Load)
		}
		if opt.Process < nat.Process {
			t.Errorf("%s DGSF processing (%v) faster than native (%v): remoting overhead vanished", spec.Name, opt.Process, nat.Process)
		}
		if noopt.Total() <= opt.Total() {
			t.Errorf("%s: unoptimized DGSF (%v) not slower than optimized (%v)", spec.Name, noopt.Total(), opt.Total())
		}
	}
}

// Figure 4 shape: each cumulative optimization tier helps, and the overall
// improvement reaches the paper's headline range ("API remoting
// optimizations can improve the runtime of a function by up to 50%
// relative to unoptimized DGSF", §I).
func TestFigure4Shape(t *testing.T) {
	rows := Figure4(1)
	var bestImprovement float64
	for _, r := range rows {
		noopt := r.Times[TierNoOpt]
		pool := r.Times[TierHandlePool]
		desc := r.Times[TierDescPool]
		batch := r.Times[TierBatching]
		if pool > noopt || desc > pool || batch > desc {
			t.Errorf("%s: tiers not monotonic: %v -> %v -> %v -> %v", r.Workload, noopt, pool, desc, batch)
		}
		impr := 1 - float64(batch)/float64(noopt)
		if impr > bestImprovement {
			bestImprovement = impr
		}
		// Handle pooling must recover roughly the 4.6 s of initialization
		// for the cuDNN workloads.
		spec, _ := workloads.ByName(r.Workload)
		if spec.UsesDNN {
			if saved := noopt - pool; saved < 3500*time.Millisecond {
				t.Errorf("%s: handle pooling saved only %v, want >= 3.5s", r.Workload, saved)
			}
		}
	}
	if bestImprovement < 0.40 {
		t.Errorf("best tier improvement = %.0f%%, want >= 40%% (paper: up to 50%%)", bestImprovement*100)
	}
}

// The call-reduction claim (§V-C): optimizations cut forwarded API calls by
// up to 48% for the ONNX workloads and up to 96% for TensorFlow.
func TestForwardedCallReduction(t *testing.T) {
	rows := Figure4(1)
	for _, r := range rows {
		spec, _ := workloads.ByName(r.Workload)
		if !spec.UsesDNN {
			continue
		}
		noopt := r.Stats[TierHandlePool] // same guest tier as no-opt, warm server
		full := r.Stats[TierBatching]
		red := 1 - float64(full.Forwarded())/float64(noopt.Forwarded())
		min := 0.40
		if r.Workload == "covidctnet" { // the TensorFlow workload
			min = 0.80
		}
		if red < min {
			t.Errorf("%s: forwarded-call reduction %.0f%%, want >= %.0f%%", r.Workload, red*100, min*100)
		}
		if full.Roundtrips() >= noopt.Roundtrips() {
			t.Errorf("%s: round trips did not drop (%d -> %d)", r.Workload, noopt.Roundtrips(), full.Roundtrips())
		}
	}
}

// Table III shape: under heavy load, sharing reduces both the provider's
// end-to-end time and the function E2E sum (§VIII-D: "sharing can reduce it
// by 20%"), for both mixes.
func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-load experiment")
	}
	rows := Table3(1)
	byKey := map[string]MixResult{}
	for _, r := range rows {
		byKey[r.Mix+"/"+r.Variant] = r
	}
	for _, mix := range []string{"AW", "SW"} {
		ns := byKey[mix+"/no-sharing"]
		bf := byKey[mix+"/sharing-2-best-fit"]
		wf := byKey[mix+"/sharing-2-worst-fit"]
		if bf.E2ESum >= ns.E2ESum || wf.E2ESum >= ns.E2ESum {
			t.Errorf("%s: sharing did not reduce E2E sum: ns=%v bf=%v wf=%v", mix, ns.E2ESum, bf.E2ESum, wf.E2ESum)
		}
		if bf.ProviderE2E >= ns.ProviderE2E {
			t.Errorf("%s: sharing did not reduce provider E2E: ns=%v bf=%v", mix, ns.ProviderE2E, bf.ProviderE2E)
		}
		if bf.MeanUtil <= ns.MeanUtil {
			t.Errorf("%s: sharing did not raise utilization: %v vs %v", mix, bf.MeanUtil, ns.MeanUtil)
		}
	}
}

// Figure 5 shape: under heavy load every workload sees queueing, and
// queueing delays are a substantial share of E2E.
func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-load experiment")
	}
	rows := Figure5(1)
	if len(rows) != 10 { // 6 AW + 4 SW
		t.Fatalf("%d rows, want 10", len(rows))
	}
	queued := 0
	for _, r := range rows {
		if r.Exec <= 0 {
			t.Errorf("%s/%s: no execution time", r.Mix, r.Workload)
		}
		if r.Queue > 0 {
			queued++
		}
	}
	if queued < 6 {
		t.Errorf("only %d/10 workload rows show queueing under heavy load", queued)
	}
}

// Table IV shape: under low load with four GPUs sharing barely matters;
// with three GPUs sharing clearly reduces the E2E sum (paper: -27/28%).
func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-load experiment")
	}
	rows := Table4(1)
	byKey := map[string]MixResult{}
	for _, r := range rows {
		byKey[string(rune('0'+r.GPUs))+"/"+r.Variant] = r
	}
	ns4 := byKey["4/no-sharing"]
	ns3, wf3 := byKey["3/no-sharing"], byKey["3/sharing-2-worst-fit"]
	// Three GPUs are more contended than four.
	if ns3.E2ESum <= ns4.E2ESum {
		t.Errorf("3-GPU E2E sum (%v) not larger than 4-GPU (%v)", ns3.E2ESum, ns4.E2ESum)
	}
	if ns3.ProviderE2E <= ns4.ProviderE2E {
		t.Errorf("3-GPU provider E2E (%v) not larger than 4-GPU (%v)", ns3.ProviderE2E, ns4.ProviderE2E)
	}
	// In the contended three-GPU setting, sharing clearly reduces the E2E
	// sum (paper: -27/28%). Our calibrated workloads hold GPUs ~16 s on
	// average vs the paper's ~12 s, so the four-GPU point is also somewhat
	// contended here and shows a benefit the paper does not; see
	// EXPERIMENTS.md.
	gain3 := 1 - float64(wf3.E2ESum)/float64(ns3.E2ESum)
	if gain3 < 0.10 {
		t.Errorf("sharing gain at 3 GPUs = %.0f%%, want >= 10%% (paper: ~27%%)", gain3*100)
	}
	if wf3.ProviderE2E >= ns3.ProviderE2E {
		t.Errorf("3-GPU sharing provider E2E (%v) not below no-sharing (%v)", wf3.ProviderE2E, ns3.ProviderE2E)
	}
}

// Figure 7 shape: during bursts, sharing raises average GPU utilization and
// completes the burst sooner (§VIII-D: 31.8% -> 37.1%, 220s -> 200s).
func TestFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-load experiment")
	}
	rs := Figure7(1)
	ns, sh := rs[0], rs[1]
	if sh.MeanUtil <= ns.MeanUtil {
		t.Errorf("sharing utilization (%.1f%%) not above no-sharing (%.1f%%)", sh.MeanUtil, ns.MeanUtil)
	}
	if sh.ProviderE2E >= ns.ProviderE2E {
		t.Errorf("sharing burst E2E (%v) not below no-sharing (%v)", sh.ProviderE2E, ns.ProviderE2E)
	}
	if len(ns.Series) != 4 || len(ns.Series[0]) == 0 {
		t.Errorf("missing utilization series")
	}
}

// Table V shape: native is dominated by CUDA initialization (~3s,
// size-independent); DGSF is orders of magnitude faster; migration cost
// grows with the array and dominates the migrated end-to-end time.
func TestTable5Shape(t *testing.T) {
	rows := Table5(1, 1)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if r.NativeE2E < 2800*time.Millisecond || r.NativeE2E > 4*time.Second {
			t.Errorf("%dMB native = %v, want ~3s", r.ArrayMB, r.NativeE2E)
		}
		if r.DGSFE2E > 200*time.Millisecond {
			t.Errorf("%dMB DGSF = %v, want <0.2s", r.ArrayMB, r.DGSFE2E)
		}
		if r.MigratedE2E < r.DGSFE2E+r.MigrationDur/2 {
			t.Errorf("%dMB migrated E2E (%v) inconsistent with migration cost (%v)", r.ArrayMB, r.MigratedE2E, r.MigrationDur)
		}
		if i > 0 && r.MigrationDur <= rows[i-1].MigrationDur {
			t.Errorf("migration cost not increasing with size: %v then %v", rows[i-1].MigrationDur, r.MigrationDur)
		}
	}
	// The largest array migrates in roughly the paper's ~2.1s.
	last := rows[len(rows)-1]
	if last.MigrationDur < 1500*time.Millisecond || last.MigrationDur > 3500*time.Millisecond {
		t.Errorf("13194MB migration = %v, want ~2s", last.MigrationDur)
	}
}

// Figure 8 shape: worst fit beats no sharing; best fit is the pathological
// case; migration repairs best fit (§VIII-E).
func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario experiment")
	}
	rs := Figure8(1)
	byName := map[string]Fig8Result{}
	for _, r := range rs {
		byName[r.Config] = r
	}
	ns := byName["no-sharing"]
	wf := byName["worst-fit"]
	bf := byName["best-fit"]
	mig := byName["best-fit+migration"]
	if wf.Total >= ns.Total {
		t.Errorf("worst-fit (%v) not better than no-sharing (%v)", wf.Total, ns.Total)
	}
	if bf.Total <= wf.Total {
		t.Errorf("best-fit (%v) not worse than worst-fit (%v)", bf.Total, wf.Total)
	}
	if mig.Migrations == 0 {
		t.Error("migration scenario performed no migrations")
	}
	if mig.Total >= bf.Total {
		t.Errorf("migration (%v) did not improve on best-fit (%v)", mig.Total, bf.Total)
	}
	if ns.Migrations != 0 || wf.Migrations != 0 || bf.Migrations != 0 {
		t.Error("unexpected migrations in non-migration configs")
	}
}
