package experiments

import (
	"time"

	"dgsf/internal/apiserver"
	"dgsf/internal/cuda"
	"dgsf/internal/cudalibs"
	"dgsf/internal/faas"
	"dgsf/internal/gpu"
	"dgsf/internal/gpuserver"
	"dgsf/internal/guest"
	"dgsf/internal/metrics"
	"dgsf/internal/remoting"
	"dgsf/internal/sim"
	"dgsf/internal/workloads"
)

// Ablation experiments for the design choices DESIGN.md calls out. These go
// beyond the paper's figures: the scheduling ablation implements §VIII-D's
// explicitly-deferred future work ("policies like shortest-function-first,
// which could improve throughput at some loss of fairness"); the sharing
// sweep quantifies §VIII-D's observation that "adding more workers to GPUs
// yields no significant improvement"; the RTT sweep shows where remoting
// overhead starts to erase the pre-initialization win.

// SchedResult compares queue policies on the heavy-load mix.
type SchedResult struct {
	Policy      string
	ProviderE2E time.Duration
	E2ESum      time.Duration
	QueueMean   time.Duration
	QueueStd    time.Duration // fairness proxy: higher spread = less fair
	QueueMax    time.Duration
}

// SchedulingAblation runs the Table III AW mix under FCFS and SJF.
func SchedulingAblation(seed int64) []SchedResult {
	var out []SchedResult
	for _, q := range []gpuserver.QueuePolicy{gpuserver.FCFS, gpuserver.SJF} {
		r := SchedResult{Policy: q.String()}
		e := sim.NewEngine(seed)
		e.Run("sched", func(p *sim.Proc) {
			gcfg := gpuserver.DefaultConfig()
			gcfg.GPUs = 4
			gcfg.ServersPerGPU = 2
			gcfg.Queue = q
			gs := gpuserver.New(e, gcfg)
			gs.Start(p)
			backend := faas.NewBackend(e, gs, faas.OpenFaaSEnv())
			// Warm the backend's learned-duration history with one round,
			// then measure a shuffled heavy-load stream.
			var fns []*faas.Function
			for _, spec := range workloads.All() {
				f := spec.Function()
				backend.Submit(p, f)
				for i := 0; i < 10; i++ {
					fns = append(fns, f)
				}
			}
			backend.Drain(p)
			warmup := len(workloads.All())
			p.Rand().Shuffle(len(fns), func(i, j int) { fns[i], fns[j] = fns[j], fns[i] })
			backend.SubmitSequence(p, fns, faas.ExponentialArrivals(p, 2*time.Second))
			backend.Drain(p)

			var queue metrics.Series
			var e2eSum time.Duration
			invs := backend.Invocations()[warmup:]
			first, last := invs[0].SubmittedAt, time.Duration(0)
			for _, inv := range invs {
				queue.Add(inv.QueueDelay)
				e2eSum += inv.E2E()
				if inv.Done > last {
					last = inv.Done
				}
			}
			r.ProviderE2E = last - first
			r.E2ESum = e2eSum
			r.QueueMean = queue.Mean()
			r.QueueStd = queue.Std()
			r.QueueMax = queue.Max()
		})
		out = append(out, r)
	}
	return out
}

// SharingResult is one point of the sharing-degree sweep.
type SharingResult struct {
	ServersPerGPU int
	ProviderE2E   time.Duration
	E2ESum        time.Duration
	MeanUtil      float64
}

// SharingSweep runs the burst workload with 1..4 API servers per GPU, using
// the four smaller workloads (at three or more pre-warmed API servers per
// GPU, the two whole-GPU workloads can no longer fit at all). The paper:
// with two servers per GPU a burst completes 9% sooner; "adding more
// workers to GPUs yields no significant improvement because each workload
// uses most of the GPU's memory" (§VIII-D).
func SharingSweep(seed int64) []SharingResult {
	var out []SharingResult
	for per := 1; per <= 4; per++ {
		r := SharingResult{ServersPerGPU: per}
		e := sim.NewEngine(seed)
		e.Run("sweep", func(p *sim.Proc) {
			gcfg := gpuserver.DefaultConfig()
			gcfg.GPUs = 4
			gcfg.ServersPerGPU = per
			gs := gpuserver.New(e, gcfg)
			gs.Start(p)
			backend := faas.NewBackend(e, gs, faas.OpenFaaSEnv())
			var fns []*faas.Function
			for _, spec := range workloads.Smaller() {
				fns = append(fns, spec.Function())
			}
			start := p.Now()
			backend.SubmitBursts(p, fns, 10, 2*time.Second)
			backend.Drain(p)
			end := p.Now()
			r.ProviderE2E = backend.ProviderEndToEnd()
			r.E2ESum = backend.E2ESum()
			var util float64
			for _, s := range gs.Samplers() {
				util += s.MeanUtil(start, end)
			}
			r.MeanUtil = util / float64(len(gs.Samplers()))
		})
		out = append(out, r)
	}
	return out
}

// RTTResult is one point of the network-latency sensitivity sweep.
type RTTResult struct {
	Workload  string
	RTT       time.Duration
	Native    time.Duration
	DGSF      time.Duration // fully optimized synchronous guest (OptAll)
	DGSFAsync time.Duration // OptAll plus the pipelined submission lane
}

// RTTSweepRTTs lists the round-trip latencies the sweep covers, from
// in-rack to cross-zone.
func RTTSweepRTTs() []time.Duration {
	return []time.Duration{
		50 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
		1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	}
}

// RTTSweep measures two workloads under increasing remoting round-trip
// latency. DGSF beats native at in-rack latencies because
// pre-initialization outweighs per-call overhead; as the RTT grows,
// per-call overhead erases the win — quantifying how far the GPU pool can
// be disaggregated before transparency is no longer free. The async column
// shows how far the pipelined submission lane pushes that horizon: one-way
// submissions hide the outbound latency that batching alone still pays on
// every synchronizing call.
func RTTSweep(seed int64) []RTTResult {
	var out []RTTResult
	for _, spec := range []*workloads.Spec{
		workloads.FaceIdentification(), workloads.ImageClassification(),
	} {
		native := RunSingle(seed, spec, ModeNative, false).Total
		for _, rtt := range RTTSweepRTTs() {
			out = append(out, RTTResult{
				Workload:  spec.Name,
				RTT:       rtt,
				Native:    native,
				DGSF:      rttRun(seed, spec, rtt, guest.OptAll),
				DGSFAsync: rttRun(seed, spec, rtt, guest.OptAll|guest.OptAsync),
			})
		}
	}
	return out
}

// rttRun executes one cell of the RTT sweep on its own engine, so every
// configuration sees an identical virtual testbed and results are
// deterministic per (seed, workload, rtt, opt).
func rttRun(seed int64, spec *workloads.Spec, rtt time.Duration, opt guest.Opt) time.Duration {
	var total time.Duration
	e := sim.NewEngine(seed)
	e.Run("rtt", func(p *sim.Proc) {
		env := faas.OpenFaaSEnv()
		env.Net.RTT = rtt

		// Pre-warm the API server off the function's critical path,
		// as the GPU server manager does at boot.
		dev := gpu.New(e, gpu.V100Config(0))
		rt := cuda.NewRuntime(e, []*gpu.Device{dev}, cuda.DefaultCosts())
		srv := apiserver.NewServer(e, rt, apiserver.Config{
			PoolHandles: true,
			CUDACosts:   cuda.DefaultCosts(),
			LibCosts:    cudalibs.DefaultCosts(),
		})
		if err := srv.Prewarm(p); err != nil {
			panic(err)
		}
		p.SpawnDaemon("apiserver", srv.Run)

		start := p.Now()
		p.Sleep(env.Download.TransferTime(p, spec.DownloadBytes))
		conn := remoting.Dial(e, &remoting.Listener{Incoming: srv.Inbox}, env.Net)
		lib := guest.New(conn, opt)
		if err := lib.Hello(p, spec.Name, spec.MemLimit); err != nil {
			panic(err)
		}
		if err := spec.RunBody(p, lib, nil); err != nil {
			panic(err)
		}
		lib.FlushBatch(p)
		if err := lib.Bye(p); err != nil {
			panic(err)
		}
		total = p.Now() - start
	})
	return total
}

// ScaleResult is one point of the GPU-server scale-out experiment.
type ScaleResult struct {
	Servers     int
	Pick        string
	ProviderE2E time.Duration
	E2ESum      time.Duration
}

// ScaleOut runs a heavy stream over one and two GPU servers with fixed and
// least-loaded selection, demonstrating §IV's "scaling up GPU servers in
// DGSF is simple" and the selection policies it sketches.
func ScaleOut(seed int64) []ScaleResult {
	type cfg struct {
		n    int
		pick faas.ServerPick
		name string
	}
	cfgs := []cfg{
		{1, faas.PickFixed, "fixed"},
		{2, faas.PickFixed, "fixed"},
		{2, faas.PickLeastLoaded, "least-loaded"},
	}
	var out []ScaleResult
	for _, c := range cfgs {
		r := ScaleResult{Servers: c.n, Pick: c.name}
		e := sim.NewEngine(seed)
		e.Run("scale", func(p *sim.Proc) {
			var servers []*gpuserver.GPUServer
			for i := 0; i < c.n; i++ {
				gcfg := gpuserver.DefaultConfig()
				gcfg.GPUs = 2
				gs := gpuserver.New(e, gcfg)
				gs.Start(p)
				servers = append(servers, gs)
			}
			backend := faas.NewMultiBackend(e, servers, c.pick, faas.OpenFaaSEnv())
			var fns []*faas.Function
			for _, spec := range workloads.Smaller() {
				f := spec.Function()
				for i := 0; i < 6; i++ {
					fns = append(fns, f)
				}
			}
			p.Rand().Shuffle(len(fns), func(i, j int) { fns[i], fns[j] = fns[j], fns[i] })
			backend.SubmitSequence(p, fns, faas.ExponentialArrivals(p, 2*time.Second))
			backend.Drain(p)
			r.ProviderE2E = backend.ProviderEndToEnd()
			r.E2ESum = backend.E2ESum()
		})
		out = append(out, r)
	}
	return out
}
