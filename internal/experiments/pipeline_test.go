package experiments

import "testing"

// TestPipelineAcceptance asserts the experiment's headline claims on seed 1
// (CI runs the binary across seeds 1, 2, 3 and 7): GPU-side handoff strictly
// beats the bounce for same-server chains, peer copies beat the bounce at
// every RTT, and an N-way fan-out costs exactly one host-staged model read.
func TestPipelineAcceptance(t *testing.T) {
	r := RunPipeline(1)
	t.Logf("same-server: handoff %v bounce %v (exports %d imports %d bypass %d)",
		r.SameHandoff, r.SameBounce, r.Exports, r.Imports, r.BypassHits)

	if r.SameHandoff >= r.SameBounce {
		t.Errorf("same-server handoff %v not below bounce %v", r.SameHandoff, r.SameBounce)
	}
	if r.BypassHits == 0 {
		t.Error("same-server chains recorded no bypass hits")
	}
	if r.Fallbacks != 0 {
		t.Errorf("healthy run recorded %d fallbacks", r.Fallbacks)
	}
	if r.Exports == 0 || r.Imports == 0 {
		t.Errorf("data plane unused: exports=%d imports=%d", r.Exports, r.Imports)
	}

	if len(r.Cross) == 0 {
		t.Fatal("no cross-server points")
	}
	for _, pt := range r.Cross {
		t.Logf("cross-server rtt %v: peer %v bounce %v (copies %d)", pt.RTT, pt.Peer, pt.Bounce, pt.PeerCopies)
		if pt.Peer >= pt.Bounce {
			t.Errorf("rtt %v: peer copy %v not below bounce %v", pt.RTT, pt.Peer, pt.Bounce)
		}
		if pt.PeerCopies == 0 {
			t.Errorf("rtt %v: no peer copies recorded", pt.RTT)
		}
	}

	t.Logf("fan-out %d: broadcast %v baseline %v (loads %d clones %d)",
		r.FanOut, r.BroadcastE2E, r.BaselineE2E, r.BroadcastLoads, r.BroadcastClones)
	if r.BroadcastLoads != 1 {
		t.Errorf("broadcast loads = %d, want exactly 1 host-staged read", r.BroadcastLoads)
	}
	if r.BroadcastClones != int64(r.FanOut-1) {
		t.Errorf("broadcast clones = %d, want %d", r.BroadcastClones, r.FanOut-1)
	}
	if r.BroadcastE2E >= r.BaselineE2E {
		t.Errorf("broadcast burst %v not below baseline %v", r.BroadcastE2E, r.BaselineE2E)
	}
}

// TestPipelineFaultScenario asserts the crash-mid-handoff scenario completes
// every chain with at least one host-bounce fallback and zero failures.
func TestPipelineFaultScenario(t *testing.T) {
	for _, sc := range faultsScenarios() {
		if !sc.pipeline {
			continue
		}
		r := runFaultScenario(1, sc)
		t.Logf("%s: invs=%d failed=%d gpu=%d fallback=%d recoveries=%d",
			r.Scenario, r.Invocations, r.Failed, r.GPUChains, r.Fallbacks, r.Recoveries)
		if r.Failed != 0 {
			t.Errorf("%s: %d chains failed, want 0", r.Scenario, r.Failed)
		}
		if r.Fallbacks == 0 {
			t.Errorf("%s: no fallback recorded; the injected crash missed the handoff window", r.Scenario)
		}
		if r.GPUChains == 0 {
			t.Errorf("%s: no chain completed over the GPU path", r.Scenario)
		}
		if r.FailedGS != 1 {
			t.Errorf("%s: injector failed %d GPU servers, want 1", r.Scenario, r.FailedGS)
		}
	}
}
