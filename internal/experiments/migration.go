package experiments

import (
	"fmt"
	"time"

	"dgsf/internal/apiserver"
	"dgsf/internal/cuda"
	"dgsf/internal/cudalibs"
	"dgsf/internal/faas"
	"dgsf/internal/gpu"
	"dgsf/internal/gpuserver"
	"dgsf/internal/guest"
	"dgsf/internal/native"
	"dgsf/internal/remoting"
	"dgsf/internal/remoting/gen"
	"dgsf/internal/sim"
	"dgsf/internal/workloads"
)

// Table5Row is one row of Table V: the synthetic migration microbenchmark
// at one array size.
type Table5Row struct {
	ArrayMB      int64
	NativeE2E    time.Duration
	DGSFE2E      time.Duration
	MigratedE2E  time.Duration
	MigrationDur time.Duration
}

// Table5Sizes are the array sizes the paper measures: the memory
// requirements of three of its workloads plus K-means.
var Table5Sizes = []int64{323, 3514, 7802, 13194}

// syntheticApp is the paper's migration microbenchmark: allocate one array,
// zero it with cudaMemset, and launch two kernels that touch every element
// (§VIII-E). A single large array is the worst case for migration because
// the copy cannot be parallelized.
func syntheticApp(p *sim.Proc, api gen.API, bytes int64, betweenKernels func(*sim.Proc)) error {
	fns, err := api.RegisterKernels(p, []string{"touch"})
	if err != nil {
		return err
	}
	arr, err := api.Malloc(p, bytes)
	if err != nil {
		return err
	}
	if err := api.Memset(p, arr, 0, bytes); err != nil {
		return err
	}
	launch := func() error {
		if err := api.LaunchKernel(p, cuda.LaunchParams{Fn: fns[0], Duration: 5 * time.Millisecond, Mutates: []cuda.DevPtr{arr}}); err != nil {
			return err
		}
		return api.StreamSynchronize(p, 0)
	}
	if err := launch(); err != nil {
		return err
	}
	if betweenKernels != nil {
		betweenKernels(p)
	}
	if err := launch(); err != nil {
		return err
	}
	return api.Free(p, arr)
}

// Table5 reproduces Table V: native vs DGSF vs DGSF-with-forced-migration
// end-to-end times of the synthetic application, averaged over runs.
func Table5(seed int64, runs int) []Table5Row {
	if runs <= 0 {
		runs = 3
	}
	out := make([]Table5Row, 0, len(Table5Sizes))
	for _, mb := range Table5Sizes {
		row := Table5Row{ArrayMB: mb}
		for r := 0; r < runs; r++ {
			s := seed + int64(r)
			n, d, m, md := runMicro(s, mb<<20)
			row.NativeE2E += n
			row.DGSFE2E += d
			row.MigratedE2E += m
			row.MigrationDur += md
		}
		row.NativeE2E /= time.Duration(runs)
		row.DGSFE2E /= time.Duration(runs)
		row.MigratedE2E /= time.Duration(runs)
		row.MigrationDur /= time.Duration(runs)
		out = append(out, row)
	}
	return out
}

// runMicro measures the three Table V configurations at one array size.
func runMicro(seed int64, bytes int64) (nativeE2E, dgsfE2E, migratedE2E, migDur time.Duration) {
	// Native: CUDA initialization dominates (~3 s, §VIII-E).
	e := sim.NewEngine(seed)
	e.Run("native", func(p *sim.Proc) {
		dev := gpu.New(e, gpu.V100Config(0))
		rt := cuda.NewRuntime(e, []*gpu.Device{dev}, cuda.DefaultCosts())
		api := nativeBackend(rt)
		start := p.Now()
		if err := api.Hello(p, "micro", 15<<30); err != nil {
			panic(err)
		}
		if err := syntheticApp(p, api, bytes, nil); err != nil {
			panic(err)
		}
		nativeE2E = p.Now() - start
	})

	// DGSF with and without a forced migration right before the second
	// kernel.
	for _, migrate := range []bool{false, true} {
		e := sim.NewEngine(seed)
		e.Run("dgsf", func(p *sim.Proc) {
			devs := []*gpu.Device{gpu.New(e, gpu.V100Config(0)), gpu.New(e, gpu.V100Config(1))}
			rt := cuda.NewRuntime(e, devs, cuda.DefaultCosts())
			srv := apiserver.NewServer(e, rt, apiserver.Config{
				PoolHandles: true,
				CUDACosts:   cuda.DefaultCosts(),
				LibCosts:    cudalibs.DefaultCosts(),
			})
			if err := srv.Prewarm(p); err != nil {
				panic(err)
			}
			p.SpawnDaemon("apiserver", srv.Run)
			conn := remoting.Dial(e, &remoting.Listener{Incoming: srv.Inbox}, remoting.OpenFaaSNet())
			lib := guest.New(conn, guest.OptAll)
			start := p.Now()
			if err := lib.Hello(p, "micro", 15<<30); err != nil {
				panic(err)
			}
			between := func(p *sim.Proc) {}
			if migrate {
				between = func(p *sim.Proc) {
					done := sim.NewQueue[time.Duration](e)
					srv.Inbox.Send(remoting.Request{Ctrl: apiserver.MigrateRequest{TargetDev: 1, Done: done}})
					migDur, _ = done.Recv(p)
				}
			}
			if err := syntheticApp(p, lib, bytes, between); err != nil {
				panic(err)
			}
			lib.FlushBatch(p)
			if err := lib.Bye(p); err != nil {
				panic(err)
			}
			if migrate {
				migratedE2E = p.Now() - start
			} else {
				dgsfE2E = p.Now() - start
			}
		})
	}
	return
}

// Fig8Result is one configuration of the Figure 8 scenario.
type Fig8Result struct {
	Config      string
	Total       time.Duration // time to finish all four functions
	Migrations  int
	UtilSeries  [][]gpu.Sample // per GPU, moving average window 5
	PerWorkload map[string]time.Duration
}

// Figure8 reproduces the §VIII-E migration case study: two NLP and two
// image-classification functions on a two-GPU server. The image
// classifications download more data, so the NLPs reach the GPUs first.
// Configurations: no sharing, worst-fit sharing, best-fit sharing (the
// pathological case: both NLPs pack onto one GPU) and best-fit sharing with
// migration (the monitor repairs the imbalance once the classifications
// finish).
func Figure8(seed int64) []Fig8Result {
	configs := []struct {
		name      string
		perGPU    int
		policy    gpuserver.Policy
		migration bool
	}{
		{"no-sharing", 1, gpuserver.BestFit, false},
		{"worst-fit", 2, gpuserver.WorstFit, false},
		{"best-fit", 2, gpuserver.BestFit, false},
		{"best-fit+migration", 2, gpuserver.BestFit, true},
	}
	var out []Fig8Result
	for _, c := range configs {
		r := Fig8Result{Config: c.name, PerWorkload: map[string]time.Duration{}}
		e := sim.NewEngine(seed)
		e.Run("fig8", func(p *sim.Proc) {
			gcfg := gpuserver.DefaultConfig()
			gcfg.GPUs = 2
			gcfg.ServersPerGPU = c.perGPU
			gcfg.Policy = c.policy
			gcfg.EnableMigration = c.migration
			gcfg.MinImbalanceTicks = 3
			gs := gpuserver.New(e, gcfg)
			gs.Start(p)
			// Deterministic downloads: the scenario depends on the NLP
			// functions (1262 MB) reaching the GPUs just before the image
			// classifications (1297 MB), as in the paper's run.
			env := faas.OpenFaaSEnv()
			env.Download.JitterFrac = 0
			backend := faas.NewBackend(e, gs, env)
			nlp := workloads.QuestionAnswering().Function()
			img := workloads.ImageClassification().Function()
			start := p.Now()
			for i := 0; i < 2; i++ {
				backend.Submit(p, nlp)
			}
			for i := 0; i < 2; i++ {
				backend.Submit(p, img)
			}
			backend.Drain(p)
			r.Total = p.Now() - start
			r.Migrations = gs.Migrations()
			for name, s := range backend.PerFunction() {
				r.PerWorkload[name] = s.MeanE2E()
			}
			for _, inv := range backend.Invocations() {
				if inv.Err != nil {
					panic(fmt.Sprintf("fig8 %s: %v", c.name, inv.Err))
				}
			}
			for _, s := range gs.Samplers() {
				r.UtilSeries = append(r.UtilSeries, s.MovingAverage(5))
			}
		})
		out = append(out, r)
	}
	return out
}

// nativeBackend adapts a runtime to the generated API for the micro
// benchmark's native arm.
func nativeBackend(rt *cuda.Runtime) gen.API {
	return native.New(rt, cudalibs.DefaultCosts())
}
