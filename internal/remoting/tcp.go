package remoting

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"dgsf/internal/sim"
)

// TCP transport: the same framed messages the simulated transport carries,
// over real sockets. Used by cmd/gpuserver and cmd/dgsf-run to demonstrate
// guest↔API-server remoting across processes; experiments use the simulated
// transport.
//
// Frame layout (little-endian):
//
//	uint32  payload length
//	int64   logical data bytes accompanying the payload
//	[]byte  payload
//
// frameHeaderLen is the fixed frame header size.
const frameHeaderLen = 12

// maxFrameLen bounds incoming frames (a corrupted length prefix must not
// cause a giant allocation).
const maxFrameLen = 64 << 20

// WriteFrame writes one framed message.
func WriteFrame(w io.Writer, payload []byte, data int64) error {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(data))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one framed message.
func ReadFrame(r io.Reader) (payload []byte, data int64, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxFrameLen {
		return nil, 0, fmt.Errorf("remoting: frame of %d bytes exceeds limit", n)
	}
	data = int64(binary.LittleEndian.Uint64(hdr[4:12]))
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, err
	}
	return payload, data, nil
}

// tcpCaller implements Caller over a TCP connection. Calls are strictly
// request/response, matching the guest library's synchronous use.
type tcpCaller struct {
	mu   sync.Mutex
	conn net.Conn
}

// DialTCP connects a guest library to a TCP API server endpoint.
func DialTCP(addr string) (Caller, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpCaller{conn: conn}, nil
}

// Roundtrip sends one framed call and reads the framed reply. The sim
// process identity is unused: real sockets pace themselves in wall time.
func (c *tcpCaller) Roundtrip(p *sim.Proc, req []byte, reqData int64) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteFrame(c.conn, req, reqData); err != nil {
		return nil, err
	}
	payload, _, err := ReadFrame(c.conn)
	return payload, err
}

// Close closes the underlying connection.
func (c *tcpCaller) Close() { _ = c.conn.Close() }

// ServeConn bridges one accepted TCP connection into an API server's inbox
// on an open-mode engine: a reader goroutine turns frames into Requests, and
// a simulated writer process streams Responses back to the socket. It
// returns immediately with a channel that closes when the connection drops;
// the bridge lives until then.
func ServeConn(e *sim.Engine, conn net.Conn, inbox *sim.Queue[Request]) <-chan struct{} {
	done := make(chan struct{})
	replies := sim.NewQueue[Response](e)
	e.InjectDaemon("tcp-writer", func(p *sim.Proc) {
		for {
			r, ok := replies.Recv(p)
			if !ok {
				_ = conn.Close()
				return
			}
			if err := WriteFrame(conn, r.Payload, r.RespData); err != nil {
				_ = conn.Close()
				return
			}
		}
	})
	go func() {
		defer close(done)
		defer replies.Close()
		for {
			payload, data, err := ReadFrame(conn)
			if err != nil {
				return
			}
			inbox.Send(Request{Payload: payload, ReqData: data, ReplyTo: replies})
		}
	}()
	return done
}
