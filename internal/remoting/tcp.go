package remoting

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dgsf/internal/sim"
)

// TCP transport: the same framed messages the simulated transport carries,
// over real sockets. Used by cmd/gpuserver and cmd/dgsf-run to demonstrate
// guest↔API-server remoting across processes; experiments use the simulated
// transport.
//
// Protocol v1 frame layout (little-endian):
//
//	uint32  payload length
//	int64   logical data bytes accompanying the payload
//	[]byte  payload
//
// Protocol v2 (see protocol.go) prefixes a magic/version/flags header and
// splits the payload into metadata + an optional bulk region written as one
// vectored writev. Connections negotiate the version with a hello round trip
// at dial time; see DialTCPVersion / ServeConnVersion.
//
// frameHeaderLen is the fixed v1 frame header size.
const frameHeaderLen = 12

// maxFrameLen bounds incoming frames (a corrupted length prefix must not
// cause a giant allocation).
const maxFrameLen = 64 << 20

// maxPooledFrame caps the frame buffers retained by the pool.
const maxPooledFrame = 64 << 10

// framePool recycles outbound frame buffers so steady-state framing does not
// allocate. Buffers are owned by the writer until the write returns.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// appendFrame builds one framed message (header + payload coalesced) on top
// of buf and returns the extended slice.
func appendFrame(buf, payload []byte, data int64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(data))
	return append(buf, payload...)
}

// WriteFrame writes one framed message with a single Write call, so each
// frame is one syscall (and, with TCP_NODELAY, at most one segment when it
// fits). Frame buffers of every size are pooled: small ones in framePool,
// larger ones in the size-classed large pools, so large v1 frames no longer
// allocate per call.
func WriteFrame(w io.Writer, payload []byte, data int64) error {
	bp := getFrameBuf(frameHeaderLen + len(payload))
	buf := appendFrame((*bp)[:0], payload, data)
	_, err := w.Write(buf)
	putFrameBuf(bp, buf)
	if err == nil {
		wireTx(ProtoV1, int64(frameHeaderLen+len(payload)))
	}
	return err
}

// ReadFrame reads one framed message. The header is read into a pooled
// buffer (a stack array would escape through the io.Reader interface); the
// returned payload is freshly allocated and owned by the caller — the only
// steady-state allocation.
func ReadFrame(r io.Reader) (payload []byte, data int64, err error) {
	return ReadFrameReuse(r, nil)
}

// ReadFrameReuse is ReadFrame with a caller-supplied payload buffer: when
// the frame fits in cap(buf) the payload is read into it and no allocation
// happens; otherwise a larger buffer is allocated, which the caller can
// keep for the next frame. The returned payload therefore may alias buf —
// the caller owns both and must finish with the payload before reusing the
// buffer. Use only where one reader owns the stream (e.g. a caller whose
// round trips are serialized); concurrent readers must use ReadFrame.
func ReadFrameReuse(r io.Reader, buf []byte) (payload []byte, data int64, err error) {
	bp := framePool.Get().(*[]byte)
	defer framePool.Put(bp)
	hdr := (*bp)[:frameHeaderLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, 0, wrapReadErr(err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxFrameLen {
		return nil, 0, fmt.Errorf("%w: frame of %d bytes exceeds %d-byte limit", ErrFrameCorrupt, n, maxFrameLen)
	}
	data = int64(binary.LittleEndian.Uint64(hdr[4:12]))
	payload, err = readPayload(r, buf, int(n))
	if err != nil {
		return nil, 0, err
	}
	wireRx(ProtoV1, int64(frameHeaderLen)+int64(n))
	return payload, data, nil
}

// readPayload reads n payload bytes, into buf when it fits. Frames up to
// maxPooledFrame (the steady state) allocate at most once; larger claims
// grow the buffer geometrically as bytes actually arrive, so a corrupted
// length prefix just under maxFrameLen on a truncated stream cannot force
// a 64 MiB up-front allocation.
func readPayload(r io.Reader, buf []byte, n int) ([]byte, error) {
	if n <= cap(buf) {
		out := buf[:n]
		if _, err := io.ReadFull(r, out); err != nil {
			return nil, wrapReadErr(err)
		}
		return out, nil
	}
	if n <= maxPooledFrame {
		out := make([]byte, n)
		if _, err := io.ReadFull(r, out); err != nil {
			return nil, wrapReadErr(err)
		}
		return out, nil
	}
	buf = make([]byte, 0, maxPooledFrame)
	for len(buf) < n {
		if len(buf) == cap(buf) {
			newCap := cap(buf) * 2
			if newCap > n {
				newCap = n
			}
			grown := make([]byte, len(buf), newCap)
			copy(grown, buf)
			buf = grown
		}
		m, err := io.ReadFull(r, buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+m]
		if err != nil {
			return nil, wrapReadErr(err)
		}
	}
	return buf, nil
}

// wrapReadErr types a raw socket read error: orderly or abrupt peer death
// becomes ErrConnClosed, a read deadline becomes ErrCallTimeout, so callers
// can distinguish connection faults from protocol bugs without string
// matching.
func wrapReadErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF), errors.Is(err, net.ErrClosed):
		return fmt.Errorf("%w: %v", ErrConnClosed, err)
	default:
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return fmt.Errorf("%w: %v", ErrCallTimeout, err)
		}
		return fmt.Errorf("%w: %v", ErrConnClosed, err)
	}
}

// setNoDelay disables Nagle's algorithm explicitly on TCP connections: the
// remoting protocol is latency-bound request/response traffic, and every
// frame is already written as one segment-sized buffer.
func setNoDelay(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
}

// tcpWindow bounds the frames queued to the writer goroutine but not yet
// handed to the kernel: the transport-level in-flight window of the
// pipelined lane.
const tcpWindow = 64

// outFrame is one message queued to the writer goroutine: a pooled buffer
// holding the (already framed) header + payload, plus an optional borrowed
// bulk region written as the second vector of a writev. bulk is only ever
// non-nil for synchronous vec calls, whose caller blocks until the reply —
// which cannot arrive before the writer has finished with the slice.
type outFrame struct {
	bp   *[]byte
	bulk []byte
}

// tcpCaller implements AsyncCaller (and VecCaller) over a TCP connection.
// Synchronous calls are strictly request/response; Submit hands pre-framed
// one-way messages to a writer goroutine, which preserves FIFO order between
// the two kinds.
type tcpCaller struct {
	mu     sync.Mutex // serializes synchronous round trips
	conn   net.Conn
	ver    int // negotiated protocol version, fixed at dial time
	sendCh chan outFrame

	// readBuf is the reply buffer reused across round trips (guarded by
	// mu). Returned payloads alias it, per the Caller contract: a reply is
	// valid only until the next call on the same caller.
	readBuf []byte

	closeOnce sync.Once
	writeErr  error
	writeDone chan struct{}
}

// DialTCP connects a guest library to a TCP API server endpoint, negotiating
// the highest mutually supported protocol version before the first call.
func DialTCP(addr string) (AsyncCaller, error) {
	return DialTCPVersion(addr, MaxProtoVersion)
}

// DialTCPVersion is DialTCP with an explicit protocol ceiling. maxVer
// ProtoV1 skips the hello entirely and behaves exactly like an old build;
// otherwise one hello round trip runs on the raw connection before the
// writer goroutine starts, so by the time the caller sees the connection the
// version is settled. A v1 server rejects the hello's unknown call ID, which
// reads as "fall back to v1".
func DialTCPVersion(addr string, maxVer int) (AsyncCaller, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	setNoDelay(conn)
	ver := ProtoV1
	if maxVer >= ProtoV2 {
		if err := WriteFrame(conn, helloRequest(maxVer), 0); err != nil {
			_ = conn.Close()
			return nil, err
		}
		resp, _, err := ReadFrame(conn)
		if err != nil {
			_ = conn.Close()
			return nil, fmt.Errorf("protocol hello: %w", err)
		}
		if v, ok := parseHelloReply(resp); ok && v <= maxVer {
			ver = v
		}
		wireHello(ver)
	}
	c := &tcpCaller{
		conn:      conn,
		ver:       ver,
		sendCh:    make(chan outFrame, tcpWindow),
		writeDone: make(chan struct{}),
	}
	go c.writer()
	return c, nil
}

// ProtoVersion implements VecCaller.
func (c *tcpCaller) ProtoVersion() int { return c.ver }

// writer drains the send queue onto the socket, one Write (or writev, for
// frames with a bulk vector) per frame. On a write error it records the
// error, tears the connection down and keeps draining so senders never block
// forever.
func (c *tcpCaller) writer() {
	defer close(c.writeDone)
	for f := range c.sendCh {
		if c.writeErr == nil {
			var err error
			if f.bulk != nil {
				err = writeVec(c.conn, *f.bp, f.bulk)
			} else {
				_, err = c.conn.Write(*f.bp)
			}
			if err != nil {
				c.writeErr = err
				_ = c.conn.Close()
			} else {
				wireTx(c.ver, int64(len(*f.bp)+len(f.bulk)))
			}
		}
		putFrameBuf(f.bp, *f.bp)
	}
}

// enqueue frames a message for the negotiated version and hands it to the
// writer goroutine, blocking when the in-flight window is full.
func (c *tcpCaller) enqueue(payload []byte, data int64) {
	if c.ver >= ProtoV2 {
		bp := getFrameBuf(frameHeaderLenV2 + len(payload))
		*bp = appendFrameV2((*bp)[:0], payload, 0, data)
		c.sendCh <- outFrame{bp: bp}
		return
	}
	bp := getFrameBuf(frameHeaderLen + len(payload))
	*bp = appendFrame((*bp)[:0], payload, data)
	c.sendCh <- outFrame{bp: bp}
}

// enqueueVec frames a v2 bulk message: metadata coalesced into a pooled
// buffer, the bulk slice borrowed and attached as the writev's second vector
// (small bulks are coalesced too — one contiguous write beats scatter
// bookkeeping below vecCoalesceMax).
func (c *tcpCaller) enqueueVec(payload, bulk []byte) {
	n := frameHeaderLenV2 + len(payload)
	if len(bulk) <= vecCoalesceMax && n+len(bulk) <= maxPooledFrame {
		bp := getFrameBuf(n + len(bulk))
		*bp = append(appendFrameV2((*bp)[:0], payload, len(bulk), 0), bulk...)
		c.sendCh <- outFrame{bp: bp}
		return
	}
	bp := getFrameBuf(n)
	*bp = appendFrameV2((*bp)[:0], payload, len(bulk), 0)
	c.sendCh <- outFrame{bp: bp, bulk: bulk}
}

// Roundtrip sends one framed call and reads the framed reply. The sim
// process identity is unused: real sockets pace themselves in wall time.
// Because async submissions receive no reply, the next frame read off the
// socket is always this call's response.
func (c *tcpCaller) Roundtrip(p *sim.Proc, req []byte, reqData int64) ([]byte, error) {
	return c.RoundtripTimeout(p, req, reqData, 0)
}

// RoundtripTimeout is Roundtrip with a wall-clock reply deadline (d <= 0
// means none). On timeout the socket is closed: a late reply cannot be
// re-matched to its request.
func (c *tcpCaller) RoundtripTimeout(p *sim.Proc, req []byte, reqData int64, d time.Duration) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enqueue(req, reqData)
	if d > 0 {
		//lint:allow simdeterminism the TCP transport runs against the real network, so deadlines are real-clock by design
		_ = c.conn.SetReadDeadline(time.Now().Add(d))
		defer c.conn.SetReadDeadline(time.Time{})
	}
	payload, _, err := c.readReply(nil)
	return payload, err
}

// RoundtripVec implements VecCaller over TCP: the bulk slice is borrowed into
// the writer's writev (never copied), and the reply's bulk region is
// scatter-read straight into respDst. The caller owns reqBulk again when this
// returns — the reply cannot have arrived before the writer finished sending
// the bulk.
func (c *tcpCaller) RoundtripVec(p *sim.Proc, req, reqBulk, respDst []byte) ([]byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ver < ProtoV2 {
		return nil, nil, fmt.Errorf("remoting: RoundtripVec requires protocol v2 (connection negotiated v%d)", c.ver)
	}
	c.enqueueVec(req, reqBulk)
	return c.readReply(respDst)
}

// readReply reads one reply frame for the negotiated version, reusing the
// connection's reply buffer and typing errors. Callers hold mu.
func (c *tcpCaller) readReply(respDst []byte) (payload, bulk []byte, err error) {
	if c.ver >= ProtoV2 {
		payload, bulk, _, err = ReadFrameInto(c.conn, c.readBuf, respDst)
	} else {
		payload, _, err = ReadFrameReuse(c.conn, c.readBuf)
	}
	// Keep a grown buffer for the next reply, but never pin a huge one.
	if cap(payload) > cap(c.readBuf) && cap(payload) <= maxPooledFrame {
		c.readBuf = payload[:0]
	}
	if err != nil {
		if c.writeErr != nil {
			err = fmt.Errorf("%w: %v", ErrConnClosed, c.writeErr)
		}
		if errors.Is(err, ErrCallTimeout) {
			_ = c.conn.Close()
		}
	}
	return payload, bulk, err
}

// Submit queues one one-way framed message without waiting for any
// acknowledgement. Ordering with later Roundtrips is FIFO through the
// writer goroutine; the window bounds queued-but-unwritten frames.
func (c *tcpCaller) Submit(p *sim.Proc, req []byte, reqData int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.writeErr != nil {
		return fmt.Errorf("%w: %v", ErrConnClosed, c.writeErr)
	}
	c.enqueue(req, reqData)
	return nil
}

// Close stops the writer and closes the underlying connection.
func (c *tcpCaller) Close() {
	c.closeOnce.Do(func() {
		close(c.sendCh)
		<-c.writeDone
		_ = c.conn.Close()
	})
}

// ServeConn bridges one accepted TCP connection into an API server's inbox
// on an open-mode engine: a reader goroutine turns frames into Requests, and
// a simulated writer process streams Responses back to the socket. It
// returns immediately with a channel that closes when the connection drops;
// the bridge lives until then. The bridge answers protocol hellos itself
// (speaking up to MaxProtoVersion) and reframes per the negotiated version.
func ServeConn(e *sim.Engine, conn net.Conn, inbox *sim.Queue[Request]) <-chan struct{} {
	return ServeConnVersion(e, conn, inbox, MaxProtoVersion)
}

// ServeConnVersion is ServeConn with an explicit protocol ceiling: maxVer
// ProtoV1 makes the bridge behave exactly like an old build (a dialer's hello
// is forwarded as an unknown call and rejected, which downgrades the client).
func ServeConnVersion(e *sim.Engine, conn net.Conn, inbox *sim.Queue[Request], maxVer int) <-chan struct{} {
	setNoDelay(conn)
	done := make(chan struct{})
	replies := sim.NewQueue[Response](e)
	e.InjectDaemon("tcp-writer", func(p *sim.Proc) {
		for {
			r, ok := replies.Recv(p)
			if !ok {
				_ = conn.Close()
				return
			}
			// Frame per the version stamped on the response: the hello reply
			// is pinned to v1 (both sides still speak v1 at that instant),
			// everything after a v2 negotiation goes vectored.
			var err error
			if r.Proto >= ProtoV2 {
				err = WriteFrameVec(conn, r.Payload, r.Bulk, r.RespData)
			} else {
				err = WriteFrame(conn, r.Payload, r.RespData)
			}
			if err != nil {
				_ = conn.Close()
				return
			}
		}
	})
	go func() {
		defer close(done)
		defer replies.Close()
		ver := ProtoV1
		first := true
		// bulkBuf is reused across bulk frames: only synchronous calls carry
		// bulk (apigen enforces it), so the guest cannot send the next frame
		// before the handler is done with the previous bulk region.
		var bulkBuf []byte
		for {
			var payload, bulk []byte
			var data int64
			var err error
			if ver >= ProtoV2 {
				payload, bulk, data, err = ReadFrameInto(conn, nil, bulkBuf)
				if cap(bulk) > cap(bulkBuf) {
					bulkBuf = bulk[:0]
				}
			} else {
				payload, data, err = ReadFrame(conn)
			}
			if err != nil {
				return
			}
			if first {
				first = false
				if reply, v, ok := HandleHello(payload, maxVer); ok {
					if !replies.TrySend(Response{Payload: reply, Proto: ProtoV1}) {
						return
					}
					ver = v
					wireHello(ver)
					continue
				}
			}
			// The hosted API server may have crashed (closed its inbox);
			// drop the bridge rather than panic.
			if !inbox.TrySend(Request{Payload: payload, ReqData: data, Bulk: bulk, Proto: ver, ReplyTo: replies}) {
				return
			}
		}
	}()
	return done
}
