package remoting

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dgsf/internal/sim"
)

// TCP transport: the same framed messages the simulated transport carries,
// over real sockets. Used by cmd/gpuserver and cmd/dgsf-run to demonstrate
// guest↔API-server remoting across processes; experiments use the simulated
// transport.
//
// Frame layout (little-endian):
//
//	uint32  payload length
//	int64   logical data bytes accompanying the payload
//	[]byte  payload
//
// frameHeaderLen is the fixed frame header size.
const frameHeaderLen = 12

// maxFrameLen bounds incoming frames (a corrupted length prefix must not
// cause a giant allocation).
const maxFrameLen = 64 << 20

// maxPooledFrame caps the frame buffers retained by the pool.
const maxPooledFrame = 64 << 10

// framePool recycles outbound frame buffers so steady-state framing does not
// allocate. Buffers are owned by the writer until the write returns.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// appendFrame builds one framed message (header + payload coalesced) on top
// of buf and returns the extended slice.
func appendFrame(buf, payload []byte, data int64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(data))
	return append(buf, payload...)
}

// WriteFrame writes one framed message with a single Write call, so each
// frame is one syscall (and, with TCP_NODELAY, at most one segment when it
// fits).
func WriteFrame(w io.Writer, payload []byte, data int64) error {
	bp := framePool.Get().(*[]byte)
	buf := appendFrame((*bp)[:0], payload, data)
	_, err := w.Write(buf)
	if cap(buf) <= maxPooledFrame {
		*bp = buf[:0]
		framePool.Put(bp)
	}
	return err
}

// ReadFrame reads one framed message. The header is read into a pooled
// buffer (a stack array would escape through the io.Reader interface); the
// returned payload is freshly allocated and owned by the caller — the only
// steady-state allocation.
func ReadFrame(r io.Reader) (payload []byte, data int64, err error) {
	return ReadFrameReuse(r, nil)
}

// ReadFrameReuse is ReadFrame with a caller-supplied payload buffer: when
// the frame fits in cap(buf) the payload is read into it and no allocation
// happens; otherwise a larger buffer is allocated, which the caller can
// keep for the next frame. The returned payload therefore may alias buf —
// the caller owns both and must finish with the payload before reusing the
// buffer. Use only where one reader owns the stream (e.g. a caller whose
// round trips are serialized); concurrent readers must use ReadFrame.
func ReadFrameReuse(r io.Reader, buf []byte) (payload []byte, data int64, err error) {
	bp := framePool.Get().(*[]byte)
	defer framePool.Put(bp)
	hdr := (*bp)[:frameHeaderLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, 0, wrapReadErr(err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxFrameLen {
		return nil, 0, fmt.Errorf("%w: frame of %d bytes exceeds %d-byte limit", ErrFrameCorrupt, n, maxFrameLen)
	}
	data = int64(binary.LittleEndian.Uint64(hdr[4:12]))
	payload, err = readPayload(r, buf, int(n))
	if err != nil {
		return nil, 0, err
	}
	return payload, data, nil
}

// readPayload reads n payload bytes, into buf when it fits. Frames up to
// maxPooledFrame (the steady state) allocate at most once; larger claims
// grow the buffer geometrically as bytes actually arrive, so a corrupted
// length prefix just under maxFrameLen on a truncated stream cannot force
// a 64 MiB up-front allocation.
func readPayload(r io.Reader, buf []byte, n int) ([]byte, error) {
	if n <= cap(buf) {
		out := buf[:n]
		if _, err := io.ReadFull(r, out); err != nil {
			return nil, wrapReadErr(err)
		}
		return out, nil
	}
	if n <= maxPooledFrame {
		out := make([]byte, n)
		if _, err := io.ReadFull(r, out); err != nil {
			return nil, wrapReadErr(err)
		}
		return out, nil
	}
	buf = make([]byte, 0, maxPooledFrame)
	for len(buf) < n {
		if len(buf) == cap(buf) {
			newCap := cap(buf) * 2
			if newCap > n {
				newCap = n
			}
			grown := make([]byte, len(buf), newCap)
			copy(grown, buf)
			buf = grown
		}
		m, err := io.ReadFull(r, buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+m]
		if err != nil {
			return nil, wrapReadErr(err)
		}
	}
	return buf, nil
}

// wrapReadErr types a raw socket read error: orderly or abrupt peer death
// becomes ErrConnClosed, a read deadline becomes ErrCallTimeout, so callers
// can distinguish connection faults from protocol bugs without string
// matching.
func wrapReadErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF), errors.Is(err, net.ErrClosed):
		return fmt.Errorf("%w: %v", ErrConnClosed, err)
	default:
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return fmt.Errorf("%w: %v", ErrCallTimeout, err)
		}
		return fmt.Errorf("%w: %v", ErrConnClosed, err)
	}
}

// setNoDelay disables Nagle's algorithm explicitly on TCP connections: the
// remoting protocol is latency-bound request/response traffic, and every
// frame is already written as one segment-sized buffer.
func setNoDelay(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
}

// tcpWindow bounds the frames queued to the writer goroutine but not yet
// handed to the kernel: the transport-level in-flight window of the
// pipelined lane.
const tcpWindow = 64

// tcpCaller implements AsyncCaller over a TCP connection. Synchronous calls
// are strictly request/response; Submit hands pre-framed one-way messages to
// a writer goroutine, which preserves FIFO order between the two kinds.
type tcpCaller struct {
	mu     sync.Mutex // serializes synchronous round trips
	conn   net.Conn
	sendCh chan *[]byte // pre-framed buffers owned by the writer

	// readBuf is the reply buffer reused across round trips (guarded by
	// mu). Returned payloads alias it, per the Caller contract: a reply is
	// valid only until the next call on the same caller.
	readBuf []byte

	closeOnce sync.Once
	writeErr  error
	writeDone chan struct{}
}

// DialTCP connects a guest library to a TCP API server endpoint.
func DialTCP(addr string) (AsyncCaller, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	setNoDelay(conn)
	c := &tcpCaller{
		conn:      conn,
		sendCh:    make(chan *[]byte, tcpWindow),
		writeDone: make(chan struct{}),
	}
	go c.writer()
	return c, nil
}

// writer drains the send queue onto the socket, one Write per frame. On a
// write error it records the error, tears the connection down and keeps
// draining so senders never block forever.
func (c *tcpCaller) writer() {
	defer close(c.writeDone)
	for bp := range c.sendCh {
		if c.writeErr == nil {
			if _, err := c.conn.Write(*bp); err != nil {
				c.writeErr = err
				_ = c.conn.Close()
			}
		}
		if cap(*bp) <= maxPooledFrame {
			*bp = (*bp)[:0]
			framePool.Put(bp)
		}
	}
}

// enqueue frames a message and hands it to the writer goroutine, blocking
// when the in-flight window is full.
func (c *tcpCaller) enqueue(payload []byte, data int64) {
	bp := framePool.Get().(*[]byte)
	*bp = appendFrame((*bp)[:0], payload, data)
	c.sendCh <- bp
}

// Roundtrip sends one framed call and reads the framed reply. The sim
// process identity is unused: real sockets pace themselves in wall time.
// Because async submissions receive no reply, the next frame read off the
// socket is always this call's response.
func (c *tcpCaller) Roundtrip(p *sim.Proc, req []byte, reqData int64) ([]byte, error) {
	return c.RoundtripTimeout(p, req, reqData, 0)
}

// RoundtripTimeout is Roundtrip with a wall-clock reply deadline (d <= 0
// means none). On timeout the socket is closed: a late reply cannot be
// re-matched to its request.
func (c *tcpCaller) RoundtripTimeout(p *sim.Proc, req []byte, reqData int64, d time.Duration) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enqueue(req, reqData)
	if d > 0 {
		//lint:allow simdeterminism the TCP transport runs against the real network, so deadlines are real-clock by design
		_ = c.conn.SetReadDeadline(time.Now().Add(d))
		defer c.conn.SetReadDeadline(time.Time{})
	}
	payload, _, err := ReadFrameReuse(c.conn, c.readBuf)
	// Keep a grown buffer for the next reply, but never pin a huge one.
	if cap(payload) > cap(c.readBuf) && cap(payload) <= maxPooledFrame {
		c.readBuf = payload[:0]
	}
	if err != nil {
		if c.writeErr != nil {
			err = fmt.Errorf("%w: %v", ErrConnClosed, c.writeErr)
		}
		if errors.Is(err, ErrCallTimeout) {
			_ = c.conn.Close()
		}
	}
	return payload, err
}

// Submit queues one one-way framed message without waiting for any
// acknowledgement. Ordering with later Roundtrips is FIFO through the
// writer goroutine; the window bounds queued-but-unwritten frames.
func (c *tcpCaller) Submit(p *sim.Proc, req []byte, reqData int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.writeErr != nil {
		return fmt.Errorf("%w: %v", ErrConnClosed, c.writeErr)
	}
	c.enqueue(req, reqData)
	return nil
}

// Close stops the writer and closes the underlying connection.
func (c *tcpCaller) Close() {
	c.closeOnce.Do(func() {
		close(c.sendCh)
		<-c.writeDone
		_ = c.conn.Close()
	})
}

// ServeConn bridges one accepted TCP connection into an API server's inbox
// on an open-mode engine: a reader goroutine turns frames into Requests, and
// a simulated writer process streams Responses back to the socket. It
// returns immediately with a channel that closes when the connection drops;
// the bridge lives until then.
func ServeConn(e *sim.Engine, conn net.Conn, inbox *sim.Queue[Request]) <-chan struct{} {
	setNoDelay(conn)
	done := make(chan struct{})
	replies := sim.NewQueue[Response](e)
	e.InjectDaemon("tcp-writer", func(p *sim.Proc) {
		for {
			r, ok := replies.Recv(p)
			if !ok {
				_ = conn.Close()
				return
			}
			if err := WriteFrame(conn, r.Payload, r.RespData); err != nil {
				_ = conn.Close()
				return
			}
		}
	})
	go func() {
		defer close(done)
		defer replies.Close()
		for {
			payload, data, err := ReadFrame(conn)
			if err != nil {
				return
			}
			// The hosted API server may have crashed (closed its inbox);
			// drop the bridge rather than panic.
			if !inbox.TrySend(Request{Payload: payload, ReqData: data, ReplyTo: replies}) {
				return
			}
		}
	}()
	return done
}
