// Compatibility matrix for the wire-protocol version negotiation: every
// pairing of v1 and v2 endpoints must interoperate, over both the simulated
// transport and real TCP, across several deterministic seeds — the rolling
// upgrade story is that any mix of old and new builds keeps working.
package remoting_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"testing"

	"dgsf/internal/remoting"
	"dgsf/internal/sim"
)

var compatSeeds = []int64{1, 2, 3, 7}

// wantVer is the version the hello must land on for a given pairing.
func wantVer(clientMax, serverMax int) int {
	if clientMax >= remoting.ProtoV2 && serverMax >= remoting.ProtoV2 {
		return remoting.ProtoV2
	}
	return remoting.ProtoV1
}

// simServer is an echo server honest about its protocol ceiling: a v2-capable
// one answers hellos, a v1-only one rejects the unknown call ID with an error
// status — exactly what an old build's dispatcher does.
func simServer(p *sim.Proc, l *remoting.Listener, serverMax int) {
	p.SpawnDaemon("server", func(p *sim.Proc) {
		for {
			req, ok := l.Incoming.Recv(p)
			if !ok {
				return
			}
			if reply, _, ok := remoting.HandleHello(req.Payload, serverMax); ok {
				req.ReplyTo.TrySend(remoting.Response{Payload: reply, Proto: remoting.ProtoV1})
				continue
			}
			if len(req.Payload) >= 2 && binary.LittleEndian.Uint16(req.Payload) == remoting.CallProtoHello {
				// v1 build: unknown call, error status.
				req.ReplyTo.TrySend(remoting.Response{Payload: []byte{1, 0, 0, 0}, Proto: remoting.ProtoV1})
				continue
			}
			resp := remoting.Response{
				Payload: append([]byte("re:"), req.Payload...),
				Proto:   req.Proto,
			}
			if req.Bulk != nil {
				resp.Bulk = append([]byte(nil), req.Bulk...)
			}
			req.ReplyTo.Send(resp)
		}
	})
}

func TestCompatMatrixSim(t *testing.T) {
	versions := []int{remoting.ProtoV1, remoting.ProtoV2}
	for _, seed := range compatSeeds {
		for _, serverMax := range versions {
			for _, clientMax := range versions {
				e := sim.NewEngine(seed)
				e.Run("root", func(p *sim.Proc) {
					l := remoting.NewListener(e)
					simServer(p, l, serverMax)
					conn := remoting.DialVersion(e, l, remoting.NetProfile{}, clientMax)
					resp, err := conn.Roundtrip(p, []byte("ping"), 0)
					if err != nil {
						t.Fatalf("seed %d c%d/s%d: %v", seed, clientMax, serverMax, err)
					}
					if string(resp) != "re:ping" {
						t.Fatalf("seed %d c%d/s%d: resp %q", seed, clientMax, serverMax, resp)
					}
					want := wantVer(clientMax, serverMax)
					if v := conn.(remoting.VecCaller).ProtoVersion(); v != want {
						t.Fatalf("seed %d c%d/s%d: negotiated v%d, want v%d", seed, clientMax, serverMax, v, want)
					}
					if want == remoting.ProtoV2 {
						bulk := bytes.Repeat([]byte{0xAB}, 128<<10)
						dst := make([]byte, len(bulk))
						resp, respBulk, err := conn.(remoting.VecCaller).RoundtripVec(p, []byte("vec"), bulk, dst)
						if err != nil {
							t.Fatalf("seed %d vec: %v", seed, err)
						}
						if string(resp) != "re:vec" || !bytes.Equal(respBulk, bulk) {
							t.Fatalf("seed %d vec: corrupted round trip", seed)
						}
						if &respBulk[0] != &dst[0] {
							t.Fatalf("seed %d vec: reply bulk not scattered into caller buffer", seed)
						}
					}
				})
			}
		}
	}
}

func TestCompatSimCorruptedHello(t *testing.T) {
	// A corrupted negotiation is a corrupted stream: the first call fails
	// typed and the connection is dead — never a silent wrong-version limbo.
	for _, seed := range compatSeeds {
		e := sim.NewEngine(seed)
		e.Run("root", func(p *sim.Proc) {
			l := remoting.NewListener(e)
			simServer(p, l, remoting.MaxProtoVersion)
			conn := remoting.Dial(e, l, remoting.NetProfile{})
			conn.(remoting.Faultable).CorruptNext() // lands on the hello
			if _, err := conn.Roundtrip(p, []byte("ping"), 0); !errors.Is(err, remoting.ErrFrameCorrupt) {
				t.Fatalf("seed %d: corrupted hello error = %v, want ErrFrameCorrupt", seed, err)
			}
			if _, err := conn.Roundtrip(p, []byte("ping"), 0); !errors.Is(err, remoting.ErrConnClosed) {
				t.Fatalf("seed %d: conn after corrupt hello = %v, want ErrConnClosed", seed, err)
			}
		})
	}
}

// startTCPServer runs a ServeConnVersion bridge into an open-mode engine
// hosting an echo daemon, returning the listen address.
func startTCPServer(t *testing.T, e *sim.Engine, serverMax int) string {
	t.Helper()
	inbox := sim.NewQueue[remoting.Request](e)
	e.InjectDaemon("echo", func(p *sim.Proc) {
		for {
			req, ok := inbox.Recv(p)
			if !ok {
				return
			}
			resp := remoting.Response{
				Payload: append([]byte("re:"), req.Payload...),
				Proto:   req.Proto,
			}
			if req.Bulk != nil {
				resp.Bulk = append([]byte(nil), req.Bulk...)
			}
			req.ReplyTo.Send(resp)
		}
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			remoting.ServeConnVersion(e, conn, inbox, serverMax)
		}
	}()
	return ln.Addr().String()
}

func TestCompatMatrixTCP(t *testing.T) {
	versions := []int{remoting.ProtoV1, remoting.ProtoV2}
	for _, seed := range compatSeeds {
		for _, serverMax := range versions {
			e := sim.NewOpenEngine(seed)
			addr := startTCPServer(t, e, serverMax)
			for _, clientMax := range versions {
				caller, err := remoting.DialTCPVersion(addr, clientMax)
				if err != nil {
					t.Fatal(err)
				}
				resp, err := caller.Roundtrip(nil, []byte("ping"), 0)
				if err != nil {
					t.Fatalf("seed %d c%d/s%d: %v", seed, clientMax, serverMax, err)
				}
				if string(resp) != "re:ping" {
					t.Fatalf("seed %d c%d/s%d: resp %q", seed, clientMax, serverMax, resp)
				}
				want := wantVer(clientMax, serverMax)
				if v := caller.(remoting.VecCaller).ProtoVersion(); v != want {
					t.Fatalf("seed %d c%d/s%d: negotiated v%d, want v%d", seed, clientMax, serverMax, v, want)
				}
				if want == remoting.ProtoV2 {
					bulk := bytes.Repeat([]byte{0xCD}, 128<<10)
					dst := make([]byte, len(bulk))
					resp, respBulk, err := caller.(remoting.VecCaller).RoundtripVec(nil, []byte("vec"), bulk, dst)
					if err != nil {
						t.Fatalf("seed %d tcp vec: %v", seed, err)
					}
					if string(resp) != "re:vec" || !bytes.Equal(respBulk, bulk) {
						t.Fatalf("seed %d tcp vec: corrupted round trip", seed)
					}
					if &respBulk[0] != &dst[0] {
						t.Fatalf("seed %d tcp vec: reply bulk not scattered into caller buffer", seed)
					}
				}
				caller.Close()
			}
			e.Stop()
		}
	}
}

func TestCompatTCPGarbledHelloReplyFallsBackToV1(t *testing.T) {
	// A middlebox (or hostile peer) that answers the hello with garbage must
	// leave the client on v1, still able to talk to a v1 echo server.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// First frame is the hello: answer with bytes that parse as a
		// successful status but a nonsense negotiation payload. This peer
		// deliberately speaks raw frames — it emulates a middlebox that no
		// transport helper would produce.
		//lint:allow rawconn hostile peer emulation must hand-craft frames
		if _, _, err := remoting.ReadFrame(conn); err != nil {
			return
		}
		//lint:allow rawconn garbled hello reply, bypassing HandleHello on purpose
		if err := remoting.WriteFrame(conn, []byte{0, 0, 0, 0, 0x99, 0x77}, 0); err != nil {
			return
		}
		for { // then speak plain v1 echo
			//lint:allow rawconn raw v1 echo loop for the fallback assertion
			payload, data, err := remoting.ReadFrame(conn)
			if err != nil {
				return
			}
			//lint:allow rawconn raw v1 echo loop for the fallback assertion
			if err := remoting.WriteFrame(conn, append([]byte("re:"), payload...), data); err != nil {
				return
			}
		}
	}()
	caller, err := remoting.DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer caller.Close()
	if v := caller.(remoting.VecCaller).ProtoVersion(); v != remoting.ProtoV1 {
		t.Fatalf("garbled hello reply negotiated v%d, want fallback to v1", v)
	}
	resp, err := caller.Roundtrip(nil, []byte("ping"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "re:ping" {
		t.Fatalf("resp = %q", resp)
	}
}
