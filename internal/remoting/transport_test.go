package remoting

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"dgsf/internal/remoting/wire"
	"dgsf/internal/sim"
)

func TestSimRoundtripLatency(t *testing.T) {
	e := sim.NewEngine(1)
	var elapsed time.Duration
	e.Run("root", func(p *sim.Proc) {
		l := NewListener(e)
		p.SpawnDaemon("server", func(p *sim.Proc) {
			for {
				req, ok := l.Incoming.Recv(p)
				if !ok {
					return
				}
				req.ReplyTo.Send(Response{Payload: req.Payload})
			}
		})
		// Dial v1 explicitly: the test asserts the exact steady-state cost of
		// one round trip, and a v2-capable dial prepends a one-RTT hello
		// (covered by TestSimNegotiationCostsOneRTT).
		conn := DialVersion(e, l, NetProfile{RTT: 100 * time.Microsecond}, ProtoV1)
		start := p.Now()
		resp, err := conn.Roundtrip(p, []byte("ping"), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp, []byte("ping")) {
			t.Fatalf("echo = %q", resp)
		}
		elapsed = p.Now() - start
	})
	if elapsed != 100*time.Microsecond {
		t.Fatalf("roundtrip took %v, want exactly the RTT (100µs)", elapsed)
	}
}

func TestSimRoundtripChargesBandwidth(t *testing.T) {
	e := sim.NewEngine(1)
	var elapsed time.Duration
	e.Run("root", func(p *sim.Proc) {
		l := NewListener(e)
		p.SpawnDaemon("server", func(p *sim.Proc) {
			for {
				req, ok := l.Incoming.Recv(p)
				if !ok {
					return
				}
				req.ReplyTo.Send(Response{Payload: []byte("ok")})
			}
		})
		// 1 MB/s, no jitter: 1 MB of request payload = 1 s. v1 dial keeps the
		// hello's 6 transferred bytes out of the exact-time assertion.
		conn := DialVersion(e, l, NetProfile{Bps: 1e6}, ProtoV1)
		start := p.Now()
		if _, err := conn.Roundtrip(p, []byte("x"), 1e6-1-2); err != nil {
			t.Fatal(err)
		}
		elapsed = p.Now() - start
	})
	if elapsed != time.Second {
		t.Fatalf("1MB at 1MB/s took %v, want 1s", elapsed)
	}
}

func TestSimRoundtripJitterBounded(t *testing.T) {
	e := sim.NewEngine(9)
	e.Run("root", func(p *sim.Proc) {
		l := NewListener(e)
		p.SpawnDaemon("server", func(p *sim.Proc) {
			for {
				req, ok := l.Incoming.Recv(p)
				if !ok {
					return
				}
				req.ReplyTo.Send(Response{Payload: []byte("ok")})
			}
		})
		prof := NetProfile{Bps: 1e6, JitterFrac: 0.5}
		conn := Dial(e, l, prof)
		for i := 0; i < 20; i++ {
			start := p.Now()
			if _, err := conn.Roundtrip(p, make([]byte, 1000), 0); err != nil {
				t.Fatal(err)
			}
			got := p.Now() - start
			// 1002 bytes out + 2 bytes back at 1 MB/s nominal, ±50%.
			lo, hi := 400*time.Microsecond, 1700*time.Microsecond
			if got < lo || got > hi {
				t.Fatalf("jittered roundtrip %v outside [%v, %v]", got, lo, hi)
			}
		}
	})
}

func TestClosedConnFails(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		l := NewListener(e)
		conn := Dial(e, l, NetProfile{})
		conn.Close()
		if _, err := conn.Roundtrip(p, []byte("x"), 0); !errors.Is(err, ErrConnClosed) {
			t.Fatalf("Roundtrip on closed conn = %v, want ErrConnClosed", err)
		}
	})
}

func TestServerClosePendingRoundtripFails(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		l := NewListener(e)
		var conn Caller
		conn = Dial(e, l, NetProfile{})
		p.Spawn("closer", func(p *sim.Proc) {
			req, _ := l.Incoming.Recv(p)
			req.ReplyTo.Close()
		})
		if _, err := conn.Roundtrip(p, []byte("x"), 0); !errors.Is(err, ErrConnClosed) {
			t.Fatalf("Roundtrip with closed reply queue = %v, want ErrConnClosed", err)
		}
	})
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello dgsf")
	if err := WriteFrame(&buf, payload, 12345); err != nil {
		t.Fatal(err)
	}
	got, data, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) || data != 12345 {
		t.Fatalf("frame round trip = (%q, %d)", got, data)
	}
}

func TestFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	// A real TCP connection into an open-mode engine hosting an echo
	// service, exercising DialTCP + ServeConn end to end.
	e := sim.NewOpenEngine(1)
	defer e.Stop()
	inbox := sim.NewQueue[Request](e)
	e.InjectDaemon("echo", func(p *sim.Proc) {
		for {
			req, ok := inbox.Recv(p)
			if !ok {
				return
			}
			req.ReplyTo.Send(Response{Payload: append([]byte("re:"), req.Payload...), RespData: req.ReqData, Proto: req.Proto})
		}
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		ServeConn(e, conn, inbox)
	}()
	caller, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer caller.Close()
	for i := 0; i < 5; i++ {
		resp, err := caller.Roundtrip(nil, []byte("ping"), int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if string(resp) != "re:ping" {
			t.Fatalf("resp = %q", resp)
		}
	}
}

func TestSimSubmitOverlapsRTT(t *testing.T) {
	// Ten one-way submissions followed by one round trip cost exactly one
	// RTT of guest time: the submissions' network latency is fully hidden.
	// FIFO order through the pipe means the server sees all ten before the
	// fencing round trip.
	e := sim.NewEngine(1)
	var elapsed time.Duration
	var seenBeforeFence int
	e.Run("root", func(p *sim.Proc) {
		l := NewListener(e)
		p.SpawnDaemon("server", func(p *sim.Proc) {
			oneWay := 0
			for {
				req, ok := l.Incoming.Recv(p)
				if !ok {
					return
				}
				if req.ReplyTo == nil {
					oneWay++
					continue
				}
				seenBeforeFence = oneWay
				req.ReplyTo.Send(Response{Payload: []byte("ok")})
			}
		})
		conn := DialVersion(e, l, NetProfile{RTT: 100 * time.Microsecond}, ProtoV1)
		start := p.Now()
		for i := 0; i < 10; i++ {
			if err := conn.Submit(p, []byte("one-way"), 0); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := conn.Roundtrip(p, []byte("fence"), 0); err != nil {
			t.Fatal(err)
		}
		elapsed = p.Now() - start
	})
	if seenBeforeFence != 10 {
		t.Fatalf("server saw %d submissions before the round trip, want 10", seenBeforeFence)
	}
	if elapsed != 100*time.Microsecond {
		t.Fatalf("10 submits + 1 roundtrip took %v, want exactly one RTT (100µs)", elapsed)
	}
}

func TestSimSubmitDeterministic(t *testing.T) {
	run := func() time.Duration {
		e := sim.NewEngine(7)
		var elapsed time.Duration
		e.Run("root", func(p *sim.Proc) {
			l := NewListener(e)
			p.SpawnDaemon("server", func(p *sim.Proc) {
				for {
					req, ok := l.Incoming.Recv(p)
					if !ok {
						return
					}
					if req.ReplyTo != nil {
						req.ReplyTo.Send(Response{Payload: []byte("ok")})
					}
				}
			})
			conn := Dial(e, l, NetProfile{RTT: 150 * time.Microsecond, Bps: 1e9, JitterFrac: 0.1})
			start := p.Now()
			for i := 0; i < 50; i++ {
				if err := conn.Submit(p, make([]byte, 512), 4096); err != nil {
					t.Fatal(err)
				}
				if i%10 == 9 {
					if _, err := conn.Roundtrip(p, []byte("fence"), 0); err != nil {
						t.Fatal(err)
					}
				}
			}
			elapsed = p.Now() - start
		})
		return elapsed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced %v then %v", a, b)
	}
}

func TestSubmitOnClosedConnFails(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		l := NewListener(e)
		conn := Dial(e, l, NetProfile{})
		conn.Close()
		if err := conn.Submit(p, []byte("x"), 0); !errors.Is(err, ErrConnClosed) {
			t.Fatalf("Submit on closed conn = %v, want ErrConnClosed", err)
		}
	})
}

func TestTCPSubmitPreservesOrder(t *testing.T) {
	// One-way submissions over TCP must reach the server before a later
	// round trip, and the round trip must read its own reply (the server
	// sends none for submissions).
	e := sim.NewOpenEngine(1)
	defer e.Stop()
	inbox := sim.NewQueue[Request](e)
	e.InjectDaemon("server", func(p *sim.Proc) {
		oneWay := 0
		for {
			req, ok := inbox.Recv(p)
			if !ok {
				return
			}
			if len(req.Payload) >= 2 && string(req.Payload[:2]) == "1w" {
				oneWay++
				continue // no reply: the async contract
			}
			req.ReplyTo.Send(Response{Payload: []byte{byte(oneWay)}, Proto: req.Proto})
		}
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		ServeConn(e, conn, inbox)
	}()
	caller, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer caller.Close()
	for round := 1; round <= 3; round++ {
		for i := 0; i < 4; i++ {
			if err := caller.Submit(nil, []byte("1w-payload"), 0); err != nil {
				t.Fatal(err)
			}
		}
		resp, err := caller.Roundtrip(nil, []byte("sync"), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp) != 1 || int(resp[0]) != 4*round {
			t.Fatalf("round %d: server saw %v one-way messages, want %d", round, resp, 4*round)
		}
	}
}

func TestWriteFrameZeroAllocs(t *testing.T) {
	if wire.RaceEnabled {
		t.Skip("race detector drops sync.Pool items; alloc counts are meaningless")
	}
	payload := make([]byte, 256)
	if avg := testing.AllocsPerRun(200, func() {
		if err := WriteFrame(io.Discard, payload, 0); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("WriteFrame allocates %.1f times per frame, want 0", avg)
	}
}

func TestFrameRoundTripBoundedAllocs(t *testing.T) {
	if wire.RaceEnabled {
		t.Skip("race detector drops sync.Pool items; alloc counts are meaningless")
	}
	payload := make([]byte, 256)
	var framed bytes.Buffer
	if err := WriteFrame(&framed, payload, 7); err != nil {
		t.Fatal(err)
	}
	raw := framed.Bytes()
	var buf bytes.Buffer
	// The only steady-state allocation is the returned payload itself.
	if avg := testing.AllocsPerRun(200, func() {
		buf.Reset()
		buf.Write(raw)
		if _, _, err := ReadFrame(&buf); err != nil {
			t.Fatal(err)
		}
	}); avg > 1 {
		t.Fatalf("frame round trip allocates %.1f times, want <= 1", avg)
	}
}

// TestReadFrameReuse checks the reused-buffer read path: a fitting buffer
// is filled in place, an undersized one is replaced by a grown allocation,
// and the warm path allocates nothing.
func TestReadFrameReuse(t *testing.T) {
	var framed bytes.Buffer
	small := []byte("abc")
	big := make([]byte, 300)
	for i := range big {
		big[i] = byte(i)
	}

	// Fits: payload aliases the supplied buffer.
	if err := WriteFrame(&framed, small, 1); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 512)
	got, data, err := ReadFrameReuse(&framed, buf)
	if err != nil || data != 1 || !bytes.Equal(got, small) {
		t.Fatalf("reuse read = (%q, %d, %v)", got, data, err)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("fitting payload did not reuse the supplied buffer")
	}

	// Does not fit: a grown buffer comes back, contents intact.
	framed.Reset()
	if err := WriteFrame(&framed, big, 2); err != nil {
		t.Fatal(err)
	}
	got, data, err = ReadFrameReuse(&framed, make([]byte, 0, 16))
	if err != nil || data != 2 || !bytes.Equal(got, big) {
		t.Fatalf("grown reuse read failed: len=%d data=%d err=%v", len(got), data, err)
	}

	if !wire.RaceEnabled {
		raw := appendFrame(nil, big, 7)
		var stream bytes.Buffer
		if avg := testing.AllocsPerRun(200, func() {
			stream.Reset()
			stream.Write(raw)
			if _, _, err := ReadFrameReuse(&stream, buf); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Fatalf("warm ReadFrameReuse allocates %.1f times, want 0", avg)
		}
	}
}

// --- fault-lane tests: typed errors across connection loss ---

// TestFenceAfterConnFaultSurfacesTypedError drives the pipelined lane into
// every injectable connection fault and checks that a subsequent fence-style
// round trip returns the matching typed error instead of hanging on a reply
// that will never arrive — the failure-detection contract the guest's
// recovery layer is built on. It also checks the conn stays dead afterwards:
// later calls fail fast with ErrConnClosed rather than waiting out another
// deadline.
func TestFenceAfterConnFaultSurfacesTypedError(t *testing.T) {
	cases := []struct {
		name string
		// fault arms the failure after ten async submissions, before the
		// fence round trip.
		fault func(f Faultable)
		// serverDrops makes the server close the reply queue instead of
		// answering the fence (a peer crash with the request in flight).
		serverDrops bool
		// deadline, when non-zero, issues the fence through RoundtripTimeout.
		deadline time.Duration
		want     error
	}{
		{name: "guest side break", fault: func(f Faultable) { f.Break() }, want: ErrConnClosed},
		{name: "peer closes mid fence", serverDrops: true, want: ErrConnClosed},
		{name: "corrupt frame", fault: func(f Faultable) { f.CorruptNext() }, want: ErrFrameCorrupt},
		{name: "stall past deadline", fault: func(f Faultable) { f.StallFor(10 * time.Second) }, deadline: time.Second, want: ErrCallTimeout},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			e := sim.NewEngine(1)
			e.Run("root", func(p *sim.Proc) {
				l := NewListener(e)
				p.SpawnDaemon("server", func(p *sim.Proc) {
					for {
						req, ok := l.Incoming.Recv(p)
						if !ok {
							return
						}
						if req.ReplyTo == nil {
							continue
						}
						if tc.serverDrops {
							req.ReplyTo.Close()
							continue
						}
						req.ReplyTo.Send(Response{Payload: []byte("ok")})
					}
				})
				// v1 dial: with negotiation enabled the hello itself would
				// absorb the injected fault (legitimately, but this test pins
				// the classification surfaced through the async-lane fence).
				conn := DialVersion(e, l, NetProfile{RTT: 100 * time.Microsecond}, ProtoV1)
				for i := 0; i < 10; i++ {
					if err := conn.Submit(p, []byte("one-way"), 0); err != nil {
						t.Fatal(err)
					}
				}
				if tc.fault != nil {
					tc.fault(conn.(Faultable))
				}
				var err error
				if tc.deadline > 0 {
					_, err = conn.(DeadlineCaller).RoundtripTimeout(p, []byte("fence"), 0, tc.deadline)
				} else {
					_, err = conn.Roundtrip(p, []byte("fence"), 0)
				}
				if !errors.Is(err, tc.want) {
					t.Fatalf("fence after fault = %v, want %v", err, tc.want)
				}
				if !IsConnFault(err) {
					t.Fatalf("%v not classified as a connection fault", err)
				}
				// However the connection died, it stays dead and fails fast.
				start := p.Now()
				if _, err := conn.Roundtrip(p, []byte("fence"), 0); !errors.Is(err, ErrConnClosed) {
					t.Fatalf("fence on dead conn = %v, want ErrConnClosed", err)
				}
				if waited := p.Now() - start; waited != 0 {
					t.Fatalf("call on dead conn waited %v, want immediate failure", waited)
				}
				if err := conn.Submit(p, []byte("one-way"), 0); !errors.Is(err, ErrConnClosed) {
					t.Fatalf("submit on dead conn = %v, want ErrConnClosed", err)
				}
			})
		})
	}
}

// TestRoundtripTimeoutHappyPathUnaffected: a deadline on a healthy conn is
// free — same reply, same virtual-time cost as the plain call.
func TestRoundtripTimeoutHappyPathUnaffected(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		l := NewListener(e)
		p.SpawnDaemon("server", func(p *sim.Proc) {
			for {
				req, ok := l.Incoming.Recv(p)
				if !ok {
					return
				}
				req.ReplyTo.Send(Response{Payload: req.Payload})
			}
		})
		conn := DialVersion(e, l, NetProfile{RTT: 100 * time.Microsecond}, ProtoV1).(DeadlineCaller)
		start := p.Now()
		resp, err := conn.RoundtripTimeout(p, []byte("ping"), 0, time.Second)
		if err != nil || !bytes.Equal(resp, []byte("ping")) {
			t.Fatalf("deadline roundtrip = %q, %v", resp, err)
		}
		if got := p.Now() - start; got != 100*time.Microsecond {
			t.Fatalf("deadline roundtrip took %v, want the RTT", got)
		}
	})
}

// TestConnFaultClassification pins down which sentinels count as connection
// faults (recoverable transport failures) and which do not.
func TestConnFaultClassification(t *testing.T) {
	for _, err := range []error{ErrConnClosed, ErrFrameCorrupt, ErrCallTimeout, ErrFabricFault} {
		if !IsConnFault(err) {
			t.Errorf("IsConnFault(%v) = false, want true", err)
		}
		if !IsConnFault(fmt.Errorf("wrapped: %w", err)) {
			t.Errorf("IsConnFault(wrapped %v) = false, want true", err)
		}
	}
	if IsConnFault(nil) || IsConnFault(io.EOF) || IsConnFault(errors.New("gpu melted")) {
		t.Error("IsConnFault claims unrelated errors")
	}
}
