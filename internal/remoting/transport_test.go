package remoting

import (
	"bytes"
	"net"
	"testing"
	"time"

	"dgsf/internal/sim"
)

func TestSimRoundtripLatency(t *testing.T) {
	e := sim.NewEngine(1)
	var elapsed time.Duration
	e.Run("root", func(p *sim.Proc) {
		l := NewListener(e)
		p.SpawnDaemon("server", func(p *sim.Proc) {
			for {
				req, ok := l.Incoming.Recv(p)
				if !ok {
					return
				}
				req.ReplyTo.Send(Response{Payload: req.Payload})
			}
		})
		conn := Dial(e, l, NetProfile{RTT: 100 * time.Microsecond})
		start := p.Now()
		resp, err := conn.Roundtrip(p, []byte("ping"), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp, []byte("ping")) {
			t.Fatalf("echo = %q", resp)
		}
		elapsed = p.Now() - start
	})
	if elapsed != 100*time.Microsecond {
		t.Fatalf("roundtrip took %v, want exactly the RTT (100µs)", elapsed)
	}
}

func TestSimRoundtripChargesBandwidth(t *testing.T) {
	e := sim.NewEngine(1)
	var elapsed time.Duration
	e.Run("root", func(p *sim.Proc) {
		l := NewListener(e)
		p.SpawnDaemon("server", func(p *sim.Proc) {
			for {
				req, ok := l.Incoming.Recv(p)
				if !ok {
					return
				}
				req.ReplyTo.Send(Response{Payload: []byte("ok")})
			}
		})
		// 1 MB/s, no jitter: 1 MB of request payload = 1 s.
		conn := Dial(e, l, NetProfile{Bps: 1e6})
		start := p.Now()
		if _, err := conn.Roundtrip(p, []byte("x"), 1e6-1-2); err != nil {
			t.Fatal(err)
		}
		elapsed = p.Now() - start
	})
	if elapsed != time.Second {
		t.Fatalf("1MB at 1MB/s took %v, want 1s", elapsed)
	}
}

func TestSimRoundtripJitterBounded(t *testing.T) {
	e := sim.NewEngine(9)
	e.Run("root", func(p *sim.Proc) {
		l := NewListener(e)
		p.SpawnDaemon("server", func(p *sim.Proc) {
			for {
				req, ok := l.Incoming.Recv(p)
				if !ok {
					return
				}
				req.ReplyTo.Send(Response{Payload: []byte("ok")})
			}
		})
		prof := NetProfile{Bps: 1e6, JitterFrac: 0.5}
		conn := Dial(e, l, prof)
		for i := 0; i < 20; i++ {
			start := p.Now()
			if _, err := conn.Roundtrip(p, make([]byte, 1000), 0); err != nil {
				t.Fatal(err)
			}
			got := p.Now() - start
			// 1002 bytes out + 2 bytes back at 1 MB/s nominal, ±50%.
			lo, hi := 400*time.Microsecond, 1700*time.Microsecond
			if got < lo || got > hi {
				t.Fatalf("jittered roundtrip %v outside [%v, %v]", got, lo, hi)
			}
		}
	})
}

func TestClosedConnFails(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		l := NewListener(e)
		conn := Dial(e, l, NetProfile{})
		conn.Close()
		if _, err := conn.Roundtrip(p, []byte("x"), 0); err != ErrConnClosed {
			t.Fatalf("Roundtrip on closed conn = %v, want ErrConnClosed", err)
		}
	})
}

func TestServerClosePendingRoundtripFails(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		l := NewListener(e)
		var conn Caller
		conn = Dial(e, l, NetProfile{})
		p.Spawn("closer", func(p *sim.Proc) {
			req, _ := l.Incoming.Recv(p)
			req.ReplyTo.Close()
		})
		if _, err := conn.Roundtrip(p, []byte("x"), 0); err != ErrConnClosed {
			t.Fatalf("Roundtrip with closed reply queue = %v, want ErrConnClosed", err)
		}
	})
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello dgsf")
	if err := WriteFrame(&buf, payload, 12345); err != nil {
		t.Fatal(err)
	}
	got, data, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) || data != 12345 {
		t.Fatalf("frame round trip = (%q, %d)", got, data)
	}
}

func TestFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	// A real TCP connection into an open-mode engine hosting an echo
	// service, exercising DialTCP + ServeConn end to end.
	e := sim.NewOpenEngine(1)
	defer e.Stop()
	inbox := sim.NewQueue[Request](e)
	e.InjectDaemon("echo", func(p *sim.Proc) {
		for {
			req, ok := inbox.Recv(p)
			if !ok {
				return
			}
			req.ReplyTo.Send(Response{Payload: append([]byte("re:"), req.Payload...), RespData: req.ReqData})
		}
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		ServeConn(e, conn, inbox)
	}()
	caller, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer caller.Close()
	for i := 0; i < 5; i++ {
		resp, err := caller.Roundtrip(nil, []byte("ping"), int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if string(resp) != "re:ping" {
			t.Fatalf("resp = %q", resp)
		}
	}
}
