package remoting

import "dgsf/internal/cuda"

// The transport's typed faults are registered as wire sentinels so a server
// that surfaces one as an application error (a proxied failure, a fabric
// fault inside a remoted data-plane call) still matches errors.Is on the
// client side of the generated stubs.
func init() {
	cuda.RegisterWireSentinel(9001, ErrConnClosed)
	cuda.RegisterWireSentinel(9002, ErrFrameCorrupt)
	cuda.RegisterWireSentinel(9003, ErrCallTimeout)
	cuda.RegisterWireSentinel(9004, ErrFabricFault)
}
