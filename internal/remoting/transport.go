// Package remoting implements the DGSF API remoting protocol: message
// framing, the transport abstraction between guest libraries and API
// servers, and the network cost model.
//
// Two transports exist. The simulated transport carries calls between
// simulated processes inside one engine, charging virtual time according to
// a NetProfile (round-trip latency plus bandwidth-limited transfer of
// logical payload bytes); every experiment uses it. The TCP transport
// (tcp.go) carries the same framed messages over real sockets and exists to
// demonstrate that the remoting stack is a real protocol, not a mock.
package remoting

import (
	"time"

	"dgsf/internal/sim"
)

// CallBatch is the reserved call ID for a batch container message: a batch
// payload is a sequence of length-prefixed encoded calls executed in order
// with a single acknowledgement — DGSF's "accumulate locally and send in
// batches" optimization (§V-C).
const CallBatch uint16 = 0xFFFF

// NetProfile models the network between a function's execution environment
// and the GPU server.
type NetProfile struct {
	RTT        time.Duration // request/response round-trip latency
	Bps        float64       // payload bandwidth, bytes/s
	JitterFrac float64       // multiplicative uniform jitter on transfer time
}

// OpenFaaSNet models the paper's primary deployment: two p3.8xlarge
// instances in one placement group with up to 10 Gbps between them.
func OpenFaaSNet() NetProfile {
	return NetProfile{RTT: 200 * time.Microsecond, Bps: 1.15e9, JitterFrac: 0.02}
}

// LambdaNet models the AWS Lambda deployment: the paper attributes its NLP
// and image-classification slowdowns to lower bandwidth and larger variance.
func LambdaNet() NetProfile {
	return NetProfile{RTT: 300 * time.Microsecond, Bps: 0.35e9, JitterFrac: 0.25}
}

// transferTime returns the virtual time to move bytes over the profile.
func (n NetProfile) transferTime(rng interface{ Float64() float64 }, bytes int64) time.Duration {
	if bytes <= 0 || n.Bps <= 0 {
		return 0
	}
	t := float64(bytes) / n.Bps * float64(time.Second)
	if n.JitterFrac > 0 {
		t *= 1 + n.JitterFrac*(2*rng.Float64()-1)
	}
	return time.Duration(t)
}

// Caller is the guest-side transport handle: one request/response exchange
// with the API server. reqData is the logical payload size riding along with
// the request (e.g. the bytes of a host-to-device memcpy) — it is charged
// against bandwidth in addition to the encoded message itself.
type Caller interface {
	Roundtrip(p *sim.Proc, req []byte, reqData int64) (resp []byte, err error)
	Close()
}

// Request is one in-flight call as seen by an API server. Control messages
// from the GPU server's monitor (e.g. migration requests) ride the same FIFO
// with Ctrl set and Payload nil, which is what confines them to API call
// boundaries.
type Request struct {
	Payload []byte
	ReqData int64
	ReplyTo *sim.Queue[Response]
	Profile NetProfile // so the server charges response transfer symmetrically
	Ctrl    any        // non-nil for monitor control messages
}

// Response carries an encoded reply plus the logical payload bytes flowing
// back to the guest (e.g. a device-to-host memcpy result).
type Response struct {
	Payload  []byte
	RespData int64
}

// Listener is the server-side endpoint of the simulated transport.
type Listener struct {
	Incoming *sim.Queue[Request]
}

// NewListener returns a listener bound to engine e.
func NewListener(e *sim.Engine) *Listener {
	return &Listener{Incoming: sim.NewQueue[Request](e)}
}

// simConn implements Caller over a Listener within one engine.
type simConn struct {
	e       *sim.Engine
	l       *Listener
	profile NetProfile
	replies *sim.Queue[Response]
	closed  bool
}

// Dial connects a guest to an API server's listener with the given network
// profile.
func Dial(e *sim.Engine, l *Listener, profile NetProfile) Caller {
	return &simConn{e: e, l: l, profile: profile, replies: sim.NewQueue[Response](e)}
}

// Roundtrip sends one encoded call and blocks until the reply arrives,
// charging latency and bandwidth in virtual time.
func (c *simConn) Roundtrip(p *sim.Proc, req []byte, reqData int64) ([]byte, error) {
	if c.closed {
		return nil, ErrConnClosed
	}
	// Outbound: half the RTT plus the transfer time of message + payload.
	send := c.profile.RTT/2 + c.profile.transferTime(p.Rand(), int64(len(req))+reqData)
	if send > 0 {
		p.Sleep(send)
	}
	c.l.Incoming.Send(Request{Payload: req, ReqData: reqData, ReplyTo: c.replies, Profile: c.profile})
	resp, ok := c.replies.Recv(p)
	if !ok {
		return nil, ErrConnClosed
	}
	// Inbound: the other half of the RTT plus the response transfer.
	recv := c.profile.RTT/2 + c.profile.transferTime(p.Rand(), int64(len(resp.Payload))+resp.RespData)
	if recv > 0 {
		p.Sleep(recv)
	}
	return resp.Payload, nil
}

// Close tears the connection down; a blocked Roundtrip fails.
func (c *simConn) Close() {
	if !c.closed {
		c.closed = true
		c.replies.Close()
	}
}

// ErrConnClosed reports use of a closed connection.
var ErrConnClosed = connErr("remoting: connection closed")

type connErr string

func (e connErr) Error() string { return string(e) }
