// Package remoting implements the DGSF API remoting protocol: message
// framing, the transport abstraction between guest libraries and API
// servers, and the network cost model.
//
// Two transports exist. The simulated transport carries calls between
// simulated processes inside one engine, charging virtual time according to
// a NetProfile (round-trip latency plus bandwidth-limited transfer of
// logical payload bytes); every experiment uses it. The TCP transport
// (tcp.go) carries the same framed messages over real sockets and exists to
// demonstrate that the remoting stack is a real protocol, not a mock.
package remoting

import (
	"time"

	"dgsf/internal/sim"
)

// CallBatch is the reserved call ID for a batch container message: a batch
// payload is a sequence of length-prefixed encoded calls executed in order
// with a single acknowledgement — DGSF's "accumulate locally and send in
// batches" optimization (§V-C).
const CallBatch uint16 = 0xFFFF

// CallAsync is the reserved call ID wrapping a one-way submission: the
// payload after the ID is a complete call (or batch) message that the API
// server executes without sending a reply. The server latches the first
// error; a later CallFence surfaces it — the same sticky semantics CUDA
// gives asynchronous kernel launches.
const CallAsync uint16 = 0xFFFE

// CallFence is the reserved call ID for the pipelined lane's fence: a normal
// round trip whose FIFO position guarantees every prior async submission has
// executed. The reply is a single int32 carrying the latched async error
// (0 if none), which the fence clears.
const CallFence uint16 = 0xFFFD

// NetProfile models the network between a function's execution environment
// and the GPU server.
type NetProfile struct {
	RTT        time.Duration // request/response round-trip latency
	Bps        float64       // payload bandwidth, bytes/s
	JitterFrac float64       // multiplicative uniform jitter on transfer time
}

// OpenFaaSNet models the paper's primary deployment: two p3.8xlarge
// instances in one placement group with up to 10 Gbps between them.
func OpenFaaSNet() NetProfile {
	return NetProfile{RTT: 200 * time.Microsecond, Bps: 1.15e9, JitterFrac: 0.02}
}

// LambdaNet models the AWS Lambda deployment: the paper attributes its NLP
// and image-classification slowdowns to lower bandwidth and larger variance.
func LambdaNet() NetProfile {
	return NetProfile{RTT: 300 * time.Microsecond, Bps: 0.35e9, JitterFrac: 0.25}
}

// transferTime returns the virtual time to move bytes over the profile.
func (n NetProfile) transferTime(rng interface{ Float64() float64 }, bytes int64) time.Duration {
	if bytes <= 0 || n.Bps <= 0 {
		return 0
	}
	t := float64(bytes) / n.Bps * float64(time.Second)
	if n.JitterFrac > 0 {
		t *= 1 + n.JitterFrac*(2*rng.Float64()-1)
	}
	return time.Duration(t)
}

// Caller is the guest-side transport handle: one request/response exchange
// with the API server. reqData is the logical payload size riding along with
// the request (e.g. the bytes of a host-to-device memcpy) — it is charged
// against bandwidth in addition to the encoded message itself.
type Caller interface {
	Roundtrip(p *sim.Proc, req []byte, reqData int64) (resp []byte, err error)
	Close()
}

// AsyncCaller is a Caller with a pipelined submission lane. Submit fires a
// one-way message (normally a CallAsync-wrapped call) without waiting for an
// acknowledgement; the transport guarantees FIFO ordering between Submit and
// Roundtrip, so a subsequent Roundtrip — in particular a CallFence — acts as
// a fence that drains the lane. Both built-in transports implement it; test
// doubles that only implement Caller degrade the guest to synchronous calls.
type AsyncCaller interface {
	Caller
	Submit(p *sim.Proc, req []byte, reqData int64) error
}

// Request is one in-flight call as seen by an API server. Control messages
// from the GPU server's monitor (e.g. migration requests) ride the same FIFO
// with Ctrl set and Payload nil, which is what confines them to API call
// boundaries.
type Request struct {
	Payload []byte
	ReqData int64
	ReplyTo *sim.Queue[Response]
	Profile NetProfile // so the server charges response transfer symmetrically
	Ctrl    any        // non-nil for monitor control messages
}

// Response carries an encoded reply plus the logical payload bytes flowing
// back to the guest (e.g. a device-to-host memcpy result).
type Response struct {
	Payload  []byte
	RespData int64
}

// Listener is the server-side endpoint of the simulated transport.
type Listener struct {
	Incoming *sim.Queue[Request]
}

// NewListener returns a listener bound to engine e.
func NewListener(e *sim.Engine) *Listener {
	return &Listener{Incoming: sim.NewQueue[Request](e)}
}

// simConn implements AsyncCaller over a Listener within one engine.
type simConn struct {
	e       *sim.Engine
	l       *Listener
	profile NetProfile
	replies *sim.Queue[Response]
	closed  bool

	// pipe, once the async lane has been used, carries every outbound
	// message (one-way and round-trip alike) so FIFO ordering holds across
	// the two kinds. It is created lazily on the first Submit: purely
	// synchronous connections keep the original direct path.
	pipe *sim.Queue[pipeItem]
}

// pipeItem is one in-flight message on the simulated wire: it leaves the
// sender immediately (the sender only charges its own transfer occupancy)
// and arrives at the listener at deliverAt, half an RTT later.
type pipeItem struct {
	deliverAt time.Duration
	req       Request
}

// Dial connects a guest to an API server's listener with the given network
// profile.
func Dial(e *sim.Engine, l *Listener, profile NetProfile) AsyncCaller {
	return &simConn{e: e, l: l, profile: profile, replies: sim.NewQueue[Response](e)}
}

// ensurePipe lazily starts the delivery daemon that models the wire between
// sender and listener: items are handed over in FIFO order, each at its own
// deliverAt timestamp.
func (c *simConn) ensurePipe(p *sim.Proc) {
	if c.pipe != nil {
		return
	}
	pipe := sim.NewQueue[pipeItem](c.e)
	c.pipe = pipe
	incoming := c.l.Incoming
	p.SpawnDaemon("net-pipe", func(p *sim.Proc) {
		for {
			it, ok := pipe.Recv(p)
			if !ok {
				return
			}
			if d := it.deliverAt - p.Now(); d > 0 {
				p.Sleep(d)
			}
			incoming.Send(it.req)
		}
	})
}

// send charges the sender-side occupancy (transfer time of message plus
// logical payload) and puts the request on the wire, to arrive half an RTT
// later. With no pipe running it degenerates to the original synchronous
// path, whose sleep ends at the identical virtual instant.
func (c *simConn) send(p *sim.Proc, req Request) {
	transfer := c.profile.transferTime(p.Rand(), int64(len(req.Payload))+req.ReqData)
	if c.pipe == nil {
		if d := c.profile.RTT/2 + transfer; d > 0 {
			p.Sleep(d)
		}
		c.l.Incoming.Send(req)
		return
	}
	if transfer > 0 {
		p.Sleep(transfer)
	}
	c.pipe.Send(pipeItem{deliverAt: p.Now() + c.profile.RTT/2, req: req})
}

// Roundtrip sends one encoded call and blocks until the reply arrives,
// charging latency and bandwidth in virtual time.
func (c *simConn) Roundtrip(p *sim.Proc, req []byte, reqData int64) ([]byte, error) {
	if c.closed {
		return nil, ErrConnClosed
	}
	c.send(p, Request{Payload: req, ReqData: reqData, ReplyTo: c.replies, Profile: c.profile})
	resp, ok := c.replies.Recv(p)
	if !ok {
		return nil, ErrConnClosed
	}
	// Inbound: the other half of the RTT plus the response transfer.
	recv := c.profile.RTT/2 + c.profile.transferTime(p.Rand(), int64(len(resp.Payload))+resp.RespData)
	if recv > 0 {
		p.Sleep(recv)
	}
	return resp.Payload, nil
}

// Submit fires one one-way message down the pipelined lane: the caller pays
// only its transfer occupancy, not the round trip, so compute and network
// latency overlap. Ordering with later Roundtrips is FIFO.
func (c *simConn) Submit(p *sim.Proc, req []byte, reqData int64) error {
	if c.closed {
		return ErrConnClosed
	}
	c.ensurePipe(p)
	c.send(p, Request{Payload: req, ReqData: reqData, Profile: c.profile})
	return nil
}

// Close tears the connection down; a blocked Roundtrip fails.
func (c *simConn) Close() {
	if !c.closed {
		c.closed = true
		c.replies.Close()
		if c.pipe != nil {
			c.pipe.Close()
		}
	}
}

// ErrConnClosed reports use of a closed connection.
var ErrConnClosed = connErr("remoting: connection closed")

type connErr string

func (e connErr) Error() string { return string(e) }
