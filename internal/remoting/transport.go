// Package remoting implements the DGSF API remoting protocol: message
// framing, the transport abstraction between guest libraries and API
// servers, and the network cost model.
//
// Two transports exist. The simulated transport carries calls between
// simulated processes inside one engine, charging virtual time according to
// a NetProfile (round-trip latency plus bandwidth-limited transfer of
// logical payload bytes); every experiment uses it. The TCP transport
// (tcp.go) carries the same framed messages over real sockets and exists to
// demonstrate that the remoting stack is a real protocol, not a mock.
package remoting

import (
	"errors"
	"fmt"
	"time"

	"dgsf/internal/sim"
)

// CallBatch is the reserved call ID for a batch container message: a batch
// payload is a sequence of length-prefixed encoded calls executed in order
// with a single acknowledgement — DGSF's "accumulate locally and send in
// batches" optimization (§V-C).
const CallBatch uint16 = 0xFFFF

// CallAsync is the reserved call ID wrapping a one-way submission: the
// payload after the ID is a complete call (or batch) message that the API
// server executes without sending a reply. The server latches the first
// error; a later CallFence surfaces it — the same sticky semantics CUDA
// gives asynchronous kernel launches.
const CallAsync uint16 = 0xFFFE

// CallFence is the reserved call ID for the pipelined lane's fence: a normal
// round trip whose FIFO position guarantees every prior async submission has
// executed. The reply is a single int32 carrying the latched async error
// (0 if none), which the fence clears.
const CallFence uint16 = 0xFFFD

// (CallProtoHello, 0xFFFC, is reserved in protocol.go for the wire-protocol
// version negotiation hello.)

// NetProfile models the network between a function's execution environment
// and the GPU server.
type NetProfile struct {
	RTT        time.Duration // request/response round-trip latency
	Bps        float64       // payload bandwidth, bytes/s
	JitterFrac float64       // multiplicative uniform jitter on transfer time
}

// OpenFaaSNet models the paper's primary deployment: two p3.8xlarge
// instances in one placement group with up to 10 Gbps between them.
func OpenFaaSNet() NetProfile {
	return NetProfile{RTT: 200 * time.Microsecond, Bps: 1.15e9, JitterFrac: 0.02}
}

// LambdaNet models the AWS Lambda deployment: the paper attributes its NLP
// and image-classification slowdowns to lower bandwidth and larger variance.
func LambdaNet() NetProfile {
	return NetProfile{RTT: 300 * time.Microsecond, Bps: 0.35e9, JitterFrac: 0.25}
}

// transferTime returns the virtual time to move bytes over the profile.
func (n NetProfile) transferTime(rng interface{ Float64() float64 }, bytes int64) time.Duration {
	if bytes <= 0 || n.Bps <= 0 {
		return 0
	}
	t := float64(bytes) / n.Bps * float64(time.Second)
	if n.JitterFrac > 0 {
		t *= 1 + n.JitterFrac*(2*rng.Float64()-1)
	}
	return time.Duration(t)
}

// Caller is the guest-side transport handle: one request/response exchange
// with the API server. reqData is the logical payload size riding along with
// the request (e.g. the bytes of a host-to-device memcpy) — it is charged
// against bandwidth in addition to the encoded message itself.
//
// The returned resp is owned by the transport and valid only until the next
// call on the same Caller: transports may reuse the reply buffer across
// round trips. Callers must decode (copying what they keep) before issuing
// another call — the generated Client does.
type Caller interface {
	Roundtrip(p *sim.Proc, req []byte, reqData int64) (resp []byte, err error)
	Close()
}

// DeadlineCaller is a Caller that can bound an individual round trip: if no
// reply arrives within d of (virtual or wall) time, the call fails with
// ErrCallTimeout and the connection is torn down — a late reply can no
// longer be matched to its request, so the transport must not be reused.
// Both built-in transports implement it; the guest's failure detector uses
// it for per-call deadlines on the sync lane.
type DeadlineCaller interface {
	Caller
	RoundtripTimeout(p *sim.Proc, req []byte, reqData int64, d time.Duration) (resp []byte, err error)
}

// Faultable is the fault-injection surface of the simulated transport. The
// faults framework (internal/faults) uses it to model peer death, link
// stalls, and frame corruption deterministically.
type Faultable interface {
	// Break severs the connection as if the peer died: pending and future
	// calls fail with ErrConnClosed, and nothing further reaches the
	// listener.
	Break()
	// StallFor delays the next outbound message by d, modeling a transient
	// link stall (e.g. a routing flap) without killing the connection.
	StallFor(d time.Duration)
	// CorruptNext makes the next outbound message fail framing validation:
	// the call charges its transfer time, then fails with an error wrapping
	// ErrFrameCorrupt, and the connection breaks (a corrupt stream cannot
	// be resynchronized).
	CorruptNext()
}

// AsyncCaller is a Caller with a pipelined submission lane. Submit fires a
// one-way message (normally a CallAsync-wrapped call) without waiting for an
// acknowledgement; the transport guarantees FIFO ordering between Submit and
// Roundtrip, so a subsequent Roundtrip — in particular a CallFence — acts as
// a fence that drains the lane. Both built-in transports implement it; test
// doubles that only implement Caller degrade the guest to synchronous calls.
type AsyncCaller interface {
	Caller
	Submit(p *sim.Proc, req []byte, reqData int64) error
}

// VecCaller is a Caller with the protocol-v2 vectored bulk lane. Generated
// stubs for calls carrying a trailing bulk []byte use it when the connection
// negotiated v2; on v1 connections (or transports without it) they fall back
// to inlining the bulk into the encoded payload.
//
// Ownership: reqBulk is borrowed by the transport only for the duration of
// the call — it is sent without copying and belongs to the caller again when
// RoundtripVec returns. A reply bulk region is scatter-read into respDst
// when it fits (respBulk then aliases respDst); otherwise a fresh buffer is
// returned. resp follows the usual Caller reply contract.
type VecCaller interface {
	Caller
	// ProtoVersion reports the protocol version negotiated so far: ProtoV1
	// until a hello completes (the simulated transport negotiates lazily on
	// the first call, so a fresh connection reports v1 until then).
	ProtoVersion() int
	RoundtripVec(p *sim.Proc, req, reqBulk, respDst []byte) (resp, respBulk []byte, err error)
}

// Downgrader is implemented by transports whose maximum protocol version can
// be forced down before use. The faults framework uses it to model a peer
// stuck on an old build during a rolling upgrade.
type Downgrader interface {
	// ForceVersion caps the connection's protocol at v (normally ProtoV1,
	// suppressing the hello entirely). It must be called before the first
	// round trip.
	ForceVersion(v int)
}

// Request is one in-flight call as seen by an API server. Control messages
// from the GPU server's monitor (e.g. migration requests) ride the same FIFO
// with Ctrl set and Payload nil, which is what confines them to API call
// boundaries.
type Request struct {
	Payload []byte
	ReqData int64
	ReplyTo *sim.Queue[Response]
	Profile NetProfile // so the server charges response transfer symmetrically
	Ctrl    any        // non-nil for monitor control messages

	// Bulk is the request's vectored bulk region (protocol v2): the raw
	// bytes of a trailing bulk argument, delivered outside the encoded
	// payload. It is owned by the transport until the reply is sent —
	// handlers must copy what they retain. nil when the call carries no
	// bulk (or inlined it on a v1 connection).
	Bulk []byte
	// Proto is the protocol version of the connection that delivered the
	// request (0 is treated as v1). Servers echo it into the Response so
	// reply framing matches what the guest reads.
	Proto int
}

// Response carries an encoded reply plus the logical payload bytes flowing
// back to the guest (e.g. a device-to-host memcpy result).
type Response struct {
	Payload  []byte
	RespData int64

	// Bulk is the reply's vectored bulk region (protocol v2). It must stay
	// immutable until the reply frame is written; handlers return quiescent
	// session storage or a copy.
	Bulk []byte
	// Proto selects the reply framing: servers copy Request.Proto. The
	// negotiation hello reply is the one response pinned to v1 — both sides
	// still speak v1 at that instant.
	Proto int
}

// Listener is the server-side endpoint of the simulated transport.
type Listener struct {
	Incoming *sim.Queue[Request]
}

// NewListener returns a listener bound to engine e.
func NewListener(e *sim.Engine) *Listener {
	return &Listener{Incoming: sim.NewQueue[Request](e)}
}

// simConn implements AsyncCaller over a Listener within one engine.
type simConn struct {
	e       *sim.Engine
	l       *Listener
	profile NetProfile
	closed  bool

	// inflight tracks the per-call reply queues of outstanding round
	// trips, in call order. Each call carries its own queue as ReplyTo,
	// so replies are matched to their callers even when several simulated
	// processes share the connection (a store watch pump's long-poll
	// overlapping CRUD, a lazily sent hello overlapping a first call).
	// Break/Close fail every outstanding call by closing them all — a
	// slice, not a map, so the wake order stays deterministic.
	inflight []*sim.Queue[Response]

	// Protocol version state. maxVer is what this side is willing to speak;
	// ver is what the hello negotiated (v1 until it runs). The hello fires
	// lazily on the first call — the one-RTT negotiation cost lands on
	// connection establishment, not on the steady state.
	maxVer    int
	ver       int
	helloDone bool

	// Fault-injection state (Faultable). All mutation happens from
	// simulated processes, serialized by the engine.
	broken  bool          // peer considered dead; calls fail typed
	stall   time.Duration // extra one-shot delay on the next send
	corrupt bool          // next message fails framing validation

	// pipe, once the async lane has been used, carries every outbound
	// message (one-way and round-trip alike) so FIFO ordering holds across
	// the two kinds. It is created lazily on the first Submit: purely
	// synchronous connections keep the original direct path.
	pipe *sim.Queue[pipeItem]
}

// pipeItem is one in-flight message on the simulated wire: it leaves the
// sender immediately (the sender only charges its own transfer occupancy)
// and arrives at the listener at deliverAt, half an RTT later.
type pipeItem struct {
	deliverAt time.Duration
	req       Request
}

// Dial connects a guest to an API server's listener with the given network
// profile, negotiating the highest mutually supported protocol version on
// the first call.
func Dial(e *sim.Engine, l *Listener, profile NetProfile) AsyncCaller {
	return DialVersion(e, l, profile, MaxProtoVersion)
}

// DialVersion is Dial with an explicit protocol ceiling, for mixed-version
// interop tests and rolling-upgrade modeling (maxVer ProtoV1 suppresses the
// hello entirely, behaving exactly like an old build).
func DialVersion(e *sim.Engine, l *Listener, profile NetProfile, maxVer int) AsyncCaller {
	if maxVer < ProtoV1 {
		maxVer = ProtoV1
	}
	return &simConn{e: e, l: l, profile: profile, maxVer: maxVer, ver: ProtoV1}
}

// ForceVersion implements Downgrader: cap the connection at v before use.
func (c *simConn) ForceVersion(v int) {
	if v < ProtoV1 {
		v = ProtoV1
	}
	if v < c.maxVer {
		c.maxVer = v
	}
	if c.ver > c.maxVer {
		c.ver = c.maxVer
	}
}

// ProtoVersion implements VecCaller.
func (c *simConn) ProtoVersion() int { return c.ver }

// negotiate runs the one-RTT hello on the first call of a v2-capable
// connection. An injected frame corruption (CorruptNext) lands on the hello
// itself — exactly the corrupted-negotiation case — and surfaces as a typed
// ErrFrameCorrupt with the connection broken, like any corrupt stream.
func (c *simConn) negotiate(p *sim.Proc) error {
	if c.helloDone || c.maxVer < ProtoV2 {
		return nil
	}
	c.helloDone = true // the hello itself must not renegotiate
	resp, err := c.roundtrip(p, helloRequest(c.maxVer), 0, -1)
	if err != nil {
		return err
	}
	if v, ok := parseHelloReply(resp); ok && v <= c.maxVer {
		c.ver = v
	}
	wireHello(c.ver)
	return nil
}

// ensurePipe lazily starts the delivery daemon that models the wire between
// sender and listener: items are handed over in FIFO order, each at its own
// deliverAt timestamp.
func (c *simConn) ensurePipe(p *sim.Proc) {
	if c.pipe != nil {
		return
	}
	pipe := sim.NewQueue[pipeItem](c.e)
	c.pipe = pipe
	incoming := c.l.Incoming
	p.SpawnDaemon("net-pipe", func(p *sim.Proc) {
		for {
			it, ok := pipe.Recv(p)
			if !ok {
				return
			}
			if d := it.deliverAt - p.Now(); d > 0 {
				p.Sleep(d)
			}
			// The listener may have crashed (closed its inbox) while the
			// message was in flight; the wire drops it silently, as real
			// networks do. The sender learns through reply loss.
			if !incoming.TrySend(it.req) {
				return
			}
		}
	})
}

// send charges the sender-side occupancy (transfer time of message plus
// bulk plus logical payload) and puts the request on the wire, to arrive
// half an RTT later. With no pipe running it degenerates to the original
// synchronous path, whose sleep ends at the identical virtual instant. It
// reports whether the message reached a live listener; a false return means
// the peer is gone and the connection is now broken.
func (c *simConn) send(p *sim.Proc, req Request) bool {
	req.Proto = c.ver
	wireTx(c.ver, int64(len(req.Payload))+int64(len(req.Bulk))+req.ReqData)
	transfer := c.profile.transferTime(p.Rand(), int64(len(req.Payload))+int64(len(req.Bulk))+req.ReqData)
	if c.stall > 0 {
		transfer += c.stall
		c.stall = 0
	}
	if c.pipe == nil {
		if d := c.profile.RTT/2 + transfer; d > 0 {
			p.Sleep(d)
		}
		if !c.l.Incoming.TrySend(req) {
			c.Break()
			return false
		}
		return true
	}
	if transfer > 0 {
		p.Sleep(transfer)
	}
	c.pipe.Send(pipeItem{deliverAt: p.Now() + c.profile.RTT/2, req: req})
	return true
}

// checkSend folds the pre-send fault checks shared by Roundtrip and Submit:
// closed/broken connections fail immediately, and an armed corruption charges
// its transfer time before surfacing the framing error.
func (c *simConn) checkSend(p *sim.Proc, n int64) error {
	if c.closed || c.broken {
		return ErrConnClosed
	}
	if c.corrupt {
		c.corrupt = false
		if d := c.profile.transferTime(p.Rand(), n); d > 0 {
			p.Sleep(d)
		}
		c.Break()
		return fmt.Errorf("%w: injected frame corruption", ErrFrameCorrupt)
	}
	return nil
}

// Roundtrip sends one encoded call and blocks until the reply arrives,
// charging latency and bandwidth in virtual time.
func (c *simConn) Roundtrip(p *sim.Proc, req []byte, reqData int64) ([]byte, error) {
	if err := c.negotiate(p); err != nil {
		return nil, err
	}
	return c.roundtrip(p, req, reqData, -1)
}

// RoundtripTimeout is Roundtrip with a virtual-time reply deadline. On
// timeout the connection breaks: a late reply could otherwise be mismatched
// to the next call.
func (c *simConn) RoundtripTimeout(p *sim.Proc, req []byte, reqData int64, d time.Duration) ([]byte, error) {
	if err := c.negotiate(p); err != nil {
		return nil, err
	}
	return c.roundtrip(p, req, reqData, d)
}

// RoundtripVec implements VecCaller: the request's bulk bytes ride outside
// the encoded payload (borrowed, never copied on the send side), and the
// reply's bulk region is scatter-read into respDst when it fits — the same
// ownership handoff the TCP transport performs with writev/ReadFrameInto.
func (c *simConn) RoundtripVec(p *sim.Proc, req, reqBulk, respDst []byte) (resp, respBulk []byte, err error) {
	if err := c.negotiate(p); err != nil {
		return nil, nil, err
	}
	if err := c.checkSend(p, int64(len(req))+int64(len(reqBulk))); err != nil {
		return nil, nil, err
	}
	replyQ := c.callQueue()
	defer c.callDone(replyQ)
	if !c.send(p, Request{Payload: req, Bulk: reqBulk, ReplyTo: replyQ, Profile: c.profile}) {
		return nil, nil, ErrConnClosed
	}
	r, ok := replyQ.Recv(p)
	if !ok {
		c.Break()
		return nil, nil, ErrConnClosed
	}
	wireRx(c.ver, int64(len(r.Payload))+int64(len(r.Bulk))+r.RespData)
	recv := c.profile.RTT/2 + c.profile.transferTime(p.Rand(), int64(len(r.Payload))+int64(len(r.Bulk))+r.RespData)
	if recv > 0 {
		p.Sleep(recv)
	}
	if r.Bulk != nil {
		// Model the scatter read: the bytes land in the caller's buffer. The
		// server side may hand us storage it will reuse, so the copy is also
		// what makes the sim's ownership semantics match TCP's.
		if cap(respDst) >= len(r.Bulk) {
			respBulk = respDst[:len(r.Bulk)]
		} else {
			respBulk = make([]byte, len(r.Bulk))
		}
		copy(respBulk, r.Bulk)
	}
	return r.Payload, respBulk, nil
}

func (c *simConn) roundtrip(p *sim.Proc, req []byte, reqData int64, deadline time.Duration) ([]byte, error) {
	start := p.Now()
	if err := c.checkSend(p, int64(len(req))+reqData); err != nil {
		return nil, err
	}
	replyQ := c.callQueue()
	defer c.callDone(replyQ)
	if !c.send(p, Request{Payload: req, ReqData: reqData, ReplyTo: replyQ, Profile: c.profile}) {
		return nil, ErrConnClosed
	}
	var resp Response
	var ok bool
	if deadline < 0 {
		resp, ok = replyQ.Recv(p)
	} else {
		// The deadline covers the whole call, the way a socket timeout
		// does: send-side time (including an injected stall) eats into the
		// reply budget, and a send that alone overruns it is a timeout.
		remaining := deadline - (p.Now() - start)
		if remaining < 0 {
			remaining = 0
		}
		var timedOut bool
		resp, ok, timedOut = replyQ.RecvTimeout(p, remaining)
		if timedOut {
			c.Break()
			return nil, fmt.Errorf("%w: no reply within %v", ErrCallTimeout, deadline)
		}
	}
	if !ok {
		// The peer closed our reply queue: the connection is unusable in
		// both directions, so latch the death — later one-way submissions
		// must fail fast too, not vanish into a dead pipe.
		c.Break()
		return nil, ErrConnClosed
	}
	wireRx(c.ver, int64(len(resp.Payload))+resp.RespData)
	// Inbound: the other half of the RTT plus the response transfer.
	recv := c.profile.RTT/2 + c.profile.transferTime(p.Rand(), int64(len(resp.Payload))+resp.RespData)
	if recv > 0 {
		p.Sleep(recv)
	}
	return resp.Payload, nil
}

// Submit fires one one-way message down the pipelined lane: the caller pays
// only its transfer occupancy, not the round trip, so compute and network
// latency overlap. Ordering with later Roundtrips is FIFO.
func (c *simConn) Submit(p *sim.Proc, req []byte, reqData int64) error {
	if err := c.negotiate(p); err != nil {
		return err
	}
	if err := c.checkSend(p, int64(len(req))+reqData); err != nil {
		return err
	}
	c.ensurePipe(p)
	if !c.send(p, Request{Payload: req, ReqData: reqData, Profile: c.profile}) {
		return ErrConnClosed
	}
	return nil
}

// callQueue opens the per-call reply queue of one round trip.
func (c *simConn) callQueue() *sim.Queue[Response] {
	q := sim.NewQueue[Response](c.e)
	c.inflight = append(c.inflight, q)
	return q
}

// callDone retires a round trip's reply queue.
func (c *simConn) callDone(q *sim.Queue[Response]) {
	for i, cand := range c.inflight {
		if cand == q {
			c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
			return
		}
	}
}

// failInflight closes every outstanding round trip's reply queue, failing
// its blocked caller with ErrConnClosed.
func (c *simConn) failInflight() {
	for _, q := range c.inflight {
		q.Close()
	}
	c.inflight = nil
}

// Close tears the connection down; a blocked Roundtrip fails.
func (c *simConn) Close() {
	if !c.closed {
		c.closed = true
		c.failInflight()
		if c.pipe != nil {
			c.pipe.Close()
		}
	}
}

// Break implements Faultable: the peer is considered dead. Unlike Close,
// the conn object stays distinguishable as "severed by fault" so tests can
// assert the failure path, but the caller-visible behavior is identical —
// everything fails with ErrConnClosed.
func (c *simConn) Break() {
	if c.broken {
		return
	}
	c.broken = true
	c.failInflight()
	if c.pipe != nil {
		c.pipe.Close()
		c.pipe = nil
	}
}

// StallFor implements Faultable: the next outbound message is delayed d.
func (c *simConn) StallFor(d time.Duration) { c.stall += d }

// CorruptNext implements Faultable: the next outbound message fails framing.
func (c *simConn) CorruptNext() { c.corrupt = true }

// ErrConnClosed reports use of a closed connection or one whose peer died.
var ErrConnClosed = connErr("remoting: connection closed")

// ErrFrameCorrupt reports a message that failed framing validation — a
// protocol-level fault, distinct from orderly peer death.
var ErrFrameCorrupt = connErr("remoting: frame corrupt")

// ErrCallTimeout reports a round trip that exceeded its reply deadline. The
// connection is broken afterwards: a late reply cannot be re-matched.
var ErrCallTimeout = connErr("remoting: call deadline exceeded")

// ErrFabricFault reports a data-plane fabric transfer (PeerCopy/FabricCopy)
// that died mid-flight — the RDMA-class link dropped, not the guest's own
// control connection. It counts as a connection fault: guests and chain
// drivers treat it like any severed transport and retry or fall back.
var ErrFabricFault = connErr("remoting: data-plane fabric fault")

type connErr string

func (e connErr) Error() string { return string(e) }

// IsConnFault reports whether err is a transport-level connection fault
// (closed/severed connection, corrupt frame, reply deadline, or a data-plane
// fabric fault) as opposed to an application-level error. Guests map these
// to cudaErrorDevicesUnavailable and trigger session recovery.
func IsConnFault(err error) bool {
	return errors.Is(err, ErrConnClosed) ||
		errors.Is(err, ErrFrameCorrupt) ||
		errors.Is(err, ErrCallTimeout) ||
		errors.Is(err, ErrFabricFault)
}
