package remoting

import (
	"bytes"
	"io"
	"testing"
	"time"

	"dgsf/internal/remoting/wire"
	"dgsf/internal/sim"
)

func TestHandleHelloNegotiation(t *testing.T) {
	// A well-formed hello against a v2 server negotiates v2.
	reply, ver, ok := HandleHello(helloRequest(MaxProtoVersion), MaxProtoVersion)
	if !ok || ver != ProtoV2 {
		t.Fatalf("HandleHello = ver %d ok %v, want v2 ok", ver, ok)
	}
	if v, ok := parseHelloReply(reply); !ok || v != ProtoV2 {
		t.Fatalf("parseHelloReply = %d %v, want v2 ok", v, ok)
	}

	// A future v3 client is capped at what the server speaks.
	if _, ver, ok := HandleHello(helloRequest(3), ProtoV2); !ok || ver != ProtoV2 {
		t.Fatalf("v3 hello = ver %d ok %v, want capped to v2", ver, ok)
	}

	// A v1-only server refuses to answer: the hello falls through to the
	// unknown-call path, whose error status the dialer reads as "v1 peer".
	if _, _, ok := HandleHello(helloRequest(ProtoV2), ProtoV1); ok {
		t.Fatal("v1-only server answered a hello")
	}

	// Malformed hellos (wrong length, wrong magic) are rejected.
	if _, _, ok := HandleHello([]byte{0xFC, 0xFF, 0x00}, ProtoV2); ok {
		t.Fatal("short hello accepted")
	}
	bad := helloRequest(ProtoV2)
	bad[2] = 0x00
	if _, _, ok := HandleHello(bad, ProtoV2); ok {
		t.Fatal("hello with corrupt magic accepted")
	}

	// An error-status reply (a v1 server refusing the call) means v1.
	if _, ok := parseHelloReply([]byte{1, 0, 0, 0}); ok {
		t.Fatal("error reply parsed as a negotiation")
	}
	// A truncated or version-less reply also means v1.
	if _, ok := parseHelloReply([]byte{0, 0, 0, 0}); ok {
		t.Fatal("truncated reply parsed as a negotiation")
	}
}

func TestWriteFrameVecRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		bulk int
	}{
		{"no_bulk", 0},
		{"coalesced", 512},             // under vecCoalesceMax: single write
		{"vectored", 256 << 10},        // two-vector writev path
		{"large_class", (4 << 20) + 9}, // odd size in a large pool class
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			meta := []byte("metadata-bytes")
			bulk := bytes.Repeat([]byte{0x5A}, tc.bulk)
			var w bytes.Buffer
			if err := WriteFrameVec(&w, meta, bulk, 42); err != nil {
				t.Fatal(err)
			}
			dst := make([]byte, tc.bulk)
			gotMeta, gotBulk, data, err := ReadFrameInto(&w, nil, dst)
			if err != nil {
				t.Fatal(err)
			}
			if data != 42 || !bytes.Equal(gotMeta, meta) {
				t.Fatalf("meta round trip: data=%d meta=%q", data, gotMeta)
			}
			if tc.bulk == 0 {
				if gotBulk != nil {
					t.Fatalf("phantom bulk of %d bytes", len(gotBulk))
				}
				return
			}
			if !bytes.Equal(gotBulk, bulk) {
				t.Fatal("bulk bytes corrupted in transit")
			}
			// The scatter read must land in the caller's buffer, not a copy:
			// that is the zero-allocation contract.
			if &gotBulk[0] != &dst[0] {
				t.Fatal("bulk was not scatter-read into the caller's buffer")
			}
		})
	}
}

func TestReadFrameIntoGrowsWhenDstTooSmall(t *testing.T) {
	bulk := bytes.Repeat([]byte{7}, 8<<10)
	var w bytes.Buffer
	if err := WriteFrameVec(&w, []byte("m"), bulk, 0); err != nil {
		t.Fatal(err)
	}
	_, gotBulk, _, err := ReadFrameInto(&w, nil, make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBulk, bulk) {
		t.Fatal("grown bulk read corrupted the bytes")
	}
}

func TestReadFrameIntoRejectsCorruptHeaders(t *testing.T) {
	good := func() []byte {
		var w bytes.Buffer
		if err := WriteFrameVec(&w, []byte("meta"), bytes.Repeat([]byte{1}, 8<<10), 0); err != nil {
			t.Fatal(err)
		}
		return w.Bytes()
	}
	cases := []struct {
		name   string
		mutate func(b []byte)
	}{
		{"bad_magic", func(b []byte) { b[0] = 0x00 }},
		{"bad_version", func(b []byte) { b[1] = 9 }},
		{"bulk_without_flag", func(b []byte) { b[2], b[3] = 0, 0 }},
		{"hostile_meta_len", func(b []byte) { b[4], b[5], b[6], b[7] = 0xFF, 0xFF, 0xFF, 0xFF }},
		{"hostile_bulk_len", func(b []byte) { b[8], b[9], b[10], b[11] = 0xFF, 0xFF, 0xFF, 0xFF }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame := good()
			tc.mutate(frame)
			_, _, _, err := ReadFrameInto(bytes.NewReader(frame), nil, nil)
			if err == nil {
				t.Fatal("corrupt frame accepted")
			}
			if !IsConnFault(err) {
				t.Fatalf("corrupt frame error is not a typed conn fault: %v", err)
			}
		})
	}
}

// TestSimNegotiationCostsOneRTT pins the negotiation's cost model: the first
// call on a v2-capable connection pays exactly one extra round trip (the
// hello), the steady state pays nothing, and the negotiated version sticks.
func TestSimNegotiationCostsOneRTT(t *testing.T) {
	const rtt = 100 * time.Microsecond
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		l := NewListener(e)
		p.SpawnDaemon("server", func(p *sim.Proc) {
			for {
				req, ok := l.Incoming.Recv(p)
				if !ok {
					return
				}
				if reply, _, ok := HandleHello(req.Payload, MaxProtoVersion); ok {
					req.ReplyTo.TrySend(Response{Payload: reply, Proto: ProtoV1})
					continue
				}
				req.ReplyTo.Send(Response{Payload: req.Payload, Proto: req.Proto})
			}
		})
		// Zero-bandwidth profile: transfer time is zero, so elapsed time
		// counts round trips exactly.
		conn := Dial(e, l, NetProfile{RTT: rtt})
		start := p.Now()
		if _, err := conn.Roundtrip(p, []byte("first"), 0); err != nil {
			t.Fatal(err)
		}
		if got := p.Now() - start; got != 2*rtt {
			t.Fatalf("first call took %v, want hello + call = 2×RTT (%v)", got, 2*rtt)
		}
		start = p.Now()
		if _, err := conn.Roundtrip(p, []byte("second"), 0); err != nil {
			t.Fatal(err)
		}
		if got := p.Now() - start; got != rtt {
			t.Fatalf("steady-state call took %v, want exactly the RTT (%v)", got, rtt)
		}
		if v := conn.(VecCaller).ProtoVersion(); v != ProtoV2 {
			t.Fatalf("negotiated v%d, want v2", v)
		}
	})
}

// TestSimSharedConnConcurrentCallers pins the per-call reply matching: two
// processes sharing one connection, one of them parked in a slow call, must
// each receive their own reply.
func TestSimSharedConnConcurrentCallers(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		l := NewListener(e)
		p.SpawnDaemon("server", func(p *sim.Proc) {
			for {
				req, ok := l.Incoming.Recv(p)
				if !ok {
					return
				}
				p.Spawn("worker", func(p *sim.Proc) {
					if string(req.Payload) == "slow" {
						p.Sleep(10 * time.Millisecond)
					}
					req.ReplyTo.Send(Response{Payload: append([]byte("re:"), req.Payload...), Proto: req.Proto})
				})
			}
		})
		conn := DialVersion(e, l, NetProfile{RTT: 100 * time.Microsecond}, ProtoV1)
		done := sim.NewQueue[string](e)
		p.Spawn("slow-caller", func(p *sim.Proc) {
			resp, err := conn.Roundtrip(p, []byte("slow"), 0)
			if err != nil {
				t.Errorf("slow call: %v", err)
			}
			done.Send(string(resp))
		})
		p.Sleep(time.Millisecond) // the slow call is in flight
		resp, err := conn.Roundtrip(p, []byte("fast"), 0)
		if err != nil {
			t.Fatal(err)
		}
		if string(resp) != "re:fast" {
			t.Fatalf("fast caller got %q — reply crosstalk", resp)
		}
		slow, _ := done.Recv(p)
		if slow != "re:slow" {
			t.Fatalf("slow caller got %q — reply crosstalk", slow)
		}
	})
}

// TestWriteFrameVecZeroAllocs is the tentpole's allocation contract: a
// 1 MiB vectored frame write allocates nothing — no coalescing copy, no
// size-proportional buffer.
func TestWriteFrameVecZeroAllocs(t *testing.T) {
	if wire.RaceEnabled {
		t.Skip("alloc counts are perturbed under the race detector")
	}
	meta := make([]byte, 64)
	bulk := make([]byte, 1<<20)
	// Warm the pools.
	if err := WriteFrameVec(io.Discard, meta, bulk, 0); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if err := WriteFrameVec(io.Discard, meta, bulk, 0); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("WriteFrameVec(1MiB) allocates %.1f/op, want 0", avg)
	}
}

// TestWriteFrameLargeZeroAllocs pins the size-classed pool fix: a v1 frame
// above the old 64 KiB pool cap no longer allocates per call.
func TestWriteFrameLargeZeroAllocs(t *testing.T) {
	if wire.RaceEnabled {
		t.Skip("alloc counts are perturbed under the race detector")
	}
	payload := make([]byte, 1<<20)
	if err := WriteFrame(io.Discard, payload, 0); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := WriteFrame(io.Discard, payload, 0); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("WriteFrame(1MiB) allocates %.1f/op, want 0 (size-classed pool)", avg)
	}
}

// TestReadFrameIntoZeroAllocs: reading a 1 MiB bulk frame into a pre-sized
// caller buffer allocates nothing.
func TestReadFrameIntoZeroAllocs(t *testing.T) {
	if wire.RaceEnabled {
		t.Skip("alloc counts are perturbed under the race detector")
	}
	meta := make([]byte, 64)
	bulk := make([]byte, 1<<20)
	var w bytes.Buffer
	if err := WriteFrameVec(&w, meta, bulk, 0); err != nil {
		t.Fatal(err)
	}
	frame := w.Bytes()
	dst := make([]byte, len(bulk))
	readBuf := make([]byte, 0, 4<<10)
	r := bytes.NewReader(frame)
	if avg := testing.AllocsPerRun(200, func() {
		r.Reset(frame)
		_, gotBulk, _, err := ReadFrameInto(r, readBuf, dst)
		if err != nil || len(gotBulk) != len(bulk) {
			t.Fatal("bad frame")
		}
	}); avg != 0 {
		t.Fatalf("ReadFrameInto(1MiB) allocates %.1f/op, want 0", avg)
	}
}

func TestWireStatsCountTraffic(t *testing.T) {
	before := SnapshotWireStats()
	var w bytes.Buffer
	if err := WriteFrameVec(&w, []byte("meta"), make([]byte, 8<<10), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadFrameInto(&w, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&w, []byte("v1"), 0); err != nil {
		t.Fatal(err)
	}
	d := SnapshotWireStats().Sub(before)
	if d.FramesV2 != 1 || d.FramesV1 != 1 {
		t.Fatalf("frame counters = v1:%d v2:%d, want 1 and 1", d.FramesV1, d.FramesV2)
	}
	wantTx := int64(frameHeaderLenV2+4+(8<<10)) + int64(frameHeaderLen+2)
	if d.BytesTx != wantTx {
		t.Fatalf("BytesTx = %d, want %d", d.BytesTx, wantTx)
	}
	if d.BytesRx != int64(frameHeaderLenV2+4+(8<<10)) {
		t.Fatalf("BytesRx = %d, want the v2 frame", d.BytesRx)
	}
}
