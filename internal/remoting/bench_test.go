package remoting

import (
	"bytes"
	"io"
	"testing"
)

func BenchmarkWriteFrame(b *testing.B) {
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.SetBytes(int64(frameHeaderLen + len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteFrame(io.Discard, payload, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameRoundTrip measures the frame round trip as a serialized
// caller runs it: the reply is read into a reused buffer (ReadFrameReuse),
// so the steady state allocates nothing.
func BenchmarkFrameRoundTrip(b *testing.B) {
	payload := make([]byte, 256)
	var framed bytes.Buffer
	if err := WriteFrame(&framed, payload, 7); err != nil {
		b.Fatal(err)
	}
	wire := framed.Bytes()
	var buf bytes.Buffer
	readBuf := make([]byte, 0, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		buf.Write(wire)
		got, data, err := ReadFrameReuse(&buf, readBuf)
		if err != nil || data != 7 || len(got) != len(payload) {
			b.Fatal("bad frame round trip")
		}
	}
}
