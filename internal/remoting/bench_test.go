package remoting

import (
	"bytes"
	"io"
	"testing"
)

func BenchmarkWriteFrame(b *testing.B) {
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.SetBytes(int64(frameHeaderLen + len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteFrame(io.Discard, payload, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameRoundTrip measures the frame round trip as a serialized
// caller runs it: the reply is read into a reused buffer (ReadFrameReuse),
// so the steady state allocates nothing.
func BenchmarkFrameRoundTrip(b *testing.B) {
	payload := make([]byte, 256)
	var framed bytes.Buffer
	if err := WriteFrame(&framed, payload, 7); err != nil {
		b.Fatal(err)
	}
	wire := framed.Bytes()
	var buf bytes.Buffer
	readBuf := make([]byte, 0, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		buf.Write(wire)
		got, data, err := ReadFrameReuse(&buf, readBuf)
		if err != nil || data != 7 || len(got) != len(payload) {
			b.Fatal("bad frame round trip")
		}
	}
}

// --- large-payload benches: the v2 vectored bulk lane against the v1
// coalescing path, at the sizes where zero-copy matters. Flat names (no
// sub-benchmarks) so cmd/benchjson and the CI perf gate track each size as
// its own series.

// benchFrameWriteV2 measures WriteFrameVec: header built in a pooled buffer,
// bulk borrowed as the second writev vector — no copy proportional to size.
func benchFrameWriteV2(b *testing.B, size int) {
	meta := make([]byte, 64)
	bulk := make([]byte, size)
	b.ReportAllocs()
	b.SetBytes(int64(frameHeaderLenV2 + len(meta) + size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteFrameVec(io.Discard, meta, bulk, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFrameWriteCoalesce is the v1 baseline at the same sizes: the bulk is
// appended into the encoded payload (one copy, as the encoder does on a v1
// connection) and the frame write copies it again into the frame buffer.
func benchFrameWriteCoalesce(b *testing.B, size int) {
	meta := make([]byte, 64)
	bulk := make([]byte, size)
	scratch := make([]byte, 0, len(meta)+size)
	b.ReportAllocs()
	b.SetBytes(int64(frameHeaderLen + len(meta) + size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload := append(append(scratch[:0], meta...), bulk...)
		if err := WriteFrame(io.Discard, payload, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameWriteV2_64KiB(b *testing.B)       { benchFrameWriteV2(b, 64<<10) }
func BenchmarkFrameWriteV2_1MiB(b *testing.B)        { benchFrameWriteV2(b, 1<<20) }
func BenchmarkFrameWriteV2_16MiB(b *testing.B)       { benchFrameWriteV2(b, 16<<20) }
func BenchmarkFrameWriteCoalesce_64KiB(b *testing.B) { benchFrameWriteCoalesce(b, 64<<10) }
func BenchmarkFrameWriteCoalesce_1MiB(b *testing.B)  { benchFrameWriteCoalesce(b, 1<<20) }
func BenchmarkFrameWriteCoalesce_16MiB(b *testing.B) { benchFrameWriteCoalesce(b, 16<<20) }

// The round-trip benches charge each protocol exactly its user-space work —
// frame construction on the way out (the wire itself is free: a writev hands
// the vectors to the kernel without copying) and payload recovery on the way
// in, reading a pre-built reply frame. What differs between the two paths is
// precisely what the benches compare: v2 borrows the bulk and scatter-reads
// the reply into the caller's buffer; v1 copies the bulk into the payload,
// copies the payload into the frame, and copies the decoded reply out.

// BenchmarkFrameRoundTripV2_1MiB: vectored 1 MiB write plus scatter-read of
// a 1 MiB reply into a pre-sized caller buffer — the full v2 data path.
func BenchmarkFrameRoundTripV2_1MiB(b *testing.B) {
	meta := make([]byte, 64)
	bulk := make([]byte, 1<<20)
	var reply bytes.Buffer
	if err := WriteFrameVec(&reply, meta, bulk, 0); err != nil {
		b.Fatal(err)
	}
	frame := reply.Bytes()
	r := bytes.NewReader(frame)
	dst := make([]byte, len(bulk))
	readBuf := make([]byte, 0, 512)
	b.ReportAllocs()
	b.SetBytes(int64(frameHeaderLenV2 + len(meta) + len(bulk)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteFrameVec(io.Discard, meta, bulk, 0); err != nil {
			b.Fatal(err)
		}
		r.Reset(frame)
		gotMeta, gotBulk, _, err := ReadFrameInto(r, readBuf, dst)
		if err != nil || len(gotMeta) != len(meta) || len(gotBulk) != len(bulk) {
			b.Fatal("bad v2 round trip")
		}
	}
}

// BenchmarkFrameRoundTripCoalesce_1MiB is the v1 baseline round trip: the
// bulk is copied into the encoded payload and again into the frame buffer on
// the way out; the reply is read into a reused buffer and the caller copies
// the decoded bytes out of it, as the v1 reply-ownership contract requires.
func BenchmarkFrameRoundTripCoalesce_1MiB(b *testing.B) {
	meta := make([]byte, 64)
	bulk := make([]byte, 1<<20)
	scratch := make([]byte, 0, len(meta)+len(bulk))
	var reply bytes.Buffer
	if err := WriteFrame(&reply, append(append(scratch[:0], meta...), bulk...), 0); err != nil {
		b.Fatal(err)
	}
	frame := reply.Bytes()
	r := bytes.NewReader(frame)
	dst := make([]byte, len(bulk))
	readBuf := make([]byte, 0, len(meta)+len(bulk))
	b.ReportAllocs()
	b.SetBytes(int64(frameHeaderLen + len(meta) + len(bulk)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload := append(append(scratch[:0], meta...), bulk...)
		if err := WriteFrame(io.Discard, payload, 0); err != nil {
			b.Fatal(err)
		}
		r.Reset(frame)
		got, _, err := ReadFrameReuse(r, readBuf)
		if err != nil || len(got) != len(payload) {
			b.Fatal("bad v1 round trip")
		}
		copy(dst, got[len(meta):])
	}
}
