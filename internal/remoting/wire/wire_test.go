package wire

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"dgsf/internal/cuda"
	"dgsf/internal/gpu"
)

func TestScalarRoundTrip(t *testing.T) {
	var e Encoder
	e.U8(7)
	e.Bool(true)
	e.Bool(false)
	e.U16(65535)
	e.U32(1 << 30)
	e.I32(-5)
	e.U64(1 << 62)
	e.I64(-1 << 40)
	e.Int(-42)
	e.Dur(3 * time.Second)
	e.Str("hello")
	e.Str("")
	d := NewDecoder(e.Bytes())
	if d.U8() != 7 || !d.Bool() || d.Bool() {
		t.Fatal("u8/bool mismatch")
	}
	if d.U16() != 65535 || d.U32() != 1<<30 || d.I32() != -5 {
		t.Fatal("u16/u32/i32 mismatch")
	}
	if d.U64() != 1<<62 || d.I64() != -1<<40 || d.Int() != -42 {
		t.Fatal("u64/i64/int mismatch")
	}
	if d.Dur() != 3*time.Second {
		t.Fatal("dur mismatch")
	}
	if d.Str() != "hello" || d.Str() != "" {
		t.Fatal("str mismatch")
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", d.Err(), d.Remaining())
	}
}

func TestCompositeRoundTrip(t *testing.T) {
	var e Encoder
	e.Strs([]string{"a", "bb", ""})
	e.U64s([]uint64{1, 2, 3})
	e.Vec3([3]int{4, 5, 6})
	e.HostBuf(gpu.HostBuffer{FP: 9, Size: 10})
	e.Prop(cuda.DeviceProp{Name: "V100", TotalMem: 16 << 30, SMs: 80, ClockMHz: 1530, Major: 7})
	e.Attrs(cuda.PtrAttributes{Device: 1, Size: 100, IsDevice: true})
	lp := cuda.LaunchParams{Fn: 11, Grid: [3]int{1, 2, 3}, Block: [3]int{4, 5, 6}, Stream: 7, Duration: time.Millisecond, Mutates: []cuda.DevPtr{1, 2}}
	e.Launch(lp)
	d := NewDecoder(e.Bytes())
	strs := d.Strs()
	if len(strs) != 3 || strs[1] != "bb" {
		t.Fatalf("strs = %v", strs)
	}
	if u := d.U64s(); len(u) != 3 || u[2] != 3 {
		t.Fatalf("u64s = %v", u)
	}
	if v := d.Vec3(); v != [3]int{4, 5, 6} {
		t.Fatalf("vec3 = %v", v)
	}
	if hb := d.HostBuf(); hb.FP != 9 || hb.Size != 10 {
		t.Fatalf("hostbuf = %+v", hb)
	}
	if pr := d.Prop(); pr.Name != "V100" || pr.SMs != 80 {
		t.Fatalf("prop = %+v", pr)
	}
	if a := d.Attrs(); !a.IsDevice || a.Size != 100 {
		t.Fatalf("attrs = %+v", a)
	}
	got := d.Launch()
	if got.Fn != lp.Fn || got.Grid != lp.Grid || got.Duration != lp.Duration || len(got.Mutates) != 2 {
		t.Fatalf("launch = %+v", got)
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

func TestTruncatedDecodeSticksError(t *testing.T) {
	var e Encoder
	e.U64(1)
	d := NewDecoder(e.Bytes()[:4])
	_ = d.U64()
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", d.Err())
	}
	// Subsequent reads stay zero with the same error.
	if d.U32() != 0 || d.Str() != "" || !errors.Is(d.Err(), ErrTruncated) {
		t.Fatal("sticky error not preserved")
	}
}

func TestOversizedSliceRejected(t *testing.T) {
	var e Encoder
	e.U32(1 << 25) // claims a 32M-entry slice
	d := NewDecoder(e.Bytes())
	if d.U64s() != nil || !errors.Is(d.Err(), ErrOversized) {
		t.Fatalf("err = %v, want ErrOversized", d.Err())
	}
}

// Property: any (string slice, uint64 slice, scalars) tuple round-trips.
func TestRoundTripProperty(t *testing.T) {
	f := func(ss []string, us []uint64, a int64, b uint64, c bool) bool {
		if len(ss) > 1000 || len(us) > 1000 {
			return true
		}
		var e Encoder
		e.Strs(ss)
		e.U64s(us)
		e.I64(a)
		e.U64(b)
		e.Bool(c)
		d := NewDecoder(e.Bytes())
		gs := d.Strs()
		gu := d.U64s()
		if d.I64() != a || d.U64() != b || d.Bool() != c || d.Err() != nil {
			return false
		}
		if len(gs) != len(ss) || len(gu) != len(us) {
			return false
		}
		for i := range ss {
			if gs[i] != ss[i] {
				return false
			}
		}
		for i := range us {
			if gu[i] != us[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
