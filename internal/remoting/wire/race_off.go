//go:build !race

package wire

// RaceEnabled reports whether the race detector instruments this build.
const RaceEnabled = false
