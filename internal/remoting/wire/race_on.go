//go:build race

package wire

// RaceEnabled reports whether the race detector instruments this build.
// Alloc-count tests consult it: the detector intentionally drops sync.Pool
// items to widen interleavings, which voids AllocsPerRun guarantees.
const RaceEnabled = true
