// Package wire implements the binary encoding used by DGSF's API remoting
// protocol. The per-call message layouts are produced by cmd/apigen, which
// generates Encode/Decode pairs over this package's primitives — mirroring
// the paper's approach of generating both sides of the remoting system from
// a single list of APIs (§VI).
//
// All integers are little-endian and fixed-width; variable-length values are
// length-prefixed with a uint32. Decoding uses a sticky error so generated
// code can decode whole structs without per-field error checks.
package wire

import (
	"encoding/binary"
	"errors"
	"sync"
	"time"
	"unsafe"

	"dgsf/internal/cuda"
	"dgsf/internal/gpu"
)

// ErrTruncated reports a message shorter than its declared contents.
var ErrTruncated = errors.New("wire: truncated message")

// ErrOversized reports a length prefix beyond sane limits.
var ErrOversized = errors.New("wire: oversized field")

// maxSliceLen bounds decoded slice lengths to keep a corrupt or malicious
// length prefix from causing huge allocations.
const maxSliceLen = 1 << 20

// maxPooledBuf caps the encoder buffers retained by the pool so one giant
// message (e.g. a model-sized batch) does not pin memory forever.
const maxPooledBuf = 64 << 10

// maxPooledScratch caps the shared-decode scratch slices (element counts,
// not bytes) a pooled decoder retains.
const maxPooledScratch = 1024

// Encoder and Decoder pools for the steady-state remoting data path. The
// contract is strict ownership: a pooled Encoder's Bytes() must not be
// referenced after PutEncoder, and a pooled Decoder must not be used after
// PutDecoder. Callers that hand buffers to asynchronous consumers (e.g. an
// in-flight one-way submission) must use fresh buffers instead.
var (
	encPool = sync.Pool{New: func() any { return new(Encoder) }}
	decPool = sync.Pool{New: func() any { return new(Decoder) }}
)

// GetEncoder returns an empty pooled encoder.
func GetEncoder() *Encoder {
	e := encPool.Get().(*Encoder)
	e.Reset()
	return e
}

// PutEncoder returns an encoder to the pool.
func PutEncoder(e *Encoder) {
	if cap(e.buf) > maxPooledBuf {
		return
	}
	encPool.Put(e)
}

// GetDecoder returns a pooled decoder positioned at the start of buf.
func GetDecoder(buf []byte) *Decoder {
	d := decPool.Get().(*Decoder)
	d.Reset(buf)
	return d
}

// PutDecoder returns a decoder to the pool. The decoder must not be used
// afterwards. Slices produced by the copying methods (Strs, Launch, ...)
// remain valid; anything produced by the Shared variants dies here.
func PutDecoder(d *Decoder) {
	d.Reset(nil)
	if cap(d.strs) > maxPooledScratch {
		d.strs = nil
	}
	if cap(d.ptrs) > maxPooledScratch {
		d.ptrs = nil
	}
	decPool.Put(d)
}

// Encoder appends binary values to a buffer. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the buffer for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// U8 appends a byte.
func (e *Encoder) U8(v byte) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U16 appends a uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 appends a uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// I32 appends an int32.
func (e *Encoder) I32(v int32) { e.U32(uint32(v)) }

// U64 appends a uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends an int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as 64 bits.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Dur appends a time.Duration as nanoseconds.
func (e *Encoder) Dur(v time.Duration) { e.I64(int64(v)) }

// Str appends a length-prefixed string.
func (e *Encoder) Str(v string) {
	e.U32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// Raw appends bytes verbatim, with no length prefix. Used for batch bodies
// whose entries are already individually prefixed.
func (e *Encoder) Raw(v []byte) { e.buf = append(e.buf, v...) }

// BytesField appends a length-prefixed byte slice.
func (e *Encoder) BytesField(v []byte) {
	e.U32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// Strs appends a length-prefixed string slice.
func (e *Encoder) Strs(v []string) {
	e.U32(uint32(len(v)))
	for _, s := range v {
		e.Str(s)
	}
}

// U64s appends a length-prefixed uint64 slice.
func (e *Encoder) U64s(v []uint64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.U64(x)
	}
}

// Vec3 appends a [3]int.
func (e *Encoder) Vec3(v [3]int) {
	for _, x := range v {
		e.Int(x)
	}
}

// HostBuf appends a gpu.HostBuffer.
func (e *Encoder) HostBuf(v gpu.HostBuffer) {
	e.U64(v.FP)
	e.I64(v.Size)
}

// Prop appends a cuda.DeviceProp.
func (e *Encoder) Prop(v cuda.DeviceProp) {
	e.Str(v.Name)
	e.I64(v.TotalMem)
	e.Int(v.SMs)
	e.Int(v.ClockMHz)
	e.Int(v.Major)
	e.Int(v.Minor)
}

// Attrs appends a cuda.PtrAttributes.
func (e *Encoder) Attrs(v cuda.PtrAttributes) {
	e.Int(v.Device)
	e.I64(v.Size)
	e.Bool(v.IsDevice)
}

// Launch appends a cuda.LaunchParams.
func (e *Encoder) Launch(v cuda.LaunchParams) {
	e.U64(uint64(v.Fn))
	e.Vec3(v.Grid)
	e.Vec3(v.Block)
	e.U64(uint64(v.Stream))
	e.Dur(v.Duration)
	e.U32(uint32(len(v.Mutates)))
	for _, m := range v.Mutates {
		e.U64(uint64(m))
	}
}

// DevPtrs appends a []cuda.DevPtr.
func (e *Encoder) DevPtrs(v []cuda.DevPtr) {
	e.U32(uint32(len(v)))
	for _, m := range v {
		e.U64(uint64(m))
	}
}

// FnPtrs appends a []cuda.FnPtr.
func (e *Encoder) FnPtrs(v []cuda.FnPtr) {
	e.U32(uint32(len(v)))
	for _, m := range v {
		e.U64(uint64(m))
	}
}

// Decoder reads binary values from a buffer with a sticky error.
//
// The Shared decode variants (StrsShared, LaunchShared) return values that
// alias the decoder's buffer and scratch storage: they cost no allocations
// on the steady-state path but are valid only until the next Reset (or
// PutDecoder), and at most one live result per variant per decoder. Callers
// that retain a shared value must clone it first.
type Decoder struct {
	buf []byte
	off int
	err error

	// Scratch reused by the Shared decode variants.
	strs []string
	ptrs []cuda.DevPtr
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Reset repositions the decoder at the start of buf, clearing any sticky
// error, so one decoder can be reused across messages. Values produced by
// the Shared decode variants are invalidated: the string scratch is zeroed
// so a pooled decoder cannot pin a previous message's payload.
func (d *Decoder) Reset(buf []byte) {
	d.buf = buf
	d.off = 0
	d.err = nil
	for i := range d.strs {
		d.strs[i] = ""
	}
	d.strs = d.strs[:0]
	d.ptrs = d.ptrs[:0]
}

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = ErrTruncated
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads a byte.
func (d *Decoder) U8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U16 reads a uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// I32 reads an int32.
func (d *Decoder) I32() int32 { return int32(d.U32()) }

// U64 reads a uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int.
func (d *Decoder) Int() int { return int(d.I64()) }

// Dur reads a time.Duration.
func (d *Decoder) Dur() time.Duration { return time.Duration(d.I64()) }

func (d *Decoder) sliceLen() int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if n > maxSliceLen {
		d.err = ErrOversized
		return 0
	}
	return n
}

// sliceCap clamps a decoded element count to what the remaining bytes could
// possibly hold, so a corrupt length prefix cannot force a multi-MB
// pre-allocation before take() fails. elemSize is the minimum encoded size of
// one element.
func (d *Decoder) sliceCap(n, elemSize int) int {
	if max := d.Remaining() / elemSize; n > max {
		return max
	}
	return n
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := d.sliceLen()
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// BytesField reads a length-prefixed byte slice.
func (d *Decoder) BytesField() []byte {
	n := d.sliceLen()
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// BytesShared reads a length-prefixed byte slice without copying: the result
// aliases the decoder's buffer and is valid only until the decoder resets.
// The server dispatch path uses it for bulk payloads carried inline on
// protocol-v1 connections; backends must copy what they retain.
func (d *Decoder) BytesShared() []byte {
	n := d.sliceLen()
	return d.take(n)
}

// Strs reads a length-prefixed string slice.
func (d *Decoder) Strs() []string {
	n := d.sliceLen()
	if d.err != nil {
		return nil
	}
	out := make([]string, 0, d.sliceCap(n, 4))
	for i := 0; i < n; i++ {
		v := d.Str()
		if d.err != nil {
			return nil
		}
		out = append(out, v)
	}
	return out
}

// viewString returns a string aliasing b's bytes without copying. The
// string lives exactly as long as b's backing array; the Shared decode
// contract (valid until Reset) is what makes handing it out sound.
func viewString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// StrsShared reads a length-prefixed string slice without copying: the
// strings alias the decoder's buffer and the slice is decoder-owned
// scratch, so steady-state decoding allocates nothing. The result is valid
// only until the next Reset (or PutDecoder); retained strings must be
// cloned. The generated server dispatch path decodes request slices this
// way — the decoder outlives the backend call — so handlers see ordinary
// strings but must copy before stashing one in session state.
func (d *Decoder) StrsShared() []string {
	n := d.sliceLen()
	if d.err != nil {
		return nil
	}
	d.strs = d.strs[:0]
	for i := 0; i < n; i++ {
		m := d.sliceLen()
		b := d.take(m)
		if d.err != nil {
			return nil
		}
		d.strs = append(d.strs, viewString(b))
	}
	return d.strs
}

// U64s reads a length-prefixed uint64 slice.
func (d *Decoder) U64s() []uint64 {
	n := d.sliceLen()
	if d.err != nil {
		return nil
	}
	out := make([]uint64, 0, d.sliceCap(n, 8))
	for i := 0; i < n; i++ {
		v := d.U64()
		if d.err != nil {
			return nil
		}
		out = append(out, v)
	}
	return out
}

// Vec3 reads a [3]int.
func (d *Decoder) Vec3() [3]int {
	var v [3]int
	for i := range v {
		v[i] = d.Int()
	}
	return v
}

// HostBuf reads a gpu.HostBuffer.
func (d *Decoder) HostBuf() gpu.HostBuffer {
	return gpu.HostBuffer{FP: d.U64(), Size: d.I64()}
}

// Prop reads a cuda.DeviceProp.
func (d *Decoder) Prop() cuda.DeviceProp {
	return cuda.DeviceProp{
		Name:     d.Str(),
		TotalMem: d.I64(),
		SMs:      d.Int(),
		ClockMHz: d.Int(),
		Major:    d.Int(),
		Minor:    d.Int(),
	}
}

// Attrs reads a cuda.PtrAttributes.
func (d *Decoder) Attrs() cuda.PtrAttributes {
	return cuda.PtrAttributes{Device: d.Int(), Size: d.I64(), IsDevice: d.Bool()}
}

// Launch reads a cuda.LaunchParams.
func (d *Decoder) Launch() cuda.LaunchParams {
	lp := cuda.LaunchParams{
		Fn:       cuda.FnPtr(d.U64()),
		Grid:     d.Vec3(),
		Block:    d.Vec3(),
		Stream:   cuda.StreamHandle(d.U64()),
		Duration: d.Dur(),
	}
	n := d.sliceLen()
	if d.err != nil {
		return lp
	}
	lp.Mutates = make([]cuda.DevPtr, 0, d.sliceCap(n, 8))
	for i := 0; i < n; i++ {
		v := cuda.DevPtr(d.U64())
		if d.err != nil {
			lp.Mutates = nil
			return lp
		}
		lp.Mutates = append(lp.Mutates, v)
	}
	return lp
}

// LaunchShared reads a cuda.LaunchParams with Mutates backed by
// decoder-owned scratch instead of a fresh slice: zero allocations on the
// hottest message of the remoting path. Same contract as StrsShared — the
// result is valid until the next Reset, and the callee must not retain
// Mutates (the CUDA layer resolves it to allocations synchronously).
func (d *Decoder) LaunchShared() cuda.LaunchParams {
	lp := cuda.LaunchParams{
		Fn:       cuda.FnPtr(d.U64()),
		Grid:     d.Vec3(),
		Block:    d.Vec3(),
		Stream:   cuda.StreamHandle(d.U64()),
		Duration: d.Dur(),
	}
	n := d.sliceLen()
	if d.err != nil {
		return lp
	}
	d.ptrs = d.ptrs[:0]
	for i := 0; i < n; i++ {
		v := cuda.DevPtr(d.U64())
		if d.err != nil {
			return lp
		}
		d.ptrs = append(d.ptrs, v)
	}
	lp.Mutates = d.ptrs
	return lp
}

// DevPtrs reads a []cuda.DevPtr.
func (d *Decoder) DevPtrs() []cuda.DevPtr {
	n := d.sliceLen()
	if d.err != nil {
		return nil
	}
	out := make([]cuda.DevPtr, 0, d.sliceCap(n, 8))
	for i := 0; i < n; i++ {
		v := cuda.DevPtr(d.U64())
		if d.err != nil {
			return nil
		}
		out = append(out, v)
	}
	return out
}

// FnPtrs reads a []cuda.FnPtr.
func (d *Decoder) FnPtrs() []cuda.FnPtr {
	n := d.sliceLen()
	if d.err != nil {
		return nil
	}
	out := make([]cuda.FnPtr, 0, d.sliceCap(n, 8))
	for i := 0; i < n; i++ {
		v := cuda.FnPtr(d.U64())
		if d.err != nil {
			return nil
		}
		out = append(out, v)
	}
	return out
}
