package wire

import (
	"testing"
	"time"

	"dgsf/internal/cuda"
)

// benchLaunch is a representative kernel-launch payload: the hottest message
// on the remoting path (one per launch, hundreds per workload).
func benchLaunch() cuda.LaunchParams {
	return cuda.LaunchParams{
		Fn:       0x5000_0000_0001,
		Grid:     [3]int{128, 1, 1},
		Block:    [3]int{256, 1, 1},
		Stream:   0x7000_0001,
		Duration: 3 * time.Millisecond,
		Mutates:  []cuda.DevPtr{0x10_0000, 0x20_0000},
	}
}

func BenchmarkEncodeLaunch(b *testing.B) {
	lp := benchLaunch()
	var e Encoder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.U16(23) // call ID
		e.Launch(lp)
	}
}

// BenchmarkDecodeLaunch measures the launch decode as the server dispatch
// path runs it: a pooled decoder and the shared (scratch-backed) variant,
// which is allocation-free in steady state.
func BenchmarkDecodeLaunch(b *testing.B) {
	lp := benchLaunch()
	var e Encoder
	e.Launch(lp)
	buf := e.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := GetDecoder(buf)
		got := d.LaunchShared()
		if d.Err() != nil || got.Fn != lp.Fn || len(got.Mutates) != len(lp.Mutates) {
			b.Fatal("bad decode")
		}
		PutDecoder(d)
	}
}

// BenchmarkDecodeStrs measures string-slice decode as the server dispatch
// path runs it (pooled decoder, buffer-aliasing strings): zero allocations
// once the scratch has warmed up.
func BenchmarkDecodeStrs(b *testing.B) {
	var e Encoder
	e.Strs([]string{"kernel_a", "kernel_b", "kernel_c", "kernel_d"})
	buf := e.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := GetDecoder(buf)
		if out := d.StrsShared(); len(out) != 4 || d.Err() != nil {
			b.Fatal("bad decode")
		}
		PutDecoder(d)
	}
}
