package wire

import (
	"testing"

	"dgsf/internal/cuda"
)

// TestPooledEncodeZeroAllocs is the zero-alloc contract of the data path:
// steady-state encoding through the pool allocates nothing once buffers
// have warmed up.
func TestPooledEncodeZeroAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("race detector drops sync.Pool items; alloc counts are meaningless")
	}
	lp := cuda.LaunchParams{
		Fn:      0x1000,
		Grid:    [3]int{256, 1, 1},
		Block:   [3]int{256, 1, 1},
		Mutates: []cuda.DevPtr{0x10_0000, 0x20_0000},
	}
	// Warm the pool.
	for i := 0; i < 8; i++ {
		e := GetEncoder()
		e.U16(23)
		e.Launch(lp)
		PutEncoder(e)
	}
	if avg := testing.AllocsPerRun(500, func() {
		e := GetEncoder()
		e.U16(23)
		e.Launch(lp)
		if e.Len() == 0 {
			t.Fatal("empty encode")
		}
		PutEncoder(e)
	}); avg != 0 {
		t.Fatalf("pooled encode allocates %.1f times per op, want 0", avg)
	}
}

// TestPooledDecodeBoundedAllocs: decoding a response through the pool
// allocates only what the decoded value itself requires.
func TestPooledDecodeBoundedAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("race detector drops sync.Pool items; alloc counts are meaningless")
	}
	var e Encoder
	e.I32(0)
	e.U64(0x10_0000)
	buf := e.Bytes()
	if avg := testing.AllocsPerRun(500, func() {
		d := GetDecoder(buf)
		if d.I32() != 0 || d.U64() != 0x10_0000 || d.Err() != nil {
			t.Fatal("bad decode")
		}
		PutDecoder(d)
	}); avg != 0 {
		t.Fatalf("pooled scalar decode allocates %.1f times per op, want 0", avg)
	}
}

// TestDecoderClampsCorruptLengthPrefix: a corrupted or hostile length
// prefix must not pre-allocate beyond the bytes actually present.
func TestDecoderClampsCorruptLengthPrefix(t *testing.T) {
	var e Encoder
	e.U32(500_000) // claims half a million elements...
	e.U64(1)       // ...but carries one
	buf := e.Bytes()

	d := NewDecoder(buf)
	vs := d.U64s()
	if d.Err() == nil {
		t.Fatal("truncated slice decoded without error")
	}
	if len(vs) > 1 {
		t.Fatalf("decoded %d elements from a 1-element payload", len(vs))
	}
	// The clamp keeps the per-attempt allocation proportional to the real
	// payload, not the claimed length: at most the clamped backing array.
	if !RaceEnabled {
		if avg := testing.AllocsPerRun(100, func() {
			d := GetDecoder(buf)
			_ = d.U64s()
			PutDecoder(d)
		}); avg > 2 {
			t.Fatalf("corrupt-prefix decode allocates %.1f times per op, want <= 2", avg)
		}
	}

	// Same for strings and pointer slices.
	var s Encoder
	s.U32(1 << 19)
	s.Str("x")
	ds := NewDecoder(s.Bytes())
	if got := ds.Strs(); ds.Err() == nil || len(got) > 1 {
		t.Fatalf("corrupt string slice: err=%v len=%d", ds.Err(), len(got))
	}
}
