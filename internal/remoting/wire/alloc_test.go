package wire

import (
	"testing"

	"dgsf/internal/cuda"
)

// TestPooledEncodeZeroAllocs is the zero-alloc contract of the data path:
// steady-state encoding through the pool allocates nothing once buffers
// have warmed up.
func TestPooledEncodeZeroAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("race detector drops sync.Pool items; alloc counts are meaningless")
	}
	lp := cuda.LaunchParams{
		Fn:      0x1000,
		Grid:    [3]int{256, 1, 1},
		Block:   [3]int{256, 1, 1},
		Mutates: []cuda.DevPtr{0x10_0000, 0x20_0000},
	}
	// Warm the pool.
	for i := 0; i < 8; i++ {
		e := GetEncoder()
		e.U16(23)
		e.Launch(lp)
		PutEncoder(e)
	}
	if avg := testing.AllocsPerRun(500, func() {
		e := GetEncoder()
		e.U16(23)
		e.Launch(lp)
		if e.Len() == 0 {
			t.Fatal("empty encode")
		}
		PutEncoder(e)
	}); avg != 0 {
		t.Fatalf("pooled encode allocates %.1f times per op, want 0", avg)
	}
}

// TestPooledDecodeBoundedAllocs: decoding a response through the pool
// allocates only what the decoded value itself requires.
func TestPooledDecodeBoundedAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("race detector drops sync.Pool items; alloc counts are meaningless")
	}
	var e Encoder
	e.I32(0)
	e.U64(0x10_0000)
	buf := e.Bytes()
	if avg := testing.AllocsPerRun(500, func() {
		d := GetDecoder(buf)
		if d.I32() != 0 || d.U64() != 0x10_0000 || d.Err() != nil {
			t.Fatal("bad decode")
		}
		PutDecoder(d)
	}); avg != 0 {
		t.Fatalf("pooled scalar decode allocates %.1f times per op, want 0", avg)
	}
}

// TestDecoderClampsCorruptLengthPrefix: a corrupted or hostile length
// prefix must not pre-allocate beyond the bytes actually present.
func TestDecoderClampsCorruptLengthPrefix(t *testing.T) {
	var e Encoder
	e.U32(500_000) // claims half a million elements...
	e.U64(1)       // ...but carries one
	buf := e.Bytes()

	d := NewDecoder(buf)
	vs := d.U64s()
	if d.Err() == nil {
		t.Fatal("truncated slice decoded without error")
	}
	if len(vs) > 1 {
		t.Fatalf("decoded %d elements from a 1-element payload", len(vs))
	}
	// The clamp keeps the per-attempt allocation proportional to the real
	// payload, not the claimed length: at most the clamped backing array.
	if !RaceEnabled {
		if avg := testing.AllocsPerRun(100, func() {
			d := GetDecoder(buf)
			_ = d.U64s()
			PutDecoder(d)
		}); avg > 2 {
			t.Fatalf("corrupt-prefix decode allocates %.1f times per op, want <= 2", avg)
		}
	}

	// Same for strings and pointer slices.
	var s Encoder
	s.U32(1 << 19)
	s.Str("x")
	ds := NewDecoder(s.Bytes())
	if got := ds.Strs(); ds.Err() == nil || len(got) > 1 {
		t.Fatalf("corrupt string slice: err=%v len=%d", ds.Err(), len(got))
	}
}

// TestSharedDecodeMatchesCopyingDecode: the shared variants produce the
// same values as their copying counterparts.
func TestSharedDecodeMatchesCopyingDecode(t *testing.T) {
	names := []string{"kernel_a", "", "k"}
	var e Encoder
	e.Strs(names)
	d := NewDecoder(e.Bytes())
	got := d.StrsShared()
	if d.Err() != nil || len(got) != len(names) {
		t.Fatalf("StrsShared: err=%v len=%d", d.Err(), len(got))
	}
	for i := range names {
		if got[i] != names[i] {
			t.Fatalf("StrsShared[%d] = %q, want %q", i, got[i], names[i])
		}
	}

	lp := cuda.LaunchParams{
		Fn:      0x5000,
		Grid:    [3]int{8, 1, 1},
		Block:   [3]int{64, 1, 1},
		Stream:  3,
		Mutates: []cuda.DevPtr{0x10, 0x20, 0x30},
	}
	var el Encoder
	el.Launch(lp)
	dl := NewDecoder(el.Bytes())
	gl := dl.LaunchShared()
	if dl.Err() != nil || gl.Fn != lp.Fn || gl.Stream != lp.Stream || len(gl.Mutates) != 3 {
		t.Fatalf("LaunchShared = %+v, err=%v", gl, dl.Err())
	}
	for i, m := range lp.Mutates {
		if gl.Mutates[i] != m {
			t.Fatalf("LaunchShared.Mutates[%d] = %#x, want %#x", i, gl.Mutates[i], m)
		}
	}

	// Truncated input surfaces the sticky error, like the copying path.
	trunc := NewDecoder(e.Bytes()[:5])
	if out := trunc.StrsShared(); trunc.Err() == nil || out != nil {
		t.Fatalf("truncated StrsShared: err=%v out=%v", trunc.Err(), out)
	}
}

// TestSharedDecodeInvalidatedByReset: Reset wipes the string scratch so a
// pooled decoder cannot pin a previous message's payload.
func TestSharedDecodeInvalidatedByReset(t *testing.T) {
	var e Encoder
	e.Strs([]string{"alpha", "beta"})
	d := NewDecoder(e.Bytes())
	got := d.StrsShared()
	if len(got) != 2 {
		t.Fatalf("StrsShared len = %d", len(got))
	}
	d.Reset(nil)
	// The caller's view of the scratch still has its headers; the decoder's
	// own scratch must be cleared.
	if len(d.strs) != 0 {
		t.Fatalf("scratch not truncated after Reset: %v", d.strs)
	}
	for _, s := range d.strs[:cap(d.strs)][:2] {
		if s != "" {
			t.Fatalf("scratch still references old payload: %q", s)
		}
	}
}

// TestSharedDecodeZeroAllocs is the point of the shared variants: decoding
// the dispatch path's hot messages through the pool allocates nothing.
func TestSharedDecodeZeroAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("race detector drops sync.Pool items; alloc counts are meaningless")
	}
	var es Encoder
	es.Strs([]string{"kernel_a", "kernel_b", "kernel_c", "kernel_d"})
	strsBuf := es.Bytes()
	var el Encoder
	el.Launch(cuda.LaunchParams{Fn: 1, Mutates: []cuda.DevPtr{2, 3}})
	launchBuf := el.Bytes()
	// Warm the pool and the scratch.
	for i := 0; i < 8; i++ {
		d := GetDecoder(strsBuf)
		_ = d.StrsShared()
		PutDecoder(d)
	}
	if avg := testing.AllocsPerRun(500, func() {
		d := GetDecoder(strsBuf)
		if out := d.StrsShared(); len(out) != 4 || d.Err() != nil {
			t.Fatal("bad decode")
		}
		PutDecoder(d)
		d = GetDecoder(launchBuf)
		if lp := d.LaunchShared(); len(lp.Mutates) != 2 || d.Err() != nil {
			t.Fatal("bad launch decode")
		}
		PutDecoder(d)
	}); avg != 0 {
		t.Fatalf("shared decode allocates %.1f times per op, want 0", avg)
	}
}
