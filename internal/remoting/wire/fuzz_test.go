package wire

import (
	"testing"
)

// FuzzDecoder feeds arbitrary bytes to every composite decode path and
// checks the properties the zero-alloc data path depends on: no panic, no
// allocation larger than the input justifies (length-prefix clamping via
// sliceCap), and sticky-error behavior — after any failure every further
// read returns the zero value.
func FuzzDecoder(f *testing.F) {
	// Seeds from real encoder output so the fuzzer starts on the happy path.
	var e Encoder
	e.Str("model.onnx")
	e.U64s([]uint64{1, 2, 3})
	e.Strs([]string{"a", "bb", "ccc"})
	f.Add(e.Bytes())

	var e2 Encoder
	e2.U32(0xFFFF_FFFF) // hostile slice length prefix
	f.Add(e2.Bytes())

	var e3 Encoder
	e3.U32(1 << 25) // over maxSliceLen but plausible-looking
	e3.U64(42)
	f.Add(e3.Bytes())

	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, in []byte) {
		// Each composite decode runs on its own decoder so one path's
		// failure cannot mask another's.
		checkU64s(t, in)
		checkStrs(t, in)
		checkStr(t, in)
		checkBytesField(t, in)

		d := NewDecoder(in)
		_ = d.Vec3()
		_ = d.HostBuf()
		_ = d.Prop()
		_ = d.Attrs()
		_ = d.Launch()
		_ = d.DevPtrs()
		_ = d.FnPtrs()

		// Sticky error: once failed, everything reads as zero.
		bad := NewDecoder(in)
		for bad.Err() == nil && bad.Remaining() > 0 {
			_ = bad.U64s()
		}
		if bad.Err() != nil {
			if bad.U64() != 0 || bad.Str() != "" || bad.U64s() != nil {
				t.Fatal("reads after a decode error must return zero values")
			}
		}
	})
}

func checkU64s(t *testing.T, in []byte) {
	d := NewDecoder(in)
	out := d.U64s()
	if d.Err() != nil {
		return
	}
	// Clamping property: a successful decode can never have consumed (or
	// allocated) more element bytes than the input held after the prefix.
	if len(out)*8 > len(in) {
		t.Fatalf("U64s produced %d elements from %d input bytes", len(out), len(in))
	}
	if cap(out) != 0 && cap(out)*8 > len(in) {
		t.Fatalf("U64s over-allocated: cap %d from %d input bytes", cap(out), len(in))
	}
}

func checkStrs(t *testing.T, in []byte) {
	d := NewDecoder(in)
	out := d.Strs()
	if d.Err() != nil {
		return
	}
	total := 0
	for _, s := range out {
		total += len(s)
	}
	if total > len(in) {
		t.Fatalf("Strs produced %d string bytes from %d input bytes", total, len(in))
	}
}

func checkStr(t *testing.T, in []byte) {
	d := NewDecoder(in)
	s := d.Str()
	if d.Err() == nil && len(s) > len(in) {
		t.Fatalf("Str produced %d bytes from %d input bytes", len(s), len(in))
	}
}

func checkBytesField(t *testing.T, in []byte) {
	d := NewDecoder(in)
	b := d.BytesField()
	if d.Err() == nil && len(b) > len(in) {
		t.Fatalf("BytesField produced %d bytes from %d input bytes", len(b), len(in))
	}
}
