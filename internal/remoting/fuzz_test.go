package remoting

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame drives the frame reader with arbitrary byte streams —
// truncated headers, mid-frame truncation, hostile length prefixes — and
// checks the two invariants every caller relies on: a failure is always a
// typed connection fault (IsConnFault), and a success never fabricates
// bytes that were not on the wire.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	if err := WriteFrame(&good, []byte("hello dgsf"), 10); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())                    // well-formed frame
	f.Add(good.Bytes()[:frameHeaderLen+3]) // mid-frame truncation
	f.Add(good.Bytes()[:5])                // mid-header truncation
	f.Add([]byte{})                        // empty stream

	hostile := make([]byte, frameHeaderLen)
	binary.LittleEndian.PutUint32(hostile, 0xFFFF_FFFF) // over the frame cap
	f.Add(hostile)

	big := make([]byte, frameHeaderLen)
	binary.LittleEndian.PutUint32(big, maxFrameLen) // at the cap, body missing
	f.Add(append(big, bytes.Repeat([]byte{0xAB}, 1024)...))

	f.Fuzz(func(t *testing.T, in []byte) {
		payload, _, err := ReadFrame(bytes.NewReader(in))
		if err != nil {
			if !IsConnFault(err) {
				t.Fatalf("ReadFrame error is not a typed conn fault: %v", err)
			}
			return
		}
		if len(in) < frameHeaderLen {
			t.Fatalf("ReadFrame succeeded on a %d-byte stream", len(in))
		}
		declared := binary.LittleEndian.Uint32(in[0:4])
		if uint32(len(payload)) != declared {
			t.Fatalf("payload length %d disagrees with prefix %d", len(payload), declared)
		}
		if len(payload) > maxFrameLen {
			t.Fatalf("payload %d exceeds maxFrameLen", len(payload))
		}
		if len(payload) > len(in)-frameHeaderLen {
			t.Fatalf("payload %d longer than the %d body bytes on the wire", len(payload), len(in)-frameHeaderLen)
		}
		if !bytes.Equal(payload, in[frameHeaderLen:frameHeaderLen+len(payload)]) {
			t.Fatal("payload does not match wire bytes")
		}
	})
}

// FuzzFrameRoundtrip checks WriteFrame|ReadFrame is the identity on
// payload and data for arbitrary inputs.
func FuzzFrameRoundtrip(f *testing.F) {
	f.Add([]byte("payload"), int64(7))
	f.Add([]byte{}, int64(0))
	f.Add(bytes.Repeat([]byte{0x5A}, maxPooledFrame+17), int64(-1)) // beyond the pooled size class
	f.Fuzz(func(t *testing.T, payload []byte, data int64) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload, data); err != nil {
			t.Fatal(err)
		}
		got, gotData, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if gotData != data || !bytes.Equal(got, payload) {
			t.Fatalf("roundtrip mismatch: %d bytes/%d data, want %d/%d", len(got), gotData, len(payload), data)
		}
	})
}
