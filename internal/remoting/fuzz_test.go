package remoting

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame drives the frame reader with arbitrary byte streams —
// truncated headers, mid-frame truncation, hostile length prefixes — and
// checks the two invariants every caller relies on: a failure is always a
// typed connection fault (IsConnFault), and a success never fabricates
// bytes that were not on the wire.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	if err := WriteFrame(&good, []byte("hello dgsf"), 10); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())                    // well-formed frame
	f.Add(good.Bytes()[:frameHeaderLen+3]) // mid-frame truncation
	f.Add(good.Bytes()[:5])                // mid-header truncation
	f.Add([]byte{})                        // empty stream

	hostile := make([]byte, frameHeaderLen)
	binary.LittleEndian.PutUint32(hostile, 0xFFFF_FFFF) // over the frame cap
	f.Add(hostile)

	big := make([]byte, frameHeaderLen)
	binary.LittleEndian.PutUint32(big, maxFrameLen) // at the cap, body missing
	f.Add(append(big, bytes.Repeat([]byte{0xAB}, 1024)...))

	f.Fuzz(func(t *testing.T, in []byte) {
		payload, _, err := ReadFrame(bytes.NewReader(in))
		if err != nil {
			if !IsConnFault(err) {
				t.Fatalf("ReadFrame error is not a typed conn fault: %v", err)
			}
			return
		}
		if len(in) < frameHeaderLen {
			t.Fatalf("ReadFrame succeeded on a %d-byte stream", len(in))
		}
		declared := binary.LittleEndian.Uint32(in[0:4])
		if uint32(len(payload)) != declared {
			t.Fatalf("payload length %d disagrees with prefix %d", len(payload), declared)
		}
		if len(payload) > maxFrameLen {
			t.Fatalf("payload %d exceeds maxFrameLen", len(payload))
		}
		if len(payload) > len(in)-frameHeaderLen {
			t.Fatalf("payload %d longer than the %d body bytes on the wire", len(payload), len(in)-frameHeaderLen)
		}
		if !bytes.Equal(payload, in[frameHeaderLen:frameHeaderLen+len(payload)]) {
			t.Fatal("payload does not match wire bytes")
		}
	})
}

// FuzzReadFrameV2 drives the v2 frame reader with arbitrary streams. Same
// invariants as FuzzReadFrame, plus the v2 header checks: bad magic, bad
// version, bulk bytes without the bulk flag, hostile meta/bulk lengths.
func FuzzReadFrameV2(f *testing.F) {
	var noBulk, small, big bytes.Buffer
	if err := WriteFrameVec(&noBulk, []byte("meta only"), nil, 3); err != nil {
		f.Fatal(err)
	}
	if err := WriteFrameVec(&small, []byte("m"), bytes.Repeat([]byte{1}, 100), 0); err != nil {
		f.Fatal(err)
	}
	if err := WriteFrameVec(&big, []byte("m"), bytes.Repeat([]byte{2}, vecCoalesceMax+100), -1); err != nil {
		f.Fatal(err)
	}
	f.Add(noBulk.Bytes())
	f.Add(small.Bytes())
	f.Add(big.Bytes())                       // vectored-path frame
	f.Add(big.Bytes()[:frameHeaderLenV2+1])  // truncated after the header
	f.Add(big.Bytes()[:5])                   // mid-header truncation
	f.Add([]byte{})                          // empty stream
	f.Add([]byte{FrameMagic, 9, 0, 0})       // future version
	f.Add([]byte{0x00, byte(ProtoV2), 0, 0}) // bad magic
	noFlag := append([]byte(nil), small.Bytes()...)
	noFlag[2], noFlag[3] = 0, 0 // strip flagBulk while bulkLen stays set
	f.Add(noFlag)
	hostile := make([]byte, frameHeaderLenV2)
	hostile[0], hostile[1] = FrameMagic, byte(ProtoV2)
	binary.LittleEndian.PutUint32(hostile[4:8], 0xFFFF_FFFF)
	binary.LittleEndian.PutUint32(hostile[8:12], 0xFFFF_FFFF)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, in []byte) {
		payload, bulk, _, err := ReadFrameInto(bytes.NewReader(in), nil, nil)
		if err != nil {
			if !IsConnFault(err) {
				t.Fatalf("ReadFrameInto error is not a typed conn fault: %v", err)
			}
			return
		}
		if len(in) < frameHeaderLenV2 {
			t.Fatalf("ReadFrameInto succeeded on a %d-byte stream", len(in))
		}
		metaLen := binary.LittleEndian.Uint32(in[4:8])
		bulkLen := binary.LittleEndian.Uint32(in[8:12])
		if uint32(len(payload)) != metaLen || uint32(len(bulk)) != bulkLen {
			t.Fatalf("lengths %d/%d disagree with header %d/%d", len(payload), len(bulk), metaLen, bulkLen)
		}
		body := in[frameHeaderLenV2:]
		if !bytes.Equal(payload, body[:len(payload)]) {
			t.Fatal("metadata does not match wire bytes")
		}
		if !bytes.Equal(bulk, body[len(payload):len(payload)+len(bulk)]) {
			t.Fatal("bulk does not match wire bytes")
		}
	})
}

// FuzzFrameRoundtripV2 checks WriteFrameVec|ReadFrameInto is the identity on
// metadata, bulk and data, across the coalesced and vectored write paths and
// both scatter destinations (pre-sized and absent).
func FuzzFrameRoundtripV2(f *testing.F) {
	f.Add([]byte("meta"), []byte("bulk"), int64(7), true)
	f.Add([]byte{}, []byte{}, int64(0), false)
	f.Add([]byte("m"), bytes.Repeat([]byte{0x5A}, vecCoalesceMax+17), int64(-1), true) // vectored path
	f.Fuzz(func(t *testing.T, meta, bulk []byte, data int64, presize bool) {
		var buf bytes.Buffer
		if err := WriteFrameVec(&buf, meta, bulk, data); err != nil {
			t.Fatal(err)
		}
		var dst []byte
		if presize {
			dst = make([]byte, len(bulk))
		}
		gotMeta, gotBulk, gotData, err := ReadFrameInto(&buf, nil, dst)
		if err != nil {
			t.Fatal(err)
		}
		if gotData != data || !bytes.Equal(gotMeta, meta) || !bytes.Equal(gotBulk, bulk) {
			t.Fatalf("roundtrip mismatch: %d meta/%d bulk/%d data, want %d/%d/%d",
				len(gotMeta), len(gotBulk), gotData, len(meta), len(bulk), data)
		}
	})
}

// FuzzHello drives the negotiation codec: HandleHello must never panic or
// produce a reply its own parser rejects, and parseHelloReply must never
// panic or return an out-of-range version.
func FuzzHello(f *testing.F) {
	f.Add(helloRequest(MaxProtoVersion), MaxProtoVersion)
	f.Add(helloRequest(1), 1)
	f.Add(helloRequest(200), MaxProtoVersion)
	f.Add([]byte{}, MaxProtoVersion)
	f.Add([]byte{0xFC, 0xFF, 0x00, 0x02}, MaxProtoVersion) // hello ID, bad magic
	f.Fuzz(func(t *testing.T, payload []byte, serverMax int) {
		reply, version, ok := HandleHello(payload, serverMax)
		if ok {
			if version < ProtoV1 || version > serverMax {
				t.Fatalf("negotiated version %d outside [1, %d]", version, serverMax)
			}
			v, pok := parseHelloReply(reply)
			if version <= MaxProtoVersion && (!pok || v != version) {
				t.Fatalf("reply round trip = %d %v, want %d", v, pok, version)
			}
		}
		// The same bytes through the reply parser: must not panic, and an
		// accepted reply always carries an in-range version.
		if v, pok := parseHelloReply(payload); pok && (v < ProtoV1 || v > MaxProtoVersion) {
			t.Fatalf("parseHelloReply accepted out-of-range version %d", v)
		}
	})
}

// FuzzFrameRoundtrip checks WriteFrame|ReadFrame is the identity on
// payload and data for arbitrary inputs.
func FuzzFrameRoundtrip(f *testing.F) {
	f.Add([]byte("payload"), int64(7))
	f.Add([]byte{}, int64(0))
	f.Add(bytes.Repeat([]byte{0x5A}, maxPooledFrame+17), int64(-1)) // beyond the pooled size class
	f.Fuzz(func(t *testing.T, payload []byte, data int64) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload, data); err != nil {
			t.Fatal(err)
		}
		got, gotData, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if gotData != data || !bytes.Equal(got, payload) {
			t.Fatalf("roundtrip mismatch: %d bytes/%d data, want %d/%d", len(got), gotData, len(payload), data)
		}
	})
}
