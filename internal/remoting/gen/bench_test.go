package gen_test

import (
	"testing"

	"dgsf/internal/cuda"
	"dgsf/internal/remoting"
	"dgsf/internal/remoting/gen"
	"dgsf/internal/remoting/wire"
	"dgsf/internal/sim"
)

// fixedResp satisfies remoting.Caller with a canned response: it measures the
// generated client's own encode/decode cost with zero transport cost.
type fixedResp struct {
	resp []byte
}

func (f *fixedResp) Roundtrip(p *sim.Proc, req []byte, reqData int64) ([]byte, error) {
	return f.resp, nil
}
func (f *fixedResp) Close() {}

// fixedVecResp is fixedResp on a negotiated v2 connection: it additionally
// satisfies remoting.VecCaller, modeling the transport's ownership handoff
// (request bulk borrowed, reply bulk scatter-copied into respDst) with zero
// transport cost, so the benchmarks isolate the stub's own overhead.
type fixedVecResp struct {
	resp []byte
	bulk []byte
}

func (f *fixedVecResp) Roundtrip(p *sim.Proc, req []byte, reqData int64) ([]byte, error) {
	return f.resp, nil
}
func (f *fixedVecResp) Close()            {}
func (f *fixedVecResp) ProtoVersion() int { return remoting.ProtoV2 }
func (f *fixedVecResp) RoundtripVec(p *sim.Proc, req, reqBulk, respDst []byte) ([]byte, []byte, error) {
	var bulk []byte
	if f.bulk != nil {
		if cap(respDst) >= len(f.bulk) {
			bulk = respDst[:len(f.bulk)]
		} else {
			bulk = make([]byte, len(f.bulk))
		}
		copy(bulk, f.bulk)
	}
	return f.resp, bulk, nil
}

func okResp(body func(e *wire.Encoder)) []byte {
	var e wire.Encoder
	e.I32(0)
	if body != nil {
		body(&e)
	}
	out := make([]byte, len(e.Bytes()))
	copy(out, e.Bytes())
	return out
}

// BenchmarkClientMemset measures a full client call with an empty response:
// the steady-state cost of the guest-side stub.
func BenchmarkClientMemset(b *testing.B) {
	c := &gen.Client{T: &fixedResp{resp: okResp(nil)}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Memset(nil, 0x10_0000, 0, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClientMalloc measures a client call that decodes a response body.
func BenchmarkClientMalloc(b *testing.B) {
	c := &gen.Client{T: &fixedResp{resp: okResp(func(e *wire.Encoder) {
		(&gen.MallocResp{Ptr: cuda.DevPtr(0x10_0000)}).Encode(e)
	})}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptr, err := c.Malloc(nil, 1<<20)
		if err != nil || ptr == 0 {
			b.Fatal("bad call")
		}
	}
}

// BenchmarkClientMemExport measures the data-plane export stub: a string tag
// on the request, two scalars back.
func BenchmarkClientMemExport(b *testing.B) {
	c := &gen.Client{T: &fixedResp{resp: okResp(func(e *wire.Encoder) {
		(&gen.MemExportResp{Export: 7, Size: 48 << 20}).Encode(e)
	})}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		export, size, err := c.MemExport(nil, 0x10_0000, "detect-out")
		if err != nil || export == 0 || size == 0 {
			b.Fatal("bad call")
		}
	}
}

// BenchmarkClientMemImport measures the data-plane import stub, the per-chain
// hot call on the consumer side.
func BenchmarkClientMemImport(b *testing.B) {
	c := &gen.Client{T: &fixedResp{resp: okResp(func(e *wire.Encoder) {
		(&gen.MemImportResp{Ptr: cuda.DevPtr(0x10_0000), Size: 48 << 20}).Encode(e)
	})}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptr, size, err := c.MemImport(nil, 7)
		if err != nil || ptr == 0 || size == 0 {
			b.Fatal("bad call")
		}
	}
}

// BenchmarkClientMemWrite_1MiB is the v1 inline path of the host-to-device
// write: the bulk is copied into the encoded payload. The baseline the
// vectored lane is gated against.
func BenchmarkClientMemWrite_1MiB(b *testing.B) {
	c := &gen.Client{T: &fixedResp{resp: okResp(nil)}}
	data := make([]byte, 1<<20)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.MemWrite(nil, 0x10_0000, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClientMemWriteVec_1MiB is the protocol-v2 vectored path: the bulk
// is borrowed by the transport, never copied by the stub.
func BenchmarkClientMemWriteVec_1MiB(b *testing.B) {
	c := &gen.Client{T: &fixedVecResp{resp: okResp(nil)}}
	data := make([]byte, 1<<20)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.MemWrite(nil, 0x10_0000, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClientMemRead_1MiB is the v1 inline path of the device-to-host
// read: the bulk rides inline and is decoded (copied) out of the reply.
func BenchmarkClientMemRead_1MiB(b *testing.B) {
	payload := make([]byte, 1<<20)
	c := &gen.Client{T: &fixedResp{resp: okResp(func(e *wire.Encoder) {
		(&gen.MemReadResp{Data: payload}).Encode(e)
	})}}
	dst := make([]byte, len(payload))
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := c.MemReadInto(nil, 0x10_0000, int64(len(payload)), dst)
		if err != nil || len(data) != len(payload) {
			b.Fatal("bad call")
		}
	}
}

// BenchmarkClientMemReadVec_1MiB is the protocol-v2 scatter read into a
// pre-sized caller buffer: one copy off the wire, no allocation.
func BenchmarkClientMemReadVec_1MiB(b *testing.B) {
	payload := make([]byte, 1<<20)
	c := &gen.Client{T: &fixedVecResp{resp: okResp(nil), bulk: payload}}
	dst := make([]byte, len(payload))
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := c.MemReadInto(nil, 0x10_0000, int64(len(payload)), dst)
		if err != nil || len(data) != len(payload) {
			b.Fatal("bad call")
		}
	}
}

// BenchmarkClientModelBroadcast measures the fan-out stub: argument-free
// request, three scalars back.
func BenchmarkClientModelBroadcast(b *testing.B) {
	c := &gen.Client{T: &fixedResp{resp: okResp(func(e *wire.Encoder) {
		(&gen.ModelBroadcastResp{Ptr: cuda.DevPtr(0x10_0000), Size: 104 << 20, Src: 2}).Encode(e)
	})}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptr, size, _, err := c.ModelBroadcast(nil)
		if err != nil || ptr == 0 || size == 0 {
			b.Fatal("bad call")
		}
	}
}
