package gen_test

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"dgsf/internal/cuda"
	"dgsf/internal/cudalibs"
	"dgsf/internal/gpu"
	"dgsf/internal/native"
	"dgsf/internal/remoting"
	"dgsf/internal/remoting/gen"
	"dgsf/internal/remoting/wire"
	"dgsf/internal/sim"
)

func TestCallTableComplete(t *testing.T) {
	seen := map[string]bool{}
	for id := uint16(1); id <= gen.NumCalls; id++ {
		name := gen.CallName(id)
		if name == "?" {
			t.Errorf("call %d has no name", id)
		}
		if seen[name] {
			t.Errorf("duplicate call name %q", name)
		}
		seen[name] = true
	}
	if gen.CallName(remoting.CallBatch) != "Batch" {
		t.Error("batch container not named")
	}
	if gen.CallName(9999) != "?" {
		t.Error("unknown id did not map to ?")
	}
	// Spot-check classes against the spec's intent.
	if gen.CallClass(gen.CallMalloc) != gen.ClassRemote {
		t.Error("Malloc must be remote")
	}
	if gen.CallClass(gen.CallLaunchKernel) != gen.ClassBatchable {
		t.Error("LaunchKernel must be batchable")
	}
	if gen.CallClass(gen.CallPushCallConfiguration) != gen.ClassLocal {
		t.Error("PushCallConfiguration must be local")
	}
	if gen.CallClass(gen.CallDnnCreateTensorDescriptor) != gen.ClassLocal {
		t.Error("descriptor creation must be local-class")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	// Representative request/response messages across all field kinds.
	lp := cuda.LaunchParams{Fn: 7, Grid: [3]int{1, 2, 3}, Block: [3]int{4, 5, 6}, Stream: 9, Duration: time.Millisecond, Mutates: []cuda.DevPtr{10, 11}}
	cases := []struct {
		enc func(*wire.Encoder)
		dec func(*wire.Decoder) bool
	}{
		{
			func(e *wire.Encoder) { (&gen.HelloReq{FnID: "fn", MemLimit: 42}).Encode(e) },
			func(d *wire.Decoder) bool {
				var m gen.HelloReq
				m.Decode(d)
				return m.FnID == "fn" && m.MemLimit == 42
			},
		},
		{
			func(e *wire.Encoder) { (&gen.RegisterKernelsResp{Ptrs: []cuda.FnPtr{1, 2, 3}}).Encode(e) },
			func(d *wire.Decoder) bool {
				var m gen.RegisterKernelsResp
				m.Decode(d)
				return len(m.Ptrs) == 3 && m.Ptrs[2] == 3
			},
		},
		{
			func(e *wire.Encoder) { (&gen.LaunchKernelReq{LP: lp}).Encode(e) },
			func(d *wire.Decoder) bool {
				var m gen.LaunchKernelReq
				m.Decode(d)
				return m.LP.Fn == 7 && m.LP.Grid == lp.Grid && len(m.LP.Mutates) == 2
			},
		},
		{
			func(e *wire.Encoder) {
				(&gen.MemcpyH2DReq{Dst: 5, Src: gpu.HostBuffer{FP: 8, Size: 9}, Size: 9}).Encode(e)
			},
			func(d *wire.Decoder) bool {
				var m gen.MemcpyH2DReq
				m.Decode(d)
				return m.Dst == 5 && m.Src.FP == 8 && m.Size == 9
			},
		},
		{
			func(e *wire.Encoder) {
				(&gen.GetDevicePropertiesResp{Prop: cuda.DeviceProp{Name: "V100", TotalMem: 16 << 30, SMs: 80}}).Encode(e)
			},
			func(d *wire.Decoder) bool {
				var m gen.GetDevicePropertiesResp
				m.Decode(d)
				return m.Prop.Name == "V100" && m.Prop.SMs == 80
			},
		},
		{
			func(e *wire.Encoder) {
				(&gen.DnnForwardReq{H: 3, Op: "conv", Dur: time.Second, Bufs: []cuda.DevPtr{1}, Descs: []uint64{2}}).Encode(e)
			},
			func(d *wire.Decoder) bool {
				var m gen.DnnForwardReq
				m.Decode(d)
				return m.H == 3 && m.Op == "conv" && m.Dur == time.Second && len(m.Bufs) == 1 && len(m.Descs) == 1
			},
		},
		{
			func(e *wire.Encoder) {
				(&gen.PointerGetAttributesResp{A: cuda.PtrAttributes{Device: 0, Size: 64, IsDevice: true}}).Encode(e)
			},
			func(d *wire.Decoder) bool {
				var m gen.PointerGetAttributesResp
				m.Decode(d)
				return m.A.IsDevice && m.A.Size == 64
			},
		},
	}
	for i, c := range cases {
		var e wire.Encoder
		c.enc(&e)
		d := wire.NewDecoder(e.Bytes())
		if !c.dec(d) {
			t.Errorf("case %d did not round-trip", i)
		}
		if d.Err() != nil || d.Remaining() != 0 {
			t.Errorf("case %d: err=%v remaining=%d", i, d.Err(), d.Remaining())
		}
	}
}

// loopback satisfies remoting.Caller by dispatching synchronously into a
// backend — the generated Client and gen.Dispatch exercising each other with no
// transport in between.
type loopback struct {
	b gen.API
	n int
}

func (l *loopback) Roundtrip(p *sim.Proc, req []byte, reqData int64) ([]byte, error) {
	l.n++
	resp, _ := gen.Dispatch(p, l.b, req)
	return resp, nil
}
func (l *loopback) Close() {}

func TestClientDispatchLoopback(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		cfg := gpu.V100Config(0)
		cfg.CopyLat, cfg.KernelLat = 0, 0
		dev := gpu.New(e, cfg)
		rt := cuda.NewRuntime(e, []*gpu.Device{dev}, cuda.Costs{})
		lb := &loopback{b: native.New(rt, cudalibs.Costs{})}
		c := &gen.Client{T: lb}

		if n, err := c.GetDeviceCount(p); err != nil || n != 1 {
			t.Fatalf("GetDeviceCount = (%d, %v)", n, err)
		}
		ptr, err := c.Malloc(p, 1<<20)
		if err != nil || ptr == 0 {
			t.Fatalf("Malloc = (%v, %v)", ptr, err)
		}
		if err := c.Memset(p, ptr, 1, 1<<20); err != nil {
			t.Fatal(err)
		}
		fns, err := c.RegisterKernels(p, []string{"k"})
		if err != nil || len(fns) != 1 {
			t.Fatalf("RegisterKernels = (%v, %v)", fns, err)
		}
		if err := c.LaunchKernel(p, cuda.LaunchParams{Fn: fns[0], Duration: time.Millisecond, Mutates: []cuda.DevPtr{ptr}}); err != nil {
			t.Fatal(err)
		}
		if err := c.StreamSynchronize(p, 0); err != nil {
			t.Fatal(err)
		}
		buf, err := c.MemcpyD2H(p, ptr, 1<<20)
		if err != nil || buf.FP == 0 {
			t.Fatalf("MemcpyD2H = (%+v, %v)", buf, err)
		}
		d, err := c.DnnCreateTensorDescriptor(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.DnnSetTensorDescriptor(p, d); err != nil {
			t.Fatal(err)
		}
		if err := c.DnnDestroyTensorDescriptor(p, d); err != nil {
			t.Fatal(err)
		}
		// Errors propagate as typed codes across the encode/decode boundary.
		if err := c.Free(p, cuda.DevPtr(0xBAD)); !errors.Is(err, cuda.ErrInvalidValue) {
			t.Fatalf("Free(bad) = %v, want ErrInvalidValue", err)
		}
		if err := c.Free(p, ptr); err != nil {
			t.Fatal(err)
		}
		if lb.n == 0 {
			t.Fatal("loopback never called")
		}
	})
}

// Property: gen.Dispatch must never panic, whatever bytes arrive — corrupted or
// hostile payloads yield error responses.
func TestDispatchGarbageNeverPanics(t *testing.T) {
	f := func(payloads [][]byte) bool {
		e := sim.NewEngine(1)
		ok := true
		e.Run("root", func(p *sim.Proc) {
			cfg := gpu.V100Config(0)
			cfg.CopyLat, cfg.KernelLat = 0, 0
			dev := gpu.New(e, cfg)
			rt := cuda.NewRuntime(e, []*gpu.Device{dev}, cuda.Costs{})
			backend := native.New(rt, cudalibs.Costs{})
			for _, payload := range payloads {
				if len(payload) > 4096 {
					payload = payload[:4096]
				}
				resp, _ := gen.Dispatch(p, backend, payload)
				if len(resp) < 4 {
					ok = false // every response carries at least a status
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: for every call ID, dispatching an empty request body either
// succeeds or fails cleanly with a status code — never a panic or an
// oversized response.
func TestDispatchAllCallsEmptyBody(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		cfg := gpu.V100Config(0)
		cfg.CopyLat, cfg.KernelLat = 0, 0
		dev := gpu.New(e, cfg)
		rt := cuda.NewRuntime(e, []*gpu.Device{dev}, cuda.Costs{})
		backend := native.New(rt, cudalibs.Costs{})
		for id := uint16(1); id <= gen.NumCalls; id++ {
			var enc wire.Encoder
			enc.U16(id)
			resp, _ := gen.Dispatch(p, backend, enc.Bytes())
			if len(resp) < 4 {
				t.Errorf("call %s: short response", gen.CallName(id))
			}
		}
	})
}
