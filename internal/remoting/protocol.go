package remoting

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"dgsf/internal/metrics"
)

// Wire protocol versions. Version 1 is the original framing (length + data
// header, payload coalesced); version 2 adds a magic/version byte to the
// header and a separately-framed bulk region written as one vectored writev,
// so large payloads travel with zero user-space copies.
//
// A connection starts at v1. A v2-capable dialer sends one hello round trip
// (a valid v1 frame carrying CallProtoHello) before anything else; a
// v2-capable peer answers with the highest mutually supported version and
// both sides switch, while a v1 peer rejects the unknown call ID and the
// dialer falls back to v1 — which is what lets a mixed-version fleet roll
// upgrades without a flag day.
const (
	ProtoV1 = 1
	ProtoV2 = 2

	// MaxProtoVersion is the highest protocol version this build speaks.
	MaxProtoVersion = ProtoV2
)

// FrameMagic is the first byte of every v2 frame header. v1 frames start
// with a little-endian payload length bounded by maxFrameLen (64 MiB), whose
// fourth byte is always 0x00 — so 0xD6 in byte 0 alone does not disambiguate,
// but the version byte that follows does, and the magic gives corruption a
// high chance of being caught at the frame boundary.
const FrameMagic byte = 0xD6

// CallProtoHello is the reserved call ID of the version-negotiation hello.
// It rides a normal v1 frame as the first round trip of a v2-capable
// connection; v1 servers answer it like any unknown call (an error status),
// which is the downgrade signal.
const CallProtoHello uint16 = 0xFFFC

// frameHeaderLenV2 is the fixed v2 frame header size:
//
//	byte    magic (FrameMagic)
//	byte    version (ProtoV2)
//	uint16  flags (flagBulk)
//	uint32  metadata length
//	uint32  bulk length
//	int64   logical data bytes accompanying the frame
const frameHeaderLenV2 = 20

// flagBulk marks a frame carrying a bulk region after the metadata.
const flagBulk uint16 = 1 << 0

// helloLen / helloReplyLen are the fixed hello message sizes.
const (
	helloLen      = 4 // u16 CallProtoHello | magic | max version
	helloReplyLen = 6 // i32 status | magic | negotiated version
)

// helloRequest encodes the negotiation hello: a payload that, framed as v1,
// is the first thing a v2-capable dialer sends.
func helloRequest(maxVer int) []byte {
	b := make([]byte, helloLen)
	binary.LittleEndian.PutUint16(b[0:2], CallProtoHello)
	b[2] = FrameMagic
	b[3] = byte(maxVer)
	return b
}

// HandleHello answers a negotiation hello on behalf of a server that speaks
// up to serverMax. It returns ok=false when payload is not a well-formed
// hello or the server is v1-only — the caller then treats the payload as an
// ordinary (unknown) call, which yields the error status a v2 dialer reads
// as "fall back to v1".
func HandleHello(payload []byte, serverMax int) (reply []byte, version int, ok bool) {
	if serverMax < ProtoV2 {
		return nil, 0, false
	}
	if len(payload) != helloLen ||
		binary.LittleEndian.Uint16(payload[0:2]) != CallProtoHello ||
		payload[2] != FrameMagic {
		return nil, 0, false
	}
	version = int(payload[3])
	if version > serverMax {
		version = serverMax
	}
	if version < ProtoV1 {
		return nil, 0, false
	}
	reply = make([]byte, helloReplyLen)
	// status 0 (little-endian int32) then magic + version.
	reply[4] = FrameMagic
	reply[5] = byte(version)
	return reply, version, true
}

// parseHelloReply decodes the peer's answer to a hello. ok=false means the
// peer either refused the call (a v1 server's error status) or answered
// something unintelligible; in both cases the safe move is v1.
func parseHelloReply(resp []byte) (version int, ok bool) {
	if len(resp) < 4 || binary.LittleEndian.Uint32(resp[0:4]) != 0 {
		return 0, false
	}
	if len(resp) != helloReplyLen || resp[4] != FrameMagic {
		return 0, false
	}
	version = int(resp[5])
	if version < ProtoV1 || version > MaxProtoVersion {
		return 0, false
	}
	return version, true
}

// --- v2 framing ---

// appendFrameV2 builds a v2 frame header + metadata on top of buf. The bulk
// region is not appended — it travels as the second vector of a writev (or is
// absent).
func appendFrameV2(buf, payload []byte, bulkLen int, data int64) []byte {
	var flags uint16
	if bulkLen > 0 {
		flags |= flagBulk
	}
	buf = append(buf, FrameMagic, byte(ProtoV2))
	buf = binary.LittleEndian.AppendUint16(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(bulkLen))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(data))
	return append(buf, payload...)
}

// vecCoalesceMax is the bulk size below which WriteFrameVec coalesces the
// bulk into the (pooled) header buffer instead of paying a second vector:
// for small payloads one contiguous write beats scatter bookkeeping.
const vecCoalesceMax = 4 << 10

// frameVec is the pooled scratch for a two-vector writev. bufs keeps the
// full-capacity slice header so the backing array survives WriteTo (which
// consumes its argument by re-slicing); work is the consumable copy. Both
// live in one heap object so taking their addresses allocates nothing.
type frameVec struct {
	bufs net.Buffers
	work net.Buffers
}

var vecPool = sync.Pool{New: func() any { return &frameVec{bufs: make(net.Buffers, 0, 2)} }}

// writeVec writes hdr then bulk as a single vectored write (writev on TCP
// connections; sequential writes elsewhere) without copying either.
func writeVec(w io.Writer, hdr, bulk []byte) error {
	v := vecPool.Get().(*frameVec)
	v.bufs = append(v.bufs[:0], hdr, bulk)
	v.work = v.bufs
	_, err := v.work.WriteTo(w)
	v.bufs[0], v.bufs[1] = nil, nil
	v.work = nil
	vecPool.Put(v)
	return err
}

// WriteFrameVec writes one v2 frame: header + metadata coalesced from a
// pooled buffer, bulk borrowed as the second vector of a single writev — no
// copy of the bulk bytes, no allocation proportional to their size. The bulk
// slice is owned by the caller again as soon as WriteFrameVec returns. A nil
// or small bulk degenerates to one coalesced write.
func WriteFrameVec(w io.Writer, payload, bulk []byte, data int64) error {
	n := frameHeaderLenV2 + len(payload)
	coalesce := len(bulk) <= vecCoalesceMax && n+len(bulk) <= maxPooledFrame
	var bp *[]byte
	if coalesce {
		bp = getFrameBuf(n + len(bulk))
	} else {
		bp = getFrameBuf(n)
	}
	buf := appendFrameV2((*bp)[:0], payload, len(bulk), data)
	var err error
	if coalesce {
		buf = append(buf, bulk...)
		_, err = w.Write(buf)
	} else {
		err = writeVec(w, buf, bulk)
	}
	putFrameBuf(bp, buf)
	if err == nil {
		wireTx(ProtoV2, int64(frameHeaderLenV2+len(payload)+len(bulk)))
	}
	return err
}

// ReadFrameInto reads one v2 frame. The metadata payload is read into buf
// when it fits (the ReadFrameReuse contract: the result may alias buf, the
// caller owns both); the bulk region is scatter-read directly into dst when
// it fits, so a caller that pre-sizes dst receives large payloads with a
// single copy off the socket and zero allocations. When dst is too small a
// fresh buffer is grown progressively, exactly like an oversized v1 payload.
// bulk is nil when the frame carries no bulk region.
func ReadFrameInto(r io.Reader, buf, dst []byte) (payload, bulk []byte, data int64, err error) {
	bp := framePool.Get().(*[]byte)
	defer framePool.Put(bp)
	hdr := (*bp)[:frameHeaderLenV2]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, nil, 0, wrapReadErr(err)
	}
	if hdr[0] != FrameMagic {
		return nil, nil, 0, fmt.Errorf("%w: bad frame magic 0x%02x", ErrFrameCorrupt, hdr[0])
	}
	if hdr[1] != byte(ProtoV2) {
		return nil, nil, 0, fmt.Errorf("%w: unsupported frame version %d", ErrFrameCorrupt, hdr[1])
	}
	flags := binary.LittleEndian.Uint16(hdr[2:4])
	metaLen := binary.LittleEndian.Uint32(hdr[4:8])
	bulkLen := binary.LittleEndian.Uint32(hdr[8:12])
	data = int64(binary.LittleEndian.Uint64(hdr[12:20]))
	if metaLen > maxFrameLen || bulkLen > maxFrameLen || metaLen+bulkLen > maxFrameLen {
		return nil, nil, 0, fmt.Errorf("%w: frame of %d+%d bytes exceeds %d-byte limit", ErrFrameCorrupt, metaLen, bulkLen, maxFrameLen)
	}
	if bulkLen > 0 && flags&flagBulk == 0 {
		return nil, nil, 0, fmt.Errorf("%w: bulk bytes without bulk flag", ErrFrameCorrupt)
	}
	payload, err = readPayload(r, buf, int(metaLen))
	if err != nil {
		return nil, nil, 0, err
	}
	if bulkLen > 0 {
		if int(bulkLen) <= cap(dst) {
			bulk = dst[:bulkLen]
			if _, err := io.ReadFull(r, bulk); err != nil {
				return nil, nil, 0, wrapReadErr(err)
			}
		} else {
			bulk, err = readPayload(r, nil, int(bulkLen))
			if err != nil {
				return nil, nil, 0, err
			}
		}
	}
	wireRx(ProtoV2, int64(frameHeaderLenV2)+int64(metaLen)+int64(bulkLen))
	return payload, bulk, data, nil
}

// --- size-classed frame pools ---

// largeClassSizes are the capacity classes for frame buffers above
// maxPooledFrame: without them every >64 KiB v1 frame allocated afresh (the
// pool-miss bug this fixes). Each class carries headroom for the frame
// header so a power-of-two payload does not spill into the next class.
var largeClassSizes = [...]int{
	(256 << 10) + frameHeaderLenV2 + 64,
	(1 << 20) + frameHeaderLenV2 + 64,
	(4 << 20) + frameHeaderLenV2 + 64,
	(16 << 20) + frameHeaderLenV2 + 64,
}

var largeFramePools [len(largeClassSizes)]sync.Pool

// getFrameBuf returns a pooled buffer with at least n bytes of capacity:
// the small frame pool up to maxPooledFrame, a size-classed large pool up to
// 16 MiB, a fresh allocation beyond (bounded by maxFrameLen).
func getFrameBuf(n int) *[]byte {
	if n <= maxPooledFrame {
		return framePool.Get().(*[]byte)
	}
	for i, size := range largeClassSizes {
		if n <= size {
			if v := largeFramePools[i].Get(); v != nil {
				return v.(*[]byte)
			}
			b := make([]byte, 0, size)
			return &b
		}
	}
	b := make([]byte, 0, n)
	return &b
}

// putFrameBuf returns a frame buffer to the pool matching its capacity. buf
// is the (possibly grown) slice built on *bp; the grown backing array is
// what gets pooled.
func putFrameBuf(bp *[]byte, buf []byte) {
	c := cap(buf)
	if c <= maxPooledFrame {
		*bp = buf[:0]
		framePool.Put(bp)
		return
	}
	for i, size := range largeClassSizes {
		if c <= size {
			*bp = buf[:0]
			largeFramePools[i].Put(bp)
			return
		}
	}
	// Beyond the largest class: drop it, a 64 MiB buffer must not be pinned.
}

// --- wire statistics ---

// WireStats is a snapshot of protocol-level counters, aggregated over every
// transport in the process (TCP and simulated alike). Counters are atomics
// because the TCP transport runs on real goroutines.
type WireStats struct {
	BytesTx  int64 // wire bytes written (headers + metadata + bulk + modeled payload)
	BytesRx  int64 // wire bytes read
	FramesV1 int64 // frames sent under protocol v1
	FramesV2 int64 // frames sent under protocol v2
	HellosV2 int64 // negotiations that landed on v2
	HellosV1 int64 // negotiations that fell back to v1 (v1 peer)
}

// Sub returns the element-wise difference s - o, for delta reporting across
// an experiment run.
func (s WireStats) Sub(o WireStats) WireStats {
	return WireStats{
		BytesTx:  s.BytesTx - o.BytesTx,
		BytesRx:  s.BytesRx - o.BytesRx,
		FramesV1: s.FramesV1 - o.FramesV1,
		FramesV2: s.FramesV2 - o.FramesV2,
		HellosV2: s.HellosV2 - o.HellosV2,
		HellosV1: s.HellosV1 - o.HellosV1,
	}
}

var wireStats struct {
	bytesTx, bytesRx   atomic.Int64
	framesV1, framesV2 atomic.Int64
	hellosV2, hellosV1 atomic.Int64
}

func wireTx(ver int, n int64) {
	wireStats.bytesTx.Add(n)
	if ver >= ProtoV2 {
		wireStats.framesV2.Add(1)
	} else {
		wireStats.framesV1.Add(1)
	}
}

func wireRx(ver int, n int64) {
	wireStats.bytesRx.Add(n)
}

func wireHello(ver int) {
	if ver >= ProtoV2 {
		wireStats.hellosV2.Add(1)
	} else {
		wireStats.hellosV1.Add(1)
	}
}

// SnapshotWireStats returns the process-wide wire counters. Experiments
// snapshot at start and Sub at the end to isolate their own traffic.
func SnapshotWireStats() WireStats {
	return WireStats{
		BytesTx:  wireStats.bytesTx.Load(),
		BytesRx:  wireStats.bytesRx.Load(),
		FramesV1: wireStats.framesV1.Load(),
		FramesV2: wireStats.framesV2.Load(),
		HellosV2: wireStats.hellosV2.Load(),
		HellosV1: wireStats.hellosV1.Load(),
	}
}

// PublishWireStats sets the remoting_* counters in reg from a stats delta,
// so experiment summaries and bench reports carry the wire traffic next to
// their domain counters.
func PublishWireStats(reg *metrics.Registry, w WireStats) {
	set := func(name string, v int64) {
		if v < 0 {
			v = 0
		}
		c := reg.Counter(name)
		if d := v - c.Value(); d > 0 {
			c.Add(d)
		}
	}
	set("remoting_bytes_tx", w.BytesTx)
	set("remoting_bytes_rx", w.BytesRx)
	set("remoting_frames_v1", w.FramesV1)
	set("remoting_frames_v2", w.FramesV2)
	set("remoting_hellos_v2", w.HellosV2)
	set("remoting_hellos_v1", w.HellosV1)
}
