package metrics

import (
	"fmt"
	"strings"
)

// Counter is a monotonically increasing count. Like all sim-side state it is
// mutated only from simulated processes (serialized by the engine), so it
// needs no internal locking.
type Counter struct {
	name string
	n    int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta (negative deltas panic: counters only go up).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative counter delta")
	}
	c.n += delta
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is an instantaneous value that can move in both directions.
type Gauge struct {
	name string
	v    int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v = v }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v += delta }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v }

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// Registry holds named counters and gauges and renders them in registration
// order, so its output is deterministic under a fixed seed by construction
// (no map iteration).
type Registry struct {
	counters []*Counter
	gauges   []*Gauge
	byName   map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]any)}
}

// Counter returns the counter registered under name, creating it on first
// use. Registering a name already held by a gauge panics.
func (r *Registry) Counter(name string) *Counter {
	if v, ok := r.byName[name]; ok {
		c, ok := v.(*Counter)
		if !ok {
			panic(fmt.Sprintf("metrics: %q registered as a gauge", name))
		}
		return c
	}
	c := &Counter{name: name}
	r.byName[name] = c
	r.counters = append(r.counters, c)
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Registering a name already held by a counter panics.
func (r *Registry) Gauge(name string) *Gauge {
	if v, ok := r.byName[name]; ok {
		g, ok := v.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("metrics: %q registered as a counter", name))
		}
		return g
	}
	g := &Gauge{name: name}
	r.byName[name] = g
	r.gauges = append(r.gauges, g)
	return g
}

// Get returns the current value of a registered name (0 if absent), so tests
// can assert on metrics without holding handles.
func (r *Registry) Get(name string) int64 {
	switch v := r.byName[name].(type) {
	case *Counter:
		return v.Value()
	case *Gauge:
		return v.Value()
	}
	return 0
}

// String renders every metric, one "name value" line per metric, counters
// first then gauges, each in registration order.
func (r *Registry) String() string {
	var b strings.Builder
	for _, c := range r.counters {
		fmt.Fprintf(&b, "%s %d\n", c.name, c.n)
	}
	for _, g := range r.gauges {
		fmt.Fprintf(&b, "%s %d\n", g.name, g.v)
	}
	return b.String()
}

// Table renders the registry as an aligned two-column table.
func (r *Registry) Table() *Table {
	t := NewTable("metric", "value")
	for _, c := range r.counters {
		t.Row(c.name, c.n)
	}
	for _, g := range r.gauges {
		t.Row(g.name, g.v)
	}
	return t
}
