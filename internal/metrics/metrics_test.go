package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Std() != 0 || s.Sum() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty series not all-zero")
	}
	s.AddAll([]time.Duration{2 * time.Second, 4 * time.Second, 6 * time.Second})
	if s.N() != 3 || s.Sum() != 12*time.Second || s.Mean() != 4*time.Second {
		t.Fatalf("n=%d sum=%v mean=%v", s.N(), s.Sum(), s.Mean())
	}
	if s.Min() != 2*time.Second || s.Max() != 6*time.Second {
		t.Fatalf("min=%v max=%v", s.Min(), s.Max())
	}
	// Population std of {2,4,6}s = sqrt(8/3) s ≈ 1.633s.
	want := time.Duration(math.Sqrt(8.0/3.0) * float64(time.Second))
	if d := s.Std() - want; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("std = %v, want ~%v", s.Std(), want)
	}
	if !strings.Contains(s.Summary(), "n=3") {
		t.Fatalf("summary = %q", s.Summary())
	}
}

func TestPercentiles(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	cases := map[float64]time.Duration{
		0: 1 * time.Millisecond, 50: 50 * time.Millisecond,
		99: 99 * time.Millisecond, 100: 100 * time.Millisecond,
	}
	for p, want := range cases {
		if got := s.Percentile(p); got != want {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var s Series
		for _, v := range raw {
			s.Add(time.Duration(v))
		}
		prev := time.Duration(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := s.Percentile(p)
			if v < prev || v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies within [min, max] and sum = mean*n within rounding.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Series
		for _, v := range raw {
			s.Add(time.Duration(v) * time.Microsecond)
		}
		m := s.Mean()
		if m < s.Min() || m > s.Max() {
			return false
		}
		diff := s.Sum() - m*time.Duration(s.N())
		if diff < 0 {
			diff = -diff
		}
		return diff < time.Duration(s.N())*time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(time.Second)
	for _, d := range []time.Duration{
		100 * time.Millisecond, 900 * time.Millisecond, // bucket 0
		1500 * time.Millisecond, // bucket 1
		3100 * time.Millisecond, // bucket 3
	} {
		h.Add(d)
	}
	if h.N() != 4 || h.Bucket(0) != 2 || h.Bucket(1) != 1 || h.Bucket(2) != 0 || h.Bucket(3) != 1 {
		t.Fatalf("buckets: %d %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(2), h.Bucket(3))
	}
	out := h.Render(20)
	if !strings.Contains(out, "█") || len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Fatalf("render:\n%s", out)
	}
	if NewHistogram(time.Second).Render(10) != "(empty)\n" {
		t.Fatal("empty histogram render")
	}
	h.Add(-time.Second) // negative clamps to bucket 0
	if h.Bucket(0) != 3 {
		t.Fatal("negative value not clamped")
	}
}

func TestHistogramPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHistogram(0)
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "time", "util")
	tb.Row("kmeans", 14*time.Second, 31.8)
	tb.Row("a-much-longer-name", 100*time.Millisecond, 5.0)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[2], "14.0s") {
		t.Fatalf("table:\n%s", out)
	}
	// Columns align: every data row has the same prefix width for col 2.
	idx0 := strings.Index(lines[2], "14.0s")
	idx1 := strings.Index(lines[3], "0.1s")
	if idx0 != idx1 {
		t.Fatalf("columns misaligned:\n%s", out)
	}
	sort.Strings(lines) // touch sort to mirror package usage
}
