// Package metrics provides the statistics helpers the experiment harness
// uses to report results the way the paper does: means with standard
// deviations (§VIII-D reports "the average, standard deviation and the sum"
// of queueing and execution delays), percentiles for latency distributions,
// fixed-bucket histograms, and plain-text table rendering for
// cmd/dgsf-bench.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Series accumulates duration observations.
type Series struct {
	vals []time.Duration
}

// Add appends one observation.
func (s *Series) Add(d time.Duration) { s.vals = append(s.vals, d) }

// AddAll appends many observations.
func (s *Series) AddAll(ds []time.Duration) { s.vals = append(s.vals, ds...) }

// N returns the number of observations.
func (s *Series) N() int { return len(s.vals) }

// Sum returns the total of all observations.
func (s *Series) Sum() time.Duration {
	var t time.Duration
	for _, v := range s.vals {
		t += v
	}
	return t
}

// Mean returns the arithmetic mean (0 for an empty series).
func (s *Series) Mean() time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	return s.Sum() / time.Duration(len(s.vals))
}

// Std returns the population standard deviation.
func (s *Series) Std() time.Duration {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	mean := float64(s.Mean())
	var acc float64
	for _, v := range s.vals {
		d := float64(v) - mean
		acc += d * d
	}
	return time.Duration(math.Sqrt(acc / float64(n)))
}

// Min returns the smallest observation (0 for an empty series).
func (s *Series) Min() time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	min := s.vals[0]
	for _, v := range s.vals[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest observation.
func (s *Series) Max() time.Duration {
	var max time.Duration
	for _, v := range s.vals {
		if v > max {
			max = v
		}
	}
	return max
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on the sorted observations.
func (s *Series) Percentile(p float64) time.Duration {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	sorted := make([]time.Duration, n)
	copy(sorted, s.vals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Summary renders "mean ± std (n=N)" the way the harness prints it.
func (s *Series) Summary() string {
	return fmt.Sprintf("%.1fs ± %.1fs (n=%d)", s.Mean().Seconds(), s.Std().Seconds(), s.N())
}

// Histogram counts observations into fixed-width buckets.
type Histogram struct {
	Width   time.Duration
	buckets map[int]int
	n       int
}

// NewHistogram returns a histogram with the given bucket width.
func NewHistogram(width time.Duration) *Histogram {
	if width <= 0 {
		panic("metrics: non-positive histogram bucket width")
	}
	return &Histogram{Width: width, buckets: make(map[int]int)}
}

// Add counts one observation.
func (h *Histogram) Add(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[int(d/h.Width)]++
	h.n++
}

// N returns the number of observations.
func (h *Histogram) N() int { return h.n }

// Bucket returns the count of the i-th bucket.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// Render draws the histogram as ASCII rows, one per non-empty bucket.
func (h *Histogram) Render(maxWidth int) string {
	if h.n == 0 {
		return "(empty)\n"
	}
	var idxs []int
	peak := 0
	for i, c := range h.buckets {
		idxs = append(idxs, i)
		if c > peak {
			peak = c
		}
	}
	sort.Ints(idxs)
	var b strings.Builder
	for _, i := range idxs {
		c := h.buckets[i]
		bar := c * maxWidth / peak
		if bar == 0 && c > 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%8v-%8v │%s %d\n",
			time.Duration(i)*h.Width, time.Duration(i+1)*h.Width,
			strings.Repeat("█", bar), c)
	}
	return b.String()
}

// Table renders aligned plain-text tables for cmd/dgsf-bench.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(headers ...string) *Table { return &Table{headers: headers} }

// Row appends one row; cells are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			row[i] = fmt.Sprintf("%.1fs", v.Seconds())
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for i, h := range t.headers {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	b.WriteString("\n")
	for i := range t.headers {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
