package metrics

import (
	"strings"
	"testing"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	w := r.Counter("store_writes_total")
	w.Inc()
	w.Add(2)
	if got := w.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if r.Counter("store_writes_total") != w {
		t.Fatal("second Counter call returned a different instance")
	}
	g := r.Gauge("store_objects")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	if r.Get("store_writes_total") != 3 || r.Get("store_objects") != 7 {
		t.Fatalf("Get mismatch: %d %d", r.Get("store_writes_total"), r.Get("store_objects"))
	}
	if r.Get("absent") != 0 {
		t.Fatal("absent metric should read 0")
	}
}

func TestRegistryRenderOrderIsRegistrationOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_first").Inc()
	r.Counter("aa_second").Add(2)
	r.Gauge("mm_gauge").Set(5)
	got := r.String()
	want := "zz_first 1\naa_second 2\nmm_gauge 5\n"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	tab := r.Table().String()
	if !strings.Contains(tab, "zz_first") || !strings.Contains(tab, "mm_gauge") {
		t.Fatalf("Table missing rows:\n%s", tab)
	}
	zi := strings.Index(tab, "zz_first")
	ai := strings.Index(tab, "aa_second")
	if zi > ai {
		t.Fatal("table rows not in registration order")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("Gauge on a counter name should panic")
		}
	}()
	r.Gauge("x")
}

func TestCounterNegativePanics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add should panic")
		}
	}()
	c.Add(-1)
}
