package gpuserver

import (
	"fmt"
	"sort"
	"time"

	"dgsf/internal/modelcache"
	"dgsf/internal/sim"
	"dgsf/internal/store"
)

// Agent is the GPU server's fleet-facing half: it mirrors the machine's
// state into the cluster store and applies cluster decisions back onto the
// machine, so the fleet backend and the reclaim controller never touch the
// monitor's internals directly — all cross-component state flows through
// watched, versioned objects.
//
// Outbound, each sync tick publishes the GPUServer status (health, capacity,
// occupancy, staged bytes, heartbeat time), the per-API-server readiness,
// and a StagedModel object per host-tier cache entry. Inbound, the agent
// watches StagedModel deletions — the reclaim controller's eviction verdicts
// — and evicts the corresponding host-tier entries.
type Agent struct {
	gs   *GPUServer
	st   store.Interface
	name string
	cfg  AgentConfig

	watch   *store.Watch
	stopped bool
}

// AgentConfig parameterizes an Agent.
type AgentConfig struct {
	// SyncPeriod is the status-publication interval; 0 means 100ms.
	SyncPeriod time.Duration
	// StageBudget is the staged-bytes bound the reclaim controller enforces
	// for this server; 0 adopts the host tier's own LRU budget (making the
	// controller a no-op until the deployment sets a tighter policy bound).
	StageBudget int64
}

// NewAgent binds a GPU server to the cluster store under the given name.
func NewAgent(gs *GPUServer, st store.Interface, name string, cfg AgentConfig) *Agent {
	if cfg.SyncPeriod <= 0 {
		cfg.SyncPeriod = 100 * time.Millisecond
	}
	return &Agent{gs: gs, st: st, name: name, cfg: cfg}
}

// Stop ends the agent's sync loop at the next tick.
func (a *Agent) Stop() { a.stopped = true }

// Run registers the machine's objects and then syncs until stopped or the
// store handle dies. Run it as a daemon after GPUServer.Start.
func (a *Agent) Run(p *sim.Proc) {
	if err := a.register(p); err != nil {
		return
	}
	// Watch staged-model evictions from the RV the registration observed.
	_, rv, err := a.st.List(p, store.KindStagedModel)
	if err != nil {
		return
	}
	w, err := a.st.Watch(p, store.KindStagedModel, rv)
	if err != nil {
		return
	}
	a.watch = w
	defer w.Stop()
	for !a.stopped {
		a.applyEvictions()
		if err := a.publishStatus(p); err != nil {
			return
		}
		if err := a.syncStaged(p); err != nil {
			return
		}
		p.Sleep(a.cfg.SyncPeriod)
	}
}

// register creates (or adopts, after an agent restart) the GPUServer object
// and one APIServer object per hosted server.
func (a *Agent) register(p *sim.Proc) error {
	obj := &store.GPUServer{}
	obj.ObjectMeta.Name = a.name
	obj.Spec.GPUs = a.gs.cfg.GPUs
	obj.Spec.ServersPerGPU = a.gs.cfg.ServersPerGPU
	if len(a.gs.devs) > 0 {
		obj.Spec.MemBytesPerGPU = a.gs.devs[0].Cfg.MemBytes
	}
	obj.Spec.StageBudget = a.stageBudget()
	if _, err := a.st.Create(p, obj); err != nil && !store.IsExists(err) {
		return err
	}
	for _, srv := range a.gs.servers {
		as := &store.APIServer{}
		as.ObjectMeta.Name = fmt.Sprintf("%s/%d", a.name, srv.ID())
		as.Spec.Server = a.name
		as.Spec.GPU = srv.HomeDev()
		as.Spec.Slot = srv.ID()
		if _, err := a.st.Create(p, as); err != nil && !store.IsExists(err) {
			return err
		}
	}
	return nil
}

// stageBudget resolves the effective staged-bytes bound.
func (a *Agent) stageBudget() int64 {
	if a.cfg.StageBudget > 0 {
		return a.cfg.StageBudget
	}
	if c := a.gs.Cache(); c != nil {
		return c.Host().Budget()
	}
	return 0
}

// publishStatus read-modify-writes the GPUServer status with the machine's
// current occupancy, preserving the fields other writers own (the placement
// controller's reservation hints). Conflicts retry against fresh state.
func (a *Agent) publishStatus(p *sim.Proc) error {
	for {
		cur, err := a.st.Get(p, store.KindGPUServer, a.name)
		if err != nil {
			return err
		}
		obj := cur.DeepCopy().(*store.GPUServer)
		active, queued := a.gs.Load()
		obj.Status.Healthy = a.gs.Healthy()
		obj.Status.Capacity = a.gs.Capacity()
		obj.Status.Active = active
		obj.Status.Queued = queued
		obj.Status.HeartbeatAt = p.Now()
		if c := a.gs.Cache(); c != nil {
			obj.Status.StagedBytes = c.Host().Used()
		}
		_, err = a.st.UpdateStatus(p, obj)
		if err == nil || !store.IsConflict(err) {
			if err != nil {
				return err
			}
			break
		}
	}
	for _, srv := range a.gs.servers {
		name := fmt.Sprintf("%s/%d", a.name, srv.ID())
		cur, err := a.st.Get(p, store.KindAPIServer, name)
		if err != nil {
			if store.IsNotFound(err) {
				continue
			}
			return err
		}
		obj := cur.DeepCopy().(*store.APIServer)
		ready := !srv.Crashed() && !a.gs.dead[srv.ID()] && !a.gs.failed
		fnID := ""
		if lease, ok := a.gs.leased[srv.ID()]; ok {
			fnID = lease.FnID
		}
		if obj.Status.Ready == ready && obj.Status.FnID == fnID {
			continue
		}
		obj.Status.Ready = ready
		obj.Status.FnID = fnID
		// Async lane: a dropped conflict self-heals on the next tick.
		if err := a.st.UpdateStatusAsync(p, obj); err != nil {
			return err
		}
	}
	return nil
}

// applyEvictions drains pending StagedModel deletion events and evicts the
// matching host-tier entries. Running this before syncStaged in the same
// tick keeps the two from fighting: an evicted entry is gone from the LRU
// before the diff would re-publish it.
func (a *Agent) applyEvictions() {
	c := a.gs.Cache()
	if a.watch == nil || c == nil {
		return
	}
	for {
		ev, ok := a.watch.Events.TryRecv()
		if !ok {
			return
		}
		if ev.Type != store.Deleted {
			continue
		}
		sm, ok := ev.Object.(*store.StagedModel)
		if !ok || sm.Spec.Server != a.name {
			continue
		}
		for _, e := range c.Host().Entries() {
			if e.Key.Name == sm.Spec.Object {
				c.Host().Remove(e.Key)
				break
			}
		}
	}
}

// syncStaged diffs the host tier against the store's StagedModel objects for
// this server: new entries are created, departed entries deleted, recency
// changes pushed on the async lane (the reclaim controller deletes
// lowest-sequence objects first).
func (a *Agent) syncStaged(p *sim.Proc) error {
	c := a.gs.Cache()
	if c == nil {
		return nil
	}
	rs, _, err := a.st.List(p, store.KindStagedModel)
	if err != nil {
		return err
	}
	stored := make(map[string]*store.StagedModel)
	for _, r := range rs {
		sm := r.(*store.StagedModel)
		if sm.Spec.Server == a.name {
			stored[sm.Spec.Object] = sm
		}
	}
	entries := c.Host().Entries()
	resident := make(map[string]modelcache.Entry, len(entries))
	for _, e := range entries {
		resident[e.Key.Name] = e
	}
	for _, e := range entries {
		seq := c.Host().Seq(e.Key)
		sm, ok := stored[e.Key.Name]
		if !ok {
			obj := &store.StagedModel{}
			obj.ObjectMeta.Name = store.StagedModelName(a.name, e.Key.Name)
			obj.Spec.Server = a.name
			obj.Spec.Object = e.Key.Name
			obj.Spec.Bytes = e.Bytes
			obj.Status.Seq = seq
			if _, err := a.st.Create(p, obj); err != nil && !store.IsExists(err) {
				return err
			}
			continue
		}
		if sm.Status.Seq != seq {
			up := sm.DeepCopy().(*store.StagedModel)
			up.Status.Seq = seq
			if err := a.st.UpdateStatusAsync(p, up); err != nil {
				return err
			}
		}
	}
	departed := make([]string, 0, len(stored))
	for name := range stored {
		if _, ok := resident[name]; !ok {
			departed = append(departed, name)
		}
	}
	sort.Strings(departed)
	for _, name := range departed {
		err := a.st.Delete(p, store.KindStagedModel, stored[name].Meta().Name, 0)
		if err != nil && !store.IsNotFound(err) {
			return err
		}
	}
	return nil
}
