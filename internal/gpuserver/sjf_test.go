package gpuserver

import (
	"testing"
	"time"

	"dgsf/internal/sim"
)

// holdWithHint acquires with an SJF hint, holds for d, then releases.
func holdWithHint(p *sim.Proc, gs *GPUServer, name string, mem int64, hint, d time.Duration, done *[]string) {
	lease, _ := gs.AcquireHint(p, name, mem, hint)
	*done = append(*done, name+"-granted")
	p.Sleep(d)
	gs.Release(lease)
}

func TestSJFPrefersShortJobs(t *testing.T) {
	e := sim.NewEngine(1)
	var grants []string
	e.Run("root", func(p *sim.Proc) {
		cfg := fastConfig(1, 1, BestFit)
		cfg.Queue = SJF
		gs := New(e, cfg)
		gs.Start(p)
		wg := sim.NewWaitGroup(e)
		// Occupy the single server, then enqueue long before short.
		wg.Add(3)
		p.Spawn("holder", func(p *sim.Proc) {
			holdWithHint(p, gs, "holder", 1<<30, time.Second, time.Second, &grants)
			wg.Done()
		})
		p.Spawn("long", func(p *sim.Proc) {
			p.Sleep(time.Millisecond)
			holdWithHint(p, gs, "long", 1<<30, 10*time.Second, 100*time.Millisecond, &grants)
			wg.Done()
		})
		p.Spawn("short", func(p *sim.Proc) {
			p.Sleep(2 * time.Millisecond) // arrives after long
			holdWithHint(p, gs, "short", 1<<30, time.Second, 100*time.Millisecond, &grants)
			wg.Done()
		})
		wg.Wait(p)
	})
	// Under FCFS, long would be granted before short; SJF flips them.
	want := []string{"holder-granted", "short-granted", "long-granted"}
	for i := range want {
		if grants[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", grants, want)
		}
	}
}

func TestSJFAvoidsHeadOfLineBlocking(t *testing.T) {
	// The §VIII-D pathology: a huge function at the head blocks a small one
	// that would fit. SJF lets the small one through.
	run := func(q QueuePolicy) time.Duration {
		e := sim.NewEngine(1)
		var smallGranted time.Duration
		e.Run("root", func(p *sim.Proc) {
			cfg := fastConfig(1, 2, BestFit)
			cfg.Queue = q
			gs := New(e, cfg)
			gs.Start(p)
			wg := sim.NewWaitGroup(e)
			wg.Add(3)
			p.Spawn("big1", func(p *sim.Proc) {
				lease, _ := gs.AcquireHint(p, "big1", 10<<30, 4*time.Second)
				p.Sleep(4 * time.Second)
				gs.Release(lease)
				wg.Done()
			})
			p.Spawn("big2", func(p *sim.Proc) {
				p.Sleep(time.Millisecond)
				lease, _ := gs.AcquireHint(p, "big2", 10<<30, 4*time.Second)
				p.Sleep(4 * time.Second)
				gs.Release(lease)
				wg.Done()
			})
			p.Spawn("small", func(p *sim.Proc) {
				p.Sleep(2 * time.Millisecond)
				lease, _ := gs.AcquireHint(p, "small", 1<<30, time.Second)
				smallGranted = p.Now()
				p.Sleep(time.Second)
				gs.Release(lease)
				wg.Done()
			})
			wg.Wait(p)
		})
		return smallGranted
	}
	fcfs, sjf := run(FCFS), run(SJF)
	if fcfs < 4*time.Second {
		t.Fatalf("FCFS granted the small function at %v despite head-of-line blocking", fcfs)
	}
	if sjf > time.Second {
		t.Fatalf("SJF granted the small function at %v, want immediately", sjf)
	}
}

func TestSJFDefaultsOffMatchesFCFS(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Queue != FCFS {
		t.Fatalf("default queue policy = %v, want FCFS (the paper's policy)", cfg.Queue)
	}
	if FCFS.String() != "fcfs" || SJF.String() != "sjf" {
		t.Fatal("queue policy names wrong")
	}
}

func TestLoadReporting(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		gs := New(e, fastConfig(1, 1, BestFit))
		gs.Start(p)
		if a, q := gs.Load(); a != 0 || q != 0 {
			t.Fatalf("idle load = (%d,%d)", a, q)
		}
		l, _ := gs.Acquire(p, "a", 1<<30)
		p.Spawn("waiter", func(p *sim.Proc) {
			l2, _ := gs.Acquire(p, "b", 1<<30)
			gs.Release(l2)
		})
		p.Sleep(100 * time.Millisecond)
		if a, q := gs.Load(); a != 1 || q != 1 {
			t.Fatalf("load with one active one queued = (%d,%d)", a, q)
		}
		gs.Release(l)
	})
}

func TestImpossibleRequestRejected(t *testing.T) {
	e := sim.NewEngine(1)
	e.Run("root", func(p *sim.Proc) {
		gs := New(e, fastConfig(2, 1, BestFit))
		gs.Start(p)
		// 32 GB can never fit a 16 GB GPU: the monitor must answer nil
		// immediately instead of queueing the request forever.
		if lease, _ := gs.Acquire(p, "huge", 32<<30); lease != nil {
			t.Fatal("impossible request granted")
		}
		// A feasible request afterwards still works.
		lease, _ := gs.Acquire(p, "ok", 1<<30)
		if lease == nil {
			t.Fatal("feasible request rejected")
		}
		gs.Release(lease)
	})
}
