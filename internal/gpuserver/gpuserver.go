// Package gpuserver implements a DGSF GPU server: a disaggregated machine
// holding physical GPUs whose only job is to run API servers for remote
// serverless functions (§IV, §V-A).
//
// The package follows the paper's structure:
//
//   - the manager bootstraps the machine: it probes the devices, creates
//     and pre-warms the API servers, announces readiness, then idles;
//   - the monitor owns all runtime decisions: it assigns incoming function
//     GPU requests to API servers (FCFS, with best-fit / worst-fit /
//     first-fit placement over GPU memory), tracks per-server and per-GPU
//     state, and fixes load imbalance by migrating API servers between GPUs;
//   - API servers (internal/apiserver) execute the remoted calls.
package gpuserver

import (
	"errors"
	"fmt"
	"time"

	"dgsf/internal/apiserver"
	"dgsf/internal/cuda"
	"dgsf/internal/cudalibs"
	"dgsf/internal/dataplane"
	"dgsf/internal/gpu"
	"dgsf/internal/modelcache"
	"dgsf/internal/remoting"
	"dgsf/internal/sim"
)

// Policy selects how the monitor places functions onto GPUs.
type Policy int

// Placement policies (§VIII-E): best-fit condenses functions onto as few
// GPUs as possible; worst-fit spreads them. PolicyLocality composes with
// best-fit: it first prefers an idle API server already holding the
// function's model in the GPU-resident cache (internal/modelcache) and
// falls back to best-fit when no such server fits — warm-host and cold
// placements are then whatever best-fit picks.
const (
	FirstFit Policy = iota
	BestFit
	WorstFit
	PolicyLocality
)

func (p Policy) String() string {
	switch p {
	case BestFit:
		return "best-fit"
	case WorstFit:
		return "worst-fit"
	case PolicyLocality:
		return "locality"
	default:
		return "first-fit"
	}
}

// QueuePolicy selects how the monitor orders waiting GPU requests.
type QueuePolicy int

// Queue policies. The paper's prototype enforces FCFS and explicitly leaves
// "policies like shortest-function-first, which could improve throughput at
// some loss of fairness" as future work (§VIII-D); SJF implements that
// future work using the duration hints the serverless backend learns from
// past invocations.
const (
	FCFS QueuePolicy = iota
	SJF
)

func (q QueuePolicy) String() string {
	if q == SJF {
		return "sjf"
	}
	return "fcfs"
}

// Config parameterizes a GPU server.
type Config struct {
	GPUs          int // number of physical GPUs
	GPUConfig     func(int) gpu.Config
	ServersPerGPU int // API servers homed per GPU; 1 disables sharing
	Policy        Policy
	Queue         QueuePolicy // FCFS (paper default) or SJF (future work)
	PoolHandles   bool        // pre-initialize runtimes and handle pools
	DNNPool       int
	BLASPool      int
	CUDACosts     cuda.Costs
	LibCosts      cudalibs.Costs

	// Migration policy (§V-D). When enabled, the monitor moves an API
	// server from a GPU running two or more functions to an idle GPU once
	// the imbalance has persisted for MinImbalanceTicks monitor periods
	// (transient idleness — e.g. a function still downloading its inputs —
	// must not trigger a move).
	EnableMigration   bool
	MinImbalanceTicks int           // default 5
	MonitorPeriod     time.Duration // statistics/migration tick; default 200 ms
	SamplePeriod      time.Duration // NVML-style utilization sampling; default 200 ms

	// Cache configures the model cache (internal/modelcache). Disabled by
	// default: with Cache.Enable false the GPU server behaves exactly as it
	// did before the subsystem existed.
	Cache modelcache.Config

	// Plane, when non-nil, is this machine's view of the GPU-side data
	// plane (internal/dataplane): create a cluster Fabric, then hand each
	// GPU server a Fabric.NewPlane. Every API server on the machine shares
	// it, which is what makes same-server tensor handoff zero-copy. Nil
	// disables the data plane; the new remoted calls then fail cleanly and
	// chains bounce through the host as before.
	Plane *dataplane.Plane

	// Failure detection (fault-tolerance layer). HeartbeatPeriod > 0 makes
	// the monitor probe every API server through its FIFO inbox; a probe
	// unanswered within one period is a miss, and HeartbeatMisses consecutive
	// misses declare the server dead — its lease is force-released, its
	// placement slot leaves the rotation, and the server is fenced (crashed)
	// so a slow-but-alive process cannot resurface with stale state. Zero
	// disables detection, preserving pre-fault-tolerance behavior exactly.
	HeartbeatPeriod time.Duration
	HeartbeatMisses int // consecutive misses before declaring death; default 3

	// QueueDeadline > 0 sheds GPU requests that have waited longer than this
	// at the next monitor tick, failing them with ErrCapacity instead of
	// letting them queue forever on a degraded server.
	QueueDeadline time.Duration
}

// ErrCapacity is the typed error for GPU requests the server cannot satisfy:
// never-placeable memory demands, requests shed past the queue deadline, and
// requests arriving after the machine failed. Callers (the serverless
// backend) treat it as "route elsewhere or fail fast", never "retry here".
var ErrCapacity = errors.New("gpuserver: capacity exhausted")

// ErrCapacity must survive the generated stubs' status encoding: remote
// callers shed by a GPU server route on errors.Is(err, ErrCapacity).
func init() { cuda.RegisterWireSentinel(9020, ErrCapacity) }

// ErrNotLeased is the typed error for lease-lifecycle misuse: releasing a
// nil lease (an Acquire that failed), releasing twice, or releasing a lease
// the monitor already revoked when its server died.
var ErrNotLeased = errors.New("gpuserver: not leased")

// DefaultConfig mirrors the paper's testbed: one p3.8xlarge GPU server with
// four V100s, one API server per GPU, no sharing, best fit.
func DefaultConfig() Config {
	return Config{
		GPUs:          4,
		GPUConfig:     gpu.V100Config,
		ServersPerGPU: 1,
		Policy:        BestFit,
		PoolHandles:   true,
		CUDACosts:     cuda.DefaultCosts(),
		LibCosts:      cudalibs.DefaultCosts(),
		MonitorPeriod: 200 * time.Millisecond,
		SamplePeriod:  200 * time.Millisecond,
	}
}

// Lease is a granted GPU assignment for one function execution.
type Lease struct {
	Server     *apiserver.Server
	FnID       string
	Mem        int64
	QueueDelay time.Duration // time spent waiting for an API server
	grantedAt  time.Duration
	released   bool // set by Release or by the monitor revoking a dead server
}

// Listener returns the remoting endpoint of the leased API server.
func (l *Lease) Listener() *remoting.Listener {
	return &remoting.Listener{Incoming: l.Server.Inbox}
}

// acquireReq is a pending GPU request in the monitor's queue.
type acquireReq struct {
	fnID    string
	mem     int64
	hint    time.Duration // expected GPU time (0 = unknown); used by SJF
	reply   *sim.Queue[acquireResult]
	arrived time.Duration
}

// acquireResult is the monitor's answer to an acquire: a lease, or a typed
// error explaining why none will ever come.
type acquireResult struct {
	lease *Lease
	err   error
}

// PlacementRecord logs one grant, for experiments and tests.
type PlacementRecord struct {
	FnID       string
	Mem        int64
	GPU        int
	Server     int
	QueueDelay time.Duration
}

// GPUServer is one disaggregated GPU machine.
type GPUServer struct {
	cfg  Config
	e    *sim.Engine
	devs []*gpu.Device

	servers  []*apiserver.Server
	samplers []*gpu.Sampler
	cache    *modelcache.Manager // nil when the model cache is disabled

	// Monitor state.
	requests  *sim.Queue[monitorMsg]
	waiting   []*acquireReq
	leased    map[int]*Lease // server ID -> active lease
	commit    []int64        // declared memory committed per GPU
	baseline  []int64        // device bytes in use after pre-warm
	dead      map[int]bool   // server ID -> declared dead (out of rotation)
	failed    bool           // whole-machine failure injected
	ready     bool
	readyCond *sim.Cond

	placements     []PlacementRecord
	migrations     int
	migCooldown    time.Duration
	imbalanceTicks int
}

// monitorMsg is the monitor's mailbox item: an acquire, a release, a tick,
// a death report from a heartbeat prober, or a whole-machine failure.
type monitorMsg struct {
	acquire *acquireReq
	release *Lease
	tick    bool
	dead    *int // server ID declared dead by its heartbeat
	failAll bool // the whole GPU server machine failed
}

// New builds a GPU server. Call Start from a simulated process to boot it.
func New(e *sim.Engine, cfg Config) *GPUServer {
	if cfg.GPUConfig == nil {
		cfg.GPUConfig = gpu.V100Config
	}
	if cfg.ServersPerGPU <= 0 {
		cfg.ServersPerGPU = 1
	}
	if cfg.MonitorPeriod <= 0 {
		cfg.MonitorPeriod = 200 * time.Millisecond
	}
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = 200 * time.Millisecond
	}
	if cfg.MinImbalanceTicks <= 0 {
		cfg.MinImbalanceTicks = 5
	}
	if cfg.HeartbeatMisses <= 0 {
		cfg.HeartbeatMisses = 3
	}
	gs := &GPUServer{
		cfg:       cfg,
		e:         e,
		requests:  sim.NewQueue[monitorMsg](e),
		leased:    make(map[int]*Lease),
		commit:    make([]int64, cfg.GPUs),
		baseline:  make([]int64, cfg.GPUs),
		dead:      make(map[int]bool),
		readyCond: sim.NewCond(e),
	}
	if cfg.Cache.Enable {
		gs.cache = modelcache.NewManager(cfg.Cache)
	}
	for i := 0; i < cfg.GPUs; i++ {
		gs.devs = append(gs.devs, gpu.New(e, cfg.GPUConfig(i)))
	}
	return gs
}

// Devices exposes the physical GPUs (for experiments and samplers).
func (gs *GPUServer) Devices() []*gpu.Device { return gs.devs }

// Servers exposes the API servers.
func (gs *GPUServer) Servers() []*apiserver.Server { return gs.servers }

// Samplers exposes the per-GPU utilization samplers.
func (gs *GPUServer) Samplers() []*gpu.Sampler { return gs.samplers }

// Placements returns the grant log.
func (gs *GPUServer) Placements() []PlacementRecord { return gs.placements }

// Migrations returns how many API server migrations the monitor initiated.
func (gs *GPUServer) Migrations() int { return gs.migrations }

// Cache returns the model cache, or nil when disabled.
func (gs *GPUServer) Cache() *modelcache.Manager { return gs.cache }

// Start boots the GPU server: the manager creates and pre-warms API servers
// (in parallel, as a fleet bring-up would), then hands control to the
// monitor and the utilization samplers. Start returns when the server is
// ready to accept functions.
func (gs *GPUServer) Start(p *sim.Proc) {
	// Manager phase.
	id := 0
	wg := sim.NewWaitGroup(gs.e)
	for g := 0; g < gs.cfg.GPUs; g++ {
		for k := 0; k < gs.cfg.ServersPerGPU; k++ {
			rt := cuda.NewRuntime(gs.e, gs.devs, gs.cfg.CUDACosts)
			srv := apiserver.NewServer(gs.e, rt, apiserver.Config{
				ID:          id,
				HomeDev:     g,
				PoolHandles: gs.cfg.PoolHandles,
				DNNPool:     gs.cfg.DNNPool,
				BLASPool:    gs.cfg.BLASPool,
				CUDACosts:   gs.cfg.CUDACosts,
				LibCosts:    gs.cfg.LibCosts,
				Cache:       gs.cache,
				Plane:       gs.cfg.Plane,
			})
			gs.servers = append(gs.servers, srv)
			id++
			if gs.cfg.PoolHandles {
				wg.Add(1)
				s := srv
				p.Spawn(fmt.Sprintf("prewarm-%d", s.ID()), func(p *sim.Proc) {
					if err := s.Prewarm(p); err != nil {
						panic(err)
					}
					wg.Done()
				})
			}
		}
	}
	wg.Wait(p)
	for _, srv := range gs.servers {
		p.SpawnDaemon(fmt.Sprintf("apiserver-%d", srv.ID()), srv.Run)
	}
	for i, d := range gs.devs {
		gs.baseline[i] = d.UsedBytes()
		s := gpu.NewSampler(d, gs.cfg.SamplePeriod)
		gs.samplers = append(gs.samplers, s)
		p.SpawnDaemon(fmt.Sprintf("sampler-%d", i), s.Run)
	}
	// Monitor phase: the manager "idles until shut down, passing all
	// responsibilities to the monitor".
	p.SpawnDaemon("monitor", gs.monitor)
	p.SpawnDaemon("monitor-tick", func(p *sim.Proc) {
		for {
			p.Sleep(gs.cfg.MonitorPeriod)
			gs.requests.Send(monitorMsg{tick: true})
		}
	})
	if gs.cfg.HeartbeatPeriod > 0 {
		for i := range gs.servers {
			sid := i
			p.SpawnDaemon(fmt.Sprintf("heartbeat-%d", sid), func(p *sim.Proc) {
				gs.heartbeat(p, sid)
			})
		}
	}
	gs.ready = true
	gs.readyCond.Broadcast()
}

// heartbeat probes one API server through its inbox. A ping unanswered
// within one period is a miss; HeartbeatMisses consecutive misses (or a
// definitively closed inbox) report the server dead to the monitor, and the
// prober exits. The miss threshold tolerates servers busy in a long API
// call — the inbox is FIFO, so a ping behind a long kernel answers late,
// not never.
func (gs *GPUServer) heartbeat(p *sim.Proc, sid int) {
	srv := gs.servers[sid]
	misses := 0
	for {
		p.Sleep(gs.cfg.HeartbeatPeriod)
		if gs.dead[sid] || gs.failed {
			return
		}
		done := sim.NewQueue[struct{}](gs.e)
		if !srv.Inbox.TrySend(remoting.Request{Ctrl: apiserver.PingRequest{Done: done}}) {
			gs.requests.Send(monitorMsg{dead: &sid})
			return
		}
		if _, ok, timedOut := done.RecvTimeout(p, gs.cfg.HeartbeatPeriod); !ok || timedOut {
			misses++
			if misses >= gs.cfg.HeartbeatMisses {
				gs.requests.Send(monitorMsg{dead: &sid})
				return
			}
		} else {
			misses = 0
		}
	}
}

// WaitReady blocks until Start has completed (for callers racing boot).
func (gs *GPUServer) WaitReady(p *sim.Proc) {
	for !gs.ready {
		gs.readyCond.Wait(p)
	}
}

// Capacity returns the number of functions the server can run concurrently,
// the figure the manager announces to the serverless backend. Dead API
// servers leave the rotation.
func (gs *GPUServer) Capacity() int {
	n := 0
	for _, srv := range gs.servers {
		if !gs.dead[srv.ID()] {
			n++
		}
	}
	return n
}

// Healthy reports whether the machine can still grant leases: it has not
// suffered a whole-server failure and at least one API server is alive. The
// serverless backend routes around unhealthy GPU servers.
func (gs *GPUServer) Healthy() bool { return !gs.failed && gs.Capacity() > 0 }

// Fail injects a whole-GPU-server failure: every API server crashes, all
// leases are revoked, waiting requests fail with ErrCapacity, and the
// machine reports unhealthy forever after. The fault framework calls this;
// there is no recovery for the machine itself, only around it. Idempotent:
// a second Fail (machine flap, or two fault paths reporting one death) is a
// no-op — in particular the plane must not re-strand its exports.
func (gs *GPUServer) Fail() {
	if gs.failed {
		return
	}
	gs.failed = true // flip eagerly so routing reacts before the monitor drains
	if gs.cfg.Plane != nil {
		// The machine's device memory is gone: exports published here become
		// unreachable and broadcast sources vanish, so data-plane consumers
		// get prompt errors (and fall back to the bounce path) instead of
		// copying from a dead GPU.
		gs.cfg.Plane.Fail()
	}
	gs.requests.Send(monitorMsg{failAll: true})
}

// Acquire requests an API server for a function needing mem bytes of GPU
// memory, blocking until one is granted per the queue policy. A nil lease
// comes with a typed error: ErrCapacity when the request can never be
// satisfied here (too large, machine failed, or shed past the queue
// deadline).
func (gs *GPUServer) Acquire(p *sim.Proc, fnID string, mem int64) (*Lease, error) {
	return gs.AcquireHint(p, fnID, mem, 0)
}

// AcquireHint is Acquire with an expected-GPU-time hint for SJF scheduling.
func (gs *GPUServer) AcquireHint(p *sim.Proc, fnID string, mem int64, hint time.Duration) (*Lease, error) {
	reply := sim.NewQueue[acquireResult](gs.e)
	gs.requests.Send(monitorMsg{acquire: &acquireReq{fnID: fnID, mem: mem, hint: hint, reply: reply, arrived: p.Now()}})
	res, ok := reply.Recv(p)
	if !ok {
		return nil, fmt.Errorf("%w: GPU server shut down", ErrCapacity)
	}
	return res.lease, res.err
}

// Load reports the server's current occupancy: active leases and queued
// requests. The serverless backend's least-loaded GPU-server selection
// policy reads this (§IV: "choosing the least loaded GPU server").
func (gs *GPUServer) Load() (active, queued int) {
	return len(gs.leased), len(gs.waiting)
}

// Release returns a leased API server to the pool. It rejects lifecycle
// misuse with ErrNotLeased: a nil lease (the matching Acquire failed), a
// double release, or a lease the monitor already revoked because its server
// died. Before this guard existed, such calls silently corrupted the
// monitor's active count and per-GPU memory commitments.
func (gs *GPUServer) Release(lease *Lease) error {
	if lease == nil {
		return fmt.Errorf("%w: nil lease (was the Acquire refused?)", ErrNotLeased)
	}
	if lease.released {
		return fmt.Errorf("%w: server %d lease already released", ErrNotLeased, lease.Server.ID())
	}
	lease.released = true
	gs.requests.Send(monitorMsg{release: lease})
	return nil
}

// monitor is the GPU server's brain: it grants requests in arrival order,
// updates statistics, and triggers migrations.
func (gs *GPUServer) monitor(p *sim.Proc) {
	for {
		msg, ok := gs.requests.Recv(p)
		if !ok {
			return
		}
		switch {
		case msg.acquire != nil:
			if gs.failed || gs.Capacity() == 0 {
				msg.acquire.reply.TrySend(acquireResult{err: fmt.Errorf("%w: no live API servers", ErrCapacity)})
				break
			}
			if msg.acquire.mem > gs.maxPlaceable() {
				// The request can never be satisfied on this GPU server
				// (e.g. a 14 GB function on GPUs whose idle API servers
				// already hold too much); fail it instead of queueing it
				// forever.
				msg.acquire.reply.TrySend(acquireResult{err: fmt.Errorf("%w: request of %d bytes exceeds any live GPU's capacity", ErrCapacity, msg.acquire.mem)})
				break
			}
			gs.waiting = append(gs.waiting, msg.acquire)
		case msg.release != nil:
			gs.releaseLocked(msg.release)
		case msg.dead != nil:
			gs.markDead(*msg.dead)
		case msg.failAll:
			gs.failed = true
			for _, srv := range gs.servers {
				gs.markDead(srv.ID())
			}
			for _, req := range gs.waiting {
				req.reply.TrySend(acquireResult{err: fmt.Errorf("%w: GPU server failed", ErrCapacity)})
			}
			gs.waiting = nil
		case msg.tick:
			gs.shedExpired(p)
			if gs.cfg.EnableMigration {
				gs.maybeMigrate(p)
			}
		}
		gs.drainQueue(p)
	}
}

// markDead takes one API server out of rotation: the server is fenced
// (crashed, so a slow-but-alive process cannot resurface with stale state),
// its active lease — if any — is revoked and its memory commitment unwound.
// The holder of a revoked lease discovers the death through its broken
// connection; a later Release of it reports ErrNotLeased.
func (gs *GPUServer) markDead(sid int) {
	if gs.dead[sid] {
		return
	}
	gs.dead[sid] = true
	srv := gs.servers[sid]
	if !srv.Crashed() {
		srv.Crash()
	}
	if lease, ok := gs.leased[sid]; ok {
		lease.released = true
		delete(gs.leased, sid)
		gs.commit[srv.HomeDev()] -= lease.Mem
	}
}

// shedExpired fails waiting requests older than the queue deadline with
// ErrCapacity — graceful degradation instead of unbounded queueing when the
// rotation has shrunk.
func (gs *GPUServer) shedExpired(p *sim.Proc) {
	if gs.cfg.QueueDeadline <= 0 {
		return
	}
	kept := gs.waiting[:0]
	for _, req := range gs.waiting {
		if p.Now()-req.arrived > gs.cfg.QueueDeadline {
			req.reply.TrySend(acquireResult{err: fmt.Errorf("%w: queued longer than %v", ErrCapacity, gs.cfg.QueueDeadline)})
			continue
		}
		kept = append(kept, req)
	}
	gs.waiting = kept
}

// drainQueue grants as many waiting requests as the queue policy allows.
// Under FCFS (the paper's policy, §VIII-D), only the head may be granted —
// a large function at the head forces later small ones to wait. Under SJF
// the shortest-hinted placeable request is granted, trading fairness for
// throughput.
func (gs *GPUServer) drainQueue(p *sim.Proc) {
	for len(gs.waiting) > 0 {
		var srv *apiserver.Server
		var req *acquireReq
		if gs.cfg.Queue == SJF {
			srv, req = gs.placeAnySJF()
		} else {
			req = gs.waiting[0]
			srv = gs.place(req.fnID, req.mem)
			if srv == nil && gs.cache != nil {
				srv = gs.reclaimAndPlace(p, req)
			}
			if srv != nil {
				gs.waiting = gs.waiting[1:]
			}
		}
		if srv == nil {
			return
		}
		lease := &Lease{
			Server:     srv,
			FnID:       req.fnID,
			Mem:        req.mem,
			QueueDelay: p.Now() - req.arrived,
			grantedAt:  p.Now(),
		}
		gs.leased[srv.ID()] = lease
		gs.commit[srv.HomeDev()] += req.mem
		gs.placements = append(gs.placements, PlacementRecord{
			FnID:       req.fnID,
			Mem:        req.mem,
			GPU:        srv.HomeDev(),
			Server:     srv.ID(),
			QueueDelay: lease.QueueDelay,
		})
		req.reply.TrySend(acquireResult{lease: lease})
	}
}

// maxPlaceable returns the largest memory request any GPU still hosting a
// live API server could ever grant.
func (gs *GPUServer) maxPlaceable() int64 {
	var max int64
	for g := range gs.devs {
		live := false
		for _, srv := range gs.servers {
			if srv.HomeDev() == g && !gs.dead[srv.ID()] {
				live = true
				break
			}
		}
		if !live {
			continue
		}
		if free := gs.devs[g].Cfg.MemBytes - gs.baseline[g]; free > max {
			max = free
		}
	}
	return max
}

// placeAnySJF scans the waiting queue in ascending hint order and grants
// the first request that fits anywhere, removing it from the queue.
func (gs *GPUServer) placeAnySJF() (*apiserver.Server, *acquireReq) {
	order := make([]int, len(gs.waiting))
	for i := range order {
		order[i] = i
	}
	// Selection sort by hint: the queue is short and determinism matters.
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if gs.waiting[order[j]].hint < gs.waiting[order[i]].hint {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for _, idx := range order {
		req := gs.waiting[idx]
		if srv := gs.place(req.fnID, req.mem); srv != nil {
			gs.waiting = append(gs.waiting[:idx], gs.waiting[idx+1:]...)
			return srv, req
		}
	}
	return nil, nil
}

// place picks an idle API server whose home GPU fits mem, per policy.
// GPU-resident cached models (model cache pins) count as used memory on
// their GPU — except the candidate server's own pin when it belongs to
// fnID, because ModelAttach adopts that allocation into the new session
// rather than duplicating it.
func (gs *GPUServer) place(fnID string, mem int64) *apiserver.Server {
	type cand struct {
		srv   *apiserver.Server
		free  int64
		local bool
	}
	var best *cand
	for _, srv := range gs.servers {
		// Out of rotation: heartbeat-declared dead, or already observed as a
		// crashed process. The monitor parents the API server processes, so
		// an exit is visible immediately — heartbeats exist for the
		// hung-but-alive case, not to delay reusing an obvious corpse.
		if gs.dead[srv.ID()] || srv.Crashed() {
			continue
		}
		if _, busy := gs.leased[srv.ID()]; busy {
			continue
		}
		g := srv.HomeDev()
		free := gs.devs[g].Cfg.MemBytes - gs.baseline[g] - gs.commit[g]
		local := false
		if gs.cache != nil {
			free -= gs.cache.PinnedBytes(g)
			if pinFn, pinBytes, ok := gs.cache.PinnedFn(srv.ID()); ok && pinFn == fnID {
				free += pinBytes
				local = true
			}
		}
		if free < mem {
			continue
		}
		c := &cand{srv: srv, free: free, local: local}
		if best == nil {
			best = c
			continue
		}
		switch gs.cfg.Policy {
		case BestFit:
			if c.free < best.free {
				best = c
			}
		case WorstFit:
			if c.free > best.free {
				best = c
			}
		case PolicyLocality:
			// Prefer a server already holding the model on-device; fall
			// back to best-fit among equals.
			switch {
			case c.local && !best.local:
				best = c
			case c.local == best.local && c.free < best.free:
				best = c
			}
		case FirstFit:
			// keep the first found
		}
	}
	if best == nil {
		return nil
	}
	return best.srv
}

// reclaimAndPlace frees GPU-resident cached models under memory pressure:
// the oldest pin on an idle server is demoted to the host tier (D2H at
// copy-engine bandwidth, performed by the API server itself), then
// placement is retried. It returns nil only once no reclaimable pin is
// left and the request still does not fit.
func (gs *GPUServer) reclaimAndPlace(p *sim.Proc, req *acquireReq) *apiserver.Server {
	skip := make(map[int]bool)
	for {
		sid, ok := gs.cache.OldestPin(func(id int) bool {
			_, busy := gs.leased[id]
			return !busy && !gs.dead[id] && !skip[id]
		})
		if !ok {
			return nil
		}
		done := sim.NewQueue[struct{}](gs.e)
		if !gs.servers[sid].Inbox.TrySend(remoting.Request{Ctrl: apiserver.EvictModelRequest{Done: done}}) {
			skip[sid] = true // crashed under us; its scavenge drops the pin
			continue
		}
		done.Recv(p)
		if srv := gs.place(req.fnID, req.mem); srv != nil {
			return srv
		}
	}
}

// releaseLocked returns a server to the pool and unwinds its commitment.
func (gs *GPUServer) releaseLocked(lease *Lease) {
	id := lease.Server.ID()
	if cur, ok := gs.leased[id]; !ok || cur != lease {
		return // stale release
	}
	delete(gs.leased, id)
	// The server has migrated back home by now (Bye does that), so the
	// commitment unwinds on its home GPU.
	gs.commit[lease.Server.HomeDev()] -= lease.Mem
	// If the tenant's connection died before its Bye arrived, the session is
	// still open server-side and would refuse the next tenant's Hello. A
	// reset through the FIFO inbox scavenges it after any still-queued
	// one-way work from the dead guest and before the next Hello. TrySend:
	// a crashed server's inbox is closed, and its run loop scavenges anyway.
	lease.Server.Inbox.TrySend(remoting.Request{Ctrl: apiserver.ResetRequest{}})
}

// maybeMigrate fixes GPU load imbalance: if one GPU runs two or more
// functions while another sits idle, move one of them (§V-D, §VIII-E).
func (gs *GPUServer) maybeMigrate(p *sim.Proc) {
	if p.Now() < gs.migCooldown {
		return
	}
	busyPerGPU := make([]int, gs.cfg.GPUs)
	var active []*Lease
	for _, lease := range gs.leased {
		busyPerGPU[lease.Server.CurrentDev()]++
		active = append(active, lease)
	}
	// Find the most contended and a fully idle GPU.
	src, dst := -1, -1
	for g := 0; g < gs.cfg.GPUs; g++ {
		if busyPerGPU[g] >= 2 && (src == -1 || busyPerGPU[g] > busyPerGPU[src]) {
			src = g
		}
		if busyPerGPU[g] == 0 && dst == -1 {
			dst = g
		}
	}
	if src == -1 || dst == -1 {
		gs.imbalanceTicks = 0
		return
	}
	// Require the imbalance to persist before acting.
	gs.imbalanceTicks++
	if gs.imbalanceTicks < gs.cfg.MinImbalanceTicks {
		return
	}
	// Pick a movable lease on src whose session memory fits dst.
	var pick *Lease
	for _, lease := range active {
		if lease.Server.CurrentDev() != src {
			continue
		}
		need := lease.Mem
		if free := gs.devs[dst].Cfg.MemBytes - gs.devs[dst].UsedBytes(); free < need+gs.cfg.CUDACosts.CtxBytes {
			continue
		}
		if pick == nil || lease.Server.Stats().SessionMem < pick.Server.Stats().SessionMem {
			pick = lease // prefer the cheapest move
		}
	}
	if pick == nil {
		return
	}
	gs.migrations++
	gs.imbalanceTicks = 0
	gs.migCooldown = p.Now() + 2*gs.cfg.MonitorPeriod
	// TrySend: the picked server may have crashed since the last heartbeat.
	pick.Server.Inbox.TrySend(remoting.Request{Ctrl: apiserver.MigrateRequest{TargetDev: dst}})
}
